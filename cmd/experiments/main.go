// Command experiments regenerates the paper-reproduction experiments
// (E1–E12; see DESIGN.md section 5 for the index mapping each experiment
// to a theorem or claim).  It prints tables and ASCII figures, and can
// save every table as CSV.
//
// Usage:
//
//	experiments [-scale quick|full] [-run E3,E8] [-seed N] [-csv dir]
//
// Examples:
//
//	experiments -scale quick                # everything, CI-sized
//	experiments -scale full -run E3         # paper-sized Theorem 16 run
//	experiments -csv out/                   # also write out/E1-*.csv ...
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	scaleFlag := flag.String("scale", "quick", "experiment sizing: quick or full")
	runFlag := flag.String("run", "all", "comma-separated experiment IDs (e.g. E1,E3) or 'all'")
	seed := flag.Uint64("seed", 2022, "base random seed")
	csvDir := flag.String("csv", "", "directory to write per-table CSV files (optional)")
	flag.Parse()

	var scale experiments.Scale
	switch strings.ToLower(*scaleFlag) {
	case "quick":
		scale = experiments.Quick
	case "full":
		scale = experiments.Full
	default:
		fmt.Fprintf(os.Stderr, "experiments: unknown scale %q (want quick or full)\n", *scaleFlag)
		os.Exit(2)
	}

	var runners []experiments.Runner
	if strings.EqualFold(*runFlag, "all") {
		runners = experiments.All()
	} else {
		for _, id := range strings.Split(*runFlag, ",") {
			r := experiments.ByID(strings.TrimSpace(id))
			if r == nil {
				fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q\n", id)
				os.Exit(2)
			}
			runners = append(runners, *r)
		}
	}

	fmt.Printf("Contention Resolution for Coded Radio Networks — reproduction harness\n")
	fmt.Printf("scale=%s seed=%d experiments=%d\n\n", scale, *seed, len(runners))
	grandStart := time.Now()
	for _, r := range runners {
		start := time.Now()
		out := r.Run(scale, *seed)
		fmt.Print(out.String())
		fmt.Printf("[%s completed in %v]\n\n", r.ID, time.Since(start).Round(time.Millisecond))
		if *csvDir != "" {
			for i, t := range out.Tables {
				name := fmt.Sprintf("%s-%d", out.ID, i+1)
				if err := t.SaveCSV(*csvDir, name); err != nil {
					fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
					os.Exit(1)
				}
			}
		}
	}
	fmt.Printf("all experiments completed in %v\n", time.Since(grandStart).Round(time.Millisecond))
}
