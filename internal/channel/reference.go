package channel

import "sort"

// Reference is a brute-force implementation of Definition 1, kept
// deliberately naive (quadratic scans over the full slot history) so it
// can serve as an executable specification.  The production Channel is
// tested for equivalence against it on randomized schedules.
type Reference struct {
	kappa     int
	maxWindow int

	// history of slots since the last decoding event
	slots []refSlot

	// lastGood is each packet's most recent good-slot broadcast since the
	// last decoding event; it exists only to mirror the incremental
	// detector's prune accounting, stated directly from the definition: a
	// packet is pruned at the first good slot whose window cap excludes
	// the packet's most recent broadcast.
	lastGood map[PacketID]int64
	pruned   int64
}

type refSlot struct {
	time  int64
	class SlotClass
	txs   []PacketID
}

// NewReference returns a reference detector with the given threshold and
// window cap (0 = unbounded).
func NewReference(kappa, maxWindow int) *Reference {
	if kappa < 1 {
		panic("channel: kappa must be at least 1")
	}
	return &Reference{kappa: kappa, maxWindow: maxWindow, lastGood: make(map[PacketID]int64)}
}

// Pruned returns the number of packets whose pending broadcast
// information has been discarded by the window-length cap, mirroring
// Stats.PrunedPackets of the incremental detector.
func (r *Reference) Pruned() int64 { return r.pruned }

// Step processes one slot exactly as Channel.Step does, via literal
// translation of Definition 1.
func (r *Reference) Step(now int64, txs []PacketID) (SlotClass, *Event) {
	class := Silent
	switch {
	case len(txs) == 0:
		class = Silent
	case len(txs) <= r.kappa:
		class = Good
	default:
		class = Bad
	}
	cp := make([]PacketID, len(txs))
	copy(cp, txs)
	r.slots = append(r.slots, refSlot{time: now, class: class, txs: cp})
	if class == Good {
		// Prune accounting (only good slots advance the cap, as in the
		// incremental detector): a packet whose most recent broadcast can
		// no longer appear in any window ending at or after now is gone.
		if r.maxWindow > 0 {
			minStart := now - int64(r.maxWindow) + 1
			for id, slot := range r.lastGood {
				if slot < minStart {
					delete(r.lastGood, id)
					r.pruned++
				}
			}
		}
		for _, id := range txs {
			r.lastGood[id] = now
		}
	}

	// Try every window (start, now] that begins with a good slot; Def. 1
	// condition (4): the event fires the first time any window is valid,
	// and here we evaluate at each slot in time order, so checking now
	// suffices.  Among valid windows pick the earliest start (maximal
	// delivery; nested windows).
	var best *Event
	for si := 0; si < len(r.slots); si++ {
		start := r.slots[si]
		if start.class != Good {
			continue
		}
		if r.maxWindow > 0 && now-start.time+1 > int64(r.maxWindow) {
			continue
		}
		distinct := make(map[PacketID]bool)
		goodSlots := 0
		for sj := si; sj < len(r.slots); sj++ {
			s := r.slots[sj]
			if s.class != Good {
				continue
			}
			goodSlots++
			for _, id := range s.txs {
				distinct[id] = true
			}
		}
		if len(distinct) > 0 && len(distinct) <= goodSlots {
			packets := make([]PacketID, 0, len(distinct))
			for id := range distinct {
				packets = append(packets, id)
			}
			sort.Slice(packets, func(a, b int) bool { return packets[a] < packets[b] })
			best = &Event{Slot: now, WindowStart: start.time, Packets: packets}
			break // earliest start wins
		}
	}
	if best != nil {
		r.slots = r.slots[:0] // windows are disjoint
		clear(r.lastGood)
	}
	return class, best
}
