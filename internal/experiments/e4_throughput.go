package experiments

import (
	"fmt"
	"math"

	"repro/internal/arrival"
	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/protocol"
	"repro/internal/report"
	"repro/internal/rng"
	"repro/internal/sim"
)

// Classical-model throughput upper bounds the paper cites (Section 1):
// no protocol can beat these on a κ=1 channel.
const (
	fullSensingBound = 0.568    // Tsybakov–Likhanov / Goldberg notes
	ackBasedBound    = 0.530045 // Goldberg–Jerrum–Kannan–Paterson
)

// E4Throughput reproduces the headline comparison: on the coded channel
// the Decodable Backoff Algorithm achieves throughput close to 1,
// breaking the constant-throughput ceilings of the classical model, while
// the classical protocols sit at or below 1/e-type rates — BEB at
// Θ(1/log n), genie ALOHA at 1/e, multiplicative weights at 1/e − O(ε).
func E4Throughput(scale Scale, seed uint64) *Output {
	out := &Output{
		ID:    "E4",
		Title: "batch throughput: DBA (coded channel) vs classical baselines",
		Claim: "DBA achieves 1−Θ(1/ln κ) > 0.568/0.530 classical ceilings; BEB ~1/log n, ALOHA/MW ~1/e",
	}
	n := scale.pick(2000, 10000)
	trials := scale.pick(3, 5)

	type entry struct {
		label string
		kappa int
		build func(s uint64) protocol.Protocol
	}
	entries := []entry{
		{"decodable-backoff", 16, func(s uint64) protocol.Protocol { return core.New(16, rng.New(s)) }},
		{"decodable-backoff", 64, func(s uint64) protocol.Protocol { return core.New(64, rng.New(s)) }},
		{"decodable-backoff", 256, func(s uint64) protocol.Protocol { return core.New(256, rng.New(s)) }},
		{"exponential-backoff", 1, func(s uint64) protocol.Protocol { return baseline.NewExponentialBackoff(rng.New(s)) }},
		{"genie-aloha", 1, func(s uint64) protocol.Protocol { return baseline.NewGenieAloha(rng.New(s), 1) }},
		{"mult-weights", 1, func(s uint64) protocol.Protocol {
			return baseline.NewMultiplicativeWeights(rng.New(s), baseline.DefaultMWConfig())
		}},
		// Baselines moved onto the coded channel: they benefit a little
		// from incidental decoding windows but lack epoch coordination.
		{"exponential-backoff", 64, func(s uint64) protocol.Protocol { return baseline.NewExponentialBackoff(rng.New(s)) }},
		{"genie-aloha", 64, func(s uint64) protocol.Protocol { return baseline.NewGenieAloha(rng.New(s), 1) }},
	}

	tbl := report.NewTable(
		fmt.Sprintf("Batch of n=%d: completion throughput (mean of %d trials)", n, trials),
		"protocol", "channel κ", "throughput", "±95%", "vs 1/e", "beats 0.568 ceiling")
	for _, e := range entries {
		e := e
		results := sim.RunTrials(trials, seed+uint64(len(e.label))*31+uint64(e.kappa), 0,
			func(trial int, s uint64) *sim.Result {
				return sim.Run(sim.Config{Kappa: e.kappa, Horizon: 1, Drain: true,
					DrainLimit: int64(n) * 64, Seed: s},
					e.build(s^0xE4), &arrival.Batch{At: 0, N: n})
			})
		thpt := sim.Aggregate(results, func(r *sim.Result) float64 {
			if r.Pending > 0 { // did not finish: charge the full elapsed time
				return float64(r.Delivered) / float64(r.Elapsed)
			}
			return r.CompletionThroughput()
		})
		tbl.AddRow(e.label, e.kappa, thpt.Mean(), thpt.CI95(),
			fmt.Sprintf("%.2fx", thpt.Mean()*math.E),
			boolMark(thpt.Mean() > fullSensingBound))
	}
	out.Tables = append(out.Tables, tbl)
	out.Notes = append(out.Notes,
		fmt.Sprintf("classical ceilings: full-sensing %.3f, ack-based %.6f, genie ALOHA 1/e ≈ %.4f",
			fullSensingBound, ackBasedBound, 1/math.E),
		"DBA > 0.568 on the coded channel demonstrates the model separation the paper proves",
		"uncoordinated baselines gain little from κ > 1: repeated joint broadcasts (epochs) are what make decoding windows complete")
	return out
}
