package channel

import (
	"fmt"
	"testing"
)

// chunkify splits txs into nc chunks whose sizes follow a deterministic
// uneven pattern (including empty chunks), mimicking the per-shard
// transmitter buffers the staged engine hands to StepSharded.  The
// concatenation in chunk order always equals txs.
func chunkify(txs []PacketID, nc int, skew int) [][]PacketID {
	chunks := make([][]PacketID, nc)
	i := 0
	for c := 0; c < nc; c++ {
		n := (len(txs) - i) / (nc - c)
		// Skew chunk sizes so boundaries move across calls: some chunks
		// empty, some oversized.
		if c%3 == skew%3 && n > 0 {
			n += min(len(txs)-i-n*(nc-c-1), n)
		}
		if c == nc-1 {
			n = len(txs) - i
		}
		chunks[c] = txs[i : i+n]
		i += n
	}
	return chunks
}

// reverseFan executes the fanned stages in reverse index order, single
// threaded.  StepSharded's contract says stage order cannot matter —
// each stage index writes disjoint state — so results must be identical
// to the inline ascending fan.
func reverseFan(n int, f func(int)) {
	for i := n - 1; i >= 0; i-- {
		f(i)
	}
}

// stepBothEqual drives one slot through ref.Step(flat) and
// shard.StepSharded(chunks) and fails on any observable divergence.
func stepBothEqual(t *testing.T, now int64, ref, shard *Channel, txs []PacketID, chunks [][]PacketID, fan FanOut) {
	t.Helper()
	rc, re := ref.Step(now, txs)
	sc, se := shard.StepSharded(now, chunks, fan)
	if rc != sc {
		t.Fatalf("slot %d (%v): class %v (Step) vs %v (StepSharded)", now, txs, rc, sc)
	}
	if (re == nil) != (se == nil) {
		t.Fatalf("slot %d (%v): event %v (Step) vs %v (StepSharded)", now, txs, re, se)
	}
	if re != nil {
		if re.Slot != se.Slot || re.WindowStart != se.WindowStart || len(re.Packets) != len(se.Packets) {
			t.Fatalf("slot %d: event %+v (Step) vs %+v (StepSharded)", now, re, se)
		}
		for i := range re.Packets {
			if re.Packets[i] != se.Packets[i] {
				t.Fatalf("slot %d: event delivers %v (Step) vs %v (StepSharded)", now, re.Packets, se.Packets)
			}
		}
	}
	if ref.Stats() != shard.Stats() {
		t.Fatalf("slot %d: stats %+v (Step) vs %+v (StepSharded)", now, ref.Stats(), shard.Stats())
	}
}

// FuzzStepShardedAgainstStep pins the pre-reduce contract: feeding the
// staged engine's per-shard chunks through StepSharded is observably
// identical to feeding their concatenation through Step — for any chunk
// boundaries, any fan execution order, and schedules spanning silence,
// decoding events, and overfull bad slots.  Encoding matches
// FuzzChannelAgainstReference: byte 0 picks κ, byte 1 the window cap,
// byte 2 the chunk count and skew; each following byte is one slot.
func FuzzStepShardedAgainstStep(f *testing.F) {
	f.Add([]byte{0x03, 0x08, 0x05, 0x02, 0x13, 0x00, 0x21, 0x01})
	f.Add([]byte{0x00, 0x00, 0x01, 0x01, 0x01})
	f.Add([]byte{0x07, 0x04, 0xff, 0x0f, 0x12, 0x31, 0x02, 0x00, 0x42, 0x05})
	f.Add([]byte{0x01, 0x02, 0x10, 0x2f, 0x2f, 0x2f, 0x2f})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 4 {
			t.Skip()
		}
		kappa := 1 + int(data[0]%8)
		maxWindow := int(data[1] % 16)
		nc := 1 + int(data[2]&0x0f)
		skew := int(data[2] >> 4)
		ref := New(kappa, maxWindow)
		shard := New(kappa, maxWindow)
		fan := FanOut(nil) // nil fan = inline ascending, per the contract
		if skew%2 == 1 {
			fan = reverseFan
		}
		txs := make([]PacketID, 0, 16)
		for now, b := range data[3:] {
			n := int(b & 0x0f)
			off := int(b >> 4)
			txs = txs[:0]
			for i := 0; i < n; i++ {
				txs = append(txs, PacketID((off+i)%24))
			}
			stepBothEqual(t, int64(now), ref, shard, txs, chunkify(txs, nc, skew+now), fan)
		}
	})
}

// TestStepShardedSparseIDs exercises the arena-backed occupancy index
// with IDs far outside the dense fuzz pool — huge positive, negative,
// and page-boundary-straddling values — through both step paths.
func TestStepShardedSparseIDs(t *testing.T) {
	ids := []PacketID{
		-1 << 40, -513, -512, -1, 0, 1, 511, 512, 1 << 20, 1<<40 + 7, 1<<62 - 1,
	}
	ref := New(4, 0)
	shard := New(4, 0)
	now := int64(0)
	// Overfull slot: all sparse IDs at once (bad), then replay, then
	// drip them in singletons so decoding events deliver them.
	all := append([]PacketID(nil), ids...)
	stepBothEqual(t, now, ref, shard, all, chunkify(all, 3, 1), nil)
	now++
	for _, id := range ids {
		one := []PacketID{id}
		stepBothEqual(t, now, ref, shard, one, chunkify(one, 2, 0), nil)
		now++
	}
	if ref.Stats().Delivered == 0 {
		t.Fatal("schedule delivered nothing; sparse-ID coverage is vacuous")
	}
	if got := shard.PendingPackets(); got != ref.PendingPackets() {
		t.Fatalf("pending %d (StepSharded) vs %d (Step)", got, ref.PendingPackets())
	}
}

// TestStepRepeatMatchesStep pins the O(1) bad-slot replay: after a Bad
// slot, StepRepeat must be observably identical to a full Step with the
// same transmitter multiset, and a subsequent schedule must play out
// identically on both channels.
func TestStepRepeatMatchesStep(t *testing.T) {
	ref := New(2, 0)
	rep := New(2, 0)
	bad := []PacketID{10, 11, 12} // 3 > κ=2: Bad
	for now := int64(0); now < 2; now++ {
		rc, _ := ref.Step(now, bad)
		pc, _ := rep.Step(now, bad)
		if rc != Bad || pc != Bad {
			t.Fatalf("setup slot %d: classes %v/%v, want Bad", now, rc, pc)
		}
	}
	for now := int64(2); now < 7; now++ {
		rc, re := ref.Step(now, bad)
		pc, pe := rep.StepRepeat(now)
		if rc != pc || (re == nil) != (pe == nil) {
			t.Fatalf("slot %d: Step(%v, %v) vs StepRepeat(%v, %v)", now, rc, re, pc, pe)
		}
	}
	if ref.Stats() != rep.Stats() {
		t.Fatalf("stats %+v (Step) vs %+v (StepRepeat)", ref.Stats(), rep.Stats())
	}
	// The channels must agree after coasting ends, too: build a decoding
	// event on both.
	for now := int64(7); now < 12; now++ {
		one := []PacketID{PacketID(now)}
		rc, re := ref.Step(now, one)
		pc, pe := rep.Step(now, one)
		if rc != pc || (re == nil) != (pe == nil) {
			t.Fatalf("post-coast slot %d: %v/%v vs %v/%v", now, rc, re, pc, pe)
		}
	}
}

// TestStepRepeatPanicsWithoutBad: replaying is only legal immediately
// after a Bad slot.
func TestStepRepeatPanicsWithoutBad(t *testing.T) {
	for name, prep := range map[string]func(c *Channel){
		"fresh": func(*Channel) {},
		"after-good": func(c *Channel) {
			c.Step(0, []PacketID{1})
		},
		"after-silent": func(c *Channel) {
			c.Step(0, nil)
		},
	} {
		t.Run(name, func(t *testing.T) {
			c := New(2, 0)
			prep(c)
			defer func() {
				if recover() == nil {
					t.Fatal("StepRepeat without a preceding Bad slot should panic")
				}
			}()
			c.StepRepeat(1)
		})
	}
}

// TestStepShardedDuplicatePanic pins which duplicate the sharded dup
// check reports: the panic message must be deterministic at any fan,
// naming a duplicated packet regardless of chunk boundaries.
func TestStepShardedDuplicatePanic(t *testing.T) {
	txs := make([]PacketID, 0, 40)
	for i := 0; i < 19; i++ {
		txs = append(txs, PacketID(i))
	}
	txs = append(txs, 7, 3) // two duplicates; shard merge order picks the winner
	var msgs []string
	for _, nc := range []int{1, 3, 16} {
		for _, fan := range []FanOut{nil, reverseFan} {
			c := New(2, 0)
			func() {
				defer func() {
					r := recover()
					if r == nil {
						t.Fatalf("nc=%d: duplicate transmitter should panic", nc)
					}
					msgs = append(msgs, fmt.Sprint(r))
				}()
				c.StepSharded(0, chunkify(txs, nc, 0), fan)
			}()
		}
	}
	for _, m := range msgs[1:] {
		if m != msgs[0] {
			t.Fatalf("duplicate panic message depends on chunking/fan: %q vs %q", m, msgs[0])
		}
	}
}
