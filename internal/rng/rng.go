// Package rng provides a deterministic, seedable pseudo-random number
// generator and the sampling routines the simulator needs.
//
// The generator is xoshiro256++ (Blackman & Vigna), chosen because it is
// fast, has a 256-bit state that is easy to split deterministically, and
// is reproducible across platforms — properties the stochastic-simulation
// harness depends on.  Every simulation trial owns its own *Rand, so
// trials can run in parallel without locks and a (seed, trial) pair
// always replays the same execution.
package rng

import "math"

// Rand is a xoshiro256++ pseudo-random number generator.  It is not safe
// for concurrent use; give each goroutine its own Rand (see Split).
type Rand struct {
	s [4]uint64
}

// New returns a generator seeded from the given seed.  Distinct seeds
// yield decorrelated streams: the state is expanded with SplitMix64 as
// recommended by the xoshiro authors.
func New(seed uint64) *Rand {
	r := new(Rand)
	r.Seed(seed)
	return r
}

// Seed resets the generator to the deterministic state derived from seed.
func (r *Rand) Seed(seed uint64) {
	sm := seed
	for i := range r.s {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
	// A state of all zeros is the one forbidden state; the SplitMix64
	// expansion cannot produce it, but guard anyway.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *Rand) Uint64() uint64 {
	s := &r.s
	result := rotl(s[0]+s[3], 23) + s[0]
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

// Split returns a new generator deterministically derived from r's
// current state.  The child stream is decorrelated from the parent's
// subsequent output; use it to give each parallel trial its own stream.
func (r *Rand) Split() *Rand {
	return New(r.Uint64())
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) * 0x1p-53
}

// Intn returns a uniform int in [0, n).  It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(r.Uint64n(uint64(n)))
}

// Int63n returns a uniform int64 in [0, n).  It panics if n <= 0.
func (r *Rand) Int63n(n int64) int64 {
	if n <= 0 {
		panic("rng: Int63n with non-positive n")
	}
	return int64(r.Uint64n(uint64(n)))
}

// Uint64n returns a uniform uint64 in [0, n) using Lemire's unbiased
// multiply-shift rejection method.  It panics if n == 0.
func (r *Rand) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n with zero n")
	}
	for {
		v := r.Uint64()
		hi, lo := mul128(v, n)
		if lo >= n || lo >= -n%n {
			return hi
		}
	}
}

// mul128 returns the 128-bit product of a and b as (hi, lo).
func mul128(a, b uint64) (hi, lo uint64) {
	const mask = 1<<32 - 1
	aLo, aHi := a&mask, a>>32
	bLo, bHi := b&mask, b>>32
	t := aLo*bHi + (aLo*bLo)>>32
	w1 := t & mask
	w2 := t >> 32
	w1 += aHi * bLo
	hi = aHi*bHi + w2 + w1>>32
	lo = a * b
	return hi, lo
}

// Bernoulli reports true with probability p.  Values of p outside [0, 1]
// are clamped.
func (r *Rand) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Geometric returns the number of failures before the first success in
// independent Bernoulli(p) trials; that is, a sample from the geometric
// distribution on {0, 1, 2, ...} with success probability p.
// It panics if p <= 0 or p > 1.
func (r *Rand) Geometric(p float64) int64 {
	if p <= 0 || p > 1 {
		panic("rng: Geometric with p outside (0, 1]")
	}
	if p == 1 {
		return 0
	}
	// Inversion: floor(ln U / ln(1-p)), U uniform in (0, 1).
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	g := math.Floor(math.Log(u) / math.Log1p(-p))
	if g < 0 {
		return 0
	}
	if g > math.MaxInt64/2 {
		return math.MaxInt64 / 2
	}
	return int64(g)
}

// Binomial returns a sample from Binomial(n, p): the number of successes
// in n independent Bernoulli(p) trials.  The implementation uses
// geometric skipping, which is exact and runs in O(np+1) expected time —
// proportional to the expected number of successes, which is the work the
// caller is about to do with them anyway.  For p > 1/2 it counts failures
// instead, so the cost is O(n·min(p, 1-p) + 1).
func (r *Rand) Binomial(n int64, p float64) int64 {
	if n < 0 {
		panic("rng: Binomial with negative n")
	}
	if p <= 0 || n == 0 {
		return 0
	}
	if p >= 1 {
		return n
	}
	if p > 0.5 {
		return n - r.Binomial(n, 1-p)
	}
	var successes int64
	i := r.Geometric(p)
	for i < n {
		successes++
		i += 1 + r.Geometric(p)
	}
	return successes
}

// Poisson returns a sample from Poisson(lambda).  For small lambda it
// uses Knuth's product method; for large lambda it splits the mean and
// sums, keeping the product method's terms away from underflow.
func (r *Rand) Poisson(lambda float64) int64 {
	if lambda <= 0 {
		return 0
	}
	const chunk = 30
	var n int64
	for lambda > chunk {
		n += r.poissonKnuth(chunk)
		lambda -= chunk
	}
	return n + r.poissonKnuth(lambda)
}

func (r *Rand) poissonKnuth(lambda float64) int64 {
	limit := math.Exp(-lambda)
	prod := r.Float64()
	var n int64
	for prod > limit {
		n++
		prod *= r.Float64()
	}
	return n
}

// Perm returns a uniformly random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := 1; i < n; i++ {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle pseudo-randomizes the order of n elements using the provided
// swap function (Fisher–Yates).
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// SampleIndices selects each index in [0, n) independently with
// probability p and appends the selected indices to dst in increasing
// order.  It runs in O(k+1) expected time where k is the number selected,
// using geometric skipping.  It returns the extended slice.
func (r *Rand) SampleIndices(dst []int, n int, p float64) []int {
	if p <= 0 || n == 0 {
		return dst
	}
	if p >= 1 {
		for i := 0; i < n; i++ {
			dst = append(dst, i)
		}
		return dst
	}
	i := r.Geometric(p)
	for i < int64(n) {
		dst = append(dst, int(i))
		i += 1 + r.Geometric(p)
	}
	return dst
}

// ExpFloat64 returns an exponentially distributed float64 with rate 1.
func (r *Rand) ExpFloat64() float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -math.Log(u)
}

// NormFloat64 returns a standard normal sample (Marsaglia polar method).
func (r *Rand) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}
