package sweep

import (
	"sync"
	"sync/atomic"

	"repro/internal/sim"
)

// protoSeedSalt decorrelates a trial's protocol rng stream from its
// arrival stream (which uses the trial seed directly via sim.Config).
const protoSeedSalt = 0x70726f746f636f6c // "protocol"

// Options tunes sweep execution.  The zero value is ready to use.
type Options struct {
	// Parallelism bounds concurrent trials (0 = GOMAXPROCS).
	Parallelism int
	// OnCell, if set, is called as each cell's last trial finishes, with
	// the number of finished cells and the total.  Calls are serialized;
	// cells complete in scheduling order, not necessarily grid order.
	OnCell func(done, total int, cell *CellSummary)
}

// trialOut carries one trial's result plus the side-channel measurements
// the sim.Result does not hold.
type trialOut struct {
	res       *sim.Result
	errEpochs int64
}

// Run expands the spec and executes every (cell, trial) pair, fanning
// the flattened trial list out over sim.RunTrials.  Trial seeds derive
// deterministically from spec.Seed in canonical cell order, so the
// resulting Grid is identical for any parallelism.
func Run(spec Spec, opts Options) (*Grid, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	cells := spec.Expand()
	jobs := len(cells) * spec.Trials

	grid := &Grid{Spec: spec, Cells: make([]CellSummary, len(cells))}
	// Trials self-collect per cell so a cell can be summarized (and
	// progress reported) the moment its last trial lands, while other
	// cells are still running.  Each slot is written by exactly one
	// goroutine; the atomic countdown orders those writes before the
	// summarizing goroutine's reads.
	outs := make([]trialOut, jobs)
	remaining := make([]int32, len(cells))
	for i := range remaining {
		remaining[i] = int32(spec.Trials)
	}
	var progress struct {
		sync.Mutex
		done int
	}
	sim.RunTrials(jobs, spec.Seed, opts.Parallelism, func(job int, seed uint64) *sim.Result {
		cellIdx := job / spec.Trials
		sc := cells[cellIdx]
		var errCount int64
		proto := spec.buildProtocol(sc, seed^protoSeedSalt, &errCount)
		res := sim.Run(spec.config(sc, seed), proto, spec.buildArrival(sc))
		outs[job] = trialOut{res: res, errEpochs: errCount}
		if atomic.AddInt32(&remaining[cellIdx], -1) == 0 {
			grid.Cells[cellIdx] = summarize(sc, outs[cellIdx*spec.Trials:(cellIdx+1)*spec.Trials])
			if opts.OnCell != nil {
				progress.Lock()
				progress.done++
				opts.OnCell(progress.done, len(cells), &grid.Cells[cellIdx])
				progress.Unlock()
			}
		}
		return res
	})
	return grid, nil
}
