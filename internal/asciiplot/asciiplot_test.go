package asciiplot

import (
	"strings"
	"testing"
)

func TestRenderBasic(t *testing.T) {
	p := Plot{Title: "test plot", XLabel: "x", YLabel: "y", Width: 20, Height: 5}
	p.Add(Series{Name: "line", X: []float64{0, 1, 2, 3}, Y: []float64{0, 1, 2, 3}})
	out := p.Render()
	if !strings.Contains(out, "test plot") {
		t.Fatal("title missing")
	}
	if !strings.Contains(out, "*") {
		t.Fatal("marker missing")
	}
	if !strings.Contains(out, "legend: *=line") {
		t.Fatalf("legend missing:\n%s", out)
	}
	if !strings.Contains(out, "x: x") {
		t.Fatal("axis label missing")
	}
}

func TestRenderMultipleSeries(t *testing.T) {
	p := Plot{Width: 30, Height: 8}
	p.Add(Series{Name: "a", X: []float64{0, 1}, Y: []float64{0, 1}})
	p.Add(Series{Name: "b", X: []float64{0, 1}, Y: []float64{1, 0}})
	out := p.Render()
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Fatalf("markers missing:\n%s", out)
	}
}

func TestRenderLogY(t *testing.T) {
	p := Plot{Width: 30, Height: 8, LogY: true, YLabel: "v"}
	p.Add(Series{Name: "exp", X: []float64{0, 1, 2, 3}, Y: []float64{1, 10, 100, 1000}})
	out := p.Render()
	if !strings.Contains(out, "log scale") {
		t.Fatal("log marker missing")
	}
	if !strings.Contains(out, "1000") {
		t.Fatalf("log axis label missing:\n%s", out)
	}
	// In log scale, the exponential series is a straight diagonal; the
	// top-right and bottom-left corners must both be set.
	lines := strings.Split(out, "\n")
	var gridLines []string
	for _, l := range lines {
		if strings.Contains(l, "|") {
			gridLines = append(gridLines, l[strings.Index(l, "|"):])
		}
	}
	if len(gridLines) != 8 {
		t.Fatalf("grid has %d rows", len(gridLines))
	}
	if !strings.Contains(gridLines[0], "*") || !strings.Contains(gridLines[7], "*") {
		t.Fatalf("log plot endpoints missing:\n%s", out)
	}
}

func TestRenderConstantSeries(t *testing.T) {
	p := Plot{Width: 10, Height: 4}
	p.Add(Series{Name: "flat", X: []float64{0, 1, 2}, Y: []float64{5, 5, 5}})
	out := p.Render()
	if out == "" || !strings.Contains(out, "*") {
		t.Fatalf("constant series failed:\n%s", out)
	}
}

func TestRenderSinglePoint(t *testing.T) {
	p := Plot{Width: 10, Height: 4}
	p.Add(Series{Name: "dot", X: []float64{1}, Y: []float64{1}})
	if out := p.Render(); !strings.Contains(out, "*") {
		t.Fatalf("single point missing:\n%s", out)
	}
}

func TestRenderNoData(t *testing.T) {
	p := Plot{Title: "empty"}
	if out := p.Render(); !strings.Contains(out, "no data") {
		t.Fatalf("empty plot: %q", out)
	}
}

func TestRenderLogAllNonPositive(t *testing.T) {
	p := Plot{LogY: true}
	p.Add(Series{Name: "z", X: []float64{0, 1}, Y: []float64{0, -1}})
	if out := p.Render(); !strings.Contains(out, "no plottable data") {
		t.Fatalf("nonpositive log plot: %q", out)
	}
}

func TestAddPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"mismatch": func() { (&Plot{}).Add(Series{X: []float64{1}, Y: nil}) },
		"empty":    func() { (&Plot{}).Add(Series{}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}
