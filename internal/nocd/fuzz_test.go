package nocd

import (
	"testing"

	"repro/internal/channel"
	"repro/internal/rng"
)

// FuzzSchemeOrderInsensitivity drives two same-seed scheme instances
// through a fuzz-derived slot sequence, feeding one the slot's delivery
// event with its packet list rotated and reversed, and asserts the two
// never diverge: a no-CD station's behavior may not depend on the order
// a medium happens to list the slot's decoded packets (which in turn
// derives from transmitter order).  Byte 0 picks the scheme and batch
// size; each following byte is one slot — the low nibble picks how many
// of the slot's sampled transmitters get delivered, the high nibble the
// rotation applied to the permuted instance's event list.
func FuzzSchemeOrderInsensitivity(f *testing.F) {
	f.Add([]byte{0x01, 0x23, 0xff, 0x40, 0x02})
	f.Add([]byte{0x12, 0x00, 0x00, 0xf7, 0x31, 0x55})
	f.Add([]byte{0x0f, 0x81, 0x18, 0xff, 0xff, 0x04, 0x92})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2 {
			t.Skip()
		}
		build := NewUnbounded
		if data[0]&1 == 1 {
			build = NewRobust
		}
		n := 4 + int(data[0]>>1)%60
		plain := build(rng.New(77))
		perm := build(rng.New(77))

		ids := make([]channel.PacketID, n)
		for i := range ids {
			ids[i] = channel.PacketID(i * 3) // spread across shards
		}
		plain.Inject(0, ids)
		perm.Inject(0, ids)

		for slot, b := range data[1:] {
			now := int64(slot + 1)
			txP := plain.Transmitters(now, nil)
			txQ := perm.Transmitters(now, nil)
			if len(txP) != len(txQ) {
				t.Fatalf("slot %d: %d vs %d transmitters", now, len(txP), len(txQ))
			}
			for i := range txP {
				if txP[i] != txQ[i] {
					t.Fatalf("slot %d: transmitters diverge at %d: %v vs %v", now, i, txP, txQ)
				}
			}
			if len(txP) == 0 {
				plain.Observe(channel.Feedback{Slot: now, Silent: true})
				perm.Observe(channel.Feedback{Slot: now, Silent: true})
				continue
			}
			deliver := int(b&0x0f) % (len(txP) + 1)
			if deliver == 0 {
				// A busy slot with no deliveries: a collision.
				plain.Observe(channel.Feedback{Slot: now})
				perm.Observe(channel.Feedback{Slot: now})
				continue
			}
			pkts := append([]channel.PacketID(nil), txP[:deliver]...)
			rot := int(b>>4) % deliver
			scrambled := append([]channel.PacketID(nil), pkts[rot:]...)
			scrambled = append(scrambled, pkts[:rot]...)
			for i, j := 0, len(scrambled)-1; i < j; i, j = i+1, j-1 {
				scrambled[i], scrambled[j] = scrambled[j], scrambled[i]
			}
			plain.Observe(channel.Feedback{Slot: now, Event: &channel.Event{
				Slot: now, WindowStart: now, Packets: pkts}})
			perm.Observe(channel.Feedback{Slot: now, Event: &channel.Event{
				Slot: now, WindowStart: now, Packets: scrambled}})
			if plain.Pending() != perm.Pending() {
				t.Fatalf("slot %d: pending diverge %d vs %d", now, plain.Pending(), perm.Pending())
			}
			for sh := 0; sh < plain.Shards(); sh++ {
				if plain.ShardPending(sh) != perm.ShardPending(sh) {
					t.Fatalf("slot %d shard %d: pending diverge %d vs %d",
						now, sh, plain.ShardPending(sh), perm.ShardPending(sh))
				}
			}
		}
	})
}
