package sweep

import (
	"encoding/json"
	"fmt"

	"repro/internal/report"
	"repro/internal/stats"
)

// Agg summarizes one metric across a cell's trials.
type Agg struct {
	Mean   float64 `json:"mean"`
	Stddev float64 `json:"stddev"`
	Min    float64 `json:"min"`
	Max    float64 `json:"max"`
}

func aggOf(s stats.Summary) Agg {
	return Agg{Mean: s.Mean(), Stddev: s.Stddev(), Min: s.Min(), Max: s.Max()}
}

// SlotMix is the channel's slot-class and event accounting summed over a
// cell's trials.
type SlotMix struct {
	Silent int64 `json:"silent"`
	Good   int64 `json:"good"`
	Bad    int64 `json:"bad"`
	Jammed int64 `json:"jammed"`
	Events int64 `json:"events"`
}

// CellSummary aggregates one cell's trials.
type CellSummary struct {
	Scenario
	Trials int `json:"trials"`

	// Throughput is per-trial completion throughput (delivered per slot
	// from first arrival to last delivery).
	Throughput Agg `json:"throughput"`
	// MaxBacklog is the per-trial peak backlog.
	MaxBacklog Agg `json:"max_backlog"`
	// LatencyP50 and LatencyP99 aggregate per-trial latency quantiles
	// over trials that delivered at least one packet.
	LatencyP50 Agg `json:"latency_p50"`
	LatencyP99 Agg `json:"latency_p99"`

	// Totals across all trials of the cell.
	Arrivals  int64 `json:"arrivals"`
	Delivered int64 `json:"delivered"`
	Pending   int64 `json:"pending"`
	Elapsed   int64 `json:"elapsed"`
	// ErrorEpochs counts Definition 2 error epochs (dba only; 0 otherwise).
	ErrorEpochs int64   `json:"error_epochs"`
	Slots       SlotMix `json:"slots"`
}

// summarize folds one cell's trial results into a CellSummary.
func summarize(sc Scenario, trials []trialOut) CellSummary {
	cell := CellSummary{Scenario: sc, Trials: len(trials)}
	var thpt, backlog, p50, p99 stats.Summary
	for _, out := range trials {
		r := out.res
		thpt.Add(r.CompletionThroughput())
		backlog.Add(float64(r.MaxBacklog))
		if r.LatencySample != nil && r.LatencySample.Len() > 0 {
			qs := r.LatencySample.Quantiles(0.50, 0.99)
			p50.Add(qs[0])
			p99.Add(qs[1])
		}
		cell.Arrivals += r.Arrivals
		cell.Delivered += r.Delivered
		cell.Pending += int64(r.Pending)
		cell.Elapsed += r.Elapsed
		cell.ErrorEpochs += out.errEpochs
		cell.Slots.Silent += r.Channel.SilentSlots
		cell.Slots.Good += r.Channel.GoodSlots
		cell.Slots.Bad += r.Channel.BadSlots
		cell.Slots.Jammed += r.Channel.JammedSlots
		cell.Slots.Events += r.Channel.Events
	}
	cell.Throughput = aggOf(thpt)
	cell.MaxBacklog = aggOf(backlog)
	cell.LatencyP50 = aggOf(p50)
	cell.LatencyP99 = aggOf(p99)
	return cell
}

// Grid is the result of a sweep: the (normalized) spec it ran and one
// summary per cell, in canonical expansion order.
type Grid struct {
	Spec  Spec          `json:"spec"`
	Cells []CellSummary `json:"cells"`
}

// JSON renders the grid as indented, deterministic JSON: cell order is
// the canonical expansion order and no timestamps or host details are
// included, so reruns with the same spec and seed are byte-identical.
func (g *Grid) JSON() ([]byte, error) {
	return json.MarshalIndent(g, "", "  ")
}

// Table renders one row per cell with the headline metrics.
func (g *Grid) Table() *report.Table {
	title := "sweep"
	if g.Spec.Name != "" {
		title = fmt.Sprintf("sweep %s", g.Spec.Name)
	}
	t := report.NewTable(title,
		"model", "protocol", "arrival", "kappa", "rate", "jammer", "adversary", "trials",
		"throughput", "maxBacklog", "p50", "p99",
		"delivered", "pending", "errorEpochs", "silent", "good", "bad", "jammed")
	for i := range g.Cells {
		c := &g.Cells[i]
		t.AddRow(c.Model, c.Protocol, c.Arrival, c.Kappa, c.Rate, c.Jammer, c.Adversary, c.Trials,
			c.Throughput.Mean, c.MaxBacklog.Mean, c.LatencyP50.Mean, c.LatencyP99.Mean,
			c.Delivered, c.Pending, c.ErrorEpochs,
			c.Slots.Silent, c.Slots.Good, c.Slots.Bad, c.Slots.Jammed)
	}
	return t
}

// CSV renders the grid's table as CSV.
func (g *Grid) CSV() string { return g.Table().CSV() }

// BenchCell is one row of the compact benchmark artifact: the headline
// metrics a performance trajectory is tracked by.
type BenchCell struct {
	Key         string  `json:"key"`
	Throughput  float64 `json:"throughput"`
	MaxBacklog  float64 `json:"max_backlog"`
	LatencyP99  float64 `json:"latency_p99"`
	ErrorEpochs int64   `json:"error_epochs"`
}

// BenchArtifact is the diff-friendly benchmark summary: just the spec
// identity and per-cell headline means, small enough to commit and
// byte-stable across reruns of the same spec and seed.
type BenchArtifact struct {
	Name  string      `json:"name,omitempty"`
	Seed  uint64      `json:"seed"`
	Cells []BenchCell `json:"cells"`
}

// Bench reduces the grid to its benchmark artifact.
func (g *Grid) Bench() BenchArtifact {
	b := BenchArtifact{Name: g.Spec.Name, Seed: g.Spec.Seed, Cells: make([]BenchCell, len(g.Cells))}
	for i := range g.Cells {
		c := &g.Cells[i]
		b.Cells[i] = BenchCell{
			Key:         c.Key(),
			Throughput:  c.Throughput.Mean,
			MaxBacklog:  c.MaxBacklog.Mean,
			LatencyP99:  c.LatencyP99.Mean,
			ErrorEpochs: c.ErrorEpochs,
		}
	}
	return b
}
