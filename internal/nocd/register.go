package nocd

import "repro/internal/protocol"

// Registry entries for the no-CD schemes.  NoCDOnly steers the sweep
// layer: these schedules assume stations hear nothing but their own
// delivery, so grids pair them only with the classical:none model.
// (The sim layer itself runs them on any medium — E16 puts the
// unbounded scheme on the capture channel deliberately.)
func init() {
	protocol.Register(protocol.Info{
		Name:     "robust",
		Summary:  "robust sawtooth no-CD scheme, every density recurs each phase (Jiang–Zheng)",
		NoCDOnly: true,
		Build: func(p protocol.Params) protocol.Protocol {
			return NewRobust(p.Rand)
		},
	})
	protocol.Register(protocol.Info{
		Name:     "unbounded",
		Summary:  "unknown-n geometric back-on no-CD scheme (Fernández Anta–Mosteiro–Muñoz)",
		NoCDOnly: true,
		Build: func(p protocol.Params) protocol.Protocol {
			return NewUnbounded(p.Rand)
		},
	})
}
