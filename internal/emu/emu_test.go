package emu

import (
	"context"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/sim"
)

// grid is the lossless-equivalence matrix: every registered protocol on
// a medium it pairs with, plus arrival/adversary variety, sized to run
// in test time.
var grid = []struct {
	name string
	cfg  Config
}{
	{"dba-coded-batch", Config{
		Protocol: "dba", Medium: "coded", Kappa: 8,
		Arrival: "batch", BatchN: 96, Horizon: 1, Drain: true,
		Seed: 11, Stations: 3,
	}},
	{"beb-classical-bernoulli", Config{
		Protocol: "beb", Medium: "classical:ternary",
		Arrival: "bernoulli", Rate: 0.02, Horizon: 1500, Drain: true,
		Seed: 23, Stations: 2,
	}},
	{"aloha-capture-poisson", Config{
		Protocol: "aloha", Medium: "capture:4", AlohaP: 0.01,
		Arrival: "poisson", Rate: 0.005, Horizon: 1200, Drain: true,
		Seed: 31, Stations: 2,
	}},
	{"genie-classical-binary-even", Config{
		Protocol: "genie", Medium: "classical:binary",
		Arrival: "even", Rate: 0.01, Horizon: 1200, Drain: true,
		Seed: 41, Stations: 3,
	}},
	{"mw-coded-burst", Config{
		Protocol: "mw", Medium: "coded:6", Kappa: 6,
		Arrival: "burst", Rate: 0.01, BurstWindow: 256, Horizon: 1024, Drain: true,
		Seed: 53, Stations: 2,
	}},
	{"robust-nocd-batch", Config{
		Protocol: "robust", Medium: "classical:none",
		Arrival: "batch", BatchN: 24, Horizon: 1, Drain: true,
		Seed: 61, Stations: 2,
	}},
	{"unbounded-nocd-batch", Config{
		Protocol: "unbounded", Medium: "classical:none",
		Arrival: "batch", BatchN: 24, Horizon: 1, Drain: true,
		Seed: 71, Stations: 3,
	}},
	{"dba-coded-adversary", Config{
		Protocol: "dba", Medium: "coded", Kappa: 8,
		Arrival: "bernoulli", Rate: 0.05, Horizon: 800, Drain: true,
		Adversary: "random:0.1", Seed: 83, Stations: 2,
	}},
}

// mustEqualSim fails unless the emulation Result is deeply equal to the
// simulator reference — the lossless correctness gate.
func mustEqualSim(t *testing.T, got *sim.Result, cfg Config) {
	t.Helper()
	want, err := SimReference(cfg)
	if err != nil {
		t.Fatalf("SimReference: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("emulation diverges from simulator:\n emu %s\n sim %s\n emu %+v\n sim %+v",
			got, want, got, want)
	}
}

// TestInprocMatchesSim is the correctness gate in swarm mode: over the
// lossless in-proc transport, every grid cell must reproduce the
// simulator's Result exactly.
func TestInprocMatchesSim(t *testing.T) {
	for _, tc := range grid {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			res, err := Run(context.Background(), tc.cfg)
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			mustEqualSim(t, res.Sim, tc.cfg)
			for _, st := range res.Stations {
				if st.Conn.FramesSent == 0 || st.Conn.FramesRecv == 0 {
					t.Errorf("station %d moved no frames: %+v", st.Index, st.Conn)
				}
			}
		})
	}
}

// TestUDPMatchesSim runs the gate over real loopback UDP: the reliable
// link must deliver the same bytes, hence the same Result.
func TestUDPMatchesSim(t *testing.T) {
	for _, tc := range grid[:2] {
		tc := tc
		tc.cfg.Transport = "udp"
		t.Run(tc.name, func(t *testing.T) {
			res, err := Run(context.Background(), tc.cfg)
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			mustEqualSim(t, res.Sim, tc.cfg)
			for _, st := range res.Stations {
				if st.Conn.SegsSent == 0 || st.Conn.SegsRecv == 0 {
					t.Errorf("station %d moved no segments: %+v", st.Index, st.Conn)
				}
			}
		})
	}
}

// TestLossyUDPConverges injects datagram drops and duplicates on every
// link: the retransmit layer must absorb them — the run completes, the
// Result still matches the simulator exactly, and the stats prove
// faults actually fired.
func TestLossyUDPConverges(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	cfg := Config{
		Protocol: "dba", Medium: "coded", Kappa: 8,
		Arrival: "batch", BatchN: 48, Horizon: 1, Drain: true,
		Seed: 97, Stations: 3,
		Transport: "udp",
		Fault:     Fault{DropRate: 0.01, DupRate: 0.01, Seed: 5},
	}
	res, err := Run(ctx, cfg)
	if err != nil {
		t.Fatalf("Run under faults: %v", err)
	}
	// The reliable layer makes the lossy link lossless at frame level.
	lossless := cfg
	lossless.Fault = Fault{}
	mustEqualSim(t, res.Sim, lossless)
	var drops, dups, retrans uint64
	for _, st := range res.Stations {
		drops += st.Conn.FaultDrops
		dups += st.Conn.FaultDups
		retrans += st.Conn.Retransmits
	}
	if drops == 0 || dups == 0 {
		t.Errorf("fault plan never fired: drops=%d dups=%d", drops, dups)
	}
	if retrans == 0 {
		t.Errorf("no retransmissions despite %d injected drops", drops)
	}
}

// TestDeadStationFailsLoudly starves the coordinator of one station's
// answers: the run must fail with an error naming that station, within
// the slot timeout — never hang.
func TestDeadStationFailsLoudly(t *testing.T) {
	cfg := Config{
		Protocol: "beb", Medium: "classical:ternary",
		Arrival: "batch", BatchN: 8, Horizon: 1, Drain: true,
		Seed: 1, Stations: 2,
		SlotTimeout: 200 * time.Millisecond,
	}
	a0, b0 := NewPipe()
	a1, b1 := NewPipe() // peer never speaks
	defer a0.Close()
	defer a1.Close()
	defer b1.Close()
	done := make(chan error, 1)
	go func() { done <- RunStation(b0, 5*time.Second) }()

	start := time.Now()
	_, err := Coordinate(context.Background(), cfg, []Transport{a0, a1})
	if err == nil {
		t.Fatal("Coordinate succeeded with a dead station")
	}
	if !strings.Contains(err.Error(), "station 1") {
		t.Errorf("error does not name the dead station: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("dead station took %v to fail (want ≈ slot timeout)", elapsed)
	}
	// The live station must be released by the abort broadcast.
	select {
	case serr := <-done:
		if serr == nil {
			t.Error("live station exited without the coordinator error")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("live station hung after coordinator abort")
	}
}

// TestStationRejectsHostileCoordinator feeds a station garbage instead
// of the handshake: it must fail fast with an error, not hang.
func TestStationRejectsHostileCoordinator(t *testing.T) {
	a, b := NewPipe()
	defer a.Close()
	done := make(chan error, 1)
	go func() { done <- RunStation(b, 5*time.Second) }()
	if f, err := a.Recv(5 * time.Second); err != nil || f.Type != FrameHello {
		t.Fatalf("expected hello, got %v, %v", f, err)
	}
	if err := a.Send(&Frame{Type: FrameFeedback, Slot: 3}); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err == nil {
			t.Error("station accepted a feedback frame as its config")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("station hung on hostile coordinator")
	}
	// The station must also have reported the failure to the wire.
	if f, err := a.Recv(5 * time.Second); err != nil || f.Type != FrameError {
		t.Errorf("expected error frame back, got %v, %v", f, err)
	}
}

// TestRunValidatesConfig exercises the loud-failure configuration paths.
func TestRunValidatesConfig(t *testing.T) {
	bad := []Config{
		{Protocol: "dba", Kappa: 8, Horizon: 1, Stations: 0},
		{Protocol: "nope", Kappa: 8, Horizon: 1, Stations: 1},
		{Protocol: "dba", Medium: "classical:ternary", Horizon: 1, Stations: 1},
		{Protocol: "robust", Medium: "coded", Kappa: 8, Horizon: 1, Stations: 1},
		{Protocol: "beb", Medium: "warp", Horizon: 1, Stations: 1},
		{Protocol: "beb", Kappa: 8, Horizon: 1, Stations: 1, Arrival: "nope"},
		{Protocol: "beb", Kappa: 8, Horizon: 1, Stations: 1, Adversary: "nope"},
		{Protocol: "dba", Kappa: 0, Horizon: 1, Stations: 1},
		{Protocol: "dba", Kappa: 8, Horizon: 1, Stations: 1, Transport: "tcp"},
	}
	for _, cfg := range bad {
		if _, err := Run(context.Background(), cfg); err == nil {
			t.Errorf("Run accepted invalid config %+v", cfg)
		}
	}
}

// TestRunHonorsContext: a cancelled context aborts the run promptly
// with the context's error.
func TestRunHonorsContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfg := grid[0].cfg
	_, err := Run(ctx, cfg)
	if err == nil {
		t.Fatal("Run succeeded under a cancelled context")
	}
	if !strings.Contains(err.Error(), context.Canceled.Error()) {
		t.Errorf("error does not surface cancellation: %v", err)
	}
}
