package adversary

import (
	"math"
	"strings"
	"testing"

	"repro/internal/arrival"
	"repro/internal/channel"
	"repro/internal/jam"
	"repro/internal/rng"
)

func busy(slot int64) channel.Feedback   { return channel.Feedback{Slot: slot} }
func silent(slot int64) channel.Feedback { return channel.Feedback{Slot: slot, Silent: true} }
func event(slot int64) channel.Feedback {
	return channel.Feedback{Slot: slot, Event: &channel.Event{Slot: slot}}
}

func TestParseRoundTrip(t *testing.T) {
	cases := map[string]string{
		"random:0.25":      "random(0.250)",
		"burst:100/900":    "burst(100/900)",
		"reactive:32/128":  "reactive(32/128)",
		"sigmarho:200/0.1": "sigmarho(200/0.100)",
	}
	for desc, name := range cases {
		adv, err := Parse(desc)
		if err != nil {
			t.Fatalf("Parse(%q): %v", desc, err)
		}
		if adv.Name() != name {
			t.Fatalf("Parse(%q).Name() = %q, want %q", desc, adv.Name(), name)
		}
	}
	for _, none := range []string{"", "none"} {
		if adv, err := Parse(none); err != nil || adv != nil {
			t.Fatalf("Parse(%q) = %v, %v, want nil, nil", none, adv, err)
		}
	}
}

func TestParseRejects(t *testing.T) {
	for _, desc := range []string{
		"emp", "random:2", "random:-0.1", "random:x",
		"burst:0/10", "burst:5", "burst:-1/2", "burst:a/b",
		"reactive:0/5", "reactive:5/0", "reactive:5",
		"sigmarho:-1/0.1", "sigmarho:0/0", "sigmarho:10", "sigmarho:x/y",
		"random:NaN", "sigmarho:5/NaN", "sigmarho:5/+Inf", "sigmarho:5/2e6",
		"burst:9000000000000000000/1000000000000000000", "sigmarho:1099511627777/0.1",
		"reactive:1/9223372036854775806", "reactive:1099511627777/8",
	} {
		if _, err := Parse(desc); err == nil {
			t.Errorf("Parse(%q) accepted", desc)
		}
	}
}

func TestParseReturnsFreshInstances(t *testing.T) {
	a, _ := Parse("reactive:1/4")
	b, _ := Parse("reactive:1/4")
	if a == b {
		t.Fatal("Parse returned a shared instance for a stateful adversary")
	}
}

func TestKindClassification(t *testing.T) {
	for desc, wantJam := range map[string]bool{
		"random:0.1": true, "burst:10/90": true, "reactive:4/8": true,
		"sigmarho:10/0.1": false, "none": false, "bogus": false,
	} {
		if IsJammer(desc) != wantJam {
			t.Errorf("IsJammer(%q) = %v, want %v", desc, !wantJam, wantJam)
		}
	}
	if !IsAdaptive("reactive:4/8") || IsAdaptive("random:0.1") || IsAdaptive("sigmarho:1/0") {
		t.Fatal("IsAdaptive misclassifies")
	}
}

func TestNewRandomValidates(t *testing.T) {
	for _, rate := range []float64{-0.1, 1.5, math.NaN()} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewRandom(%v) accepted", rate)
				}
			}()
			NewRandom(rate)
		}()
	}
}

func TestBurstGapDutyCycle(t *testing.T) {
	j := &BurstGap{Burst: 3, Gap: 7}
	r := rng.New(1)
	var jammed int
	for now := int64(0); now < 100; now++ {
		if j.Jams(now, r) {
			jammed++
			if now%10 >= 3 {
				t.Fatalf("slot %d jammed outside the burst phase", now)
			}
		}
	}
	if jammed != 30 {
		t.Fatalf("jammed %d of 100 slots, want 30", jammed)
	}
}

func TestRandomMatchesLegacyJammer(t *testing.T) {
	// The ported random jammer must consume randomness exactly like
	// jam.Random, so legacy seeds reproduce identical jam patterns.
	ported, legacyJ := NewRandom(0.3), FromJam(&jam.Random{Rate: 0.3})
	for now := int64(0); now < 200; now++ {
		a, b := rng.New(uint64(now)), rng.New(uint64(now))
		if ported.Jams(now, a) != legacyJ.Jams(now, b) {
			t.Fatalf("slot %d: ported and legacy random jammers disagree", now)
		}
	}
	if legacyJ.Name() != "random(0.300)" {
		t.Fatalf("legacy adapter name %q", legacyJ.Name())
	}
	if FromJam(nil) != nil {
		t.Fatal("FromJam(nil) should be nil")
	}
}

func TestReactiveArmsOnNearDecode(t *testing.T) {
	j := NewReactive(3, 5)
	r := rng.New(1)
	// Two busy slots: not yet armed.
	j.Observe(busy(0))
	j.Observe(busy(1))
	if j.Jams(2, r) {
		t.Fatal("armed before the trigger")
	}
	// Third consecutive busy slot arms slots 3..7.
	j.Observe(busy(2))
	for now := int64(3); now < 8; now++ {
		if !j.Jams(now, r) {
			t.Fatalf("slot %d not jammed inside the burst", now)
		}
		j.Observe(busy(now)) // its own noise
	}
	if j.Jams(8, r) {
		t.Fatal("burst overran")
	}
	// The self-jammed slots must not have re-armed the attack.
	j.Observe(busy(8))
	j.Observe(busy(9))
	if j.Jams(10, r) {
		t.Fatal("self-jam noise counted toward re-arming")
	}
}

func TestReactiveResetsOnSilenceAndEvents(t *testing.T) {
	j := NewReactive(2, 3)
	r := rng.New(1)
	j.Observe(busy(0))
	j.Observe(silent(1)) // silence breaks the run
	j.Observe(busy(2))
	j.Observe(event(3)) // decode closes the window: too late to spoil
	j.Observe(busy(4))
	if j.Jams(5, r) {
		t.Fatal("armed despite run broken by silence and event")
	}
	j.Observe(busy(5))
	if !j.Jams(6, r) {
		t.Fatal("two consecutive busy slots failed to arm")
	}
}

func TestReactiveGapEquivalentToSilence(t *testing.T) {
	// The determinism contract: a gap in observed slots (fast-forwarded
	// idle stretch) must leave the jammer in exactly the state observed
	// silence would.  Feed one trace densely with explicit silence and
	// once sparsely with gaps; every jam decision must agree.
	dense := NewReactive(2, 4)
	for _, fb := range []channel.Feedback{
		busy(0), silent(1), silent(2), busy(3), busy(4), // arms 5..8
	} {
		dense.Observe(fb)
	}
	sparse := NewReactive(2, 4)
	for _, fb := range []channel.Feedback{busy(0), busy(3), busy(4)} {
		sparse.Observe(fb)
	}
	r := rng.New(1)
	for now := int64(5); now < 12; now++ {
		if dense.Jams(now, r) != sparse.Jams(now, r) {
			t.Fatalf("slot %d: dense and sparse observation disagree", now)
		}
	}
	if !dense.Jams(5, r) || dense.Jams(9, r) {
		t.Fatal("expected arming over slots 5..8")
	}
}

func TestReactiveReset(t *testing.T) {
	j := NewReactive(1, 10)
	j.Observe(busy(0))
	if !j.Jams(1, rng.New(1)) {
		t.Fatal("not armed")
	}
	j.Reset()
	if j.Jams(1, rng.New(1)) {
		t.Fatal("Reset left the jammer armed")
	}
}

func TestSigmaRhoFrontLoadsWithinBudget(t *testing.T) {
	s := &SigmaRho{Sigma: 10, Rho: 0.5}
	r := rng.New(1)
	var total int64
	for now := int64(0); now < 100; now++ {
		n := int64(s.Injects(now, r))
		total += n
		if budget := int64(10) + int64(0.5*float64(now+1)); total > budget {
			t.Fatalf("slot %d: injected %d exceeds budget %d", now, total, budget)
		}
		if now == 0 && n != 10 {
			t.Fatalf("slot 0 injected %d, want the full σ=10 burst", n)
		}
	}
	// Greedy: the whole admissible budget is spent.
	if want := int64(10) + int64(0.5*float64(100)); total != want {
		t.Fatalf("injected %d over 100 slots, want %d", total, want)
	}
}

func TestSigmaRhoNextAfterSkipsNothing(t *testing.T) {
	// Driving the process NextAfter-to-NextAfter (as the fast-forwarding
	// engine does) must inject exactly what dense stepping injects.
	r := rng.New(1)
	dense := &SigmaRho{Sigma: 3, Rho: 0.3}
	densePer := map[int64]int{}
	for now := int64(0); now < 50; now++ {
		if n := dense.Injects(now, r); n > 0 {
			densePer[now] = n
		}
	}
	sparse := &SigmaRho{Sigma: 3, Rho: 0.3}
	sparsePer := map[int64]int{}
	now := int64(0)
	for now < 50 {
		if n := sparse.Injects(now, r); n > 0 {
			sparsePer[now] = n
		}
		next := sparse.NextAfter(now)
		if next < 0 {
			break
		}
		if next <= now {
			t.Fatalf("NextAfter(%d) = %d did not advance", now, next)
		}
		now = next
	}
	if len(densePer) != len(sparsePer) {
		t.Fatalf("dense %v vs sparse %v", densePer, sparsePer)
	}
	for slot, n := range densePer {
		if sparsePer[slot] != n {
			t.Fatalf("slot %d: dense %d sparse %d", slot, n, sparsePer[slot])
		}
	}
}

func TestSigmaRhoPureBurstEnds(t *testing.T) {
	s := &SigmaRho{Sigma: 5, Rho: 0}
	r := rng.New(1)
	if s.Injects(0, r) != 5 {
		t.Fatal("σ burst not injected at slot 0")
	}
	if s.NextAfter(0) != -1 {
		t.Fatalf("NextAfter after exhausting σ = %d, want -1", s.NextAfter(0))
	}
	s.Reset()
	if s.Injects(3, r) != 5 {
		t.Fatal("Reset did not restore the budget")
	}
}

func TestArrivalsAdapter(t *testing.T) {
	inj := &SigmaRho{Sigma: 2, Rho: 0}
	p := Arrivals(inj)
	if p.Name() != inj.Name() {
		t.Fatal("adapter name mismatch")
	}
	if p.Injections(0, rng.New(1)) != 2 || p.NextAfter(0) != -1 {
		t.Fatal("adapter does not forward to the injector")
	}
	if !strings.Contains(p.Name(), "sigmarho") {
		t.Fatal("unexpected adapter name")
	}
}

func TestMutedArrivalsDoesNotObserve(t *testing.T) {
	// The muted adapter is for adversaries already hearing each slot
	// through the jam wrapper: it must not implement arrival.Observer,
	// while the standard adapter must.
	inj := &SigmaRho{Sigma: 1, Rho: 0}
	if _, ok := MutedArrivals(inj).(arrival.Observer); ok {
		t.Fatal("MutedArrivals forwards feedback")
	}
	if _, ok := Arrivals(inj).(arrival.Observer); !ok {
		t.Fatal("Arrivals lost its Observer forwarding")
	}
}

func TestSigmaRhoTinyRhoTerminates(t *testing.T) {
	// A pathologically small ρ means the next injection is unreachable
	// in any simulable horizon; NextAfter must report -1 promptly, not
	// scan the int64 range.
	s := &SigmaRho{Sigma: 1, Rho: 1e-300}
	r := rng.New(1)
	if s.Injects(0, r) != 1 {
		t.Fatal("σ burst missing")
	}
	if got := s.NextAfter(0); got != -1 {
		t.Fatalf("NextAfter = %d, want -1 (next budget crossing unrepresentable)", got)
	}
}
