package experiments

import (
	"fmt"

	"repro/internal/arrival"
	"repro/internal/core"
	"repro/internal/potential"
	"repro/internal/report"
	"repro/internal/rng"
	"repro/internal/sim"
)

// E1Backlog reproduces Theorem 11: if every window of w slots carries at
// most (1 − 5/ln κ)·w arrivals (w ≥ 16κ²), the backlog never exceeds 2w
// with high probability.  The adversary is the worst-case-shaped
// window-burst process (the entire window budget injected in one slot).
//
// The theorem's rate is vacuous for κ ≤ e⁵ ≈ 148, so rows with κ ≥ 256
// use the theorem rate, and additional rows exercise small κ at an
// empirical near-capacity rate (0.85) with proportionally smaller w to
// show the 2w bound holds far beyond what the loose constants promise.
func E1Backlog(scale Scale, seed uint64) *Output {
	out := &Output{
		ID:    "E1",
		Title: "backlog bound under adversarial window-burst arrivals",
		Claim: "Theorem 11: arrivals ≤ (1−5/ln κ)w per window of w ≥ 16κ² ⇒ backlog ≤ 2w whp",
	}
	type row struct {
		kappa     int
		w         int64
		rate      float64
		rateLabel string
	}
	var rows []row
	// Theorem-rate rows (κ large enough for a positive rate).
	for _, kappa := range []int{256, 512} {
		if scale == Quick && kappa > 256 {
			continue
		}
		w := potential.TheoremMinWindow(kappa)
		rows = append(rows, row{kappa, w, potential.TheoremRate(kappa), "theorem"})
	}
	// Empirical near-capacity rows for practical κ.
	for _, kappa := range []int{16, 64, 256} {
		if scale == Quick && kappa > 64 {
			continue
		}
		w := int64(scale.pick(4096, 16384))
		rows = append(rows, row{kappa, w, 0.85, "empirical"})
	}

	tbl := report.NewTable("Max backlog vs the 2w bound (window-burst adversary)",
		"kappa", "w", "rate", "rateSrc", "windows", "arrivals", "maxBacklog", "2w", "backlog/w", "bound holds")
	trials := scale.pick(3, 5)
	for _, rw := range rows {
		windows := int64(scale.pick(4, 8))
		horizon := windows * rw.w
		perWindow := int(rw.rate * float64(rw.w))
		results := sim.RunTrials(trials, seed+uint64(rw.kappa), 0, func(trial int, s uint64) *sim.Result {
			return sim.Run(sim.Config{Kappa: rw.kappa, Horizon: horizon, Seed: s},
				core.New(rw.kappa, rng.New(s^0xD1B)),
				&arrival.WindowBurst{Window: rw.w, PerWindow: perWindow})
		})
		worst := sim.Aggregate(results, func(r *sim.Result) float64 { return float64(r.MaxBacklog) })
		arrivals := sim.Aggregate(results, func(r *sim.Result) float64 { return float64(r.Arrivals) })
		holds := worst.Max() <= 2*float64(rw.w)
		tbl.AddRow(rw.kappa, rw.w, rw.rate, rw.rateLabel, windows,
			int64(arrivals.Mean()), worst.Max(), 2*rw.w,
			worst.Max()/float64(rw.w), boolMark(holds))
	}
	out.Tables = append(out.Tables, tbl)
	out.Notes = append(out.Notes,
		fmt.Sprintf("theorem rate (1-5/ln κ): κ=256 → %.3f, κ=1024 → %.3f — loose constants; empirical rows show the bound holds at far higher load",
			potential.TheoremRate(256), potential.TheoremRate(1024)),
		"the window-burst adversary maximizes instantaneous backlog at a given window rate",
	)
	return out
}
