package phy

import (
	"testing"

	"repro/internal/rng"
)

func TestModulateDemodulateRoundTrip(t *testing.T) {
	r := rng.New(1)
	bits := RandomBits(256, r)
	sig := ModulateBPSK(bits)
	got := DemodulateBPSK(sig, 1)
	if BitErrors(bits, got) != 0 {
		t.Fatal("noiseless BPSK round trip has errors")
	}
}

func TestDemodulateWithPhaseRotation(t *testing.T) {
	r := rng.New(2)
	bits := RandomBits(128, r)
	sig := ModulateBPSK(bits)
	gain := complex(0.3, 0.7) // attenuation + phase shift
	for i := range sig {
		sig[i] *= gain
	}
	got := DemodulateBPSK(sig, gain)
	if BitErrors(bits, got) != 0 {
		t.Fatal("phase-rotated BPSK round trip has errors")
	}
}

func TestDemodulateLowNoise(t *testing.T) {
	r := rng.New(3)
	bits := RandomBits(10000, r)
	sig := ModulateBPSK(bits)
	AddNoise(sig, 0.2, r) // SNR ~14 dB: essentially error-free
	got := DemodulateBPSK(sig, 1)
	if ber := BitErrorRate(bits, got); ber > 0.001 {
		t.Fatalf("BER %v at high SNR", ber)
	}
}

func TestSuperposeAdditive(t *testing.T) {
	a := []byte{1, 0, 1}
	b := []byte{0, 0, 1}
	y := Superpose([]Tx{{Bits: a, Gain: 1, Offset: 0}, {Bits: b, Gain: 1, Offset: 0}})
	// Symbol sums: (+1)+(-1)=0, (-1)+(-1)=-2, (+1)+(+1)=+2.
	want := Signal{0, -2, 2}
	for i := range want {
		if y[i] != want[i] {
			t.Fatalf("superposition[%d] = %v, want %v", i, y[i], want[i])
		}
	}
}

func TestSuperposeOffsets(t *testing.T) {
	a := []byte{1, 1}
	b := []byte{1}
	y := Superpose([]Tx{{Bits: a, Gain: 1, Offset: 0}, {Bits: b, Gain: 1, Offset: 3}})
	if len(y) != 4 {
		t.Fatalf("superposition length %d, want 4", len(y))
	}
	if y[2] != 0 {
		t.Fatalf("gap symbol not silent: %v", y[2])
	}
	if y[3] != 1 {
		t.Fatalf("offset symbol = %v, want 1", y[3])
	}
}

func TestSuccessiveCancelPowerDisparity(t *testing.T) {
	r := rng.New(5)
	bitsA := RandomBits(500, r)
	bitsB := RandomBits(500, r)
	// Strong A, weak B: SIC decodes A first, subtracts, then decodes B.
	y := Superpose([]Tx{
		{Bits: bitsA, Gain: 2.0, Offset: 0},
		{Bits: bitsB, Gain: 0.5, Offset: 0},
	})
	AddNoise(y, 0.05, r)
	decoded := SuccessiveCancel(y, []Tx{
		{Bits: make([]byte, 500), Gain: 2.0, Offset: 0},
		{Bits: make([]byte, 500), Gain: 0.5, Offset: 0},
	})
	if ber := BitErrorRate(bitsA, decoded[0]); ber > 0.001 {
		t.Fatalf("strong signal BER %v", ber)
	}
	if ber := BitErrorRate(bitsB, decoded[1]); ber > 0.001 {
		t.Fatalf("weak signal BER after cancellation %v", ber)
	}
}

func TestSuccessiveCancelEqualPowerFails(t *testing.T) {
	// With equal gains and full overlap, SIC cannot separate the signals:
	// this is the regime ZigZag targets.
	r := rng.New(6)
	bitsA := RandomBits(1000, r)
	bitsB := RandomBits(1000, r)
	y := Superpose([]Tx{
		{Bits: bitsA, Gain: 1, Offset: 0},
		{Bits: bitsB, Gain: 1, Offset: 0},
	})
	decoded := SuccessiveCancel(y, []Tx{
		{Bits: make([]byte, 1000), Gain: 1, Offset: 0},
		{Bits: make([]byte, 1000), Gain: 1, Offset: 0},
	})
	// Where the bits differ the sum is 0 and the decision is arbitrary, so
	// roughly a quarter of the bits come out wrong.
	if ber := BitErrorRate(bitsA, decoded[0]); ber < 0.1 {
		t.Fatalf("equal-power SIC unexpectedly succeeded (BER %v)", ber)
	}
}

func TestZigZagNoiseless(t *testing.T) {
	r := rng.New(7)
	for _, tc := range []struct{ lenA, lenB, off1, off2 int }{
		{100, 100, 0, 7},
		{100, 100, 3, 11},
		{64, 80, 5, 2},
		{80, 64, 1, 40},
		{50, 50, 49, 10},
	} {
		bitsA := RandomBits(tc.lenA, r)
		bitsB := RandomBits(tc.lenB, r)
		c1 := NewCollision(bitsA, bitsB, 1, 1, tc.off1, 0, r)
		c2 := NewCollision(bitsA, bitsB, 1, 1, tc.off2, 0, r)
		gotA, gotB, err := ZigZagDecode(c1, c2, tc.lenA, tc.lenB)
		if err != nil {
			t.Fatalf("%+v: %v", tc, err)
		}
		if BitErrors(bitsA, gotA) != 0 || BitErrors(bitsB, gotB) != 0 {
			t.Fatalf("%+v: zigzag decoded with errors (A=%d B=%d)",
				tc, BitErrors(bitsA, gotA), BitErrors(bitsB, gotB))
		}
	}
}

func TestZigZagLowNoise(t *testing.T) {
	r := rng.New(8)
	const n = 400
	bitsA := RandomBits(n, r)
	bitsB := RandomBits(n, r)
	c1 := NewCollision(bitsA, bitsB, 1, 1, 3, 0.1, r)
	c2 := NewCollision(bitsA, bitsB, 1, 1, 17, 0.1, r)
	gotA, gotB, err := ZigZagDecode(c1, c2, n, n)
	if err != nil {
		t.Fatal(err)
	}
	if ber := BitErrorRate(bitsA, gotA); ber > 0.01 {
		t.Fatalf("zigzag A BER %v at high SNR", ber)
	}
	if ber := BitErrorRate(bitsB, gotB); ber > 0.01 {
		t.Fatalf("zigzag B BER %v at high SNR", ber)
	}
}

func TestZigZagSameOffsetFails(t *testing.T) {
	r := rng.New(9)
	bitsA := RandomBits(50, r)
	bitsB := RandomBits(50, r)
	c1 := NewCollision(bitsA, bitsB, 1, 1, 5, 0, r)
	c2 := NewCollision(bitsA, bitsB, 1, 1, 5, 0, r)
	if _, _, err := ZigZagDecode(c1, c2, 50, 50); err == nil {
		t.Fatal("identical offsets should fail")
	}
}

func TestZigZagDifferentGains(t *testing.T) {
	r := rng.New(10)
	const n = 200
	bitsA := RandomBits(n, r)
	bitsB := RandomBits(n, r)
	gA, gB := complex(0.8, 0.4), complex(-0.3, 0.9)
	c1 := NewCollision(bitsA, bitsB, gA, gB, 2, 0.05, r)
	c2 := NewCollision(bitsA, bitsB, gA, gB, 29, 0.05, r)
	gotA, gotB, err := ZigZagDecode(c1, c2, n, n)
	if err != nil {
		t.Fatal(err)
	}
	if BitErrors(bitsA, gotA) != 0 || BitErrors(bitsB, gotB) != 0 {
		t.Fatal("zigzag with complex gains decoded with errors")
	}
}

func TestBitErrorsPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("BitErrors length mismatch did not panic")
		}
	}()
	BitErrors([]byte{1}, []byte{1, 0})
}

func TestBitErrorRateEmpty(t *testing.T) {
	if BitErrorRate(nil, nil) != 0 {
		t.Fatal("empty BER not zero")
	}
}

func BenchmarkZigZag1K(b *testing.B) {
	r := rng.New(1)
	const n = 1024
	bitsA := RandomBits(n, r)
	bitsB := RandomBits(n, r)
	c1 := NewCollision(bitsA, bitsB, 1, 1, 3, 0.05, r)
	c2 := NewCollision(bitsA, bitsB, 1, 1, 200, 0.05, r)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := ZigZagDecode(c1, c2, n, n); err != nil {
			b.Fatal(err)
		}
	}
}
