package adversary

import (
	"fmt"
	"strconv"
	"strings"
)

// Kinds lists the adversary descriptor forms Parse accepts, in canonical
// order.  "none" (or the empty string) parses to nil.
var Kinds = []string{
	"none",
	"random:RATE",
	"burst:B/GAP",
	"reactive:TRIGGER/BURST",
	"sigmarho:SIGMA/RHO",
}

// Parse constructs an adversary from a descriptor:
//
//	none                    no adversary (returns nil)
//	random:RATE             oblivious jammer, per-slot probability RATE ∈ [0,1]
//	burst:B/GAP             duty-cycled jammer: B jammed slots, GAP clean, repeat
//	reactive:TRIGGER/BURST  adaptive jammer: arm after TRIGGER busy slots, jam BURST
//	sigmarho:SIGMA/RHO      (σ,ρ)-bounded front-loading arrival adversary
//
// Each call returns a fresh adversary (they are stateful), so a
// descriptor can be parsed once per trial to give every trial its own
// instance.
func Parse(desc string) (Adversary, error) {
	switch {
	case desc == "" || desc == "none":
		return nil, nil
	case strings.HasPrefix(desc, "random:"):
		rate, err := strconv.ParseFloat(desc[len("random:"):], 64)
		if err != nil || !validRandomRate(rate) {
			return nil, fmt.Errorf("adversary: bad descriptor %q (want random:RATE with RATE in [0,1])", desc)
		}
		return NewRandom(rate), nil
	case strings.HasPrefix(desc, "burst:"):
		b, gap, err := splitInts(desc[len("burst:"):])
		if err != nil || !validBurstGap(b, gap) {
			return nil, fmt.Errorf("adversary: bad descriptor %q (want burst:B/GAP with 1 ≤ B ≤ 2^40, 0 ≤ GAP ≤ 2^40)", desc)
		}
		return NewBurstGap(b, gap), nil
	case strings.HasPrefix(desc, "reactive:"):
		trigger, burst, err := splitInts(desc[len("reactive:"):])
		if err != nil || !validReactive(trigger, burst) {
			return nil, fmt.Errorf("adversary: bad descriptor %q (want reactive:TRIGGER/BURST, both in [1, 2^40])", desc)
		}
		return NewReactive(trigger, burst), nil
	case strings.HasPrefix(desc, "sigmarho:"):
		spec := desc[len("sigmarho:"):]
		slash := strings.IndexByte(spec, '/')
		if slash < 0 {
			return nil, fmt.Errorf("adversary: bad descriptor %q (want sigmarho:SIGMA/RHO)", desc)
		}
		sigma, err1 := strconv.ParseInt(spec[:slash], 10, 64)
		rho, err2 := strconv.ParseFloat(spec[slash+1:], 64)
		if err1 != nil || err2 != nil || !validSigmaRho(sigma, rho) {
			return nil, fmt.Errorf("adversary: bad descriptor %q (want sigmarho:SIGMA/RHO with 0 ≤ SIGMA ≤ 2^40, 0 ≤ RHO ≤ %g, not both 0)", desc, float64(MaxRho))
		}
		return NewSigmaRho(sigma, rho), nil
	}
	return nil, fmt.Errorf("adversary: unknown descriptor %q (want %s)", desc, strings.Join(Kinds, ", "))
}

// IsJammer reports whether the descriptor names a jamming adversary.
// It assumes desc parses; unknown descriptors report false.
func IsJammer(desc string) bool {
	adv, err := Parse(desc)
	if err != nil || adv == nil {
		return false
	}
	_, ok := adv.(Jammer)
	return ok
}

// IsAdaptive reports whether the descriptor names an adversary that
// reacts to channel feedback (it implements the Adaptive marker).
func IsAdaptive(desc string) bool {
	adv, err := Parse(desc)
	if err != nil {
		return false
	}
	_, ok := adv.(Adaptive)
	return ok
}

func splitInts(spec string) (int64, int64, error) {
	slash := strings.IndexByte(spec, '/')
	if slash < 0 {
		return 0, 0, fmt.Errorf("missing '/'")
	}
	a, err1 := strconv.ParseInt(spec[:slash], 10, 64)
	b, err2 := strconv.ParseInt(spec[slash+1:], 10, 64)
	if err1 != nil {
		return 0, 0, err1
	}
	if err2 != nil {
		return 0, 0, err2
	}
	return a, b, nil
}
