package crn

// Full-stack integration: the abstract channel promises that a decoding
// event's packets are recoverable from the good slots of its window.
// This test replays every decoding event of a real Decodable Backoff
// execution through the concrete GF(2^8) random-linear-coding layer and
// checks that the payloads actually decode, byte-exact.  It is the glue
// proof that the model (Definition 1), the protocol, and the coding
// substrate tell one consistent story.

import (
	"bytes"
	"testing"

	"repro/internal/channel"
	"repro/internal/core"
	"repro/internal/gf256"
	"repro/internal/rlnc"
	"repro/internal/rng"
)

func TestDecodingEventsDecodeUnderRLNC(t *testing.T) {
	const (
		kappa       = 16
		payloadSize = 24
		slots       = 6000
	)
	r := rng.New(99)
	coder := rng.New(100)
	d := core.New(kappa, rng.New(101))
	ch := channel.New(kappa, 4*kappa)

	payloads := make(map[channel.PacketID][]byte)
	var nextID channel.PacketID

	// Good slots since the last decoding event: who transmitted, and the
	// coded symbol the base station would receive.
	type slotRecord struct {
		txs    []channel.PacketID
		coeffs map[channel.PacketID]byte
		sum    []byte
	}
	var window []slotRecord

	events, decoded, singular := 0, 0, 0
	buf := make([]channel.PacketID, 0, 64)
	for now := int64(0); now < slots; now++ {
		if r.Bernoulli(0.6) {
			id := nextID
			nextID++
			p := make([]byte, payloadSize)
			for i := range p {
				p[i] = byte(r.Uint64())
			}
			payloads[id] = p
			d.Inject(now, []channel.PacketID{id})
		}
		buf = d.Transmitters(now, buf[:0])
		class, ev := ch.Step(now, buf)
		if class == channel.Good {
			// The physical layer: each transmitter contributes its payload
			// scaled by a fresh random nonzero coefficient; the station
			// receives the sum.
			rec := slotRecord{
				txs:    append([]channel.PacketID(nil), buf...),
				coeffs: make(map[channel.PacketID]byte, len(buf)),
				sum:    make([]byte, payloadSize),
			}
			for _, id := range buf {
				c := byte(1 + coder.Intn(255))
				rec.coeffs[id] = c
				gf256.MulSlice(rec.sum, payloads[id], c)
			}
			window = append(window, rec)
		}
		d.Observe(channel.Feedback{Slot: now, Silent: class == channel.Silent, Event: ev})
		if ev == nil {
			continue
		}
		events++
		// Decode the event's packets from the recorded good slots of its
		// window.
		index := make(map[channel.PacketID]int, len(ev.Packets))
		for i, id := range ev.Packets {
			index[id] = i
		}
		dec := rlnc.NewDecoder(len(ev.Packets), payloadSize)
		for _, rec := range window {
			sym := rlnc.Symbol{Coeffs: make([]byte, len(ev.Packets)), Payload: rec.sum}
			usable := true
			for _, id := range rec.txs {
				i, ok := index[id]
				if !ok {
					// A transmitter outside the event (its last broadcast
					// predates the window start); its contribution cannot
					// be cancelled, so the slot is unusable for decoding.
					usable = false
					break
				}
				sym.Coeffs[i] = rec.coeffs[id]
			}
			if usable {
				dec.Add(sym)
			}
		}
		if !dec.Complete() {
			// Random coefficients leave a ~0.4% chance of a singular
			// system per event; a real station would use one extra slot.
			singular++
		} else {
			for i, id := range ev.Packets {
				if !bytes.Equal(dec.Decoded(i), payloads[id]) {
					t.Fatalf("slot %d: packet %d decoded wrong", now, id)
				}
			}
			decoded++
		}
		for _, id := range ev.Packets {
			delete(payloads, id)
		}
		window = window[:0]
	}
	if events < 100 {
		t.Fatalf("only %d decoding events; workload too thin", events)
	}
	if frac := float64(singular) / float64(events); frac > 0.05 {
		t.Fatalf("%.1f%% of events failed to decode under RLNC (%d/%d) — abstraction broken",
			100*frac, singular, events)
	}
	t.Logf("events=%d decoded byte-exact=%d singular=%d (%.2f%%)",
		events, decoded, singular, 100*float64(singular)/float64(events))
}

// TestGroupRepeatAlwaysDecodable: the paper's core mechanism — the same
// group broadcasting in every slot of its epoch — makes the RLNC system
// square with i.i.d. random columns; decodability matches the 0.9961
// theory tightly (sanity-checked here end to end at epoch granularity).
func TestGroupRepeatAlwaysDecodable(t *testing.T) {
	r := rng.New(7)
	const trials = 300
	ok := 0
	for trial := 0; trial < trials; trial++ {
		j := 2 + r.Intn(8)
		payloads := make([][]byte, j)
		for i := range payloads {
			p := make([]byte, 8)
			for b := range p {
				p[b] = byte(r.Uint64())
			}
			payloads[i] = p
		}
		enc, err := rlnc.NewEncoder(payloads)
		if err != nil {
			t.Fatal(err)
		}
		dec := rlnc.NewDecoder(j, 8)
		group := make([]int, j)
		for i := range group {
			group[i] = i
		}
		for s := 0; s < j; s++ {
			sym, err := enc.Slot(group, r)
			if err != nil {
				t.Fatal(err)
			}
			dec.Add(sym)
		}
		if dec.Complete() {
			ok++
		}
	}
	if frac := float64(ok) / trials; frac < 0.97 {
		t.Fatalf("only %.1f%% of j-slot groups decoded (theory ≈ 99.6%%)", 100*frac)
	}
}
