package medium

import (
	"testing"

	"repro/internal/channel"
)

// FuzzCaptureAgainstReference drives a random transmitter schedule,
// decoded with the same encoding as the channel package's fuzz target,
// through the optimized Capture medium and the naive CaptureReference
// oracle, asserting identical classes, events, feedback, and stats on
// every slot.  A sharded twin stepped through StepSharded (chunks split
// from the same slot) and a repeater twin replaying destroyed slots
// via StepRepeat are cross-checked alongside.
//
// Schedule encoding: byte 0 picks κ ∈ [1, 8]; each following byte is
// one slot, low nibble the transmitter count n ∈ [0, 15] and high
// nibble an offset into a small packet pool (distinct IDs per slot, so
// the duplicate panic never fires here — it has its own tests).
func FuzzCaptureAgainstReference(f *testing.F) {
	f.Add([]byte{0x03, 0x01, 0x02, 0x13, 0x00, 0x21, 0x0f})
	f.Add([]byte{0x00, 0x00, 0x01, 0x01, 0x01})
	f.Add([]byte{0x07, 0x0f, 0x12, 0x31, 0x02, 0x00, 0x42, 0x05})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2 {
			t.Skip()
		}
		kappa := 1 + int(data[0]%8)
		fast := NewCapture(kappa)
		sharded := NewCapture(kappa)
		repeat := NewCapture(kappa)
		ref := NewCaptureReference(kappa)

		const poolSize = 24
		var fbFast, fbRef channel.Feedback
		prevBad := false
		txs := make([]channel.PacketID, 0, 16)
		for slot, b := range data[1:] {
			now := int64(slot)
			n := int(b & 0x0f)
			off := int(b >> 4)
			txs = txs[:0]
			for i := 0; i < n; i++ {
				txs = append(txs, channel.PacketID((off+i)%poolSize))
			}
			fc, fe := fast.Step(now, txs)
			rc, re := ref.Step(now, txs)
			if fc != rc {
				t.Fatalf("slot %d (%v): class %v vs reference %v", now, txs, fc, rc)
			}
			if (fe == nil) != (re == nil) {
				t.Fatalf("slot %d (%v): event %v vs reference %v", now, txs, fe, re)
			}
			if fe != nil {
				if fe.Slot != re.Slot || fe.WindowStart != re.WindowStart ||
					len(fe.Packets) != len(re.Packets) {
					t.Fatalf("slot %d: event %+v vs reference %+v", now, fe, re)
				}
				for i := range fe.Packets {
					if fe.Packets[i] != re.Packets[i] {
						t.Fatalf("slot %d: event delivers %v vs reference %v", now, fe.Packets, re.Packets)
					}
				}
			}
			fast.Feedback(&fbFast)
			ref.Feedback(&fbRef)
			if fbFast.Slot != fbRef.Slot || fbFast.Silent != fbRef.Silent ||
				fbFast.Collision != fbRef.Collision ||
				(fbFast.Event == nil) != (fbRef.Event == nil) {
				t.Fatalf("slot %d: feedback %+v vs reference %+v", now, fbFast, fbRef)
			}

			// Sharded twin: the same slot split into uneven chunks must
			// produce the same verdict through StepSharded.
			chunks := [][]channel.PacketID{txs[:n/3], txs[n/3 : n/3*2], txs[n/3*2:]}
			sc, se := sharded.StepSharded(now, chunks, nil)
			if sc != fc || (se == nil) != (fe == nil) {
				t.Fatalf("slot %d: sharded class %v ev %v vs serial %v %v", now, sc, se, fc, fe)
			}
			if se != nil {
				for i := range se.Packets {
					if se.Packets[i] != fe.Packets[i] {
						t.Fatalf("slot %d: sharded delivers %v vs serial %v", now, se.Packets, fe.Packets)
					}
				}
			}

			// Repeater twin: a destroyed slot directly following another
			// replays through StepRepeat (the engine coasts bad slots this
			// way) and must keep stats and feedback aligned with a re-step.
			if fc == channel.Bad && prevBad {
				if !repeat.StepRepeat(now) {
					t.Fatalf("slot %d: StepRepeat refused after bad slot", now)
				}
			} else {
				repeat.Step(now, txs)
			}
			prevBad = fc == channel.Bad
		}
		if fast.Stats() != ref.Stats() {
			t.Fatalf("stats %+v, reference %+v", fast.Stats(), ref.Stats())
		}
		if sharded.Stats() != ref.Stats() {
			t.Fatalf("sharded stats %+v, reference %+v", sharded.Stats(), ref.Stats())
		}
		if repeat.Stats() != ref.Stats() {
			t.Fatalf("repeater stats %+v, reference %+v", repeat.Stats(), ref.Stats())
		}
	})
}
