package medium

import (
	"repro/internal/adversary"
	"repro/internal/channel"
	"repro/internal/jam"
	"repro/internal/rng"
)

// Jammed composes a jamming adversary over an inner medium: a jammed
// slot is spoiled before the inner medium ever sees it.  A jammed slot
// is audibly busy (never silent) and decode-useless (never good), so it
// classifies as Bad regardless of the real transmitters; like any bad
// slot it does not break the inner detector's decoding windows, because
// the inner medium is simply not stepped.
//
// Jam decisions are keyed to the slot number: the jammer's rng stream is
// reseeded from (seed, slot) for every slot, so a randomized decision
// depends only on the slot being asked about, never on how many slots
// were stepped before it.  Adaptive jammers additionally hear every
// stepped slot's feedback through Observe (the wrapper forwards it after
// filling the caller's struct) and must follow the package adversary
// determinism contract: treat a gap in observed slots as silence, and
// key armed windows to slot numbers.  Together these keep the jam
// pattern aligned when the engine fast-forwards through idle stretches —
// a run takes the same jam pattern whether or not slots in between were
// skipped.  (Fast-forwarded stretches themselves are never consulted: an
// empty system ignores noise, so they stay accounted as silent.)
//
// The alignment guarantee assumes fast-forwarded slots really would
// have been silent, so an adaptive jammer must not be composed over an
// inner medium that itself spoils idle slots (another jam wrapper):
// densely stepped, the inner noise occupies slots the fast path treats
// as silence, and the adaptive state diverges.  sim.Run rejects that
// stacking (adaptive Config.Adversary over Config.Jammer).
type Jammed struct {
	inner  Medium
	jammer adversary.Jammer
	seed   uint64
	r      rng.Rand
	dup    dupCheck

	jammed     int64
	lastJammed bool
	last       channel.Feedback

	// repValid records that the inner medium itself classified the most
	// recently delivered transmitter multiset as Bad.  StepRepeat's
	// non-jammed path requires it: when the previous Bad verdict came
	// from jamming energy, the inner medium never saw the transmitters,
	// so an O(1) replay cannot be validated and the caller must fall
	// back to a full Step.
	repValid bool

	sdup channel.ShardedDup
	flat []channel.PacketID

	// collisionOnJam: to a device with ternary collision detection,
	// jamming energy is indistinguishable from a collision.
	collisionOnJam bool
}

var (
	_ Medium   = (*Jammed)(nil)
	_ Sharded  = (*Jammed)(nil)
	_ Repeater = (*Jammed)(nil)
)

// Jam wraps inner with the given package-jam jammer, seeding the
// jammer's slot-keyed randomness from seed.  A nil jammer returns inner
// unchanged.  It is the legacy entry point; first-class adversaries use
// JamAdversary.
func Jam(inner Medium, j jam.Jammer, seed uint64) Medium {
	return JamAdversary(inner, adversary.FromJam(j), seed)
}

// JamAdversary wraps inner with a jamming adversary, seeding its
// slot-keyed randomness from seed.  The adversary hears every stepped
// slot's feedback through Observe, so adaptive jammers (e.g.
// adversary.Reactive) work unmodified.  A nil jammer returns inner
// unchanged.
func JamAdversary(inner Medium, j adversary.Jammer, seed uint64) Medium {
	if j == nil {
		return inner
	}
	cl, ok := inner.(*Classical)
	return &Jammed{
		inner:          inner,
		jammer:         j,
		seed:           seed,
		collisionOnJam: ok && cl.cd == CDTernary,
	}
}

// Name implements Medium.
func (m *Jammed) Name() string { return m.inner.Name() + "+jam:" + m.jammer.Name() }

// Kappa implements Medium.
func (m *Jammed) Kappa() int { return m.inner.Kappa() }

// Step implements Medium.
func (m *Jammed) Step(now int64, txs []channel.PacketID) (channel.SlotClass, *channel.Event) {
	// Slot-keyed reseed: SplitMix64 expansion decorrelates consecutive
	// slots, and the golden-ratio stride keeps seed^f(now) injective per
	// seed.
	m.r.Seed(m.seed ^ uint64(now)*0x9e3779b97f4a7c15)
	if m.jammer.Jams(now, &m.r) {
		// The inner detector never sees this slot, so enforce its
		// duplicate-transmitter invariant here: a protocol bug must not
		// hide behind the noise.
		m.dup.check(txs)
		m.repValid = false
		return m.jamSlot(now)
	}
	m.lastJammed = false
	class, ev := m.inner.Step(now, txs)
	m.repValid = class == channel.Bad
	return class, ev
}

// StepSharded implements Sharded.  Jammed slots still validate the
// transmitters (as partials — the inner detector never sees them);
// clear slots forward chunked when the inner medium is Sharded and
// flatten otherwise.
func (m *Jammed) StepSharded(now int64, chunks [][]channel.PacketID, fan channel.FanOut) (channel.SlotClass, *channel.Event) {
	m.r.Seed(m.seed ^ uint64(now)*0x9e3779b97f4a7c15)
	if m.jammer.Jams(now, &m.r) {
		m.sdup.Check("medium", chunks, fan)
		m.repValid = false
		return m.jamSlot(now)
	}
	m.lastJammed = false
	var class channel.SlotClass
	var ev *channel.Event
	if sm, ok := m.inner.(Sharded); ok {
		class, ev = sm.StepSharded(now, chunks, fan)
	} else {
		m.flat = m.flat[:0]
		for _, ch := range chunks {
			m.flat = append(m.flat, ch...)
		}
		class, ev = m.inner.Step(now, m.flat)
	}
	m.repValid = class == channel.Bad
	return class, ev
}

// StepRepeat implements Repeater.  A slot the jammer spoils replays in
// O(1) regardless of the transmitters (keyed to the slot number, the
// jam decision is reproduced exactly); a clear slot replays only when
// the inner medium itself classified the unchanged multiset as Bad and
// can replay it.  The jam decision for slot now is the same one a full
// Step would make, so a false return costs only the fallback work.
func (m *Jammed) StepRepeat(now int64) bool {
	m.r.Seed(m.seed ^ uint64(now)*0x9e3779b97f4a7c15)
	if m.jammer.Jams(now, &m.r) {
		// Transmitters unchanged since their last validation, so the
		// duplicate check is already covered; repValid keeps its meaning.
		m.jamSlot(now)
		return true
	}
	rep, ok := m.inner.(Repeater)
	if !ok || !m.repValid || !rep.StepRepeat(now) {
		return false
	}
	m.lastJammed = false
	return true
}

// jamSlot applies the state updates of a spoiled slot.
func (m *Jammed) jamSlot(now int64) (channel.SlotClass, *channel.Event) {
	m.jammed++
	m.lastJammed = true
	m.last = channel.Feedback{Slot: now, Collision: m.collisionOnJam}
	return channel.Bad, nil
}

// Feedback implements Medium.  The adversary hears the slot too — it is
// on the channel like any device — so the wrapper forwards the filled
// feedback to its Observe before returning.
func (m *Jammed) Feedback(fb *channel.Feedback) {
	if m.lastJammed {
		*fb = m.last
	} else {
		m.inner.Feedback(fb)
	}
	m.jammer.Observe(*fb)
}

// AddSilent implements Medium.
func (m *Jammed) AddSilent(n int64) { m.inner.AddSilent(n) }

// MasksSilence reports true: jamming energy can land on otherwise idle
// slots, so the composed feedback no longer exposes idleness truthfully
// (regardless of the inner medium's answer).  See medium.MasksSilence.
func (m *Jammed) MasksSilence() bool { return true }

// Stats implements Medium: the inner medium's counters plus the spoiled
// slots, which count as bad (and jammed) exactly as the engine's old
// inline accounting did.
func (m *Jammed) Stats() channel.Stats {
	st := m.inner.Stats()
	st.BadSlots += m.jammed
	st.JammedSlots += m.jammed
	return st
}

// Reset implements Medium, clearing the adversary's adaptive state along
// with the slot accounting.
func (m *Jammed) Reset() {
	m.inner.Reset()
	m.jammer.Reset()
	m.jammed = 0
	m.lastJammed = false
	m.repValid = false
	m.last = channel.Feedback{}
	m.sdup.Reset()
}
