package emu

import (
	"errors"
	"sync"
	"time"
)

// Transport is one station's reliable, ordered frame link, as seen from
// either endpoint.  Send must deliver frames in order (blocking for
// backpressure when the peer lags); Recv returns the next frame,
// waiting at most timeout (0 = forever).  Implementations must be safe
// for one concurrent sender plus one concurrent receiver.
//
// Two implementations ship: the in-proc pipe (NewPipe) backing swarm
// mode, and the reliable-UDP link (DialUDP / ListenUDP) with tru-style
// send/receive queues, retransmit-on-timeout, and live per-connection
// statistics.
type Transport interface {
	// Send encodes and delivers one frame, blocking while the send
	// queue is full (backpressure).  It fails once the link is closed.
	Send(f *Frame) error

	// Recv returns the next frame in order.  timeout 0 blocks forever;
	// otherwise ErrTimeout is returned when nothing arrives in time.
	Recv(timeout time.Duration) (*Frame, error)

	// Stats snapshots the link's live counters.
	Stats() ConnStats

	// Close tears the link down; blocked Send/Recv calls fail promptly.
	Close() error
}

// ErrTimeout reports that Recv waited out its deadline — the per-slot
// barrier's loud failure mode (the engine never hangs on a dead
// station).
var ErrTimeout = errors.New("emu: receive timeout")

// ErrClosed reports use of a closed transport.
var ErrClosed = errors.New("emu: transport closed")

// ConnStats are one link's live counters, in the spirit of tru's
// per-channel statistics: cumulative frame/byte/segment totals (callers
// derive rates from deltas), retransmit and drop counters, current
// queue depths, and a smoothed round-trip time.
type ConnStats struct {
	// FramesSent/FramesRecv count whole protocol frames.
	FramesSent, FramesRecv uint64
	// BytesSent/BytesRecv count encoded frame payload bytes.
	BytesSent, BytesRecv uint64
	// SegsSent/SegsRecv count wire datagram segments (UDP only; the
	// pipe moves whole frames).
	SegsSent, SegsRecv uint64
	// Retransmits counts segments re-sent on ack timeout.
	Retransmits uint64
	// DupSegs counts received segments discarded as duplicate or
	// out-of-order (go-back-N keeps only the in-order prefix).
	DupSegs uint64
	// FaultDrops/FaultDups count datagrams the injected fault plan
	// dropped or duplicated (testing lossy regimes; zero on clean links).
	FaultDrops, FaultDups uint64
	// SendQueue/RecvQueue are current depths: unacked outbound segments
	// (or queued frames for the pipe) and received-but-unconsumed frames.
	SendQueue, RecvQueue int
	// RTTMillis is the smoothed round-trip time EWMA in milliseconds
	// (0 until the first sample; always 0 on the pipe).
	RTTMillis float64
}

// pipeQueueDepth is the pipe's frame buffer: deep enough that the
// coordinator can broadcast to a swarm without rendezvous, shallow
// enough that a stuck station exerts backpressure.
const pipeQueueDepth = 64

// pipe is the in-proc Transport: two buffered channels of encoded
// frames.  Frames still round-trip through the wire codec so swarm mode
// exercises exactly the bytes UDP mode ships.
type pipe struct {
	out, in chan []byte
	closed  chan struct{}
	once    *sync.Once

	mu    sync.Mutex
	stats ConnStats
}

// NewPipe returns the two endpoints of an in-proc link.
func NewPipe() (a, b Transport) {
	ab := make(chan []byte, pipeQueueDepth)
	ba := make(chan []byte, pipeQueueDepth)
	closed := make(chan struct{})
	once := &sync.Once{}
	return &pipe{out: ab, in: ba, closed: closed, once: once},
		&pipe{out: ba, in: ab, closed: closed, once: once}
}

func (p *pipe) Send(f *Frame) error {
	buf := f.Append(nil)
	select {
	case <-p.closed:
		return ErrClosed
	default:
	}
	select {
	case p.out <- buf:
		p.mu.Lock()
		p.stats.FramesSent++
		p.stats.BytesSent += uint64(len(buf))
		p.mu.Unlock()
		return nil
	case <-p.closed:
		return ErrClosed
	}
}

func (p *pipe) Recv(timeout time.Duration) (*Frame, error) {
	var timer <-chan time.Time
	if timeout > 0 {
		t := time.NewTimer(timeout)
		defer t.Stop()
		timer = t.C
	}
	select {
	case buf := <-p.in:
		f := new(Frame)
		if err := f.Decode(buf); err != nil {
			return nil, err
		}
		p.mu.Lock()
		p.stats.FramesRecv++
		p.stats.BytesRecv += uint64(len(buf))
		p.mu.Unlock()
		return f, nil
	case <-timer:
		return nil, ErrTimeout
	case <-p.closed:
		// Drain anything already queued before reporting closure, so a
		// final Done is never lost to a racing Close.
		select {
		case buf := <-p.in:
			f := new(Frame)
			if err := f.Decode(buf); err != nil {
				return nil, err
			}
			return f, nil
		default:
			return nil, ErrClosed
		}
	}
}

func (p *pipe) Stats() ConnStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	s := p.stats
	s.SendQueue = len(p.out)
	s.RecvQueue = len(p.in)
	return s
}

func (p *pipe) Close() error {
	p.once.Do(func() { close(p.closed) })
	return nil
}
