package linalg

import (
	"testing"

	"repro/internal/rng"
)

// referenceRank is the original per-bit full-reduction elimination,
// kept as the executable specification for the word-parallel Rank.
func referenceRank(m *BitMatrix) int {
	w := m.Clone()
	rank := 0
	for col := 0; col < w.cols && rank < w.rows; col++ {
		pivot := -1
		for i := rank; i < w.rows; i++ {
			if w.Get(i, col) {
				pivot = i
				break
			}
		}
		if pivot < 0 {
			continue
		}
		w.swapRows(rank, pivot)
		for i := 0; i < w.rows; i++ {
			if i != rank && w.Get(i, col) {
				w.xorRow(i, rank)
			}
		}
		rank++
	}
	return rank
}

func TestRankMatchesReference(t *testing.T) {
	r := rng.New(31)
	for trial := 0; trial < 200; trial++ {
		rows, cols := 1+r.Intn(90), 1+r.Intn(90)
		m := randomBitMatrix(r, rows, cols)
		if got, want := m.Rank(), referenceRank(m); got != want {
			t.Fatalf("Rank = %d, reference = %d (%dx%d)", got, want, rows, cols)
		}
	}
	// Sparse matrices exercise the skipped-column path.
	for trial := 0; trial < 50; trial++ {
		rows, cols := 2+r.Intn(60), 2+r.Intn(60)
		m := NewBitMatrix(rows, cols)
		for k := 0; k < rows; k++ {
			m.Set(r.Intn(rows), r.Intn(cols), true)
		}
		if got, want := m.Rank(), referenceRank(m); got != want {
			t.Fatalf("sparse Rank = %d, reference = %d (%dx%d)", got, want, rows, cols)
		}
	}
}

func TestRowWordsAliasAndXorRows(t *testing.T) {
	m := NewBitMatrix(3, 70)
	m.Set(0, 0, true)
	m.Set(0, 69, true)
	m.Set(1, 69, true)
	row := m.RowWords(0)
	if len(row) != 2 || row[0] != 1 || row[1] != 1<<5 {
		t.Fatalf("RowWords(0) = %x", row)
	}
	row[0] |= 2 // write through the alias
	if !m.Get(0, 1) {
		t.Fatal("RowWords does not alias matrix storage")
	}
	m.XorRows(1, 0)
	if !m.Get(1, 0) || !m.Get(1, 1) || m.Get(1, 69) {
		t.Fatalf("XorRows wrong: row1 = %x", m.RowWords(1))
	}
	if m.RowOnes(1) != 2 {
		t.Fatalf("RowOnes(1) = %d, want 2", m.RowOnes(1))
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("RowWords out of range did not panic")
			}
		}()
		m.RowWords(3)
	}()
}

// TestBitsAgainstModel drives Bits and a []bool model with the same
// operation stream.
func TestBitsAgainstModel(t *testing.T) {
	r := rng.New(37)
	const n = 300
	var b Bits
	b.EnsureBits(n)
	model := make([]bool, n)
	check := func(step int) {
		ones := 0
		for _, v := range model {
			if v {
				ones++
			}
		}
		if got := b.OnesCount(); got != ones {
			t.Fatalf("step %d: OnesCount = %d, model %d", step, got, ones)
		}
		next := func(from int) int {
			for i := from; i < n; i++ {
				if model[i] {
					return i
				}
			}
			return -1
		}
		for _, from := range []int{0, 1, 63, 64, 65, r.Intn(n), n - 1, n + 10} {
			want := -1
			if from < n {
				want = next(from)
			}
			if got := b.NextSet(from); got != want {
				t.Fatalf("step %d: NextSet(%d) = %d, model %d", step, from, got, want)
			}
		}
	}
	for step := 0; step < 2000; step++ {
		i := r.Intn(n)
		switch r.Intn(4) {
		case 0, 1:
			b.Set(i)
			model[i] = true
		case 2:
			b.Clear(i)
			model[i] = false
		case 3:
			k := r.Intn(80)
			b.ShiftDown(k)
			copy(model, model[min(k, n):])
			for j := n - min(k, n); j < n; j++ {
				model[j] = false
			}
		}
		if got := b.Test(i); got != model[i] {
			t.Fatalf("step %d: Test(%d) = %v, model %v", step, i, got, model[i])
		}
		if step%97 == 0 {
			check(step)
		}
	}
	check(-1)
}

func TestBitsShiftDownWholeWords(t *testing.T) {
	var b Bits
	b.EnsureBits(256)
	for _, i := range []int{0, 63, 64, 128, 200, 255} {
		b.Set(i)
	}
	b.ShiftDown(64)
	for _, c := range []struct {
		i    int
		want bool
	}{{0, true}, {64, true}, {136, true}, {191, true}, {255, false}} {
		if b.Test(c.i) != c.want {
			t.Fatalf("after ShiftDown(64): Test(%d) = %v, want %v", c.i, b.Test(c.i), c.want)
		}
	}
	b.ShiftDown(1000)
	if b.OnesCount() != 0 {
		t.Fatal("ShiftDown past length did not clear")
	}
	b.Zero()
	if b.OnesCount() != 0 {
		t.Fatal("Zero left bits set")
	}
}
