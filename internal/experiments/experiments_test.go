package experiments

import (
	"strings"
	"testing"
)

func TestAllRegistered(t *testing.T) {
	runners := All()
	if len(runners) != 16 {
		t.Fatalf("expected 16 experiments, have %d", len(runners))
	}
	seen := map[string]bool{}
	for _, r := range runners {
		if seen[r.ID] {
			t.Fatalf("duplicate experiment ID %s", r.ID)
		}
		seen[r.ID] = true
		if r.Run == nil || r.Name == "" {
			t.Fatalf("experiment %s incomplete", r.ID)
		}
	}
}

func TestByID(t *testing.T) {
	if r := ByID("e3"); r == nil || r.ID != "E3" {
		t.Fatalf("ByID(e3) = %+v", r)
	}
	if ByID("E99") != nil {
		t.Fatal("ByID(E99) should be nil")
	}
}

func TestScaleString(t *testing.T) {
	if Quick.String() != "quick" || Full.String() != "full" {
		t.Fatal("scale names wrong")
	}
	if Quick.pick(1, 2) != 1 || Full.pick(1, 2) != 2 {
		t.Fatal("pick wrong")
	}
	if Quick.pick64(3, 4) != 3 || Full.pick64(3, 4) != 4 {
		t.Fatal("pick64 wrong")
	}
}

// requireClaims runs an experiment at Quick scale and fails the test if
// any table row reports a violated bound (the tables mark these "NO").
func requireClaims(t *testing.T, out *Output) {
	t.Helper()
	s := out.String()
	if s == "" {
		t.Fatal("empty output")
	}
	if len(out.Tables) == 0 {
		t.Fatal("no tables")
	}
	if strings.Contains(s, "  NO") {
		t.Fatalf("%s reports a violated claim:\n%s", out.ID, s)
	}
}

func TestE1QuickClaims(t *testing.T) {
	requireClaims(t, E1Backlog(Quick, 11))
}

func TestE2QuickClaims(t *testing.T) {
	requireClaims(t, E2Latency(Quick, 12))
}

func TestE3QuickClaims(t *testing.T) {
	out := E3Batch(Quick, 13)
	requireClaims(t, out)
	// The throughput column must rise toward 1 overall: compare the
	// smallest and largest kappa rows.
	rows := out.Tables[0].Rows
	first, last := rows[0], rows[len(rows)-1]
	if first[4] >= last[4] { // lexically fine for 0.xxxx formatting
		t.Logf("throughput did not strictly increase (%s vs %s) — acceptable at quick scale", first[4], last[4])
	}
}

func TestE4QuickSeparation(t *testing.T) {
	out := E4Throughput(Quick, 14)
	s := out.String()
	// DBA rows must beat the ceiling; baseline rows must not.
	if !strings.Contains(s, "decodable-backoff") {
		t.Fatal("missing DBA rows")
	}
	for _, row := range out.Tables[0].Rows {
		isDBA := row[0] == "decodable-backoff"
		beats := row[len(row)-1] == "yes"
		if isDBA && !beats {
			t.Fatalf("DBA failed to beat the classical ceiling: %v", row)
		}
		if !isDBA && beats {
			t.Fatalf("baseline %v beat the 0.568 ceiling (impossible on κ=1, suspicious on coded)", row)
		}
	}
}

func TestE5QuickDecay(t *testing.T) {
	out := E5ErrorEpochs(Quick, 15)
	rows := out.Tables[0].Rows
	if len(rows) < 3 {
		t.Fatal("too few kappa rows")
	}
	// Error fraction at the largest kappa must be below the smallest.
	firstFrac := rows[0][6]
	lastFrac := rows[len(rows)-1][6]
	if firstFrac == lastFrac {
		t.Logf("error fractions equal (%s) — likely both ~0", firstFrac)
	}
}

func TestE6QuickNoViolations(t *testing.T) {
	requireClaims(t, E6Potential(Quick, 16))
}

func TestE7QuickOccupancy(t *testing.T) {
	out := E7Contention(Quick, 17)
	if len(out.Tables[0].Rows) == 0 {
		t.Fatal("no rows")
	}
	for _, row := range out.Tables[0].Rows {
		// good|loaded (column 3) must dominate: under load, the backon/
		// backoff control keeps contention in the good window.
		if row[3] < "0.65" {
			t.Fatalf("loaded good-contention fraction too low: %v", row)
		}
	}
}

func TestE8QuickTheoryMatch(t *testing.T) {
	requireClaims(t, E8Decodability(Quick, 18))
}

func TestE9QuickZigzagWins(t *testing.T) {
	out := E9ZigZag(Quick, 19)
	for _, row := range out.Tables[0].Rows {
		naive, zig := row[1], row[2]
		if naive < zig {
			t.Fatalf("zigzag worse than naive: %v", row)
		}
	}
}

func TestE10QuickGreedyStartHurts(t *testing.T) {
	out := E10Ablations(Quick, 20)
	if len(out.Tables) < 3 {
		t.Fatalf("expected 3 scenario tables, have %d", len(out.Tables))
	}
}

func TestE11QuickFrontier(t *testing.T) {
	out := E11StableRate(Quick, 21)
	rows := out.Tables[0].Rows
	maxStable := map[string]string{}
	for _, row := range rows {
		maxStable[row[0]] = row[len(row)-1]
	}
	// DBA must dominate every classical baseline.
	dba := maxStable["dba κ=64"]
	for name, v := range maxStable {
		if strings.HasPrefix(name, "dba") {
			continue
		}
		if v >= dba {
			t.Fatalf("%s max stable rate %s >= DBA's %s", name, v, dba)
		}
	}
}

func TestE12QuickExact(t *testing.T) {
	requireClaims(t, E12Detector(Quick, 22))
}

func TestOutputString(t *testing.T) {
	out := &Output{ID: "EX", Title: "t", Claim: "c", Notes: []string{"n"}}
	s := out.String()
	for _, want := range []string{"EX", "t", "c", "note: n"} {
		if !strings.Contains(s, want) {
			t.Fatalf("output missing %q:\n%s", want, s)
		}
	}
}

func TestE13QuickCapacityCliff(t *testing.T) {
	out := E13Jamming(Quick, 23)
	rows := out.Tables[0].Rows
	if len(rows) < 4 {
		t.Fatal("too few jam-rate rows")
	}
	// Throughput at jam rate 0.5 must be visibly below the unjammed run.
	if rows[0][4] <= rows[len(rows)-1][4] {
		t.Fatalf("jamming did not reduce throughput: %v vs %v", rows[0], rows[len(rows)-1])
	}
}

func TestE16QuickRegimeOrdering(t *testing.T) {
	out := E16Regimes(Quick, 26)
	var overall string
	for _, note := range out.Notes {
		if strings.HasPrefix(note, "overall ordering") {
			overall = note
		}
	}
	if !strings.HasSuffix(overall, "yes") {
		t.Fatalf("regime ordering violated: %q\n%s", overall, out.String())
	}
}

func TestE14QuickCapMonotone(t *testing.T) {
	out := E14WindowCap(Quick, 24)
	rows := out.Tables[0].Rows
	// Every run must deliver everything.
	for _, row := range rows {
		if row[3] != "1" {
			t.Fatalf("window cap lost packets: %v", row)
		}
	}
	// The tightest cap must be the slowest.
	if rows[0][1] <= rows[len(rows)-1][1] {
		t.Fatalf("κ/4 cap not slower than unbounded: %v vs %v", rows[0], rows[len(rows)-1])
	}
}
