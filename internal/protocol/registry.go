package protocol

import (
	"fmt"

	"repro/internal/rng"
)

// Params carries everything a registered protocol constructor may need.
// Builders ignore the fields that do not apply to them (only dba reads
// Kappa and EpochObserver; only aloha reads AlohaP).
type Params struct {
	// Kappa is the channel's decoding threshold.
	Kappa int
	// Rand is the protocol's private random stream (never shared with
	// the channel or the arrival process).
	Rand *rng.Rand
	// AlohaP is the static transmission probability for slotted ALOHA.
	AlohaP float64
	// EpochObserver, if non-nil, receives per-epoch callbacks from
	// epoch-structured protocols (Decodable Backoff).
	EpochObserver EpochObserver
}

// Info describes one registered protocol kind: its axis name, a
// one-line summary (pinned against DESIGN.md §10 by the doc-drift
// test), the media it pairs with, and its constructor.
type Info struct {
	// Name is the protocol's axis name ("dba", "beb", ...), the key
	// sweeps and CLIs select it by.
	Name string
	// Summary is a one-line description for tables and docs.
	Summary string
	// CodedOnly marks protocols defined only for the coded channel
	// (Decodable Backoff needs κ-threshold decoding feedback).
	CodedOnly bool
	// NoCDOnly marks protocols designed for the no-collision-detection
	// regime: sweeps pair them only with the classical:none model, where
	// the only feedback is a station's own delivery.
	NoCDOnly bool
	// Build constructs a fresh instance (protocols are stateful; one per
	// trial).
	Build func(p Params) Protocol
}

// canonicalNames fixes the registry's axis order.  The order is part of
// the artifact contract — sweep expansion (and therefore cell seed
// assignment) follows it — so new protocols append; nothing reorders.
var canonicalNames = []string{"dba", "beb", "aloha", "genie", "mw", "robust", "unbounded"}

var registry = map[string]Info{}

// Register records a protocol kind under its Info.Name.  Implementing
// packages call it from init; the name must appear in the canonical
// axis order and must not already be taken.
func Register(info Info) {
	if info.Name == "" || info.Build == nil {
		panic("protocol: Register needs a name and a builder")
	}
	if !contains(canonicalNames, info.Name) {
		panic(fmt.Sprintf("protocol: %q is not in the canonical axis order; add it to canonicalNames first", info.Name))
	}
	if _, dup := registry[info.Name]; dup {
		panic(fmt.Sprintf("protocol: %q registered twice", info.Name))
	}
	registry[info.Name] = info
}

// Names returns the registered protocol names in canonical axis order.
// With all implementing packages linked in (anything importing
// internal/sweep or the crn facade does), this is the full axis.
func Names() []string {
	names := make([]string, 0, len(registry))
	for _, n := range canonicalNames {
		if _, ok := registry[n]; ok {
			names = append(names, n)
		}
	}
	return names
}

// Registered returns the Info of every registered protocol in canonical
// axis order.
func Registered() []Info {
	// Register rejects names outside the canonical order, so walking
	// that order is exhaustive.
	infos := make([]Info, 0, len(registry))
	for _, n := range canonicalNames {
		if info, ok := registry[n]; ok {
			infos = append(infos, info)
		}
	}
	return infos
}

// Lookup returns the Info registered under name.
func Lookup(name string) (Info, bool) {
	info, ok := registry[name]
	return info, ok
}

// Build constructs a fresh instance of the named protocol, panicking on
// unknown names (callers validate names against Names() first).
func Build(name string, p Params) Protocol {
	info, ok := registry[name]
	if !ok {
		panic(fmt.Sprintf("protocol: unknown protocol %q", name))
	}
	return info.Build(p)
}

func contains(set []string, s string) bool {
	for _, x := range set {
		if x == s {
			return true
		}
	}
	return false
}
