package baseline

import (
	"testing"

	"repro/internal/channel"
	"repro/internal/protocol"
	"repro/internal/rng"
)

// TestBackoffPartitionedContract checks the Partitioned invariants on
// the backoff family: two same-seed instances — one driven through the
// monolithic cycle, one through the staged cycle — stay in lockstep
// (transmitter lists, pendings, wake times) through a full batch drain.
func TestBackoffPartitionedContract(t *testing.T) {
	const kappa = 8
	mono := NewExponentialBackoff(rng.New(9))
	staged := NewExponentialBackoff(rng.New(9))
	chM := channel.New(kappa, 4*kappa)
	chS := channel.New(kappa, 4*kappa)

	ids := make([]channel.PacketID, 100)
	for i := range ids {
		ids[i] = channel.PacketID(i)
	}
	mono.Inject(0, ids)
	staged.Inject(0, ids)

	for now := int64(1); now < 1<<20 && mono.Pending() > 0; now++ {
		txM := mono.Transmitters(now, nil)

		staged.PrepareSlot(now)
		var txS []channel.PacketID
		for sh := 0; sh < staged.Shards(); sh++ {
			txS = staged.ShardTransmitters(now, sh, txS)
		}
		if len(txM) != len(txS) {
			t.Fatalf("slot %d: staged %d transmitters, monolithic %d", now, len(txS), len(txM))
		}
		for i := range txM {
			if txM[i] != txS[i] {
				t.Fatalf("slot %d: transmitter order diverges at %d", now, i)
			}
		}

		classM, evM := chM.Step(now, txM)
		mono.Observe(channel.Feedback{Slot: now, Silent: classM == channel.Silent, Event: evM})

		classS, evS := chS.Step(now, txS)
		fbS := channel.Feedback{Slot: now, Silent: classS == channel.Silent, Event: evS}
		for sh := 0; sh < staged.Shards(); sh++ {
			staged.ShardObserve(sh, fbS)
		}
		staged.ReduceSlot(fbS)

		sum := 0
		for sh := 0; sh < staged.Shards(); sh++ {
			sum += staged.ShardPending(sh)
		}
		if sum != staged.Pending() || staged.Pending() != mono.Pending() {
			t.Fatalf("slot %d: shard sum %d, staged pending %d, monolithic pending %d",
				now, sum, staged.Pending(), mono.Pending())
		}

		// The min-reduce over per-shard wakes must equal NextWake.
		wake := int64(-1)
		for sh := 0; sh < staged.Shards(); sh++ {
			if w := staged.ShardNextWake(now, sh); w >= 0 && (wake < 0 || w < wake) {
				wake = w
			}
		}
		if nw := mono.NextWake(now); wake != nw {
			t.Fatalf("slot %d: shard wake reduce %d, NextWake %d", now, wake, nw)
		}
	}
	if mono.Pending() != 0 {
		t.Fatalf("batch not drained: %d pending", mono.Pending())
	}
	if staged.Shards() != protocol.NumShards {
		t.Fatalf("Shards() = %d, want %d", staged.Shards(), protocol.NumShards)
	}
}
