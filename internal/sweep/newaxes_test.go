package sweep

import (
	"bytes"
	"context"
	"strings"
	"testing"
)

// TestExpandCaptureAndNoCDSkipRules covers the skip rules the new axes
// introduced: dba never expands under capture, the no-CD protocols
// expand only under classical:none, and capture drops κ = 1 (where it
// collapses to the classical collision channel already swept).
func TestExpandCaptureAndNoCDSkipRules(t *testing.T) {
	s := Spec{
		Models:    []string{"coded", "classical:none", "capture"},
		Protocols: []string{"beb", "robust", "unbounded"},
		Arrivals:  []string{"batch"},
		Kappas:    []int{1, 8},
		Rates:     []float64{0.3},
		Trials:    1,
		Horizon:   100,
		Seed:      1,
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	cells := s.Expand()
	counts := map[string]int{}
	for _, c := range cells {
		counts[c.Model+"/"+c.Protocol]++
		switch {
		case (c.Protocol == "robust" || c.Protocol == "unbounded") && c.Model != "classical:none":
			t.Fatalf("no-CD protocol expanded under %s: %s", c.Model, c.Key())
		case c.Model == "capture" && c.Kappa < 2:
			t.Fatalf("capture expanded at κ=%d: %s", c.Kappa, c.Key())
		case c.Model == "classical:none" && c.Kappa != 1:
			t.Fatalf("classical cell with κ=%d: %s", c.Kappa, c.Key())
		}
	}
	want := map[string]int{
		"coded/beb":          2, // κ is the coded channel's real axis
		"classical:none/beb": 1, "classical:none/robust": 1, "classical:none/unbounded": 1,
		"capture/beb": 1, // κ=1 dropped (collapses to classical), κ=8 kept
	}
	for k, n := range want {
		if counts[k] != n {
			t.Fatalf("cell counts %v, want %v", counts, want)
		}
	}
	if len(cells) != 6 {
		t.Fatalf("expanded %d cells, want 6", len(cells))
	}

	// dba is coded-only: it must not expand under capture even though
	// capture honors its κ floor.
	s = Spec{
		Models:    []string{"coded", "capture"},
		Protocols: []string{"dba", "beb"},
		Arrivals:  []string{"batch"},
		Kappas:    []int{8},
		Rates:     []float64{0.3},
		Trials:    1,
		Horizon:   100,
		Seed:      1,
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, c := range s.Expand() {
		if c.Protocol == "dba" && c.Model != "coded" {
			t.Fatalf("dba expanded under %s: %s", c.Model, c.Key())
		}
	}
}

// TestValidateNoCDRequiresClassicalNone: a spec whose protocols are all
// no-CD but whose models omit classical:none would expand to zero cells
// for those protocols; Validate must name the problem.
func TestValidateNoCDRequiresClassicalNone(t *testing.T) {
	s := Spec{
		Models:    []string{"coded"},
		Protocols: []string{"robust", "unbounded"},
		Arrivals:  []string{"batch"},
		Kappas:    []int{8},
		Rates:     []float64{0.3},
		Trials:    1,
		Horizon:   100,
		Seed:      1,
	}
	err := s.Validate()
	if err == nil || !strings.Contains(err.Error(), "classical:none") {
		t.Fatalf("all-no-CD spec without classical:none accepted: %v", err)
	}
	// Adding the model fixes it.
	s.Models = []string{"coded", "classical:none"}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestValidateRejectsEmptyExpansion: skip rules that eliminate every
// cell must fail validation rather than produce an empty artifact.
func TestValidateRejectsEmptyExpansion(t *testing.T) {
	s := Spec{
		Models:    []string{"capture"},
		Protocols: []string{"beb"},
		Arrivals:  []string{"batch"},
		Kappas:    []int{1}, // capture drops κ=1 → nothing left
		Rates:     []float64{0.3},
		Trials:    1,
		Horizon:   100,
		Seed:      1,
	}
	err := s.Validate()
	if err == nil || !strings.Contains(err.Error(), "no cells") {
		t.Fatalf("zero-cell spec accepted: %v", err)
	}
}

// TestRunNewAxesGridDeterministic runs a grid over the new axes —
// capture cells and both no-CD protocols — end to end and holds it to
// the same bar as every other grid: byte-identical JSON across
// parallelism and across reruns, with conservation in every cell.
func TestRunNewAxesGridDeterministic(t *testing.T) {
	s := Spec{
		Name:      "newaxes",
		Models:    []string{"coded", "classical:none", "capture"},
		Protocols: []string{"dba", "beb", "robust", "unbounded"},
		Arrivals:  []string{"batch", "bernoulli"},
		Kappas:    []int{8},
		Rates:     []float64{0.2},
		BatchN:    60,
		Trials:    2,
		Horizon:   400,
		Seed:      23,
	}
	render := func(par int) []byte {
		grid, err := Run(context.Background(), s, Options{Parallelism: par})
		if err != nil {
			t.Fatal(err)
		}
		for _, c := range grid.Cells {
			if c.Arrivals == 0 {
				t.Fatalf("%s: no arrivals", c.Key())
			}
			if c.Arrivals != c.Delivered+c.Pending {
				t.Fatalf("%s: conservation violated", c.Key())
			}
		}
		data, err := grid.JSON()
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	serial := render(1)
	for _, par := range []int{2, 8} {
		if !bytes.Equal(serial, render(par)) {
			t.Fatalf("parallelism %d changed the new-axes artifact", par)
		}
	}
	if !bytes.Equal(serial, render(1)) {
		t.Fatal("rerun with the same seed diverged")
	}
	// A 4-shard run over the same grid must merge byte-identically —
	// the new skip rules partition cells, and partitioning must not
	// perturb seeds or order.
	mergedJSON, _ := mergedArtifacts(t, s, 4, 2)
	if !bytes.Equal(serial, mergedJSON) {
		t.Fatal("4-shard merge differs from the unsharded new-axes artifact")
	}
	grid, err := Run(context.Background(), s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	keys := make(map[string]bool, len(grid.Cells))
	for _, c := range grid.Cells {
		keys[c.Key()] = true
	}
	for _, want := range []string{
		"classical:none/robust/batch/k=1/rate=0.2/jam=none/adv=none",
		"classical:none/unbounded/bernoulli/k=1/rate=0.2/jam=none/adv=none",
		"capture/beb/batch/k=8/rate=0.2/jam=none/adv=none",
	} {
		if !keys[want] {
			t.Fatalf("expected cell %q missing; have %v", want, keys)
		}
	}
}
