package sim

import (
	"runtime"
	"sync"

	"repro/internal/rng"
	"repro/internal/stats"
)

// TrialFunc builds and runs one independent trial from a seed, returning
// its result.  Implementations must construct a fresh protocol, arrival
// process, and channel medium per call (they are stateful; a Medium may
// only be shared across trials after Reset, never concurrently).
type TrialFunc func(trial int, seed uint64) *Result

// TrialSeeds derives the n trial seeds RunTrials assigns from baseSeed:
// one rng stream, read sequentially.  Exposed so a caller running a
// *subset* of a trial grid (a sweep shard, a cache-resumed sweep) can
// seed each trial exactly as the full run would — the property that
// makes sharded and resumed artifacts byte-identical to unsharded ones.
func TrialSeeds(n int, baseSeed uint64) []uint64 {
	if n <= 0 {
		return nil
	}
	seeds := make([]uint64, n)
	seedGen := rng.New(baseSeed)
	for i := range seeds {
		seeds[i] = seedGen.Uint64()
	}
	return seeds
}

// RunTrials executes n independent trials, fanning them out over up to
// `parallelism` goroutines (0 = GOMAXPROCS).  Trial seeds are derived
// deterministically from baseSeed (see TrialSeeds), so results are
// reproducible regardless of scheduling, and results are returned
// indexed by trial.
func RunTrials(n int, baseSeed uint64, parallelism int, f TrialFunc) []*Result {
	return RunSeededTrials(TrialSeeds(n, baseSeed), parallelism, f)
}

// RunSeededTrials executes one trial per explicit seed, fanning them out
// over up to `parallelism` goroutines (0 = GOMAXPROCS).  It is the
// subset-capable core of RunTrials: seeds[i] drives trial i, whatever
// grid position that trial came from.
func RunSeededTrials(seeds []uint64, parallelism int, f TrialFunc) []*Result {
	n := len(seeds)
	if n == 0 {
		return nil
	}
	results := make([]*Result, n)
	ForEach(n, parallelism, func(i int) { results[i] = f(i, seeds[i]) })
	return results
}

// ForEach invokes fn(i) for every i in [0, n), fanning the calls out
// over up to `parallelism` goroutines (0 = GOMAXPROCS), and returns
// once all calls have completed.  It is the repository's one
// worker-pool implementation: trial fan-out, the experiments runner,
// and the staged engine's shard stages all go through it.  fn must be
// safe for concurrent calls with distinct i.
func ForEach(n, parallelism int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	if parallelism > n {
		parallelism = n
	}
	if parallelism == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}

// Aggregate summarizes a metric over trial results.
func Aggregate(results []*Result, metric func(*Result) float64) stats.Summary {
	var s stats.Summary
	for _, r := range results {
		if r != nil {
			s.Add(metric(r))
		}
	}
	return s
}
