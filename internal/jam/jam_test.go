package jam

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func TestNone(t *testing.T) {
	var j None
	r := rng.New(1)
	for now := int64(0); now < 100; now++ {
		if j.Jammed(now, r) {
			t.Fatal("None jammed a slot")
		}
	}
	if j.Name() != "none" {
		t.Fatalf("name %q", j.Name())
	}
}

func TestRandomRate(t *testing.T) {
	j := &Random{Rate: 0.25}
	r := rng.New(2)
	hits := 0
	const n = 100000
	for now := int64(0); now < n; now++ {
		if j.Jammed(now, r) {
			hits++
		}
	}
	if got := float64(hits) / n; math.Abs(got-0.25) > 0.01 {
		t.Fatalf("random jam rate %v", got)
	}
}

func TestRandomEdges(t *testing.T) {
	r := rng.New(3)
	if (&Random{Rate: 0}).Jammed(0, r) {
		t.Fatal("rate-0 jammed")
	}
	if !(&Random{Rate: 1}).Jammed(0, r) {
		t.Fatal("rate-1 did not jam")
	}
}

func TestPeriodic(t *testing.T) {
	j := &Periodic{Period: 10, Burst: 3}
	r := rng.New(4)
	for now := int64(0); now < 50; now++ {
		want := now%10 < 3
		if j.Jammed(now, r) != want {
			t.Fatalf("slot %d: jammed=%v want %v", now, j.Jammed(now, r), want)
		}
	}
}

func TestPeriodicZeroPeriod(t *testing.T) {
	j := &Periodic{Period: 0, Burst: 1}
	if j.Jammed(5, rng.New(1)) {
		t.Fatal("zero-period jammer jammed")
	}
}

func TestNames(t *testing.T) {
	if (&Random{Rate: 0.5}).Name() == "" || (&Periodic{Period: 2, Burst: 1}).Name() == "" {
		t.Fatal("empty jammer name")
	}
}
