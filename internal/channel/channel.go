// Package channel implements the Coded Radio Network Model of Bender,
// Gilbert, Kuhn, Kuszmaul, and Médard (SPAA 2022).
//
// Time is slotted.  In each slot some set of packets broadcasts.  A slot
// is silent (no transmitters), good (1..κ transmitters), or bad (more
// than κ, where κ is the hardware decoding threshold).  The base station
// accumulates information from good slots and a decoding event of size j
// fires at the first time t at which some window that begins with a good
// slot, contains no earlier decoding event, and has at least j good slots
// covers exactly j distinct broadcasting packets (Definition 1 of the
// paper).  Decoded packets leave the system, and everything broadcast
// before the event that was not part of its window is discarded —
// decoding windows are disjoint.
//
// Devices hear only two things: whether a slot was silent, and decoding
// events.  They cannot distinguish good slots from bad ones.  The
// Feedback type exposes exactly that interface; the SlotClass returned by
// Step is for the measurement harness only.
//
// The per-slot path is built to stay off the allocator and out of the
// map runtime: last-occurrence tracking lives in a paged arena keyed by
// packet ID (internal/arena), window occupancy is a uint64 bitset
// (linalg.Bits) so detection scans words instead of entries, duplicate
// validation sorts a reused scratch slice, and the decoding event and
// its packet slice are reused across events.
package channel

import (
	"fmt"
	"slices"

	"repro/internal/arena"
	"repro/internal/linalg"
)

// PacketID identifies a packet in the system.  IDs are assigned by the
// simulation engine in arrival order.
type PacketID int64

// SlotClass classifies a slot by its number of transmitters.
type SlotClass uint8

const (
	// Silent means no packet broadcast in the slot.
	Silent SlotClass = iota
	// Good means between 1 and κ packets broadcast.
	Good
	// Bad means more than κ packets broadcast; the base station learns
	// nothing from the slot.
	Bad
)

// String returns the class name.
func (c SlotClass) String() string {
	switch c {
	case Silent:
		return "silent"
	case Good:
		return "good"
	case Bad:
		return "bad"
	}
	return fmt.Sprintf("SlotClass(%d)", uint8(c))
}

// Event is a decoding event: at slot Slot, the base station decodes
// every packet that broadcast in a good slot of the window
// [WindowStart, Slot].  Packets is sorted by ID.
type Event struct {
	Slot        int64
	WindowStart int64
	Packets     []PacketID
}

// Size returns the number of packets delivered by the event.
func (e *Event) Size() int { return len(e.Packets) }

// Feedback is everything a device can hear about a slot: silence, and
// any decoding event.  On the coded channel devices cannot tell good
// slots from bad ones, so Collision is never set there; a classical
// medium with ternary collision detection sets it when a busy slot
// carried no decodable transmission (see internal/medium).
type Feedback struct {
	Slot   int64
	Silent bool
	Event  *Event // nil if no decoding event occurred at this slot
	// Collision reports that the slot was audibly a collision.  Only
	// media whose feedback model can distinguish collisions from
	// successes (classical ternary CD) ever set it.
	Collision bool
}

// Stats aggregates channel-level counters over an execution.
type Stats struct {
	SilentSlots int64
	GoodSlots   int64
	BadSlots    int64
	Events      int64
	Delivered   int64
	// PrunedPackets counts packets whose pending broadcast information
	// was discarded because the decoding window length cap was exceeded.
	PrunedPackets int64
	// JammedSlots counts slots spoiled by jamming energy.
	JammedSlots int64
}

// goodEntry records one good slot awaiting a decoding event: the slot
// number and the packets whose most recent broadcast was in this slot.
type goodEntry struct {
	slot    int64
	members []PacketID
}

type occRef struct {
	abs int // absolute index of the goodEntry holding the packet
	pos int // position within that entry's members slice
}

// Channel is the base station side of the Coded Radio Network Model.
// It classifies slots and detects decoding events per Definition 1.
// The zero value is not usable; call New.
type Channel struct {
	kappa     int
	maxWindow int // 0 = unbounded

	entries  []goodEntry // good slots since the last decoding event
	firstAbs int         // absolute index of entries[0]
	// occ tracks which tracked entries still have live members (bit i ↔
	// entries[i] non-empty) and total counts live members across them,
	// so event detection walks only non-empty entries via word scans.
	occ   linalg.Bits
	total int
	// lastOcc maps a packet ID to its most recent broadcast; the paged
	// arena replaces the map that used to dominate the slot profile.
	lastOcc arena.Index[occRef]

	stats Stats
	// prevTxs caches the last validated transmitter list: epoch-based
	// protocols resend identical sets for many consecutive slots, and an
	// equality scan is far cheaper than re-validating thousands of IDs.
	prevTxs []PacketID
	// prevRec/prevRecSlot remember the transmitter list of the last
	// recorded good slot, enabling record's wholesale-move fast path when
	// an epoch retransmits the identical set.
	prevRec     []PacketID
	prevRecSlot int64
	// dupScratch is the reused sort buffer for large-slot duplicate
	// validation.
	dupScratch []PacketID
	// freeMembers recycles goodEntry member storage: every good slot
	// needs a members slice, and without recycling the steady-state
	// per-slot path allocates one per good slot.  The pool is bounded by
	// the peak number of simultaneously tracked entries.
	freeMembers [][]PacketID

	// ev and evPackets back the returned decoding event, reused across
	// events so the steady-state path never allocates.
	ev        Event
	evPackets []PacketID

	// lastBad guards StepRepeat: only a slot known to repeat a bad slot
	// may skip classification.
	lastBad bool

	// sdup and flat serve StepSharded (chunked transmitter input from
	// the staged engine).
	sdup ShardedDup
	flat []PacketID
}

// New returns a channel with decoding threshold kappa.  maxWindow caps
// the length (in slots) of any decoding window; information older than
// the cap is discarded, mirroring a base station with bounded memory.
// maxWindow = 0 means unbounded.  The paper notes windows of length O(κ)
// suffice for the Decodable Backoff Algorithm; the harness default is 4κ.
func New(kappa, maxWindow int) *Channel {
	if kappa < 1 {
		panic("channel: kappa must be at least 1")
	}
	if maxWindow < 0 {
		panic("channel: negative maxWindow")
	}
	return &Channel{kappa: kappa, maxWindow: maxWindow}
}

// Kappa returns the decoding threshold.
func (c *Channel) Kappa() int { return c.kappa }

// MaxWindow returns the decoding window cap (0 = unbounded).
func (c *Channel) MaxWindow() int { return c.maxWindow }

// Stats returns a copy of the accumulated counters.
func (c *Channel) Stats() Stats { return c.stats }

// AddSilent accounts n silent slots without stepping the channel.  The
// simulation engine uses it when it fast-forwards through provably idle
// stretches; silent slots never change detector state, so only the
// counter needs updating.
func (c *Channel) AddSilent(n int64) {
	if n < 0 {
		panic("channel: negative silent-slot count")
	}
	c.stats.SilentSlots += n
}

// Step processes one slot in which the given packets broadcast.  It
// returns the slot class and the decoding event, if one fired.  Slots
// must be fed in increasing time order.  Step panics if txs contains a
// duplicate ID (one device cannot send two packets at once).
//
// The returned Event (and its Packets slice) is only valid until the
// channel is next stepped; callers that need it longer must copy it.
//
// Jamming is not the channel's concern: adversarial slot-spoiling lives
// in the medium layer (internal/medium.Jam), which composes a jammer
// over any medium and never forwards spoiled slots here.
func (c *Channel) Step(now int64, txs []PacketID) (SlotClass, *Event) {
	switch {
	case len(txs) == 0:
		c.stats.SilentSlots++
		c.lastBad = false
		return Silent, nil
	case len(txs) > c.kappa:
		c.checkDuplicates(txs)
		c.stats.BadSlots++
		c.lastBad = true
		return Bad, nil
	}
	c.checkDuplicates(txs)
	c.lastBad = false
	return Good, c.goodSlot(now, txs)
}

// StepRepeat replays the most recently stepped slot's transmitter
// multiset at slot now, in O(1).  It is only valid when that slot
// classified Bad — bad slots never change detector state, so replaying
// one moves a counter and nothing else.  The engine's event-driven
// fast-forward uses it to coast through runs of provably identical bad
// slots (e.g. the tail of an overfull epoch) without re-collecting or
// re-validating thousands of transmitters per slot.
func (c *Channel) StepRepeat(now int64) (SlotClass, *Event) {
	if !c.lastBad {
		panic("channel: StepRepeat without a preceding bad slot")
	}
	c.stats.BadSlots++
	return Bad, nil
}

// StepSharded is Step for a transmitter list delivered as ordered
// chunks — the staged engine's per-shard buffers — with identical
// semantics and statistics to Step(now, concatenation of chunks).
// Good slots (at most κ transmitters) flatten and take the serial
// path; the O(transmitters) duplicate validation of large bad slots
// runs as per-shard partials scheduled through fan and merged in shard
// order, so the result (including which duplicate a protocol bug
// panics on) is identical at every worker count.  A nil fan runs the
// partials inline.
func (c *Channel) StepSharded(now int64, chunks [][]PacketID, fan FanOut) (SlotClass, *Event) {
	total := 0
	for _, ch := range chunks {
		total += len(ch)
	}
	switch {
	case total == 0:
		c.stats.SilentSlots++
		c.lastBad = false
		return Silent, nil
	case total > c.kappa:
		c.sdup.Check("channel", chunks, fan)
		c.stats.BadSlots++
		c.lastBad = true
		return Bad, nil
	}
	c.flat = c.flat[:0]
	for _, ch := range chunks {
		c.flat = append(c.flat, ch...)
	}
	c.checkDuplicates(c.flat)
	c.lastBad = false
	return Good, c.goodSlot(now, c.flat)
}

// goodSlot runs the good-slot pipeline: prune the window cap, record
// the broadcast, detect a decoding event.
func (c *Channel) goodSlot(now int64, txs []PacketID) *Event {
	c.stats.GoodSlots++
	c.prune(now)
	c.record(now, txs)
	ev := c.detect(now)
	if ev != nil {
		c.stats.Events++
		c.stats.Delivered += int64(len(ev.Packets))
		c.reset()
	}
	return ev
}

func (c *Channel) checkDuplicates(txs []PacketID) {
	if len(txs) < 2 {
		return
	}
	if sameIDs(txs, c.prevTxs) {
		return // identical to the already-validated previous slot
	}
	if id, found := findDup(txs, &c.dupScratch); found {
		panic(fmt.Sprintf("channel: packet %d transmitted twice in one slot", id))
	}
	// Cache only lists that passed validation, so a caller that recovers
	// from the panic cannot sneak the same invalid list past the cache.
	c.prevTxs = append(c.prevTxs[:0], txs...)
}

// findDup reports a duplicated ID in txs.  Small lists use a quadratic
// scan (cheaper than any setup); larger ones sort a reused scratch copy
// and scan adjacent pairs, so validation needs no map and no per-call
// allocation.  The reported duplicate is deterministic: first by
// position for small lists, smallest duplicated ID for large ones.
func findDup(txs []PacketID, scratch *[]PacketID) (PacketID, bool) {
	if len(txs) <= 32 {
		for i := 1; i < len(txs); i++ {
			for j := 0; j < i; j++ {
				if txs[i] == txs[j] {
					return txs[i], true
				}
			}
		}
		return 0, false
	}
	s := append((*scratch)[:0], txs...)
	slices.Sort(s)
	*scratch = s
	for i := 1; i < len(s); i++ {
		if s[i] == s[i-1] {
			return s[i], true
		}
	}
	return 0, false
}

// sameIDs reports whether a and b are element-wise identical.
func sameIDs(a, b []PacketID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// newMembers returns an empty member slice, reusing recycled storage
// when available.
func (c *Channel) newMembers(capHint int) []PacketID {
	if n := len(c.freeMembers); n > 0 {
		s := c.freeMembers[n-1]
		c.freeMembers[n-1] = nil
		c.freeMembers = c.freeMembers[:n-1]
		return s[:0]
	}
	return make([]PacketID, 0, capHint)
}

// recycleMembers returns a member slice's storage to the pool.
func (c *Channel) recycleMembers(s []PacketID) {
	if cap(s) > 0 {
		c.freeMembers = append(c.freeMembers, s[:0])
	}
}

// prune drops good slots that can no longer start a window ending at or
// after now because of the window-length cap.  Only entries with live
// members need their packets untracked; the occupancy bitset finds them
// without touching the (typically emptied) rest.
func (c *Channel) prune(now int64) {
	if c.maxWindow == 0 {
		return
	}
	minStart := now - int64(c.maxWindow) + 1
	drop := 0
	for drop < len(c.entries) && c.entries[drop].slot < minStart {
		drop++
	}
	if drop == 0 {
		return
	}
	for pos := c.occ.NextSet(0); pos >= 0 && pos < drop; pos = c.occ.NextSet(pos + 1) {
		members := c.entries[pos].members
		for _, id := range members {
			c.lastOcc.Delete(int64(id))
			c.stats.PrunedPackets++
		}
		c.total -= len(members)
		c.recycleMembers(members)
		c.entries[pos].members = nil
	}
	c.entries = c.entries[drop:]
	c.firstAbs += drop
	c.occ.ShiftDown(drop)
}

// record appends the good slot and moves each transmitter's last
// occurrence to it.
func (c *Channel) record(now int64, txs []PacketID) {
	idx := len(c.entries)
	abs := c.firstAbs + idx
	if idx > 0 && c.entries[idx-1].slot == c.prevRecSlot &&
		len(c.entries[idx-1].members) == len(txs) && sameIDs(txs, c.prevRec) {
		// Epoch fast path: the previous good slot was the last entry, its
		// members are untouched (same length, and members only shrink),
		// and the identical list retransmitted — every last occurrence
		// moves wholesale.  Steal the member slice and rewrite only the
		// entry coordinate of each reference; the previous entry empties,
		// exactly as the general path's per-packet Swap/remove would
		// leave it.
		prev := &c.entries[idx-1]
		members := prev.members
		prev.members = nil
		c.entries = append(c.entries, goodEntry{slot: now, members: members})
		c.occ.EnsureBits(idx + 1)
		c.occ.Clear(idx - 1)
		c.occ.Set(idx)
		for pos, id := range members {
			c.lastOcc.Put(int64(id), occRef{abs: abs, pos: pos})
		}
		c.prevRecSlot = now
		return
	}
	c.entries = append(c.entries, goodEntry{slot: now, members: c.newMembers(len(txs))})
	c.occ.EnsureBits(idx + 1)
	e := &c.entries[idx]
	for _, id := range txs {
		if ref, ok := c.lastOcc.Swap(int64(id), occRef{abs: abs, pos: len(e.members)}); ok {
			c.removeMember(ref)
		}
		e.members = append(e.members, id)
	}
	c.occ.Set(idx) // a good slot has at least one transmitter
	c.total += len(txs)
	c.prevRec = append(c.prevRec[:0], txs...)
	c.prevRecSlot = now
}

// removeMember deletes the packet at ref from its entry's member list by
// swapping with the last member and fixing the moved packet's reference.
func (c *Channel) removeMember(ref occRef) {
	idx := ref.abs - c.firstAbs
	if idx < 0 || idx >= len(c.entries) {
		return // entry already pruned or delivered
	}
	m := c.entries[idx].members
	last := len(m) - 1
	moved := m[last]
	m[ref.pos] = moved
	c.entries[idx].members = m[:last]
	if ref.pos != last {
		c.lastOcc.Put(int64(moved), occRef{abs: ref.abs, pos: ref.pos})
	}
	c.total--
	if last == 0 {
		// The entry just emptied: clear its occupancy bit and recycle the
		// member storage now — an entry only ever loses members, so the
		// slice would otherwise idle until the next event.
		c.occ.Clear(idx)
		c.recycleMembers(m)
		c.entries[idx].members = nil
	}
}

// detect scans candidate window starts for a valid decoding window ending
// at the current slot.  A start at entry i is valid iff the number of
// distinct packets whose most recent broadcast is at entry >= i is at
// most the number of good slots from entry i onward.  Among valid starts
// it picks the earliest, which delivers a superset of any other choice
// (windows sharing an endpoint are nested).
//
// The scan walks only non-empty entries, oldest first, via the
// occupancy bitset: every candidate start between two consecutive
// non-empty entries sees the same suffix of tracked packets, so one
// check per non-empty entry covers them all, and the first satisfied
// check is the earliest valid start.
func (c *Channel) detect(now int64) *Event {
	L := len(c.entries)
	best := -1
	prefix := 0 // live members in non-empty entries before pos
	prev := -1  // previous non-empty entry position
	for pos := c.occ.NextSet(0); pos >= 0 && pos < L; pos = c.occ.NextSet(pos + 1) {
		// Candidate starts in (prev, pos] all see suffix = total-prefix
		// distinct packets; the earliest, prev+1, is valid iff it leaves
		// at least that many good slots.
		if prev+1 <= L-(c.total-prefix) {
			best = prev + 1
			break
		}
		prefix += len(c.entries[pos].members)
		prev = pos
	}
	if best < 0 {
		return nil
	}
	packets := c.evPackets[:0]
	for pos := c.occ.NextSet(best); pos >= 0 && pos < L; pos = c.occ.NextSet(pos + 1) {
		packets = append(packets, c.entries[pos].members...)
	}
	slices.Sort(packets)
	c.evPackets = packets
	c.ev = Event{Slot: now, WindowStart: c.entries[best].slot, Packets: packets}
	return &c.ev
}

// reset discards all pending broadcast information: decoding windows must
// be disjoint, so nothing before an event can be reused.
func (c *Channel) reset() {
	for pos := c.occ.NextSet(0); pos >= 0 && pos < len(c.entries); pos = c.occ.NextSet(pos + 1) {
		members := c.entries[pos].members
		for _, id := range members {
			c.lastOcc.Delete(int64(id))
		}
		c.recycleMembers(members)
		c.entries[pos].members = nil
	}
	c.entries = c.entries[:0]
	c.firstAbs = 0
	c.total = 0
	c.occ.Zero()
}

// Reset returns the channel to its initial state: the detector forgets
// all pending broadcast information and every counter is zeroed, as if
// freshly constructed with the same kappa and maxWindow.  It lets one
// channel be reused across runs without reallocation.
func (c *Channel) Reset() {
	c.reset()
	c.lastOcc.Reset()
	c.stats = Stats{}
	c.prevTxs = c.prevTxs[:0]
	c.lastBad = false
	c.sdup.Reset()
}

// PendingGoodSlots returns the number of good slots currently tracked
// (since the last decoding event, after pruning).  Exposed for tests and
// diagnostics.
func (c *Channel) PendingGoodSlots() int { return len(c.entries) }

// PendingPackets returns the number of distinct packets with tracked
// broadcasts.  Exposed for tests and diagnostics.
func (c *Channel) PendingPackets() int { return c.lastOcc.Len() }
