package emu

import (
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/rng"
)

// Wire segment layout (one UDP datagram each):
//
//	data: [kindData][seq u32 LE][fin u8][payload ≤ maxSegPayload]
//	ack:  [kindAck][cumulative ack u32 LE]
//
// Frames are split into ≤ maxSegPayload data segments (fin marks the
// last) and reassembled in order on the far side, so frames larger than
// a datagram — a dense slot's transmitter list — ship transparently.
// Reliability is go-back-N: the receiver accepts only the in-order
// prefix and acks cumulatively; the sender keeps a bounded window of
// unacked segments (Send blocks when it fills — the send-queue
// backpressure) and retransmits the window when the oldest segment
// outlives the RTO, which adapts to a smoothed RTT (Karn's rule:
// retransmitted segments never feed the estimator).
const (
	kindData = 0x01
	kindAck  = 0x02

	dataHeader    = 6
	maxSegPayload = 1024
	sendWindow    = 64

	initialRTO = 50 * time.Millisecond
	minRTO     = 10 * time.Millisecond
	maxRTO     = 500 * time.Millisecond
	// rttAlpha is the EWMA weight of a new RTT sample.
	rttAlpha = 0.125
	// retransTick is how often the retransmit loop inspects the window.
	retransTick = 5 * time.Millisecond
)

// Fault is a deterministic datagram fault plan for lossy-transport
// regimes: every outgoing datagram (data and ack alike) is dropped with
// probability DropRate and duplicated with probability DupRate, driven
// by a private stream seeded from Seed.  The zero value is a clean
// link.
type Fault struct {
	DropRate float64
	DupRate  float64
	Seed     uint64
}

func (f Fault) active() bool { return f.DropRate > 0 || f.DupRate > 0 }

// wseg is one unacked outbound segment.
type wseg struct {
	seq       uint32
	pkt       []byte // full datagram, ready to retransmit
	firstSent time.Time
	retrans   bool
}

// udpLink is one reliable frame link over datagrams.  The raw write
// function and the pump feeding handle() are supplied by the endpoint
// (dialer or listener), so the protocol logic is transport-socket
// agnostic — and directly testable against an in-memory lossy pair.
type udpLink struct {
	writeRaw func([]byte) error
	onClose  func()

	mu       sync.Mutex
	space    *sync.Cond // window space freed, or closed
	closed   bool
	sendSeq  uint32
	sendBase uint32
	window   []wseg
	srtt     float64 // milliseconds; 0 until first sample
	rto      time.Duration
	backoff  int

	recvNext uint32
	partial  []byte

	frames chan *Frame
	stats  ConnStats

	frng  *rng.Rand
	fault Fault

	closeCh chan struct{}
}

func newUDPLink(write func([]byte) error, fault Fault, onClose func()) *udpLink {
	l := &udpLink{
		writeRaw: write,
		onClose:  onClose,
		rto:      initialRTO,
		frames:   make(chan *Frame, 256),
		fault:    fault,
		closeCh:  make(chan struct{}),
	}
	l.space = sync.NewCond(&l.mu)
	if fault.active() {
		l.frng = rng.New(fault.Seed)
	}
	go l.retransmitLoop()
	return l
}

// transmit writes one datagram through the fault plan.  Callers hold mu.
func (l *udpLink) transmit(pkt []byte) {
	if l.frng != nil {
		if l.fault.DropRate > 0 && l.frng.Float64() < l.fault.DropRate {
			l.stats.FaultDrops++
			return
		}
		if l.fault.DupRate > 0 && l.frng.Float64() < l.fault.DupRate {
			l.stats.FaultDups++
			_ = l.writeRaw(pkt)
		}
	}
	_ = l.writeRaw(pkt)
}

// Send splits the frame into data segments and queues each into the
// go-back-N window, blocking for space — the tru-style send-queue
// backpressure — and transmitting immediately.
func (l *udpLink) Send(f *Frame) error {
	buf := f.Append(nil)
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	l.stats.FramesSent++
	l.stats.BytesSent += uint64(len(buf))
	for off := 0; ; {
		end := off + maxSegPayload
		fin := byte(0)
		if end >= len(buf) {
			end = len(buf)
			fin = 1
		}
		for len(l.window) >= sendWindow && !l.closed {
			l.space.Wait()
		}
		if l.closed {
			return ErrClosed
		}
		pkt := make([]byte, 0, dataHeader+end-off)
		pkt = append(pkt, kindData)
		pkt = appendU32(pkt, l.sendSeq)
		pkt = append(pkt, fin)
		pkt = append(pkt, buf[off:end]...)
		l.window = append(l.window, wseg{seq: l.sendSeq, pkt: pkt, firstSent: time.Now()})
		l.sendSeq++
		l.stats.SegsSent++
		l.transmit(pkt)
		if fin == 1 {
			return nil
		}
		off = end
	}
}

// handle processes one inbound datagram (called from the endpoint's
// socket pump).
func (l *udpLink) handle(pkt []byte) {
	if len(pkt) < 1 {
		return
	}
	var done []*Frame
	l.mu.Lock()
	switch pkt[0] {
	case kindData:
		if len(pkt) < dataHeader {
			break
		}
		seq := leU32(pkt[1:5])
		fin := pkt[5]
		l.stats.SegsRecv++
		if seq == l.recvNext {
			l.recvNext++
			l.partial = append(l.partial, pkt[dataHeader:]...)
			if fin == 1 {
				f := new(Frame)
				if err := f.Decode(l.partial); err == nil {
					l.stats.FramesRecv++
					l.stats.BytesRecv += uint64(len(l.partial))
					done = append(done, f)
				}
				l.partial = l.partial[:0]
			}
		} else {
			// Duplicate or out-of-order: go-back-N keeps only the in-order
			// prefix; the cumulative re-ack below tells the sender where
			// to resume.
			l.stats.DupSegs++
		}
		ack := []byte{kindAck, 0, 0, 0, 0}
		putU32(ack[1:5], l.recvNext)
		l.transmit(ack)
	case kindAck:
		if len(pkt) < 5 {
			break
		}
		l.ackLocked(leU32(pkt[1:5]))
	}
	closed := l.closed
	l.mu.Unlock()
	for _, f := range done {
		if closed {
			return
		}
		select {
		case l.frames <- f:
		case <-l.closeCh:
			return
		}
	}
}

// ackLocked advances the send window to the cumulative ack.
func (l *udpLink) ackLocked(ack uint32) {
	freed := false
	for len(l.window) > 0 && int32(l.window[0].seq-ack) < 0 {
		seg := l.window[0]
		l.window = l.window[1:]
		freed = true
		if !seg.retrans {
			// Karn's rule: only never-retransmitted segments sample RTT.
			sample := float64(time.Since(seg.firstSent)) / float64(time.Millisecond)
			if l.srtt == 0 {
				l.srtt = sample
			} else {
				l.srtt = (1-rttAlpha)*l.srtt + rttAlpha*sample
			}
			l.stats.RTTMillis = l.srtt
		}
	}
	if freed {
		l.sendBase = ack
		l.backoff = 0
		l.rto = clampRTO(time.Duration(2 * l.srtt * float64(time.Millisecond)))
		l.space.Broadcast()
	}
}

func clampRTO(d time.Duration) time.Duration {
	if d < minRTO {
		return minRTO
	}
	if d > maxRTO {
		return maxRTO
	}
	return d
}

// retransmitLoop watches the window and, when its oldest segment
// outlives the RTO, resends every unacked segment (go-back-N) with
// exponential RTO backoff until acks resume.
func (l *udpLink) retransmitLoop() {
	ticker := time.NewTicker(retransTick)
	defer ticker.Stop()
	for {
		select {
		case <-l.closeCh:
			return
		case <-ticker.C:
		}
		l.mu.Lock()
		if len(l.window) > 0 {
			rto := l.rto << l.backoff
			if rto > maxRTO {
				rto = maxRTO
			}
			if time.Since(l.window[0].firstSent) > rto {
				for i := range l.window {
					l.window[i].retrans = true
					l.stats.Retransmits++
					l.transmit(l.window[i].pkt)
				}
				if l.backoff < 6 {
					l.backoff++
				}
				// Restart the clock so the next round waits a full
				// backed-off RTO from this retransmission.
				l.window[0].firstSent = time.Now()
			}
		}
		l.mu.Unlock()
	}
}

func (l *udpLink) Recv(timeout time.Duration) (*Frame, error) {
	var timer <-chan time.Time
	if timeout > 0 {
		t := time.NewTimer(timeout)
		defer t.Stop()
		timer = t.C
	}
	select {
	case f := <-l.frames:
		return f, nil
	case <-timer:
		return nil, ErrTimeout
	case <-l.closeCh:
		select {
		case f := <-l.frames:
			return f, nil
		default:
			return nil, ErrClosed
		}
	}
}

func (l *udpLink) Stats() ConnStats {
	l.mu.Lock()
	defer l.mu.Unlock()
	s := l.stats
	s.SendQueue = len(l.window)
	s.RecvQueue = len(l.frames)
	return s
}

func (l *udpLink) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	l.space.Broadcast()
	close(l.closeCh)
	l.mu.Unlock()
	if l.onClose != nil {
		l.onClose()
	}
	return nil
}

func leU32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func putU32(b []byte, v uint32) {
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
}

// DialUDP connects a station to a coordinator's UDP listener and
// returns the reliable frame link over it.
func DialUDP(addr string, fault Fault) (Transport, error) {
	conn, err := net.Dial("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("emu: dial %s: %w", addr, err)
	}
	l := newUDPLink(
		func(b []byte) error { _, err := conn.Write(b); return err },
		fault,
		func() { conn.Close() },
	)
	go func() {
		buf := make([]byte, 64<<10)
		for {
			n, err := conn.Read(buf)
			if err != nil {
				return
			}
			l.handle(buf[:n])
		}
	}()
	return l, nil
}

// Listener is the coordinator's UDP endpoint: one socket, one reliable
// link per station address, links surfaced in Hello-arrival order via
// Accept.
type Listener struct {
	conn  *net.UDPConn
	fault Fault

	mu     sync.Mutex
	links  map[string]*udpLink
	nlinks uint64
	closed bool

	accept  chan Transport
	closeCh chan struct{}
}

// ListenUDP binds the coordinator's socket.  addr is host:port
// (port 0 picks a free port; see Addr).
func ListenUDP(addr string, fault Fault) (*Listener, error) {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("emu: listen %s: %w", addr, err)
	}
	conn, err := net.ListenUDP("udp", ua)
	if err != nil {
		return nil, fmt.Errorf("emu: listen %s: %w", addr, err)
	}
	ln := &Listener{
		conn:    conn,
		fault:   fault,
		links:   make(map[string]*udpLink),
		accept:  make(chan Transport, 64),
		closeCh: make(chan struct{}),
	}
	go ln.pump()
	return ln, nil
}

// Addr returns the bound address (useful with port 0).
func (ln *Listener) Addr() string { return ln.conn.LocalAddr().String() }

func (ln *Listener) pump() {
	buf := make([]byte, 64<<10)
	for {
		n, raddr, err := ln.conn.ReadFromUDP(buf)
		if err != nil {
			return
		}
		key := raddr.String()
		ln.mu.Lock()
		l, ok := ln.links[key]
		if !ok && !ln.closed {
			peer := *raddr
			fault := ln.fault
			// Decorrelate each link's fault stream; a shared stream
			// would make one link's traffic perturb another's losses.
			fault.Seed = ln.fault.Seed ^ (0x9e3779b97f4a7c15 * (ln.nlinks + 1))
			ln.nlinks++
			l = newUDPLink(
				func(b []byte) error { _, err := ln.conn.WriteToUDP(b, &peer); return err },
				fault,
				nil,
			)
			ln.links[key] = l
			select {
			case ln.accept <- l:
			default:
				// Accept backlog full: refuse the link rather than block
				// the pump.
				delete(ln.links, key)
				l.Close()
				l = nil
			}
		}
		ln.mu.Unlock()
		if l != nil {
			l.handle(buf[:n])
		}
	}
}

// Accept returns the next station link (created on its first datagram
// — in practice the Hello retransmitted until acked).
func (ln *Listener) Accept(timeout time.Duration) (Transport, error) {
	var timer <-chan time.Time
	if timeout > 0 {
		t := time.NewTimer(timeout)
		defer t.Stop()
		timer = t.C
	}
	select {
	case l := <-ln.accept:
		return l, nil
	case <-timer:
		return nil, ErrTimeout
	case <-ln.closeCh:
		return nil, ErrClosed
	}
}

// Close tears down the socket and every link.
func (ln *Listener) Close() error {
	ln.mu.Lock()
	if ln.closed {
		ln.mu.Unlock()
		return nil
	}
	ln.closed = true
	links := make([]*udpLink, 0, len(ln.links))
	for _, l := range ln.links {
		links = append(links, l)
	}
	ln.mu.Unlock()
	close(ln.closeCh)
	for _, l := range links {
		l.Close()
	}
	return ln.conn.Close()
}
