package experiments

import (
	"fmt"
	"math"
	"strconv"

	"repro/internal/arrival"
	"repro/internal/asciiplot"
	"repro/internal/core"
	"repro/internal/medium"
	"repro/internal/nocd"
	"repro/internal/protocol"
	"repro/internal/report"
	"repro/internal/rng"
	"repro/internal/sim"
)

// E16Regimes compares batch completion time across three channel/
// protocol regimes at one matched decoding threshold κ: the paper's
// coded channel under Decodable Backoff, the high-SNR capture channel
// (κ-ary additive decoding, no cross-slot windows) under the unknown-n
// no-CD scheme, and the bare no-collision-detection classical channel
// under both no-CD schemes.  The expected qualitative ordering is
//
//	coded ≤ capture ≤ no-CD   (completion slots, same κ, same batch)
//
// — the feedback-rich coded channel lets dba pack slots toward
// throughput 1; capture lends the blind schedule κ-ary decoding but no
// feedback to aim it, so the schedule's overhead constant dominates;
// and without any decoding gain the same schedule pays the full
// classical contention price.  The per-n rows also show completion/n
// scaling staying flat per regime (each is Θ(n) with its own constant).
func E16Regimes(scale Scale, seed uint64) *Output {
	out := &Output{
		ID:    "E16",
		Title: "channel regimes: coded vs capture vs no-CD completion",
		Claim: "related-work regimes ordered by feedback/decoding power: coded ≤ capture ≤ no-CD batch completion at matching κ and arrival rate",
	}
	const kappa = 8 // matched threshold for the coded and capture regimes
	ns := []int{500, 1000, 2000}
	if scale == Full {
		ns = []int{2000, 8000, 20000}
	}
	trials := scale.pick(3, 5)

	regimes := []struct {
		key   string
		model string
		build func(s uint64) protocol.Protocol
	}{
		{"coded/dba", "coded", func(s uint64) protocol.Protocol {
			return core.New(kappa, rng.New(s^0xE16))
		}},
		{"capture/unbounded", "capture", func(s uint64) protocol.Protocol {
			return nocd.NewUnbounded(rng.New(s ^ 0xE16))
		}},
		{"no-CD/unbounded", "classical:none", func(s uint64) protocol.Protocol {
			return nocd.NewUnbounded(rng.New(s ^ 0xE16))
		}},
		{"no-CD/robust", "classical:none", func(s uint64) protocol.Protocol {
			return nocd.NewRobust(rng.New(s ^ 0xE16))
		}},
	}

	tbl := report.NewTable("Batch completion by channel regime (mean over trials, κ=8 where the model has one)",
		"n", "regime", "completion", "completion/n", "throughput")
	series := make(map[string]*asciiplot.Series, len(regimes))
	for _, reg := range regimes {
		series[reg.key] = &asciiplot.Series{Name: reg.key}
	}
	means := make(map[string]float64)
	ordered := true
	for _, n := range ns {
		for _, reg := range regimes {
			results := sim.RunTrials(trials, seed+uint64(n)*131, 0,
				func(trial int, s uint64) *sim.Result {
					var med medium.Medium
					if reg.model != "coded" {
						var err error
						med, err = medium.New(reg.model, kappa, 0)
						if err != nil {
							panic(err)
						}
					}
					return sim.Run(sim.Config{Kappa: kappa, Horizon: 1, Drain: true,
						DrainLimit: 64*int64(n) + 1<<20, Seed: s, Medium: med},
						reg.build(s), &arrival.Batch{At: 0, N: n})
				})
			completion := sim.Aggregate(results, func(r *sim.Result) float64 {
				return float64(r.LastDelivery + 1)
			})
			thpt := sim.Aggregate(results, func(r *sim.Result) float64 {
				return r.CompletionThroughput()
			})
			mean := completion.Mean()
			means[reg.key] = mean
			tbl.AddRow(n, reg.key, mean, mean/float64(n), thpt.Mean())
			s := series[reg.key]
			s.X = append(s.X, math.Log10(float64(n)))
			s.Y = append(s.Y, mean/float64(n))
		}
		nOrdered := means["coded/dba"] <= means["capture/unbounded"] &&
			means["capture/unbounded"] <= means["no-CD/unbounded"]
		ordered = ordered && nOrdered
		out.Notes = append(out.Notes, fmt.Sprintf(
			"n=%d ordering coded ≤ capture ≤ no-CD: %s (%.0f ≤ %.0f ≤ %.0f slots)",
			n, boolMark(nOrdered), means["coded/dba"], means["capture/unbounded"], means["no-CD/unbounded"]))
	}
	out.Tables = append(out.Tables, tbl)

	plot := asciiplot.Plot{
		Title:  "Normalized completion vs log10(n) by channel regime (κ=8)",
		XLabel: "log10(n)", YLabel: "completion/n",
		Width: 60, Height: 14,
	}
	for _, reg := range regimes {
		plot.Add(*series[reg.key])
	}
	out.Plots = append(out.Plots, plot.Render())
	out.Notes = append(out.Notes,
		"overall ordering coded ≤ capture ≤ no-CD at matching κ and batch: "+boolMark(ordered),
		"capture grants the blind no-CD schedule κ-ary decoding (same protocol, ~"+strconv.Itoa(kappa)+"× the classical delivery rate at its productive density) but no feedback to aim it, so dba's feedback-driven packing still wins",
		"no-CD/robust pays a constant factor over no-CD/unbounded for revisiting every density each phase — the price of jamming robustness when nothing is jammed")
	return out
}
