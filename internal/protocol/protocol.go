// Package protocol defines the agent-side interface of the Coded Radio
// Network Model: what a contention-resolution protocol may observe and
// do.  Per the model, devices hear exactly two signals — silent slots and
// decoding events — and decide each slot whether their packet broadcasts.
package protocol

import "repro/internal/channel"

// Protocol is a contention-resolution protocol driving the packets
// currently in the system.  The simulation engine calls, per slot:
//
//  1. Inject for any newly arrived packets,
//  2. Transmitters to collect this slot's broadcasts,
//  3. Observe with the slot's feedback (silence / decoding event).
//
// Implementations own all per-packet state.  Packets delivered by a
// decoding event must leave the system (stop transmitting, not be
// counted by Pending).
type Protocol interface {
	// Name identifies the protocol in reports.
	Name() string

	// Inject adds newly arrived packets.  Arrivals at slot `now` hear
	// slot now's feedback but must not transmit before slot now+1.
	Inject(now int64, ids []channel.PacketID)

	// Transmitters appends the IDs broadcasting in slot `now` to buf and
	// returns it.  The engine passes buf with length 0 and reuses it
	// across slots; implementations must not retain it.
	Transmitters(now int64, buf []channel.PacketID) []channel.PacketID

	// Observe delivers the end-of-slot feedback: whether the slot was
	// silent and any decoding event.  Delivered packets leave the system.
	Observe(fb channel.Feedback)

	// Pending returns the number of packets still in the system.
	Pending() int
}

// Waker is an optional interface a protocol can implement to let the
// engine skip slots: NextWake returns the next slot at or after `now` at
// which the protocol may transmit or its state may change.  The engine
// only skips slots when the channel is guaranteed silent in between
// (no packets pending), so most protocols need not implement it.
type Waker interface {
	NextWake(now int64) int64
}

// EpochKind classifies Decodable Backoff epochs; exported here so the
// measurement harness can consume epoch statistics without importing the
// core package's internals.
type EpochKind uint8

const (
	// EpochSilent ends after one silent slot: no packet joined.
	EpochSilent EpochKind = iota
	// EpochSuccessful ends with a decoding event delivering the joiners.
	EpochSuccessful
	// EpochOverfull ends after kappa slots without a decoding event.
	EpochOverfull
)

// String returns the kind name.
func (k EpochKind) String() string {
	switch k {
	case EpochSilent:
		return "silent"
	case EpochSuccessful:
		return "successful"
	case EpochOverfull:
		return "overfull"
	}
	return "unknown"
}

// EpochInfo describes one completed epoch of an epoch-structured
// protocol, as reported to probes.
type EpochInfo struct {
	Kind    EpochKind
	Start   int64 // first slot of the epoch
	Length  int64 // number of slots
	Joiners int   // packets that joined the epoch
	// Contention is the sum of joining probabilities over active packets
	// at the start of the epoch.
	Contention float64
	// PMin is the minimum joining probability among active packets at
	// the start of the epoch (1 if none).
	PMin float64
	// Active and Inactive are the population counts at the start of the
	// epoch.
	Active, Inactive int
	// Error reports whether this was an error epoch in the paper's sense
	// (Definition 2): silent with contention >= kappa^(1/4), or overfull
	// with contention <= kappa^(3/4).
	Error bool
}

// EpochObserver receives a callback after every completed epoch.
// The Decodable Backoff implementation accepts one for instrumentation.
type EpochObserver interface {
	ObserveEpoch(info EpochInfo)
}

// EpochObserverFunc adapts a function to the EpochObserver interface.
type EpochObserverFunc func(info EpochInfo)

// ObserveEpoch calls f(info).
func (f EpochObserverFunc) ObserveEpoch(info EpochInfo) { f(info) }
