package medium

import (
	"testing"

	"repro/internal/channel"
)

func TestCaptureSemantics(t *testing.T) {
	m := NewCapture(3)
	if m.Kappa() != 3 || m.Name() != "capture" {
		t.Fatalf("identity wrong: κ=%d name=%q", m.Kappa(), m.Name())
	}
	var fb channel.Feedback
	// Silent slot.
	class, ev := m.Step(0, nil)
	m.Feedback(&fb)
	if class != channel.Silent || ev != nil || !fb.Silent || fb.Collision {
		t.Fatalf("empty slot: %v %v fb %+v", class, ev, fb)
	}
	// At or under the threshold: every packet delivers, sorted by ID.
	class, ev = m.Step(1, []channel.PacketID{9, 2, 5})
	m.Feedback(&fb)
	if class != channel.Good || ev == nil || ev.Slot != 1 || ev.WindowStart != 1 {
		t.Fatalf("threshold slot: %v %+v", class, ev)
	}
	if len(ev.Packets) != 3 || ev.Packets[0] != 2 || ev.Packets[1] != 5 || ev.Packets[2] != 9 {
		t.Fatalf("event packets not sorted: %v", ev.Packets)
	}
	if fb.Silent || fb.Collision || fb.Event != ev {
		t.Fatalf("good-slot feedback %+v", fb)
	}
	// One transmitter too many destroys the slot — no window banks it,
	// and the coded-style feedback carries no collision flag.
	class, ev = m.Step(2, []channel.PacketID{1, 2, 3, 4})
	m.Feedback(&fb)
	if class != channel.Bad || ev != nil || fb.Silent || fb.Collision || fb.Event != nil {
		t.Fatalf("destroyed slot: %v %v fb %+v", class, ev, fb)
	}
	// The colliders carry nothing over: a later quiet slot decodes fresh.
	class, ev = m.Step(3, []channel.PacketID{1, 2})
	if class != channel.Good || ev == nil || len(ev.Packets) != 2 {
		t.Fatalf("post-collision slot: %v %v", class, ev)
	}
	st := m.Stats()
	if st.SilentSlots != 1 || st.GoodSlots != 2 || st.BadSlots != 1 ||
		st.Events != 2 || st.Delivered != 5 || st.JammedSlots != 0 {
		t.Fatalf("stats: %+v", st)
	}
	m.AddSilent(4)
	if m.Stats().SilentSlots != 5 {
		t.Fatal("AddSilent not accounted")
	}
	m.Reset()
	if m.Stats() != (channel.Stats{}) {
		t.Fatal("Reset left counters")
	}
}

func TestCaptureKappaOneIsClassical(t *testing.T) {
	// κ=1 degenerates to the classical collision channel (modulo the
	// feedback alphabet): singletons deliver, anything more is lost.
	m := NewCapture(1)
	if class, _ := m.Step(0, []channel.PacketID{4}); class != channel.Good {
		t.Fatal("singleton not delivered at κ=1")
	}
	if class, _ := m.Step(1, []channel.PacketID{4, 5}); class != channel.Bad {
		t.Fatal("pair not destroyed at κ=1")
	}
}

func TestCaptureStepRepeat(t *testing.T) {
	m := NewCapture(2)
	m.Step(0, []channel.PacketID{1, 2, 3})
	if !m.StepRepeat(1) {
		t.Fatal("StepRepeat refused after a bad slot")
	}
	var fb channel.Feedback
	m.Feedback(&fb)
	if fb.Slot != 1 || fb.Silent || fb.Event != nil {
		t.Fatalf("repeated-slot feedback %+v", fb)
	}
	if st := m.Stats(); st.BadSlots != 2 {
		t.Fatalf("repeat not counted: %+v", st)
	}
	// A good slot disarms the repeater.
	m.Step(2, []channel.PacketID{1})
	defer func() {
		if recover() == nil {
			t.Fatal("StepRepeat after a good slot did not panic")
		}
	}()
	m.StepRepeat(3)
}

func TestCaptureDuplicatePanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: duplicate transmitters not rejected", name)
			}
		}()
		f()
	}
	mustPanic("decodable slot", func() {
		NewCapture(4).Step(0, []channel.PacketID{5, 5})
	})
	mustPanic("destroyed slot", func() {
		NewCapture(1).Step(0, []channel.PacketID{5, 6, 5})
	})
	mustPanic("sharded destroyed slot", func() {
		NewCapture(1).StepSharded(0, [][]channel.PacketID{{5, 6}, {5}}, nil)
	})
	mustPanic("zero kappa", func() { NewCapture(0) })
}

func TestCaptureEventReuseIsSafe(t *testing.T) {
	m := NewCapture(2)
	_, ev1 := m.Step(0, []channel.PacketID{1})
	if ev1.Packets[0] != 1 {
		t.Fatal("first event wrong")
	}
	_, ev2 := m.Step(1, []channel.PacketID{2})
	if ev2.Packets[0] != 2 || ev1 != ev2 {
		t.Fatal("event storage not reused")
	}
}
