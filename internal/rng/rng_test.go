package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("step %d: same seed diverged: %d != %d", i, av, bv)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d/100 identical outputs", same)
	}
}

func TestZeroSeedUsable(t *testing.T) {
	r := New(0)
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		t.Fatal("seed 0 left generator in forbidden all-zero state")
	}
	// Output should still look non-degenerate.
	var or uint64
	for i := 0; i < 16; i++ {
		or |= r.Uint64()
	}
	if or == 0 {
		t.Fatal("seed 0 produces all-zero output")
	}
}

func TestSplitDecorrelated(t *testing.T) {
	parent := New(7)
	child := parent.Split()
	same := 0
	for i := 0; i < 100; i++ {
		if parent.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("split stream tracks parent: %d/100 identical", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(11)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestIntnRange(t *testing.T) {
	r := New(5)
	counts := make([]int, 7)
	const n = 70000
	for i := 0; i < n; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) out of range: %d", v)
		}
		counts[v]++
	}
	for v, c := range counts {
		if c < n/7-800 || c > n/7+800 {
			t.Fatalf("Intn(7) value %d count %d far from uniform %d", v, c, n/7)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestUint64nOne(t *testing.T) {
	r := New(9)
	for i := 0; i < 100; i++ {
		if v := r.Uint64n(1); v != 0 {
			t.Fatalf("Uint64n(1) = %d, want 0", v)
		}
	}
}

func TestBernoulliEdges(t *testing.T) {
	r := New(1)
	for i := 0; i < 100; i++ {
		if r.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !r.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
		if r.Bernoulli(-0.5) {
			t.Fatal("Bernoulli(-0.5) returned true")
		}
		if !r.Bernoulli(1.5) {
			t.Fatal("Bernoulli(1.5) returned false")
		}
	}
}

func TestBernoulliMean(t *testing.T) {
	r := New(2)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if r.Bernoulli(0.3) {
			hits++
		}
	}
	got := float64(hits) / n
	if math.Abs(got-0.3) > 0.01 {
		t.Fatalf("Bernoulli(0.3) frequency = %v", got)
	}
}

func TestGeometricMean(t *testing.T) {
	// E[Geometric(p)] = (1-p)/p.
	for _, p := range []float64{0.1, 0.5, 0.9} {
		r := New(uint64(p * 1000))
		const n = 100000
		var sum float64
		for i := 0; i < n; i++ {
			sum += float64(r.Geometric(p))
		}
		want := (1 - p) / p
		got := sum / n
		if math.Abs(got-want) > 0.05*math.Max(want, 0.2) {
			t.Fatalf("Geometric(%v) mean = %v, want %v", p, got, want)
		}
	}
}

func TestGeometricOne(t *testing.T) {
	r := New(1)
	for i := 0; i < 100; i++ {
		if g := r.Geometric(1); g != 0 {
			t.Fatalf("Geometric(1) = %d, want 0", g)
		}
	}
}

func TestGeometricPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Geometric(0) did not panic")
		}
	}()
	New(1).Geometric(0)
}

func TestBinomialMoments(t *testing.T) {
	cases := []struct {
		n int64
		p float64
	}{
		{10, 0.5}, {100, 0.1}, {100, 0.9}, {1000, 0.01}, {7, 0.3},
	}
	for _, c := range cases {
		r := New(uint64(c.n)*31 + uint64(c.p*97))
		const trials = 30000
		var sum, sumsq float64
		for i := 0; i < trials; i++ {
			v := float64(r.Binomial(c.n, c.p))
			if v < 0 || v > float64(c.n) {
				t.Fatalf("Binomial(%d,%v) out of range: %v", c.n, c.p, v)
			}
			sum += v
			sumsq += v * v
		}
		mean := sum / trials
		wantMean := float64(c.n) * c.p
		variance := sumsq/trials - mean*mean
		wantVar := float64(c.n) * c.p * (1 - c.p)
		if math.Abs(mean-wantMean) > 0.05*wantMean+0.1 {
			t.Errorf("Binomial(%d,%v) mean = %v, want %v", c.n, c.p, mean, wantMean)
		}
		if math.Abs(variance-wantVar) > 0.1*wantVar+0.2 {
			t.Errorf("Binomial(%d,%v) var = %v, want %v", c.n, c.p, variance, wantVar)
		}
	}
}

func TestBinomialEdges(t *testing.T) {
	r := New(4)
	if v := r.Binomial(0, 0.5); v != 0 {
		t.Fatalf("Binomial(0, .5) = %d", v)
	}
	if v := r.Binomial(10, 0); v != 0 {
		t.Fatalf("Binomial(10, 0) = %d", v)
	}
	if v := r.Binomial(10, 1); v != 10 {
		t.Fatalf("Binomial(10, 1) = %d", v)
	}
}

func TestPoissonMean(t *testing.T) {
	for _, lambda := range []float64{0.5, 5, 80} {
		r := New(uint64(lambda * 13))
		const n = 50000
		var sum float64
		for i := 0; i < n; i++ {
			sum += float64(r.Poisson(lambda))
		}
		got := sum / n
		if math.Abs(got-lambda) > 0.05*lambda+0.05 {
			t.Fatalf("Poisson(%v) mean = %v", lambda, got)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(6)
	for _, n := range []int{0, 1, 2, 10, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestSampleIndicesProperties(t *testing.T) {
	r := New(8)
	f := func(seed uint64, n16 uint16, pRaw uint16) bool {
		n := int(n16 % 500)
		p := float64(pRaw) / 65535
		rr := New(seed)
		got := rr.SampleIndices(nil, n, p)
		prev := -1
		for _, idx := range got {
			if idx <= prev || idx >= n {
				return false
			}
			prev = idx
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: nil}); err != nil {
		t.Fatal(err)
	}
	// Mean check.
	const n, p, trials = 1000, 0.05, 2000
	total := 0
	for i := 0; i < trials; i++ {
		total += len(r.SampleIndices(nil, n, p))
	}
	mean := float64(total) / trials
	if math.Abs(mean-n*p) > 3 {
		t.Fatalf("SampleIndices mean %v, want %v", mean, n*p)
	}
}

func TestSampleIndicesEdges(t *testing.T) {
	r := New(10)
	if got := r.SampleIndices(nil, 10, 0); len(got) != 0 {
		t.Fatalf("p=0 selected %v", got)
	}
	got := r.SampleIndices(nil, 5, 1)
	if len(got) != 5 {
		t.Fatalf("p=1 selected %v", got)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("p=1 selected %v", got)
		}
	}
}

func TestExpFloat64Mean(t *testing.T) {
	r := New(12)
	const n = 100000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.ExpFloat64()
	}
	if mean := sum / n; math.Abs(mean-1) > 0.02 {
		t.Fatalf("ExpFloat64 mean %v", mean)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(13)
	const n = 200000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("NormFloat64 mean %v", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("NormFloat64 variance %v", variance)
	}
}

func TestMul128(t *testing.T) {
	cases := []struct {
		a, b, hi, lo uint64
	}{
		{0, 0, 0, 0},
		{1, 1, 0, 1},
		{math.MaxUint64, 2, 1, math.MaxUint64 - 1},
		{1 << 32, 1 << 32, 1, 0},
		{math.MaxUint64, math.MaxUint64, math.MaxUint64 - 1, 1},
	}
	for _, c := range cases {
		hi, lo := mul128(c.a, c.b)
		if hi != c.hi || lo != c.lo {
			t.Fatalf("mul128(%d,%d) = (%d,%d), want (%d,%d)", c.a, c.b, hi, lo, c.hi, c.lo)
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkBinomialLargeN(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Binomial(1_000_000, 1e-4)
	}
}

func BenchmarkSampleIndices(b *testing.B) {
	r := New(1)
	buf := make([]int, 0, 128)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = r.SampleIndices(buf[:0], 100000, 1e-3)
	}
}
