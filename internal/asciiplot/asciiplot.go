// Package asciiplot renders line plots as text, so the benchmark harness
// can regenerate the paper's figures in a terminal: each figure is a
// titled grid with one or more series drawn as characters.
package asciiplot

import (
	"fmt"
	"math"
	"strings"
)

// Series is one named curve.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Plot is a renderable chart.  Configure the fields, add series, call
// Render.
type Plot struct {
	Title  string
	XLabel string
	YLabel string
	Width  int // plot-area columns (default 64)
	Height int // plot-area rows (default 16)
	LogY   bool

	series []Series
}

// markers cycles through the glyphs assigned to successive series.
var markers = []byte{'*', 'o', '+', 'x', '#', '@', '%', '~'}

// Add appends a series; X and Y must have equal nonzero length.
func (p *Plot) Add(s Series) {
	if len(s.X) != len(s.Y) {
		panic("asciiplot: series length mismatch")
	}
	if len(s.X) == 0 {
		panic("asciiplot: empty series")
	}
	p.series = append(p.series, s)
}

// Render draws the chart.
func (p *Plot) Render() string {
	width, height := p.Width, p.Height
	if width <= 0 {
		width = 64
	}
	if height <= 0 {
		height = 16
	}
	if len(p.series) == 0 {
		return p.Title + "\n(no data)\n"
	}

	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	for _, s := range p.series {
		for i := range s.X {
			x, y := s.X[i], s.Y[i]
			if p.LogY {
				if y <= 0 {
					continue
				}
				y = math.Log10(y)
			}
			xmin, xmax = math.Min(xmin, x), math.Max(xmax, x)
			ymin, ymax = math.Min(ymin, y), math.Max(ymax, y)
		}
	}
	if math.IsInf(xmin, 1) {
		return p.Title + "\n(no plottable data)\n"
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range p.series {
		marker := markers[si%len(markers)]
		for i := range s.X {
			y := s.Y[i]
			if p.LogY {
				if y <= 0 {
					continue
				}
				y = math.Log10(y)
			}
			col := int(float64(width-1) * (s.X[i] - xmin) / (xmax - xmin))
			row := height - 1 - int(float64(height-1)*(y-ymin)/(ymax-ymin))
			if col >= 0 && col < width && row >= 0 && row < height {
				grid[row][col] = marker
			}
		}
	}

	var b strings.Builder
	if p.Title != "" {
		fmt.Fprintf(&b, "%s\n", p.Title)
	}
	yLo, yHi := ymin, ymax
	if p.LogY {
		yLo, yHi = math.Pow(10, ymin), math.Pow(10, ymax)
	}
	labelHi := fmt.Sprintf("%.4g", yHi)
	labelLo := fmt.Sprintf("%.4g", yLo)
	pad := len(labelHi)
	if len(labelLo) > pad {
		pad = len(labelLo)
	}
	for r, row := range grid {
		label := strings.Repeat(" ", pad)
		switch r {
		case 0:
			label = fmt.Sprintf("%*s", pad, labelHi)
		case height - 1:
			label = fmt.Sprintf("%*s", pad, labelLo)
		}
		fmt.Fprintf(&b, "%s |%s\n", label, string(row))
	}
	fmt.Fprintf(&b, "%s +%s\n", strings.Repeat(" ", pad), strings.Repeat("-", width))
	fmt.Fprintf(&b, "%s  %-*s%s\n", strings.Repeat(" ", pad), width-len(fmt.Sprintf("%.4g", xmax)),
		fmt.Sprintf("%.4g", xmin), fmt.Sprintf("%.4g", xmax))
	if p.XLabel != "" || p.YLabel != "" {
		fmt.Fprintf(&b, "%s  x: %s", strings.Repeat(" ", pad), p.XLabel)
		if p.YLabel != "" {
			fmt.Fprintf(&b, "   y: %s", p.YLabel)
			if p.LogY {
				b.WriteString(" (log scale)")
			}
		}
		b.WriteByte('\n')
	}
	if len(p.series) > 1 || p.series[0].Name != "" {
		fmt.Fprintf(&b, "%s  legend:", strings.Repeat(" ", pad))
		for si, s := range p.series {
			fmt.Fprintf(&b, " %c=%s", markers[si%len(markers)], s.Name)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
