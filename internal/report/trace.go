package report

import (
	"fmt"
	"strings"
)

// SeriesCSV renders a time series as two-column CSV with the given
// header names.  The slices must have equal length.
func SeriesCSV(tName, vName string, t []int64, v []float64) string {
	if len(t) != len(v) {
		panic("report: series length mismatch")
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s,%s\n", tName, vName)
	for i := range t {
		fmt.Fprintf(&b, "%d,%g\n", t[i], v[i])
	}
	return b.String()
}

// SaveSeriesCSV writes a series to path atomically (see SaveFile),
// creating parent directories.
func SaveSeriesCSV(path, tName, vName string, t []int64, v []float64) error {
	return SaveFile(path, []byte(SeriesCSV(tName, vName, t, v)))
}
