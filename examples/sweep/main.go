// Example sweep maps Decodable Backoff on the coded channel against
// genie ALOHA on both the coded and the classical collision channel
// over a small κ × rate grid in parallel, then prints the per-cell
// aggregates and the JSON artifact the grid serializes to.  The same
// grid is reproducible byte-for-byte from the spec and seed alone —
// rerun it and diff.
//
// The models axis is the paper's headline claim made runnable: the
// coded channel's throughput approaches 1 with κ, while the classical
// collision channel caps genie ALOHA near 1/e at any load.
package main

import (
	"context"
	"fmt"
	"os"

	"repro/internal/report"
	"repro/internal/sweep"
)

func main() {
	spec := sweep.Spec{
		Name:      "dba-vs-genie",
		Models:    []string{"coded", "classical"},
		Protocols: []string{"dba", "genie"},
		Arrivals:  []string{"bernoulli", "burst"},
		Kappas:    []int{8, 64},
		Rates:     []float64{0.4, 0.8},
		Trials:    3,
		Horizon:   20000,
		Seed:      2022,
	}
	grid, err := sweep.Run(context.Background(), spec, sweep.Options{})
	if err != nil {
		fmt.Fprintf(os.Stderr, "sweep: %v\n", err)
		os.Exit(1)
	}
	fmt.Print(grid.Table().String())

	// Highlight the headline comparison: throughput at high load, coded
	// vs classical.
	fmt.Println("\nThroughput at rate 0.8 (mean over trials):")
	for _, c := range grid.Cells {
		if c.Rate == 0.8 {
			fmt.Printf("  %-52s %.3f\n", c.Key(), c.Throughput.Mean)
		}
	}

	if err := report.SaveJSON("sweep_example.json", grid); err != nil {
		fmt.Fprintf(os.Stderr, "sweep: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("\nwrote sweep_example.json (deterministic: rerun and diff)")
}
