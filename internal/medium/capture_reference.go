package medium

import (
	"fmt"
	"sort"

	"repro/internal/channel"
)

// CaptureReference is a deliberately naive capture channel, the oracle
// FuzzCaptureAgainstReference cross-checks Capture against.  It holds
// no reused storage and takes no shortcuts: every slot re-derives its
// verdict from first principles with fresh allocations (map-based
// duplicate detection, a freshly sorted event slice).  Keep it simple
// rather than fast — its only job is to be obviously correct.
type CaptureReference struct {
	kappa int
	stats channel.Stats
	last  channel.Feedback
}

var _ Medium = (*CaptureReference)(nil)

// NewCaptureReference returns the naive capture oracle.
func NewCaptureReference(kappa int) *CaptureReference {
	if kappa < 1 {
		panic("medium: capture kappa must be at least 1")
	}
	return &CaptureReference{kappa: kappa}
}

// Name implements Medium.
func (r *CaptureReference) Name() string { return "capture" }

// Kappa implements Medium.
func (r *CaptureReference) Kappa() int { return r.kappa }

// Step implements Medium.
func (r *CaptureReference) Step(now int64, txs []channel.PacketID) (channel.SlotClass, *channel.Event) {
	seen := make(map[channel.PacketID]bool, len(txs))
	for _, id := range txs {
		if seen[id] {
			panic(fmt.Sprintf("medium: packet %d transmitted twice in one slot", id))
		}
		seen[id] = true
	}
	switch {
	case len(txs) == 0:
		r.stats.SilentSlots++
		r.last = channel.Feedback{Slot: now, Silent: true}
		return channel.Silent, nil
	case len(txs) <= r.kappa:
		pkts := make([]channel.PacketID, len(txs))
		copy(pkts, txs)
		sort.Slice(pkts, func(i, j int) bool { return pkts[i] < pkts[j] })
		ev := &channel.Event{Slot: now, WindowStart: now, Packets: pkts}
		r.stats.GoodSlots++
		r.stats.Events++
		r.stats.Delivered += int64(len(pkts))
		r.last = channel.Feedback{Slot: now, Event: ev}
		return channel.Good, ev
	default:
		r.stats.BadSlots++
		r.last = channel.Feedback{Slot: now}
		return channel.Bad, nil
	}
}

// Feedback implements Medium.
func (r *CaptureReference) Feedback(fb *channel.Feedback) { *fb = r.last }

// AddSilent implements Medium.
func (r *CaptureReference) AddSilent(n int64) {
	if n < 0 {
		panic("medium: negative silent-slot count")
	}
	r.stats.SilentSlots += n
}

// Stats implements Medium.
func (r *CaptureReference) Stats() channel.Stats { return r.stats }

// Reset implements Medium.
func (r *CaptureReference) Reset() {
	r.stats = channel.Stats{}
	r.last = channel.Feedback{}
}
