// Package perf is the engine-performance harness behind cmd/crnbench:
// it times the simulation engine itself — slots per second, heap
// allocations per slot, bytes allocated per trial — across a
// deterministic protocol × medium × adversary × workload × n grid, and
// reduces the measurements to the diffable BENCH_engine.json artifact
// that tracks the engine's performance trajectory across commits.
//
// The grid and the simulation outcomes inside each cell (slots,
// arrivals, deliveries, peak bookkeeping) are deterministic; the timing
// numbers are host-dependent and recorded for trajectory, not for
// byte-stability.  Check validates an artifact structurally — every
// expected cell present, counters sane — and gates on the steady-state
// classical cell's allocations per slot, the property
// BenchmarkClassicalPerSlot pins at 0 allocs/op.
package perf

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"time"

	"repro/internal/adversary"
	"repro/internal/arrival"
	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/medium"
	"repro/internal/protocol"
	"repro/internal/rng"
	"repro/internal/sim"
)

// Scale selects grid sizing: quick is CI-sized (seconds), full reaches
// the n=10^6 large-batch regime (minutes).
type Scale string

const (
	// Quick is the CI-sized grid.
	Quick Scale = "quick"
	// Full reaches n = 10^6 batches.
	Full Scale = "full"
)

// Case is one cell of the engine-benchmark grid.
type Case struct {
	Protocol  string  `json:"protocol"`  // dba, genie, beb
	Model     string  `json:"model"`     // coded, classical:ternary
	Adversary string  `json:"adversary"` // none or an adversary descriptor
	Workload  string  `json:"workload"`  // "batch" or "steady:RATE"
	Kappa     int     `json:"kappa"`
	N         int     `json:"n"`    // batch size, or horizon for steady workloads
	Rate      float64 `json:"rate"` // steady arrival rate (0 for batch)
	// Workers selects the staged intra-trial engine (sim.Config.Workers);
	// 0 times the serial reference.  Simulation outcomes are identical,
	// only timing differs — the axis exists to record the staged engine's
	// scaling trajectory.
	Workers int `json:"workers,omitempty"`
}

// Key renders the cell coordinates; it is the artifact's join key.
func (c Case) Key() string {
	key := fmt.Sprintf("%s/%s/adv=%s/%s/k=%d/n=%d",
		c.Protocol, c.Model, c.Adversary, c.Workload, c.Kappa, c.N)
	if c.Workers > 0 {
		key += fmt.Sprintf("/w=%d", c.Workers)
	}
	return key
}

// combo is a protocol/model pairing with its per-protocol sizing: the
// steady-state arrival rate it is stable under, and the largest batch a
// full-scale run asks of it (baselines complete batches far slower than
// dba, whose O(joiners)-per-slot epochs absorb 10^6 packets).
type combo struct {
	protocol, model string
	kappa           int
	steadyRate      float64
	batchCap        int
}

func combos() []combo {
	return []combo{
		{"dba", "coded", 64, 0.8, 1 << 30},
		{"genie", "coded", 64, 0.25, 200_000},
		{"genie", "classical:ternary", 1, 0.25, 200_000},
		{"beb", "classical:ternary", 1, 0.15, 20_000},
	}
}

// Cases returns the deterministic grid for a scale: every
// protocol×model combo crossed with the adversary axis over the batch
// sizes it can complete, plus one steady-state (even-paced) cell per
// combo that measures the pure per-slot path.
func Cases(scale Scale) []Case {
	batchNs := []int{2_000, 10_000}
	steadyN := 50_000
	if scale == Full {
		batchNs = []int{10_000, 100_000, 1_000_000}
		steadyN = 1_000_000
	}
	advs := []string{"none", "random:0.05"}
	var cases []Case
	for _, cb := range combos() {
		for _, adv := range advs {
			for _, n := range batchNs {
				if n > cb.batchCap {
					continue
				}
				cases = append(cases, Case{Protocol: cb.protocol, Model: cb.model,
					Adversary: adv, Workload: "batch", Kappa: cb.kappa, N: n})
			}
		}
	}
	for _, cb := range combos() {
		cases = append(cases, Case{Protocol: cb.protocol, Model: cb.model,
			Adversary: "none", Workload: fmt.Sprintf("steady:%.2f", cb.steadyRate),
			Kappa: cb.kappa, N: steadyN, Rate: cb.steadyRate})
	}
	// Workers axis: the staged engine on the largest dba/coded batch the
	// scale runs — the Theorem 16 cell intra-trial parallelism exists
	// for.  The serial (workers-unset) twin is already in the batch grid
	// above, so these cells record the staged engine's scaling
	// trajectory next to it.
	workersN := batchNs[len(batchNs)-1]
	for _, w := range []int{1, 4} {
		cases = append(cases, Case{Protocol: "dba", Model: "coded", Adversary: "none",
			Workload: "batch", Kappa: 64, N: workersN, Workers: w})
	}
	return cases
}

// GateKey returns the key of the allocation-gate cell: the steady-state
// classical genie cell, the same configuration BenchmarkClassicalPerSlot
// holds at 0 allocs/op.
func GateKey(scale Scale) string {
	for _, c := range Cases(scale) {
		if c.Protocol == "genie" && c.Model == "classical:ternary" && c.Rate != 0 {
			return c.Key()
		}
	}
	panic("perf: grid lost its gate cell")
}

// Measurement is one cell's result: deterministic simulation outcomes
// plus host-dependent timing.
type Measurement struct {
	Key           string  `json:"key"`
	Slots         int64   `json:"slots"`
	Arrivals      int64   `json:"arrivals"`
	Delivered     int64   `json:"delivered"`
	PeakInFlight  int     `json:"peak_in_flight"`
	SlotsPerSec   float64 `json:"slots_per_sec"`
	AllocsPerSlot float64 `json:"allocs_per_slot"`
	BytesPerTrial float64 `json:"bytes_per_trial"`
}

// Artifact is the BENCH_engine.json payload.
type Artifact struct {
	Name   string        `json:"name"`
	Scale  string        `json:"scale"`
	Seed   uint64        `json:"seed"`
	Trials int           `json:"trials"`
	Cells  []Measurement `json:"cells"`
}

// Options tunes a harness run.
type Options struct {
	// Scale selects the grid ("" = Quick).
	Scale Scale
	// Trials per cell (0 = 3); timing aggregates over all of them.
	Trials int
	// Seed derives every trial's seed (0 = 1).
	Seed uint64
	// OnCell, if set, is called after each cell completes.
	OnCell func(done, total int, m *Measurement)
}

// protoSeedSalt decorrelates the protocol rng from the trial seed the
// engine consumes for arrivals (mirrors the sweep executor's salt).
const protoSeedSalt = 0x70657266 // "perf"

// Run executes the grid serially (timing needs an otherwise-idle
// process) and returns the artifact.
func Run(opts Options) *Artifact {
	scale := opts.Scale
	if scale == "" {
		scale = Quick
	}
	trials := opts.Trials
	if trials == 0 {
		trials = 3
	}
	seed := opts.Seed
	if seed == 0 {
		seed = 1
	}
	cases := Cases(scale)
	art := &Artifact{Name: "engine", Scale: string(scale), Seed: seed, Trials: trials,
		Cells: make([]Measurement, 0, len(cases))}
	for i, c := range cases {
		m := measure(c, seed, trials)
		art.Cells = append(art.Cells, m)
		if opts.OnCell != nil {
			opts.OnCell(i+1, len(cases), &art.Cells[len(art.Cells)-1])
		}
	}
	return art
}

// measure runs one cell's trials back to back, timing wall clock and
// heap traffic around each run.
func measure(c Case, seed uint64, trials int) Measurement {
	m := Measurement{Key: c.Key()}
	// Settle the heap so one cell's garbage is not charged to the next
	// cell's wall clock.  (Mallocs/TotalAlloc are monotonic counters,
	// so the allocation numbers are GC-independent either way.)
	runtime.GC()
	var ms runtime.MemStats
	var elapsed time.Duration
	var mallocs, bytes uint64
	seedGen := rng.New(seed ^ hashKey(c.Key()))
	for t := 0; t < trials; t++ {
		trialSeed := seedGen.Uint64()
		cfg, proto, arr := build(c, trialSeed)
		runtime.ReadMemStats(&ms)
		m0, b0 := ms.Mallocs, ms.TotalAlloc
		start := time.Now()
		res := sim.Run(cfg, proto, arr)
		elapsed += time.Since(start)
		runtime.ReadMemStats(&ms)
		mallocs += ms.Mallocs - m0
		bytes += ms.TotalAlloc - b0
		m.Slots += res.Elapsed
		m.Arrivals += res.Arrivals
		m.Delivered += res.Delivered
		if res.PeakInFlight > m.PeakInFlight {
			m.PeakInFlight = res.PeakInFlight
		}
	}
	if m.Slots > 0 {
		m.SlotsPerSec = round(float64(m.Slots)/elapsed.Seconds(), 0)
		m.AllocsPerSlot = round(float64(mallocs)/float64(m.Slots), 4)
	}
	m.BytesPerTrial = round(float64(bytes)/float64(trials), 0)
	return m
}

// build constructs one trial's engine inputs.  Components are stateful:
// every trial gets fresh instances.
func build(c Case, seed uint64) (sim.Config, protocol.Protocol, arrival.Process) {
	cfg := sim.Config{Kappa: c.Kappa, Seed: seed, Workers: c.Workers}
	if c.Model != "coded" {
		med, err := medium.New(c.Model, c.Kappa, 0)
		if err != nil {
			panic(err)
		}
		cfg.Medium = med
	}
	adv, err := adversary.Parse(c.Adversary)
	if err != nil {
		panic(err)
	}
	cfg.Adversary = adv
	var proto protocol.Protocol
	switch c.Protocol {
	case "dba":
		proto = core.New(c.Kappa, rng.New(seed^protoSeedSalt))
	case "genie":
		proto = baseline.NewGenieAloha(rng.New(seed^protoSeedSalt), 1)
	case "beb":
		proto = baseline.NewExponentialBackoff(rng.New(seed ^ protoSeedSalt))
	default:
		panic(fmt.Sprintf("perf: unknown protocol %q", c.Protocol))
	}
	var arr arrival.Process
	if c.Rate > 0 {
		cfg.Horizon = int64(c.N)
		cfg.Drain = true
		arr = arrival.NewEvenPaced(c.Rate)
	} else {
		cfg.Horizon = 1
		cfg.Drain = true
		cfg.DrainLimit = 64*int64(c.N) + 1<<21
		arr = &arrival.Batch{At: 0, N: c.N}
	}
	return cfg, proto, arr
}

// hashKey folds a cell key into a seed perturbation (FNV-1a), so every
// cell draws decorrelated trial seeds from the artifact seed.
func hashKey(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

func round(x float64, decimals int) float64 {
	p := 1.0
	for i := 0; i < decimals; i++ {
		p *= 10
	}
	return float64(int64(x*p+0.5)) / p
}

// GateAllocsPerSlot is the regression threshold Check applies to the
// gate cell: the steady-state classical per-slot path allocates only
// setup (a few hundred allocations amortized over ≥50k slots), so
// anything near one allocation per slot is a regression.
const GateAllocsPerSlot = 0.02

// Check validates an artifact against the grid it claims to cover:
// every expected cell present exactly once with sane counters, and the
// allocation gate below threshold.  It returns the first problem found.
func Check(a *Artifact, scale Scale) error {
	if a == nil {
		return fmt.Errorf("perf: nil artifact")
	}
	byKey := make(map[string]*Measurement, len(a.Cells))
	for i := range a.Cells {
		m := &a.Cells[i]
		if byKey[m.Key] != nil {
			return fmt.Errorf("perf: duplicate cell %q", m.Key)
		}
		byKey[m.Key] = m
	}
	cases := Cases(scale)
	if len(a.Cells) != len(cases) {
		return fmt.Errorf("perf: artifact has %d cells, grid has %d", len(a.Cells), len(cases))
	}
	for _, c := range cases {
		m := byKey[c.Key()]
		if m == nil {
			return fmt.Errorf("perf: grid cell %q missing from artifact", c.Key())
		}
		if m.Slots <= 0 || m.Arrivals <= 0 || m.Delivered <= 0 {
			return fmt.Errorf("perf: cell %q has empty counters: %+v", c.Key(), m)
		}
		if m.SlotsPerSec <= 0 {
			return fmt.Errorf("perf: cell %q has no throughput measurement", c.Key())
		}
		if m.PeakInFlight <= 0 {
			return fmt.Errorf("perf: cell %q recorded no in-flight bookkeeping", c.Key())
		}
	}
	gate := byKey[GateKey(scale)]
	if gate.AllocsPerSlot > GateAllocsPerSlot {
		return fmt.Errorf("perf: allocation gate failed: %q at %.4f allocs/slot (max %.4f) — the steady-state per-slot path regressed",
			gate.Key, gate.AllocsPerSlot, GateAllocsPerSlot)
	}
	return nil
}

// FloorHeadroom is the slack CheckFloors grants below a committed
// cell's host-normalized slots/sec: a measurement may run half as fast
// as the ratcheted baseline before it counts as a regression.  The
// slack is deliberately wide — quick-scale cells finish in
// milliseconds, and single cells swing ±30% run to run from scheduling
// and GC timing alone (host speed differences are removed separately;
// see CheckFloors).  The ratchet exists to catch engine collapses — an
// accidentally quadratic path, a lost fast path — not few-percent
// drift, which the committed artifact's diff history tracks instead.
const FloorHeadroom = 0.5

// TightFloorHeadroom is the narrower slack applied to the cells the
// engine's hot path was explicitly optimized for (see tightFloorCell):
// those cells are the performance contract of the arena/kernel/coast
// work, so they are held closer to the committed baseline than the
// grid at large.
const TightFloorHeadroom = 0.6

// tightFloorCell reports whether a cell key belongs to the tightened
// ratchet: the dba/coded cells (the paper's protocol on the paper's
// channel) are the tentpole hot path, gated at TightFloorHeadroom and
// never exempted by FloorMinSeconds.
func tightFloorCell(key string) bool {
	return strings.HasPrefix(key, "dba/coded/")
}

// FloorMinSeconds exempts tiny cells from the ratchet: a committed
// cell's implied wall clock (Slots / SlotsPerSec) must be at least
// this long before its throughput is floor-gated.  Below it a whole
// cell finishes in milliseconds, where one scheduler preemption or GC
// pause halves the measured slots/sec — such cells are still recorded
// (and structurally checked) for trajectory, but wall-clock floors on
// them would only gate noise.  Simulated-slot count is deliberately
// not the criterion: a 150k-slot steady cell on the allocation-free
// classical path still finishes in ~8 ms.  At full scale every cell
// clears the threshold.
const FloorMinSeconds = 0.05

// CheckFloors gates a fresh artifact against a committed one: every
// cell present in both must reach FloorHeadroom × the committed
// slots/sec after host-speed normalization.  Normalization divides all
// floors by the median of the per-cell measured/committed throughput
// ratios — a slower (or faster) machine shifts every cell's ratio
// together, so the median tracks host speed while a genuine regression
// moves its cells against the median and still trips the gate.  Cells
// only one artifact has (a grid that grew or shrank across commits) and
// cells under FloorMinSeconds in the committed artifact are skipped: the
// structural match is Check's job, not the ratchet's.
func CheckFloors(measured, committed *Artifact) error {
	if measured == nil || committed == nil {
		return fmt.Errorf("perf: nil artifact")
	}
	base := make(map[string]*Measurement, len(committed.Cells))
	for i := range committed.Cells {
		base[committed.Cells[i].Key] = &committed.Cells[i]
	}
	type pair struct {
		m, b  *Measurement
		ratio float64
	}
	var shared []pair
	for i := range measured.Cells {
		m := &measured.Cells[i]
		b := base[m.Key]
		if b == nil || b.SlotsPerSec <= 0 || m.SlotsPerSec <= 0 {
			continue
		}
		if !tightFloorCell(m.Key) && float64(b.Slots)/b.SlotsPerSec < FloorMinSeconds {
			continue
		}
		shared = append(shared, pair{m: m, b: b, ratio: m.SlotsPerSec / b.SlotsPerSec})
	}
	if len(shared) == 0 {
		return fmt.Errorf("perf: no cells shared with the committed baseline — wrong scale or stale artifact?")
	}
	ratios := make([]float64, len(shared))
	for i, p := range shared {
		ratios[i] = p.ratio
	}
	sort.Float64s(ratios)
	hostSpeed := ratios[len(ratios)/2]
	for _, p := range shared {
		headroom := FloorHeadroom
		if tightFloorCell(p.m.Key) {
			headroom = TightFloorHeadroom
		}
		floor := p.b.SlotsPerSec * hostSpeed * headroom
		if p.m.SlotsPerSec < floor {
			return fmt.Errorf("perf: slots/sec floor failed: %q at %.0f, floor %.0f — measured/floor = %.2f (committed %.0f × host speed %.2f × headroom %.2f) — this cell regressed against the rest of the grid",
				p.m.Key, p.m.SlotsPerSec, floor, p.m.SlotsPerSec/floor, p.b.SlotsPerSec, hostSpeed, headroom)
		}
	}
	return nil
}

// Compare renders a markdown table of per-cell deltas between two
// artifacts (typically the committed BENCH_engine.json and a fresh
// run): slots/sec with the percentage change, and allocs/slot side by
// side.  Cells present in only one artifact render with a dash.  The
// numbers are host-dependent — the table is a review aid, not a gate.
func Compare(old, new *Artifact) string {
	keys := make([]string, 0, len(old.Cells)+len(new.Cells))
	oldBy := make(map[string]*Measurement, len(old.Cells))
	newBy := make(map[string]*Measurement, len(new.Cells))
	for i := range old.Cells {
		m := &old.Cells[i]
		oldBy[m.Key] = m
		keys = append(keys, m.Key)
	}
	for i := range new.Cells {
		m := &new.Cells[i]
		newBy[m.Key] = m
		if oldBy[m.Key] == nil {
			keys = append(keys, m.Key)
		}
	}
	var b strings.Builder
	b.WriteString("| cell | old slots/sec | new slots/sec | Δ | old allocs/slot | new allocs/slot |\n")
	b.WriteString("|---|---:|---:|---:|---:|---:|\n")
	for _, k := range keys {
		o, n := oldBy[k], newBy[k]
		fmt.Fprintf(&b, "| %s |", k)
		switch {
		case o == nil:
			fmt.Fprintf(&b, " — | %.0f | new | — | %.4f |\n", n.SlotsPerSec, n.AllocsPerSlot)
		case n == nil:
			fmt.Fprintf(&b, " %.0f | — | removed | %.4f | — |\n", o.SlotsPerSec, o.AllocsPerSlot)
		default:
			delta := "—"
			if o.SlotsPerSec > 0 {
				delta = fmt.Sprintf("%+.1f%%", 100*(n.SlotsPerSec/o.SlotsPerSec-1))
			}
			fmt.Fprintf(&b, " %.0f | %.0f | %s | %.4f | %.4f |\n",
				o.SlotsPerSec, n.SlotsPerSec, delta, o.AllocsPerSlot, n.AllocsPerSlot)
		}
	}
	return b.String()
}
