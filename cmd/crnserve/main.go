// Command crnserve exposes a sweep cell cache directory over HTTP, so
// crnsweep workers on several machines share one record namespace and
// one lease table (DESIGN.md §6.3).  The on-disk format is exactly the
// local cache's: a directory of content-addressed JSON records, so a
// served cache can also be read (or seeded) directly by -cache-dir
// runs and by crnquery.
//
// Usage:
//
//	crnserve -dir .sweep-cache [-addr 127.0.0.1:8771]
//
// Example (one coordinator machine, three workers):
//
//	crnserve -dir /srv/sweep-cells -addr 0.0.0.0:8771 &
//	crnsweep -spec sweep.json -worker -backend http://coordinator:8771  # on each worker
//	crnsweep -spec sweep.json -assemble -backend http://coordinator:8771 -json grid.json
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"

	"repro/internal/cache"
	"repro/internal/cache/httpstore"
)

var errFlagParse = errors.New("flag parse error")

func main() {
	if err := run(os.Args[1:], os.Stderr); err != nil {
		if !errors.Is(err, errFlagParse) {
			fmt.Fprintf(os.Stderr, "crnserve: %v\n", err)
		}
		os.Exit(1)
	}
}

// run is main minus the process boundary; it returns only on error or
// listener shutdown, announcing the bound address on stderr first so
// scripts can start it with -addr :0 and scrape the port.
func run(argv []string, stderr io.Writer) error {
	fs := flag.NewFlagSet("crnserve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	dir := fs.String("dir", "", "cache directory to serve (required; created if missing)")
	addr := fs.String("addr", "127.0.0.1:8771", "listen address (host:port; port 0 picks a free port)")
	if err := fs.Parse(argv); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return errFlagParse
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments %v", fs.Args())
	}
	if *dir == "" {
		return fmt.Errorf("-dir is required (the cache directory to serve)")
	}
	store, err := cache.Open(*dir)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(stderr, "crnserve: serving %s on http://%s\n", store.Dir(), ln.Addr())
	return http.Serve(ln, httpstore.NewServer(store))
}
