package sweep

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"
)

func smallSpec() Spec {
	return Spec{
		Name:      "test",
		Protocols: []string{"dba", "genie"},
		Arrivals:  []string{"batch", "bernoulli"},
		Kappas:    []int{8, 16},
		Rates:     []float64{0.3, 0.6},
		Trials:    2,
		Horizon:   500,
		Seed:      42,
	}
}

func TestExpandOrderAndCount(t *testing.T) {
	s := smallSpec()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	cells := s.Expand()
	if len(cells) != s.Cells() || len(cells) != 16 {
		t.Fatalf("expanded %d cells, Cells()=%d, want 16", len(cells), s.Cells())
	}
	// Canonical nesting: model outermost, adversary innermost.
	if cells[0].Key() != "coded/dba/batch/k=8/rate=0.3/jam=none/adv=none" {
		t.Fatalf("first cell %q", cells[0].Key())
	}
	if cells[1].Rate != 0.6 || cells[2].Kappa != 16 {
		t.Fatalf("nesting order wrong: %v %v", cells[1], cells[2])
	}
	if cells[15].Key() != "coded/genie/bernoulli/k=16/rate=0.6/jam=none/adv=none" {
		t.Fatalf("last cell %q", cells[15].Key())
	}
}

func TestExpandMixedModels(t *testing.T) {
	// dba pairs only with coded, and classical models collapse κ to 1.
	s := smallSpec()
	s.Models = []string{"coded", "classical:none"}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	cells := s.Expand()
	// coded: 2 protocols × 2 arrivals × 2 κ × 2 rates = 16;
	// classical: genie only × 2 arrivals × 1 κ × 2 rates = 4.
	if len(cells) != 20 {
		t.Fatalf("expanded %d cells, want 20", len(cells))
	}
	for _, c := range cells {
		if c.Model == "classical:none" {
			if c.Protocol == "dba" {
				t.Fatalf("dba expanded on classical: %s", c.Key())
			}
			if c.Kappa != 1 {
				t.Fatalf("classical cell with κ=%d: %s", c.Kappa, c.Key())
			}
		}
	}
	if cells[16].Key() != "classical:none/genie/batch/k=1/rate=0.3/jam=none/adv=none" {
		t.Fatalf("first classical cell %q", cells[16].Key())
	}
}

func TestValidateNormalizesModels(t *testing.T) {
	s := smallSpec()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(s.Models) != 1 || s.Models[0] != "coded" {
		t.Fatalf("models not normalized: %v", s.Models)
	}
}

func TestValidateRejects(t *testing.T) {
	cases := map[string]func(*Spec){
		"bad model": func(s *Spec) { s.Models = []string{"quantum"} },
		"dba classical only": func(s *Spec) {
			s.Protocols = []string{"dba"}
			s.Models = []string{"classical"}
		},
		"no protocols":    func(s *Spec) { s.Protocols = nil },
		"bad protocol":    func(s *Spec) { s.Protocols = []string{"tdma"} },
		"no arrivals":     func(s *Spec) { s.Arrivals = nil },
		"bad arrival":     func(s *Spec) { s.Arrivals = []string{"fractal"} },
		"no kappas":       func(s *Spec) { s.Kappas = nil },
		"kappa zero":      func(s *Spec) { s.Kappas = []int{0} },
		"dba small kappa": func(s *Spec) { s.Kappas = []int{4} },
		"no rates":        func(s *Spec) { s.Rates = nil },
		"rate zero":       func(s *Spec) { s.Rates = []float64{0} },
		"bad jammer":      func(s *Spec) { s.Jammers = []string{"emp"} },
		"bad random":      func(s *Spec) { s.Jammers = []string{"random:2"} },
		"bad periodic":    func(s *Spec) { s.Jammers = []string{"periodic:10"} },
		"no trials":       func(s *Spec) { s.Trials = 0 },
		"no horizon":      func(s *Spec) { s.Horizon = 0 },
		"neg drain limit": func(s *Spec) { s.DrainLimit = -1 },
		"neg max window":  func(s *Spec) { s.MaxWindow = -1 },
		"neg batch n":     func(s *Spec) { s.BatchN = -1 },
		"neg burst win":   func(s *Spec) { s.BurstWindow = -1 },
		"aloha p > 1":     func(s *Spec) { s.AlohaP = 1.5 },
		"aloha p < 0":     func(s *Spec) { s.AlohaP = -0.1 },
	}
	for name, mutate := range cases {
		s := smallSpec()
		mutate(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("%s: Validate accepted %+v", name, s)
		}
	}
}

func TestValidateNormalizesJammers(t *testing.T) {
	s := smallSpec()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(s.Jammers) != 1 || s.Jammers[0] != "none" {
		t.Fatalf("jammers not normalized: %v", s.Jammers)
	}
}

func TestRunSmallGrid(t *testing.T) {
	grid, err := Run(context.Background(), smallSpec(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(grid.Cells) != 16 {
		t.Fatalf("%d cells", len(grid.Cells))
	}
	var progressed int
	for _, c := range grid.Cells {
		if c.Trials != 2 {
			t.Fatalf("%s: %d trials", c.Key(), c.Trials)
		}
		if c.Arrivals == 0 {
			t.Fatalf("%s: no arrivals", c.Key())
		}
		if c.Arrivals != c.Delivered+c.Pending {
			t.Fatalf("%s: conservation violated: %d != %d + %d",
				c.Key(), c.Arrivals, c.Delivered, c.Pending)
		}
		if c.Delivered > 0 {
			progressed++
			if c.Throughput.Mean <= 0 || c.LatencyP50.Mean < 1 {
				t.Fatalf("%s: degenerate metrics: %+v", c.Key(), c)
			}
		}
		if c.Slots.Silent+c.Slots.Good+c.Slots.Bad == 0 {
			t.Fatalf("%s: empty slot mix", c.Key())
		}
	}
	if progressed == 0 {
		t.Fatal("no cell delivered anything")
	}
}

func TestRunDeterministicAcrossParallelism(t *testing.T) {
	// Same spec + seed must produce byte-identical JSON, at any
	// parallelism — the artifact-diffability contract.
	render := func(par int) []byte {
		grid, err := Run(context.Background(), smallSpec(), Options{Parallelism: par})
		if err != nil {
			t.Fatal(err)
		}
		data, err := grid.JSON()
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	serial := render(1)
	for _, par := range []int{2, 8} {
		if !bytes.Equal(serial, render(par)) {
			t.Fatalf("parallelism %d changed the artifact", par)
		}
	}
	if !bytes.Equal(serial, render(1)) {
		t.Fatal("rerun with the same seed diverged")
	}
}

func TestRunMixedModelGrid(t *testing.T) {
	// One spec mixing coded and classical cells — the cross-model
	// comparison the medium layer exists for — must run every cell and
	// stay byte-stable across parallelism.
	s := Spec{
		Name:      "mixed",
		Models:    []string{"coded", "classical:ternary", "classical:none"},
		Protocols: []string{"dba", "beb", "genie"},
		Arrivals:  []string{"bernoulli"},
		Kappas:    []int{8},
		Rates:     []float64{0.3},
		Trials:    2,
		Horizon:   800,
		Seed:      11,
	}
	grid, err := Run(context.Background(), s, Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	// coded: 3 protocols; each classical model: beb+genie.
	if len(grid.Cells) != 7 {
		t.Fatalf("%d cells, want 7", len(grid.Cells))
	}
	for _, c := range grid.Cells {
		if c.Arrivals == 0 || c.Delivered == 0 {
			t.Fatalf("%s: nothing happened (arrivals=%d delivered=%d)",
				c.Key(), c.Arrivals, c.Delivered)
		}
		if c.Arrivals != c.Delivered+c.Pending {
			t.Fatalf("%s: conservation violated", c.Key())
		}
	}
	a, _ := grid.JSON()
	par, err := Run(context.Background(), s, Options{Parallelism: 8})
	if err != nil {
		t.Fatal(err)
	}
	b, _ := par.JSON()
	if !bytes.Equal(a, b) {
		t.Fatal("mixed-model artifact not byte-stable across parallelism")
	}
	// The classical collision channel is capped well below the coded
	// channel's throughput at the same offered load; genie ALOHA caps
	// near 1/e there, so its coded-channel (κ=8) run must beat its
	// classical run on delivered slots per packet... assert the weaker,
	// robust property: both variants delivered, and the artifact keys
	// distinguish them.
	keys := make(map[string]bool)
	for _, c := range grid.Cells {
		keys[c.Key()] = true
	}
	if !keys["coded/genie/bernoulli/k=8/rate=0.3/jam=none/adv=none"] ||
		!keys["classical:ternary/genie/bernoulli/k=1/rate=0.3/jam=none/adv=none"] {
		t.Fatalf("expected cross-model keys missing: %v", keys)
	}
}

func TestRunSeedMatters(t *testing.T) {
	a, err := Run(context.Background(), smallSpec(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := smallSpec()
	s.Seed = 43
	b, err := Run(context.Background(), s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	aj, _ := a.JSON()
	bj, _ := b.JSON()
	if bytes.Equal(aj, bj) {
		t.Fatal("different seeds produced identical artifacts")
	}
}

func TestRunJammedCell(t *testing.T) {
	s := Spec{
		Protocols: []string{"genie"},
		Arrivals:  []string{"bernoulli"},
		Kappas:    []int{4},
		Rates:     []float64{0.2},
		Jammers:   []string{"none", "random:0.3", "periodic:100/10"},
		Trials:    2,
		Horizon:   2000,
		Seed:      7,
	}
	grid, err := Run(context.Background(), s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if grid.Cells[0].Slots.Jammed != 0 {
		t.Fatal("unjammed cell recorded jammed slots")
	}
	for _, i := range []int{1, 2} {
		if grid.Cells[i].Slots.Jammed == 0 {
			t.Fatalf("cell %s never jammed", grid.Cells[i].Key())
		}
	}
}

func TestErrorEpochsCounted(t *testing.T) {
	// Overloading dba at twice its stable rate forces some error epochs;
	// non-epoch protocols must report zero.
	s := Spec{
		Protocols: []string{"dba", "beb"},
		Arrivals:  []string{"bernoulli"},
		Kappas:    []int{8},
		Rates:     []float64{0.9},
		Trials:    2,
		Horizon:   5000,
		NoDrain:   true,
		Seed:      9,
	}
	grid, err := Run(context.Background(), s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if grid.Cells[0].Protocol != "dba" || grid.Cells[0].ErrorEpochs == 0 {
		t.Fatalf("dba overload shows no error epochs: %+v", grid.Cells[0])
	}
	if grid.Cells[1].ErrorEpochs != 0 {
		t.Fatalf("beb reported error epochs: %+v", grid.Cells[1])
	}
}

func TestOnCellProgress(t *testing.T) {
	var calls []int
	_, err := Run(context.Background(), Spec{
		Protocols: []string{"genie"}, Arrivals: []string{"batch"},
		Kappas: []int{2, 4}, Rates: []float64{0.5},
		Trials: 1, Horizon: 100, Seed: 1,
	}, Options{OnCell: func(done, total int, cell *CellSummary, cached bool) {
		if cached {
			t.Fatal("no cache configured, but a cell reported cached")
		}
		if total != 2 || cell == nil {
			t.Fatalf("bad progress call: %d/%d %v", done, total, cell)
		}
		calls = append(calls, done)
	}})
	if err != nil {
		t.Fatal(err)
	}
	if len(calls) != 2 || calls[0] != 1 || calls[1] != 2 {
		t.Fatalf("progress calls %v", calls)
	}
}

func TestSpecJSONRoundTrip(t *testing.T) {
	s := smallSpec()
	s.Jammers = []string{"random:0.1"}
	s.MaxWindow = 32
	data, err := json.Marshal(&s)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseSpec(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != s.Name || back.MaxWindow != 32 || back.Jammers[0] != "random:0.1" {
		t.Fatalf("round trip lost fields: %+v", back)
	}
}

func TestParseSpecRejectsUnknownFields(t *testing.T) {
	_, err := ParseSpec([]byte(`{"protocols":["dba"],"arrivalz":["batch"]}`))
	if err == nil || !strings.Contains(err.Error(), "arrivalz") {
		t.Fatalf("typo not rejected: %v", err)
	}
}

func TestGridTableAndCSV(t *testing.T) {
	grid, err := Run(context.Background(), Spec{
		Protocols: []string{"genie"}, Arrivals: []string{"batch"},
		Kappas: []int{4}, Rates: []float64{0.5},
		Trials: 1, Horizon: 100, Seed: 1,
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	tab := grid.Table().String()
	if !strings.Contains(tab, "genie") || !strings.Contains(tab, "throughput") {
		t.Fatalf("table missing content:\n%s", tab)
	}
	csv := grid.CSV()
	if lines := strings.Count(csv, "\n"); lines != 2 { // header + 1 cell
		t.Fatalf("CSV has %d lines:\n%s", lines, csv)
	}
}

func TestExpandAdversaryAxisAndSkipRules(t *testing.T) {
	s := Spec{
		Models:      []string{"coded", "classical:none"},
		Protocols:   []string{"genie"},
		Arrivals:    []string{"bernoulli"},
		Kappas:      []int{8},
		Rates:       []float64{0.3},
		Jammers:     []string{"none", "random:0.1"},
		Adversaries: []string{"none", "reactive:4/32", "sigmarho:100/0.05"},
		Trials:      1,
		Horizon:     100,
		Seed:        1,
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	cells := s.Expand()
	// coded: jammer none × {none, reactive, sigmarho} + jammer random ×
	// {none, sigmarho} (reactive is a jamming adversary: skipped under a
	// non-none jammer) = 5; classical:none additionally skips reactive
	// (no silence feedback) = 4.
	if len(cells) != 9 {
		for _, c := range cells {
			t.Log(c.Key())
		}
		t.Fatalf("expanded %d cells, want 9", len(cells))
	}
	for _, c := range cells {
		if c.Adversary == "reactive:4/32" && c.Jammer != "none" {
			t.Fatalf("jamming adversary expanded under jammer %q: %s", c.Jammer, c.Key())
		}
		if c.Adversary == "reactive:4/32" && c.Model == "classical:none" {
			t.Fatalf("adaptive adversary expanded under classical:none: %s", c.Key())
		}
	}
	// The injector composes with any jammer and any model.
	want := "coded/genie/bernoulli/k=8/rate=0.3/jam=random:0.1/adv=sigmarho:100/0.05"
	var found bool
	for _, c := range cells {
		found = found || c.Key() == want
	}
	if !found {
		t.Fatalf("expected cell %q in expansion", want)
	}
}

func TestValidateRejectsBadAdversaries(t *testing.T) {
	for _, bad := range []string{"emp", "reactive:0/5", "sigmarho:0/0", "random:7"} {
		s := smallSpec()
		s.Adversaries = []string{bad}
		if err := s.Validate(); err == nil {
			t.Errorf("adversary %q accepted", bad)
		}
	}
	s := smallSpec()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(s.Adversaries) != 1 || s.Adversaries[0] != "none" {
		t.Fatalf("adversaries not normalized: %v", s.Adversaries)
	}
}

func adversarialSpec() Spec {
	return Spec{
		Name:        "adversarial",
		Protocols:   []string{"dba", "genie"},
		Arrivals:    []string{"bernoulli"},
		Kappas:      []int{8},
		Rates:       []float64{0.5},
		Adversaries: []string{"none", "reactive:4/32", "burst:50/450", "sigmarho:50/0.1"},
		Trials:      2,
		Horizon:     2000,
		Seed:        17,
	}
}

func TestAdversaryGridDeterministicAcrossParallelism(t *testing.T) {
	// The acceptance bar for the adversary layer: sweep artifacts whose
	// cells contain adaptive jammers must stay byte-identical between
	// serial and parallel execution (adaptive state is per-trial, jam
	// randomness slot-keyed, cell seeds order-derived).
	render := func(par int) []byte {
		grid, err := Run(context.Background(), adversarialSpec(), Options{Parallelism: par})
		if err != nil {
			t.Fatal(err)
		}
		data, err := grid.JSON()
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	serial := render(1)
	for _, par := range []int{2, 8} {
		if !bytes.Equal(serial, render(par)) {
			t.Fatalf("parallelism %d changed an adversarial artifact", par)
		}
	}
	if !bytes.Equal(serial, render(1)) {
		t.Fatal("rerun with the same seed diverged")
	}
}

func TestAdversaryCellsBehave(t *testing.T) {
	grid, err := Run(context.Background(), adversarialSpec(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[string]*CellSummary{}
	for i := range grid.Cells {
		byKey[grid.Cells[i].Key()] = &grid.Cells[i]
	}
	clean := byKey["coded/dba/bernoulli/k=8/rate=0.5/jam=none/adv=none"]
	reactive := byKey["coded/dba/bernoulli/k=8/rate=0.5/jam=none/adv=reactive:4/32"]
	burst := byKey["coded/dba/bernoulli/k=8/rate=0.5/jam=none/adv=burst:50/450"]
	sigmarho := byKey["coded/dba/bernoulli/k=8/rate=0.5/jam=none/adv=sigmarho:50/0.1"]
	if clean == nil || reactive == nil || burst == nil || sigmarho == nil {
		t.Fatalf("expected cells missing; have %d cells", len(grid.Cells))
	}
	if clean.Slots.Jammed != 0 {
		t.Fatal("clean cell recorded jammed slots")
	}
	for name, c := range map[string]*CellSummary{"reactive": reactive, "burst": burst} {
		if c.Slots.Jammed == 0 {
			t.Fatalf("%s adversary never jammed", name)
		}
		if c.Arrivals != c.Delivered+c.Pending {
			t.Fatalf("%s: conservation violated", name)
		}
	}
	// The injector adds its (σ,ρ) load on top of the bernoulli stream.
	if sigmarho.Arrivals <= clean.Arrivals {
		t.Fatalf("sigmarho cell arrivals %d not above clean %d",
			sigmarho.Arrivals, clean.Arrivals)
	}
}

func TestLatencySamplesValidation(t *testing.T) {
	s := smallSpec()
	s.LatencySamples = -2
	if err := s.Validate(); err == nil {
		t.Fatal("latency samples -2 accepted")
	}
	for _, ok := range []int{-1, 0, 64} {
		s := smallSpec()
		s.LatencySamples = ok
		if err := s.Validate(); err != nil {
			t.Fatalf("latency samples %d rejected: %v", ok, err)
		}
	}
}

func TestLatencySamplesOffDisablesQuantiles(t *testing.T) {
	s := smallSpec()
	s.LatencySamples = -1
	grid, err := Run(context.Background(), s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range grid.Cells {
		if c.LatencyP50.Mean != 0 || c.LatencyP99.Mean != 0 {
			t.Fatalf("%s: quantile columns filled with retention off: %+v", c.Key(), c)
		}
	}
}

func TestReservoirQuantilesDeterministicAcrossParallelism(t *testing.T) {
	// A capacity far below per-cell deliveries forces true reservoir
	// subsampling; the sampled quantile columns must still be
	// byte-identical at any parallelism (the reservoir stream is seeded
	// per trial, not per worker).
	spec := smallSpec()
	spec.Horizon = 2000
	spec.LatencySamples = 16
	render := func(par int) []byte {
		grid, err := Run(context.Background(), spec, Options{Parallelism: par})
		if err != nil {
			t.Fatal(err)
		}
		for _, c := range grid.Cells {
			if c.Delivered > 16*int64(c.Trials) && c.LatencyP50.Mean == 0 {
				t.Fatalf("%s: subsampled quantiles missing", c.Key())
			}
		}
		data, err := grid.JSON()
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	serial := render(1)
	for _, par := range []int{2, 8} {
		if !bytes.Equal(serial, render(par)) {
			t.Fatalf("parallelism %d changed reservoir-sampled quantiles", par)
		}
	}
}

func TestParseJammerRejectsNaN(t *testing.T) {
	s := smallSpec()
	s.Jammers = []string{"random:NaN"}
	if err := s.Validate(); err == nil {
		t.Fatal("NaN jammer rate accepted")
	}
}
