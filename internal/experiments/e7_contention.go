package experiments

import (
	"fmt"
	"math"

	"repro/internal/arrival"
	"repro/internal/asciiplot"
	"repro/internal/core"
	"repro/internal/protocol"
	"repro/internal/report"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/stats"
)

// E7Contention reproduces the Section 3 contention-control claim: the
// backon/backoff mechanism drives the contention (sum of joining
// probabilities) into the good window [κ^(1/4), κ^(3/4)] around the
// target c* = √κ.
//
// The claim is about the loaded regime: with fewer than √κ active
// packets, contention necessarily sits below the target (every
// probability caps at 1), and that is not a control failure — those
// epochs drain the system a packet or two at a time.  The table
// therefore reports occupancy both over all epochs and conditioned on
// load (active ≥ √κ), and a burst workload exercises the regime where
// the mechanism actually steers.
func E7Contention(scale Scale, seed uint64) *Output {
	out := &Output{
		ID:    "E7",
		Title: "contention trajectory around the target c* = √κ",
		Claim: "Section 3: under load, contention stays in [κ^(1/4), κ^(3/4)] (\"good\"); target c* = √κ",
	}
	kappas := []int{16, 64, 256}
	horizon := int64(scale.pick(60_000, 250_000))

	tbl := report.NewTable("Per-epoch contention occupancy (bursts 3/4·w per w=2048 window)",
		"kappa", "epochs", "loaded epochs", "good|loaded", "good|all", "mean c|loaded", "c*=√κ", "κ^(1/4)", "κ^(3/4)")
	var tracePlot string
	for _, kappa := range kappas {
		lo := math.Pow(float64(kappa), 0.25)
		hi := math.Pow(float64(kappa), 0.75)
		loadFloor := math.Sqrt(float64(kappa))
		var goodAll, total, loaded, goodLoaded int64
		var meanLoaded stats.Summary
		trace := stats.NewSeries(1024)
		obs := protocol.EpochObserverFunc(func(info protocol.EpochInfo) {
			if info.Active == 0 {
				return // empty system: nothing to control
			}
			total++
			inWindow := info.Contention >= lo && info.Contention <= hi
			if inWindow {
				goodAll++
			}
			if float64(info.Active) >= loadFloor {
				loaded++
				meanLoaded.Add(info.Contention)
				trace.Add(info.Start, info.Contention)
				if inWindow {
					goodLoaded++
				}
			}
		})
		d := core.New(kappa, rng.New(seed^uint64(kappa)), core.WithEpochObserver(obs))
		const w = 2048
		sim.Run(sim.Config{Kappa: kappa, Horizon: horizon, Seed: seed + uint64(kappa)},
			d, &arrival.WindowBurst{Window: w, PerWindow: 3 * w / 4})
		if total == 0 {
			continue
		}
		gl := 0.0
		if loaded > 0 {
			gl = float64(goodLoaded) / float64(loaded)
		}
		tbl.AddRow(kappa, total, loaded, gl,
			float64(goodAll)/float64(total), meanLoaded.Mean(),
			math.Sqrt(float64(kappa)), lo, hi)
		if kappa == 64 && trace.Len() > 1 {
			xs := make([]float64, trace.Len())
			target := make([]float64, trace.Len())
			for i := range xs {
				xs[i] = float64(trace.T[i])
				target[i] = math.Sqrt(float64(kappa))
			}
			p := asciiplot.Plot{
				Title:  fmt.Sprintf("Contention per loaded epoch (κ=%d), target √κ = %.0f", kappa, math.Sqrt(float64(kappa))),
				XLabel: "slot", YLabel: "contention", Width: 64, Height: 12,
			}
			p.Add(asciiplot.Series{Name: "contention", X: xs, Y: trace.V})
			p.Add(asciiplot.Series{Name: "target", X: xs, Y: target})
			tracePlot = p.Render()
		}
	}
	out.Tables = append(out.Tables, tbl)
	if tracePlot != "" {
		out.Plots = append(out.Plots, tracePlot)
	}
	out.Notes = append(out.Notes,
		"\"loaded\" = epochs with at least √κ active packets, the regime where the good window is reachable",
		"below √κ active packets, every probability caps at 1 and contention = #active < c*: the system is simply draining, not miscontrolled",
		"the out-of-window remainder is the recovery transient after each burst (activation spikes contention above κ^(3/4); a few ÷κ^(1/4) steps re-center it) — the \"moving closer to a good group structure\" phase of the potential argument")
	return out
}
