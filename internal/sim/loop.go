package sim

import (
	"repro/internal/adversary"
	"repro/internal/arrival"
	"repro/internal/channel"
	"repro/internal/medium"
	"repro/internal/rng"
	"repro/internal/stats"
)

// Loop is the per-slot adjudication core of the engine, extracted so
// Run and the network emulator (internal/emu) share one implementation
// of everything that is not protocol execution: medium composition
// (jam wrappers, adversaries, adaptive-adversary validation), arrival
// injection and packet-ID issue, feedback fan-out to arrival observers,
// delivery/latency accounting, backlog series, the fast-forward
// advance, and Result assembly.
//
// The caller owns protocol execution and drives the Loop through one
// slot at a time:
//
//	l := sim.NewLoop(cfg, proto.Name(), arr)
//	for l.Running(pending) {
//	    ids := l.InjectNow()          // feed to the protocol
//	    // collect transmitters, step l.Medium()
//	    fb := l.Observe(ev)           // broadcast fb to the protocol
//	    l.Record(backlog)
//	    if !l.Advance(backlog, wake) { break }
//	}
//	res := l.Finish(pending)
//
// Because the Loop owns every source of randomness and accounting that
// Run uses, a caller that makes the same protocol decisions in the same
// slots produces a byte-identical Result — the emulator's lossless
// correctness gate.
type Loop struct {
	cfg        Config
	m          medium.Medium
	arr        arrival.Process
	observer   arrival.Observer
	r          *rng.Rand
	res        *Result
	fl         *inflight
	latSample  *stats.Reservoir
	nextID     channel.PacketID
	idBuf      []channel.PacketID
	fb         medium.Feedback
	drainLimit int64
	end        int64
	now        int64
}

// NewLoop validates cfg and assembles the adjudication state.  The
// medium is composed exactly as Run composes it (jam wrapper, adversary
// jam wrapper, adversary arrival merge); protoName labels the Result.
// It panics on the same invalid configurations Run always has.
func NewLoop(cfg Config, protoName string, arr arrival.Process) *Loop {
	if cfg.Medium == nil && cfg.Kappa < 1 {
		panic("sim: Kappa must be at least 1")
	}
	if cfg.Horizon < 0 {
		panic("sim: negative horizon")
	}
	m := cfg.Medium
	if m == nil {
		m = medium.NewCoded(cfg.Kappa, cfg.maxWindow())
	}
	m = medium.Jam(m, cfg.Jammer, cfg.Seed^jamSeedSalt)
	if cfg.Adversary != nil {
		if _, adaptive := cfg.Adversary.(adversary.Adaptive); adaptive && medium.MasksSilence(m) {
			// An adaptive adversary's gap-equals-silence rule needs the
			// medium below it to report idle slots truthfully.  The
			// composed m is checked, so this catches classical:none, a
			// legacy Config.Jammer (just composed above), and media the
			// caller pre-wrapped with a jammer: in each case idle slots
			// a fast-forwarded run skips as silent would, densely
			// stepped, be observed as busy, and the adaptive state would
			// depend on the stepping.
			panic("sim: an adaptive Adversary needs a medium whose feedback exposes idle slots truthfully (classical:none masks silence; jam wrappers spoil idle slots) — the gap-equals-silence contract cannot hold")
		}
		// One adversary may disrupt on both channels: jam composition
		// wraps the medium, arrival composition merges injections.
		aj, jams := cfg.Adversary.(adversary.Jammer)
		if jams {
			m = medium.JamAdversary(m, aj, cfg.Seed^advSeedSalt)
		}
		if inj, ok := cfg.Adversary.(adversary.Injector); ok {
			advArr := adversary.Arrivals(inj)
			if jams {
				// The jam wrapper already delivers each stepped slot's
				// feedback to Observe; forwarding it through the arrival
				// path too would observe every slot twice.
				advArr = adversary.MutedArrivals(inj)
			}
			arr = &arrival.Merge{A: arr, B: advArr}
		}
	}
	seriesCap := cfg.SeriesCap
	if seriesCap == 0 {
		seriesCap = 2048
	}
	var latSample *stats.Reservoir
	if cfg.LatencySamples >= 0 {
		latCap := cfg.LatencySamples
		if latCap == 0 {
			latCap = DefaultLatencySamples
		}
		latSample = stats.NewReservoir(latCap, cfg.Seed^latSeedSalt)
	}
	drainLimit := cfg.DrainLimit
	if drainLimit == 0 {
		drainLimit = 16 * cfg.Horizon
		if drainLimit < 1<<20 {
			drainLimit = 1 << 20
		}
	} else if drainLimit < 0 {
		// A negative limit always meant "no drain budget" (the phase ended
		// at the horizon); normalize so the fast-forward clamp below can
		// never pin `next` at or before `now`.
		drainLimit = 0
	}
	observer, _ := arr.(arrival.Observer)
	return &Loop{
		cfg:      cfg,
		m:        m,
		arr:      arr,
		observer: observer,
		r:        rng.New(cfg.Seed),
		res: &Result{
			Protocol:      protoName,
			Arrival:       arr.Name(),
			Medium:        m.Name(),
			Kappa:         m.Kappa(),
			Horizon:       cfg.Horizon,
			FirstArrival:  -1,
			LastDelivery:  -1,
			BacklogSeries: stats.NewSeries(seriesCap),
			LatencySample: latSample,
		},
		fl:         newInflight(),
		idBuf:      make([]channel.PacketID, 0, 64),
		latSample:  latSample,
		drainLimit: drainLimit,
		end:        cfg.Horizon,
	}
}

// Now is the slot the loop is currently adjudicating.
func (l *Loop) Now() int64 { return l.now }

// Medium is the fully composed medium (jam and adversary wrappers
// included) the caller must Step each slot.
func (l *Loop) Medium() medium.Medium { return l.m }

// Running reports whether another slot should run, given the
// protocol's current backlog.  When it returns false the run is over
// (horizon reached and not draining, drained empty, or drain budget
// exhausted) and Elapsed is final.
func (l *Loop) Running(pending int) bool {
	if l.now >= l.end {
		if !l.cfg.Drain || pending == 0 || l.now >= l.cfg.Horizon+l.drainLimit {
			l.res.Elapsed = l.now
			return false
		}
	}
	return true
}

// InjectNow draws this slot's arrivals, issues their packet IDs, and
// accounts them.  The returned slice (valid until the next call) must
// be fed to the protocol's Inject; it is nil when nothing arrives.
// Packet IDs are sequential from 0, so (first ID, count) fully
// describes the batch — the emulator's injection broadcast relies on
// this.
func (l *Loop) InjectNow() []channel.PacketID {
	if l.now >= l.cfg.Horizon {
		return nil
	}
	n := l.arr.Injections(l.now, l.r)
	if n <= 0 {
		return nil
	}
	l.idBuf = l.idBuf[:0]
	for i := 0; i < n; i++ {
		l.idBuf = append(l.idBuf, l.nextID)
		l.fl.add(l.nextID, l.now)
		l.nextID++
	}
	l.res.Arrivals += int64(n)
	if l.res.FirstArrival < 0 {
		l.res.FirstArrival = l.now
	}
	return l.idBuf
}

// Observe collects the stepped slot's feedback, forwards it to the
// arrival process's observer (adaptive arrivals), and accounts the
// slot's deliveries (ev from the medium's Step; nil if none).  The
// returned Feedback is what every device hears; the caller broadcasts
// it to the protocol.
func (l *Loop) Observe(ev *channel.Event) medium.Feedback {
	l.m.Feedback(&l.fb)
	if l.observer != nil {
		l.observer.ObserveSlot(l.fb)
	}
	if ev != nil {
		l.res.Delivered += int64(len(ev.Packets))
		l.res.LastDelivery = l.now
		for _, id := range ev.Packets {
			lat := float64(l.now - l.fl.take(id) + 1)
			l.res.Latency.Add(lat)
			if l.latSample != nil {
				l.latSample.Add(lat)
			}
		}
	}
	return l.fb
}

// Record accounts the post-slot backlog (max + time series).
func (l *Loop) Record(backlog int) {
	if backlog > l.res.MaxBacklog {
		l.res.MaxBacklog = backlog
	}
	l.res.BacklogSeries.Add(l.now, float64(backlog))
}

// Advance moves to the next slot, fast-forwarding through provably
// idle stretches: with an empty backlog it jumps to the next arrival,
// and with a non-nil wake callback (the protocol's next possible
// transmission slot, from protocol.Waker) it skips slots nobody will
// use.  Skipped slots are accounted silent on the medium.  It returns
// false when the run is over because nothing is pending and no arrival
// will ever come; Elapsed is then final.
func (l *Loop) Advance(backlog int, wake func(now int64) int64) bool {
	next := l.now + 1
	if backlog == 0 {
		na := int64(-1)
		if l.now+1 < l.cfg.Horizon {
			na = l.arr.NextAfter(l.now)
		}
		if na < 0 {
			// Nothing pending and no arrivals will ever come.
			l.res.Elapsed = l.now + 1
			return false
		}
		next = na
	} else if wake != nil {
		nw := wake(l.now)
		if nw > l.now+1 {
			next = nw
			if l.now+1 < l.cfg.Horizon {
				if na := l.arr.NextAfter(l.now); na >= 0 && na < next {
					next = na
				}
			}
		}
	}
	if l.now < l.end && next > l.end {
		next = l.end
	} else if l.cfg.Drain && next > l.end+l.drainLimit {
		// A Waker may declare a wake-up far past the drain budget; the
		// fast-forward target must still respect the documented
		// Horizon+DrainLimit bound on Elapsed and silent-slot counts.
		next = l.end + l.drainLimit
	}
	if skipped := next - (l.now + 1); skipped > 0 {
		l.m.AddSilent(skipped)
	}
	l.now = next
	return true
}

// Finish seals the Result with the protocol's final backlog and the
// medium's slot statistics.
func (l *Loop) Finish(pending int) *Result {
	l.res.Pending = pending
	l.res.PeakInFlight = l.fl.peak
	l.res.Channel = l.m.Stats()
	return l.res
}
