package arrival

import (
	"math"
	"testing"

	"repro/internal/channel"
	"repro/internal/rng"
)

func TestNone(t *testing.T) {
	var n None
	if n.Injections(0, nil) != 0 || n.NextAfter(0) != -1 {
		t.Fatal("None injects")
	}
}

func TestBatch(t *testing.T) {
	b := &Batch{At: 5, N: 10}
	r := rng.New(1)
	total := 0
	for now := int64(0); now < 20; now++ {
		total += b.Injections(now, r)
	}
	if total != 10 {
		t.Fatalf("batch total %d", total)
	}
	if b.NextAfter(0) != 5 {
		t.Fatalf("NextAfter(0) = %d", b.NextAfter(0))
	}
	if b.NextAfter(5) != -1 {
		t.Fatalf("NextAfter(5) = %d", b.NextAfter(5))
	}
}

func TestBernoulliRate(t *testing.T) {
	b := &Bernoulli{Rate: 0.3}
	r := rng.New(2)
	total := 0
	const slots = 100000
	for now := int64(0); now < slots; now++ {
		total += b.Injections(now, r)
	}
	got := float64(total) / slots
	if math.Abs(got-0.3) > 0.01 {
		t.Fatalf("bernoulli rate %v", got)
	}
	if b.NextAfter(7) != 8 {
		t.Fatal("NextAfter wrong")
	}
	if (&Bernoulli{Rate: 0}).NextAfter(7) != -1 {
		t.Fatal("zero-rate NextAfter wrong")
	}
}

func TestPoissonRate(t *testing.T) {
	p := &Poisson{Lambda: 0.7}
	r := rng.New(3)
	total := 0
	const slots = 100000
	for now := int64(0); now < slots; now++ {
		total += p.Injections(now, r)
	}
	got := float64(total) / slots
	if math.Abs(got-0.7) > 0.02 {
		t.Fatalf("poisson rate %v", got)
	}
}

func TestEvenPacedExactRate(t *testing.T) {
	e := NewEvenPaced(0.37)
	total := 0
	const slots = 10000
	for now := int64(0); now < slots; now++ {
		total += e.Injections(now, nil)
	}
	if want := int(0.37 * slots); total < want-1 || total > want+1 {
		t.Fatalf("even-paced total %d, want ~%d", total, want)
	}
}

func TestEvenPacedSkippedSlots(t *testing.T) {
	e := NewEvenPaced(0.5)
	// Slots 0..9 then jump to 99: the gap must be accounted.
	total := 0
	for now := int64(0); now < 10; now++ {
		total += e.Injections(now, nil)
	}
	total += e.Injections(99, nil)
	if want := 50; total != want {
		t.Fatalf("after skip total %d, want %d", total, want)
	}
}

func TestEvenPacedMonotonicPanics(t *testing.T) {
	e := NewEvenPaced(0.5)
	e.Injections(5, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("non-increasing slot did not panic")
		}
	}()
	e.Injections(5, nil)
}

func TestWindowBurst(t *testing.T) {
	w := &WindowBurst{Window: 10, PerWindow: 7}
	r := rng.New(4)
	total := 0
	for now := int64(0); now < 100; now++ {
		n := w.Injections(now, r)
		if n > 0 && now%10 != 0 {
			t.Fatalf("burst at non-boundary slot %d", now)
		}
		total += n
	}
	if total != 70 {
		t.Fatalf("burst total %d", total)
	}
	if w.NextAfter(0) != 10 || w.NextAfter(9) != 10 || w.NextAfter(10) != 20 {
		t.Fatal("NextAfter boundaries wrong")
	}
}

func TestWindowBurstLimit(t *testing.T) {
	w := &WindowBurst{Window: 10, PerWindow: 5, Limit: 25}
	r := rng.New(4)
	total := 0
	for now := int64(0); now < 100; now++ {
		total += w.Injections(now, r)
	}
	if total != 15 { // bursts at 0, 10, 20
		t.Fatalf("limited burst total %d, want 15", total)
	}
	if w.NextAfter(20) != -1 {
		t.Fatalf("NextAfter past limit = %d", w.NextAfter(20))
	}
}

func TestOnOff(t *testing.T) {
	o := &OnOff{OnSlots: 10, OffSlots: 90, OnRate: 1}
	r := rng.New(5)
	total := 0
	for now := int64(0); now < 1000; now++ {
		n := o.Injections(now, r)
		if n > 0 && now%100 >= 10 {
			t.Fatalf("arrival during off-phase at %d", now)
		}
		total += n
	}
	if total != 100 {
		t.Fatalf("on/off total %d, want 100", total)
	}
	if o.NextAfter(4) != 5 {
		t.Fatalf("NextAfter in on-phase = %d", o.NextAfter(4))
	}
	if o.NextAfter(9) != 100 {
		t.Fatalf("NextAfter into off-phase = %d", o.NextAfter(9))
	}
}

func TestTrace(t *testing.T) {
	tr := &Trace{Counts: []int{0, 3, 0, 0, 2}}
	r := rng.New(6)
	var got []int
	for now := int64(0); now < 7; now++ {
		got = append(got, tr.Injections(now, r))
	}
	want := []int{0, 3, 0, 0, 2, 0, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("trace replay %v, want %v", got, want)
		}
	}
	if tr.NextAfter(1) != 4 {
		t.Fatalf("NextAfter(1) = %d", tr.NextAfter(1))
	}
	if tr.NextAfter(4) != -1 {
		t.Fatalf("NextAfter(4) = %d", tr.NextAfter(4))
	}
}

func TestDisruptorFiresAfterSilence(t *testing.T) {
	d := &Disruptor{BurstSize: 4}
	r := rng.New(7)
	if d.Injections(0, r) != 0 {
		t.Fatal("disruptor fired unprompted")
	}
	d.ObserveSlot(channel.Feedback{Slot: 0, Silent: true})
	if d.Injections(1, r) != 4 {
		t.Fatal("disruptor did not fire after silence")
	}
	if d.Injections(2, r) != 0 {
		t.Fatal("disruptor fired twice per silence")
	}
	d.ObserveSlot(channel.Feedback{Slot: 3, Silent: false})
	if d.Injections(4, r) != 0 {
		t.Fatal("disruptor fired after non-silent slot")
	}
}

func TestCapSlidingWindow(t *testing.T) {
	// Inner wants 5 per slot; cap allows 6 per window of 4.
	inner := &Trace{Counts: []int{5, 5, 5, 5, 5, 5, 5, 5}}
	c := NewCap(inner, 4, 6)
	r := rng.New(8)
	var got []int
	for now := int64(0); now < 8; now++ {
		got = append(got, c.Injections(now, r))
	}
	// Verify the constraint: every window of 4 consecutive slots ≤ 6.
	for s := 0; s+4 <= len(got); s++ {
		sum := got[s] + got[s+1] + got[s+2] + got[s+3]
		if sum > 6 {
			t.Fatalf("window at %d has %d > 6 arrivals (%v)", s, sum, got)
		}
	}
	// And the budget is actually used: slot 0 gets 5, slot 1 gets 1.
	if got[0] != 5 || got[1] != 1 {
		t.Fatalf("cap schedule %v", got)
	}
}

func TestCapReplenishes(t *testing.T) {
	inner := &Trace{Counts: []int{3, 0, 0, 3, 0, 0}}
	c := NewCap(inner, 3, 3)
	r := rng.New(9)
	var got []int
	for now := int64(0); now < 6; now++ {
		got = append(got, c.Injections(now, r))
	}
	if got[0] != 3 || got[3] != 3 {
		t.Fatalf("cap blocked legal arrivals: %v", got)
	}
}

func TestCapValidation(t *testing.T) {
	for name, f := range map[string]func(){
		"window": func() { NewCap(None{}, 0, 1) },
		"max":    func() { NewCap(None{}, 1, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestCapForwardsObserve(t *testing.T) {
	d := &Disruptor{BurstSize: 2}
	c := NewCap(d, 10, 1)
	c.ObserveSlot(channel.Feedback{Slot: 0, Silent: true})
	r := rng.New(10)
	if c.Injections(1, r) != 1 {
		t.Fatal("cap did not forward observation / limit burst")
	}
}

func TestNegativeRatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative rate did not panic")
		}
	}()
	NewEvenPaced(-1)
}

func TestNames(t *testing.T) {
	procs := []Process{
		None{},
		&Batch{At: 0, N: 5},
		&Bernoulli{Rate: 0.5},
		&Poisson{Lambda: 0.5},
		NewEvenPaced(0.5),
		&WindowBurst{Window: 10, PerWindow: 2},
		&OnOff{OnSlots: 1, OffSlots: 1, OnRate: 0.5},
		&Trace{Counts: []int{1}},
		&Disruptor{BurstSize: 3},
		NewCap(None{}, 5, 1),
	}
	seen := map[string]bool{}
	for _, p := range procs {
		name := p.Name()
		if name == "" {
			t.Fatalf("%T has empty name", p)
		}
		if seen[name] {
			t.Fatalf("duplicate process name %q", name)
		}
		seen[name] = true
	}
}

func TestMoreNextAfter(t *testing.T) {
	if (&Poisson{Lambda: 0}).NextAfter(3) != -1 {
		t.Fatal("zero-lambda Poisson NextAfter")
	}
	if (&Poisson{Lambda: 1}).NextAfter(3) != 4 {
		t.Fatal("Poisson NextAfter")
	}
	e := NewEvenPaced(0)
	if e.NextAfter(3) != -1 {
		t.Fatal("zero-rate EvenPaced NextAfter")
	}
	e2 := NewEvenPaced(0.5)
	if e2.NextAfter(3) != 4 {
		t.Fatal("EvenPaced NextAfter")
	}
	d := &Disruptor{BurstSize: 1}
	if d.NextAfter(3) != 4 {
		t.Fatal("Disruptor NextAfter")
	}
	c := NewCap(&Batch{At: 9, N: 1}, 5, 1)
	if c.NextAfter(3) != 9 {
		t.Fatal("Cap NextAfter should forward")
	}
	o := &OnOff{OnSlots: 2, OffSlots: 3, OnRate: 0}
	if o.NextAfter(0) != -1 {
		t.Fatal("zero-rate OnOff NextAfter")
	}
}

func TestMergeSumsAndForwards(t *testing.T) {
	m := &Merge{
		A: &Batch{At: 5, N: 3},
		B: &Disruptor{BurstSize: 2},
	}
	if m.Name() != "batch(3@5)+disruptor(2)" {
		t.Fatalf("name %q", m.Name())
	}
	r := rng.New(1)
	// Disruptor armed by silence injects alongside the batch.
	m.ObserveSlot(channel.Feedback{Slot: 4, Silent: true})
	if got := m.Injections(5, r); got != 5 {
		t.Fatalf("merged injections %d, want 3+2", got)
	}
	// NextAfter is the earlier of the two sides.
	if got := m.NextAfter(0); got != 1 {
		t.Fatalf("NextAfter %d, want 1 (disruptor side)", got)
	}
	finite := &Merge{A: &Batch{At: 5, N: 1}, B: &Batch{At: 9, N: 1}}
	if finite.NextAfter(0) != 5 || finite.NextAfter(5) != 9 || finite.NextAfter(9) != -1 {
		t.Fatalf("finite merge NextAfter wrong: %d %d %d",
			finite.NextAfter(0), finite.NextAfter(5), finite.NextAfter(9))
	}
}
