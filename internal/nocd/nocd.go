// Package nocd implements contention resolution for channels without
// collision detection: stations hear nothing about a slot except their
// own delivery (the classical model's acknowledgment), so every
// strategy must be a blind, oblivious transmission-probability
// schedule.  Two schedules ship, both sampling every pending packet
// independently each slot:
//
//   - Unbounded (NewUnbounded) — the unknown-n geometric back-on of
//     Fernández Anta–Mosteiro–Muñoz (arXiv 1107.0234): monotone rounds
//     k = 0, 1, 2, … of length c·2^k at probability 2^-k, so the
//     schedule finds the backlog's scale without knowing n.  Lean, but
//     it never revisits a density it has left behind;
//   - Robust (NewRobust) — the sawtooth schedule in the spirit of
//     Jiang–Zheng robust contention resolution (arXiv 2111.06650):
//     phase i sweeps scales j = 0…i, dwelling c·2^j slots at
//     probability 2^-j, so every density recurs in every phase.  A
//     constant factor slower when nothing goes wrong, but mis-estimated
//     backlogs and jammed stretches cost a phase, not the run.
//
// One centralized-simulator liberty, shared with the genie baseline:
// the schedule rewinds to its densest setting when the system empties,
// which stands in for the per-busy-period restart the papers' stations
// perform on their own arrival.  Within a busy period the schedule uses
// no global knowledge.
//
// Both schemes implement protocol.Partitioned: the schedule advance and
// the slot's sampling are centralized in PrepareSlot (they consume the
// protocol's RNG), shards emit contiguous chunks of the sampled
// in-flight list, and feedback reduces centrally — bit-identical at
// every sim.Config.Workers count.  Neither implements protocol.Waker,
// so the engine fast-forwards only across provably empty stretches and
// the gap-equals-silence contract holds trivially.
package nocd

import (
	"fmt"
	"math"
	"slices"

	"repro/internal/channel"
	"repro/internal/protocol"
	"repro/internal/rng"
)

// roundScale is the c in the schedules' dwell lengths c·2^k: how many
// slots a schedule spends at scale k per visit, per unit 2^k.  The
// papers leave it a free constant (any c above a small bound preserves
// the asymptotics); it trades completion time against the probability
// that the productive scale passes before the backlog drains and the
// schedule overshoots into useless sparser rounds.  8 keeps overshoot
// rare across seeds at quick scales.
const roundScale = 8

// maxShift caps the dwell-length shifts so c<<k cannot overflow; at
// that point a visit lasts ~4·2^40 slots, beyond any drain limit.
const maxShift = 40

// Stats aggregates counters for a no-CD execution.
type Stats struct {
	Transmissions int64
	Delivered     int64
}

// schedule is a deterministic transmission-probability schedule: one
// advance per stepped busy slot, rewound at the end of a busy period.
type schedule interface {
	// advance moves to the next slot and returns its probability.
	advance() float64
	// reset rewinds to the schedule's initial (densest) setting.
	reset()
}

// geomSchedule is the unbounded scheme's monotone geometric back-on:
// round k lasts roundScale·2^k slots at probability 2^-k.
type geomSchedule struct {
	round int
	left  int64
}

func (g *geomSchedule) reset() { g.round, g.left = 0, roundScale }

func (g *geomSchedule) advance() float64 {
	if g.left <= 0 {
		if g.round < maxShift {
			g.round++
		}
		g.left = roundScale << g.round
	}
	g.left--
	return math.Ldexp(1, -g.round)
}

// sawSchedule is the robust scheme's sawtooth: phase i sweeps scales
// j = 0…i in order, dwelling roundScale·2^j slots at probability 2^-j.
type sawSchedule struct {
	phase int
	scale int
	left  int64
}

func (s *sawSchedule) reset() { s.phase, s.scale, s.left = 0, 0, roundScale }

func (s *sawSchedule) advance() float64 {
	if s.left <= 0 {
		s.scale++
		if s.scale > s.phase {
			s.phase++
			s.scale = 0
		}
		sh := s.scale
		if sh > maxShift {
			sh = maxShift
		}
		s.left = roundScale << sh
	}
	s.left--
	return math.Ldexp(1, -s.scale)
}

// Scheme is a no-CD sampling protocol: every pending packet transmits
// independently each slot with the schedule's current probability, and
// the only feedback consumed is a packet's own delivery.
type Scheme struct {
	rand  *rng.Rand
	name  string
	sched schedule

	ids []channel.PacketID
	loc map[channel.PacketID]int
	// inFlight is the slot's sampled transmitter list, built by
	// PrepareSlot and read (in contiguous chunks) by the shard stage.
	inFlight []channel.PacketID
	// shardPending counts pending packets per engine shard (keyed by
	// id mod NumShards) so the staged engine can audit shard ownership.
	shardPending [protocol.NumShards]int
	stats        Stats
	scratch      []int
	evSort       []channel.PacketID
}

var (
	_ protocol.Protocol    = (*Scheme)(nil)
	_ protocol.Partitioned = (*Scheme)(nil)
)

// NewUnbounded returns the unknown-n geometric back-on scheme.
func NewUnbounded(r *rng.Rand) *Scheme {
	return newScheme(r, "unbounded-backon", &geomSchedule{})
}

// NewRobust returns the sawtooth robust contention-resolution scheme.
func NewRobust(r *rng.Rand) *Scheme {
	return newScheme(r, "robust-sawtooth", &sawSchedule{})
}

func newScheme(r *rng.Rand, name string, sched schedule) *Scheme {
	if r == nil {
		panic("nocd: nil rng")
	}
	sched.reset()
	return &Scheme{rand: r, name: name, sched: sched, loc: make(map[channel.PacketID]int)}
}

// Name implements protocol.Protocol.
func (s *Scheme) Name() string { return s.name }

// Stats returns a copy of the accumulated counters.
func (s *Scheme) Stats() Stats { return s.stats }

// Pending implements protocol.Protocol.
func (s *Scheme) Pending() int { return len(s.ids) }

// Inject implements protocol.Protocol.
func (s *Scheme) Inject(now int64, ids []channel.PacketID) {
	for _, id := range ids {
		if _, dup := s.loc[id]; dup {
			panic(fmt.Sprintf("nocd: duplicate injection of packet %d", id))
		}
		s.loc[id] = len(s.ids)
		s.ids = append(s.ids, id)
		s.shardPending[int(id)%protocol.NumShards]++
	}
}

// Transmitters implements protocol.Protocol.
func (s *Scheme) Transmitters(now int64, buf []channel.PacketID) []channel.PacketID {
	s.PrepareSlot(now)
	return append(buf, s.inFlight...)
}

// Shards implements protocol.Partitioned.
func (s *Scheme) Shards() int { return protocol.NumShards }

// PrepareSlot implements protocol.Partitioned: the schedule advance and
// the independent per-packet sampling both live here — the schedule is
// shared state and the sampler consumes the protocol's RNG, so neither
// may run per shard.  Empty slots (nothing pending) leave the schedule
// and the RNG untouched, which keeps the stream aligned with the
// engine's fast-forwarding across empty stretches.
func (s *Scheme) PrepareSlot(now int64) {
	s.inFlight = s.inFlight[:0]
	n := len(s.ids)
	if n == 0 {
		return
	}
	p := s.sched.advance()
	s.scratch = s.rand.SampleIndices(s.scratch[:0], n, p)
	for _, idx := range s.scratch {
		s.inFlight = append(s.inFlight, s.ids[idx])
	}
	s.stats.Transmissions += int64(len(s.inFlight))
}

// ShardTransmitters implements protocol.Partitioned: shard `shard`
// emits its contiguous chunk of the sampled in-flight list, so the
// shard-order concatenation reproduces Transmitters exactly.
func (s *Scheme) ShardTransmitters(now int64, shard int, buf []channel.PacketID) []channel.PacketID {
	lo, hi := protocol.ShardRange(len(s.inFlight), shard, protocol.NumShards)
	return append(buf, s.inFlight[lo:hi]...)
}

// ShardObserve implements protocol.Partitioned.  Removal compacts the
// shared ids slice, so it stays centralized in ReduceSlot; the
// per-shard stage has nothing to do.
func (s *Scheme) ShardObserve(shard int, fb channel.Feedback) {}

// ReduceSlot implements protocol.Partitioned.
func (s *Scheme) ReduceSlot(fb channel.Feedback) { s.Observe(fb) }

// ShardPending implements protocol.Partitioned.
func (s *Scheme) ShardPending(shard int) int { return s.shardPending[shard] }

// Observe implements protocol.Protocol: only deliveries matter — a
// no-CD station hears nothing else.  Delivered packets are removed in
// ascending ID order regardless of the order the event lists them, so
// the protocol's subsequent behavior is insensitive to transmitter and
// event-packet ordering (fuzz-verified).  When the last pending packet
// leaves, the schedule rewinds for the next busy period.
func (s *Scheme) Observe(fb channel.Feedback) {
	s.inFlight = s.inFlight[:0]
	if fb.Event == nil {
		return
	}
	s.evSort = append(s.evSort[:0], fb.Event.Packets...)
	slices.Sort(s.evSort)
	for _, id := range s.evSort {
		idx, ok := s.loc[id]
		if !ok {
			continue
		}
		last := len(s.ids) - 1
		moved := s.ids[last]
		s.ids[idx] = moved
		s.ids = s.ids[:last]
		if idx != last {
			s.loc[moved] = idx
		}
		delete(s.loc, id)
		s.shardPending[int(id)%protocol.NumShards]--
		s.stats.Delivered++
	}
	if len(s.ids) == 0 {
		s.sched.reset()
	}
}
