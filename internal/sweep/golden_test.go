package sweep

import (
	"os"
	"testing"
)

// TestBenchSpecCellIdentitiesPinned pins the content-addressed identity
// of cells in the committed benchmark spec.  Cell IDs are the cache and
// resume keys of published artifacts: axis extensions (new protocols,
// new channel models) must leave every pre-existing cell's ID — its
// scenario key, engine knobs, and trial seeds — byte-identical, or
// sharded re-runs silently recompute (or worse, wrongly reuse) cells.
// If this test fails, the schema changed: bump SchemaVersion and
// regenerate the artifacts rather than editing the constants here.
func TestBenchSpecCellIdentitiesPinned(t *testing.T) {
	data, err := os.ReadFile("../../bench_spec.json")
	if err != nil {
		t.Fatal(err)
	}
	spec, err := ParseSpec(data)
	if err != nil {
		t.Fatal(err)
	}
	cells := spec.Expand()
	if len(cells) != 132 {
		t.Fatalf("bench spec expands to %d cells, want 132", len(cells))
	}
	hash, err := spec.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if want := "123cc34d5d72039be21f2149aa1764779e228d523a7db3ab1a32f7f768b8c234"; hash != want {
		t.Fatalf("spec hash %s, want %s", hash, want)
	}
	seeds := spec.jobSeeds(len(cells))
	golden := []struct {
		idx int
		key string
		id  string
	}{
		{0, "coded/dba/batch/k=8/rate=0.3/jam=none/adv=none",
			"37db65458a4e96277d9f61f775683fa0c112ccc26c2c974388a92ce4d481f6e2"},
		{1, "coded/dba/batch/k=8/rate=0.3/jam=none/adv=reactive:4/48",
			"5a07f822c2c06687d83c5c660dde0730b6eb3f27d6ac3cc16ffd0e4958b49088"},
		{7, "coded/dba/batch/k=64/rate=0.3/jam=none/adv=reactive:4/48",
			"bafc0f331666a56391fa5c1ded9595db816f833d3117b9ff9ec945997f9dc0c8"},
		{66, "coded/genie/bernoulli/k=64/rate=0.3/jam=none/adv=none",
			"a7bbca76ca2b7312ea21b13d0c49154b94585a0b124ebbf610183a4659b29278"},
		{131, "classical:ternary/mw/bernoulli/k=1/rate=0.7/jam=none/adv=sigmarho:1000/0.1",
			"f52ede1d6a4adc4001fc22e9790081acf833b3a6b6ca9b2898568059f9e64970"},
	}
	for _, g := range golden {
		if key := cells[g.idx].Key(); key != g.key {
			t.Errorf("cell %d key %s, want %s", g.idx, key, g.key)
			continue
		}
		id := cellID(cells[g.idx], spec, seeds[g.idx*spec.Trials:(g.idx+1)*spec.Trials])
		if id != g.id {
			t.Errorf("cell %d (%s) id %s, want %s", g.idx, g.key, id, g.id)
		}
	}
}
