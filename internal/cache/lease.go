package cache

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/report"
)

// lease is the on-disk claim on a record identity.  It lives next to
// the record it guards (<id>.json.lease) and is meaningful only until
// Expires or until the record itself appears.
type lease struct {
	Owner   string `json:"owner"`
	Expires int64  `json:"expires_unix_nano"`
}

// leasePath returns the lease file guarding a record identity.
func (s *Store) leasePath(id string) string { return s.Path(id) + ".lease" }

// validOwner gates lease owners: they are diagnostic labels that travel
// through URLs and log lines, so keep them short and printable.
func validOwner(owner string) bool {
	if owner == "" || len(owner) > 128 {
		return false
	}
	return !strings.ContainsAny(owner, " \t\n\r/")
}

// Claim takes (or renews) an advisory lease on a record identity, per
// the Backend contract: false when the record already exists or another
// owner holds an unexpired lease; true when the caller now holds it.
// A corrupt or expired lease file is treated as absent.
//
// The read-check-write is serialized within one process (goroutine
// workers sharing a Store get real mutual exclusion) but not across
// processes: two workers racing on one identity from different machines
// of a shared filesystem can both see no lease and both win.  That is
// deliberate slack, not a bug — records are content-addressed, so the
// loser's Put rewrites the winner's bytes.  The lease's job is to make
// duplicate execution rare, not impossible; crnserve, whose server
// serializes claims, makes it airtight for HTTP workers.
func (s *Store) Claim(id, owner string, ttl time.Duration) (bool, error) {
	s.claims.Lock()
	defer s.claims.Unlock()
	if !validID(id) {
		return false, fmt.Errorf("cache: malformed record id %q", id)
	}
	if !validOwner(owner) {
		return false, fmt.Errorf("cache: malformed lease owner %q", owner)
	}
	if ttl <= 0 {
		return false, fmt.Errorf("cache: non-positive lease ttl %v", ttl)
	}
	if _, err := os.Stat(s.Path(id)); err == nil {
		return false, nil // already complete; nothing to claim
	} else if !os.IsNotExist(err) {
		return false, fmt.Errorf("cache: %w", err)
	}
	if data, err := os.ReadFile(s.leasePath(id)); err == nil {
		var l lease
		if json.Unmarshal(data, &l) == nil && l.Owner != owner && time.Now().UnixNano() < l.Expires {
			return false, nil // live foreign lease
		}
		// Corrupt, expired, or our own: fall through and (re)write.
	} else if !os.IsNotExist(err) {
		return false, fmt.Errorf("cache: %w", err)
	}
	l := lease{Owner: owner, Expires: time.Now().Add(ttl).UnixNano()}
	data, err := json.Marshal(&l)
	if err != nil {
		return false, fmt.Errorf("cache: %w", err)
	}
	// Plain atomic write: leases are advisory hints, so losing one to a
	// power cut only costs a duplicate execution, and fsyncing every
	// claim would put a disk flush on the scheduling hot path.
	if err := report.SaveFile(s.leasePath(id), data); err != nil {
		return false, fmt.Errorf("cache: %w", err)
	}
	return true, nil
}

// List returns the identities of the records currently in the store,
// in ascending order.  Lease files and foreign files are skipped.
func (s *Store) List() ([]string, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("cache: %w", err)
	}
	var ids []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".json") {
			continue
		}
		id := strings.TrimSuffix(name, ".json")
		if validID(id) {
			ids = append(ids, id)
		}
	}
	sort.Strings(ids)
	return ids, nil
}
