package sweep

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cache"
	"repro/internal/sim"
)

// protoSeedSalt decorrelates a trial's protocol rng stream from its
// arrival stream (which uses the trial seed directly via sim.Config).
const protoSeedSalt = 0x70726f746f636f6c // "protocol"

// Options tunes sweep execution.  The zero value is ready to use.
type Options struct {
	// Parallelism bounds concurrent trials (0 = GOMAXPROCS).
	Parallelism int
	// Workers sets sim.Config.Workers (the staged intra-trial engine)
	// for trials whose spec leaves its own Workers unset.  It is an
	// execution-side knob of the machine running the sweep: results are
	// bit-identical at any value, so — like Parallelism — it never
	// enters cell identities or artifacts.
	Workers int
	// OnCell, if set, is called as each selected cell completes —
	// executed, or (under Resume) loaded from the cache — with the number
	// of completed cells and the selected total.  Calls are serialized;
	// cached cells are reported first in grid order, executed cells in
	// scheduling order.
	OnCell func(done, total int, cell *CellSummary, cached bool)
	// Cache, if non-nil, persists every completed cell as a
	// content-addressed record keyed by cell identity, so a later Resume
	// run — or a concurrent work-stealing worker on another machine —
	// re-executes only what is missing.  A filesystem *cache.Store and an
	// httpstore.Client are interchangeable here.
	Cache cache.Backend
	// Resume loads cells whose records are already in Cache instead of
	// executing them.  Requires Cache.
	Resume bool

	// Owner identifies this worker in lease claims (RunWorker only).
	// Empty derives a process-unique label.  Purely diagnostic: results
	// never depend on it.
	Owner string
	// LeaseTTL bounds how long a claimed-but-unfinished cell stays
	// unstealable after its worker dies (RunWorker only; 0 =
	// DefaultLeaseTTL).  It must exceed the worst-case single-cell
	// execution time, or live workers will duplicate each other's work —
	// harmlessly (records are content-addressed) but wastefully.
	LeaseTTL time.Duration
	// Poll is how long a worker waits between scans when every missing
	// cell is leased to someone else (RunWorker only; 0 = 100ms).
	Poll time.Duration
}

// trialOut carries one trial's result plus the side-channel measurements
// the sim.Result does not hold.
type trialOut struct {
	res       *sim.Result
	errEpochs int64
}

// CellRecord is the cache-record schema for one completed cell — the
// unit the shared backend stores and crnquery reads.  The identity
// fields are re-checked on load: a record whose stored identity,
// scenario key, or schema version disagrees with what the spec derives
// is ignored (treated as a miss), never merged.
type CellRecord struct {
	SchemaVersion string      `json:"schema_version"`
	ID            string      `json:"id"`
	Key           string      `json:"key"`
	Index         int         `json:"index"`
	Cell          CellSummary `json:"cell"`
}

// matches reports whether a loaded record is trustworthy for the given
// identity and scenario key under the current schema.
func (r *CellRecord) matches(id, key string) bool {
	return r.SchemaVersion == SchemaVersion && r.ID == id && r.Key == key
}

// loadCell fetches and verifies one cell from a backend.  Absent,
// corrupt, foreign, and stale-schema records are all misses.
func loadCell(b cache.Backend, id, key string) (CellSummary, bool, error) {
	var rec CellRecord
	ok, err := b.Get(id, &rec)
	if err != nil {
		return CellSummary{}, false, err
	}
	if !ok || !rec.matches(id, key) {
		return CellSummary{}, false, nil
	}
	return rec.Cell, true, nil
}

// putCell persists one completed cell to a backend.
func putCell(b cache.Backend, id string, index int, key string, cell CellSummary) error {
	return b.Put(id, &CellRecord{
		SchemaVersion: SchemaVersion,
		ID:            id,
		Key:           key,
		Index:         index,
		Cell:          cell,
	})
}

// execCell runs one cell's trials — bounded by parallelism, with the
// staged engine at the given worker width — and folds them into the
// cell's summary.  The seeds come from the full grid's flattened seed
// list, so the summary is bit-identical to what an unsharded run
// computes for the same cell, whichever scheduling policy asked for it.
func execCell(spec *Spec, sc Scenario, seeds []uint64, parallelism, workers int) CellSummary {
	outs := make([]trialOut, len(seeds))
	sim.RunSeededTrials(seeds, parallelism, func(job int, seed uint64) *sim.Result {
		var errCount int64
		proto := spec.buildProtocol(sc, seed^protoSeedSalt, &errCount)
		cfg := spec.config(sc, seed)
		if cfg.Workers == 0 {
			cfg.Workers = workers
		}
		res := sim.Run(cfg, proto, spec.buildArrival(sc))
		outs[job] = trialOut{res: res, errEpochs: errCount}
		return res
	})
	return summarize(sc, outs)
}

// Run expands the spec and executes every (cell, trial) pair, fanning
// the flattened trial list out over the engine's trial runner.  Trial
// seeds derive deterministically from spec.Seed in canonical cell
// order, so the resulting Grid is identical for any parallelism — and,
// with Options.Cache/Resume, for any interruption point: completed
// cells are re-loaded, missing ones re-executed, and the artifact is
// byte-identical to an uninterrupted run.  Cancel ctx to stop early:
// in-flight trials finish (and completed cells stay cached), then Run
// returns the context's error.
func Run(ctx context.Context, spec Spec, opts Options) (*Grid, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	cells := spec.Expand()
	out, err := runCells(ctx, &spec, cells, Shard{}.Indices(len(cells)), opts)
	if err != nil {
		return nil, err
	}
	grid := &Grid{Spec: spec, Cells: make([]CellSummary, len(cells))}
	for i := range out {
		grid.Cells[out[i].Index] = out[i].Cell
	}
	return grid, nil
}

// RunShard executes one shard of the spec's grid — the cells
// sh.Indices selects from the canonical expansion — seeding each trial
// exactly as an unsharded run would, and returns the shard artifact
// Merge reassembles.  Options.Cache/Resume apply per cell, so shards
// and resumed runs share one cache.  Cancellation follows Run's
// contract.
func RunShard(ctx context.Context, spec Spec, sh Shard, opts Options) (*ShardResult, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if err := sh.Validate(); err != nil {
		return nil, err
	}
	hash, err := spec.Hash()
	if err != nil {
		return nil, err
	}
	cells := spec.Expand()
	out, err := runCells(ctx, &spec, cells, sh.Indices(len(cells)), opts)
	if err != nil {
		return nil, err
	}
	return &ShardResult{
		SchemaVersion: SchemaVersion,
		SpecHash:      hash,
		Spec:          spec,
		Shard:         sh,
		TotalCells:    len(cells),
		Cells:         out,
	}, nil
}

// runCells executes (or, under Resume, loads) the selected cells of an
// expanded grid — the static scheduling policy: the caller decides up
// front which cells this process owns (a shard's round-robin slice, or
// the whole grid) and every other cell is someone else's problem.  The
// work-stealing policy in steal.go instead claims cells from the shared
// backend at run time; both funnel through the same loadCell / execCell
// / putCell primitives, so the policies differ only in who executes a
// cell, never in what the cell contains.
//
// spec must be validated; selected holds ascending positions into
// cells.  Every trial's seed comes from the full grid's flattened seed
// list, so any subset executes exactly as it would inside an unsharded,
// uninterrupted run.
func runCells(ctx context.Context, spec *Spec, cells []Scenario, selected []int, opts Options) ([]IndexedCell, error) {
	if opts.Resume && opts.Cache == nil {
		return nil, fmt.Errorf("sweep: Resume requires a Cache")
	}
	allSeeds := spec.jobSeeds(len(cells))
	out := make([]IndexedCell, len(selected))
	var pending []int // positions in selected that need execution
	for si, ci := range selected {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		sc := cells[ci]
		out[si] = IndexedCell{Index: ci, ID: cellID(sc, spec, allSeeds[ci*spec.Trials:(ci+1)*spec.Trials])}
		hit := false
		if opts.Resume {
			// The identity hash names the record, but trust nothing: a
			// record is reused only if its stored identity agrees with the
			// one this spec derives for this cell (loadCell re-checks).
			cell, ok, err := loadCell(opts.Cache, out[si].ID, sc.Key())
			if err != nil {
				return nil, err
			}
			if ok {
				out[si].Cell = cell
				hit = true
			}
		}
		if !hit {
			pending = append(pending, si)
		}
	}

	var progress struct {
		sync.Mutex
		done    int
		saveErr error
	}
	finish := func(si int, cached bool) {
		// Persist outside the progress mutex: records are distinct files
		// keyed by unique identities, so concurrent Puts need no mutual
		// exclusion, and a slow disk must not serialize cell completion.
		var putErr error
		if opts.Cache != nil && !cached {
			putErr = putCell(opts.Cache, out[si].ID, out[si].Index, cells[out[si].Index].Key(), out[si].Cell)
		}
		progress.Lock()
		defer progress.Unlock()
		if putErr != nil && progress.saveErr == nil {
			progress.saveErr = putErr
		}
		progress.done++
		if opts.OnCell != nil {
			opts.OnCell(progress.done, len(selected), &out[si].Cell, cached)
		}
	}
	// Report cache hits first, in grid order; executed cells follow as
	// they land.
	for si := range out {
		if isPending(pending, si) {
			continue
		}
		finish(si, true)
	}

	if len(pending) > 0 {
		jobs := len(pending) * spec.Trials
		jobSeeds := make([]uint64, jobs)
		for p, si := range pending {
			ci := out[si].Index
			copy(jobSeeds[p*spec.Trials:], allSeeds[ci*spec.Trials:(ci+1)*spec.Trials])
		}
		// Trials self-collect per cell so a cell can be summarized (and
		// persisted, and progress reported) the moment its last trial
		// lands, while other cells are still running.  Each slot is
		// written by exactly one goroutine; the atomic countdown orders
		// those writes before the summarizing goroutine's reads.
		outs := make([]trialOut, jobs)
		remaining := make([]int32, len(pending))
		for i := range remaining {
			remaining[i] = int32(spec.Trials)
		}
		sim.RunSeededTrials(jobSeeds, opts.Parallelism, func(job int, seed uint64) *sim.Result {
			// Cancellation is between trials: an in-flight trial always
			// finishes (so its cell can complete and persist), but no new
			// trial starts once ctx is done.
			if ctx.Err() != nil {
				return nil
			}
			p := job / spec.Trials
			si := pending[p]
			sc := cells[out[si].Index]
			var errCount int64
			proto := spec.buildProtocol(sc, seed^protoSeedSalt, &errCount)
			cfg := spec.config(sc, seed)
			if cfg.Workers == 0 {
				cfg.Workers = opts.Workers
			}
			res := sim.Run(cfg, proto, spec.buildArrival(sc))
			outs[job] = trialOut{res: res, errEpochs: errCount}
			if atomic.AddInt32(&remaining[p], -1) == 0 {
				out[si].Cell = summarize(sc, outs[p*spec.Trials:(p+1)*spec.Trials])
				finish(si, false)
			}
			return res
		})
	}
	if progress.saveErr != nil {
		return nil, progress.saveErr
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// isPending reports whether si is in the ascending pending list.
func isPending(pending []int, si int) bool {
	lo, hi := 0, len(pending)
	for lo < hi {
		mid := (lo + hi) / 2
		switch {
		case pending[mid] < si:
			lo = mid + 1
		case pending[mid] > si:
			hi = mid
		default:
			return true
		}
	}
	return false
}
