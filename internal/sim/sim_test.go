package sim

import (
	"math"
	"runtime"
	"testing"

	"repro/internal/adversary"
	"repro/internal/arrival"
	"repro/internal/baseline"
	"repro/internal/channel"
	"repro/internal/core"
	"repro/internal/jam"
	"repro/internal/medium"
	"repro/internal/protocol"
	"repro/internal/rng"
)

func TestBatchRunDBA(t *testing.T) {
	const kappa, n = 16, 500
	res := Run(Config{Kappa: kappa, Horizon: 1, Drain: true, Seed: 1},
		core.New(kappa, rng.New(2)), &arrival.Batch{At: 0, N: n})
	if res.Arrivals != n {
		t.Fatalf("arrivals %d", res.Arrivals)
	}
	if res.Delivered != n {
		t.Fatalf("delivered %d of %d (pending %d)", res.Delivered, n, res.Pending)
	}
	if res.Pending != 0 {
		t.Fatalf("pending %d", res.Pending)
	}
	if res.CompletionThroughput() <= 0.5 {
		t.Fatalf("throughput %v suspiciously low", res.CompletionThroughput())
	}
	if res.Latency.N() != n {
		t.Fatalf("latency samples %d", res.Latency.N())
	}
	if res.LatencyQuantile(1) < res.LatencyQuantile(0.5) {
		t.Fatal("latency quantiles inconsistent")
	}
	if res.MaxBacklog != n {
		t.Fatalf("max backlog %d, want %d", res.MaxBacklog, n)
	}
	if res.String() == "" {
		t.Fatal("String empty")
	}
}

func TestConservationAcrossProtocols(t *testing.T) {
	const kappa = 8
	build := map[string]func() protocol.Protocol{
		"dba":   func() protocol.Protocol { return core.New(kappa, rng.New(3)) },
		"beb":   func() protocol.Protocol { return baseline.NewExponentialBackoff(rng.New(4)) },
		"aloha": func() protocol.Protocol { return baseline.NewGenieAloha(rng.New(5), 1) },
		"mw": func() protocol.Protocol {
			return baseline.NewMultiplicativeWeights(rng.New(6), baseline.DefaultMWConfig())
		},
	}
	for name, mk := range build {
		res := Run(Config{Kappa: kappa, Horizon: 3000, Drain: true, Seed: 7},
			mk(), &arrival.Bernoulli{Rate: 0.2})
		if res.Arrivals != res.Delivered+int64(res.Pending) {
			t.Fatalf("%s: conservation violated: %d != %d + %d",
				name, res.Arrivals, res.Delivered, res.Pending)
		}
		if res.Delivered == 0 {
			t.Fatalf("%s: nothing delivered", name)
		}
	}
}

func TestDeterministicRuns(t *testing.T) {
	mk := func() *Result {
		return Run(Config{Kappa: 16, Horizon: 5000, Drain: true, Seed: 11},
			core.New(16, rng.New(12)), &arrival.Bernoulli{Rate: 0.3})
	}
	a, b := mk(), mk()
	if a.Delivered != b.Delivered || a.Elapsed != b.Elapsed ||
		a.MaxBacklog != b.MaxBacklog || a.Latency.Mean() != b.Latency.Mean() {
		t.Fatalf("same seeds diverged: %v vs %v", a, b)
	}
}

func TestFastForwardIdle(t *testing.T) {
	// A tiny batch at slot 0 and another at slot 10^7: the engine must
	// not walk every slot in between.  (If it did, this test would still
	// pass but take visibly long; we assert on the channel's accounting.)
	const kappa = 8
	batches := &twoBatches{first: 3, second: 3, secondAt: 10_000_000}
	res := Run(Config{Kappa: kappa, Horizon: 10_000_001, Drain: true, Seed: 13},
		core.New(kappa, rng.New(14)), batches)
	if res.Delivered != 6 {
		t.Fatalf("delivered %d of 6", res.Delivered)
	}
	total := res.Channel.SilentSlots + res.Channel.GoodSlots + res.Channel.BadSlots
	if total < 10_000_000 {
		t.Fatalf("slot accounting lost the idle stretch: %d", total)
	}
}

// twoBatches injects `first` packets at slot 0 and `second` at secondAt.
type twoBatches struct {
	first, second int
	secondAt      int64
}

func (b *twoBatches) Name() string { return "two-batches" }
func (b *twoBatches) Injections(now int64, _ *rng.Rand) int {
	switch now {
	case 0:
		return b.first
	case b.secondAt:
		return b.second
	}
	return 0
}
func (b *twoBatches) NextAfter(now int64) int64 {
	switch {
	case now < 0:
		return 0
	case now < b.secondAt:
		return b.secondAt
	}
	return -1
}

func TestWakerFastForward(t *testing.T) {
	// BEB implements Waker; a lone packet with a huge backoff window must
	// not cost per-slot work.  Verify slots accounting stays exact.
	e := baseline.NewExponentialBackoff(rng.New(15))
	res := Run(Config{Kappa: 1, Horizon: 1, Drain: true, Seed: 16},
		e, &arrival.Batch{At: 0, N: 5})
	if res.Delivered != 5 {
		t.Fatalf("delivered %d of 5", res.Delivered)
	}
	total := res.Channel.SilentSlots + res.Channel.GoodSlots + res.Channel.BadSlots
	if total != res.Elapsed {
		t.Fatalf("slot accounting %d != elapsed %d", total, res.Elapsed)
	}
}

func TestHorizonZero(t *testing.T) {
	res := Run(Config{Kappa: 8, Horizon: 0, Seed: 1},
		core.New(8, rng.New(1)), &arrival.Batch{At: 0, N: 5})
	if res.Arrivals != 0 || res.Elapsed != 0 {
		t.Fatalf("horizon-0 run did something: %+v", res)
	}
}

func TestNoDrainLeavesBacklog(t *testing.T) {
	res := Run(Config{Kappa: 8, Horizon: 3, Seed: 1},
		core.New(8, rng.New(1)), &arrival.Batch{At: 0, N: 100})
	if res.Pending == 0 {
		t.Fatal("100 packets cannot complete in 3 slots")
	}
	if res.Elapsed != 3 {
		t.Fatalf("elapsed %d, want 3", res.Elapsed)
	}
}

func TestDrainLimitRespected(t *testing.T) {
	// An overloaded system must stop at Horizon+DrainLimit.
	res := Run(Config{Kappa: 8, Horizon: 100, Drain: true, DrainLimit: 50, Seed: 2},
		baseline.NewSlottedAloha(rng.New(3), 0.9), // hopeless: constant collisions
		&arrival.Batch{At: 0, N: 50})
	if res.Elapsed > 150 {
		t.Fatalf("drain limit ignored: elapsed %d", res.Elapsed)
	}
}

// sleepyWaker holds its packets forever and declares a next wake far past
// any drain budget — the pathological Waker for the drain clamp.
type sleepyWaker struct{ pending int }

func (s *sleepyWaker) Name() string                           { return "sleepy" }
func (s *sleepyWaker) Inject(_ int64, ids []channel.PacketID) { s.pending += len(ids) }
func (s *sleepyWaker) Observe(channel.Feedback)               {}
func (s *sleepyWaker) Pending() int                           { return s.pending }
func (s *sleepyWaker) NextWake(now int64) int64               { return now + 1<<40 }
func (s *sleepyWaker) Transmitters(_ int64, buf []channel.PacketID) []channel.PacketID {
	return buf
}

func TestDrainClampsWakerFastForward(t *testing.T) {
	// A protocol whose NextWake sleeps far ahead must not push Elapsed (or
	// the silent-slot accounting) past Horizon+DrainLimit.
	res := Run(Config{Kappa: 8, Horizon: 10, Drain: true, DrainLimit: 100, Seed: 1},
		&sleepyWaker{}, &arrival.Batch{At: 0, N: 1})
	if res.Elapsed > 110 {
		t.Fatalf("elapsed %d overshoots Horizon+DrainLimit=110", res.Elapsed)
	}
	total := res.Channel.SilentSlots + res.Channel.GoodSlots + res.Channel.BadSlots
	if total != res.Elapsed {
		t.Fatalf("slot accounting %d != elapsed %d", total, res.Elapsed)
	}
}

func TestNegativeDrainLimitTerminates(t *testing.T) {
	// A negative DrainLimit means "no drain budget": the run must end at
	// the horizon, not hang with the fast-forward clamp pinned at now.
	res := Run(Config{Kappa: 8, Horizon: 10, Drain: true, DrainLimit: -100, Seed: 1},
		&sleepyWaker{}, &arrival.Batch{At: 0, N: 1})
	if res.Elapsed > 10 {
		t.Fatalf("elapsed %d, want ≤ horizon 10", res.Elapsed)
	}
	if res.Pending != 1 {
		t.Fatalf("pending %d, want 1", res.Pending)
	}
}

func TestSegmentMeanBacklog(t *testing.T) {
	res := Run(Config{Kappa: 16, Horizon: 20000, Seed: 4},
		core.New(16, rng.New(5)), &arrival.Bernoulli{Rate: 0.3})
	early := res.SegmentMeanBacklog(0.1, 0.5)
	late := res.SegmentMeanBacklog(0.5, 1.0)
	if early < 0 || late < 0 {
		t.Fatal("negative backlog segment")
	}
	// At rate 0.3 with kappa 16 the system is stable: late backlog must
	// not be drastically larger than early.
	if late > 20*math.Max(early, 5) {
		t.Fatalf("backlog diverging at low load: early %v late %v", early, late)
	}
}

func TestValidation(t *testing.T) {
	for name, f := range map[string]func(){
		"kappa": func() {
			Run(Config{Kappa: 0, Horizon: 1}, core.New(8, rng.New(1)), arrival.None{})
		},
		"horizon": func() {
			Run(Config{Kappa: 8, Horizon: -1}, core.New(8, rng.New(1)), arrival.None{})
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestMaxWindowDefaults(t *testing.T) {
	cfg := Config{Kappa: 16}
	if cfg.maxWindow() != 64 {
		t.Fatalf("default maxWindow %d, want 64", cfg.maxWindow())
	}
	cfg.MaxWindow = NoWindowCap
	if cfg.maxWindow() != 0 {
		t.Fatalf("NoWindowCap maxWindow %d, want 0", cfg.maxWindow())
	}
	cfg.MaxWindow = 7
	if cfg.maxWindow() != 7 {
		t.Fatalf("explicit maxWindow %d", cfg.maxWindow())
	}
}

func TestAdaptiveArrivalObserved(t *testing.T) {
	// The disruptor must actually see channel feedback through the engine.
	dis := &arrival.Disruptor{BurstSize: 2}
	capped := arrival.NewCap(dis, 100, 10)
	res := Run(Config{Kappa: 8, Horizon: 2000, Drain: true, Seed: 6},
		core.New(8, rng.New(7)), capped)
	if res.Arrivals == 0 {
		t.Fatal("disruptor never injected (feedback not forwarded?)")
	}
	if res.Arrivals != res.Delivered+int64(res.Pending) {
		t.Fatal("conservation violated with adaptive arrivals")
	}
}

func TestRunTrialsDeterministicAndParallel(t *testing.T) {
	f := func(trial int, seed uint64) *Result {
		return Run(Config{Kappa: 16, Horizon: 2000, Drain: true, Seed: seed},
			core.New(16, rng.New(seed^0x9e37)), &arrival.Bernoulli{Rate: 0.4})
	}
	serial := RunTrials(8, 42, 1, f)
	parallel := RunTrials(8, 42, 4, f)
	for i := range serial {
		if serial[i].Delivered != parallel[i].Delivered ||
			serial[i].Elapsed != parallel[i].Elapsed {
			t.Fatalf("trial %d: serial/parallel mismatch", i)
		}
	}
	agg := Aggregate(serial, func(r *Result) float64 { return float64(r.Delivered) })
	if agg.N() != 8 || agg.Mean() <= 0 {
		t.Fatalf("aggregate %v", agg)
	}
}

func TestRunSeededTrialsMatchesRunTrials(t *testing.T) {
	// A subset run (a sweep shard, a cache resume) seeds trials from the
	// full list TrialSeeds derives — trial i under RunSeededTrials must
	// reproduce trial i under RunTrials exactly.
	f := func(trial int, seed uint64) *Result {
		return Run(Config{Kappa: 16, Horizon: 1000, Drain: true, Seed: seed},
			core.New(16, rng.New(seed^0x9e37)), &arrival.Bernoulli{Rate: 0.4})
	}
	seeds := TrialSeeds(6, 42)
	whole := RunTrials(6, 42, 2, f)
	subset := RunSeededTrials(seeds[2:5], 2, f)
	for i, r := range subset {
		if want := whole[i+2]; r.Delivered != want.Delivered || r.Elapsed != want.Elapsed {
			t.Fatalf("seeded trial %d diverged from full-run trial %d", i, i+2)
		}
	}
	if RunSeededTrials(nil, 4, f) != nil {
		t.Fatal("zero seeds should return nil")
	}
	if TrialSeeds(0, 1) != nil {
		t.Fatal("zero trials should derive no seeds")
	}
}

func TestRunTrialsEdgeCases(t *testing.T) {
	if RunTrials(0, 1, 1, nil) != nil {
		t.Fatal("zero trials should return nil")
	}
	res := RunTrials(3, 1, 100, func(trial int, seed uint64) *Result {
		return &Result{Delivered: int64(trial)}
	})
	for i, r := range res {
		if r.Delivered != int64(i) {
			t.Fatalf("results out of order: %v", res)
		}
	}
}

func TestLatencyOmittedWhenSamplingOff(t *testing.T) {
	res := Run(Config{Kappa: 8, Horizon: 1, Drain: true, Seed: 1, LatencySamples: LatencySamplesOff},
		core.New(8, rng.New(1)), &arrival.Batch{At: 0, N: 10})
	if res.LatencySample != nil {
		t.Fatal("latency sample retained with sampling off")
	}
	if !math.IsNaN(res.LatencyQuantile(0.5)) {
		t.Fatal("quantile with sampling off should be NaN")
	}
	if res.Latency.N() != 10 {
		t.Fatal("summary should still accumulate")
	}
}

func TestLatencySampleBoundedAndExactBelowCap(t *testing.T) {
	// Default config: the reservoir holds every delivery while the run
	// fits the capacity (exact quantiles), and a tiny explicit capacity
	// bounds retention below the delivery count.
	res := Run(Config{Kappa: 16, Horizon: 1, Drain: true, Seed: 2},
		core.New(16, rng.New(3)), &arrival.Batch{At: 0, N: 300})
	if res.LatencySample == nil || res.LatencySample.Len() != 300 || !res.LatencySample.Exact() {
		t.Fatalf("default reservoir should hold all 300 latencies: %+v", res.LatencySample)
	}
	small := Run(Config{Kappa: 16, Horizon: 1, Drain: true, Seed: 2, LatencySamples: 32},
		core.New(16, rng.New(3)), &arrival.Batch{At: 0, N: 300})
	if small.LatencySample.Len() != 32 || small.LatencySample.N() != 300 {
		t.Fatalf("capped reservoir retained %d of %d", small.LatencySample.Len(), small.LatencySample.N())
	}
	if q := small.LatencyQuantile(0.5); math.IsNaN(q) || q < 1 {
		t.Fatalf("subsampled quantile %v", q)
	}
}

func TestBookkeepingBoundedByBacklog(t *testing.T) {
	// 10^5 arrivals paced at rate 0.5 under κ=64: the backlog stays
	// small, and the engine's per-packet bookkeeping must track the
	// backlog — entries freed on delivery — not the arrival total.
	res := Run(Config{Kappa: 64, Horizon: 200_000, Drain: true, Seed: 3},
		core.New(64, rng.New(4)), arrival.NewEvenPaced(0.5))
	if res.Arrivals < 99_000 {
		t.Fatalf("arrivals %d, want ~100000", res.Arrivals)
	}
	// Peak in-flight is measured at injection, before the slot's
	// deliveries; MaxBacklog after them.  They can differ by at most one
	// slot's arrivals plus one decoding event (≤ 4κ packets).
	if slack := res.MaxBacklog + 4*64 + 1; res.PeakInFlight > slack {
		t.Fatalf("bookkeeping peak %d not bounded by backlog %d (+slack)",
			res.PeakInFlight, res.MaxBacklog)
	}
	if int64(res.PeakInFlight)*20 > res.Arrivals {
		t.Fatalf("bookkeeping peak %d scales with arrivals %d, not backlog %d",
			res.PeakInFlight, res.Arrivals, res.MaxBacklog)
	}
	if res.LatencySample.Len() > DefaultLatencySamples {
		t.Fatalf("latency retention %d exceeds the reservoir cap", res.LatencySample.Len())
	}
}

func TestLargeBatchBoundedBookkeeping(t *testing.T) {
	// The Theorem 16 asymptotic regime: a 10^6-packet batch at κ=64 must
	// complete with per-packet bookkeeping bounded by the backlog peak
	// (== n for a batch) and latency retention bounded by the reservoir —
	// the scales the former O(arrivals) Latencies slice made impractical.
	// Workers: GOMAXPROCS runs the staged shard/step/reduce path at scale
	// (this batch crosses the fan-out grain), so the CI -race job drives
	// the parallel shard sweep through a full Theorem 16 regime run.
	const n, kappa = 1_000_000, 64
	res := Run(Config{Kappa: kappa, Horizon: 1, Drain: true,
		DrainLimit: 8*n + 1<<20, Seed: 5, Workers: runtime.GOMAXPROCS(0)},
		core.New(kappa, rng.New(6)), &arrival.Batch{At: 0, N: n})
	if res.Delivered != n || res.Pending != 0 {
		t.Fatalf("delivered %d of %d (pending %d)", res.Delivered, n, res.Pending)
	}
	if res.PeakInFlight != n || res.PeakInFlight > res.MaxBacklog {
		t.Fatalf("bookkeeping peak %d, max backlog %d, want both %d (O(MaxBacklog) bound)",
			res.PeakInFlight, res.MaxBacklog, n)
	}
	if res.LatencySample.Len() != DefaultLatencySamples {
		t.Fatalf("latency retention %d, want the %d-slot reservoir cap",
			res.LatencySample.Len(), DefaultLatencySamples)
	}
	bound := float64(n)*(1+10.0/kappa) + 4*kappa
	if got := float64(res.LastDelivery + 1); got > bound {
		t.Fatalf("completion %v exceeds the Theorem 16 bound %v", got, bound)
	}
}

func TestPerSlotPathAllocationFree(t *testing.T) {
	// The steady-state per-slot path must not allocate: extending the
	// horizon 10× may add only setup-independent noise, not per-slot
	// allocations.  (This is the testable form of the benchmark guard —
	// BenchmarkClassicalPerSlot's 0 allocs/op — and it would fail with
	// the former O(arrivals) latency retention, whose slice doublings
	// land in the horizon-dependent delta.)
	run := func(horizon int64) func() {
		return func() {
			res := Run(Config{Horizon: horizon, Seed: 1,
				Medium: medium.NewClassical(medium.CDTernary)},
				baseline.NewGenieAloha(rng.New(2), 1), arrival.NewEvenPaced(0.25))
			if res.Delivered == 0 {
				t.Fatal("nothing delivered")
			}
		}
	}
	short := testing.AllocsPerRun(3, run(20_000))
	long := testing.AllocsPerRun(3, run(200_000))
	if perSlot := (long - short) / 180_000; perSlot > 0.01 {
		t.Fatalf("per-slot path allocates: %.4f allocs/slot (short %v, long %v)",
			perSlot, short, long)
	}
}

// TestChannelDetectorEquivalenceEndToEnd replays a full DBA run through
// the brute-force Definition 1 reference detector.
func TestChannelDetectorEquivalenceEndToEnd(t *testing.T) {
	const kappa = 8
	d := core.New(kappa, rng.New(21))
	fast := channel.New(kappa, 4*kappa)
	ref := channel.NewReference(kappa, 4*kappa)
	var nextID channel.PacketID
	buf := make([]channel.PacketID, 0, 64)
	for now := int64(0); now < 4000; now++ {
		if now%4 == 0 && now < 3000 {
			d.Inject(now, []channel.PacketID{nextID})
			nextID++
		}
		buf = d.Transmitters(now, buf[:0])
		fc, fe := fast.Step(now, buf)
		rc, re := ref.Step(now, buf)
		if fc != rc || (fe == nil) != (re == nil) {
			t.Fatalf("slot %d: detector divergence", now)
		}
		if fe != nil && fe.Size() != re.Size() {
			t.Fatalf("slot %d: event size %d vs %d", now, fe.Size(), re.Size())
		}
		d.Observe(channel.Feedback{Slot: now, Silent: fc == channel.Silent, Event: fe})
	}
}

func TestJammedRunConservation(t *testing.T) {
	res := Run(Config{Kappa: 16, Horizon: 5000, Drain: true, Seed: 31,
		Jammer: &jam.Random{Rate: 0.3}},
		core.New(16, rng.New(32)), &arrival.Bernoulli{Rate: 0.3})
	if res.Arrivals != res.Delivered+int64(res.Pending) {
		t.Fatalf("conservation violated under jamming: %d != %d + %d",
			res.Arrivals, res.Delivered, res.Pending)
	}
	if res.Channel.JammedSlots == 0 {
		t.Fatal("jammer never fired")
	}
	if res.Delivered == 0 {
		t.Fatal("nothing delivered under 30% jamming at load 0.3")
	}
}

// noWake hides a protocol's Waker implementation so the engine steps
// every slot instead of fast-forwarding idle stretches.
type noWake struct{ protocol.Protocol }

func TestJammerAlignedAcrossFastForward(t *testing.T) {
	// Jam decisions are slot-keyed, so a run must take the same jam
	// pattern — and deliver the same packets at the same times — whether
	// or not the engine fast-forwards through the protocol's idle
	// stretches.  (Slot-class accounting is excluded: a fast-forwarded
	// stretch is accounted silent by definition, while the stepped run
	// consults the jammer on those empty slots.)
	run := func(fastForward bool) *Result {
		var proto protocol.Protocol = baseline.NewExponentialBackoff(rng.New(91))
		if !fastForward {
			proto = noWake{proto}
		}
		// A batch at slot 0 makes everything after it a drain: BEB sleeps
		// between retries, so the fast run skips long stretches the slow
		// run steps one by one.
		return Run(Config{Kappa: 1, Horizon: 1, Drain: true, Seed: 92,
			Jammer: &jam.Random{Rate: 0.25}},
			proto, &arrival.Batch{At: 0, N: 8})
	}
	fast, slow := run(true), run(false)
	if fast.Delivered == 0 {
		t.Fatal("nothing delivered under jamming")
	}
	if fast.Delivered != slow.Delivered || fast.Elapsed != slow.Elapsed ||
		fast.MaxBacklog != slow.MaxBacklog ||
		fast.Latency.Mean() != slow.Latency.Mean() {
		t.Fatalf("jammer stream misaligned across fast-forwarding:\n  fast: %v\n  slow: %v", fast, slow)
	}
}

func TestAdaptiveJammerAlignedAcrossFastForward(t *testing.T) {
	// The adaptive reactive jammer carries feedback-driven state, so its
	// alignment across fast-forwarding rests on the adversary determinism
	// contract (armed windows keyed to slot numbers, gaps treated as
	// silence) rather than on slot-keyed randomness alone.  As with the
	// oblivious jammer above, a run must deliver the same packets at the
	// same times whether or not the engine skips the protocol's idle
	// stretches.
	run := func(fastForward bool) *Result {
		var proto protocol.Protocol = baseline.NewExponentialBackoff(rng.New(71))
		if !fastForward {
			proto = noWake{proto}
		}
		return Run(Config{Kappa: 1, Horizon: 1, Drain: true, Seed: 72,
			Adversary: adversary.NewReactive(1, 16)},
			proto, &arrival.Batch{At: 0, N: 8})
	}
	fast, slow := run(true), run(false)
	if fast.Delivered != 8 {
		t.Fatalf("delivered %d of 8 under the reactive jammer", fast.Delivered)
	}
	if fast.Delivered != slow.Delivered || fast.Elapsed != slow.Elapsed ||
		fast.MaxBacklog != slow.MaxBacklog ||
		fast.Latency.Mean() != slow.Latency.Mean() {
		t.Fatalf("adaptive jammer misaligned across fast-forwarding:\n  fast: %v\n  slow: %v", fast, slow)
	}
	if fast.Channel.JammedSlots == 0 {
		t.Fatal("reactive jammer never fired (collisions should have armed it)")
	}
	if fast.Medium != "coded+jam:reactive(1/16)" {
		t.Fatalf("medium name %q", fast.Medium)
	}
}

func TestSigmaRhoAdversaryMergesWithArrivals(t *testing.T) {
	// An arrival adversary composes with the benign process: the run
	// serves the union, conservation holds, and the σ burst lands at
	// slot 0 on top of the paced stream.
	base := arrival.NewEvenPaced(0.1)
	res := Run(Config{Kappa: 16, Horizon: 4000, Drain: true, Seed: 41,
		Adversary: &adversary.SigmaRho{Sigma: 64, Rho: 0.05}},
		core.New(16, rng.New(42)), base)
	// even 0.1 over 4000 slots = 400; sigmarho σ=64 + ρ·0.05 ≈ 64+200.
	if res.Arrivals < 600 || res.Arrivals > 700 {
		t.Fatalf("arrivals %d, want ≈ 664 (benign 400 + adversary ≈ 264)", res.Arrivals)
	}
	if res.Arrivals != res.Delivered+int64(res.Pending) {
		t.Fatalf("conservation violated: %d != %d + %d",
			res.Arrivals, res.Delivered, res.Pending)
	}
	if res.MaxBacklog < 64 {
		t.Fatalf("max backlog %d: the σ=64 front-loaded burst never landed", res.MaxBacklog)
	}
	if res.Arrival != "even(0.100)+sigmarho(64/0.050)" {
		t.Fatalf("arrival name %q", res.Arrival)
	}
}

func TestLegacyJammerAndAdversaryCompose(t *testing.T) {
	// Config.Jammer (legacy) and Config.Adversary stack: both spoil
	// slots, their randomness decorrelated by distinct salts, and the
	// medium name records the composition order.
	res := Run(Config{Kappa: 8, Horizon: 3000, Drain: true, Seed: 51,
		Jammer:    &jam.Random{Rate: 0.05},
		Adversary: &adversary.BurstGap{Burst: 20, Gap: 180}},
		core.New(8, rng.New(52)), &arrival.Bernoulli{Rate: 0.2})
	if res.Medium != "coded+jam:random(0.050)+jam:burst(20/180)" {
		t.Fatalf("medium name %q", res.Medium)
	}
	if res.Channel.JammedSlots == 0 {
		t.Fatal("no slot jammed by either layer")
	}
	if res.Arrivals != res.Delivered+int64(res.Pending) {
		t.Fatal("conservation violated under stacked jamming")
	}
}

func TestAdaptiveAdversaryRejectsLegacyJammerStack(t *testing.T) {
	// The legacy jammer spoils slots the engine skips as provably
	// silent, so an adaptive adversary over it cannot keep its
	// gap-equals-silence contract; Run must reject the combination
	// rather than silently produce fast-forward-dependent results.
	defer func() {
		if recover() == nil {
			t.Fatal("adaptive adversary over Config.Jammer was accepted")
		}
	}()
	Run(Config{Kappa: 8, Horizon: 100, Seed: 1,
		Jammer:    &jam.Random{Rate: 0.3},
		Adversary: adversary.NewReactive(2, 16)},
		core.New(8, rng.New(2)), &arrival.Batch{At: 0, N: 4})
}

func TestAdaptiveAdversaryRejectsSilenceMaskingMedium(t *testing.T) {
	// classical:none reports every idle stepped slot as busy, so an
	// adaptive adversary's gap-equals-silence rule cannot hold; Run must
	// reject the pairing (the sweep layer already skips it).
	defer func() {
		if recover() == nil {
			t.Fatal("adaptive adversary over classical:none was accepted")
		}
	}()
	Run(Config{Horizon: 100, Seed: 1,
		Medium:    medium.NewClassical(medium.CDNone),
		Adversary: adversary.NewReactive(2, 16)},
		baseline.NewExponentialBackoff(rng.New(2)), &arrival.Batch{At: 0, N: 4})
}

func TestAdaptiveAdversaryRejectsPreJammedMedium(t *testing.T) {
	// The guard inspects the composed medium, so a jammer baked into
	// Config.Medium (rather than Config.Jammer) is caught too.
	defer func() {
		if recover() == nil {
			t.Fatal("adaptive adversary over a pre-jammed medium was accepted")
		}
	}()
	inner := medium.NewCoded(8, 0)
	Run(Config{Horizon: 100, Seed: 1,
		Medium:    medium.Jam(inner, &jam.Random{Rate: 0.3}, 5),
		Adversary: adversary.NewReactive(2, 16)},
		baseline.NewExponentialBackoff(rng.New(2)), &arrival.Batch{At: 0, N: 4})
}
