package baseline

import (
	"math"
	"testing"

	"repro/internal/channel"
	"repro/internal/protocol"
	"repro/internal/rng"
)

// runBatch drives a protocol on a channel with a batch of n packets until
// done or the slot limit, returning completion time (-1 if unfinished)
// and the delivered count.
func runBatch(p protocol.Protocol, ch *channel.Channel, n int, limit int64) (int64, int) {
	ids := make([]channel.PacketID, n)
	for i := range ids {
		ids[i] = channel.PacketID(i)
	}
	p.Inject(0, ids)
	delivered := 0
	buf := make([]channel.PacketID, 0, 64)
	for now := int64(0); now < limit; now++ {
		buf = p.Transmitters(now, buf[:0])
		class, ev := ch.Step(now, buf)
		p.Observe(channel.Feedback{Slot: now, Silent: class == channel.Silent, Event: ev})
		if ev != nil {
			delivered += len(ev.Packets)
		}
		if p.Pending() == 0 {
			return now + 1, delivered
		}
	}
	return -1, delivered
}

func TestPopulationBasics(t *testing.T) {
	p := newPopulation(0.25, 2, 1)
	if p.Len() != 0 {
		t.Fatal("new population not empty")
	}
	p.Add(1)
	p.Add(2)
	if p.Len() != 2 {
		t.Fatalf("Len = %d", p.Len())
	}
	c, pmin := p.Contention()
	if math.Abs(c-0.5) > 1e-12 || math.Abs(pmin-0.25) > 1e-12 {
		t.Fatalf("contention %v pmin %v", c, pmin)
	}
	if !p.Remove(1) {
		t.Fatal("Remove(1) failed")
	}
	if p.Remove(1) {
		t.Fatal("double Remove succeeded")
	}
	if p.Len() != 1 {
		t.Fatalf("Len after remove = %d", p.Len())
	}
}

func TestPopulationDuplicatePanics(t *testing.T) {
	p := newPopulation(0.25, 2, 1)
	p.Add(1)
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Add did not panic")
		}
	}()
	p.Add(1)
}

func TestPopulationShiftAndCap(t *testing.T) {
	p := newPopulation(0.25, 2, 1)
	p.Add(1)
	p.Shift(1)
	c, _ := p.Contention()
	if math.Abs(c-0.5) > 1e-12 {
		t.Fatalf("after one up-shift contention %v, want 0.5", c)
	}
	p.Shift(1)
	if c, _ = p.Contention(); math.Abs(c-1) > 1e-12 {
		t.Fatalf("after two up-shifts contention %v, want 1 (capped)", c)
	}
	p.Shift(1) // capped: stays at 1
	if c, _ = p.Contention(); math.Abs(c-1) > 1e-12 {
		t.Fatalf("cap exceeded: contention %v", c)
	}
	p.Shift(-1)
	if c, _ = p.Contention(); math.Abs(c-0.5) > 1e-12 {
		t.Fatalf("down-shift after cap: contention %v, want 0.5", c)
	}
}

func TestPopulationCapMergesDistinctExponents(t *testing.T) {
	p := newPopulation(0.25, 2, 1)
	p.Add(1)   // exponent 0
	p.Shift(1) // packet 1 at exponent 1 (p=1/2)
	p.Add(2)   // packet 2 at exponent 0 (p=1/4)
	p.Shift(1) // p1 capped at 1, p2 at 1/2
	p.Shift(1) // p1 stays 1, p2 capped at 1
	c, pmin := p.Contention()
	if math.Abs(c-2) > 1e-12 || math.Abs(pmin-1) > 1e-12 {
		t.Fatalf("contention %v pmin %v, want 2, 1", c, pmin)
	}
	// One down-shift: both leave the cap together (they merged).
	p.Shift(-1)
	c, pmin = p.Contention()
	if math.Abs(c-1) > 1e-12 || math.Abs(pmin-0.5) > 1e-12 {
		t.Fatalf("after merge+down contention %v pmin %v, want 1, 0.5", c, pmin)
	}
}

func TestPopulationSampleMean(t *testing.T) {
	p := newPopulation(0.1, 2, 1)
	r := rng.New(4)
	for i := 0; i < 1000; i++ {
		p.Add(channel.PacketID(i))
	}
	total := 0
	const slots = 2000
	var buf []channel.PacketID
	for i := 0; i < slots; i++ {
		buf = p.Sample(r, buf[:0])
		total += len(buf)
	}
	mean := float64(total) / slots
	if math.Abs(mean-100) > 5 {
		t.Fatalf("sample mean %v, want ~100", mean)
	}
}

func TestPopulationValidation(t *testing.T) {
	for name, f := range map[string]func(){
		"p0 zero":    func() { newPopulation(0, 2, 1) },
		"factor one": func() { newPopulation(0.5, 1, 1) },
		"pmax zero":  func() { newPopulation(0.5, 2, 0) },
		"bad shift":  func() { newPopulation(0.5, 2, 1).Shift(2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestBEBBatchClassical(t *testing.T) {
	const n = 200
	e := NewExponentialBackoff(rng.New(1))
	ch := channel.New(1, 0) // classical radio model
	done, delivered := runBatch(e, ch, n, 200_000)
	if done < 0 {
		t.Fatalf("BEB did not finish %d packets (delivered %d)", n, delivered)
	}
	if delivered != n {
		t.Fatalf("delivered %d of %d", delivered, n)
	}
	st := e.Stats()
	if st.Delivered != n {
		t.Fatalf("stats delivered %d", st.Delivered)
	}
	// BEB takes Θ(n log n) on a batch; sanity: slower than capacity.
	if done < n {
		t.Fatalf("BEB finished faster than channel capacity: %d < %d", done, n)
	}
	t.Logf("BEB batch n=%d: %d slots (throughput %.3f), max window %d",
		n, done, float64(n)/float64(done), st.MaxWindow)
}

func TestBEBValidation(t *testing.T) {
	for name, f := range map[string]func(){
		"nil rng":  func() { NewExponentialBackoff(nil) },
		"window 0": func() { NewBackoff(rng.New(1), 0, 2) },
		"base 1":   func() { NewBackoff(rng.New(1), 1, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestBEBDuplicateInjectPanics(t *testing.T) {
	e := NewExponentialBackoff(rng.New(1))
	e.Inject(0, []channel.PacketID{1})
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate inject did not panic")
		}
	}()
	e.Inject(1, []channel.PacketID{1})
}

func TestBEBNextWake(t *testing.T) {
	e := NewExponentialBackoff(rng.New(2))
	if e.NextWake(0) != -1 {
		t.Fatal("empty BEB has a wake time")
	}
	e.Inject(0, []channel.PacketID{1})
	w := e.NextWake(0)
	if w != 1 {
		t.Fatalf("initial wake %d, want 1 (window 1)", w)
	}
}

func TestBEBSingletonDeliveredImmediately(t *testing.T) {
	e := NewExponentialBackoff(rng.New(3))
	ch := channel.New(1, 0)
	done, _ := runBatch(e, ch, 1, 100)
	if done < 0 || done > 3 {
		t.Fatalf("lone packet took %d slots", done)
	}
}

func TestAlohaStaticBatch(t *testing.T) {
	const n = 100
	a := NewSlottedAloha(rng.New(5), 1.0/n)
	ch := channel.New(1, 0)
	done, delivered := runBatch(a, ch, n, 100_000)
	if done < 0 {
		t.Fatalf("ALOHA did not finish (delivered %d)", delivered)
	}
	if delivered != n {
		t.Fatalf("delivered %d of %d", delivered, n)
	}
}

func TestGenieAlohaThroughputNearOneOverE(t *testing.T) {
	// With p = 1/backlog, success probability per slot is ~1/e while the
	// backlog is large.  Measure over the first half of a big batch.
	const n = 5000
	a := NewGenieAloha(rng.New(7), 1)
	ch := channel.New(1, 0)
	ids := make([]channel.PacketID, n)
	for i := range ids {
		ids[i] = channel.PacketID(i)
	}
	a.Inject(0, ids)
	buf := make([]channel.PacketID, 0, 64)
	var now int64
	for ; a.Pending() > n/2; now++ {
		buf = a.Transmitters(now, buf[:0])
		class, ev := ch.Step(now, buf)
		a.Observe(channel.Feedback{Slot: now, Silent: class == channel.Silent, Event: ev})
	}
	throughput := float64(n/2) / float64(now)
	if math.Abs(throughput-1/math.E) > 0.03 {
		t.Fatalf("genie ALOHA throughput %.4f, want ~%.4f", throughput, 1/math.E)
	}
}

func TestAlohaValidation(t *testing.T) {
	for name, f := range map[string]func(){
		"nil rng":   func() { NewSlottedAloha(nil, 0.5) },
		"p zero":    func() { NewSlottedAloha(rng.New(1), 0) },
		"p high":    func() { NewSlottedAloha(rng.New(1), 1.5) },
		"genie nil": func() { NewGenieAloha(nil, 1) },
		"genie c":   func() { NewGenieAloha(rng.New(1), 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestAlohaNames(t *testing.T) {
	if NewSlottedAloha(rng.New(1), 0.5).Name() != "slotted-aloha" {
		t.Fatal("static name wrong")
	}
	if NewGenieAloha(rng.New(1), 1).Name() != "genie-aloha" {
		t.Fatal("genie name wrong")
	}
}

func TestMWBatchClassical(t *testing.T) {
	const n = 300
	m := NewMultiplicativeWeights(rng.New(9), DefaultMWConfig())
	ch := channel.New(1, 0)
	done, delivered := runBatch(m, ch, n, 100_000)
	if done < 0 {
		t.Fatalf("MW did not finish (delivered %d)", delivered)
	}
	if delivered != n {
		t.Fatalf("delivered %d of %d", delivered, n)
	}
	st := m.Stats()
	if st.UpSteps == 0 || st.DownSteps == 0 {
		t.Fatalf("MW never adapted: %+v", st)
	}
	t.Logf("MW batch n=%d: %d slots (throughput %.3f)", n, done, float64(n)/float64(done))
}

func TestMWContentionTracksTarget(t *testing.T) {
	// Under sustained moderate load, MW should keep contention near 1
	// (its implicit target on the classical channel), not diverge.
	m := NewMultiplicativeWeights(rng.New(11), DefaultMWConfig())
	ch := channel.New(1, 0)
	buf := make([]channel.PacketID, 0, 16)
	var nextID channel.PacketID
	for now := int64(0); now < 20000; now++ {
		if now%5 == 0 { // load 0.2 << 1/e
			m.Inject(now, []channel.PacketID{nextID})
			nextID++
		}
		buf = m.Transmitters(now, buf[:0])
		class, ev := ch.Step(now, buf)
		m.Observe(channel.Feedback{Slot: now, Silent: class == channel.Silent, Event: ev})
	}
	if m.Pending() > 500 {
		t.Fatalf("MW diverged at load 0.2: backlog %d", m.Pending())
	}
}

func TestMWNilRngPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("nil rng did not panic")
		}
	}()
	NewMultiplicativeWeights(nil, DefaultMWConfig())
}

// TestProtocolsOnCodedChannel: all baselines remain correct (conservation
// and eventual completion) on a coded channel with κ > 1.
func TestProtocolsOnCodedChannel(t *testing.T) {
	const n, kappa = 150, 8
	protos := map[string]protocol.Protocol{
		"beb":   NewExponentialBackoff(rng.New(21)),
		"aloha": NewGenieAloha(rng.New(22), 1),
		"mw":    NewMultiplicativeWeights(rng.New(23), DefaultMWConfig()),
	}
	for name, p := range protos {
		ch := channel.New(kappa, 4*kappa)
		done, delivered := runBatch(p, ch, n, 300_000)
		if done < 0 {
			t.Fatalf("%s did not finish on coded channel (delivered %d)", name, delivered)
		}
		if delivered != n {
			t.Fatalf("%s delivered %d of %d", name, delivered, n)
		}
	}
}

func BenchmarkBEBBatch1k(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := NewExponentialBackoff(rng.New(uint64(i)))
		ch := channel.New(1, 0)
		if done, _ := runBatch(e, ch, 1000, 10_000_000); done < 0 {
			b.Fatal("unfinished")
		}
	}
}

func BenchmarkGenieAlohaBatch1k(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a := NewGenieAloha(rng.New(uint64(i)), 1)
		ch := channel.New(1, 0)
		if done, _ := runBatch(a, ch, 1000, 10_000_000); done < 0 {
			b.Fatal("unfinished")
		}
	}
}

func TestPolynomialBackoffBatch(t *testing.T) {
	const n = 150
	p := NewPolynomialBackoff(rng.New(41), 2)
	ch := channel.New(1, 0)
	done, delivered := runBatch(p, ch, n, 500_000)
	if done < 0 {
		t.Fatalf("polynomial backoff did not finish (delivered %d)", delivered)
	}
	if delivered != n {
		t.Fatalf("delivered %d of %d", delivered, n)
	}
	if p.Name() != "polynomial-backoff(2)" {
		t.Fatalf("name %q", p.Name())
	}
}

func TestPolynomialWindowGrowth(t *testing.T) {
	p := NewPolynomialBackoff(rng.New(1), 2)
	for _, tc := range []struct{ k, want int64 }{{0, 1}, {1, 4}, {2, 9}, {9, 100}} {
		if got := p.windowFn(tc.k); got != tc.want {
			t.Fatalf("windowFn(%d) = %d, want %d", tc.k, got, tc.want)
		}
	}
}

func TestPolynomialValidation(t *testing.T) {
	for name, f := range map[string]func(){
		"nil rng": func() { NewPolynomialBackoff(nil, 2) },
		"exp 0":   func() { NewPolynomialBackoff(rng.New(1), 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestExponentialWindowOverflowClamped(t *testing.T) {
	p := NewBackoff(rng.New(1), 1, 2)
	if w := p.windowFn(100); w != 1<<40 {
		t.Fatalf("window not clamped: %d", w)
	}
}
