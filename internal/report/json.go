package report

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// WriteJSON writes v as indented JSON followed by a newline — the
// machine-readable artifact format shared by the sweep and experiment
// harnesses.  Serialization is deterministic for deterministic inputs
// (encoding/json sorts map keys and struct fields keep source order).
func WriteJSON(w io.Writer, v interface{}) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return fmt.Errorf("report: %w", err)
	}
	data = append(data, '\n')
	if _, err := w.Write(data); err != nil {
		return fmt.Errorf("report: %w", err)
	}
	return nil
}

// SaveJSON writes v's JSON rendering to path, creating parent
// directories as needed.  The write is atomic (SaveFile), so an
// interrupted run never leaves a truncated artifact behind.
func SaveJSON(path string, v interface{}) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return fmt.Errorf("report: %w", err)
	}
	return SaveFile(path, append(data, '\n'))
}

// SaveFile writes data to path atomically: the bytes land in a
// temporary file in the same directory, which is renamed over path only
// after a complete write.  A reader (or a resumed run) therefore sees
// either the previous artifact or the new one, never a truncated mix —
// the invariant the sweep cache and resume layers are built on.  Parent
// directories are created as needed.
func SaveFile(path string, data []byte) error {
	dir := filepath.Dir(path)
	if dir != "." && dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return fmt.Errorf("report: %w", err)
		}
	}
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("report: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("report: %w", err)
	}
	// CreateTemp's 0600 would make artifacts unreadable to other users;
	// match the 0644 the non-atomic writers used (modulo umask).
	if err := tmp.Chmod(0o644); err != nil {
		tmp.Close()
		return fmt.Errorf("report: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("report: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("report: %w", err)
	}
	return nil
}
