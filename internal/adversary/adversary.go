// Package adversary is the simulator's first-class adversary layer:
// processes that listen to the channel and decide, slot by slot, how to
// disrupt the protocol — by jamming slots with noise or by injecting
// packets.  It unifies the two disruption channels the related
// literature studies separately: adaptive jamming that reacts to channel
// feedback (Jiang–Zheng, "Robust and Optimal Contention Resolution
// without Collision Detection") and (σ,ρ)-bounded bursty packet
// injection (Chen–Jiang–Zheng, "Tight Trade-off in Contention Resolution
// without Collision Detection").
//
// Every adversary implements Adversary: it observes the per-slot
// feedback devices hear (channel.Feedback, which the medium layer
// re-exports as medium.Feedback) and carries whatever state its
// strategy needs.  The two capability interfaces say what it does with
// that state: a Jammer spoils slots (composed over any channel model by
// medium.JamAdversary), an Injector produces packet arrivals (composed
// with any arrival process via Arrivals and arrival.Merge).
//
// # Determinism contract
//
// Simulations must replay identically from (Config, seed) and must not
// change when the engine fast-forwards provably idle stretches.  Two
// rules make adversaries compatible with both:
//
//  1. Randomized jam decisions are slot-keyed: the rng handed to Jams is
//     reseeded from (seed, slot) before every call, so a decision
//     depends only on the slot asked about, never on how many slots were
//     stepped before it.
//  2. Adaptive state must treat a gap in observed slots as silence.
//     Fast-forwarded slots are provably silent and are never observed;
//     an adversary whose Observe resets on fb.Slot gaps exactly as it
//     resets on observed silence behaves identically whether or not
//     those slots were stepped (see Reactive).
//
// Adversaries are stateful and not safe for concurrent use; construct
// one per run (or Reset between runs).
package adversary

import (
	"fmt"
	"math"

	"repro/internal/channel"
	"repro/internal/jam"
	"repro/internal/rng"
)

// Adversary is the common interface: a named, stateful process that
// hears the same per-slot feedback devices do.
type Adversary interface {
	// Name identifies the adversary in reports and artifacts.
	Name() string
	// Observe delivers the feedback of the most recently completed slot.
	// It is called once per stepped slot, in increasing slot order;
	// fast-forwarded idle stretches are not delivered (rule 2 above).
	// The Feedback's Event pointer is only valid during the call.
	Observe(fb channel.Feedback)
	// Reset returns the adversary to its initial state for reuse.
	Reset()
}

// Jammer is an adversary that spoils slots with noise energy.  Compose
// one over any channel model with medium.JamAdversary.
type Jammer interface {
	Adversary
	// Jams reports whether slot now is jammed.  Slots are asked about in
	// increasing order, before each slot's Observe, but the same slot may
	// be asked about more than once (the engine's fast-forward probes a
	// slot and may then step it fully).  The rng is reseeded from
	// (seed, now) before every call, so randomized decisions are
	// slot-keyed (rule 1 above) and repeated calls agree; implementations
	// must not mutate state in Jams.
	Jams(now int64, r *rng.Rand) bool
}

// Adaptive is the marker interface for adversaries whose disruption
// decisions depend on observed feedback (their Observe carries state).
// Implementations must follow determinism rule 2 above, and the sweep
// layer skips them on media whose feedback masks silence (the signal
// the rule is defined in terms of).  Every feedback-reactive adversary
// must declare itself by implementing the marker, or those protections
// silently lapse.
type Adaptive interface {
	Adversary
	// Adaptive marks the adversary as feedback-reactive.  It is never
	// called; implementing it is the declaration.
	Adaptive()
}

// Injector is an adversary that injects packets.  Adapt it to an
// arrival process with Arrivals and compose it with a benign process via
// arrival.Merge.
type Injector interface {
	Adversary
	// Injects returns how many packets arrive at slot now.  Like
	// arrival.Process, it is called once per stepped slot in increasing
	// order, and skipped stretches are guaranteed injection-free via
	// NextAfter.
	Injects(now int64, r *rng.Rand) int
	// NextAfter returns the smallest slot > now at which Injects may be
	// nonzero, or -1 if the adversary will never inject again.
	NextAfter(now int64) int64
}

// Random jams each slot independently with probability Rate — the
// oblivious baseline jammer.  It is jam.Random itself, carried onto
// the adversary interface by embedding, so the "jammers" and
// "adversaries" axes share one implementation and can never drift.
type Random struct {
	jam.Random
}

// validRandomRate is the single source of the random jammer's rate
// bound, shared by NewRandom (panicking) and Parse (error-returning);
// the ordered form rejects NaN, which would yield a silently inert
// jammer.
func validRandomRate(rate float64) bool { return rate >= 0 && rate <= 1 }

// NewRandom returns the oblivious random jammer with the given per-slot
// jamming probability in [0, 1].
func NewRandom(rate float64) *Random {
	if !validRandomRate(rate) {
		panic("adversary: Random needs a rate in [0, 1]")
	}
	return &Random{jam.Random{Rate: rate}}
}

// Observe implements Adversary: the random jammer is oblivious.
func (j *Random) Observe(channel.Feedback) {}

// Reset implements Adversary.
func (j *Random) Reset() {}

// Jams implements Jammer, delegating to jam.Random's decision.  It
// consumes only slot-keyed randomness, so it is invariant under
// fast-forwarding.
func (j *Random) Jams(now int64, r *rng.Rand) bool { return j.Jammed(now, r) }

// BurstGap is a duty-cycled jammer: it jams Burst consecutive slots,
// stays quiet for Gap slots, and repeats.  It is jam.Periodic in the
// (B, gap) parametrization the jamming literature uses: average rate
// B/(B+gap), with all the energy concentrated in bursts — bursts longer
// than a decoding epoch reliably forge overfull epochs, which the same
// average rate spread randomly almost never does.
type BurstGap struct {
	Burst int64
	Gap   int64
}

// validBurstGap is the single source of BurstGap's parameter bounds,
// shared by NewBurstGap (panicking) and Parse (error-returning).  The
// MaxSlotParam caps keep the period arithmetic from overflowing into a
// silently inert jammer.
func validBurstGap(burst, gap int64) bool {
	return burst >= 1 && burst <= MaxSlotParam && gap >= 0 && gap <= MaxSlotParam
}

// NewBurstGap returns a duty-cycled jammer: burst jammed slots (≥ 1),
// gap clean slots (≥ 0), repeating; both capped at MaxSlotParam.
func NewBurstGap(burst, gap int64) *BurstGap {
	if !validBurstGap(burst, gap) {
		panic("adversary: BurstGap needs 1 ≤ burst ≤ MaxSlotParam and 0 ≤ gap ≤ MaxSlotParam")
	}
	return &BurstGap{Burst: burst, Gap: gap}
}

// Name implements Adversary.
func (j *BurstGap) Name() string { return fmt.Sprintf("burst(%d/%d)", j.Burst, j.Gap) }

// Observe implements Adversary: the duty cycle is oblivious.
func (j *BurstGap) Observe(channel.Feedback) {}

// Reset implements Adversary.
func (j *BurstGap) Reset() {}

// Jams implements Jammer.  The decision is a pure function of the slot
// number, so it is trivially slot-keyed.
func (j *BurstGap) Jams(now int64, _ *rng.Rand) bool {
	period := j.Burst + j.Gap
	if period <= 0 {
		return false
	}
	return now%period < j.Burst
}

// Reactive is the adaptive jammer: it watches for a decoding window
// filling up — Trigger consecutive audibly-busy slots with no decoding
// event, i.e. near-decode feedback — and then jams the next Burst slots,
// stretching the window toward the protocol's timeout and spoiling the
// decode it was about to earn.  Against Decodable Backoff this attacks
// the κ-slot epoch timeout directly: a burst placed after κ−1 good slots
// wastes the whole epoch, where the same energy spent obliviously mostly
// hits idle or already-doomed slots.
//
// Reactive follows the package's determinism contract: arming depends
// only on observed feedback, the armed window is keyed to slot numbers
// (never to a count of observed slots), a gap in observed slots resets
// the busy run exactly as observed silence does, and the jammer's own
// noise — audibly busy to everyone, including itself — never re-triggers
// the attack.
type Reactive struct {
	// Trigger is how many consecutive busy, event-free slots arm the
	// jammer (≥ 1).
	Trigger int64
	// Burst is how many slots are jammed once armed (≥ 1).
	Burst int64

	run        int64 // consecutive busy, event-free slots observed
	lastSlot   int64 // last observed slot, -1 initially
	armedUntil int64 // jam every slot < armedUntil
}

// validReactive is the single source of Reactive's parameter bounds,
// shared by NewReactive (panicking) and Parse (error-returning).  The
// MaxSlotParam caps keep the armed-window arithmetic (slot + 1 + burst)
// from overflowing into a silently inert jammer.
func validReactive(trigger, burst int64) bool {
	return trigger >= 1 && trigger <= MaxSlotParam && burst >= 1 && burst <= MaxSlotParam
}

// NewReactive returns an adaptive reactive jammer that arms after
// trigger consecutive busy event-free slots and then jams burst slots;
// both capped at MaxSlotParam.
func NewReactive(trigger, burst int64) *Reactive {
	if !validReactive(trigger, burst) {
		panic("adversary: Reactive needs 1 ≤ trigger ≤ MaxSlotParam and 1 ≤ burst ≤ MaxSlotParam")
	}
	r := &Reactive{Trigger: trigger, Burst: burst}
	r.Reset()
	return r
}

// Name implements Adversary.
func (j *Reactive) Name() string { return fmt.Sprintf("reactive(%d/%d)", j.Trigger, j.Burst) }

// Adaptive marks Reactive as feedback-reactive.
func (j *Reactive) Adaptive() {}

var _ Adaptive = (*Reactive)(nil)

// Reset implements Adversary.
func (j *Reactive) Reset() {
	j.run = 0
	j.lastSlot = -1
	j.armedUntil = 0
}

// Observe implements Adversary; this is where the adaptive state lives.
func (j *Reactive) Observe(fb channel.Feedback) {
	// A gap in observed slots was a fast-forwarded provably idle stretch:
	// had those slots been stepped they would have been silent, so the
	// gap resets the busy run exactly as observed silence does (the
	// package's determinism rule 2).
	if fb.Slot > j.lastSlot+1 {
		j.run = 0
	}
	j.lastSlot = fb.Slot
	if fb.Slot < j.armedUntil {
		// Our own jamming noise: audibly busy, but it must not count
		// toward re-arming or the attack would self-sustain forever.
		j.run = 0
		return
	}
	if fb.Silent || fb.Event != nil {
		// Silence breaks the run; a decoding event means the window
		// closed and the protocol banked the decode — too late to spoil.
		j.run = 0
		return
	}
	j.run++
	if j.run >= j.Trigger {
		// Near-decode: jam the Burst slots after the observed one.  The
		// window is keyed to slot numbers, so Jams decisions stay aligned
		// regardless of stepping.
		j.armedUntil = fb.Slot + 1 + j.Burst
		j.run = 0
	}
}

// Jams implements Jammer: deterministically jam while armed.
func (j *Reactive) Jams(now int64, _ *rng.Rand) bool { return now < j.armedUntil }

// SigmaRho is the (σ,ρ)-bounded arrival adversary of the bursty-arrival
// literature: over any prefix of t slots it may inject at most σ + ρ·t
// packets — a burst allowance σ on top of a long-run rate ρ — and this
// implementation is the greedy worst case, injecting every packet the
// budget admits as early as possible.  That front-loading maximizes the
// instantaneous backlog a protocol must absorb: σ packets land in slot 0
// and a ρ-paced stream follows.
type SigmaRho struct {
	// Sigma is the burst allowance (≥ 0).
	Sigma int64
	// Rho is the sustained injection rate (≥ 0 packets per slot).
	Rho float64

	injected int64 // packets injected so far
}

// MaxRho bounds the sustained (σ,ρ) injection rate: large enough for
// any meaningful workload (a million packets per slot), small enough
// that the budget arithmetic σ + ρ·t cannot overflow over simulable
// horizons.
const MaxRho = 1e6

// MaxSlotParam bounds slot-count and packet-count adversary parameters
// (burst/gap lengths, σ): 2^40 slots dwarfs any simulable horizon while
// keeping every derived sum comfortably inside int64.
const MaxSlotParam = 1 << 40

// validSigmaRho is the single source of SigmaRho's parameter bounds,
// shared by NewSigmaRho (panicking) and Parse (error-returning).  The
// ordered comparisons reject NaN (which passes every negated range
// check), and the caps keep the budget arithmetic overflow-free.
func validSigmaRho(sigma int64, rho float64) bool {
	return sigma >= 0 && sigma <= MaxSlotParam &&
		rho >= 0 && rho <= MaxRho && !(sigma == 0 && rho == 0)
}

// NewSigmaRho returns the (σ,ρ)-bounded front-loading arrival
// adversary.  Both parameters must be non-negative (σ ≤ MaxSlotParam,
// ρ ≤ MaxRho, NaN rejected) and not both zero (the all-zero budget
// never injects).
func NewSigmaRho(sigma int64, rho float64) *SigmaRho {
	if !validSigmaRho(sigma, rho) {
		panic("adversary: SigmaRho needs 0 ≤ sigma ≤ MaxSlotParam and 0 ≤ rho ≤ MaxRho, not both 0")
	}
	return &SigmaRho{Sigma: sigma, Rho: rho}
}

// Name implements Adversary.
func (s *SigmaRho) Name() string { return fmt.Sprintf("sigmarho(%d/%.3f)", s.Sigma, s.Rho) }

// Observe implements Adversary: the greedy schedule is oblivious (the
// budget, not the channel, is the binding constraint).
func (s *SigmaRho) Observe(channel.Feedback) {}

// Reset implements Adversary.
func (s *SigmaRho) Reset() { s.injected = 0 }

// budget returns the cumulative injection allowance through slot now:
// ⌊σ + ρ·(now+1)⌋.
func (s *SigmaRho) budget(now int64) int64 {
	return s.Sigma + int64(s.Rho*float64(now+1))
}

// Injects implements Injector: greedily spend the whole available
// budget.  The count at slot t depends only on t and the budget already
// spent, so skipped injection-free stretches cannot change the schedule.
func (s *SigmaRho) Injects(now int64, _ *rng.Rand) int {
	n := s.budget(now) - s.injected
	if n <= 0 {
		return 0
	}
	s.injected += n
	return int(n)
}

// NextAfter implements Injector: the next slot at which the budget
// crosses the next integer.
func (s *SigmaRho) NextAfter(now int64) int64 {
	if s.budget(now) > s.injected {
		return now + 1 // backlog of budget to spend immediately
	}
	if s.Rho <= 0 {
		return -1 // σ exhausted and no sustained rate
	}
	// Smallest t+1 with ρ·(t+1) ≥ injected+1−σ.  If the target slot is
	// beyond the representable range (ρ pathologically small), the next
	// injection is unreachable in any simulable horizon: report no
	// further arrivals rather than scanning forever.
	need := float64(s.injected+1-s.Sigma) / s.Rho
	if need >= math.MaxInt64/4 {
		return -1
	}
	// Start a nudge early — returning a slot early is harmless (Injects
	// yields 0), late would skip a due injection — and repair float
	// truncation with a short upward scan.
	t := int64(need) - 2
	if t < now {
		t = now
	}
	for s.budget(t+1) <= s.injected {
		t++
	}
	return t + 1
}

// legacy adapts a jam.Jammer onto the adversary interface, so the
// pre-existing jammers (and sim.Config.Jammer) ride through the same
// composition path as first-class adversaries.
type legacy struct{ j jam.Jammer }

// FromJam wraps a package-jam jammer as an (oblivious) adversary Jammer.
// A nil jammer yields a nil Jammer.
func FromJam(j jam.Jammer) Jammer {
	if j == nil {
		return nil
	}
	return legacy{j}
}

// Name implements Adversary.
func (l legacy) Name() string { return l.j.Name() }

// Observe implements Adversary: package-jam jammers are oblivious.
func (l legacy) Observe(channel.Feedback) {}

// Reset implements Adversary: package-jam jammers are stateless.
func (l legacy) Reset() {}

// Jams implements Jammer.
func (l legacy) Jams(now int64, r *rng.Rand) bool { return l.j.Jammed(now, r) }
