package experiments

import (
	"fmt"

	"repro/internal/asciiplot"
	"repro/internal/channel"
	"repro/internal/core"
	"repro/internal/potential"
	"repro/internal/protocol"
	"repro/internal/report"
	"repro/internal/rng"
	"repro/internal/stats"
)

// E6Potential traces the paper's potential function Φ(t) (Section 4)
// through a real execution and checks the drift lemmas empirically:
//
//   - Lemma 5: each arrival raises Φ by exactly 1 + 5/ln κ;
//   - Lemma 9: every non-error epoch of length ℓ with i arrivals lowers
//     Φ by at least ℓ(1−1/κ) − i(1+5/ln κ) − 2;
//   - Lemma 8: an error epoch raises Φ by at most κ+2+i(1+5/ln κ).
//
// The harness drives a burst-then-drain workload, evaluates Φ from the
// protocol's live state at every epoch boundary, and counts violations
// (expected: zero, up to floating-point slack).
func E6Potential(scale Scale, seed uint64) *Output {
	out := &Output{
		ID:    "E6",
		Title: "potential-function drift across epochs",
		Claim: "Φ falls ≥ ℓ(1−1/κ)−i(1+5/lnκ)−2 per non-error epoch; rises ≤ κ+2+i(1+5/lnκ) per error epoch",
	}
	const kappa = 64
	burst := scale.pick(2000, 10000)
	horizon := int64(scale.pick(30000, 120000))

	r := rng.New(seed ^ 0xE6)
	ch := channel.New(kappa, 4*kappa)

	type epochDelta struct {
		info    protocol.EpochInfo
		phiPrev float64
		phiNow  float64
		arrived int
	}
	var deltas []epochDelta
	var phiPrev float64
	arrivedThisEpoch := 0

	var d *core.DecodableBackoff
	observer := protocol.EpochObserverFunc(func(info protocol.EpochInfo) {
		n, m, c, pmin := d.Snapshot()
		phi := potential.Compute(kappa, n, m, c, pmin).Total()
		deltas = append(deltas, epochDelta{info: info, phiPrev: phiPrev, phiNow: phi, arrived: arrivedThisEpoch})
		phiPrev = phi
		arrivedThisEpoch = 0
	})
	d = core.New(kappa, rng.New(seed^0x66), core.WithEpochObserver(observer))

	trace := stats.NewSeries(1024)
	var nextID channel.PacketID
	buf := make([]channel.PacketID, 0, 256)
	for now := int64(0); now < horizon; now++ {
		// Arrivals: one big burst at t=0, trickle until horizon/2.
		inject := 0
		if now == 0 {
			inject = burst
		} else if now < horizon/2 && r.Bernoulli(0.5) {
			inject = 1
		}
		if inject > 0 {
			ids := make([]channel.PacketID, inject)
			for i := range ids {
				ids[i] = nextID
				nextID++
			}
			d.Inject(now, ids)
			arrivedThisEpoch += inject
		}
		buf = d.Transmitters(now, buf[:0])
		class, ev := ch.Step(now, buf)
		d.Observe(channel.Feedback{Slot: now, Silent: class == channel.Silent, Event: ev})
		n, m, c, pmin := d.Snapshot()
		trace.Add(now, potential.Compute(kappa, n, m, c, pmin).Total())
		if d.Pending() == 0 && now > horizon/2 {
			break
		}
	}

	arrivalUp := potential.ArrivalIncrease(kappa)
	const slack = 1e-6
	var nonError, errorEpochs, violations int
	var worstShortfall float64
	for _, ed := range deltas {
		delta := ed.phiNow - ed.phiPrev
		allowance := float64(ed.arrived) * arrivalUp
		if ed.info.Error {
			errorEpochs++
			if delta > potential.ErrorEpochIncrease(kappa)+allowance+slack {
				violations++
			}
			continue
		}
		nonError++
		required := potential.NonErrorEpochDecrease(kappa, ed.info.Length) - allowance - 2
		if shortfall := required - (-delta); shortfall > slack {
			violations++
			if shortfall > worstShortfall {
				worstShortfall = shortfall
			}
		}
	}

	tbl := report.NewTable("Drift-lemma audit over one execution",
		"kappa", "epochs", "non-error", "error", "violations", "worst shortfall", "lemmas hold")
	tbl.AddRow(kappa, len(deltas), nonError, errorEpochs, violations, worstShortfall,
		boolMark(violations == 0))
	out.Tables = append(out.Tables, tbl)

	// Arrival-increase identity check (Lemma 5) straight from the
	// component algebra.
	idTbl := report.NewTable("Lemma 5 identity: per-arrival potential increase",
		"kappa", "1+5/lnκ", "measured (component algebra)")
	for _, k := range []int{16, 64, 256, 1024} {
		before := potential.Compute(k, 10, 3, 5, 0.25).Total()
		after := potential.Compute(k, 11, 4, 5, 0.25).Total()
		idTbl.AddRow(k, potential.ArrivalIncrease(k), after-before)
	}
	out.Tables = append(out.Tables, idTbl)

	plot := asciiplot.Plot{
		Title:  fmt.Sprintf("Φ(t) under a %d-packet burst then trickle (κ=%d)", burst, kappa),
		XLabel: "slot", YLabel: "potential Φ",
		Width: 64, Height: 14,
	}
	xs := make([]float64, trace.Len())
	for i := range xs {
		xs[i] = float64(trace.T[i])
	}
	plot.Add(asciiplot.Series{Name: "Φ", X: xs, Y: trace.V})
	out.Plots = append(out.Plots, plot.Render())
	out.Notes = append(out.Notes,
		"Φ computed from the protocol's live state (N, M, contention, p_min) at every epoch end",
		fmt.Sprintf("drain slope ≈ −(1−1/κ) = %.4f per slot while Φ > 6κ, as Lemma 9 predicts", -(1-1/float64(kappa))))
	return out
}
