package linalg

import (
	"testing"
	"testing/quick"

	"repro/internal/gf256"
	"repro/internal/rng"
)

func randomBitMatrix(r *rng.Rand, rows, cols int) *BitMatrix {
	m := NewBitMatrix(rows, cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			m.Set(i, j, r.Uint64()&1 == 1)
		}
	}
	return m
}

func randomMatrix(r *rng.Rand, rows, cols int) *Matrix {
	m := NewMatrix(rows, cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			m.Set(i, j, byte(r.Uint64()))
		}
	}
	return m
}

func TestBitMatrixGetSet(t *testing.T) {
	m := NewBitMatrix(3, 70) // spans two words per row
	m.Set(0, 0, true)
	m.Set(2, 69, true)
	m.Set(1, 64, true)
	if !m.Get(0, 0) || !m.Get(2, 69) || !m.Get(1, 64) {
		t.Fatal("set bits not readable")
	}
	if m.Get(0, 1) || m.Get(1, 63) {
		t.Fatal("unset bits read as set")
	}
	m.Set(2, 69, false)
	if m.Get(2, 69) {
		t.Fatal("clearing a bit failed")
	}
}

func TestBitMatrixOutOfRangePanics(t *testing.T) {
	m := NewBitMatrix(2, 2)
	for _, f := range []func(){
		func() { m.Get(2, 0) },
		func() { m.Get(0, 2) },
		func() { m.Set(-1, 0, true) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("out-of-range access did not panic")
				}
			}()
			f()
		}()
	}
}

func TestIdentityBitRankAndInverse(t *testing.T) {
	for _, n := range []int{1, 2, 10, 65} {
		id := IdentityBit(n)
		if id.Rank() != n {
			t.Fatalf("identity rank %d != %d", id.Rank(), n)
		}
		inv, err := id.Inverse()
		if err != nil {
			t.Fatal(err)
		}
		if !inv.Equal(id) {
			t.Fatalf("identity inverse is not identity (n=%d)", n)
		}
	}
}

func TestBitInverseRoundTrip(t *testing.T) {
	r := rng.New(101)
	tried, inverted := 0, 0
	for trial := 0; trial < 50; trial++ {
		n := 1 + r.Intn(40)
		m := randomBitMatrix(r, n, n)
		tried++
		inv, err := m.Inverse()
		if err != nil {
			if m.Rank() == n {
				t.Fatalf("full-rank matrix reported singular (n=%d)", n)
			}
			continue
		}
		inverted++
		if prod := MulBit(m, inv); !prod.Equal(IdentityBit(n)) {
			t.Fatalf("m·m^-1 != I over GF(2), n=%d", n)
		}
		if prod := MulBit(inv, m); !prod.Equal(IdentityBit(n)) {
			t.Fatalf("m^-1·m != I over GF(2), n=%d", n)
		}
	}
	if inverted == 0 {
		t.Fatalf("no random matrix was invertible in %d tries (suspicious)", tried)
	}
}

func TestBitRankProperties(t *testing.T) {
	r := rng.New(5)
	for trial := 0; trial < 30; trial++ {
		rows, cols := 1+r.Intn(20), 1+r.Intn(20)
		m := randomBitMatrix(r, rows, cols)
		rk := m.Rank()
		if rk < 0 || rk > rows || rk > cols {
			t.Fatalf("rank %d out of bounds for %dx%d", rk, rows, cols)
		}
		// Duplicating a row cannot increase rank.
		if rows >= 2 {
			dup := m.Clone()
			for j := 0; j < cols; j++ {
				dup.Set(rows-1, j, dup.Get(0, j))
			}
			if dup.Rank() > rk {
				t.Fatalf("duplicated row increased rank: %d > %d", dup.Rank(), rk)
			}
		}
	}
}

func TestZeroBitMatrix(t *testing.T) {
	m := NewBitMatrix(4, 4)
	if m.Rank() != 0 {
		t.Fatalf("zero matrix rank %d", m.Rank())
	}
	if m.Invertible() {
		t.Fatal("zero matrix reported invertible")
	}
	if _, err := m.Inverse(); err == nil {
		t.Fatal("zero matrix inverse did not error")
	}
}

func TestMulBitIdentity(t *testing.T) {
	r := rng.New(7)
	m := randomBitMatrix(r, 9, 13)
	if !MulBit(IdentityBit(9), m).Equal(m) {
		t.Fatal("I·m != m")
	}
	if !MulBit(m, IdentityBit(13)).Equal(m) {
		t.Fatal("m·I != m")
	}
}

func TestPopCount(t *testing.T) {
	m := NewBitMatrix(3, 100)
	if m.PopCount() != 0 {
		t.Fatal("empty popcount nonzero")
	}
	m.Set(0, 0, true)
	m.Set(1, 99, true)
	m.Set(2, 64, true)
	if m.PopCount() != 3 {
		t.Fatalf("popcount %d, want 3", m.PopCount())
	}
}

func TestBitString(t *testing.T) {
	m := NewBitMatrix(2, 3)
	m.Set(0, 1, true)
	m.Set(1, 2, true)
	if got, want := m.String(), "010\n001\n"; got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
}

func TestGF256IdentityAndMul(t *testing.T) {
	r := rng.New(11)
	m := randomMatrix(r, 6, 8)
	if !Mul(Identity(6), m).Equal(m) {
		t.Fatal("I·m != m over GF(2^8)")
	}
	if !Mul(m, Identity(8)).Equal(m) {
		t.Fatal("m·I != m over GF(2^8)")
	}
}

func TestGF256InverseRoundTrip(t *testing.T) {
	r := rng.New(13)
	inverted := 0
	for trial := 0; trial < 40; trial++ {
		n := 1 + r.Intn(24)
		m := randomMatrix(r, n, n)
		inv, err := m.Inverse()
		if err != nil {
			if m.Rank() == n {
				t.Fatalf("full-rank GF(2^8) matrix reported singular")
			}
			continue
		}
		inverted++
		if !Mul(m, inv).Equal(Identity(n)) {
			t.Fatalf("m·m^-1 != I over GF(2^8), n=%d", n)
		}
		if !Mul(inv, m).Equal(Identity(n)) {
			t.Fatalf("m^-1·m != I over GF(2^8), n=%d", n)
		}
	}
	// Random GF(256) square matrices are invertible w.p. ~0.996.
	if inverted < 30 {
		t.Fatalf("only %d/40 random GF(2^8) matrices invertible (expected ~40)", inverted)
	}
}

func TestGF256MulVecMatchesMul(t *testing.T) {
	r := rng.New(17)
	f := func(seed uint64) bool {
		rr := rng.New(seed)
		rows, cols := 1+rr.Intn(10), 1+rr.Intn(10)
		m := randomMatrix(rr, rows, cols)
		x := make([]byte, cols)
		for i := range x {
			x[i] = byte(rr.Uint64())
		}
		got := m.MulVec(x)
		// Compare against m · column-matrix(x).
		xm := NewMatrix(cols, 1)
		for i, v := range x {
			xm.Set(i, 0, v)
		}
		want := Mul(m, xm)
		for i := range got {
			if got[i] != want.Get(i, 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100, Rand: nil}); err != nil {
		t.Fatal(err)
	}
	_ = r
}

func TestGF256Solve(t *testing.T) {
	r := rng.New(19)
	for trial := 0; trial < 20; trial++ {
		n := 1 + r.Intn(16)
		m := randomMatrix(r, n, n)
		if !m.Invertible() {
			continue
		}
		x := make([]byte, n)
		for i := range x {
			x[i] = byte(r.Uint64())
		}
		b := m.MulVec(x)
		got, err := m.Solve(b)
		if err != nil {
			t.Fatal(err)
		}
		for i := range x {
			if got[i] != x[i] {
				t.Fatalf("Solve mismatch at %d: got %d want %d", i, got[i], x[i])
			}
		}
	}
}

func TestGF256SolveErrors(t *testing.T) {
	m := NewMatrix(2, 3)
	if _, err := m.Solve([]byte{1, 2}); err == nil {
		t.Fatal("non-square Solve did not error")
	}
	sq := NewMatrix(2, 2)
	if _, err := sq.Solve([]byte{1}); err == nil {
		t.Fatal("mismatched rhs Solve did not error")
	}
	if _, err := sq.Solve([]byte{1, 2}); err == nil {
		t.Fatal("singular Solve did not error")
	}
}

func TestGF256RankScaleInvariant(t *testing.T) {
	r := rng.New(23)
	m := randomMatrix(r, 8, 8)
	rk := m.Rank()
	scaled := m.Clone()
	gf256.ScaleSlice(scaled.Row(3), 77)
	if scaled.Rank() != rk {
		t.Fatalf("scaling a row by a nonzero constant changed rank: %d -> %d", rk, scaled.Rank())
	}
}

func BenchmarkBitRank64(b *testing.B) {
	r := rng.New(1)
	m := randomBitMatrix(r, 64, 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = m.Rank()
	}
}

func BenchmarkGF256Inverse32(b *testing.B) {
	r := rng.New(1)
	m := randomMatrix(r, 32, 32)
	for !m.Invertible() {
		m = randomMatrix(r, 32, 32)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := m.Inverse(); err != nil {
			b.Fatal(err)
		}
	}
}
