package potential

import (
	"math"
	"testing"
	"testing/quick"
)

func TestEmptySystemZeroPotential(t *testing.T) {
	c := Compute(64, 0, 0, 0, 1)
	if c.Total() != 0 {
		t.Fatalf("empty system potential %v", c.Total())
	}
}

func TestPotentialUpperBoundsPackets(t *testing.T) {
	// Φ(t) >= N_t always (all terms non-negative).
	f := func(n, m uint16, cRaw, pRaw uint16) bool {
		kappa := 64
		c := float64(cRaw) / 100
		pMin := math.Max(1e-9, float64(pRaw)/65535)
		comp := Compute(kappa, int(n), int(m), c, pMin)
		if comp.LogC < 0 || comp.S < 0 || comp.U < 0 {
			return false
		}
		return comp.Total() >= float64(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestLogCBelowTarget(t *testing.T) {
	// Contention below c* contributes zero.
	for _, c := range []float64{0, 1, 7.9} {
		comp := Compute(64, 10, 0, c, 1) // c* = 8
		if comp.LogC != 0 {
			t.Fatalf("LogC(%v) = %v, want 0", c, comp.LogC)
		}
	}
}

func TestLogCAboveTarget(t *testing.T) {
	// At c = κ (contention = kappa), log_κ(κ/√κ) = 1/2, so LogC = 2κ.
	comp := Compute(64, 0, 0, 64, 1)
	if math.Abs(comp.LogC-128) > 1e-9 {
		t.Fatalf("LogC at c=κ: %v, want 128", comp.LogC)
	}
}

func TestSTermSteps(t *testing.T) {
	// p_min = κ^(-1/2) gives S = 4·log_κ(κ^(1/2)) = 2.
	comp := Compute(64, 0, 0, 0, 1/math.Sqrt(64))
	if math.Abs(comp.S-2) > 1e-9 {
		t.Fatalf("S at p=κ^-1/2: %v, want 2", comp.S)
	}
	// Each overfull epoch divides p_min by κ^(1/4): S increases by 1.
	comp2 := Compute(64, 0, 0, 0, 1/math.Sqrt(64)/math.Pow(64, 0.25))
	if math.Abs(comp2.S-3) > 1e-9 {
		t.Fatalf("S after one overfull: %v, want 3", comp2.S)
	}
}

func TestSTermPminOne(t *testing.T) {
	comp := Compute(64, 5, 0, 1, 1)
	if comp.S != 0 {
		t.Fatalf("S with pmin=1: %v", comp.S)
	}
}

func TestUTerm(t *testing.T) {
	comp := Compute(64, 10, 10, 0, 1)
	want := 5 * 10 / math.Log(64)
	if math.Abs(comp.U-want) > 1e-9 {
		t.Fatalf("U = %v, want %v", comp.U, want)
	}
}

func TestArrivalIncreaseMatchesComponents(t *testing.T) {
	// One inactive arrival raises N by 1 and U by 5/ln κ: exactly
	// ArrivalIncrease (Lemma 5).
	kappa := 256
	before := Compute(kappa, 10, 3, 5, 0.25)
	after := Compute(kappa, 11, 4, 5, 0.25)
	if got, want := after.Total()-before.Total(), ArrivalIncrease(kappa); math.Abs(got-want) > 1e-9 {
		t.Fatalf("arrival increase %v, want %v", got, want)
	}
}

func TestSilentEpochLogCIncrease(t *testing.T) {
	// Lemma 8: a silent error epoch multiplies contention by κ^(1/4),
	// raising LogC by exactly κ (when already above target).
	kappa := 64
	c0 := 3 * math.Sqrt(float64(kappa)) // above target
	before := Compute(kappa, 0, 0, c0, 1)
	after := Compute(kappa, 0, 0, c0*math.Pow(float64(kappa), 0.25), 1)
	if got := after.LogC - before.LogC; math.Abs(got-float64(kappa)) > 1e-9 {
		t.Fatalf("silent epoch LogC increase %v, want %v", got, float64(kappa))
	}
}

func TestOverfullEpochLogCDecrease(t *testing.T) {
	// An overfull epoch divides contention by κ^(1/4): LogC falls by κ
	// (while still above target).
	kappa := 64
	c0 := 10 * math.Sqrt(float64(kappa))
	before := Compute(kappa, 0, 0, c0, 1)
	after := Compute(kappa, 0, 0, c0/math.Pow(float64(kappa), 0.25), 1)
	if got := before.LogC - after.LogC; math.Abs(got-float64(kappa)) > 1e-9 {
		t.Fatalf("overfull epoch LogC decrease %v, want %v", got, float64(kappa))
	}
}

func TestTheoremRate(t *testing.T) {
	if TheoremRate(148) > 0 {
		t.Fatal("rate should be vacuous at κ=148")
	}
	if r := TheoremRate(1024); r <= 0 || r >= 1 {
		t.Fatalf("rate at κ=1024: %v", r)
	}
	// Monotone increasing in κ.
	if TheoremRate(4096) <= TheoremRate(1024) {
		t.Fatal("rate not increasing in κ")
	}
}

func TestTheoremMinWindow(t *testing.T) {
	if TheoremMinWindow(64) != 16*64*64 {
		t.Fatalf("min window %d", TheoremMinWindow(64))
	}
}

func TestEpochDeltas(t *testing.T) {
	if got := NonErrorEpochDecrease(64, 64); math.Abs(got-63) > 1e-9 {
		t.Fatalf("non-error decrease %v", got)
	}
	if got := ErrorEpochIncrease(64); got != 66 {
		t.Fatalf("error increase %v", got)
	}
}
