package baseline

import (
	"repro/internal/channel"
	"repro/internal/protocol"
	"repro/internal/rng"
)

// MWStats aggregates counters for a multiplicative-weights execution.
type MWStats struct {
	Transmissions int64
	Delivered     int64
	UpSteps       int64
	DownSteps     int64
}

// MultiplicativeWeights is a Chang–Jin–Pettie-style contention-resolution
// protocol (SOSA 2019): every pending packet transmits each slot with its
// probability p_i; after a silent slot all probabilities rise by a factor
// (1+ε); after a busy slot with no delivery they fall by (1+ε); after a
// delivery they stay.  On the classical channel (κ = 1, ternary feedback
// silent/success/collision) this is the published algorithm shape, whose
// throughput approaches 1/e − O(ε).
//
// Feedback adaptation for the coded channel: devices cannot detect
// collisions, so "busy slot with no delivery" (neither silence nor a
// decoding event) stands in for collision.  With κ = 1 the two coincide
// exactly, because every good slot fires an immediate size-1 event.
type MultiplicativeWeights struct {
	rand  *rng.Rand
	pop   *population
	stats MWStats
	sent  []channel.PacketID // scratch: this slot's transmitters
}

var _ protocol.Protocol = (*MultiplicativeWeights)(nil)

// MWConfig parametrizes the multiplicative-weights protocol.
type MWConfig struct {
	// Epsilon is the update step; probabilities move by factor (1+Epsilon).
	// Smaller values approach the 1/e bound more closely but adapt slower.
	Epsilon float64
	// P0 is the probability a packet starts with on arrival.
	P0 float64
	// PMax caps the per-packet probability.
	PMax float64
}

// DefaultMWConfig returns the parameters used by the comparison harness.
func DefaultMWConfig() MWConfig {
	return MWConfig{Epsilon: 0.1, P0: 1.0 / 8, PMax: 1.0 / 2}
}

// NewMultiplicativeWeights returns the protocol with the given
// parameters.
func NewMultiplicativeWeights(r *rng.Rand, cfg MWConfig) *MultiplicativeWeights {
	if r == nil {
		panic("baseline: nil rng")
	}
	return &MultiplicativeWeights{
		rand: r,
		pop:  newPopulation(cfg.P0, 1+cfg.Epsilon, cfg.PMax),
	}
}

// Name implements protocol.Protocol.
func (m *MultiplicativeWeights) Name() string { return "multiplicative-weights" }

// Stats returns a copy of the accumulated counters.
func (m *MultiplicativeWeights) Stats() MWStats { return m.stats }

// Pending implements protocol.Protocol.
func (m *MultiplicativeWeights) Pending() int { return m.pop.Len() }

// Contention returns the sum of transmission probabilities (diagnostic).
func (m *MultiplicativeWeights) Contention() float64 {
	c, _ := m.pop.Contention()
	return c
}

// Inject implements protocol.Protocol.
func (m *MultiplicativeWeights) Inject(now int64, ids []channel.PacketID) {
	for _, id := range ids {
		m.pop.Add(id)
	}
}

// Transmitters implements protocol.Protocol.
func (m *MultiplicativeWeights) Transmitters(now int64, buf []channel.PacketID) []channel.PacketID {
	buf = m.pop.Sample(m.rand, buf)
	m.sent = append(m.sent[:0], buf...)
	m.stats.Transmissions += int64(len(buf))
	return buf
}

// Observe implements protocol.Protocol.
func (m *MultiplicativeWeights) Observe(fb channel.Feedback) {
	if fb.Event != nil {
		for _, id := range fb.Event.Packets {
			if m.pop.Remove(id) {
				m.stats.Delivered++
			}
		}
		return // probabilities unchanged on success
	}
	if m.pop.Len() == 0 {
		return // idle system: nothing to adapt
	}
	if fb.Silent {
		m.pop.Shift(1)
		m.stats.UpSteps++
	} else {
		m.pop.Shift(-1)
		m.stats.DownSteps++
	}
}
