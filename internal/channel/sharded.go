package channel

import "fmt"

// FanOut schedules n independent tasks f(0)..f(n-1) and returns when
// all have finished.  The staged simulation engine passes its worker
// pool here; a nil FanOut means "run inline, in order".  The tasks it
// receives are data-disjoint, so any schedule (including fully serial)
// produces the same result.
type FanOut func(n int, f func(int))

func inlineFan(n int, f func(int)) {
	for i := 0; i < n; i++ {
		f(i)
	}
}

// dupShards is the number of ID shards the parallel duplicate check
// partitions into.  A power of two so the shard of an ID is a mask.
const dupShards = 16

// ShardedDup validates that a transmitter list delivered as ordered
// chunks names pairwise-distinct packets, with the O(transmitters)
// work split into data-parallel partials.  It is the pre-reduce half
// of the coded channel's Step: on large bad slots the scan over every
// transmitter is the only O(n) cost, and it has no sequential
// dependency, so it fans out while the (tiny) event check stays
// serial.
//
// Two stages, each an independent task set for the FanOut:
//
//  1. partition — one task per chunk buckets that chunk's IDs by
//     ID shard (id mod dupShards), preserving chunk order;
//  2. validate — one task per shard concatenates its buckets in chunk
//     order and checks that subsequence for duplicates, reusing a
//     per-shard previous-slot cache and sort scratch.
//
// Equal IDs always land in the same shard, so per-shard validation is
// exhaustive.  Findings are recorded, never raised, inside tasks; the
// serial merge scans shards in index order, so which duplicate a
// protocol bug panics on is identical at every worker count.  The
// zero value is ready to use.
type ShardedDup struct {
	parts   [][]PacketID          // chunk-major partition buffers: parts[chunk*dupShards+shard]
	subs    [dupShards][]PacketID // per-shard concatenated subsequence
	prev    [dupShards][]PacketID // per-shard last validated subsequence
	scratch [dupShards][]PacketID // per-shard sort scratch
	dupID   [dupShards]PacketID
	dupOK   [dupShards]bool

	// Stage state and bound stage funcs, so Check hands fan the same two
	// closures every slot instead of allocating fresh ones.
	chunks      [][]PacketID
	nc          int
	slab        []PacketID // one backing array carved into the partition buckets
	bcap        int        // per-bucket capacity within the slab
	partitionFn func(int)
	validateFn  func(int)
}

// Check panics (with the given prefix, matching the serial checkers'
// message) if the concatenation of chunks contains a duplicate packet
// ID.  fan schedules the partial scans; nil runs them inline.
func (d *ShardedDup) Check(prefix string, chunks [][]PacketID, fan FanOut) {
	total := 0
	for _, ch := range chunks {
		total += len(ch)
	}
	if total < 2 {
		return
	}
	if fan == nil {
		fan = inlineFan
	}
	if d.partitionFn == nil {
		d.partitionFn = d.partition
		d.validateFn = d.validate
	}
	d.chunks, d.nc = chunks, len(chunks)
	for len(d.parts) < d.nc*dupShards {
		d.parts = append(d.parts, nil)
	}
	// Size the shared slab the partition buckets are carved from: one
	// bucket capacity covering the largest chunk spread ~evenly over the
	// shards.  Growing the slab is one allocation, not a per-bucket
	// doubling ladder; skewed chunks still grow individual buckets
	// organically past the carve.
	maxLen := 0
	for _, ch := range chunks {
		if len(ch) > maxLen {
			maxLen = len(ch)
		}
	}
	d.bcap = maxLen/dupShards + 4
	if need := d.nc * dupShards * d.bcap; cap(d.slab) < need {
		d.slab = make([]PacketID, need)
	}
	fan(d.nc, d.partitionFn)
	fan(dupShards, d.validateFn)
	d.chunks = nil
	for s := 0; s < dupShards; s++ {
		if d.dupOK[s] {
			panic(fmt.Sprintf("%s: packet %d transmitted twice in one slot", prefix, d.dupID[s]))
		}
	}
}

// partition is stage 1, one task per chunk: bucket chunk i's IDs by ID
// shard, preserving chunk order.
func (d *ShardedDup) partition(i int) {
	base := i * dupShards
	// Carve this chunk's buckets from the shared slab: disjoint regions,
	// so concurrent partition tasks never touch the same memory.  The
	// three-index slice pins each bucket's capacity to its region; an
	// append past it copies the bucket out of the slab (skewed chunks)
	// rather than clobbering a neighbour.
	off := base * d.bcap
	for s := 0; s < dupShards; s++ {
		lo := off + s*d.bcap
		d.parts[base+s] = d.slab[lo : lo : lo+d.bcap]
	}
	for _, id := range d.chunks[i] {
		s := base + int(uint64(id)&(dupShards-1))
		d.parts[s] = append(d.parts[s], id)
	}
}

// validate is stage 2, one task per ID shard: concatenate shard s's
// buckets in chunk order and scan the subsequence for duplicates.
func (d *ShardedDup) validate(s int) {
	d.dupOK[s] = false
	n := 0
	for i := 0; i < d.nc; i++ {
		n += len(d.parts[i*dupShards+s])
	}
	sub := d.subs[s]
	if cap(sub) < n {
		sub = make([]PacketID, 0, n)
	}
	sub = sub[:0]
	for i := 0; i < d.nc; i++ {
		sub = append(sub, d.parts[i*dupShards+s]...)
	}
	d.subs[s] = sub
	if len(sub) < 2 || sameIDs(sub, d.prev[s]) {
		return
	}
	if id, found := findDup(sub, &d.scratch[s]); found {
		d.dupID[s], d.dupOK[s] = id, true
		return
	}
	d.prev[s] = append(d.prev[s][:0], sub...)
}

// Reset drops the previous-slot caches (storage is kept).
func (d *ShardedDup) Reset() {
	for s := range d.prev {
		d.prev[s] = d.prev[s][:0]
		d.dupOK[s] = false
	}
}
