package baseline

import "repro/internal/protocol"

// Registry entries for the classical baselines.  AlohaP defaulting
// lives with the callers (sweep, CLIs); builders take Params verbatim.
func init() {
	protocol.Register(protocol.Info{
		Name:    "beb",
		Summary: "binary exponential backoff (Ethernet/802.11 style window doubling)",
		Build: func(p protocol.Params) protocol.Protocol {
			return NewExponentialBackoff(p.Rand)
		},
	})
	protocol.Register(protocol.Info{
		Name:    "aloha",
		Summary: "slotted ALOHA with a static transmission probability",
		Build: func(p protocol.Params) protocol.Protocol {
			return NewSlottedAloha(p.Rand, p.AlohaP)
		},
	})
	protocol.Register(protocol.Info{
		Name:    "genie",
		Summary: "genie-aided ALOHA transmitting at the backlog-optimal rate",
		Build: func(p protocol.Params) protocol.Protocol {
			return NewGenieAloha(p.Rand, 1)
		},
	})
	protocol.Register(protocol.Info{
		Name:    "mw",
		Summary: "multiplicative-weights probability adaptation from channel feedback",
		Build: func(p protocol.Params) protocol.Protocol {
			return NewMultiplicativeWeights(p.Rand, DefaultMWConfig())
		},
	})
}
