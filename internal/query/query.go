// Package query is the analytics layer over the sweep subsystem's
// content-addressed artifacts: it loads completed cells from any source
// that holds them — a grid JSON, a committed benchmark artifact
// (BENCH_sweep.json), a cell-cache directory, or a live crnserve
// backend — into one uniform shape, filters them by scenario
// coordinates, and diffs them across runs and commits.  Reports render
// as deterministic markdown or CSV: cells are sorted by key, floats use
// shortest-exact formatting, and nothing host- or time-dependent is
// emitted, so the same inputs always produce the same bytes and reports
// are diffable artifacts themselves.
package query

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"

	"repro/internal/cache"
	"repro/internal/cache/httpstore"
	"repro/internal/sweep"
)

// Cell is the query layer's uniform view of one completed grid cell:
// its scenario coordinates plus the headline metrics every source
// carries.  Sources differ in fidelity — grids and cell stores carry
// full summaries (trial counts, p50), the committed bench artifact only
// the headline means — so Trials is 0 and LatencyP50 NaN when the
// source lacks them.
type Cell struct {
	sweep.Scenario
	Trials      int
	Throughput  float64
	MaxBacklog  float64
	LatencyP50  float64
	LatencyP99  float64
	ErrorEpochs int64
}

// Set is a loaded collection of cells, sorted by key and unique per
// key — one run's (or one artifact's) view of a grid.
type Set struct {
	// Label names the source (the path or URL it was loaded from).
	Label string
	// Kind is "grid", "bench", or "store".
	Kind string
	// Cells is sorted by Scenario key.
	Cells []Cell
	// Skipped counts store records that were corrupt, foreign, or minted
	// under another schema version and therefore excluded.
	Skipped int
}

// fromSummary converts a sweep cell summary.
func fromSummary(cs *sweep.CellSummary) Cell {
	return Cell{
		Scenario:    cs.Scenario,
		Trials:      cs.Trials,
		Throughput:  cs.Throughput.Mean,
		MaxBacklog:  cs.MaxBacklog.Mean,
		LatencyP50:  cs.LatencyP50.Mean,
		LatencyP99:  cs.LatencyP99.Mean,
		ErrorEpochs: cs.ErrorEpochs,
	}
}

// FromGrid views a completed sweep grid as a Set.
func FromGrid(g *sweep.Grid, label string) *Set {
	s := &Set{Label: label, Kind: "grid", Cells: make([]Cell, 0, len(g.Cells))}
	for i := range g.Cells {
		s.Cells = append(s.Cells, fromSummary(&g.Cells[i]))
	}
	s.sort()
	return s
}

// FromBench views a committed benchmark artifact (BENCH_sweep.json) as
// a Set.  Bench cells carry only headline means; their keys decode back
// into scenario coordinates via ParseKey.
func FromBench(b *sweep.BenchArtifact, label string) (*Set, error) {
	s := &Set{Label: label, Kind: "bench", Cells: make([]Cell, 0, len(b.Cells))}
	for i := range b.Cells {
		bc := &b.Cells[i]
		sc, err := ParseKey(bc.Key)
		if err != nil {
			return nil, fmt.Errorf("query: %s: %w", label, err)
		}
		s.Cells = append(s.Cells, Cell{
			Scenario:    sc,
			LatencyP50:  math.NaN(),
			Throughput:  bc.Throughput,
			MaxBacklog:  bc.MaxBacklog,
			LatencyP99:  bc.LatencyP99,
			ErrorEpochs: bc.ErrorEpochs,
		})
	}
	s.sort()
	return s, nil
}

// FromBackend loads every valid cell record from a cache backend (a
// local store directory or an httpstore client).  Records that are
// corrupt, foreign, or from another schema version are counted in
// Skipped, mirroring the executor's treat-damage-as-miss rule.  Two
// records with the same scenario key but different identities mean the
// store holds cells from more than one spec (different horizons, seeds,
// or trial counts) — that is an error, because a Set must be one
// grid's view; query such stores through their grid artifacts instead.
func FromBackend(b cache.Backend, label string) (*Set, error) {
	ids, err := b.List()
	if err != nil {
		return nil, fmt.Errorf("query: %s: %w", label, err)
	}
	s := &Set{Label: label, Kind: "store"}
	byKey := make(map[string]string, len(ids)) // key → id that claimed it
	for _, id := range ids {
		var rec sweep.CellRecord
		ok, err := b.Get(id, &rec)
		if err != nil {
			return nil, fmt.Errorf("query: %s: %w", label, err)
		}
		if !ok || rec.SchemaVersion != sweep.SchemaVersion || rec.ID != id || rec.Key != rec.Cell.Key() {
			s.Skipped++
			continue
		}
		if prev, dup := byKey[rec.Key]; dup {
			return nil, fmt.Errorf("query: %s holds two records for cell %s (%.12s… and %.12s…): the store mixes specs; query a grid artifact instead",
				label, rec.Key, prev, id)
		}
		byKey[rec.Key] = id
		s.Cells = append(s.Cells, fromSummary(&rec.Cell))
	}
	s.sort()
	return s, nil
}

// Load reads a Set from any supported source, by shape: an http(s) URL
// is a crnserve backend, a directory is a cell store, a JSON file with
// a "spec" field is a grid artifact, and one without is a benchmark
// artifact.
func Load(path string) (*Set, error) {
	if strings.HasPrefix(path, "http://") || strings.HasPrefix(path, "https://") {
		client, err := httpstore.NewClient(path)
		if err != nil {
			return nil, fmt.Errorf("query: %w", err)
		}
		return FromBackend(client, path)
	}
	fi, err := os.Stat(path)
	if err != nil {
		return nil, fmt.Errorf("query: %w", err)
	}
	if fi.IsDir() {
		store, err := cache.Open(path)
		if err != nil {
			return nil, fmt.Errorf("query: %w", err)
		}
		return FromBackend(store, path)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("query: %w", err)
	}
	var probe struct {
		Spec  *json.RawMessage `json:"spec"`
		Cells *json.RawMessage `json:"cells"`
	}
	if err := json.Unmarshal(data, &probe); err != nil {
		return nil, fmt.Errorf("query: %s is not a JSON artifact: %v", path, err)
	}
	if probe.Cells == nil {
		return nil, fmt.Errorf("query: %s has no cells (want a sweep grid, a BENCH_sweep artifact, a cell-store directory, or a crnserve URL)", path)
	}
	if probe.Spec != nil {
		var g sweep.Grid
		if err := json.Unmarshal(data, &g); err != nil {
			return nil, fmt.Errorf("query: %s: bad grid artifact: %v", path, err)
		}
		return FromGrid(&g, path), nil
	}
	var b sweep.BenchArtifact
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("query: %s: bad benchmark artifact: %v", path, err)
	}
	return FromBench(&b, path)
}

func (s *Set) sort() {
	sort.Slice(s.Cells, func(i, j int) bool { return s.Cells[i].Key() < s.Cells[j].Key() })
}

// ParseKey decodes a scenario key ("model/protocol/arrival/k=K/rate=R/
// jam=J/adv=A") back into its coordinates.  Jammer and adversary
// descriptors may themselves contain slashes (periodic:16/4,
// reactive:4/48), so the tail is re-joined around the jam=/adv=
// markers rather than split positionally.
func ParseKey(key string) (sweep.Scenario, error) {
	var sc sweep.Scenario
	parts := strings.Split(key, "/")
	if len(parts) < 7 {
		return sc, fmt.Errorf("malformed cell key %q", key)
	}
	sc.Model, sc.Protocol, sc.Arrival = parts[0], parts[1], parts[2]
	if !strings.HasPrefix(parts[3], "k=") || !strings.HasPrefix(parts[4], "rate=") || !strings.HasPrefix(parts[5], "jam=") {
		return sc, fmt.Errorf("malformed cell key %q", key)
	}
	k, err := strconv.Atoi(parts[3][len("k="):])
	if err != nil {
		return sc, fmt.Errorf("malformed cell key %q: bad kappa: %v", key, err)
	}
	sc.Kappa = k
	rate, err := strconv.ParseFloat(parts[4][len("rate="):], 64)
	if err != nil {
		return sc, fmt.Errorf("malformed cell key %q: bad rate: %v", key, err)
	}
	sc.Rate = rate
	advAt := -1
	for i := 6; i < len(parts); i++ {
		if strings.HasPrefix(parts[i], "adv=") {
			advAt = i
			break
		}
	}
	if advAt < 0 {
		return sc, fmt.Errorf("malformed cell key %q: no adversary coordinate", key)
	}
	sc.Jammer = strings.TrimPrefix(strings.Join(parts[5:advAt], "/"), "jam=")
	sc.Adversary = strings.TrimPrefix(strings.Join(parts[advAt:], "/"), "adv=")
	if sc.Jammer == "" || sc.Adversary == "" {
		return sc, fmt.Errorf("malformed cell key %q", key)
	}
	return sc, nil
}

// Selector filters cells by scenario coordinates.  Parse one from
// "field=value" pairs; an empty selector matches everything.
type Selector []selectorTerm

type selectorTerm struct{ field, value string }

// selectorFields names the filterable coordinates.
var selectorFields = []string{"model", "protocol", "arrival", "kappa", "rate", "jammer", "adversary"}

// ParseSelector decodes a comma-separated "field=value,..." filter,
// e.g. "protocol=dba,kappa=8".  Fields are the scenario coordinates;
// values must match exactly (rates compare numerically, so 0.30
// matches 0.3).
func ParseSelector(expr string) (Selector, error) {
	var sel Selector
	for _, part := range strings.Split(expr, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		eq := strings.IndexByte(part, '=')
		if eq <= 0 {
			return nil, fmt.Errorf("query: bad selector term %q (want field=value)", part)
		}
		field, value := part[:eq], part[eq+1:]
		known := false
		for _, f := range selectorFields {
			known = known || f == field
		}
		if !known {
			return nil, fmt.Errorf("query: unknown selector field %q (want one of %s)", field, strings.Join(selectorFields, ", "))
		}
		if field == "kappa" {
			if _, err := strconv.Atoi(value); err != nil {
				return nil, fmt.Errorf("query: bad kappa %q in selector", value)
			}
		}
		if field == "rate" {
			if _, err := strconv.ParseFloat(value, 64); err != nil {
				return nil, fmt.Errorf("query: bad rate %q in selector", value)
			}
		}
		sel = append(sel, selectorTerm{field, value})
	}
	return sel, nil
}

// Match reports whether a cell satisfies every selector term.
func (sel Selector) Match(c *Cell) bool {
	for _, term := range sel {
		var got string
		switch term.field {
		case "model":
			got = c.Model
		case "protocol":
			got = c.Protocol
		case "arrival":
			got = c.Arrival
		case "kappa":
			got = strconv.Itoa(c.Kappa)
		case "rate":
			want, _ := strconv.ParseFloat(term.value, 64)
			if c.Rate != want {
				return false
			}
			continue
		case "jammer":
			got = c.Jammer
		case "adversary":
			got = c.Adversary
		}
		if got != term.value {
			return false
		}
	}
	return true
}

// Filter returns the subset of the Set the selector matches, preserving
// order (and therefore determinism).
func (s *Set) Filter(sel Selector) *Set {
	if len(sel) == 0 {
		return s
	}
	out := &Set{Label: s.Label, Kind: s.Kind, Skipped: s.Skipped}
	for i := range s.Cells {
		if sel.Match(&s.Cells[i]) {
			out.Cells = append(out.Cells, s.Cells[i])
		}
	}
	return out
}

// fmtFloat renders a float with shortest-exact formatting ('g', -1),
// the same byte-stable rendering two loads of the same artifact agree
// on.  NaN (a metric the source does not carry) renders as a dash.
func fmtFloat(v float64) string {
	if math.IsNaN(v) {
		return "-"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
