package core

import (
	"math"
	"testing"

	"repro/internal/channel"
	"repro/internal/protocol"
	"repro/internal/rng"
)

// drive runs the protocol against a real channel for the given number of
// slots, injecting per the inject function (slot -> count), and returns
// the set of delivered packets.
func drive(t *testing.T, d *DecodableBackoff, ch *channel.Channel, slots int64,
	inject func(now int64) int) map[channel.PacketID]bool {
	t.Helper()
	delivered := make(map[channel.PacketID]bool)
	var nextID channel.PacketID
	buf := make([]channel.PacketID, 0, 64)
	idBuf := make([]channel.PacketID, 0, 16)
	for now := int64(0); now < slots; now++ {
		if inject != nil {
			n := inject(now)
			idBuf = idBuf[:0]
			for i := 0; i < n; i++ {
				idBuf = append(idBuf, nextID)
				nextID++
			}
			if len(idBuf) > 0 {
				d.Inject(now, idBuf)
			}
		}
		buf = d.Transmitters(now, buf[:0])
		class, ev := ch.Step(now, buf)
		d.Observe(channel.Feedback{Slot: now, Silent: class == channel.Silent, Event: ev})
		if ev != nil {
			for _, id := range ev.Packets {
				if delivered[id] {
					t.Fatalf("packet %d delivered twice", id)
				}
				delivered[id] = true
			}
		}
	}
	return delivered
}

func TestNewValidation(t *testing.T) {
	for name, f := range map[string]func(){
		"kappa too small": func() { New(5, rng.New(1)) },
		"nil rng":         func() { New(8, nil) },
		"bad factor":      func() { New(8, rng.New(1), WithUpdateFactor(1)) },
		"bad p0 low":      func() { New(8, rng.New(1), WithInitialProb(0)) },
		"bad p0 high":     func() { New(8, rng.New(1), WithInitialProb(1.5)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestDuplicateInjectPanics(t *testing.T) {
	d := New(16, rng.New(1))
	d.Inject(0, []channel.PacketID{1})
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate inject did not panic")
		}
	}()
	d.Inject(1, []channel.PacketID{1})
}

// TestBatchCompletes: a batch of n packets is fully delivered, each
// exactly once, and conservation holds.
func TestBatchCompletes(t *testing.T) {
	const kappa, n = 16, 500
	d := New(kappa, rng.New(42))
	ch := channel.New(kappa, 4*kappa)
	delivered := drive(t, d, ch, 4*n, func(now int64) int {
		if now == 0 {
			return n
		}
		return 0
	})
	if len(delivered) != n {
		t.Fatalf("delivered %d of %d packets", len(delivered), n)
	}
	if d.Pending() != 0 {
		t.Fatalf("%d packets stuck in system", d.Pending())
	}
	if got := d.Stats().Delivered; got != n {
		t.Fatalf("stats.Delivered = %d, want %d", got, n)
	}
}

// TestBatchThroughputBound: Theorem 16 — a batch of n packets completes
// by n(1+10/κ)+O(κ).  We check the measured completion time against the
// theorem bound with a generous O(κ) constant.
func TestBatchThroughputBound(t *testing.T) {
	const kappa, n = 64, 2000
	d := New(kappa, rng.New(7))
	ch := channel.New(kappa, 4*kappa)
	var completion int64 = -1
	var nextID channel.PacketID
	buf := make([]channel.PacketID, 0, 128)
	remaining := n
	for now := int64(0); now < 4*n; now++ {
		if now == 0 {
			ids := make([]channel.PacketID, n)
			for i := range ids {
				ids[i] = nextID
				nextID++
			}
			d.Inject(0, ids)
		}
		buf = d.Transmitters(now, buf[:0])
		class, ev := ch.Step(now, buf)
		d.Observe(channel.Feedback{Slot: now, Silent: class == channel.Silent, Event: ev})
		if ev != nil {
			remaining -= len(ev.Packets)
			if remaining == 0 {
				completion = now + 1
				break
			}
		}
	}
	if completion < 0 {
		t.Fatal("batch did not complete in 4n slots")
	}
	bound := float64(n)*(1+10/float64(kappa)) + 20*float64(kappa)
	if float64(completion) > bound {
		t.Fatalf("completion %d exceeds Theorem 16 bound %v", completion, bound)
	}
	if completion < n {
		t.Fatalf("completion %d < n=%d violates channel capacity", completion, n)
	}
	t.Logf("batch n=%d kappa=%d: completion %d slots (throughput %.3f)",
		n, kappa, completion, float64(n)/float64(completion))
}

// TestLemma2Correspondence: every epoch classified by the protocol
// matches the channel's independent view — successful epochs coincide
// exactly with decoding events delivering the epoch's joiners, overfull
// epochs have length kappa, silent epochs length 1.
func TestLemma2Correspondence(t *testing.T) {
	const kappa = 8
	var infos []protocol.EpochInfo
	d := New(kappa, rng.New(11), WithEpochObserver(
		protocol.EpochObserverFunc(func(info protocol.EpochInfo) { infos = append(infos, info) })))
	ch := channel.New(kappa, 4*kappa)
	drive(t, d, ch, 3000, func(now int64) int {
		if now%3 == 0 && now < 2400 {
			return 1
		}
		return 0
	})
	if len(infos) == 0 {
		t.Fatal("no epochs observed")
	}
	seenKinds := make(map[protocol.EpochKind]int)
	for i, info := range infos {
		seenKinds[info.Kind]++
		switch info.Kind {
		case protocol.EpochSilent:
			if info.Length != 1 {
				t.Fatalf("epoch %d: silent epoch length %d", i, info.Length)
			}
			if info.Joiners != 0 {
				t.Fatalf("epoch %d: silent epoch with %d joiners", i, info.Joiners)
			}
		case protocol.EpochSuccessful:
			if int64(info.Joiners) != info.Length {
				t.Fatalf("epoch %d: successful epoch length %d != joiners %d (Lemma 2)",
					i, info.Length, info.Joiners)
			}
			if info.Joiners > kappa {
				t.Fatalf("epoch %d: successful epoch with %d > kappa joiners", i, info.Joiners)
			}
		case protocol.EpochOverfull:
			if info.Length != kappa {
				t.Fatalf("epoch %d: overfull epoch length %d != kappa", i, info.Length)
			}
			if info.Joiners <= kappa {
				t.Fatalf("epoch %d: overfull epoch with only %d joiners", i, info.Joiners)
			}
		}
	}
	if seenKinds[protocol.EpochSuccessful] == 0 {
		t.Fatal("workload produced no successful epochs")
	}
	if seenKinds[protocol.EpochSilent] == 0 {
		t.Fatal("workload produced no silent epochs")
	}
}

// TestConservation: injected = delivered + pending at all times, under a
// bursty arrival pattern.
func TestConservation(t *testing.T) {
	const kappa = 16
	d := New(kappa, rng.New(13))
	ch := channel.New(kappa, 4*kappa)
	injected := 0
	var deliveredCount int
	var nextID channel.PacketID
	buf := make([]channel.PacketID, 0, 64)
	for now := int64(0); now < 5000; now++ {
		if now%100 == 0 && now < 4000 {
			ids := make([]channel.PacketID, 30)
			for i := range ids {
				ids[i] = nextID
				nextID++
			}
			d.Inject(now, ids)
			injected += 30
		}
		buf = d.Transmitters(now, buf[:0])
		class, ev := ch.Step(now, buf)
		d.Observe(channel.Feedback{Slot: now, Silent: class == channel.Silent, Event: ev})
		if ev != nil {
			deliveredCount += len(ev.Packets)
		}
		if injected != deliveredCount+d.Pending() {
			t.Fatalf("slot %d: conservation violated: injected %d != delivered %d + pending %d",
				now, injected, deliveredCount, d.Pending())
		}
	}
	if deliveredCount == 0 {
		t.Fatal("nothing delivered")
	}
}

// TestAdmissionControl: packets injected mid-epoch stay inactive until a
// silent slot.
func TestAdmissionControl(t *testing.T) {
	const kappa = 16
	d := New(kappa, rng.New(3))
	// Inject while no epoch has run: packets are inactive.
	d.Inject(0, []channel.PacketID{1, 2, 3})
	n, m, c, pmin := d.Snapshot()
	if n != 3 || m != 3 {
		t.Fatalf("snapshot N=%d M=%d, want 3 inactive", n, m)
	}
	if c != 0 {
		t.Fatalf("inactive packets contribute contention %v", c)
	}
	if pmin != 1 {
		t.Fatalf("pmin with no active packets = %v, want 1", pmin)
	}
	// First slot: nobody transmits (all inactive) -> silent -> activation.
	buf := d.Transmitters(0, nil)
	if len(buf) != 0 {
		t.Fatalf("inactive packets transmitted: %v", buf)
	}
	d.Observe(channel.Feedback{Slot: 0, Silent: true})
	n, m, c, pmin = d.Snapshot()
	if m != 0 {
		t.Fatalf("inactive after silent slot: %d", m)
	}
	if n != 3 {
		t.Fatalf("N changed on activation: %d", n)
	}
	wantP := 1 / math.Sqrt(kappa)
	if math.Abs(c-3*wantP) > 1e-12 {
		t.Fatalf("contention after activation = %v, want %v", c, 3*wantP)
	}
	if math.Abs(pmin-wantP) > 1e-12 {
		t.Fatalf("pmin after activation = %v, want %v", pmin, wantP)
	}
	if d.Stats().Activations != 3 {
		t.Fatalf("activations = %d", d.Stats().Activations)
	}
}

// TestNoAdmissionControlActivatesImmediately checks the ablation option.
func TestNoAdmissionControlActivatesImmediately(t *testing.T) {
	d := New(16, rng.New(3), WithoutAdmissionControl())
	d.Inject(0, []channel.PacketID{1, 2})
	_, m, c, _ := d.Snapshot()
	if m != 0 {
		t.Fatalf("inactive count %d with admission control disabled", m)
	}
	if c == 0 {
		t.Fatal("no contention after immediate activation")
	}
}

// TestProbabilityUpdates: silent epochs raise probabilities by the factor
// (capped at 1), overfull epochs lower them.
func TestProbabilityUpdates(t *testing.T) {
	const kappa = 16 // factor = 2, p0 = 1/4, cap after 2 raises
	d := New(kappa, rng.New(5))
	d.Inject(0, []channel.PacketID{1})
	// Slot 0: silent (packet inactive) -> activate at p0 = 1/4.
	d.Transmitters(0, nil)
	d.Observe(channel.Feedback{Slot: 0, Silent: true})
	_, _, c, _ := d.Snapshot()
	if math.Abs(c-0.25) > 1e-12 {
		t.Fatalf("p after activation = %v, want 0.25", c)
	}
	// Force silent epochs until the probability caps at 1.  The packet
	// joins epochs randomly; when it joins alone it is delivered, so use
	// feedback directly: feed "silent" regardless (legal only when it did
	// not join; retry until the random stream cooperates is flaky).
	// Instead verify caps via many packets: inject enough that some stay.
	d2 := New(kappa, rng.New(6))
	d2.Inject(0, []channel.PacketID{10})
	d2.Transmitters(0, nil)
	d2.Observe(channel.Feedback{Slot: 0, Silent: true}) // activated, p=1/4
	// Simulate: epoch where the packet did not join (empty transmitters)
	// is genuinely silent; repeat until p reaches 1 (at most 2 raises).
	raised := 0
	for raised < 5 {
		buf := d2.Transmitters(int64(1+raised), nil)
		if len(buf) == 0 {
			d2.Observe(channel.Feedback{Slot: int64(1 + raised), Silent: true})
			raised++
			_, _, c, _ := d2.Snapshot()
			want := math.Min(1, 0.25*math.Pow(2, float64(raised)))
			if math.Abs(c-want) > 1e-12 {
				t.Fatalf("after %d silent epochs p = %v, want %v", raised, c, want)
			}
			if c == 1 {
				return // reached the cap as expected
			}
		} else {
			// Packet joined: it will be delivered by a real channel; end
			// the epoch with an event to keep state consistent.
			d2.Observe(channel.Feedback{Slot: int64(1 + raised),
				Event: &channel.Event{Packets: buf}})
			if d2.Pending() != 0 {
				t.Fatal("delivered packet still pending")
			}
			return // delivered before reaching cap; acceptable
		}
	}
	t.Fatal("probability never reached cap nor delivery")
}

// TestSnapshotPMinTracksOverfull: overfull epochs push pmin down.
func TestSnapshotPMinTracksOverfull(t *testing.T) {
	const kappa = 16
	d := New(kappa, rng.New(9))
	ids := make([]channel.PacketID, 200) // >> kappa: first epochs overfull
	for i := range ids {
		ids[i] = channel.PacketID(i)
	}
	d.Inject(0, ids)
	d.Transmitters(0, nil)
	d.Observe(channel.Feedback{Slot: 0, Silent: true}) // activate all at 1/4
	_, _, c0, _ := d.Snapshot()
	if math.Abs(c0-200.0/4) > 1e-9 {
		t.Fatalf("contention after mass activation %v, want 50", c0)
	}
	// 200 active at p=1/4: expected joiners 50 >> kappa=16: overfull epoch.
	now := int64(1)
	buf := d.Transmitters(now, nil)
	if len(buf) <= kappa {
		t.Skipf("unlikely: only %d joiners", len(buf)) // ~impossible; binomial(200,1/4)
	}
	for s := 0; s < kappa; s++ {
		d.Observe(channel.Feedback{Slot: now})
		now++
		if s < kappa-1 {
			got := d.Transmitters(now, nil)
			if len(got) != len(buf) {
				t.Fatalf("joiner set changed mid-epoch: %d -> %d", len(buf), len(got))
			}
		}
	}
	// Epoch ended overfull: probabilities divided by 2.
	_, _, c1, pmin := d.Snapshot()
	if math.Abs(c1-25) > 1e-9 {
		t.Fatalf("contention after overfull = %v, want 25", c1)
	}
	if math.Abs(pmin-0.125) > 1e-12 {
		t.Fatalf("pmin after overfull = %v, want 0.125", pmin)
	}
	if d.Stats().OverfullEpochs != 1 {
		t.Fatalf("overfull epochs = %d", d.Stats().OverfullEpochs)
	}
}

// TestJoinersConstantWithinEpoch: the same set broadcasts in every slot
// of an epoch (the property that makes decoding windows work).
func TestJoinersConstantWithinEpoch(t *testing.T) {
	const kappa = 8
	d := New(kappa, rng.New(21))
	ch := channel.New(kappa, 4*kappa)
	var prev []channel.PacketID
	var prevSlot int64 = -10
	buf := make([]channel.PacketID, 0, 64)
	var nextID channel.PacketID
	for now := int64(0); now < 2000; now++ {
		if now%5 == 0 && now < 1500 {
			d.Inject(now, []channel.PacketID{nextID})
			nextID++
		}
		buf = d.Transmitters(now, buf[:0])
		// Within an epoch (no boundary between prevSlot and now) the set
		// must be identical.
		if prevSlot == now-1 && len(prev) > 0 && len(buf) > 0 {
			same := len(prev) == len(buf)
			if same {
				for i := range prev {
					if prev[i] != buf[i] {
						same = false
						break
					}
				}
			}
			if !same {
				t.Fatalf("slot %d: joiner set changed within epoch", now)
			}
		}
		class, ev := ch.Step(now, buf)
		d.Observe(channel.Feedback{Slot: now, Silent: class == channel.Silent, Event: ev})
		if class == channel.Silent || ev != nil || (len(buf) > kappa) {
			prev, prevSlot = nil, -10 // epoch boundary (or may be, for overfull)
		} else {
			prev = append(prev[:0], buf...)
			prevSlot = now
		}
	}
}

// TestDeterminism: identical seeds give identical executions.
func TestDeterminism(t *testing.T) {
	run := func() (int64, int64, int64) {
		d := New(32, rng.New(99))
		ch := channel.New(32, 128)
		var events, delivered, lastEvent int64
		buf := make([]channel.PacketID, 0, 64)
		var nextID channel.PacketID
		for now := int64(0); now < 3000; now++ {
			if now%2 == 0 && now < 2500 {
				d.Inject(now, []channel.PacketID{nextID})
				nextID++
			}
			buf = d.Transmitters(now, buf[:0])
			class, ev := ch.Step(now, buf)
			d.Observe(channel.Feedback{Slot: now, Silent: class == channel.Silent, Event: ev})
			if ev != nil {
				events++
				delivered += int64(len(ev.Packets))
				lastEvent = now
			}
		}
		return events, delivered, lastEvent
	}
	e1, d1, l1 := run()
	e2, d2, l2 := run()
	if e1 != e2 || d1 != d2 || l1 != l2 {
		t.Fatalf("non-deterministic: (%d,%d,%d) vs (%d,%d,%d)", e1, d1, l1, e2, d2, l2)
	}
}

// TestErrorEpochsRare: with kappa reasonably large, error epochs
// (Definition 2) are a vanishing fraction (Lemma 3).
func TestErrorEpochsRare(t *testing.T) {
	const kappa = 64
	d := New(kappa, rng.New(17))
	ch := channel.New(kappa, 4*kappa)
	drive(t, d, ch, 30000, func(now int64) int {
		if now%2 == 0 && now < 25000 {
			return 1
		}
		return 0
	})
	st := d.Stats()
	total := st.Epochs()
	if total == 0 {
		t.Fatal("no epochs")
	}
	frac := float64(st.ErrorEpochs) / float64(total)
	if frac > 0.05 {
		t.Fatalf("error epoch fraction %.4f (%d/%d) too high for kappa=64",
			frac, st.ErrorEpochs, total)
	}
}

// TestStarvationFreedom: every injected packet is eventually delivered
// after arrivals stop.
func TestStarvationFreedom(t *testing.T) {
	const kappa = 16
	d := New(kappa, rng.New(23))
	ch := channel.New(kappa, 4*kappa)
	delivered := drive(t, d, ch, 20000, func(now int64) int {
		if now < 8000 && now%3 == 0 {
			return 2
		}
		return 0
	})
	injected := 0
	for now := int64(0); now < 8000; now++ {
		if now%3 == 0 {
			injected += 2
		}
	}
	if len(delivered) != injected {
		t.Fatalf("delivered %d of %d injected (pending %d)", len(delivered), injected, d.Pending())
	}
}

// TestSlowUpdateFactorStillCorrect: the ablation variant remains a
// correct protocol (conservation, eventual delivery), just slower.
func TestSlowUpdateFactorStillCorrect(t *testing.T) {
	const kappa = 16
	d := New(kappa, rng.New(31), WithUpdateFactor(2))
	ch := channel.New(kappa, 4*kappa)
	delivered := drive(t, d, ch, 6000, func(now int64) int {
		if now == 0 {
			return 200
		}
		return 0
	})
	if len(delivered) != 200 {
		t.Fatalf("slow-update variant delivered %d/200", len(delivered))
	}
}

func TestIdleSlotsCounted(t *testing.T) {
	d := New(8, rng.New(1))
	for now := int64(0); now < 10; now++ {
		d.Transmitters(now, nil)
		d.Observe(channel.Feedback{Slot: now, Silent: true})
	}
	st := d.Stats()
	if st.IdleSlots != 10 {
		t.Fatalf("idle slots = %d, want 10", st.IdleSlots)
	}
	if st.SilentEpochs != 0 {
		t.Fatalf("idle slots misclassified as silent epochs: %d", st.SilentEpochs)
	}
}

func TestNameAndKappa(t *testing.T) {
	d := New(8, rng.New(1))
	if d.Name() != "decodable-backoff" {
		t.Fatalf("Name = %q", d.Name())
	}
	if d.Kappa() != 8 {
		t.Fatalf("Kappa = %d", d.Kappa())
	}
}

func BenchmarkBatch10kKappa64(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		const kappa, n = 64, 10000
		d := New(kappa, rng.New(uint64(i)))
		ch := channel.New(kappa, 4*kappa)
		ids := make([]channel.PacketID, n)
		for j := range ids {
			ids[j] = channel.PacketID(j)
		}
		d.Inject(0, ids)
		buf := make([]channel.PacketID, 0, 128)
		for now := int64(0); d.Pending() > 0; now++ {
			buf = d.Transmitters(now, buf[:0])
			class, ev := ch.Step(now, buf)
			d.Observe(channel.Feedback{Slot: now, Silent: class == channel.Silent, Event: ev})
		}
	}
}
