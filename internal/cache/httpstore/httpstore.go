// Package httpstore puts a cache.Backend on the network: Server wraps
// any backend (normally a filesystem cache.Store) behind a small HTTP
// API, and Client implements cache.Backend against such a server, so
// sweep workers on several machines share one record namespace and one
// lease table.
//
// The API is four routes, all JSON:
//
//	GET  /records            → sorted array of record identities
//	GET  /records/{id}       → the record's JSON (404 = miss)
//	PUT  /records/{id}       → store the body as the record (204)
//	POST /claims/{id}?owner=O&ttl=D → {"granted": true|false}
//
// Backend semantics carry over the wire unchanged: a corrupt or foreign
// record is a 404 (a miss) rather than an error, claims are advisory,
// and Put supersedes any lease.  The one semantic the server adds is
// atomicity of Claim's read-check-write — requests to one server are
// serialized per identity, so two remote workers cannot both win a
// claim the way two processes racing on one filesystem can.
package httpstore

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"time"

	"repro/internal/cache"
)

// maxRecordBytes bounds one record (or claim) request body; sweep cell
// records are a few KiB, so 16 MiB is generous without letting a
// misdirected upload exhaust the server.
const maxRecordBytes = 16 << 20

// Server serves a cache.Backend over HTTP.  Create one with NewServer.
type Server struct {
	backend cache.Backend
	mux     *http.ServeMux
	// claims serializes Claim's read-check-write per server, making the
	// advisory lease a real mutex between this server's clients.
	claims sync.Mutex
}

// NewServer wraps a backend in the HTTP API.
func NewServer(b cache.Backend) *Server {
	s := &Server{backend: b, mux: http.NewServeMux()}
	s.mux.HandleFunc("/records", s.handleList)
	s.mux.HandleFunc("/records/", s.handleRecord)
	s.mux.HandleFunc("/claims/", s.handleClaim)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	ids, err := s.backend.List()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	if ids == nil {
		ids = []string{}
	}
	writeJSON(w, ids)
}

func (s *Server) handleRecord(w http.ResponseWriter, r *http.Request) {
	id := strings.TrimPrefix(r.URL.Path, "/records/")
	switch r.Method {
	case http.MethodGet:
		var raw json.RawMessage
		ok, err := s.backend.Get(id, &raw)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if !ok {
			http.Error(w, "no such record", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(raw)
	case http.MethodPut:
		body, err := io.ReadAll(io.LimitReader(r.Body, maxRecordBytes+1))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if len(body) > maxRecordBytes {
			http.Error(w, "record too large", http.StatusRequestEntityTooLarge)
			return
		}
		var raw json.RawMessage
		if err := json.Unmarshal(body, &raw); err != nil {
			http.Error(w, "record body is not JSON", http.StatusBadRequest)
			return
		}
		if err := s.backend.Put(id, raw); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

func (s *Server) handleClaim(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	id := strings.TrimPrefix(r.URL.Path, "/claims/")
	owner := r.URL.Query().Get("owner")
	ttl, err := time.ParseDuration(r.URL.Query().Get("ttl"))
	if err != nil {
		http.Error(w, fmt.Sprintf("bad ttl: %v", err), http.StatusBadRequest)
		return
	}
	s.claims.Lock()
	granted, err := s.backend.Claim(id, owner, ttl)
	s.claims.Unlock()
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	writeJSON(w, map[string]bool{"granted": granted})
}

func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

// Client is a cache.Backend backed by a remote Server.
type Client struct {
	base string
	http *http.Client
}

var _ cache.Backend = (*Client)(nil)

// NewClient returns a backend talking to the server at baseURL
// (e.g. "http://sweep-cache:8771").  The URL must be absolute http or
// https; a trailing slash is tolerated.
func NewClient(baseURL string) (*Client, error) {
	u, err := url.Parse(baseURL)
	if err != nil {
		return nil, fmt.Errorf("httpstore: bad backend URL %q: %v", baseURL, err)
	}
	if (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
		return nil, fmt.Errorf("httpstore: bad backend URL %q (want http://host:port or https://host:port)", baseURL)
	}
	return &Client{base: strings.TrimSuffix(u.String(), "/"), http: &http.Client{Timeout: 30 * time.Second}}, nil
}

// URL returns the backend base URL the client talks to.
func (c *Client) URL() string { return c.base }

// Get implements Backend.Get: a 404 — including the server's view of a
// corrupt record — is a miss, and a record the client cannot decode
// into v degrades to a miss too, mirroring the filesystem store.
func (c *Client) Get(id string, v interface{}) (bool, error) {
	resp, err := c.http.Get(c.base + "/records/" + url.PathEscape(id))
	if err != nil {
		return false, fmt.Errorf("httpstore: %w", err)
	}
	body, status, err := drain(resp)
	if err != nil {
		return false, err
	}
	switch status {
	case http.StatusOK:
		if json.Unmarshal(body, v) != nil {
			return false, nil // undecodable record = miss, like the fs store
		}
		return true, nil
	case http.StatusNotFound:
		return false, nil
	default:
		return false, fmt.Errorf("httpstore: get %s: %s", id, httpError(status, body))
	}
}

// Put implements Backend.Put.
func (c *Client) Put(id string, v interface{}) error {
	data, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("httpstore: %w", err)
	}
	req, err := http.NewRequest(http.MethodPut, c.base+"/records/"+url.PathEscape(id), bytes.NewReader(data))
	if err != nil {
		return fmt.Errorf("httpstore: %w", err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.http.Do(req)
	if err != nil {
		return fmt.Errorf("httpstore: %w", err)
	}
	body, status, err := drain(resp)
	if err != nil {
		return err
	}
	if status != http.StatusNoContent {
		return fmt.Errorf("httpstore: put %s: %s", id, httpError(status, body))
	}
	return nil
}

// List implements Backend.List.
func (c *Client) List() ([]string, error) {
	resp, err := c.http.Get(c.base + "/records")
	if err != nil {
		return nil, fmt.Errorf("httpstore: %w", err)
	}
	body, status, err := drain(resp)
	if err != nil {
		return nil, err
	}
	if status != http.StatusOK {
		return nil, fmt.Errorf("httpstore: list: %s", httpError(status, body))
	}
	var ids []string
	if err := json.Unmarshal(body, &ids); err != nil {
		return nil, fmt.Errorf("httpstore: bad list response: %v", err)
	}
	return ids, nil
}

// Claim implements Backend.Claim.
func (c *Client) Claim(id, owner string, ttl time.Duration) (bool, error) {
	u := fmt.Sprintf("%s/claims/%s?owner=%s&ttl=%s",
		c.base, url.PathEscape(id), url.QueryEscape(owner), url.QueryEscape(ttl.String()))
	resp, err := c.http.Post(u, "application/json", nil)
	if err != nil {
		return false, fmt.Errorf("httpstore: %w", err)
	}
	body, status, err := drain(resp)
	if err != nil {
		return false, err
	}
	if status != http.StatusOK {
		return false, fmt.Errorf("httpstore: claim %s: %s", id, httpError(status, body))
	}
	var out struct {
		Granted bool `json:"granted"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		return false, fmt.Errorf("httpstore: bad claim response: %v", err)
	}
	return out.Granted, nil
}

// drain reads and closes a response body.
func drain(resp *http.Response) ([]byte, int, error) {
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxRecordBytes+1))
	if err != nil {
		return nil, 0, fmt.Errorf("httpstore: %w", err)
	}
	return body, resp.StatusCode, nil
}

// httpError renders a non-2xx response compactly.
func httpError(status int, body []byte) string {
	msg := strings.TrimSpace(string(body))
	if len(msg) > 200 {
		msg = msg[:200] + "…"
	}
	if msg == "" {
		return fmt.Sprintf("HTTP %d", status)
	}
	return fmt.Sprintf("HTTP %d: %s", status, msg)
}
