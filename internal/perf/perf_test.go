package perf

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestCasesDeterministicAndUnique(t *testing.T) {
	for _, scale := range []Scale{Quick, Full} {
		a, b := Cases(scale), Cases(scale)
		if len(a) == 0 {
			t.Fatalf("%s: empty grid", scale)
		}
		seen := make(map[string]bool, len(a))
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: grid not deterministic at %d", scale, i)
			}
			k := a[i].Key()
			if seen[k] {
				t.Fatalf("%s: duplicate cell key %q", scale, k)
			}
			seen[k] = true
		}
		if !seen[GateKey(scale)] {
			t.Fatalf("%s: gate cell %q not in grid", scale, GateKey(scale))
		}
	}
	// Full scale must reach the large-batch regime the tentpole targets.
	var millionBatch bool
	for _, c := range Cases(Full) {
		millionBatch = millionBatch || (c.Protocol == "dba" && c.Workload == "batch" && c.N == 1_000_000)
	}
	if !millionBatch {
		t.Fatal("full grid lost the dba n=10^6 batch cell")
	}
}

func TestGridSkipsOversizedBaselineBatches(t *testing.T) {
	for _, c := range Cases(Full) {
		if c.Protocol == "beb" && c.Workload == "batch" && c.N > 20_000 {
			t.Fatalf("beb asked to complete an n=%d batch", c.N)
		}
	}
}

// TestRunQuickArtifact runs the whole quick grid once — the same
// coverage the CI bench-smoke step exercises through cmd/crnbench —
// and validates the artifact, including the allocation gate.
func TestRunQuickArtifact(t *testing.T) {
	var calls int
	art := Run(Options{Scale: Quick, Trials: 1, Seed: 2022,
		OnCell: func(done, total int, m *Measurement) {
			calls++
			if m == nil || done < 1 || done > total {
				t.Fatalf("bad progress call %d/%d %v", done, total, m)
			}
		}})
	if calls != len(Cases(Quick)) {
		t.Fatalf("progress calls %d, want %d", calls, len(Cases(Quick)))
	}
	if err := Check(art, Quick); err != nil {
		t.Fatal(err)
	}
	// The artifact must survive a JSON round trip (what the committed
	// BENCH_engine.json and the CI smoke re-parse).
	data, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	var back Artifact
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if err := Check(&back, Quick); err != nil {
		t.Fatalf("round-tripped artifact invalid: %v", err)
	}
	// Batch cells complete their batches; steady cells drain.
	for _, m := range art.Cells {
		if m.Delivered != m.Arrivals {
			t.Fatalf("%s: delivered %d of %d", m.Key, m.Delivered, m.Arrivals)
		}
	}
}

// TestCheckFloors exercises the throughput ratchet on synthetic
// artifacts: uniform host-speed shifts pass at any magnitude, a single
// cell sagging against the rest trips the gate, and cells missing from
// either side are ignored rather than failed.
func TestCheckFloors(t *testing.T) {
	mk := func(speeds map[string]float64) *Artifact {
		a := &Artifact{Name: "engine", Scale: "quick"}
		for k, s := range speeds {
			// Slots sized so every synthetic cell clears FloorMinSeconds.
			a.Cells = append(a.Cells, Measurement{Key: k, SlotsPerSec: s,
				Slots: int64(s * FloorMinSeconds * 10)})
		}
		return a
	}
	committed := mk(map[string]float64{"a": 1000, "b": 2000, "c": 500})

	// Identical run passes.
	if err := CheckFloors(mk(map[string]float64{"a": 1000, "b": 2000, "c": 500}), committed); err != nil {
		t.Fatal(err)
	}
	// A uniformly 10× slower host passes: the median ratio absorbs it.
	if err := CheckFloors(mk(map[string]float64{"a": 100, "b": 200, "c": 50}), committed); err != nil {
		t.Fatal(err)
	}
	// One cell collapsing while the others hold trips the gate.
	err := CheckFloors(mk(map[string]float64{"a": 1000, "b": 2000, "c": 100}), committed)
	if err == nil || !strings.Contains(err.Error(), "floor") {
		t.Fatalf("regressed cell accepted: %v", err)
	}
	// Cells absent from the committed baseline (a grid that grew) are
	// skipped, not failed.
	if err := CheckFloors(mk(map[string]float64{"a": 1000, "b": 2000, "c": 500, "new": 1}), committed); err != nil {
		t.Fatal(err)
	}
	// A committed cell whose implied wall clock sits under
	// FloorMinSeconds is recorded but never ratcheted: it is noise.
	tiny := mk(map[string]float64{"a": 1000, "b": 2000, "c": 500})
	for i := range tiny.Cells {
		if tiny.Cells[i].Key == "c" {
			tiny.Cells[i].Slots = int64(tiny.Cells[i].SlotsPerSec * FloorMinSeconds / 2)
		}
	}
	if err := CheckFloors(mk(map[string]float64{"a": 1000, "b": 2000, "c": 1}), tiny); err != nil {
		t.Fatalf("sub-threshold cell gated: %v", err)
	}
	// No overlap at all is an error, not a silent pass.
	if err := CheckFloors(mk(map[string]float64{"x": 1}), committed); err == nil {
		t.Fatal("disjoint artifacts accepted")
	}
	if err := CheckFloors(nil, committed); err == nil {
		t.Fatal("nil artifact accepted")
	}
}

func TestCheckRejects(t *testing.T) {
	art := Run(Options{Scale: Quick, Trials: 1, Seed: 7})
	if err := Check(art, Quick); err != nil {
		t.Fatal(err)
	}
	missing := *art
	missing.Cells = art.Cells[1:]
	if err := Check(&missing, Quick); err == nil {
		t.Fatal("missing cell accepted")
	}
	dup := *art
	dup.Cells = append([]Measurement{art.Cells[0]}, art.Cells...)
	if err := Check(&dup, Quick); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("duplicate cell accepted: %v", err)
	}
	gated := *art
	gated.Cells = append([]Measurement(nil), art.Cells...)
	for i := range gated.Cells {
		if gated.Cells[i].Key == GateKey(Quick) {
			gated.Cells[i].AllocsPerSlot = 1.5
		}
	}
	if err := Check(&gated, Quick); err == nil || !strings.Contains(err.Error(), "allocation gate") {
		t.Fatalf("alloc regression accepted: %v", err)
	}
	if err := Check(nil, Quick); err == nil {
		t.Fatal("nil artifact accepted")
	}
}
