// Command crnbench times the simulation engine itself — slots per
// second, heap allocations per slot, bytes per trial — across the
// deterministic protocol × medium × adversary × workload × n grid
// defined by internal/perf, and writes the BENCH_engine.json artifact
// that tracks the engine's performance trajectory across commits.
//
// Usage:
//
//	crnbench [-scale quick|full] [-trials N] [-seed S] [-out BENCH_engine.json] [-gate] [-quiet]
//	crnbench -compare OLD.json NEW.json
//
// Examples:
//
//	crnbench                                  # quick grid, table to stdout
//	crnbench -out BENCH_engine.json           # regenerate the committed artifact
//	crnbench -scale full -trials 3            # the n=10^6 large-batch grid
//	crnbench -out /tmp/b.json -gate -quiet    # CI smoke: write, re-parse, validate, alloc-gate
//	crnbench -out /tmp/b.json -gate -baseline BENCH_engine.json  # + slots/sec floors vs the committed artifact
//	crnbench -compare BENCH_engine.json /tmp/b.json  # markdown per-cell delta table, no benchmarking
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/perf"
	"repro/internal/report"
)

func main() {
	scaleName := flag.String("scale", "quick", "grid scale: quick (CI-sized) or full (reaches n=10^6 batches)")
	trials := flag.Int("trials", 3, "trials per cell (timing aggregates over all)")
	seed := flag.Uint64("seed", 1, "base random seed")
	outPath := flag.String("out", "", "write the artifact JSON to this path ('-' = stdout)")
	gate := flag.Bool("gate", false, "after writing, re-parse the artifact and fail on a missing grid cell or an allocs/slot regression in the steady classical cell")
	baseline := flag.String("baseline", "", "with -gate: committed artifact whose slots/sec set per-cell floors (host-speed normalized, 2x slack)")
	quiet := flag.Bool("quiet", false, "suppress the table and progress output")
	compare := flag.Bool("compare", false, "compare two artifacts: crnbench -compare OLD.json NEW.json emits a markdown delta table and runs no benchmarks")
	flag.Parse()

	if *compare {
		if flag.NArg() != 2 {
			fatal(fmt.Errorf("-compare needs exactly two artifact paths: OLD.json NEW.json"))
		}
		old, err := loadArtifact(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		fresh, err := loadArtifact(flag.Arg(1))
		if err != nil {
			fatal(err)
		}
		fmt.Print(perf.Compare(old, fresh))
		return
	}

	var scale perf.Scale
	switch *scaleName {
	case "quick":
		scale = perf.Quick
	case "full":
		scale = perf.Full
	default:
		fatal(fmt.Errorf("unknown scale %q (want quick or full)", *scaleName))
	}
	if *trials < 1 {
		fatal(fmt.Errorf("trials %d < 1", *trials))
	}

	opts := perf.Options{Scale: scale, Trials: *trials, Seed: *seed}
	if !*quiet {
		fmt.Fprintf(os.Stderr, "crnbench: %d cells × %d trials (%s)\n",
			len(perf.Cases(scale)), *trials, scale)
		opts.OnCell = func(done, total int, m *perf.Measurement) {
			fmt.Fprintf(os.Stderr, "  [%d/%d] %s %.3g slots/sec %.4f allocs/slot\n",
				done, total, m.Key, m.SlotsPerSec, m.AllocsPerSlot)
		}
	}
	start := time.Now()
	art := perf.Run(opts)
	if !*quiet {
		fmt.Fprintf(os.Stderr, "crnbench: completed in %v\n\n", time.Since(start).Round(time.Millisecond))
		if *outPath != "-" {
			fmt.Print(table(art).String())
		}
	}

	if *outPath != "" {
		if *outPath == "-" {
			if err := report.WriteJSON(os.Stdout, art); err != nil {
				fatal(err)
			}
		} else if err := report.SaveJSON(*outPath, art); err != nil {
			fatal(err)
		}
	}
	if *gate {
		if *outPath == "" || *outPath == "-" {
			fatal(fmt.Errorf("-gate needs -out FILE (it re-parses the written artifact)"))
		}
		data, err := os.ReadFile(*outPath)
		if err != nil {
			fatal(err)
		}
		var back perf.Artifact
		if err := json.Unmarshal(data, &back); err != nil {
			fatal(fmt.Errorf("emitted artifact does not parse: %w", err))
		}
		if err := perf.Check(&back, scale); err != nil {
			fatal(err)
		}
		if *baseline != "" {
			committed, err := os.ReadFile(*baseline)
			if err != nil {
				fatal(err)
			}
			var ref perf.Artifact
			if err := json.Unmarshal(committed, &ref); err != nil {
				fatal(fmt.Errorf("baseline %s does not parse: %w", *baseline, err))
			}
			if err := perf.CheckFloors(&back, &ref); err != nil {
				fatal(err)
			}
		}
		if !*quiet {
			fmt.Fprintf(os.Stderr, "crnbench: gate ok (%d cells, %s ≤ %.2f allocs/slot)\n",
				len(back.Cells), perf.GateKey(scale), perf.GateAllocsPerSlot)
			if *baseline != "" {
				fmt.Fprintf(os.Stderr, "crnbench: slots/sec floors ok vs %s (headroom %.0f%%)\n",
					*baseline, 100*(1-perf.FloorHeadroom))
			}
		}
	} else if *baseline != "" {
		fatal(fmt.Errorf("-baseline needs -gate"))
	}
}

func loadArtifact(path string) (*perf.Artifact, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var art perf.Artifact
	if err := json.Unmarshal(data, &art); err != nil {
		return nil, fmt.Errorf("%s does not parse: %w", path, err)
	}
	return &art, nil
}

func table(art *perf.Artifact) *report.Table {
	t := report.NewTable(fmt.Sprintf("engine perf (%s, %d trials)", art.Scale, art.Trials),
		"cell", "slots/sec", "allocs/slot", "bytes/trial", "slots", "delivered", "peakInFlight")
	for i := range art.Cells {
		m := &art.Cells[i]
		t.AddRow(m.Key, m.SlotsPerSec, m.AllocsPerSlot, m.BytesPerTrial,
			m.Slots, m.Delivered, m.PeakInFlight)
	}
	return t
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "crnbench: %v\n", err)
	os.Exit(1)
}
