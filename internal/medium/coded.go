package medium

import "repro/internal/channel"

// Coded is the Coded Radio Network Model of the paper behind the Medium
// interface: a base station that decodes up to κ simultaneous
// transmissions, with decoding events per Definition 1.  Devices hear
// silence and decoding events; they cannot tell good slots from bad
// ones, so Feedback never sets Collision.
type Coded struct {
	ch   *channel.Channel
	last channel.Feedback
}

var (
	_ Medium   = (*Coded)(nil)
	_ Sharded  = (*Coded)(nil)
	_ Repeater = (*Coded)(nil)
)

// NewCoded returns the coded medium with decoding threshold kappa and
// decoding-window length cap maxWindow (0 = unbounded), mirroring
// channel.New.
func NewCoded(kappa, maxWindow int) *Coded {
	return &Coded{ch: channel.New(kappa, maxWindow)}
}

// Channel exposes the underlying detector for tests and diagnostics.
func (c *Coded) Channel() *channel.Channel { return c.ch }

// Name implements Medium.
func (c *Coded) Name() string { return "coded" }

// Kappa implements Medium.
func (c *Coded) Kappa() int { return c.ch.Kappa() }

// Step implements Medium.
func (c *Coded) Step(now int64, txs []channel.PacketID) (channel.SlotClass, *channel.Event) {
	class, ev := c.ch.Step(now, txs)
	c.last = channel.Feedback{Slot: now, Silent: class == channel.Silent, Event: ev}
	return class, ev
}

// StepSharded implements Sharded by delegating to the detector's
// chunked entry point: large bad slots validate their transmitters as
// per-shard partials, good slots flatten onto the serial path.
func (c *Coded) StepSharded(now int64, chunks [][]channel.PacketID, fan channel.FanOut) (channel.SlotClass, *channel.Event) {
	class, ev := c.ch.StepSharded(now, chunks, fan)
	c.last = channel.Feedback{Slot: now, Silent: class == channel.Silent, Event: ev}
	return class, ev
}

// StepRepeat implements Repeater.  The detector validated these
// transmitters as Bad when the slot was first stepped, so the replay
// always succeeds.
func (c *Coded) StepRepeat(now int64) bool {
	c.ch.StepRepeat(now)
	c.last = channel.Feedback{Slot: now}
	return true
}

// Feedback implements Medium.
func (c *Coded) Feedback(fb *channel.Feedback) { *fb = c.last }

// AddSilent implements Medium.
func (c *Coded) AddSilent(n int64) { c.ch.AddSilent(n) }

// Stats implements Medium.
func (c *Coded) Stats() channel.Stats { return c.ch.Stats() }

// Reset implements Medium.
func (c *Coded) Reset() {
	c.ch.Reset()
	c.last = channel.Feedback{}
}
