package crn_test

import (
	"fmt"

	crn "repro"
)

// ExampleRun simulates a batch through the Decodable Backoff Algorithm
// and reports its completion; seeds make the run reproducible.
func ExampleRun() {
	proto := crn.NewDecodableBackoff(64, 1)
	res := crn.Run(crn.Config{Kappa: 64, Horizon: 1, Drain: true, Seed: 2},
		proto, crn.NewBatch(1000))
	fmt.Printf("delivered %d/%d packets, throughput > 0.9: %v\n",
		res.Delivered, res.Arrivals, res.CompletionThroughput() > 0.9)
	// Output:
	// delivered 1000/1000 packets, throughput > 0.9: true
}

// ExampleNewChannel steps the Coded Radio Network Model directly: three
// packets broadcasting together decode after exactly three good slots.
func ExampleNewChannel() {
	ch := crn.NewChannel(8, 0) // κ = 8, unbounded windows
	group := []crn.PacketID{1, 2, 3}
	for slot := int64(0); slot < 3; slot++ {
		_, ev := ch.Step(slot, group)
		if ev != nil {
			fmt.Printf("decoding event at slot %d delivers %d packets\n", slot, ev.Size())
		}
	}
	// Output:
	// decoding event at slot 2 delivers 3 packets
}

// ExampleNewWindowBurst runs the worst-case adversary the Theorem 11
// bound is stated against.
func ExampleNewWindowBurst() {
	const w = 4096
	res := crn.Run(crn.Config{Kappa: 64, Horizon: 4 * w, Seed: 3},
		crn.NewDecodableBackoff(64, 4),
		crn.NewWindowBurst(w, w*85/100))
	fmt.Printf("backlog bounded by 2w: %v\n", res.MaxBacklog <= 2*w)
	// Output:
	// backlog bounded by 2w: true
}

// ExampleWithEpochObserver instruments the protocol's epochs — the unit
// the paper's analysis is phrased in.
func ExampleWithEpochObserver() {
	var successful int
	proto := crn.NewDecodableBackoff(16, 5, crn.WithEpochObserver(func(info crn.EpochInfo) {
		if info.Kind.String() == "successful" {
			successful++
		}
	}))
	res := crn.Run(crn.Config{Kappa: 16, Horizon: 1, Drain: true, Seed: 6},
		proto, crn.NewBatch(100))
	fmt.Printf("all delivered across multiple successful epochs: %v\n",
		res.Pending == 0 && successful > 1)
	// Output:
	// all delivered across multiple successful epochs: true
}
