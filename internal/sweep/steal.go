package sweep

import (
	"context"
	"fmt"
	"os"
	"time"

	"repro/internal/cache"
)

// DefaultLeaseTTL is the claim lifetime a worker uses when Options
// leaves LeaseTTL unset.  It trades preemption latency (a dead worker's
// cells stay unstealable this long) against duplicate work (a cell
// slower than the TTL gets re-claimed while still running — benign but
// wasted); two minutes comfortably covers the committed grids' cells.
const DefaultLeaseTTL = 2 * time.Minute

// defaultPoll is the rescan interval when every missing cell is leased
// to another worker.
const defaultPoll = 100 * time.Millisecond

// execDelay is a test hook run after a cell is claimed and before it is
// executed (deliberately slow cells for lease-renewal tests).  Always
// nil outside tests.
var execDelay func(owner string, cell int)

// WorkerResult summarizes one work-stealing worker's participation in
// draining a grid.  It is a progress report, not a merge artifact: the
// grid itself is assembled from the shared backend (Assemble), which is
// what makes workers interchangeable and killable.
type WorkerResult struct {
	// Owner is the lease label the worker claimed cells under.
	Owner string `json:"owner"`
	// Total is the grid's cell count.
	Total int `json:"total_cells"`
	// Executed counts the cells this worker claimed and computed.
	Executed int `json:"executed"`
	// Loaded counts the cells this worker found already completed in the
	// backend (by an earlier run or another worker).
	Loaded int `json:"loaded"`
}

// RunWorker drains one grid through the work-stealing scheduling
// policy: instead of being assigned a static slice of the expansion
// (the -shard policy), the worker scans the grid for cells whose
// content-addressed records are missing from the shared backend, claims
// one with a TTL lease, executes it, and persists the record.  Workers
// never talk to each other — the backend's records and leases are the
// entire coordination protocol — so any number of heterogeneous
// machines can join, leave, or crash mid-run: a dead worker's leases
// expire and its cells are re-claimed by whoever gets there first.
//
// The function returns when every cell of the grid has a valid record
// in the backend (some computed here, the rest observed), or when ctx
// is cancelled, or on the first backend error.  Cell identities, trial
// seeds, skip rules, and summaries are exactly those of sweep.Run —
// scheduling policy decides who computes a cell, never what it
// contains — so Assemble over the drained backend is byte-identical to
// an unsharded run.
func RunWorker(ctx context.Context, spec Spec, opts Options) (*WorkerResult, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if opts.Cache == nil {
		return nil, fmt.Errorf("sweep: work-stealing needs a shared Cache backend")
	}
	owner := opts.Owner
	if owner == "" {
		owner = fmt.Sprintf("worker-%d", os.Getpid())
	}
	ttl := opts.LeaseTTL
	if ttl == 0 {
		ttl = DefaultLeaseTTL
	}
	poll := opts.Poll
	if poll == 0 {
		poll = defaultPoll
	}

	cells := spec.Expand()
	allSeeds := spec.jobSeeds(len(cells))
	ids := make([]string, len(cells))
	keys := make([]string, len(cells))
	for i, sc := range cells {
		ids[i] = cellID(sc, &spec, allSeeds[i*spec.Trials:(i+1)*spec.Trials])
		keys[i] = sc.Key()
	}

	res := &WorkerResult{Owner: owner, Total: len(cells)}
	done := make([]bool, len(cells))
	remaining := len(cells)
	finish := func(i int, cell *CellSummary, cached bool) {
		done[i] = true
		remaining--
		if opts.OnCell != nil {
			opts.OnCell(len(cells)-remaining, len(cells), cell, cached)
		}
	}

	for remaining > 0 {
		progressed := false
		for i := range cells {
			if done[i] {
				continue
			}
			if err := ctx.Err(); err != nil {
				return res, err
			}
			cell, ok, err := loadCell(opts.Cache, ids[i], keys[i])
			if err != nil {
				return res, err
			}
			if ok {
				res.Loaded++
				finish(i, &cell, true)
				progressed = true
				continue
			}
			claimed, err := opts.Cache.Claim(ids[i], owner, ttl)
			if err != nil {
				return res, err
			}
			if !claimed {
				// Another owner holds the lease (or just completed the
				// cell; the next scan will load it).  Move on — there may
				// be unclaimed cells further along.
				continue
			}
			// A worker killed here — after the claim, before the record —
			// is the preemption case: its lease expires after ttl and the
			// cell is re-claimed by a surviving worker.
			if err := ctx.Err(); err != nil {
				return res, err
			}
			// A cell slower than the TTL must not look dead: re-claim (the
			// backend extends a holder's own lease) at half the TTL until
			// the record lands.  Renewal failures are deliberately ignored —
			// losing the lease costs at worst a duplicate execution, which
			// content-addressed records absorb.
			stopRenew := make(chan struct{})
			go func(id string) {
				t := time.NewTicker(ttl / 2)
				defer t.Stop()
				for {
					select {
					case <-stopRenew:
						return
					case <-t.C:
						_, _ = opts.Cache.Claim(id, owner, ttl)
					}
				}
			}(ids[i])
			if execDelay != nil {
				execDelay(owner, i)
			}
			summary := execCell(&spec, cells[i], allSeeds[i*spec.Trials:(i+1)*spec.Trials], opts.Parallelism, opts.Workers)
			err = putCell(opts.Cache, ids[i], i, keys[i], summary)
			close(stopRenew)
			if err != nil {
				return res, err
			}
			res.Executed++
			finish(i, &summary, false)
			progressed = true
		}
		if remaining > 0 && !progressed {
			// Every missing cell is leased to another live worker: wait
			// for their records to land or their leases to expire.
			select {
			case <-ctx.Done():
				return res, ctx.Err()
			case <-time.After(poll):
			}
		}
	}
	return res, nil
}

// Assemble reassembles the full Grid from a backend that workers (or
// shard runs, or resumed runs — they all share one record namespace)
// have populated, verifying every cell's content identity against what
// the spec derives.  It is the work-stealing counterpart of Merge: the
// returned Grid renders byte-identically to an unsharded Run of the
// same spec.  Missing cells are an error naming how much of the grid is
// absent — run more workers, or wait for the ones still going.  Cancel
// ctx to stop between cells (useful against a slow remote backend).
func Assemble(ctx context.Context, spec Spec, backend cache.Backend) (*Grid, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if backend == nil {
		return nil, fmt.Errorf("sweep: assemble needs a backend")
	}
	cells := spec.Expand()
	allSeeds := spec.jobSeeds(len(cells))
	grid := &Grid{Spec: spec, Cells: make([]CellSummary, len(cells))}
	firstMissing, missing := -1, 0
	for i, sc := range cells {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		id := cellID(sc, &spec, allSeeds[i*spec.Trials:(i+1)*spec.Trials])
		cell, ok, err := loadCell(backend, id, sc.Key())
		if err != nil {
			return nil, err
		}
		if !ok {
			if firstMissing < 0 {
				firstMissing = i
			}
			missing++
			continue
		}
		grid.Cells[i] = cell
	}
	if missing > 0 {
		return nil, fmt.Errorf("sweep: backend holds %d of %d cells; first missing cell %d (%s) — workers still running, or not enough ran",
			len(cells)-missing, len(cells), firstMissing, cells[firstMissing].Key())
	}
	return grid, nil
}
