package main

import (
	"bytes"
	"strings"
	"testing"
)

func runCLI(args ...string) (stderr string, err error) {
	var buf bytes.Buffer
	err = run(args, &buf)
	return buf.String(), err
}

func TestDirIsRequired(t *testing.T) {
	_, err := runCLI()
	if err == nil || !strings.Contains(err.Error(), "-dir") {
		t.Fatalf("err = %v, want the missing -dir error", err)
	}
}

func TestPositionalArgsRejected(t *testing.T) {
	_, err := runCLI("-dir", t.TempDir(), "extra")
	if err == nil || !strings.Contains(err.Error(), "unexpected arguments") {
		t.Fatalf("err = %v, want the unexpected-arguments error", err)
	}
}

func TestBadListenAddressRejected(t *testing.T) {
	_, err := runCLI("-dir", t.TempDir(), "-addr", "not-an-address:::")
	if err == nil {
		t.Fatal("bad -addr accepted")
	}
}

func TestHelpIsNotAnError(t *testing.T) {
	stderr, err := runCLI("-h")
	if err != nil {
		t.Fatalf("-h returned %v, want nil", err)
	}
	if !strings.Contains(stderr, "-dir") {
		t.Fatalf("usage not printed:\n%s", stderr)
	}
}
