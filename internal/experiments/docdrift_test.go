package experiments

import (
	"os"
	"regexp"
	"testing"
)

// TestDocDriftExperimentIndex pins DESIGN.md §5 to the code: the
// experiment-index table must list exactly the IDs experiments.All()
// registers, in the same order.  Adding an experiment without updating
// the docs (or vice versa) fails here — the check also runs as its own
// step in CI.
func TestDocDriftExperimentIndex(t *testing.T) {
	data, err := os.ReadFile("../../DESIGN.md")
	if err != nil {
		t.Fatalf("reading DESIGN.md: %v", err)
	}
	rows := regexp.MustCompile(`(?m)^\| (E\d+) \|`).FindAllStringSubmatch(string(data), -1)
	var docIDs []string
	for _, m := range rows {
		docIDs = append(docIDs, m[1])
	}
	runners := All()
	if len(docIDs) != len(runners) {
		t.Fatalf("DESIGN.md §5 lists %d experiments, experiments.All() has %d — update the index table",
			len(docIDs), len(runners))
	}
	for i, r := range runners {
		if docIDs[i] != r.ID {
			t.Fatalf("DESIGN.md §5 row %d is %s, experiments.All() has %s — update the index table",
				i+1, docIDs[i], r.ID)
		}
	}
}
