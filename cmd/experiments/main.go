// Command experiments regenerates the paper-reproduction experiments
// (E1–E15; see DESIGN.md section 5 for the index mapping each experiment
// to a theorem or claim).  It prints tables and ASCII figures, and can
// save every table as CSV and the full run as a JSON artifact.
//
// Usage:
//
//	experiments [-scale quick|full] [-run E3,E8] [-seed N] [-parallel N] [-csv dir] [-json path]
//
// Examples:
//
//	experiments -scale quick                # everything, CI-sized, serial
//	experiments -parallel 0                 # everything, one worker per core
//	experiments -scale full -run E3         # paper-sized Theorem 16 run
//	experiments -csv out/                   # also write out/E1-*.csv ...
//	experiments -json out/experiments.json  # machine-readable artifact
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/report"
	"repro/internal/sim"
)

// jsonRun is the machine-readable artifact: one entry per experiment, in
// index order.  Harness timing is deliberately excluded so artifacts from
// the same scale and seed are reproducible (E12's own wall-clock
// benchmark column is the one nondeterministic cell).
type jsonRun struct {
	Scale       string                `json:"scale"`
	Seed        uint64                `json:"seed"`
	Experiments []*experiments.Output `json:"experiments"`
}

func main() {
	scaleFlag := flag.String("scale", "quick", "experiment sizing: quick or full")
	runFlag := flag.String("run", "all", "comma-separated experiment IDs (e.g. E1,E3) or 'all'")
	seed := flag.Uint64("seed", 2022, "base random seed")
	parallel := flag.Int("parallel", 1, "concurrent experiments (0 = one per core)")
	csvDir := flag.String("csv", "", "directory to write per-table CSV files (optional)")
	jsonPath := flag.String("json", "", "path to write the JSON artifact (optional, '-' = stdout)")
	flag.Parse()

	var scale experiments.Scale
	switch strings.ToLower(*scaleFlag) {
	case "quick":
		scale = experiments.Quick
	case "full":
		scale = experiments.Full
	default:
		fmt.Fprintf(os.Stderr, "experiments: unknown scale %q (want quick or full)\n", *scaleFlag)
		os.Exit(2)
	}

	var runners []experiments.Runner
	if strings.EqualFold(*runFlag, "all") {
		runners = experiments.All()
	} else {
		for _, id := range strings.Split(*runFlag, ",") {
			r := experiments.ByID(strings.TrimSpace(id))
			if r == nil {
				fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q\n", id)
				os.Exit(2)
			}
			runners = append(runners, *r)
		}
	}

	workers := *parallel
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(runners) {
		workers = len(runners)
	}

	fmt.Printf("Contention Resolution for Coded Radio Networks — reproduction harness\n")
	fmt.Printf("scale=%s seed=%d experiments=%d parallel=%d\n\n", scale, *seed, len(runners), workers)
	grandStart := time.Now()

	// Experiments run concurrently on the engine's shared worker pool
	// (sim.ForEach, the same fan-out the staged slot engine and the trial
	// runner use); each output streams to stdout in index order as soon
	// as it and its predecessors are done, so a serial run keeps the old
	// print-as-you-go behavior.  Experiments are internally deterministic
	// given scale and seed, so concurrency never changes the simulated
	// results (only E12's wall-clock benchmark column varies run to run).
	outputs := make([]*experiments.Output, len(runners))
	elapsed := make([]time.Duration, len(runners))
	done := make([]chan struct{}, len(runners))
	for i := range done {
		done[i] = make(chan struct{})
	}
	go sim.ForEach(len(runners), workers, func(i int) {
		start := time.Now()
		outputs[i] = runners[i].Run(scale, *seed)
		elapsed[i] = time.Since(start)
		close(done[i])
	})

	for i := range runners {
		<-done[i]
		fmt.Print(outputs[i].String())
		fmt.Printf("[%s completed in %v]\n\n",
			runners[i].ID, elapsed[i].Round(time.Millisecond))
	}

	if *csvDir != "" {
		for _, out := range outputs {
			for i, t := range out.Tables {
				name := fmt.Sprintf("%s-%d", out.ID, i+1)
				if err := t.SaveCSV(*csvDir, name); err != nil {
					fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
					os.Exit(1)
				}
			}
		}
	}
	if *jsonPath != "" {
		artifact := jsonRun{Scale: scale.String(), Seed: *seed, Experiments: outputs}
		var err error
		if *jsonPath == "-" {
			err = report.WriteJSON(os.Stdout, artifact)
		} else {
			err = report.SaveJSON(*jsonPath, artifact)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
	}
	fmt.Printf("all experiments completed in %v\n", time.Since(grandStart).Round(time.Millisecond))
}
