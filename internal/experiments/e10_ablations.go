package experiments

import (
	"fmt"

	"repro/internal/arrival"
	"repro/internal/core"
	"repro/internal/report"
	"repro/internal/rng"
	"repro/internal/sim"
)

// E10Ablations tests the design ingredients Section 3 calls critical, by
// weakening each one:
//
//  1. the aggressive ×κ^(1/4) probability update (vs classical ×2);
//  2. admission control (inactive packets wait for silence) vs
//     activating arrivals immediately;
//  3. the κ^(−1/2) initial joining probability — the paper stresses it
//     must be o(1): starting at 1 forces overfull cascades (κ slots
//     each); we also probe the other direction (κ^(−2)) to show the
//     asymmetry (backing on costs 1-slot silent epochs, backing off
//     costs κ-slot overfull epochs).
//
// Wasted slots only matter near capacity (the paper's point: even a few
// lost epochs break 1−o(1)), so the scenarios run at load ≥ 0.93 where
// every wasted epoch turns into backlog.
func E10Ablations(scale Scale, seed uint64) *Output {
	out := &Output{
		ID:    "E10",
		Title: "ablating the critical design choices near capacity",
		Claim: "Section 3: update speed κ^(1/4), admission control, and o(1) starting probability are load-bearing",
	}
	const kappa = 64
	trials := scale.pick(3, 5)

	type variant struct {
		name string
		opts []core.Option
	}
	variants := []variant{
		{"full DBA (paper)", nil},
		{"update ×2 (exp-backoff speed)", []core.Option{core.WithUpdateFactor(2)}},
		{"update ×1.1 (CJP speed)", []core.Option{core.WithUpdateFactor(1.1)}},
		{"no admission control", []core.Option{core.WithoutAdmissionControl()}},
		{"p0 = 1 (greedy start)", []core.Option{core.WithInitialProb(1)}},
		{"p0 = 1/κ² (timid start)", []core.Option{core.WithInitialProb(1.0 / (kappa * kappa))}},
	}

	scenarios := []struct {
		name string
		mk   func() arrival.Process
	}{
		{"batch", nil}, // handled specially below
		{"poisson(0.93)", func() arrival.Process { return &arrival.Poisson{Lambda: 0.93} }},
		{"bursts 1500/1600 (load 0.94)", func() arrival.Process {
			return &arrival.WindowBurst{Window: 1600, PerWindow: 1500}
		}},
	}

	// Scenario 1: one batch — pure completion throughput.
	n := scale.pick(3000, 10000)
	batch := report.NewTable(
		fmt.Sprintf("Scenario 1: batch of n=%d, κ=%d (mean of %d trials)", n, kappa, trials),
		"variant", "completion", "throughput", "slowdown vs full")
	var fullCompletion float64
	for _, v := range variants {
		v := v
		results := sim.RunTrials(trials, seed+uint64(len(v.name)), 0,
			func(trial int, s uint64) *sim.Result {
				return sim.Run(sim.Config{Kappa: kappa, Horizon: 1, Drain: true,
					DrainLimit: int64(n) * 64, Seed: s},
					core.New(kappa, rng.New(s^0xA10), v.opts...),
					&arrival.Batch{At: 0, N: n})
			})
		completion := sim.Aggregate(results, func(r *sim.Result) float64 {
			if r.Pending > 0 {
				return float64(r.Elapsed)
			}
			return float64(r.LastDelivery + 1)
		})
		if v.name == variants[0].name {
			fullCompletion = completion.Mean()
		}
		batch.AddRow(v.name, completion.Mean(), float64(n)/completion.Mean(),
			fmt.Sprintf("%.2fx", completion.Mean()/fullCompletion))
	}
	out.Tables = append(out.Tables, batch)

	// Scenarios 2-3: sustained near-capacity load — wasted epochs turn
	// into backlog growth.
	horizon := int64(scale.pick(60_000, 250_000))
	for _, sc := range scenarios[1:] {
		sc := sc
		tbl := report.NewTable(
			fmt.Sprintf("Scenario: %s, κ=%d, horizon=%d", sc.name, kappa, horizon),
			"variant", "late mean backlog", "final backlog", "delivered frac", "error epochs")
		for _, v := range variants {
			v := v
			var errEpochs int64
			results := sim.RunTrials(trials, seed+uint64(len(v.name))*7, 0,
				func(trial int, s uint64) *sim.Result {
					d := core.New(kappa, rng.New(s^0xB10), v.opts...)
					res := sim.Run(sim.Config{Kappa: kappa, Horizon: horizon, Seed: s},
						d, sc.mk())
					errEpochs += d.Stats().ErrorEpochs
					return res
				})
			late := sim.Aggregate(results, func(r *sim.Result) float64 {
				return r.SegmentMeanBacklog(0.7, 1.0)
			})
			final := sim.Aggregate(results, func(r *sim.Result) float64 { return float64(r.Pending) })
			frac := sim.Aggregate(results, func(r *sim.Result) float64 {
				if r.Arrivals == 0 {
					return 1
				}
				return float64(r.Delivered) / float64(r.Arrivals)
			})
			tbl.AddRow(v.name, late.Mean(), final.Mean(), frac.Mean(), errEpochs/int64(trials))
		}
		out.Tables = append(out.Tables, tbl)
	}
	out.Notes = append(out.Notes,
		"the paper notes contention must change an ω(1)-factor faster than Chang et al.'s (1+ε) updates: the ×1.1 variant shows why — re-centering after every burst takes ~κ^{1/4}/ε× more epochs and the waste accumulates as backlog",
		"p0 = 1 turns every activation wave into an overfull cascade (κ slots per epoch); the paper's requirement that packets start with an o(1) probability is about exactly this",
		"p0 = 1/κ² is comparatively benign in this model because backing on costs 1-slot silent epochs while backing off costs κ-slot overfull epochs — the asymmetry the κ^(−1/2)/κ^(1/4) tuning exploits",
		"admission control is analysis-critical (it makes the potential argument work and keeps PHY-layer groups stable); in the abstract channel its performance effect at these loads is small, since the epoch structure already fixes each epoch's joiner set")
	return out
}
