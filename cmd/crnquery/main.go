// Command crnquery is the analytics CLI over the repo's sweep
// artifacts: it lists, filters, and diffs grid cells across runs and
// commits, and compares engine benchmark artifacts.  Every source kind
// the repo produces is accepted interchangeably — a grid JSON, a
// committed BENCH_sweep.json, a cell-cache directory, or a live
// crnserve URL — and every report is deterministic: same inputs, same
// bytes, so reports are diffable artifacts themselves.
//
// Usage:
//
//	crnquery list -src SOURCE [-where SELECTOR] [-csv] [-out FILE]
//	crnquery diff -a SOURCE -b SOURCE [-where SELECTOR] [-changed] [-csv] [-out FILE]
//	crnquery engine -a OLD.json -b NEW.json [-out FILE]
//
// A SOURCE is a grid artifact (crnsweep -json), a benchmark artifact
// (crnsweep -bench), a cell-cache directory (crnsweep -cache-dir), or
// a crnserve URL (http://host:port).  A SELECTOR is comma-separated
// scenario coordinates, e.g. "protocol=dba,kappa=8,rate=0.3".
//
// Examples:
//
//	crnquery list -src BENCH_sweep.json -where protocol=dba
//	crnquery diff -a BENCH_sweep.json -b /tmp/bench.json -changed
//	crnquery diff -a http://coordinator:8771 -b .sweep-cache -csv -out diff.csv
//	crnquery engine -a BENCH_engine.json -b /tmp/engine.json
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/perf"
	"repro/internal/query"
	"repro/internal/report"
)

var (
	errFlagParse = errors.New("flag parse error")
	// errHelpShown stops a subcommand after -h printed its usage; run
	// translates it to success.
	errHelpShown = errors.New("help shown")
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		if !errors.Is(err, errFlagParse) {
			fmt.Fprintf(os.Stderr, "crnquery: %v\n", err)
		}
		os.Exit(1)
	}
}

const usage = `usage:
  crnquery list -src SOURCE [-where SELECTOR] [-csv] [-out FILE]
  crnquery diff -a SOURCE -b SOURCE [-where SELECTOR] [-changed] [-csv] [-out FILE]
  crnquery engine -a OLD.json -b NEW.json [-out FILE]

A SOURCE is a grid artifact, a benchmark artifact, a cell-cache
directory, or a crnserve URL.
`

// run is main minus the process boundary, for tests.
func run(argv []string, stdout, stderr io.Writer) error {
	if len(argv) == 0 {
		fmt.Fprint(stderr, usage)
		return fmt.Errorf("no subcommand")
	}
	var err error
	switch argv[0] {
	case "list":
		err = runList(argv[1:], stdout, stderr)
	case "diff":
		err = runDiff(argv[1:], stdout, stderr)
	case "engine":
		err = runEngine(argv[1:], stdout, stderr)
	case "-h", "-help", "--help", "help":
		fmt.Fprint(stderr, usage)
		return nil
	default:
		fmt.Fprint(stderr, usage)
		return fmt.Errorf("unknown subcommand %q", argv[0])
	}
	if errors.Is(err, errHelpShown) {
		return nil
	}
	return err
}

// emit writes a report to -out (atomically) or stdout.
func emit(stdout io.Writer, outPath, text string) error {
	if outPath == "" {
		_, err := io.WriteString(stdout, text)
		return err
	}
	return report.SaveFile(outPath, []byte(text))
}

func parseFlags(fs *flag.FlagSet, argv []string, stderr io.Writer) error {
	fs.SetOutput(stderr)
	if err := fs.Parse(argv); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return errHelpShown
		}
		return errFlagParse
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments %v (sources are named by flags)", fs.Args())
	}
	return nil
}

func runList(argv []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("crnquery list", flag.ContinueOnError)
	src := fs.String("src", "", "source to list (required): grid/bench artifact, cache dir, or crnserve URL")
	where := fs.String("where", "", "selector: comma-separated scenario coordinates, e.g. protocol=dba,kappa=8")
	csv := fs.Bool("csv", false, "emit CSV instead of markdown")
	out := fs.String("out", "", "write the report to this file (atomic) instead of stdout")
	if err := parseFlags(fs, argv, stderr); err != nil {
		return err
	}
	if *src == "" {
		return fmt.Errorf("list: -src is required")
	}
	sel, err := query.ParseSelector(*where)
	if err != nil {
		return err
	}
	set, err := query.Load(*src)
	if err != nil {
		return err
	}
	set = set.Filter(sel)
	if *csv {
		return emit(stdout, *out, set.CSV())
	}
	return emit(stdout, *out, set.Markdown())
}

func runDiff(argv []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("crnquery diff", flag.ContinueOnError)
	a := fs.String("a", "", "left source (required)")
	b := fs.String("b", "", "right source (required)")
	where := fs.String("where", "", "selector applied to both sides before the join")
	changed := fs.Bool("changed", false, "fold unchanged cells into a count")
	csv := fs.Bool("csv", false, "emit CSV instead of markdown")
	out := fs.String("out", "", "write the report to this file (atomic) instead of stdout")
	gate := fs.Bool("gate", false, "exit nonzero when the shared cells differ (one-sided keys are reported but not gated)")
	if err := parseFlags(fs, argv, stderr); err != nil {
		return err
	}
	if *a == "" || *b == "" {
		return fmt.Errorf("diff: -a and -b are both required")
	}
	sel, err := query.ParseSelector(*where)
	if err != nil {
		return err
	}
	setA, err := query.Load(*a)
	if err != nil {
		return err
	}
	setB, err := query.Load(*b)
	if err != nil {
		return err
	}
	d := query.Compare(setA.Filter(sel), setB.Filter(sel))
	text := d.Markdown(*changed)
	if *csv {
		text = d.CSV(*changed)
	}
	if err := emit(stdout, *out, text); err != nil {
		return err
	}
	if *gate && d.Changed() > 0 {
		return fmt.Errorf("diff: %d of %d shared cells changed", d.Changed(), len(d.Deltas))
	}
	return nil
}

func runEngine(argv []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("crnquery engine", flag.ContinueOnError)
	a := fs.String("a", "", "old engine benchmark artifact (required)")
	b := fs.String("b", "", "new engine benchmark artifact (required)")
	out := fs.String("out", "", "write the report to this file (atomic) instead of stdout")
	if err := parseFlags(fs, argv, stderr); err != nil {
		return err
	}
	if *a == "" || *b == "" {
		return fmt.Errorf("engine: -a and -b are both required")
	}
	old, err := loadEngineArtifact(*a)
	if err != nil {
		return err
	}
	fresh, err := loadEngineArtifact(*b)
	if err != nil {
		return err
	}
	return emit(stdout, *out, perf.Compare(old, fresh))
}

func loadEngineArtifact(path string) (*perf.Artifact, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var art perf.Artifact
	if err := json.Unmarshal(data, &art); err != nil {
		return nil, fmt.Errorf("%s is not an engine benchmark artifact: %w", path, err)
	}
	return &art, nil
}
