// Package cache is a content-addressed JSON record store: each record
// is one file named by the caller-supplied identity (a hex digest of
// whatever makes the record's content deterministic), written atomically
// so a killed process never leaves a truncated record behind.  The sweep
// layer uses it to persist completed grid cells — a resumed or re-run
// sweep executes only the cells whose identities are missing.
//
// The store is deliberately dumb: it neither computes identities nor
// interprets records.  Identity computation (what invalidates what)
// belongs to the caller; see internal/sweep's cell-identity hash.
//
// The Backend interface generalizes the store into a shared namespace
// with advisory leases (Claim), so several workers — or, through
// internal/cache/httpstore, several machines — can drain one grid by
// claiming cells instead of being assigned them.
//
// # Crash consistency
//
// Record writes are atomic (temp file + rename) and durable: the record
// file is fsynced before the rename and the directory after it, so once
// Put returns, the record survives not just a killed process but a
// power loss.  That stronger guarantee matters because a Put is an
// acknowledgement — resume and work-stealing runs will never re-execute
// a cell whose record they can read, so an acked-then-vanished record
// would silently turn "done" back into "missing" on another machine's
// schedule.  Lease files, by contrast, are written atomically but not
// durably: a lease lost to a power cut merely lets another worker claim
// the cell, which is the behavior a dead worker wants anyway.
package cache

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/report"
)

// Store is a directory of content-addressed JSON records.
type Store struct {
	dir string
	// claims serializes Claim's read-check-write within this process, so
	// goroutine workers sharing one Store get real mutual exclusion;
	// across processes the lease stays advisory (see Claim).
	claims sync.Mutex
}

// Open returns a store rooted at dir, creating the directory if needed.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("cache: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("cache: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// validID gates record identities to lowercase-hex digests: ids become
// file names, so anything else (path separators, "..", empty) is a bug
// in the caller, not a cache miss.
func validID(id string) bool {
	if len(id) < 16 || len(id) > 128 {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// Path returns the file a record with the given identity lives at.
func (s *Store) Path(id string) string { return filepath.Join(s.dir, id+".json") }

// Get loads the record with the given identity into v.  A missing or
// undecodable record is a miss (false, nil) — a corrupt file is
// indistinguishable from an absent one by design, so a damaged cache
// degrades to re-execution rather than a failed run.  Only a malformed
// id or a real I/O error (permissions, not-a-file) is an error.
func (s *Store) Get(id string, v interface{}) (bool, error) {
	if !validID(id) {
		return false, fmt.Errorf("cache: malformed record id %q", id)
	}
	data, err := os.ReadFile(s.Path(id))
	if os.IsNotExist(err) {
		return false, nil
	}
	if err != nil {
		return false, fmt.Errorf("cache: %w", err)
	}
	if err := json.Unmarshal(data, v); err != nil {
		return false, nil // corrupt record = miss; Put will overwrite it
	}
	return true, nil
}

// Put stores v as the record with the given identity, atomically and
// durably (fsync before rename, directory fsync after — see the
// package's crash-consistency note) replacing any previous record, and
// releases any lease on the identity: a completed record supersedes
// every claim.
func (s *Store) Put(id string, v interface{}) error {
	if !validID(id) {
		return fmt.Errorf("cache: malformed record id %q", id)
	}
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return fmt.Errorf("cache: %w", err)
	}
	if err := report.SaveFileDurable(s.Path(id), append(data, '\n')); err != nil {
		return fmt.Errorf("cache: %w", err)
	}
	os.Remove(s.leasePath(id)) // best-effort; a stale lease is harmless once the record exists
	return nil
}

// Len counts the records currently in the store.
func (s *Store) Len() (int, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return 0, fmt.Errorf("cache: %w", err)
	}
	n := 0
	for _, e := range entries {
		if !e.IsDir() && filepath.Ext(e.Name()) == ".json" {
			n++
		}
	}
	return n, nil
}
