// Package experiments defines the reproduction harness: one experiment
// per quantitative claim of the paper (the paper is a theory paper with
// no numbered tables or figures, so the theorems and named claims take
// their place — see DESIGN.md section 5 for the index).  Each experiment
// produces tables and ASCII figures and a pass/fail style note comparing
// the measured shape against the paper's claim.
package experiments

import (
	"fmt"
	"strings"

	"repro/internal/report"
)

// Scale selects experiment sizing.
type Scale int

const (
	// Quick runs CI-sized versions (seconds).
	Quick Scale = iota
	// Full runs paper-sized versions (minutes).
	Full
)

// String returns the scale name.
func (s Scale) String() string {
	if s == Quick {
		return "quick"
	}
	return "full"
}

// pick returns q under Quick and f under Full.
func (s Scale) pick(q, f int) int {
	if s == Quick {
		return q
	}
	return f
}

func (s Scale) pick64(q, f int64) int64 {
	if s == Quick {
		return q
	}
	return f
}

// Output is the rendered result of one experiment.
type Output struct {
	ID     string
	Title  string
	Claim  string // the paper's claim being reproduced
	Tables []*report.Table
	Plots  []string
	Notes  []string
}

// String renders the full experiment output.
func (o *Output) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== %s: %s ===\n", o.ID, o.Title)
	fmt.Fprintf(&b, "Paper claim: %s\n\n", o.Claim)
	for _, t := range o.Tables {
		b.WriteString(t.String())
		b.WriteByte('\n')
	}
	for _, p := range o.Plots {
		b.WriteString(p)
		b.WriteByte('\n')
	}
	for _, n := range o.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Runner is a named experiment entry point.
type Runner struct {
	ID   string
	Name string
	Run  func(scale Scale, seed uint64) *Output
}

// All returns every experiment in index order.
func All() []Runner {
	return []Runner{
		{"E1", "backlog bound (Theorem 11)", E1Backlog},
		{"E2", "packet latency (Theorem 15)", E2Latency},
		{"E3", "batch completion (Theorem 16)", E3Batch},
		{"E4", "throughput vs baselines (headline claim)", E4Throughput},
		{"E5", "error-epoch rarity (Lemmas 3-4)", E5ErrorEpochs},
		{"E6", "potential-function drift (Section 4, Lemmas 5-9)", E6Potential},
		{"E7", "contention control (Section 3)", E7Contention},
		{"E8", "decoding-window decodability (Section 2 practicalities)", E8Decodability},
		{"E9", "ZigZag collision recovery (Section 1 motivation)", E9ZigZag},
		{"E10", "design ablations (Section 3 highlights)", E10Ablations},
		{"E11", "stable-rate frontier (stability framing)", E11StableRate},
		{"E12", "decoding-event detector validation (Definition 1)", E12Detector},
		{"E13", "jamming robustness (beyond-model failure injection)", E13Jamming},
		{"E14", "decoding-window cap sensitivity (Section 2 practicalities)", E14WindowCap},
		{"E15", "large-batch scaling (Theorem 16 asymptotics)", E15Scaling},
		{"E16", "channel regimes: coded vs capture vs no-CD (related work)", E16Regimes},
	}
}

// ByID returns the runner with the given ID (case-insensitive), or nil.
func ByID(id string) *Runner {
	for _, r := range All() {
		if strings.EqualFold(r.ID, id) {
			return &r
		}
	}
	return nil
}

func boolMark(ok bool) string {
	if ok {
		return "yes"
	}
	return "NO"
}
