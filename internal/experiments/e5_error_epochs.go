package experiments

import (
	"math"

	"repro/internal/arrival"
	"repro/internal/asciiplot"
	"repro/internal/core"
	"repro/internal/report"
	"repro/internal/rng"
	"repro/internal/sim"
)

// E5ErrorEpochs reproduces Lemmas 3 and 4: an epoch is an *error epoch*
// (silent at contention ≥ κ^(1/4), or overfull at contention ≤ κ^(3/4))
// with probability at most 2^(−Θ(κ^{1/4})) — error epochs should become
// rapidly rarer as κ grows.
func E5ErrorEpochs(scale Scale, seed uint64) *Output {
	out := &Output{
		ID:    "E5",
		Title: "error-epoch frequency vs κ",
		Claim: "Lemma 3: P[error epoch] ≤ 2^(−Θ(κ^{1/4})); Lemma 4: ≤ √w + O(t/2^Θ(κ^{1/4})) per interval",
	}
	kappas := []int{8, 16, 32, 64, 128, 256}
	if scale == Full {
		kappas = append(kappas, 512, 1024)
	}
	horizon := int64(scale.pick(100_000, 400_000))
	trials := scale.pick(2, 4)

	tbl := report.NewTable("Error epochs under sustained near-capacity load (rate 0.8)",
		"kappa", "epochs", "silent", "successful", "overfull", "errorEpochs", "errorFrac", "κ^(1/4)")
	var xs, ys []float64
	for _, kappa := range kappas {
		var totalEpochs, totalErrors, silent, success, overfull int64
		for trial := 0; trial < trials; trial++ {
			s := seed + uint64(kappa)*101 + uint64(trial)
			var st core.Stats
			d := core.New(kappa, rng.New(s^0xE5))
			res := sim.Run(sim.Config{Kappa: kappa, Horizon: horizon, Seed: s},
				d, arrival.NewEvenPaced(0.8))
			st = d.Stats()
			_ = res
			totalEpochs += st.Epochs()
			totalErrors += st.ErrorEpochs
			silent += st.SilentEpochs
			success += st.SuccessfulEpochs
			overfull += st.OverfullEpochs
		}
		frac := float64(totalErrors) / math.Max(1, float64(totalEpochs))
		tbl.AddRow(kappa, totalEpochs, silent, success, overfull, totalErrors, frac,
			math.Pow(float64(kappa), 0.25))
		xs = append(xs, math.Pow(float64(kappa), 0.25))
		if frac > 0 {
			ys = append(ys, frac)
		} else {
			ys = append(ys, 0.5/math.Max(1, float64(totalEpochs))) // plotting floor: < 1/epochs
		}
	}
	out.Tables = append(out.Tables, tbl)

	plot := asciiplot.Plot{
		Title:  "Error-epoch fraction vs κ^(1/4)  (paper: ≤ 2^(−Θ(κ^{1/4})): straight line down on log scale)",
		XLabel: "kappa^(1/4)", YLabel: "error fraction",
		Width: 60, Height: 14, LogY: true,
	}
	plot.Add(asciiplot.Series{Name: "measured (0 plotted as <1/epochs)", X: xs, Y: ys})
	out.Plots = append(out.Plots, plot.Render())
	out.Notes = append(out.Notes,
		"error classification uses Definition 2 exactly, evaluated per epoch by the protocol's own accounting",
		"zero observed errors at large κ are consistent with the exponential bound (expected count << 1)")
	return out
}
