// Quickstart: run the Decodable Backoff Algorithm on a batch of packets
// and print the headline numbers — the 60-second tour of the library.
package main

import (
	"fmt"

	crn "repro"
)

func main() {
	const (
		kappa = 64    // decoding threshold: the base station can use slots with ≤ κ simultaneous transmitters
		n     = 10000 // packets, all arriving at slot 0
	)

	proto := crn.NewDecodableBackoff(kappa, 1)
	res := crn.Run(crn.Config{
		Kappa:   kappa,
		Horizon: 1, // arrivals happen at slot 0 only
		Drain:   true,
		Seed:    2,
	}, proto, crn.NewBatch(n))

	fmt.Printf("Decodable Backoff on the Coded Radio Network Model (κ = %d)\n\n", kappa)
	fmt.Printf("batch size:        %d packets\n", res.Arrivals)
	fmt.Printf("completion time:   %d slots\n", res.LastDelivery+1)
	fmt.Printf("throughput:        %.4f packets/slot  (paper: 1 − Θ(1/ln κ))\n", res.CompletionThroughput())
	fmt.Printf("Theorem 16 bound:  %.0f slots (n(1+10/κ)+O(κ))\n",
		float64(n)*(1+10.0/kappa)+4*kappa)
	fmt.Printf("slots:             %d good, %d bad, %d silent\n",
		res.Channel.GoodSlots, res.Channel.BadSlots, res.Channel.SilentSlots)
	fmt.Printf("decoding events:   %d (mean group size %.1f)\n",
		res.Channel.Events, float64(res.Delivered)/float64(res.Channel.Events))
	fmt.Printf("latency:           p50=%.0f  p99=%.0f  max=%.0f slots\n",
		res.LatencyQuantile(0.50), res.LatencyQuantile(0.99), res.Latency.Max())

	// For contrast: the strongest classical protocol (genie-aided ALOHA,
	// throughput 1/e) on the classical channel (κ = 1).
	aloha := crn.Run(crn.Config{Kappa: 1, Horizon: 1, Drain: true, Seed: 3},
		crn.NewGenieAloha(4, 1), crn.NewBatch(n))
	fmt.Printf("\ngenie ALOHA (κ=1): %.4f packets/slot — the 1/e ≈ 0.368 classical ceiling\n",
		aloha.CompletionThroughput())
}
