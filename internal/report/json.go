package report

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// WriteJSON writes v as indented JSON followed by a newline — the
// machine-readable artifact format shared by the sweep and experiment
// harnesses.  Serialization is deterministic for deterministic inputs
// (encoding/json sorts map keys and struct fields keep source order).
func WriteJSON(w io.Writer, v interface{}) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return fmt.Errorf("report: %w", err)
	}
	data = append(data, '\n')
	if _, err := w.Write(data); err != nil {
		return fmt.Errorf("report: %w", err)
	}
	return nil
}

// SaveJSON writes v's JSON rendering to path, creating parent
// directories as needed.
func SaveJSON(path string, v interface{}) error {
	if dir := filepath.Dir(path); dir != "." && dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return fmt.Errorf("report: %w", err)
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("report: %w", err)
	}
	defer f.Close()
	if err := WriteJSON(f, v); err != nil {
		return err
	}
	return f.Close()
}
