// Package linalg provides dense matrices over GF(2) and GF(2^8) with
// Gaussian elimination, rank, and inversion.
//
// The coded radio network model's information-theoretic constraint —
// decoding j packets needs j good slots — is realized by linear network
// coding: the slots of a decoding window form a transmission matrix, and
// decoding succeeds exactly when that matrix has full rank.  This package
// supplies the rank/inversion machinery used by package rlnc and by the
// decodability experiment (E8).
package linalg

import (
	"fmt"
	"math/bits"
	"strings"
)

// BitMatrix is a dense matrix over GF(2) with bit-packed rows.
// The zero value is an empty matrix; use NewBitMatrix to size one.
type BitMatrix struct {
	rows, cols int
	words      int // uint64 words per row
	data       []uint64
}

// NewBitMatrix returns a rows×cols zero matrix over GF(2).
func NewBitMatrix(rows, cols int) *BitMatrix {
	if rows < 0 || cols < 0 {
		panic("linalg: negative matrix dimension")
	}
	words := (cols + 63) / 64
	return &BitMatrix{rows: rows, cols: cols, words: words, data: make([]uint64, rows*words)}
}

// Rows returns the number of rows.
func (m *BitMatrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *BitMatrix) Cols() int { return m.cols }

func (m *BitMatrix) row(i int) []uint64 {
	return m.data[i*m.words : (i+1)*m.words]
}

// RowWords returns row i's bit-packed words, aliasing the matrix
// storage.  It is the unchecked accessor for hot loops: only the row
// index is validated (by the slice bounds), never per-bit coordinates,
// so kernels can read and write whole words without Get/Set's
// per-call bounds check.  Callers that write must keep bits at or
// beyond Cols zero — every word-parallel kernel assumes it.
func (m *BitMatrix) RowWords(i int) []uint64 { return m.row(i) }

// XorRows adds (XORs) row src into row dst, whole words at a time —
// the bulk row-update kernel behind elimination and decode-window
// maintenance.
func (m *BitMatrix) XorRows(dst, src int) { m.xorRow(dst, src) }

// RowOnes returns the number of set bits in row i (a population-count
// sweep over the row's words).
func (m *BitMatrix) RowOnes(i int) int {
	n := 0
	for _, w := range m.row(i) {
		n += bits.OnesCount64(w)
	}
	return n
}

// Get returns the bit at (i, j).
func (m *BitMatrix) Get(i, j int) bool {
	m.check(i, j)
	return m.row(i)[j/64]>>(uint(j)%64)&1 == 1
}

// Set assigns the bit at (i, j).
func (m *BitMatrix) Set(i, j int, v bool) {
	m.check(i, j)
	w := &m.row(i)[j/64]
	mask := uint64(1) << (uint(j) % 64)
	if v {
		*w |= mask
	} else {
		*w &^= mask
	}
}

func (m *BitMatrix) check(i, j int) {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("linalg: index (%d,%d) out of %dx%d matrix", i, j, m.rows, m.cols))
	}
}

// Clone returns a deep copy.
func (m *BitMatrix) Clone() *BitMatrix {
	c := NewBitMatrix(m.rows, m.cols)
	copy(c.data, m.data)
	return c
}

// xorRow adds (XORs) row src into row dst.
func (m *BitMatrix) xorRow(dst, src int) {
	d, s := m.row(dst), m.row(src)
	for k := range d {
		d[k] ^= s[k]
	}
}

// xorRowFrom adds row src into row dst starting at word `from` — the
// masked rank update: during forward elimination every word before the
// pivot word is already zero in both rows, so the XOR sweep skips them.
func (m *BitMatrix) xorRowFrom(dst, src, from int) {
	d := m.data[dst*m.words+from : (dst+1)*m.words]
	s := m.data[src*m.words+from : (src+1)*m.words]
	for k := range d {
		d[k] ^= s[k]
	}
}

// swapRows exchanges rows i and j.
func (m *BitMatrix) swapRows(i, j int) {
	if i == j {
		return
	}
	a, b := m.row(i), m.row(j)
	for k := range a {
		a[k], b[k] = b[k], a[k]
	}
}

// Rank returns the rank of the matrix over GF(2).  The receiver is not
// modified.
//
// Implementation: forward elimination with word-parallel kernels.  The
// pivot search tests one word per candidate row instead of calling Get
// (whose per-bit bounds check dominates tight loops), and each update
// is a masked row-XOR starting at the pivot word — once elimination
// has passed a column, every row below the frontier is zero in all
// earlier words, so the sweep skips them.
func (m *BitMatrix) Rank() int {
	w := m.Clone()
	rank := 0
	for col := 0; col < w.cols && rank < w.rows; col++ {
		wi, mask := col>>6, uint64(1)<<(uint(col)&63)
		pivot := -1
		for i := rank; i < w.rows; i++ {
			if w.data[i*w.words+wi]&mask != 0 {
				pivot = i
				break
			}
		}
		if pivot < 0 {
			continue
		}
		w.swapRows(rank, pivot)
		for i := rank + 1; i < w.rows; i++ {
			if w.data[i*w.words+wi]&mask != 0 {
				w.xorRowFrom(i, rank, wi)
			}
		}
		rank++
	}
	return rank
}

// Invertible reports whether the matrix is square and has full rank.
func (m *BitMatrix) Invertible() bool {
	return m.rows == m.cols && m.Rank() == m.rows
}

// Inverse returns the inverse matrix, or an error if the matrix is not
// square or is singular.
func (m *BitMatrix) Inverse() (*BitMatrix, error) {
	if m.rows != m.cols {
		return nil, fmt.Errorf("linalg: inverse of non-square %dx%d matrix", m.rows, m.cols)
	}
	n := m.rows
	w := m.Clone()
	inv := IdentityBit(n)
	for col := 0; col < n; col++ {
		wi, mask := col>>6, uint64(1)<<(uint(col)&63)
		pivot := -1
		for i := col; i < n; i++ {
			if w.data[i*w.words+wi]&mask != 0 {
				pivot = i
				break
			}
		}
		if pivot < 0 {
			return nil, fmt.Errorf("linalg: singular GF(2) matrix")
		}
		w.swapRows(col, pivot)
		inv.swapRows(col, pivot)
		for i := 0; i < n; i++ {
			if i != col && w.data[i*w.words+wi]&mask != 0 {
				w.xorRow(i, col)
				inv.xorRow(i, col)
			}
		}
	}
	return inv, nil
}

// IdentityBit returns the n×n identity matrix over GF(2).
func IdentityBit(n int) *BitMatrix {
	m := NewBitMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, true)
	}
	return m
}

// MulBit returns the matrix product a·b over GF(2).
func MulBit(a, b *BitMatrix) *BitMatrix {
	if a.cols != b.rows {
		panic(fmt.Sprintf("linalg: MulBit dimension mismatch %dx%d · %dx%d", a.rows, a.cols, b.rows, b.cols))
	}
	out := NewBitMatrix(a.rows, b.cols)
	for i := 0; i < a.rows; i++ {
		ar := a.row(i)
		or := out.row(i)
		for k := 0; k < a.cols; k++ {
			if ar[k/64]>>(uint(k)%64)&1 == 1 {
				br := b.row(k)
				for w := range or {
					or[w] ^= br[w]
				}
			}
		}
	}
	return out
}

// PopCount returns the number of one-bits in the matrix.
func (m *BitMatrix) PopCount() int {
	n := 0
	for _, w := range m.data {
		n += bits.OnesCount64(w)
	}
	return n
}

// Equal reports whether two bit matrices have identical shape and contents.
func (m *BitMatrix) Equal(o *BitMatrix) bool {
	if m.rows != o.rows || m.cols != o.cols {
		return false
	}
	for i, w := range m.data {
		if w != o.data[i] {
			return false
		}
	}
	return true
}

// String renders the matrix as rows of 0s and 1s (testing/debugging aid).
func (m *BitMatrix) String() string {
	var b strings.Builder
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			if m.Get(i, j) {
				b.WriteByte('1')
			} else {
				b.WriteByte('0')
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}
