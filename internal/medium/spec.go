package medium

import (
	"fmt"
	"strconv"
	"strings"
)

// Spec is the parsed form of a channel-model descriptor — the one
// canonical currency every layer (CLIs, sweep expansion, the emulator,
// the facade) resolves media through.  The grammar:
//
//	coded[:K[/W]]                    the paper's κ-threshold channel;
//	                                 K overrides the decoding threshold,
//	                                 W the decoding-window cap
//	classical[:none|binary|ternary]  the collision channel (default
//	                                 ternary, the strongest feedback)
//	capture[:K]                      the high-SNR capture channel
//
// Zero-valued Kappa and MaxWindow mean "from context": Build fills them
// from its arguments, so a bare "coded" behaves exactly like the
// pre-Spec constructors that took kappa/maxWindow parameters alongside
// the descriptor.  ParseSpec(s.String()) == s for every Spec ParseSpec
// returns, and String always emits the canonical spelling (e.g. a bare
// "classical" parses to, and prints as, "classical:ternary").
type Spec struct {
	// Model is the channel family: "coded", "classical", or "capture".
	Model string
	// CD is the collision-detection feedback mode; classical only.
	CD CD
	// Kappa is the embedded decoding threshold; 0 = take it from the
	// Build call's context.  Coded and capture only.
	Kappa int
	// MaxWindow is the embedded decoding-window cap; 0 = take it from
	// the Build call's context.  Coded only.
	MaxWindow int
}

// ParseSpec parses a channel-model descriptor.  The empty descriptor
// parses as the coded channel, matching New's historical default.
func ParseSpec(desc string) (Spec, error) {
	model, arg, hasArg := strings.Cut(desc, ":")
	if model == "" && !hasArg {
		model = "coded"
	}
	switch model {
	case "coded":
		s := Spec{Model: "coded"}
		if !hasArg {
			return s, nil
		}
		kStr, wStr, hasW := strings.Cut(arg, "/")
		k, err := strconv.Atoi(kStr)
		if err != nil || k < 1 {
			return Spec{}, fmt.Errorf("medium: bad descriptor %q: kappa must be a positive integer", desc)
		}
		s.Kappa = k
		if hasW {
			w, err := strconv.Atoi(wStr)
			if err != nil || w < 1 {
				return Spec{}, fmt.Errorf("medium: bad descriptor %q: window cap must be a positive integer", desc)
			}
			s.MaxWindow = w
		}
		return s, nil
	case "classical":
		s := Spec{Model: "classical", CD: CDTernary}
		if !hasArg {
			return s, nil
		}
		cd, err := ParseCD(arg)
		if err != nil {
			return Spec{}, fmt.Errorf("medium: bad descriptor %q: %v", desc, err)
		}
		s.CD = cd
		return s, nil
	case "capture":
		s := Spec{Model: "capture"}
		if !hasArg {
			return s, nil
		}
		k, err := strconv.Atoi(arg)
		if err != nil || k < 1 {
			return Spec{}, fmt.Errorf("medium: bad descriptor %q: kappa must be a positive integer", desc)
		}
		s.Kappa = k
		return s, nil
	}
	return Spec{}, fmt.Errorf("medium: unknown channel model %q (want coded[:K[/W]], classical[:none|binary|ternary], or capture[:K])", desc)
}

// String returns the canonical descriptor; ParseSpec round-trips it.
func (s Spec) String() string {
	switch s.Model {
	case "coded":
		switch {
		case s.Kappa == 0:
			return "coded"
		case s.MaxWindow == 0:
			return "coded:" + strconv.Itoa(s.Kappa)
		default:
			return "coded:" + strconv.Itoa(s.Kappa) + "/" + strconv.Itoa(s.MaxWindow)
		}
	case "classical":
		return "classical:" + s.CD.String()
	case "capture":
		if s.Kappa == 0 {
			return "capture"
		}
		return "capture:" + strconv.Itoa(s.Kappa)
	}
	return fmt.Sprintf("Spec(%q)", s.Model)
}

// Build constructs the medium the spec describes.  kappa and maxWindow
// supply the context defaults for fields the descriptor left embedded
// at zero; an embedded value always wins.  Classical media ignore both
// (κ = 1 semantics, no decoding windows).
func (s Spec) Build(kappa, maxWindow int) (Medium, error) {
	switch s.Model {
	case "coded":
		k, w := s.Kappa, s.MaxWindow
		if k == 0 {
			k = kappa
		}
		if w == 0 {
			w = maxWindow
		}
		if k < 1 {
			return nil, fmt.Errorf("medium: coded channel needs kappa ≥ 1 (got %d)", k)
		}
		if w < 0 {
			return nil, fmt.Errorf("medium: coded channel needs window cap ≥ 0 (got %d)", w)
		}
		return NewCoded(k, w), nil
	case "classical":
		if s.CD > CDTernary {
			return nil, fmt.Errorf("medium: invalid collision-detection mode %d", s.CD)
		}
		return NewClassical(s.CD), nil
	case "capture":
		k := s.Kappa
		if k == 0 {
			k = kappa
		}
		if k < 1 {
			return nil, fmt.Errorf("medium: capture channel needs kappa ≥ 1 (got %d)", k)
		}
		return NewCapture(k), nil
	}
	return nil, fmt.Errorf("medium: unknown channel model %q (want coded, classical, or capture)", s.Model)
}
