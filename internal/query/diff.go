package query

import (
	"fmt"
	"math"
	"strings"
)

// metricNames are the headline metrics every source carries, in report
// column order.
var metricNames = []string{"throughput", "max_backlog", "latency_p99", "error_epochs"}

// metrics extracts the comparable metric vector from a cell, in
// metricNames order.
func metrics(c *Cell) [4]float64 {
	return [4]float64{c.Throughput, c.MaxBacklog, c.LatencyP99, float64(c.ErrorEpochs)}
}

// Delta is one joined cell: the metric vector on each side, compared
// exactly.  Same is exact float equality on every metric — reruns of
// the same spec and seed are byte-identical in this repo, so any
// inexactness is a real change, not noise.
type Delta struct {
	Key  string
	A, B [4]float64
	Same bool
}

// Diff joins two Sets by cell key.  Deltas lists the shared cells in
// key order; OnlyA and OnlyB list the keys present on one side only.
type Diff struct {
	A, B   *Set
	Deltas []Delta
	OnlyA  []string
	OnlyB  []string
}

// Changed counts shared cells whose metrics differ.
func (d *Diff) Changed() int {
	n := 0
	for i := range d.Deltas {
		if !d.Deltas[i].Same {
			n++
		}
	}
	return n
}

// Compare joins two Sets by cell key.  Both are already sorted, so the
// join is a linear merge and the output order is the key order — the
// same bytes for the same inputs, every time.
func Compare(a, b *Set) *Diff {
	d := &Diff{A: a, B: b}
	i, j := 0, 0
	for i < len(a.Cells) && j < len(b.Cells) {
		ka, kb := a.Cells[i].Key(), b.Cells[j].Key()
		switch {
		case ka < kb:
			d.OnlyA = append(d.OnlyA, ka)
			i++
		case ka > kb:
			d.OnlyB = append(d.OnlyB, kb)
			j++
		default:
			ma, mb := metrics(&a.Cells[i]), metrics(&b.Cells[j])
			d.Deltas = append(d.Deltas, Delta{Key: ka, A: ma, B: mb, Same: ma == mb})
			i++
			j++
		}
	}
	for ; i < len(a.Cells); i++ {
		d.OnlyA = append(d.OnlyA, a.Cells[i].Key())
	}
	for ; j < len(b.Cells); j++ {
		d.OnlyB = append(d.OnlyB, b.Cells[j].Key())
	}
	return d
}

// Markdown renders the diff as a deterministic markdown report.  With
// changedOnly, unchanged cells are folded into a count instead of rows.
func (d *Diff) Markdown(changedOnly bool) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "# Cell diff\n\n- A: %s (%s, %d cells)\n- B: %s (%s, %d cells)\n",
		d.A.Label, d.A.Kind, len(d.A.Cells), d.B.Label, d.B.Kind, len(d.B.Cells))
	changed := d.Changed()
	fmt.Fprintf(&sb, "- shared: %d (%d changed), only in A: %d, only in B: %d\n",
		len(d.Deltas), changed, len(d.OnlyA), len(d.OnlyB))
	if len(d.Deltas) > 0 {
		sb.WriteString("\n| cell |")
		for _, m := range metricNames {
			fmt.Fprintf(&sb, " %s A | %s B | Δ |", m, m)
		}
		sb.WriteString("\n|---|")
		sb.WriteString(strings.Repeat("---|---|---|", len(metricNames)))
		sb.WriteString("\n")
		hidden := 0
		for i := range d.Deltas {
			dl := &d.Deltas[i]
			if changedOnly && dl.Same {
				hidden++
				continue
			}
			fmt.Fprintf(&sb, "| %s |", dl.Key)
			for m := range metricNames {
				fmt.Fprintf(&sb, " %s | %s | %s |",
					fmtFloat(dl.A[m]), fmtFloat(dl.B[m]), fmtDelta(dl.A[m], dl.B[m]))
			}
			sb.WriteString("\n")
		}
		if hidden > 0 {
			fmt.Fprintf(&sb, "\n%d unchanged cells hidden.\n", hidden)
		}
	}
	writeOnly(&sb, "Only in A", d.OnlyA)
	writeOnly(&sb, "Only in B", d.OnlyB)
	return sb.String()
}

func writeOnly(sb *strings.Builder, title string, keys []string) {
	if len(keys) == 0 {
		return
	}
	fmt.Fprintf(sb, "\n## %s\n\n", title)
	for _, k := range keys {
		fmt.Fprintf(sb, "- %s\n", k)
	}
}

// CSV renders the diff's shared cells as CSV with one row per cell and
// a side column for one-sided keys, machine-friendly and byte-stable.
func (d *Diff) CSV(changedOnly bool) string {
	var sb strings.Builder
	sb.WriteString("cell,side")
	for _, m := range metricNames {
		fmt.Fprintf(&sb, ",%s_a,%s_b,%s_delta", m, m, m)
	}
	sb.WriteString("\n")
	for i := range d.Deltas {
		dl := &d.Deltas[i]
		if changedOnly && dl.Same {
			continue
		}
		fmt.Fprintf(&sb, "%s,both", csvField(dl.Key))
		for m := range metricNames {
			fmt.Fprintf(&sb, ",%s,%s,%s", fmtFloat(dl.A[m]), fmtFloat(dl.B[m]), fmtDelta(dl.A[m], dl.B[m]))
		}
		sb.WriteString("\n")
	}
	for _, k := range d.OnlyA {
		fmt.Fprintf(&sb, "%s,a%s\n", csvField(k), strings.Repeat(",,,", len(metricNames)))
	}
	for _, k := range d.OnlyB {
		fmt.Fprintf(&sb, "%s,b%s\n", csvField(k), strings.Repeat(",,,", len(metricNames)))
	}
	return sb.String()
}

// csvField quotes a CSV field if it needs it.  Cell keys never do
// today, but the renderer should not depend on that.
func csvField(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}

// fmtDelta renders b-a, signed, or "=" for an exact match.
func fmtDelta(a, b float64) string {
	if a == b {
		return "="
	}
	if math.IsNaN(a) || math.IsNaN(b) {
		return "?"
	}
	diff := b - a
	s := fmtFloat(diff)
	if diff > 0 {
		s = "+" + s
	}
	return s
}

// Markdown renders a Set as a deterministic markdown table, one row
// per cell in key order.
func (s *Set) Markdown() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "# Cells: %s\n\n- kind: %s, cells: %d", s.Label, s.Kind, len(s.Cells))
	if s.Skipped > 0 {
		fmt.Fprintf(&sb, ", skipped records: %d", s.Skipped)
	}
	sb.WriteString("\n")
	if len(s.Cells) == 0 {
		return sb.String()
	}
	sb.WriteString("\n| cell | trials | throughput | max_backlog | latency_p50 | latency_p99 | error_epochs |\n")
	sb.WriteString("|---|---|---|---|---|---|---|\n")
	for i := range s.Cells {
		c := &s.Cells[i]
		trials := "-"
		if c.Trials > 0 {
			trials = fmt.Sprintf("%d", c.Trials)
		}
		fmt.Fprintf(&sb, "| %s | %s | %s | %s | %s | %s | %d |\n",
			c.Key(), trials, fmtFloat(c.Throughput), fmtFloat(c.MaxBacklog),
			fmtFloat(c.LatencyP50), fmtFloat(c.LatencyP99), c.ErrorEpochs)
	}
	return sb.String()
}

// CSV renders a Set as CSV, one row per cell in key order.
func (s *Set) CSV() string {
	var sb strings.Builder
	sb.WriteString("cell,trials,throughput,max_backlog,latency_p50,latency_p99,error_epochs\n")
	for i := range s.Cells {
		c := &s.Cells[i]
		trials := ""
		if c.Trials > 0 {
			trials = fmt.Sprintf("%d", c.Trials)
		}
		fmt.Fprintf(&sb, "%s,%s,%s,%s,%s,%s,%d\n",
			csvField(c.Key()), trials, fmtFloat(c.Throughput), fmtFloat(c.MaxBacklog),
			fmtFloat(c.LatencyP50), fmtFloat(c.LatencyP99), c.ErrorEpochs)
	}
	return sb.String()
}
