package core

import (
	"testing"

	"repro/internal/channel"
	"repro/internal/protocol"
	"repro/internal/rng"
)

// TestPartitionedContract checks the Partitioned invariants directly on
// the DBA: the shard-order concatenation of ShardTransmitters equals
// Transmitters for the same epoch, and the per-shard pending counts sum
// to Pending through injections and deliveries.
func TestPartitionedContract(t *testing.T) {
	const kappa = 16
	d := New(kappa, rng.New(7))
	ch := channel.New(kappa, 4*kappa)

	ids := make([]channel.PacketID, 200)
	for i := range ids {
		ids[i] = channel.PacketID(i)
	}
	d.Inject(0, ids)

	for now := int64(0); now < 2000 && d.Pending() > 0; now++ {
		// The monolithic call both starts the epoch (when needed) and
		// collects; the shard sweep afterwards is a pure read of the same
		// epoch, so the concatenation must reproduce it exactly.
		tx := d.Transmitters(now, nil)
		var cat []channel.PacketID
		for sh := 0; sh < d.Shards(); sh++ {
			cat = d.ShardTransmitters(now, sh, cat)
		}
		if len(cat) != len(tx) {
			t.Fatalf("slot %d: shard concat %d transmitters, monolithic %d", now, len(cat), len(tx))
		}
		for i := range tx {
			if cat[i] != tx[i] {
				t.Fatalf("slot %d: shard concat diverges at %d: %d vs %d", now, i, cat[i], tx[i])
			}
		}

		sum := 0
		for sh := 0; sh < d.Shards(); sh++ {
			sum += d.ShardPending(sh)
		}
		if sum != d.Pending() {
			t.Fatalf("slot %d: shard pendings sum %d, Pending %d", now, sum, d.Pending())
		}

		class, ev := ch.Step(now, tx)
		d.ReduceSlot(channel.Feedback{Slot: now, Silent: class == channel.Silent, Event: ev})
	}
	if d.Pending() != 0 {
		t.Fatalf("batch not drained: %d pending", d.Pending())
	}
	for sh := 0; sh < d.Shards(); sh++ {
		if d.ShardPending(sh) != 0 {
			t.Fatalf("shard %d pending %d after drain", sh, d.ShardPending(sh))
		}
	}
	if d.Shards() != protocol.NumShards {
		t.Fatalf("Shards() = %d, want %d", d.Shards(), protocol.NumShards)
	}
}
