package experiments

import (
	"fmt"
	"time"

	"repro/internal/channel"
	"repro/internal/report"
	"repro/internal/rng"
)

// E12Detector validates the production Definition 1 detector against the
// brute-force reference on randomized schedules (bit-identical events
// required) and measures its slot-processing throughput, which is what
// makes the w = 16κ² horizons of E1/E2 affordable.
func E12Detector(scale Scale, seed uint64) *Output {
	out := &Output{
		ID:    "E12",
		Title: "decoding-event detector: equivalence and throughput",
		Claim: "Definition 1 implemented exactly (iterative, disjoint windows, earliest-start delivery)",
	}
	r := rng.New(seed ^ 0xE12)
	schedules := scale.pick(300, 1000)
	slotsPer := int64(scale.pick(80, 200))

	var eventsSeen, deliveredSeen int64
	mismatches := 0
	for trial := 0; trial < schedules; trial++ {
		kappa := 1 + r.Intn(6)
		maxWindow := 0
		if r.Bernoulli(0.5) {
			maxWindow = 1 + r.Intn(10)
		}
		numPackets := 1 + r.Intn(12)
		fast := channel.New(kappa, maxWindow)
		ref := channel.NewReference(kappa, maxWindow)
		for slot := int64(0); slot < slotsPer; slot++ {
			var txs []channel.PacketID
			for p := 0; p < numPackets; p++ {
				if r.Bernoulli(0.35) {
					txs = append(txs, channel.PacketID(p))
				}
			}
			fc, fe := fast.Step(slot, txs)
			rc, re := ref.Step(slot, txs)
			if fc != rc || (fe == nil) != (re == nil) {
				mismatches++
				continue
			}
			if fe != nil {
				eventsSeen++
				deliveredSeen += int64(fe.Size())
				if fe.Slot != re.Slot || fe.WindowStart != re.WindowStart || fe.Size() != re.Size() {
					mismatches++
					continue
				}
				for i := range fe.Packets {
					if fe.Packets[i] != re.Packets[i] {
						mismatches++
						break
					}
				}
			}
		}
	}
	eq := report.NewTable("Equivalence against brute-force Definition 1",
		"schedules", "slots/schedule", "events", "delivered", "mismatches", "exact")
	eq.AddRow(schedules, slotsPer, eventsSeen, deliveredSeen, mismatches, boolMark(mismatches == 0))
	out.Tables = append(out.Tables, eq)

	// Throughput: repeated group-of-16 epochs on a κ=64 channel.
	perf := report.NewTable("Detector throughput (group-of-16 epochs, κ=64, window cap 256)",
		"slots", "events", "elapsed", "slots/sec")
	ch := channel.New(64, 256)
	group := make([]channel.PacketID, 16)
	for i := range group {
		group[i] = channel.PacketID(i)
	}
	slots := int64(scale.pick(500_000, 2_000_000))
	var events int64
	start := time.Now()
	for s := int64(0); s < slots; s++ {
		if _, ev := ch.Step(s, group); ev != nil {
			events++
			for j := range group {
				group[j] += 16
			}
		}
	}
	elapsed := time.Since(start)
	perf.AddRow(slots, events, elapsed.String(),
		fmt.Sprintf("%.2e", float64(slots)/elapsed.Seconds()))
	out.Tables = append(out.Tables, perf)
	out.Notes = append(out.Notes,
		"the fast detector tracks per-packet last occurrences and scans candidate window starts in one suffix pass per good slot")
	return out
}
