package experiments

import (
	"fmt"

	"repro/internal/arrival"
	"repro/internal/core"
	"repro/internal/report"
	"repro/internal/rng"
	"repro/internal/sim"
)

// E14WindowCap probes the base station's memory budget: the paper notes
// that "in practice, decoding windows will also be limited in length"
// and that the algorithm only needs windows of length O(κ).  The harness
// sweeps the window cap from κ/4 to 4κ and unbounded:
//
//   - cap ≥ κ: no effect — successful epochs need at most κ-slot windows
//     (Lemma 2), so the O(κ) claim is exactly reproduced;
//   - cap < κ: groups larger than the cap can never decode, so the
//     protocol behaves like one with an effective threshold of the cap
//     while still paying the κ-slot overfull timeout — throughput
//     degrades but the protocol stays safe and live.
func E14WindowCap(scale Scale, seed uint64) *Output {
	out := &Output{
		ID:    "E14",
		Title: "decoding-window cap sensitivity (base-station memory)",
		Claim: "Section 2: windows of length O(κ) suffice; the algorithm needs none longer than κ",
	}
	const kappa = 64
	n := scale.pick(3000, 10000)
	trials := scale.pick(3, 5)

	tbl := report.NewTable(
		fmt.Sprintf("Batch of n=%d at κ=%d under decoding-window caps", n, kappa),
		"maxWindow", "completion", "throughput", "delivered frac", "pruned packets")
	caps := []struct {
		label string
		value int
	}{
		{"κ/4 = 16", kappa / 4},
		{"κ/2 = 32", kappa / 2},
		{"κ = 64", kappa},
		{"2κ = 128", 2 * kappa},
		{"4κ = 256 (default)", 4 * kappa},
		{"unbounded", sim.NoWindowCap},
	}
	for _, c := range caps {
		c := c
		results := sim.RunTrials(trials, seed+uint64(c.value)*17, 0,
			func(trial int, s uint64) *sim.Result {
				return sim.Run(sim.Config{Kappa: kappa, MaxWindow: c.value,
					Horizon: 1, Drain: true, DrainLimit: int64(n) * 64, Seed: s},
					core.New(kappa, rng.New(s^0xE14)), &arrival.Batch{At: 0, N: n})
			})
		completion := sim.Aggregate(results, func(r *sim.Result) float64 {
			if r.Pending > 0 {
				return float64(r.Elapsed)
			}
			return float64(r.LastDelivery + 1)
		})
		frac := sim.Aggregate(results, func(r *sim.Result) float64 {
			return float64(r.Delivered) / float64(r.Arrivals)
		})
		pruned := sim.Aggregate(results, func(r *sim.Result) float64 {
			return float64(r.Channel.PrunedPackets)
		})
		tbl.AddRow(c.label, completion.Mean(), float64(n)/completion.Mean(),
			frac.Mean(), pruned.Mean())
	}
	out.Tables = append(out.Tables, tbl)
	out.Notes = append(out.Notes,
		"caps at or above κ are indistinguishable: Lemma 2 windows coincide with epochs, never longer than κ",
		"caps below κ forbid the largest groups: those epochs hit the κ-slot timeout and their probability drops recalibrate group sizes under the cap — slower, but safe and live",
		"every run delivers every packet (delivered frac = 1): the cap affects performance, not correctness")
	return out
}
