// Package core implements the Decodable Backoff Algorithm, the primary
// contribution of "Contention Resolution for Coded Radio Networks"
// (Bender, Gilbert, Kuhn, Kuszmaul, Médard — SPAA 2022).
//
// The algorithm divides time into epochs.  At the start of an epoch every
// active packet j joins independently with its joining probability p_j;
// joiners broadcast in every slot of the epoch.  An epoch ends on the
// first of three triggers, each audible to every device:
//
//   - a silent slot          → silent epoch (nobody joined; length 1)
//   - a decoding event       → successful epoch (joiners delivered)
//   - κ slots with no event  → overfull epoch (more than κ joined)
//
// Probabilities update multiplicatively at epoch ends: ×κ^(1/4) after a
// silent epoch, ÷κ^(1/4) after an overfull one, unchanged after success.
// Newly arrived packets are inactive — they listen but never broadcast —
// and activate with p = κ^(−1/2) upon hearing a silent slot (admission
// control).  The target contention is c* = √κ.
//
// Implementation: since every active packet's probability is p0·f^e for
// the shared factor f = κ^(1/4) and an integer exponent e, the population
// lives in buckets keyed by exponent, with a global lazy shift so that an
// epoch-end update costs O(#buckets) instead of O(#packets), and joiner
// selection uses geometric skipping so an epoch costs O(joiners) expected
// time regardless of backlog size.
package core

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/arena"
	"repro/internal/channel"
	"repro/internal/protocol"
	"repro/internal/rng"
)

// Stats aggregates protocol-level counters over an execution.
type Stats struct {
	SilentEpochs     int64
	SuccessfulEpochs int64
	OverfullEpochs   int64
	ErrorEpochs      int64 // Definition 2: silent with c >= κ^(1/4), overfull with c <= κ^(3/4)
	Activations      int64
	Delivered        int64
	IdleSlots        int64 // slots with no packets in the system at all
	MaxPending       int
}

// Epochs returns the total number of completed epochs.
func (s Stats) Epochs() int64 { return s.SilentEpochs + s.SuccessfulEpochs + s.OverfullEpochs }

// Option configures a Decodable Backoff instance; used by the ablation
// experiments to weaken individual design ingredients.
type Option func(*DecodableBackoff)

// WithUpdateFactor overrides the multiplicative probability update factor
// (paper: κ^(1/4)).  The ablation E10 uses 2, the classical
// multiplicative-weights speed, to show why the aggressive factor is
// needed.  f must be > 1.
func WithUpdateFactor(f float64) Option {
	return func(d *DecodableBackoff) {
		if f <= 1 {
			panic("core: update factor must exceed 1")
		}
		d.factor = f
	}
}

// WithInitialProb overrides the joining probability a packet starts with
// when it activates (paper: κ^(−1/2)).  Must be in (0, 1].
func WithInitialProb(p0 float64) Option {
	return func(d *DecodableBackoff) {
		if p0 <= 0 || p0 > 1 {
			panic("core: initial probability must be in (0,1]")
		}
		d.p0 = p0
	}
}

// WithoutAdmissionControl makes arrivals activate immediately instead of
// waiting for a silent slot.  Used by ablation E10 to show how newly
// arrived packets disrupt ongoing epochs without the inactive stage.
func WithoutAdmissionControl() Option {
	return func(d *DecodableBackoff) { d.admission = false }
}

// WithEpochObserver installs a callback invoked after every completed
// epoch, used by the measurement harness for contention/potential traces.
func WithEpochObserver(obs protocol.EpochObserver) Option {
	return func(d *DecodableBackoff) { d.observer = obs }
}

// bucket holds the active packets whose joining probability exponent
// (relative to the global shift) equals base.
type bucket struct {
	base int
	ids  []channel.PacketID
}

// location tracks where a packet currently lives so deliveries are O(1).
type where uint8

const (
	inInactive where = iota
	inBucket
	inJoiners
)

type location struct {
	where where
	base  int // bucket base when where == inBucket
	idx   int // index within the containing slice
}

type joiner struct {
	id   channel.PacketID
	base int // bucket base the packet came from (for overfull reinsertion)
}

// DecodableBackoff is the paper's protocol.  Create with New; not safe
// for concurrent use.
type DecodableBackoff struct {
	kappa     int
	factor    float64 // multiplicative update factor f (default κ^(1/4))
	p0        float64 // activation probability (default κ^(-1/2))
	eCap      int     // exponent at which p0·f^e reaches 1 (probability cap)
	admission bool
	rand      *rng.Rand
	observer  protocol.EpochObserver

	shift   int       // global exponent shift: effective exponent = base + shift
	buckets []*bucket // sorted by base; indexed by binary search (≤ ~40 buckets live)
	// freeBuckets recycles bucket structs so epoch churn (buckets empty
	// and refill constantly) stays off the allocator.
	freeBuckets []*bucket
	overScratch []*bucket
	inactive    []channel.PacketID
	joiners     []joiner
	// loc tracks where each pending packet lives so deliveries are O(1).
	// A paged arena keyed by packet ID: arrival order keeps live IDs in a
	// dense band, so the arena is both faster than a map on the per-epoch
	// paths and bounded by the backlog span (pages of departed bands are
	// recycled).
	loc arena.Index[location]

	active int // packets currently in buckets (excludes joiners and inactive)
	// shardPending counts pending packets per engine shard (keyed by
	// id mod NumShards) so the staged engine can audit shard ownership.
	shardPending [protocol.NumShards]int

	inEpoch      bool
	epochStart   int64
	epochSlots   int64
	epochCont    float64 // contention at epoch start
	epochPMin    float64
	epochActive  int
	epochInact   int
	epochJoiners int
	txScratch    []int
	stats        Stats
	pendingPeak  int
}

var _ protocol.Protocol = (*DecodableBackoff)(nil)
var _ protocol.Partitioned = (*DecodableBackoff)(nil)
var _ protocol.Coaster = (*DecodableBackoff)(nil)

// New returns a Decodable Backoff instance for decoding threshold kappa
// (the paper requires κ ≥ 6) using the given random stream.
func New(kappa int, r *rng.Rand, opts ...Option) *DecodableBackoff {
	if kappa < 6 {
		panic("core: kappa must be at least 6 (required by the analysis)")
	}
	if r == nil {
		panic("core: nil rng")
	}
	d := &DecodableBackoff{
		kappa:     kappa,
		factor:    math.Pow(float64(kappa), 0.25),
		p0:        1 / math.Sqrt(float64(kappa)),
		admission: true,
		rand:      r,
	}
	for _, opt := range opts {
		opt(d)
	}
	// Smallest integer e >= 0 with p0 · f^e >= 1.
	d.eCap = int(math.Ceil(-math.Log(d.p0) / math.Log(d.factor)))
	if d.eCap < 0 {
		d.eCap = 0
	}
	return d
}

// Name implements protocol.Protocol.
func (d *DecodableBackoff) Name() string { return "decodable-backoff" }

// Kappa returns the decoding threshold the instance was built for.
func (d *DecodableBackoff) Kappa() int { return d.kappa }

// Stats returns a copy of the accumulated counters.
func (d *DecodableBackoff) Stats() Stats {
	s := d.stats
	s.MaxPending = d.pendingPeak
	return s
}

// Pending implements protocol.Protocol.
func (d *DecodableBackoff) Pending() int {
	return d.active + len(d.joiners) + len(d.inactive)
}

// prob returns the joining probability for effective exponent e.
func (d *DecodableBackoff) prob(e int) float64 {
	if e >= d.eCap {
		return 1
	}
	p := d.p0 * math.Pow(d.factor, float64(e))
	if p > 1 {
		return 1
	}
	return p
}

// Inject implements protocol.Protocol.  Arrivals enter the inactive
// stage (or activate immediately if admission control is disabled).
func (d *DecodableBackoff) Inject(now int64, ids []channel.PacketID) {
	for _, id := range ids {
		if d.loc.Has(int64(id)) {
			panic(fmt.Sprintf("core: duplicate injection of packet %d", id))
		}
		if d.admission {
			d.loc.Put(int64(id), location{where: inInactive, idx: len(d.inactive)})
			d.inactive = append(d.inactive, id)
		} else {
			d.addActive(id)
			d.stats.Activations++
		}
		d.shardPending[int(id)%protocol.NumShards]++
	}
	if p := d.Pending(); p > d.pendingPeak {
		d.pendingPeak = p
	}
}

// addActive inserts a packet into the activation bucket (exponent 0, i.e.
// probability p0).
func (d *DecodableBackoff) addActive(id channel.PacketID) {
	b := d.getBucket(0 - d.shift)
	d.loc.Put(int64(id), location{where: inBucket, base: b.base, idx: len(b.ids)})
	b.ids = append(b.ids, id)
	d.active++
}

// bucketAt returns the index of the bucket with the given base in the
// sorted bucket list, or the insertion point with found=false.  The
// list stays tiny (one bucket per live exponent, a few dozen at most),
// so binary search beats any map.
func (d *DecodableBackoff) bucketAt(base int) (int, bool) {
	i := sort.Search(len(d.buckets), func(i int) bool { return d.buckets[i].base >= base })
	return i, i < len(d.buckets) && d.buckets[i].base == base
}

// getBucket returns the bucket with the given base, creating it (in
// sorted position, recycling retired bucket structs) if needed.
func (d *DecodableBackoff) getBucket(base int) *bucket {
	i, found := d.bucketAt(base)
	if found {
		return d.buckets[i]
	}
	var b *bucket
	if n := len(d.freeBuckets); n > 0 {
		b = d.freeBuckets[n-1]
		d.freeBuckets[n-1] = nil
		d.freeBuckets = d.freeBuckets[:n-1]
		b.base = base
	} else {
		b = &bucket{base: base}
	}
	d.buckets = append(d.buckets, nil)
	copy(d.buckets[i+1:], d.buckets[i:])
	d.buckets[i] = b
	return b
}

// findBucket returns the bucket with the given base; it must exist.
func (d *DecodableBackoff) findBucket(base int) *bucket {
	i, found := d.bucketAt(base)
	if !found {
		panic(fmt.Sprintf("core: no bucket with base %d", base))
	}
	return d.buckets[i]
}

// recycleBucket stashes an empty bucket struct for reuse.
func (d *DecodableBackoff) recycleBucket(b *bucket) {
	b.ids = b.ids[:0]
	d.freeBuckets = append(d.freeBuckets, b)
}

// dropBucketIfEmpty removes an empty bucket from the index.
func (d *DecodableBackoff) dropBucketIfEmpty(b *bucket) {
	if len(b.ids) != 0 {
		return
	}
	for i, bb := range d.buckets {
		if bb == b {
			copy(d.buckets[i:], d.buckets[i+1:])
			d.buckets[len(d.buckets)-1] = nil
			d.buckets = d.buckets[:len(d.buckets)-1]
			d.recycleBucket(b)
			return
		}
	}
}

// contention returns the sum of joining probabilities over all active
// packets (buckets plus current joiners), and the minimum probability
// (1 if there are no active packets).
func (d *DecodableBackoff) contention() (c, pMin float64) {
	pMin = 1
	for _, b := range d.buckets {
		if len(b.ids) == 0 {
			continue
		}
		p := d.prob(b.base + d.shift)
		c += float64(len(b.ids)) * p
		if p < pMin {
			pMin = p
		}
	}
	for _, j := range d.joiners {
		p := d.prob(j.base + d.shift)
		c += p
		if p < pMin {
			pMin = p
		}
	}
	return c, pMin
}

// Snapshot returns the live potential-function inputs: total packets N,
// inactive packets M, contention c, and minimum active probability.
func (d *DecodableBackoff) Snapshot() (n, m int, c, pMin float64) {
	c, pMin = d.contention()
	return d.Pending(), len(d.inactive), c, pMin
}

// startEpoch selects this epoch's joiners: each active packet joins
// independently with its bucket's probability.  Joiners are moved out of
// their buckets into the joiner list.
func (d *DecodableBackoff) startEpoch(now int64) {
	d.inEpoch = true
	d.epochStart = now
	d.epochSlots = 0
	d.epochCont, d.epochPMin = 0, 1
	d.epochActive = d.active
	d.epochInact = len(d.inactive)
	d.joiners = d.joiners[:0]

	for _, b := range d.buckets {
		if len(b.ids) == 0 {
			continue
		}
		p := d.prob(b.base + d.shift)
		d.epochCont += float64(len(b.ids)) * p
		if p < d.epochPMin {
			d.epochPMin = p
		}
		d.txScratch = d.rand.SampleIndices(d.txScratch[:0], len(b.ids), p)
		// Remove selected ids by descending index so swap-deletes do not
		// disturb indices still to be processed.
		for k := len(d.txScratch) - 1; k >= 0; k-- {
			idx := d.txScratch[k]
			id := b.ids[idx]
			d.removeFromBucket(b, idx)
			d.loc.Put(int64(id), location{where: inJoiners, idx: len(d.joiners)})
			d.joiners = append(d.joiners, joiner{id: id, base: b.base})
		}
	}
	// Bucket list may now contain empty buckets; drop them lazily.
	d.compactBuckets()
	d.epochJoiners = len(d.joiners)
}

func (d *DecodableBackoff) compactBuckets() {
	out := d.buckets[:0]
	for _, b := range d.buckets {
		if len(b.ids) == 0 {
			d.recycleBucket(b)
			continue
		}
		out = append(out, b)
	}
	for i := len(out); i < len(d.buckets); i++ {
		d.buckets[i] = nil
	}
	d.buckets = out
}

// removeFromBucket swap-deletes index idx from bucket b, fixing the moved
// packet's location.
func (d *DecodableBackoff) removeFromBucket(b *bucket, idx int) {
	last := len(b.ids) - 1
	moved := b.ids[last]
	b.ids[idx] = moved
	b.ids = b.ids[:last]
	if idx != last {
		d.loc.Put(int64(moved), location{where: inBucket, base: b.base, idx: idx})
	}
	d.active--
}

// Transmitters implements protocol.Protocol: the epoch's joiners
// broadcast in every slot of the epoch.
func (d *DecodableBackoff) Transmitters(now int64, buf []channel.PacketID) []channel.PacketID {
	d.PrepareSlot(now)
	for _, j := range d.joiners {
		buf = append(buf, j.id)
	}
	return buf
}

// Shards implements protocol.Partitioned.
func (d *DecodableBackoff) Shards() int { return protocol.NumShards }

// PrepareSlot implements protocol.Partitioned: the slot's only
// centralized decision is starting a new epoch (which consumes the RNG
// for joiner selection), so everything RNG-dependent happens here and
// the shard stages are pure reads.
func (d *DecodableBackoff) PrepareSlot(now int64) {
	if !d.inEpoch {
		d.startEpoch(now)
	}
}

// ShardTransmitters implements protocol.Partitioned: shard `shard`
// emits its contiguous chunk of the epoch's joiner list, so the
// shard-order concatenation reproduces Transmitters exactly.
func (d *DecodableBackoff) ShardTransmitters(now int64, shard int, buf []channel.PacketID) []channel.PacketID {
	lo, hi := protocol.ShardRange(len(d.joiners), shard, protocol.NumShards)
	for _, j := range d.joiners[lo:hi] {
		buf = append(buf, j.id)
	}
	return buf
}

// ShardObserve implements protocol.Partitioned.  Epoch bookkeeping is
// inherently centralized (one shared epoch state machine), so the
// per-shard stage has nothing to do and ReduceSlot does all the work.
func (d *DecodableBackoff) ShardObserve(shard int, fb channel.Feedback) {}

// ReduceSlot implements protocol.Partitioned.
func (d *DecodableBackoff) ReduceSlot(fb channel.Feedback) { d.Observe(fb) }

// ShardPending implements protocol.Partitioned.
func (d *DecodableBackoff) ShardPending(shard int) int { return d.shardPending[shard] }

// CoastUntil implements protocol.Coaster.  Joiners broadcast in every
// slot of an epoch and arrivals never join one mid-flight, so once a
// slot of the current epoch classifies Bad the transmitter set is
// frozen — and every following epoch slot stays Bad — until the κ-slot
// timeout ends the epoch at epochStart+κ-1.  Outside an epoch there is
// nothing to coast.
func (d *DecodableBackoff) CoastUntil(now int64) int64 {
	if !d.inEpoch {
		return now
	}
	return d.epochStart + int64(d.kappa) - 1
}

// Observe implements protocol.Protocol: epoch bookkeeping driven purely
// by the two signals devices can hear (silence, decoding events) plus the
// κ-slot timeout.
func (d *DecodableBackoff) Observe(fb channel.Feedback) {
	if !d.inEpoch {
		// No epoch in progress (e.g. the engine skipped ahead through an
		// idle stretch); nothing to account.
		if d.Pending() == 0 {
			d.stats.IdleSlots++
		}
		return
	}
	d.epochSlots++
	switch {
	case fb.Event != nil:
		d.endSuccessful(fb)
	case fb.Silent:
		d.endSilent()
	case d.epochSlots >= int64(d.kappa):
		d.endOverfull()
	}
}

// endSuccessful finishes a successful epoch: delivered packets leave the
// system; all other probabilities are unchanged.
func (d *DecodableBackoff) endSuccessful(fb channel.Feedback) {
	for _, id := range fb.Event.Packets {
		l, ok := d.loc.Get(int64(id))
		if !ok {
			continue // not ours (possible only in multi-protocol setups)
		}
		switch l.where {
		case inJoiners:
			d.removeJoiner(l.idx)
		case inBucket:
			// A straggler delivered from an earlier window; possible only
			// with exotic channel configurations, but handle it.
			b := d.findBucket(l.base)
			d.removeFromBucket(b, l.idx)
			d.dropBucketIfEmpty(b)
		case inInactive:
			d.removeInactive(l.idx)
		}
		d.loc.Delete(int64(id))
		d.shardPending[int(id)%protocol.NumShards]--
		d.stats.Delivered++
	}
	// Joiners that were not delivered (none, in well-formed runs) return
	// to their buckets with unchanged probability.
	d.returnJoiners(0)
	d.stats.SuccessfulEpochs++
	d.finishEpoch(protocol.EpochSuccessful, false)
}

// endSilent finishes a silent epoch: every active packet's probability
// rises by one factor step (shift increase), then inactive packets
// activate at p0.
func (d *DecodableBackoff) endSilent() {
	if d.epochActive == 0 && d.epochInact == 0 {
		// Nothing in the system: an idle slot, not a real epoch.
		d.stats.IdleSlots++
		d.inEpoch = false
		return
	}
	isError := d.epochCont >= math.Pow(float64(d.kappa), 0.25)
	d.shift++
	d.mergeCapped()
	for _, id := range d.inactive {
		d.addActive(id) // overwrites the inactive location
		d.stats.Activations++
	}
	d.inactive = d.inactive[:0]
	d.stats.SilentEpochs++
	d.finishEpoch(protocol.EpochSilent, isError)
}

// endOverfull finishes an overfull epoch: every active packet's
// probability drops by one factor step.
func (d *DecodableBackoff) endOverfull() {
	isError := d.epochCont <= math.Pow(float64(d.kappa), 0.75)
	d.shift--
	d.returnJoiners(0)
	d.stats.OverfullEpochs++
	d.finishEpoch(protocol.EpochOverfull, isError)
}

// mergeCapped folds every bucket whose effective exponent now exceeds the
// cap into the cap bucket (probability 1).  Called after shift increases.
func (d *DecodableBackoff) mergeCapped() {
	capBase := d.eCap - d.shift
	over := d.overScratch[:0]
	for _, b := range d.buckets {
		if b.base > capBase && len(b.ids) > 0 {
			over = append(over, b)
		}
	}
	d.overScratch = over
	if len(over) == 0 {
		return
	}
	dst := d.getBucket(capBase)
	for _, b := range over {
		for _, id := range b.ids {
			d.loc.Put(int64(id), location{where: inBucket, base: dst.base, idx: len(dst.ids)})
			dst.ids = append(dst.ids, id)
		}
		b.ids = b.ids[:0]
	}
	for i := range over {
		over[i] = nil
	}
	d.compactBuckets()
}

// returnJoiners reinserts joiners[from:] into their buckets.
func (d *DecodableBackoff) returnJoiners(from int) {
	for _, j := range d.joiners[from:] {
		b := d.getBucket(j.base)
		d.loc.Put(int64(j.id), location{where: inBucket, base: b.base, idx: len(b.ids)})
		b.ids = append(b.ids, j.id)
		d.active++
	}
	d.joiners = d.joiners[:from]
}

// removeJoiner swap-deletes the joiner at idx.
func (d *DecodableBackoff) removeJoiner(idx int) {
	last := len(d.joiners) - 1
	moved := d.joiners[last]
	d.joiners[idx] = moved
	d.joiners = d.joiners[:last]
	if idx != last {
		d.loc.Put(int64(moved.id), location{where: inJoiners, idx: idx})
	}
}

// removeInactive swap-deletes the inactive packet at idx.
func (d *DecodableBackoff) removeInactive(idx int) {
	last := len(d.inactive) - 1
	moved := d.inactive[last]
	d.inactive[idx] = moved
	d.inactive = d.inactive[:last]
	if idx != last {
		d.loc.Put(int64(moved), location{where: inInactive, idx: idx})
	}
}

// finishEpoch reports the completed epoch to the observer and resets the
// epoch state.
func (d *DecodableBackoff) finishEpoch(kind protocol.EpochKind, isError bool) {
	if isError {
		d.stats.ErrorEpochs++
	}
	if d.observer != nil {
		d.observer.ObserveEpoch(protocol.EpochInfo{
			Kind:       kind,
			Start:      d.epochStart,
			Length:     d.epochSlots,
			Joiners:    d.epochJoiners,
			Contention: d.epochCont,
			PMin:       d.epochPMin,
			Active:     d.epochActive,
			Inactive:   d.epochInact,
			Error:      isError,
		})
	}
	d.inEpoch = false
}
