// Package potential implements the paper's potential function (Section 4)
//
//	Φ(t) = N_t + max{0, 4κ·log_κ(c_t/c*)} + 4·log_κ(1/p_min(t)) + 5·M_t/ln κ
//
// where N_t is the number of packets in the system, c_t the contention
// (sum of joining probabilities), c* = √κ the target contention, p_min
// the minimum joining probability among active packets (1 if none), and
// M_t the number of inactive packets.
//
// The analysis shows Φ decreases by ℓ(1−1/κ) over every non-error epoch
// of length ℓ and increases by 1+5/ln κ per arrival; the measurement
// harness traces the components to reproduce that behaviour empirically.
package potential

import "math"

// Components holds the four terms of the potential function.
type Components struct {
	N    float64 // packets in the system
	LogC float64 // contention excess: max{0, 4κ·log_κ(c/c*)}
	S    float64 // minimum-probability debt: 4·log_κ(1/p_min)
	U    float64 // inactive-packet credit: 5M/ln κ
}

// Total returns Φ, the sum of the components.
func (c Components) Total() float64 { return c.N + c.LogC + c.S + c.U }

// Compute evaluates the potential function for decoding threshold kappa
// from the system snapshot: n packets total, m inactive, contention c,
// and minimum active joining probability pMin (use 1 when there are no
// active packets, as the paper defines).
func Compute(kappa int, n, m int, c, pMin float64) Components {
	k := float64(kappa)
	lnK := math.Log(k)
	out := Components{N: float64(n)}

	cStar := math.Sqrt(k)
	if c > cStar {
		out.LogC = 4 * k * math.Log(c/cStar) / lnK
	}

	if pMin > 0 && pMin < 1 {
		out.S = 4 * math.Log(1/pMin) / lnK
	}

	out.U = 5 * float64(m) / lnK
	return out
}

// ArrivalIncrease returns the potential increase caused by one arriving
// packet: 1 + 5/ln κ (Lemma 5).
func ArrivalIncrease(kappa int) float64 {
	return 1 + 5/math.Log(float64(kappa))
}

// NonErrorEpochDecrease returns the guaranteed potential decrease over a
// non-error epoch of length l, ignoring arrivals: l(1 − 1/κ) (Lemma 9).
func NonErrorEpochDecrease(kappa int, l int64) float64 {
	return float64(l) * (1 - 1/float64(kappa))
}

// ErrorEpochIncrease returns the worst-case potential increase caused by
// an error epoch, ignoring arrivals: κ + 2 (Lemma 8).
func ErrorEpochIncrease(kappa int) float64 {
	return float64(kappa) + 2
}

// TheoremRate returns the arrival rate (packets per slot) under which
// Theorem 11 guarantees bounded backlog: 1 − 5/ln κ.  For κ ≤ e⁵ ≈ 148
// the guarantee is vacuous (the rate is non-positive).
func TheoremRate(kappa int) float64 {
	return 1 - 5/math.Log(float64(kappa))
}

// TheoremMinWindow returns the smallest window size Theorem 11 admits:
// 16κ².
func TheoremMinWindow(kappa int) int64 {
	return 16 * int64(kappa) * int64(kappa)
}
