package channel

import (
	"bytes"
	"testing"
)

// FuzzChannelAgainstReference drives a random transmitter schedule,
// decoded from the fuzzer's byte stream, through both the incremental
// decoding-event detector and the brute-force Definition 1 reference,
// and asserts they observe identical slot classes, identical events
// (slot, window start, and packet sets), identical stats, and identical
// prune counts.
//
// Schedule encoding: the first two bytes pick κ ∈ [1, 8] and the window
// cap ∈ {0 (unbounded), 1..15}; each following byte is one slot, whose
// low nibble is the transmitter count n ∈ [0, 15] and high nibble an
// offset into a small packet pool, so schedules revisit the same IDs
// across slots (the case that exercises last-occurrence tracking).
func FuzzChannelAgainstReference(f *testing.F) {
	f.Add([]byte{0x03, 0x08, 0x01, 0x02, 0x13, 0x00, 0x21, 0x01})
	f.Add([]byte{0x00, 0x00, 0x01, 0x01, 0x01})
	f.Add([]byte{0x07, 0x04, 0x0f, 0x12, 0x31, 0x02, 0x00, 0x42, 0x05})
	f.Add(bytes.Repeat([]byte{0x12, 0x01, 0x00}, 40))
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 3 {
			t.Skip()
		}
		kappa := 1 + int(data[0]%8)
		maxWindow := int(data[1] % 16) // 0 = unbounded
		fast := New(kappa, maxWindow)
		ref := NewReference(kappa, maxWindow)

		const poolSize = 24
		var wantSilent, wantGood, wantBad, wantEvents, wantDelivered int64
		txs := make([]PacketID, 0, 16)
		for now, b := range data[2:] {
			n := int(b & 0x0f)
			off := int(b >> 4)
			txs = txs[:0]
			for i := 0; i < n; i++ {
				txs = append(txs, PacketID((off+i)%poolSize))
			}
			fc, fe := fast.Step(int64(now), txs)
			rc, re := ref.Step(int64(now), txs)
			if fc != rc {
				t.Fatalf("slot %d (%v): class %v vs reference %v", now, txs, fc, rc)
			}
			switch fc {
			case Silent:
				wantSilent++
			case Good:
				wantGood++
			case Bad:
				wantBad++
			}
			if (fe == nil) != (re == nil) {
				t.Fatalf("slot %d (%v): event %v vs reference %v", now, txs, fe, re)
			}
			if fe != nil {
				if fe.Slot != re.Slot || fe.WindowStart != re.WindowStart {
					t.Fatalf("slot %d: event bounds [%d,%d] vs reference [%d,%d]",
						now, fe.WindowStart, fe.Slot, re.WindowStart, re.Slot)
				}
				if len(fe.Packets) != len(re.Packets) {
					t.Fatalf("slot %d: event delivers %v vs reference %v", now, fe.Packets, re.Packets)
				}
				for i := range fe.Packets {
					if fe.Packets[i] != re.Packets[i] {
						t.Fatalf("slot %d: event delivers %v vs reference %v", now, fe.Packets, re.Packets)
					}
				}
				wantEvents++
				wantDelivered += int64(len(fe.Packets))
			}
		}
		st := fast.Stats()
		if st.SilentSlots != wantSilent || st.GoodSlots != wantGood || st.BadSlots != wantBad ||
			st.Events != wantEvents || st.Delivered != wantDelivered {
			t.Fatalf("stats %+v, want silent=%d good=%d bad=%d events=%d delivered=%d",
				st, wantSilent, wantGood, wantBad, wantEvents, wantDelivered)
		}
		if st.PrunedPackets != ref.Pruned() {
			t.Fatalf("pruned %d, reference pruned %d", st.PrunedPackets, ref.Pruned())
		}
	})
}
