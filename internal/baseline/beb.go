package baseline

import (
	"container/heap"
	"fmt"
	"math"

	"repro/internal/channel"
	"repro/internal/protocol"
	"repro/internal/rng"
)

// BEBStats aggregates counters for a backoff execution.
type BEBStats struct {
	Transmissions int64
	Failures      int64
	Delivered     int64
	MaxWindow     int64
}

// Backoff is a window-based backoff protocol: each packet transmits at a
// uniformly random slot of its current window, and every failed attempt
// grows the window per the protocol's schedule.  Constructors:
//
//   - NewExponentialBackoff: classic binary exponential backoff
//     (Ethernet/802.11 style), window doubling;
//   - NewBackoff: exponential with configurable initial window and base;
//   - NewPolynomialBackoff: window (k+1)^p after k failures — the
//     polynomial-backoff family studied alongside exponential in the
//     contention-resolution literature.
//
// Feedback adaptation for the coded channel: the protocol is ack-based —
// a packet treats "transmitted and not delivered in that same slot" as a
// failure.  On the classical channel (κ = 1) this is exact; on a coded
// channel (κ > 1) it is pessimistic, since a later decoding window can
// still deliver the packet, in which case it simply leaves the system.
type Backoff struct {
	rand     *rng.Rand
	name     string
	windowFn func(failures int64) int64

	sched    txHeap
	failures map[channel.PacketID]int64
	inFlight []channel.PacketID
	pending  int
	// shardPending counts pending packets per engine shard (keyed by
	// id mod NumShards) so the staged engine can audit shard ownership.
	shardPending [protocol.NumShards]int
	stats        BEBStats
}

// ExponentialBackoff is the name the rest of the repository uses for the
// classic protocol.
type ExponentialBackoff = Backoff

var _ protocol.Protocol = (*Backoff)(nil)
var _ protocol.Waker = (*Backoff)(nil)
var _ protocol.PartitionedWaker = (*Backoff)(nil)

// NewExponentialBackoff returns binary exponential backoff (initial
// window 1, doubling) using the given random stream.
func NewExponentialBackoff(r *rng.Rand) *Backoff {
	return NewBackoff(r, 1, 2)
}

// NewBackoff returns generalized exponential backoff with the given
// initial window and window growth base (> 1): after k failures the
// window is initialWindow·base^k.
func NewBackoff(r *rng.Rand, initialWindow int64, base float64) *Backoff {
	if r == nil {
		panic("baseline: nil rng")
	}
	if initialWindow < 1 {
		panic("baseline: initial window must be at least 1")
	}
	if base <= 1 {
		panic("baseline: backoff base must exceed 1")
	}
	return &Backoff{
		rand:     r,
		name:     "exponential-backoff",
		failures: make(map[channel.PacketID]int64),
		windowFn: func(k int64) int64 {
			w := float64(initialWindow) * math.Pow(base, float64(k))
			if w > 1<<40 {
				return 1 << 40
			}
			if w < 1 {
				return 1
			}
			return int64(w)
		},
	}
}

// NewPolynomialBackoff returns polynomial backoff: after k failures the
// window is (k+1)^exp.  exp must be positive; exp = 2 (quadratic) is the
// commonly analyzed variant.
func NewPolynomialBackoff(r *rng.Rand, exp float64) *Backoff {
	if r == nil {
		panic("baseline: nil rng")
	}
	if exp <= 0 {
		panic("baseline: polynomial exponent must be positive")
	}
	return &Backoff{
		rand:     r,
		name:     fmt.Sprintf("polynomial-backoff(%g)", exp),
		failures: make(map[channel.PacketID]int64),
		windowFn: func(k int64) int64 {
			w := math.Pow(float64(k+1), exp)
			if w > 1<<40 {
				return 1 << 40
			}
			if w < 1 {
				return 1
			}
			return int64(w)
		},
	}
}

// Name implements protocol.Protocol.
func (e *Backoff) Name() string { return e.name }

// Stats returns a copy of the accumulated counters.
func (e *Backoff) Stats() BEBStats { return e.stats }

// Pending implements protocol.Protocol.
func (e *Backoff) Pending() int { return e.pending }

// Inject implements protocol.Protocol: each arrival is scheduled at a
// uniform slot of its initial window, starting next slot.
func (e *Backoff) Inject(now int64, ids []channel.PacketID) {
	for _, id := range ids {
		if _, dup := e.failures[id]; dup {
			panic(fmt.Sprintf("baseline: duplicate injection of packet %d", id))
		}
		e.failures[id] = 0
		e.pending++
		e.shardPending[int(id)%protocol.NumShards]++
		heap.Push(&e.sched, txEntry{slot: now + 1 + e.rand.Int63n(e.windowFn(0)), id: id})
	}
}

// Transmitters implements protocol.Protocol: pops every packet scheduled
// for this slot.
func (e *Backoff) Transmitters(now int64, buf []channel.PacketID) []channel.PacketID {
	e.PrepareSlot(now)
	return append(buf, e.inFlight...)
}

// Shards implements protocol.Partitioned.
func (e *Backoff) Shards() int { return protocol.NumShards }

// PrepareSlot implements protocol.Partitioned: pops every packet
// scheduled for this slot into the in-flight list.  The heap is shared
// state, so the pops are centralized here; the shard stage only reads
// chunks of the resulting list.
func (e *Backoff) PrepareSlot(now int64) {
	e.inFlight = e.inFlight[:0]
	for len(e.sched) > 0 && e.sched[0].slot <= now {
		entry := heap.Pop(&e.sched).(txEntry)
		if _, alive := e.failures[entry.id]; !alive {
			continue // delivered earlier by a wider decoding window
		}
		e.inFlight = append(e.inFlight, entry.id)
	}
	e.stats.Transmissions += int64(len(e.inFlight))
}

// ShardTransmitters implements protocol.Partitioned: shard `shard`
// emits its contiguous chunk of the in-flight list, so the shard-order
// concatenation reproduces Transmitters exactly.
func (e *Backoff) ShardTransmitters(now int64, shard int, buf []channel.PacketID) []channel.PacketID {
	lo, hi := protocol.ShardRange(len(e.inFlight), shard, protocol.NumShards)
	return append(buf, e.inFlight[lo:hi]...)
}

// ShardObserve implements protocol.Partitioned.  Rescheduling draws
// from the shared RNG in in-flight order, so it must stay centralized
// in ReduceSlot; the per-shard stage has nothing to do.
func (e *Backoff) ShardObserve(shard int, fb channel.Feedback) {}

// ReduceSlot implements protocol.Partitioned.
func (e *Backoff) ReduceSlot(fb channel.Feedback) { e.Observe(fb) }

// ShardPending implements protocol.Partitioned.
func (e *Backoff) ShardPending(shard int) int { return e.shardPending[int(shard)] }

// ShardNextWake implements protocol.PartitionedWaker.  The schedule is
// one shared heap, so shard 0 answers for everyone and the other shards
// report no wake-up; the engine's min-reduce then equals NextWake.
func (e *Backoff) ShardNextWake(now int64, shard int) int64 {
	if shard != 0 {
		return -1
	}
	return e.NextWake(now)
}

// Observe implements protocol.Protocol: deliveries remove packets;
// transmitted-but-undelivered packets grow their windows and reschedule.
func (e *Backoff) Observe(fb channel.Feedback) {
	if fb.Event != nil {
		for _, id := range fb.Event.Packets {
			if _, ok := e.failures[id]; ok {
				delete(e.failures, id)
				e.pending--
				e.shardPending[int(id)%protocol.NumShards]--
				e.stats.Delivered++
			}
		}
	}
	for _, id := range e.inFlight {
		k, ok := e.failures[id]
		if !ok {
			continue // delivered this slot
		}
		e.stats.Failures++
		k++
		e.failures[id] = k
		w := e.windowFn(k)
		if w > e.stats.MaxWindow {
			e.stats.MaxWindow = w
		}
		heap.Push(&e.sched, txEntry{slot: fb.Slot + 1 + e.rand.Int63n(w), id: id})
	}
	e.inFlight = e.inFlight[:0]
}

// NextWake implements protocol.Waker: the earliest scheduled
// transmission.  Backoff ignores silence, so the engine may skip the
// quiet slots in between.
func (e *Backoff) NextWake(now int64) int64 {
	for len(e.sched) > 0 {
		if _, alive := e.failures[e.sched[0].id]; !alive {
			heap.Pop(&e.sched)
			continue
		}
		if e.sched[0].slot < now {
			return now
		}
		return e.sched[0].slot
	}
	return -1
}

// txEntry is a scheduled transmission.
type txEntry struct {
	slot int64
	id   channel.PacketID
}

// txHeap is a min-heap of scheduled transmissions ordered by slot.
type txHeap []txEntry

func (h txHeap) Len() int            { return len(h) }
func (h txHeap) Less(i, j int) bool  { return h[i].slot < h[j].slot }
func (h txHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *txHeap) Push(x interface{}) { *h = append(*h, x.(txEntry)) }
func (h *txHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
