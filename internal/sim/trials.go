package sim

import (
	"runtime"
	"sync"

	"repro/internal/rng"
	"repro/internal/stats"
)

// TrialFunc builds and runs one independent trial from a seed, returning
// its result.  Implementations must construct a fresh protocol, arrival
// process, and channel medium per call (they are stateful; a Medium may
// only be shared across trials after Reset, never concurrently).
type TrialFunc func(trial int, seed uint64) *Result

// TrialSeeds derives the n trial seeds RunTrials assigns from baseSeed:
// one rng stream, read sequentially.  Exposed so a caller running a
// *subset* of a trial grid (a sweep shard, a cache-resumed sweep) can
// seed each trial exactly as the full run would — the property that
// makes sharded and resumed artifacts byte-identical to unsharded ones.
func TrialSeeds(n int, baseSeed uint64) []uint64 {
	if n <= 0 {
		return nil
	}
	seeds := make([]uint64, n)
	seedGen := rng.New(baseSeed)
	for i := range seeds {
		seeds[i] = seedGen.Uint64()
	}
	return seeds
}

// RunTrials executes n independent trials, fanning them out over up to
// `parallelism` goroutines (0 = GOMAXPROCS).  Trial seeds are derived
// deterministically from baseSeed (see TrialSeeds), so results are
// reproducible regardless of scheduling, and results are returned
// indexed by trial.
func RunTrials(n int, baseSeed uint64, parallelism int, f TrialFunc) []*Result {
	return RunSeededTrials(TrialSeeds(n, baseSeed), parallelism, f)
}

// RunSeededTrials executes one trial per explicit seed, fanning them out
// over up to `parallelism` goroutines (0 = GOMAXPROCS).  It is the
// subset-capable core of RunTrials: seeds[i] drives trial i, whatever
// grid position that trial came from.
func RunSeededTrials(seeds []uint64, parallelism int, f TrialFunc) []*Result {
	n := len(seeds)
	if n == 0 {
		return nil
	}
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	if parallelism > n {
		parallelism = n
	}
	results := make([]*Result, n)
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				results[i] = f(i, seeds[i])
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	return results
}

// Aggregate summarizes a metric over trial results.
func Aggregate(results []*Result, metric func(*Result) float64) stats.Summary {
	var s stats.Summary
	for _, r := range results {
		if r != nil {
			s.Add(metric(r))
		}
	}
	return s
}
