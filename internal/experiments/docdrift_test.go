package experiments

import (
	"os"
	"regexp"
	"strings"
	"testing"

	"repro/internal/protocol"
)

// TestDocDriftExperimentIndex pins DESIGN.md §5 to the code: the
// experiment-index table must list exactly the IDs experiments.All()
// registers, in the same order.  Adding an experiment without updating
// the docs (or vice versa) fails here — the check also runs as its own
// step in CI.
func TestDocDriftExperimentIndex(t *testing.T) {
	data, err := os.ReadFile("../../DESIGN.md")
	if err != nil {
		t.Fatalf("reading DESIGN.md: %v", err)
	}
	rows := regexp.MustCompile(`(?m)^\| (E\d+) \|`).FindAllStringSubmatch(string(data), -1)
	var docIDs []string
	for _, m := range rows {
		docIDs = append(docIDs, m[1])
	}
	runners := All()
	if len(docIDs) != len(runners) {
		t.Fatalf("DESIGN.md §5 lists %d experiments, experiments.All() has %d — update the index table",
			len(docIDs), len(runners))
	}
	for i, r := range runners {
		if docIDs[i] != r.ID {
			t.Fatalf("DESIGN.md §5 row %d is %s, experiments.All() has %s — update the index table",
				i+1, docIDs[i], r.ID)
		}
	}
}

// TestDocDriftProtocolRegistry pins DESIGN.md §10 to the code the same
// way §5 is pinned to experiments.All(): the protocol table must list
// exactly the names and one-line summaries the registry holds, in
// canonical axis order.  (This package imports every implementing
// package transitively, so the registry is complete here.)
func TestDocDriftProtocolRegistry(t *testing.T) {
	data, err := os.ReadFile("../../DESIGN.md")
	if err != nil {
		t.Fatalf("reading DESIGN.md: %v", err)
	}
	_, section, found := strings.Cut(string(data), "\n## 10.")
	if !found {
		t.Fatal("DESIGN.md has no §10 — the protocol-registry section is gone")
	}
	if i := strings.Index(section, "\n## "); i >= 0 {
		section = section[:i]
	}
	rows := regexp.MustCompile(`(?m)^\| ([a-z]+) \| (.+) \|$`).FindAllStringSubmatch(section, -1)
	infos := protocol.Registered()
	if len(rows) != len(infos) {
		t.Fatalf("DESIGN.md §10 lists %d protocols, the registry has %d — update the table",
			len(rows), len(infos))
	}
	for i, info := range infos {
		if rows[i][1] != info.Name {
			t.Fatalf("DESIGN.md §10 row %d is %q, the registry has %q — update the table",
				i+1, rows[i][1], info.Name)
		}
		if rows[i][2] != info.Summary {
			t.Fatalf("DESIGN.md §10 summary for %s is %q, the registry says %q — update the table",
				info.Name, rows[i][2], info.Summary)
		}
	}
}
