package query

import (
	"context"
	"math"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/cache"
	"repro/internal/cache/httpstore"
	"repro/internal/sweep"
)

// smallSpec mirrors the sweep package's test grid: 16 cells, cheap
// enough to execute in-process wherever a test needs real records.
func smallSpec() sweep.Spec {
	return sweep.Spec{
		Protocols: []string{"dba", "genie"},
		Arrivals:  []string{"batch", "bernoulli"},
		Kappas:    []int{8, 16},
		Rates:     []float64{0.3, 0.6},
		Trials:    2,
		Horizon:   500,
		Seed:      42,
	}
}

// specCells is smallSpec's cell count (Spec.Cells needs a pointer).
func specCells() int {
	spec := smallSpec()
	return spec.Cells()
}

func runSmallGrid(t *testing.T) *sweep.Grid {
	t.Helper()
	spec := smallSpec()
	g, err := sweep.Run(context.Background(), spec, sweep.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestParseKeyRoundTrip(t *testing.T) {
	scenarios := []sweep.Scenario{
		{Model: "dba", Protocol: "dba", Arrival: "batch", Kappa: 8, Rate: 0.3, Jammer: "none", Adversary: "none"},
		// Jammer and adversary descriptors that themselves contain
		// slashes — the case a naive positional split gets wrong.
		{Model: "dba", Protocol: "dba", Arrival: "bernoulli", Kappa: 16, Rate: 0.6, Jammer: "periodic:16/4", Adversary: "none"},
		{Model: "genie", Protocol: "genie", Arrival: "batch", Kappa: 32, Rate: 0.9, Jammer: "none", Adversary: "reactive:4/48"},
		{Model: "dba", Protocol: "dba", Arrival: "batch", Kappa: 8, Rate: 0.5, Jammer: "periodic:16/4", Adversary: "reactive:4/48"},
	}
	for _, want := range scenarios {
		got, err := ParseKey(want.Key())
		if err != nil {
			t.Errorf("ParseKey(%q): %v", want.Key(), err)
			continue
		}
		if got != want {
			t.Errorf("ParseKey(%q) = %+v, want %+v", want.Key(), got, want)
		}
	}
}

func TestParseKeyRejectsMalformed(t *testing.T) {
	bad := []string{
		"",
		"dba/dba/batch",
		"dba/dba/batch/k=8/rate=0.3/jam=none", // no adv
		"dba/dba/batch/k=x/rate=0.3/jam=none/adv=none", // bad kappa
		"dba/dba/batch/k=8/rate=x/jam=none/adv=none",   // bad rate
		"dba/dba/batch/kappa=8/rate=0.3/jam=none/adv=none",
		"dba/dba/batch/k=8/rate=0.3/jam=/adv=none", // empty jammer
	}
	for _, key := range bad {
		if _, err := ParseKey(key); err == nil {
			t.Errorf("ParseKey(%q) accepted", key)
		}
	}
}

// TestBenchKeysParse pins ParseKey against the committed benchmark
// artifact: every key the repo actually produces must decode.
func TestBenchKeysParse(t *testing.T) {
	set, err := Load("../../BENCH_sweep.json")
	if err != nil {
		t.Fatal(err)
	}
	if set.Kind != "bench" || len(set.Cells) == 0 {
		t.Fatalf("loaded kind=%s cells=%d from BENCH_sweep.json", set.Kind, len(set.Cells))
	}
	for i := range set.Cells {
		if !math.IsNaN(set.Cells[i].LatencyP50) {
			t.Fatal("bench source invented a latency_p50")
		}
	}
}

// TestLoadSniffsGridStoreAndHTTP proves the four source shapes converge
// to the same cell view: a grid artifact, the cell store the grid's run
// populated, and that store served over HTTP all diff as identical.
func TestLoadSniffsGridStoreAndHTTP(t *testing.T) {
	dir := t.TempDir()
	store, err := cache.Open(filepath.Join(dir, "cells"))
	if err != nil {
		t.Fatal(err)
	}
	spec := smallSpec()
	g, err := sweep.Run(context.Background(), spec, sweep.Options{Cache: store})
	if err != nil {
		t.Fatal(err)
	}
	gridPath := filepath.Join(dir, "grid.json")
	data, err := g.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(gridPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(httpstore.NewServer(store))
	defer srv.Close()

	fromGrid, err := Load(gridPath)
	if err != nil {
		t.Fatal(err)
	}
	fromStore, err := Load(store.Dir())
	if err != nil {
		t.Fatal(err)
	}
	fromHTTP, err := Load(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	if fromGrid.Kind != "grid" || fromStore.Kind != "store" || fromHTTP.Kind != "store" {
		t.Fatalf("kinds = %s/%s/%s", fromGrid.Kind, fromStore.Kind, fromHTTP.Kind)
	}
	if n := specCells(); len(fromGrid.Cells) != n || len(fromStore.Cells) != n || len(fromHTTP.Cells) != n {
		t.Fatalf("cell counts = %d/%d/%d, want %d", len(fromGrid.Cells), len(fromStore.Cells), len(fromHTTP.Cells), n)
	}
	for _, other := range []*Set{fromStore, fromHTTP} {
		d := Compare(fromGrid, other)
		if d.Changed() != 0 || len(d.OnlyA) != 0 || len(d.OnlyB) != 0 {
			t.Fatalf("grid vs %s view differ: %d changed, onlyA=%v onlyB=%v",
				other.Label, d.Changed(), d.OnlyA, d.OnlyB)
		}
	}
}

func TestLoadStoreSkipsDamage(t *testing.T) {
	store, err := cache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sweep.Run(context.Background(), smallSpec(), sweep.Options{Cache: store}); err != nil {
		t.Fatal(err)
	}
	ids, err := store.List()
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt one record, plant one foreign-schema record.
	if err := os.WriteFile(store.Path(ids[0]), []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	foreign := strings.Repeat("f", 32)
	if err := store.Put(foreign, map[string]string{"schema_version": "other/9"}); err != nil {
		t.Fatal(err)
	}
	set, err := FromBackend(store, "damaged")
	if err != nil {
		t.Fatal(err)
	}
	if want := specCells() - 1; len(set.Cells) != want || set.Skipped != 2 {
		t.Fatalf("cells=%d skipped=%d, want %d and 2", len(set.Cells), set.Skipped, want)
	}
}

func TestLoadRejectsNonArtifacts(t *testing.T) {
	dir := t.TempDir()
	notJSON := filepath.Join(dir, "x.txt")
	if err := os.WriteFile(notJSON, []byte("hello"), 0o644); err != nil {
		t.Fatal(err)
	}
	cellLess := filepath.Join(dir, "y.json")
	if err := os.WriteFile(cellLess, []byte(`{"name":"x"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{notJSON, cellLess, filepath.Join(dir, "missing.json"), "ftp://nope"} {
		if _, err := Load(path); err == nil {
			t.Errorf("Load(%q) accepted", path)
		}
	}
}

func TestSelectorFilter(t *testing.T) {
	set := FromGrid(runSmallGrid(t), "grid")
	sel, err := ParseSelector("protocol=dba,kappa=8")
	if err != nil {
		t.Fatal(err)
	}
	got := set.Filter(sel)
	if len(got.Cells) != 4 {
		t.Fatalf("filtered to %d cells, want 4", len(got.Cells))
	}
	for i := range got.Cells {
		if c := &got.Cells[i]; c.Protocol != "dba" || c.Kappa != 8 {
			t.Fatalf("filter leaked %s", c.Key())
		}
	}
	// Rates compare numerically: 0.30 matches 0.3.
	sel, err = ParseSelector("rate=0.30")
	if err != nil {
		t.Fatal(err)
	}
	if got := set.Filter(sel); len(got.Cells) != 8 {
		t.Fatalf("rate=0.30 matched %d cells, want 8", len(got.Cells))
	}
}

func TestSelectorRejectsMalformed(t *testing.T) {
	for _, expr := range []string{"bogus=1", "protocol", "=x", "kappa=x", "rate=x"} {
		if _, err := ParseSelector(expr); err == nil {
			t.Errorf("ParseSelector(%q) accepted", expr)
		}
	}
}

// TestDiffDeterministicAndByteStable is the crnquery acceptance
// criterion: the same two sources always render to the same bytes, and
// a real change shows up as a delta row.
func TestDiffDeterministicAndByteStable(t *testing.T) {
	g := runSmallGrid(t)
	a := FromGrid(g, "a")
	// Mutate one cell and drop another to exercise every diff bucket.
	g2, err := sweep.Run(context.Background(), smallSpec(), sweep.Options{})
	if err != nil {
		t.Fatal(err)
	}
	g2.Cells[0].Throughput.Mean *= 1.25
	g2.Cells = g2.Cells[:len(g2.Cells)-1]
	b := FromGrid(g2, "b")

	d1 := Compare(a, b)
	d2 := Compare(a, b)
	if d1.Markdown(false) != d2.Markdown(false) || d1.CSV(false) != d2.CSV(false) {
		t.Fatal("diff renders are not byte-stable")
	}
	if d1.Changed() != 1 {
		t.Fatalf("Changed = %d, want 1", d1.Changed())
	}
	if len(d1.OnlyA) != 1 || len(d1.OnlyB) != 0 {
		t.Fatalf("OnlyA=%v OnlyB=%v, want one A-only key", d1.OnlyA, d1.OnlyB)
	}
	md := d1.Markdown(true)
	if !strings.Contains(md, "unchanged cells hidden") {
		t.Fatal("changed-only markdown does not fold unchanged rows")
	}
	if strings.Count(md, "| coded/") != 1 {
		t.Fatalf("changed-only markdown rows:\n%s", md)
	}
	// The CSV keeps one-sided keys as rows with a side column.
	if csv := d1.CSV(false); !strings.Contains(csv, d1.OnlyA[0]+",a,") {
		t.Fatalf("CSV lost the A-only row:\n%s", csv)
	}
}

func TestIdenticalSetsDiffClean(t *testing.T) {
	g := runSmallGrid(t)
	d := Compare(FromGrid(g, "x"), FromGrid(g, "y"))
	if d.Changed() != 0 || len(d.OnlyA) != 0 || len(d.OnlyB) != 0 {
		t.Fatal("identical grids diff dirty")
	}
	if got := len(d.Deltas); got != specCells() {
		t.Fatalf("Deltas = %d, want %d", got, specCells())
	}
}

func TestSetRendersByteStable(t *testing.T) {
	set := FromGrid(runSmallGrid(t), "grid")
	if set.Markdown() != set.Markdown() || set.CSV() != set.CSV() {
		t.Fatal("set renders are not byte-stable")
	}
	lines := strings.Split(strings.TrimSpace(set.CSV()), "\n")
	if len(lines) != 1+len(set.Cells) {
		t.Fatalf("CSV has %d lines, want header + %d cells", len(lines), len(set.Cells))
	}
	for i := 2; i < len(lines); i++ {
		if lines[i-1] >= lines[i] {
			t.Fatalf("CSV rows out of key order at %d:\n%s\n%s", i, lines[i-1], lines[i])
		}
	}
}

func TestFromBackendRejectsMixedSpecs(t *testing.T) {
	store, err := cache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	spec := smallSpec()
	if _, err := sweep.Run(context.Background(), spec, sweep.Options{Cache: store}); err != nil {
		t.Fatal(err)
	}
	// Same scenarios, different horizon: same keys, different identities.
	spec.Horizon = 600
	if _, err := sweep.Run(context.Background(), spec, sweep.Options{Cache: store}); err != nil {
		t.Fatal(err)
	}
	if _, err := FromBackend(store, "mixed"); err == nil {
		t.Fatal("mixed-spec store accepted")
	}
}
