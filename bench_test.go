package crn

// One benchmark per experiment in the reproduction index (DESIGN.md §5),
// each regenerating its experiment at quick scale, plus micro-benchmarks
// of the load-bearing substrates.  `go test -bench=. -benchmem` therefore
// reproduces every table/figure of the evaluation in one command;
// `cmd/experiments -scale full` produces the paper-sized versions.

import (
	"testing"

	"repro/internal/experiments"
)

func benchExperiment(b *testing.B, run func(experiments.Scale, uint64) *experiments.Output) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		out := run(experiments.Quick, uint64(i)+2022)
		if len(out.Tables) == 0 {
			b.Fatal("experiment produced no tables")
		}
	}
}

// BenchmarkE1Backlog regenerates Theorem 11's backlog-bound table.
func BenchmarkE1Backlog(b *testing.B) { benchExperiment(b, experiments.E1Backlog) }

// BenchmarkE2Latency regenerates Theorem 15's latency table.
func BenchmarkE2Latency(b *testing.B) { benchExperiment(b, experiments.E2Latency) }

// BenchmarkE3Batch regenerates Theorem 16's batch-completion table and
// the throughput-vs-κ figure.
func BenchmarkE3Batch(b *testing.B) { benchExperiment(b, experiments.E3Batch) }

// BenchmarkE4Throughput regenerates the DBA-vs-baselines headline table.
func BenchmarkE4Throughput(b *testing.B) { benchExperiment(b, experiments.E4Throughput) }

// BenchmarkE5ErrorEpochs regenerates the Lemma 3/4 error-epoch figure.
func BenchmarkE5ErrorEpochs(b *testing.B) { benchExperiment(b, experiments.E5ErrorEpochs) }

// BenchmarkE6Potential regenerates the Section 4 potential-drift audit.
func BenchmarkE6Potential(b *testing.B) { benchExperiment(b, experiments.E6Potential) }

// BenchmarkE7Contention regenerates the contention-occupancy table.
func BenchmarkE7Contention(b *testing.B) { benchExperiment(b, experiments.E7Contention) }

// BenchmarkE8Decodability regenerates the RLNC decodability tables.
func BenchmarkE8Decodability(b *testing.B) { benchExperiment(b, experiments.E8Decodability) }

// BenchmarkE9ZigZag regenerates the collision-recovery table.
func BenchmarkE9ZigZag(b *testing.B) { benchExperiment(b, experiments.E9ZigZag) }

// BenchmarkE10Ablations regenerates the design-ablation tables.
func BenchmarkE10Ablations(b *testing.B) { benchExperiment(b, experiments.E10Ablations) }

// BenchmarkE11StableRate regenerates the stable-rate frontier grid.
func BenchmarkE11StableRate(b *testing.B) { benchExperiment(b, experiments.E11StableRate) }

// BenchmarkE12Detector regenerates the detector-validation tables.
func BenchmarkE12Detector(b *testing.B) { benchExperiment(b, experiments.E12Detector) }

// BenchmarkE13Jamming regenerates the jamming-robustness tables.
func BenchmarkE13Jamming(b *testing.B) { benchExperiment(b, experiments.E13Jamming) }

// BenchmarkE14WindowCap regenerates the window-cap sensitivity table.
func BenchmarkE14WindowCap(b *testing.B) { benchExperiment(b, experiments.E14WindowCap) }

// BenchmarkE15Scaling regenerates the large-batch scaling table and the
// normalized-completion figure.
func BenchmarkE15Scaling(b *testing.B) { benchExperiment(b, experiments.E15Scaling) }

// --- substrate micro-benchmarks -------------------------------------

// BenchmarkDBABatchPerPacket measures end-to-end simulation cost per
// packet for a 10k batch at κ=64 (protocol + channel + engine).
func BenchmarkDBABatchPerPacket(b *testing.B) {
	const n = 10000
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res := Run(Config{Kappa: 64, Horizon: 1, Drain: true, Seed: uint64(i)},
			NewDecodableBackoff(64, uint64(i)+1), NewBatch(n))
		if res.Pending != 0 {
			b.Fatal("batch unfinished")
		}
	}
}

// BenchmarkSustainedLoadPerSlot measures steady-state cost per slot at
// 80% load, κ=64, on the coded channel — the path the medium-interface
// boundary must keep allocation-free (0 allocs/op attributable to it;
// the residual allocs are protocol-side heap growth).
func BenchmarkSustainedLoadPerSlot(b *testing.B) {
	b.ReportAllocs()
	res := Run(Config{Kappa: 64, Horizon: int64(b.N) + 1000, Seed: 1},
		NewDecodableBackoff(64, 2), NewEvenPaced(0.8))
	if res.Delivered == 0 {
		b.Fatal("nothing delivered")
	}
}

// BenchmarkClassicalPerSlot measures steady-state cost per slot on the
// classical collision channel, whose success events fire every few
// slots — the stress case for the medium's reused event storage.
func BenchmarkClassicalPerSlot(b *testing.B) {
	b.ReportAllocs()
	res := Run(Config{Horizon: int64(b.N) + 1000, Seed: 1,
		Medium: NewClassicalMedium(CDTernary)},
		NewGenieAloha(2, 1), NewEvenPaced(0.25))
	if res.Delivered == 0 {
		b.Fatal("nothing delivered")
	}
}
