package experiments

import (
	"fmt"

	"repro/internal/adversary"
	"repro/internal/arrival"
	"repro/internal/core"
	"repro/internal/jam"
	"repro/internal/report"
	"repro/internal/rng"
	"repro/internal/sim"
)

// E13Jamming is a failure-injection extension beyond the paper's model:
// an adversarial jammer spoils slots with noise (audibly busy, decode-
// useless).  The Decodable Backoff Algorithm's feedback is exactly
// {silence, decoding events}, so jamming attacks both: a jammed empty
// slot masks silence (delaying activations and probability back-on), and
// a jammed slot inside a successful epoch stretches its decoding window,
// possibly past the κ-slot timeout (misclassifying it overfull).
//
// The paper does not claim jamming robustness (it cites the
// Awerbuch–Richa–Scheideler line for that); this experiment quantifies
// the degradation and checks that safety (conservation, no stuck
// packets at moderate rates) survives even when performance degrades.
func E13Jamming(scale Scale, seed uint64) *Output {
	out := &Output{
		ID:    "E13",
		Title: "robustness under adversarial jamming (beyond-model failure injection)",
		Claim: "extension (not in paper): quantify reliance on the silence/decoding-event feedback",
	}
	const kappa = 64
	horizon := int64(scale.pick(60_000, 200_000))
	load := 0.8
	trials := scale.pick(3, 5)

	tbl := report.NewTable(
		fmt.Sprintf("DBA κ=%d, even-paced load %.2f, random jamming (mean of %d trials)",
			kappa, load, trials),
		"jam rate", "(1-rate)", "delivered frac", "final backlog", "throughput", "overfull epochs")
	for _, rate := range []float64{0, 0.05, 0.10, 0.20, 0.35, 0.50} {
		rate := rate
		var overfull int64
		results := sim.RunTrials(trials, seed+uint64(rate*1000), 0,
			func(trial int, s uint64) *sim.Result {
				d := core.New(kappa, rng.New(s^0xE13))
				res := sim.Run(sim.Config{Kappa: kappa, Horizon: horizon, Drain: true,
					Seed: s, Jammer: &jam.Random{Rate: rate}},
					d, arrival.NewEvenPaced(load))
				overfull += d.Stats().OverfullEpochs
				return res
			})
		frac := sim.Aggregate(results, func(r *sim.Result) float64 {
			return float64(r.Delivered) / float64(r.Arrivals)
		})
		backlog := sim.Aggregate(results, func(r *sim.Result) float64 { return float64(r.Pending) })
		thpt := sim.Aggregate(results, func(r *sim.Result) float64 {
			if r.Elapsed == 0 {
				return 0
			}
			return float64(r.Delivered) / float64(r.Elapsed)
		})
		tbl.AddRow(fmt.Sprintf("%.2f", rate), 1-rate, frac.Mean(), backlog.Mean(),
			thpt.Mean(), overfull/int64(trials))
	}
	out.Tables = append(out.Tables, tbl)

	// Duty-cycled jammer: sustained bursts are worse than the same
	// average rate spread randomly, because a burst longer than an epoch
	// reliably forges overfull epochs.
	duty := report.NewTable("Periodic jammer at 10% duty cycle vs random 10%",
		"jammer", "delivered frac", "final backlog")
	for _, j := range []jam.Jammer{
		&jam.Random{Rate: 0.10},
		&jam.Periodic{Period: 1000, Burst: 100},
	} {
		j := j
		results := sim.RunTrials(trials, seed^0x1357, 0, func(trial int, s uint64) *sim.Result {
			return sim.Run(sim.Config{Kappa: kappa, Horizon: horizon, Drain: true,
				Seed: s, Jammer: j},
				core.New(kappa, rng.New(s^0x2468)), arrival.NewEvenPaced(load))
		})
		frac := sim.Aggregate(results, func(r *sim.Result) float64 {
			return float64(r.Delivered) / float64(r.Arrivals)
		})
		backlog := sim.Aggregate(results, func(r *sim.Result) float64 { return float64(r.Pending) })
		duty.AddRow(j.Name(), frac.Mean(), backlog.Mean())
	}
	out.Tables = append(out.Tables, duty)

	// The adversary grid (internal/adversary): one row per adversary
	// class, same protocol and load, so the failure modes are directly
	// comparable — oblivious noise, duty-cycled bursts, feedback-reactive
	// jamming, and (σ,ρ)-bounded front-loaded injection.
	gridLoad := 0.6
	gridHorizon := int64(scale.pick(30_000, 100_000))
	grid := report.NewTable(
		fmt.Sprintf("Adversary grid: DBA κ=%d, even-paced load %.2f (mean of %d trials)",
			kappa, gridLoad, trials),
		"adversary", "delivered frac", "final backlog", "throughput", "jammed slots")
	for _, desc := range []string{
		"none", "random:0.10", "burst:100/900", "reactive:3/64", "sigmarho:2000/0.05",
	} {
		desc := desc
		results := sim.RunTrials(trials, seed^0x5E13, 0, func(trial int, s uint64) *sim.Result {
			// Adversaries are stateful: each trial parses its own.
			adv, err := adversary.Parse(desc)
			if err != nil {
				panic(err)
			}
			return sim.Run(sim.Config{Kappa: kappa, Horizon: gridHorizon, Drain: true,
				Seed: s, Adversary: adv},
				core.New(kappa, rng.New(s^0x6E13)), arrival.NewEvenPaced(gridLoad))
		})
		frac := sim.Aggregate(results, func(r *sim.Result) float64 {
			return float64(r.Delivered) / float64(r.Arrivals)
		})
		backlog := sim.Aggregate(results, func(r *sim.Result) float64 { return float64(r.Pending) })
		thpt := sim.Aggregate(results, func(r *sim.Result) float64 {
			if r.Elapsed == 0 {
				return 0
			}
			return float64(r.Delivered) / float64(r.Elapsed)
		})
		jammed := sim.Aggregate(results, func(r *sim.Result) float64 {
			return float64(r.Channel.JammedSlots)
		})
		grid.AddRow(desc, frac.Mean(), backlog.Mean(), thpt.Mean(), jammed.Mean())
	}
	out.Tables = append(out.Tables, grid)
	out.Notes = append(out.Notes,
		"each good slot a window needs survives jamming w.p. (1-rate), so effective capacity shrinks to ≈ (1-rate)×(unjammed throughput): the run degrades exactly when load exceeds it",
		"a jammed would-be-silent slot only delays the silent trigger until the next clean slot, so the silence signal itself is surprisingly robust to random jamming",
		"bursts longer than an epoch (periodic jammer) can forge overfull epochs, wrongly driving probabilities down — worse than the same energy spread randomly",
		"safety is preserved at every rate tested: injected = delivered + pending",
		"adversary grid: feedback turns jamming from a tax into a veto — the reactive jammer times its bursts to the slots that would have completed decoding windows, collapsing throughput far below oblivious jamming at far higher effective duty, while the (σ,ρ) front-loader attacks peak backlog rather than throughput; the whole family sweeps as a grid via crnsweep -adversaries")
	return out
}
