package medium

import (
	"fmt"
	"testing"

	"repro/internal/rng"
)

// TestParseSpecGrammar pins the full descriptor grammar: every valid
// spelling, its parsed Spec, and its canonical String.
func TestParseSpecGrammar(t *testing.T) {
	cases := []struct {
		desc  string
		want  Spec
		canon string
	}{
		{"", Spec{Model: "coded"}, "coded"},
		{"coded", Spec{Model: "coded"}, "coded"},
		{"coded:64", Spec{Model: "coded", Kappa: 64}, "coded:64"},
		{"coded:64/256", Spec{Model: "coded", Kappa: 64, MaxWindow: 256}, "coded:64/256"},
		{"classical", Spec{Model: "classical", CD: CDTernary}, "classical:ternary"},
		{"classical:none", Spec{Model: "classical", CD: CDNone}, "classical:none"},
		{"classical:binary", Spec{Model: "classical", CD: CDBinary}, "classical:binary"},
		{"classical:ternary", Spec{Model: "classical", CD: CDTernary}, "classical:ternary"},
		{"capture", Spec{Model: "capture"}, "capture"},
		{"capture:8", Spec{Model: "capture", Kappa: 8}, "capture:8"},
	}
	for _, c := range cases {
		got, err := ParseSpec(c.desc)
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", c.desc, err)
		}
		if got != c.want {
			t.Fatalf("ParseSpec(%q) = %+v, want %+v", c.desc, got, c.want)
		}
		if got.String() != c.canon {
			t.Fatalf("ParseSpec(%q).String() = %q, want %q", c.desc, got.String(), c.canon)
		}
	}
}

func TestParseSpecInvalid(t *testing.T) {
	bad := []string{
		"bogus", "coded:", "coded:x", "coded:0", "coded:-3",
		"coded:64/", "coded:64/0", "coded:64/x", "coded:64/-1",
		"classical:", "classical:quaternary", "classical:TERNARY",
		"capture:", "capture:0", "capture:x", "capture:8/2",
		"Coded", "CLASSICAL", ":", "coded:8:2", "jam", "coded ",
	}
	for _, desc := range bad {
		if s, err := ParseSpec(desc); err == nil {
			t.Fatalf("ParseSpec(%q) = %+v, want error", desc, s)
		}
	}
}

// TestSpecRoundTripProperty generates random Specs across the full
// grammar and checks ParseSpec(s.String()) == s, plus that every parsed
// spec's String is a fixed point (canonical form is canonical).
func TestSpecRoundTripProperty(t *testing.T) {
	r := rng.New(0xC0DEC)
	for i := 0; i < 2000; i++ {
		var s Spec
		switch r.Intn(3) {
		case 0:
			s = Spec{Model: "coded"}
			if r.Intn(2) == 1 {
				s.Kappa = 1 + r.Intn(1<<uint(r.Intn(20)))
				if r.Intn(2) == 1 {
					s.MaxWindow = 1 + r.Intn(1<<uint(r.Intn(20)))
				}
			}
		case 1:
			s = Spec{Model: "classical", CD: CD(r.Intn(3))}
		case 2:
			s = Spec{Model: "capture"}
			if r.Intn(2) == 1 {
				s.Kappa = 1 + r.Intn(1<<uint(r.Intn(20)))
			}
		}
		desc := s.String()
		got, err := ParseSpec(desc)
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v (from %+v)", desc, err, s)
		}
		if got != s {
			t.Fatalf("round trip: %+v -> %q -> %+v", s, desc, got)
		}
		if got.String() != desc {
			t.Fatalf("String not a fixed point: %q vs %q", got.String(), desc)
		}
	}
}

// TestSpecBuild checks context-default resolution: embedded values win,
// zero fields inherit the Build arguments, and under-specified coded/
// capture media fail loudly instead of panicking.
func TestSpecBuild(t *testing.T) {
	build := func(desc string, kappa, maxWindow int) (Medium, error) {
		t.Helper()
		s, err := ParseSpec(desc)
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", desc, err)
		}
		return s.Build(kappa, maxWindow)
	}

	m, err := build("coded", 8, 0)
	if err != nil || m.Kappa() != 8 || m.Name() != "coded" {
		t.Fatalf("coded context build: %v %v", m, err)
	}
	m, err = build("coded:64", 8, 0)
	if err != nil || m.Kappa() != 64 {
		t.Fatalf("embedded kappa should win: %v %v", m, err)
	}
	m, err = build("capture:4", 1, 0)
	if err != nil || m.Kappa() != 4 {
		t.Fatalf("capture embedded kappa: %v %v", m, err)
	}
	m, err = build("classical:none", 99, 77)
	if err != nil || m.Kappa() != 1 || m.Name() != "classical:none" {
		t.Fatalf("classical ignores context: %v %v", m, err)
	}
	if _, err = build("coded", 0, 0); err == nil {
		t.Fatal("coded with no kappa anywhere should error")
	}
	if _, err = build("capture", 0, 0); err == nil {
		t.Fatal("capture with no kappa anywhere should error")
	}
	if _, err := (Spec{Model: "nope"}).Build(1, 0); err == nil {
		t.Fatal("unknown model should error")
	}
	if _, err := (Spec{Model: "classical", CD: CD(9)}).Build(1, 0); err == nil {
		t.Fatal("invalid CD should error")
	}
	if _, err := (Spec{Model: "coded", Kappa: 4, MaxWindow: -2}).Build(0, 0); err == nil {
		t.Fatal("negative window cap should error")
	}
}

// TestNewMatchesSpecBuild pins that New is exactly ParseSpec+Build for
// every canonical model descriptor.
func TestNewMatchesSpecBuild(t *testing.T) {
	for _, desc := range Models {
		viaNew, err := New(desc, 4, 16)
		if err != nil {
			t.Fatalf("New(%q): %v", desc, err)
		}
		s, err := ParseSpec(desc)
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", desc, err)
		}
		viaSpec, err := s.Build(4, 16)
		if err != nil {
			t.Fatalf("Build(%q): %v", desc, err)
		}
		if viaNew.Name() != viaSpec.Name() || viaNew.Kappa() != viaSpec.Kappa() {
			t.Fatalf("New(%q) = %s/κ%d, Spec build = %s/κ%d",
				desc, viaNew.Name(), viaNew.Kappa(), viaSpec.Name(), viaSpec.Kappa())
		}
	}
	if _, err := New("bogus", 1, 0); err == nil {
		t.Fatal("New(bogus) should error")
	}
}

func ExampleParseSpec() {
	s, _ := ParseSpec("coded:64")
	fmt.Println(s.Model, s.Kappa, s.String())
	// Output: coded 64 coded:64
}
