package perf

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestCasesDeterministicAndUnique(t *testing.T) {
	for _, scale := range []Scale{Quick, Full} {
		a, b := Cases(scale), Cases(scale)
		if len(a) == 0 {
			t.Fatalf("%s: empty grid", scale)
		}
		seen := make(map[string]bool, len(a))
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: grid not deterministic at %d", scale, i)
			}
			k := a[i].Key()
			if seen[k] {
				t.Fatalf("%s: duplicate cell key %q", scale, k)
			}
			seen[k] = true
		}
		if !seen[GateKey(scale)] {
			t.Fatalf("%s: gate cell %q not in grid", scale, GateKey(scale))
		}
	}
	// Full scale must reach the large-batch regime the tentpole targets.
	var millionBatch bool
	for _, c := range Cases(Full) {
		millionBatch = millionBatch || (c.Protocol == "dba" && c.Workload == "batch" && c.N == 1_000_000)
	}
	if !millionBatch {
		t.Fatal("full grid lost the dba n=10^6 batch cell")
	}
}

func TestGridSkipsOversizedBaselineBatches(t *testing.T) {
	for _, c := range Cases(Full) {
		if c.Protocol == "beb" && c.Workload == "batch" && c.N > 20_000 {
			t.Fatalf("beb asked to complete an n=%d batch", c.N)
		}
	}
}

// TestRunQuickArtifact runs the whole quick grid once — the same
// coverage the CI bench-smoke step exercises through cmd/crnbench —
// and validates the artifact, including the allocation gate.
func TestRunQuickArtifact(t *testing.T) {
	var calls int
	art := Run(Options{Scale: Quick, Trials: 1, Seed: 2022,
		OnCell: func(done, total int, m *Measurement) {
			calls++
			if m == nil || done < 1 || done > total {
				t.Fatalf("bad progress call %d/%d %v", done, total, m)
			}
		}})
	if calls != len(Cases(Quick)) {
		t.Fatalf("progress calls %d, want %d", calls, len(Cases(Quick)))
	}
	if err := Check(art, Quick); err != nil {
		t.Fatal(err)
	}
	// The artifact must survive a JSON round trip (what the committed
	// BENCH_engine.json and the CI smoke re-parse).
	data, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	var back Artifact
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if err := Check(&back, Quick); err != nil {
		t.Fatalf("round-tripped artifact invalid: %v", err)
	}
	// Batch cells complete their batches; steady cells drain.
	for _, m := range art.Cells {
		if m.Delivered != m.Arrivals {
			t.Fatalf("%s: delivered %d of %d", m.Key, m.Delivered, m.Arrivals)
		}
	}
}

func TestCheckRejects(t *testing.T) {
	art := Run(Options{Scale: Quick, Trials: 1, Seed: 7})
	if err := Check(art, Quick); err != nil {
		t.Fatal(err)
	}
	missing := *art
	missing.Cells = art.Cells[1:]
	if err := Check(&missing, Quick); err == nil {
		t.Fatal("missing cell accepted")
	}
	dup := *art
	dup.Cells = append([]Measurement{art.Cells[0]}, art.Cells...)
	if err := Check(&dup, Quick); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("duplicate cell accepted: %v", err)
	}
	gated := *art
	gated.Cells = append([]Measurement(nil), art.Cells...)
	for i := range gated.Cells {
		if gated.Cells[i].Key == GateKey(Quick) {
			gated.Cells[i].AllocsPerSlot = 1.5
		}
	}
	if err := Check(&gated, Quick); err == nil || !strings.Contains(err.Error(), "allocation gate") {
		t.Fatalf("alloc regression accepted: %v", err)
	}
	if err := Check(nil, Quick); err == nil {
		t.Fatal("nil artifact accepted")
	}
}
