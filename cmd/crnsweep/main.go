// Command crnsweep runs a declarative scenario grid — the cross-product
// of channel models × protocols × arrival processes × κ values × rates
// × jammers × adversaries, with several independent trials per cell —
// in parallel, and emits per-cell aggregates as an aligned table, JSON,
// and/or CSV.  Artifacts are deterministic: the same spec and seed
// reproduce byte-identical output at any parallelism — adaptive
// adversaries included — so sweep results are diffable across commits.
//
// Execution is shardable, cacheable, and resumable (DESIGN.md §6.2):
// -shard k/N runs the k-th of N balanced slices of the grid and writes
// a mergeable shard artifact; -cache-dir persists every completed cell
// as a content-addressed record, and -resume re-executes only the cells
// whose records are missing; -merge reassembles shard artifacts into
// the full grid, verifying they cover exactly one spec.  Merged (and
// resumed) output is byte-identical to a single-process run.
//
// Static shards are one scheduling policy; -worker is the other
// (DESIGN.md §6.3): workers claim cells dynamically from a shared
// store — a -cache-dir directory or a crnserve URL via -backend — so
// any number of workers, started and killed at any time, drain one grid
// together.  -assemble reads the drained store back into the full grid.
// Both policies fill the same record namespace and produce the same
// bytes.
//
// Usage:
//
//	crnsweep [-spec file.json] [grid flags] [-shard k/N] [-cache-dir dir [-resume]] [-json path] [-csv path] [-bench path]
//	crnsweep -merge [-json path] [-csv path] [-bench path] shard1.json shard2.json ...
//	crnsweep [-spec file.json] -worker {-backend URL | -cache-dir dir} [-owner name] [-lease-ttl d]
//	crnsweep [-spec file.json] -assemble {-backend URL | -cache-dir dir} [-json path] [-csv path] [-bench path]
//
// Examples:
//
//	crnsweep                                    # default demo grid
//	crnsweep -protocols dba,beb -kappas 8,64 -rates 0.3,0.6 -trials 4
//	crnsweep -models coded,classical -protocols dba,beb,mw  # cross-model comparison
//	crnsweep -models classical:none,capture -protocols unbounded,robust,beb -kappas 8  # no-CD and capture regimes
//	crnsweep -spec sweep.json -json - -quiet    # spec file, JSON to stdout
//	crnsweep -jammers none,random:0.2 -csv out/sweep.csv
//	crnsweep -adversaries none,reactive:8/64,sigmarho:500/0.2  # adversary grid
//	crnsweep -bench BENCH_sweep.json            # diffable benchmark artifact
//	crnsweep -spec sweep.json -shard 2/4 -json shard2.json  # one of 4 shards
//	crnsweep -merge -json full.json shard*.json # reassemble the full grid
//	crnsweep -spec sweep.json -cache-dir .sweep-cache -resume  # redo only missing cells
//	crnsweep -spec sweep.json -worker -backend http://coordinator:8771  # on each machine
//	crnsweep -spec sweep.json -assemble -backend http://coordinator:8771 -json grid.json
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/cache"
	"repro/internal/cache/httpstore"
	"repro/internal/report"
	"repro/internal/sweep"
)

// errFlagParse marks errors the FlagSet has already written to stderr,
// so main exits non-zero without printing them a second time.
var errFlagParse = errors.New("flag parse error")

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		if !errors.Is(err, errFlagParse) {
			fmt.Fprintf(os.Stderr, "crnsweep: %v\n", err)
		}
		os.Exit(1)
	}
}

// run is main minus the process boundary, so flag handling and the
// merge/shard/resume paths are testable in-process.
func run(argv []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("crnsweep", flag.ContinueOnError)
	fs.SetOutput(stderr)
	specPath := fs.String("spec", "", "JSON sweep spec file (grid flags are ignored if set)")
	name := fs.String("name", "", "sweep name recorded in artifacts")
	models := fs.String("models", "coded", "comma-separated channel models: coded, classical, classical:none, classical:binary, classical:ternary, capture")
	protocols := fs.String("protocols", "dba,genie", "comma-separated protocols: dba, beb, aloha, genie, mw, robust, unbounded")
	arrivals := fs.String("arrivals", "bernoulli", "comma-separated arrivals: batch, bernoulli, poisson, even, burst")
	kappas := fs.String("kappas", "8,64", "comma-separated decoding thresholds")
	rates := fs.String("rates", "0.3,0.6", "comma-separated offered loads")
	jammers := fs.String("jammers", "none", "comma-separated jammers: none, random:RATE, periodic:PERIOD/BURST")
	adversaries := fs.String("adversaries", "none", "comma-separated adversaries: none, random:RATE, burst:B/GAP, reactive:TRIGGER/BURST, sigmarho:SIGMA/RHO")
	trials := fs.Int("trials", 2, "independent trials per cell")
	horizon := fs.Int64("horizon", 20000, "arrival horizon in slots")
	noDrain := fs.Bool("no-drain", false, "stop at the horizon instead of draining")
	maxWindow := fs.Int("max-window", 0, "decoding-window cap (0 = default 4κ)")
	latencySamples := fs.Int("latency-samples", 0, "per-trial latency reservoir capacity (0 = engine default, -1 = off)")
	seed := fs.Uint64("seed", 1, "base random seed")
	parallelism := fs.Int("parallelism", 0, "concurrent trials (0 = GOMAXPROCS)")
	workers := fs.Int("workers", 0, "staged-engine goroutines per trial (0 = serial engine; results and cell identities identical at any value)")
	shardFlag := fs.String("shard", "", "run only slice k/N of the grid (e.g. 2/4) and write a mergeable shard artifact")
	cacheDir := fs.String("cache-dir", "", "persist each completed cell as a content-addressed record in this directory")
	resume := fs.Bool("resume", false, "with -cache-dir: load already-cached cells and execute only the missing ones")
	merge := fs.Bool("merge", false, "merge shard artifacts (positional args) into the full grid instead of running")
	backendURL := fs.String("backend", "", "crnserve URL of a shared cell store (work-stealing alternative to -cache-dir)")
	worker := fs.Bool("worker", false, "drain the grid as a work-stealing worker against the shared store (-backend or -cache-dir)")
	assemble := fs.Bool("assemble", false, "read the full grid back from the shared store instead of running anything")
	owner := fs.String("owner", "", "with -worker: lease-owner label (default worker-<pid>)")
	leaseTTL := fs.Duration("lease-ttl", sweep.DefaultLeaseTTL, "with -worker: how long a claimed cell stays this worker's before others may steal it")
	jsonPath := fs.String("json", "", "write the grid (or shard artifact) as JSON to this path ('-' = stdout)")
	csvPath := fs.String("csv", "", "write the grid as CSV to this path ('-' = stdout)")
	benchPath := fs.String("bench", "", "write the compact benchmark artifact (per-cell headline means) to this path")
	quiet := fs.Bool("quiet", false, "suppress the table and progress output")
	if err := fs.Parse(argv); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil // -h is a successful exit, not an error
		}
		return errFlagParse // the FlagSet already printed the problem
	}

	setFlags := make(map[string]bool)
	fs.Visit(func(f *flag.Flag) { setFlags[f.Name] = true })

	if *worker && *assemble {
		return fmt.Errorf("-worker and -assemble are different roles: workers drain the store, assemble reads it back — run them as separate invocations")
	}
	if *merge && (*worker || *assemble) {
		return fmt.Errorf("-merge reassembles shard artifacts; a shared store is read back with -assemble alone")
	}
	if *backendURL != "" && *cacheDir != "" {
		return fmt.Errorf("-backend and -cache-dir name two different stores; pick one")
	}
	if (*worker || *assemble) && *backendURL == "" && *cacheDir == "" {
		return fmt.Errorf("-worker/-assemble need a shared store: -backend URL or -cache-dir DIR")
	}
	if *backendURL != "" && !*worker && !*assemble {
		return fmt.Errorf("-backend is the shared store for -worker or -assemble; a plain run caches locally with -cache-dir")
	}
	if *resume && *backendURL != "" {
		return fmt.Errorf("-resume is the -cache-dir workflow; against a shared backend use -worker, which skips completed cells by construction")
	}
	if *resume && (*worker || *assemble) {
		return fmt.Errorf("-resume does not apply: -worker always skips completed cells and -assemble executes nothing")
	}
	if (setFlags["owner"] || setFlags["lease-ttl"]) && !*worker {
		return fmt.Errorf("-owner/-lease-ttl only apply to -worker")
	}
	if *worker && *shardFlag != "" {
		return fmt.Errorf("-shard assigns cells statically and -worker claims them dynamically; pick one scheduling policy")
	}
	if *assemble && *shardFlag != "" {
		return fmt.Errorf("-assemble reads the whole grid; shards do not apply")
	}
	if *worker && (*jsonPath != "" || *csvPath != "" || *benchPath != "") {
		return fmt.Errorf("a worker does not own the full grid; run -assemble afterwards to emit artifacts")
	}

	if *merge {
		if fs.NArg() == 0 {
			return fmt.Errorf("-merge needs shard artifact files as arguments")
		}
		return runMerge(fs.Args(), *jsonPath, *csvPath, *benchPath, *quiet, stdout, stderr)
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments %v (shard files are only accepted with -merge)", fs.Args())
	}
	if *resume && *cacheDir == "" {
		return fmt.Errorf("-resume needs -cache-dir (there is no cache to resume from)")
	}

	var shard sweep.Shard
	if *shardFlag != "" {
		var err error
		if shard, err = sweep.ParseShard(*shardFlag); err != nil {
			return err
		}
	}
	sharded := !shard.IsAll()
	if sharded && (*csvPath != "" || *benchPath != "") {
		return fmt.Errorf("-csv/-bench describe the full grid; run -merge over the shard artifacts instead")
	}
	if sharded && *jsonPath == "" {
		return fmt.Errorf("-shard produces a shard artifact; pass -json to say where it goes")
	}

	var spec sweep.Spec
	if *specPath != "" {
		data, err := os.ReadFile(*specPath)
		if err != nil {
			return err
		}
		parsed, err := sweep.ParseSpec(data)
		if err != nil {
			return err
		}
		spec = *parsed
	} else {
		ints, err := parseInts(*kappas)
		if err != nil {
			return err
		}
		floats, err := parseFloats(*rates)
		if err != nil {
			return err
		}
		spec = sweep.Spec{
			Name:           *name,
			Models:         splitList(*models),
			Protocols:      splitList(*protocols),
			Arrivals:       splitList(*arrivals),
			Kappas:         ints,
			Rates:          floats,
			Jammers:        splitList(*jammers),
			Adversaries:    splitList(*adversaries),
			Trials:         *trials,
			Horizon:        *horizon,
			NoDrain:        *noDrain,
			MaxWindow:      *maxWindow,
			LatencySamples: *latencySamples,
			Seed:           *seed,
		}
		if err := spec.Validate(); err != nil {
			return err
		}
	}

	opts := sweep.Options{Parallelism: *parallelism, Workers: *workers, Resume: *resume}
	if *backendURL != "" {
		client, err := httpstore.NewClient(*backendURL)
		if err != nil {
			return err
		}
		opts.Cache = client
	} else if *cacheDir != "" {
		store, err := cache.Open(*cacheDir)
		if err != nil {
			return err
		}
		opts.Cache = store
	}

	// Ctrl-C (or a coordinator's SIGTERM) cancels the run between cells
	// (between trials for in-process runs); completed cells stay cached.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *assemble {
		grid, err := sweep.Assemble(ctx, spec, opts.Cache)
		if err != nil {
			return err
		}
		if !*quiet {
			fmt.Fprintf(stderr, "crnsweep: assembled %d cells from the shared store\n", len(grid.Cells))
			if *jsonPath != "-" && *csvPath != "-" {
				fmt.Fprint(stdout, grid.Table().String())
			}
		}
		return writeGrid(grid, *jsonPath, *csvPath, *benchPath, stdout)
	}

	if !*quiet {
		total := spec.Cells()
		switch {
		case *worker:
			fmt.Fprintf(stderr, "crnsweep: worker draining %d cells × %d trials\n", total, spec.Trials)
		case sharded:
			fmt.Fprintf(stderr, "crnsweep: shard %s of %d cells × %d trials\n", shard, total, spec.Trials)
		default:
			fmt.Fprintf(stderr, "crnsweep: %d cells × %d trials\n", total, spec.Trials)
		}
		opts.OnCell = func(done, total int, cell *sweep.CellSummary, cached bool) {
			suffix := ""
			if cached {
				suffix = " (cached)"
			}
			fmt.Fprintf(stderr, "  [%d/%d] %s thpt=%.3f%s\n",
				done, total, cell.Key(), cell.Throughput.Mean, suffix)
		}
	}
	start := time.Now()

	if *worker {
		opts.Owner = *owner
		opts.LeaseTTL = *leaseTTL
		// A stopped worker's unexpired leases become stealable once they
		// lapse.
		res, err := sweep.RunWorker(ctx, spec, opts)
		if err != nil {
			return err
		}
		if !*quiet {
			fmt.Fprintf(stderr, "crnsweep: worker %s done in %v: executed %d, loaded %d of %d cells\n",
				res.Owner, time.Since(start).Round(time.Millisecond), res.Executed, res.Loaded, res.Total)
		}
		return nil
	}

	// When an artifact streams to stdout, keep stdout machine-clean: the
	// table would corrupt the JSON/CSV a pipe consumes.
	stdoutTaken := *jsonPath == "-" || *csvPath == "-"

	if sharded {
		res, err := sweep.RunShard(ctx, spec, shard, opts)
		if err != nil {
			return err
		}
		if !*quiet {
			fmt.Fprintf(stderr, "crnsweep: shard %s (%d/%d cells) completed in %v\n",
				shard, len(res.Cells), res.TotalCells, time.Since(start).Round(time.Millisecond))
		}
		if *jsonPath != "" {
			data, err := res.JSON()
			if err != nil {
				return err
			}
			data = append(data, '\n')
			if *jsonPath == "-" {
				if _, err := stdout.Write(data); err != nil {
					return err
				}
			} else if err := report.SaveFile(*jsonPath, data); err != nil {
				return err
			}
		}
		return nil
	}

	grid, err := sweep.Run(ctx, spec, opts)
	if err != nil {
		return err
	}
	if !*quiet {
		fmt.Fprintf(stderr, "crnsweep: completed in %v\n\n", time.Since(start).Round(time.Millisecond))
		if !stdoutTaken {
			fmt.Fprint(stdout, grid.Table().String())
		}
	}
	return writeGrid(grid, *jsonPath, *csvPath, *benchPath, stdout)
}

// runMerge reassembles shard artifacts into the full grid and writes
// the requested outputs — byte-identical to an unsharded run's.
func runMerge(paths []string, jsonPath, csvPath, benchPath string, quiet bool, stdout, stderr io.Writer) error {
	shards := make([]*sweep.ShardResult, 0, len(paths))
	for _, path := range paths {
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		res, err := sweep.ParseShardResult(data)
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		shards = append(shards, res)
	}
	grid, err := sweep.Merge(shards)
	if err != nil {
		return err
	}
	if !quiet {
		fmt.Fprintf(stderr, "crnsweep: merged %d shards into %d cells\n", len(shards), len(grid.Cells))
		if jsonPath != "-" && csvPath != "-" {
			fmt.Fprint(stdout, grid.Table().String())
		}
	}
	return writeGrid(grid, jsonPath, csvPath, benchPath, stdout)
}

// writeGrid emits the grid's JSON/CSV/bench artifacts ('-' = stdout;
// file writes are atomic).
func writeGrid(grid *sweep.Grid, jsonPath, csvPath, benchPath string, stdout io.Writer) error {
	if jsonPath != "" {
		if jsonPath == "-" {
			if err := report.WriteJSON(stdout, grid); err != nil {
				return err
			}
		} else if err := report.SaveJSON(jsonPath, grid); err != nil {
			return err
		}
	}
	if csvPath != "" {
		if csvPath == "-" {
			fmt.Fprint(stdout, grid.CSV())
		} else if err := report.SaveFile(csvPath, []byte(grid.CSV())); err != nil {
			return err
		}
	}
	if benchPath != "" {
		if err := report.SaveJSON(benchPath, grid.Bench()); err != nil {
			return err
		}
	}
	return nil
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range splitList(s) {
		v, err := strconv.Atoi(part)
		if err != nil {
			return nil, fmt.Errorf("bad integer %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}

func parseFloats(s string) ([]float64, error) {
	var out []float64
	for _, part := range splitList(s) {
		v, err := strconv.ParseFloat(part, 64)
		if err != nil {
			return nil, fmt.Errorf("bad number %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}
