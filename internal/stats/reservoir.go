package stats

import (
	"math"

	"repro/internal/rng"
)

// Reservoir keeps a bounded uniform sample of a float64 stream
// (Vitter's Algorithm R), seeded so the retained sample is a
// deterministic function of (seed, stream).  While the stream length is
// within capacity the sample is the entire stream in arrival order, so
// quantiles computed from it are exact; past capacity, memory stays
// fixed and quantiles become estimates from a uniform subsample.  The
// simulation engine uses it to keep per-packet latency quantiles
// available at any scale without retaining O(arrivals) memory.
type Reservoir struct {
	vals []float64
	n    int64
	cap  int
	rand *rng.Rand
}

// NewReservoir returns a reservoir retaining at most capacity values,
// with replacement decisions drawn from a stream seeded by seed.
func NewReservoir(capacity int, seed uint64) *Reservoir {
	if capacity < 1 {
		panic("stats: reservoir capacity must be at least 1")
	}
	return &Reservoir{cap: capacity, rand: rng.New(seed)}
}

// Add offers one observation to the reservoir.
func (r *Reservoir) Add(x float64) {
	r.n++
	if len(r.vals) < r.cap {
		r.vals = append(r.vals, x)
		return
	}
	if j := r.rand.Uint64n(uint64(r.n)); j < uint64(r.cap) {
		r.vals[j] = x
	}
}

// N returns the length of the stream offered so far.
func (r *Reservoir) N() int64 { return r.n }

// Len returns the number of retained values (min(N, capacity)).
func (r *Reservoir) Len() int { return len(r.vals) }

// Cap returns the reservoir capacity.
func (r *Reservoir) Cap() int { return r.cap }

// Exact reports whether the retained sample is the whole stream, i.e.
// quantiles computed from it are exact rather than estimates.
func (r *Reservoir) Exact() bool { return r.n <= int64(r.cap) }

// Values returns the retained sample.  The slice is the reservoir's own
// storage: read it, do not modify or retain it across Adds.
func (r *Reservoir) Values() []float64 { return r.vals }

// Quantile returns the q-quantile of the retained sample, or NaN if the
// reservoir is empty.  It panics on q outside [0, 1].
func (r *Reservoir) Quantile(q float64) float64 {
	if q < 0 || q > 1 {
		panic("stats: quantile fraction out of [0,1]")
	}
	if len(r.vals) == 0 {
		return math.NaN()
	}
	return Quantile(r.vals, q)
}

// Quantiles returns several quantiles of the retained sample with one
// sort, NaN-filled if the reservoir is empty.  It validates every
// fraction before sorting.
func (r *Reservoir) Quantiles(qs ...float64) []float64 {
	for _, q := range qs {
		if q < 0 || q > 1 {
			panic("stats: quantile fraction out of [0,1]")
		}
	}
	if len(r.vals) == 0 {
		out := make([]float64, len(qs))
		for i := range out {
			out[i] = math.NaN()
		}
		return out
	}
	return Quantiles(r.vals, qs...)
}
