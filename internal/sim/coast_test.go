package sim

import (
	"testing"

	"repro/internal/arrival"
	"repro/internal/baseline"
	"repro/internal/channel"
	"repro/internal/core"
	"repro/internal/jam"
	"repro/internal/medium"
	"repro/internal/rng"
)

// plainMedium hides a medium's optional Sharded and Repeater
// capabilities, forcing the engine onto the legacy full-Step path for
// every slot.  Runs through it are the executable definition of what
// the coast fast-forward and the sharded pre-reduce must reproduce.
type plainMedium struct {
	inner medium.Medium
}

func (p *plainMedium) Name() string { return p.inner.Name() }
func (p *plainMedium) Kappa() int   { return p.inner.Kappa() }
func (p *plainMedium) AddSilent(n int64) {
	p.inner.AddSilent(n)
}
func (p *plainMedium) Step(now int64, txs []channel.PacketID) (channel.SlotClass, *channel.Event) {
	return p.inner.Step(now, txs)
}
func (p *plainMedium) Feedback(fb *channel.Feedback) { p.inner.Feedback(fb) }
func (p *plainMedium) Stats() channel.Stats          { return p.inner.Stats() }
func (p *plainMedium) Reset()                        { p.inner.Reset() }

// TestCoastMatchesFullStep pins the coast fast-forward (Coaster ×
// Repeater) and the sharded pre-reduce against the legacy path: every
// scenario must produce byte-identical Results whether the medium
// advertises the fast capabilities or has them hidden.  Scenarios are
// chosen to spend most of their slots in overfull DBA epochs — exactly
// the regime the coast optimizes — with and without a jammer spoiling
// slots mid-coast (the Jammed.StepRepeat fallback).
func TestCoastMatchesFullStep(t *testing.T) {
	scenarios := []struct {
		name string
		cfg  Config
		run  func(cfg Config) *Result
	}{
		{"dba/overfull-batch", Config{Kappa: 8, Horizon: 1, Drain: true, Seed: 31},
			func(cfg Config) *Result {
				return Run(cfg, core.New(8, rng.New(301)), &arrival.Batch{At: 0, N: 4000})
			}},
		{"dba/bernoulli", Config{Kappa: 16, Horizon: 20000, Drain: true, Seed: 32},
			func(cfg Config) *Result {
				return Run(cfg, core.New(16, rng.New(302)), &arrival.Bernoulli{Rate: 0.4})
			}},
		{"dba/overfull+random-jam", Config{Kappa: 8, Horizon: 1, Drain: true, Seed: 33,
			Jammer: &jam.Random{Rate: 0.3}},
			func(cfg Config) *Result {
				return Run(cfg, core.New(8, rng.New(303)), &arrival.Batch{At: 0, N: 2000})
			}},
		{"dba/bernoulli+periodic-jam", Config{Kappa: 16, Horizon: 15000, Drain: true, Seed: 34,
			Jammer: &jam.Periodic{Period: 48, Burst: 12}},
			func(cfg Config) *Result {
				return Run(cfg, core.New(16, rng.New(304)), &arrival.Bernoulli{Rate: 0.3})
			}},
		{"beb/no-coaster", Config{Kappa: 8, Horizon: 4096, Drain: true, Seed: 35},
			func(cfg Config) *Result {
				return Run(cfg, baseline.NewExponentialBackoff(rng.New(305)), &arrival.Batch{At: 0, N: 64})
			}},
	}
	for _, sc := range scenarios {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			t.Parallel()
			for _, w := range []int{0, 3} {
				fastCfg := sc.cfg
				fastCfg.Workers = w
				fast := resultDump(t, sc.run(fastCfg))

				plainCfg := sc.cfg
				plainCfg.Workers = w
				plainCfg.Medium = &plainMedium{inner: medium.NewCoded(sc.cfg.Kappa, plainCfg.maxWindow())}
				plain := resultDump(t, sc.run(plainCfg))

				if fast != plain {
					t.Errorf("workers=%d: coast/sharded path diverged from full-step reference\nfast:  %s\nplain: %s",
						w, fast, plain)
				}
			}
		})
	}
}
