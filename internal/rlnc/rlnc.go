// Package rlnc implements random linear network coding over GF(2^8),
// the mechanism the paper's "Practicalities" section sketches for
// realizing the Coded Radio Network Model at the physical layer.
//
// Each source packet is a byte payload.  When a set of packets broadcast
// in a slot, the channel is additive: the base station receives a linear
// combination of the payloads, with one coefficient per transmitter.
// Over a decoding window, the received combinations form a linear system
// whose unknowns are the payloads; decoding succeeds exactly when the
// coefficient matrix reaches full rank — giving the model's rule that
// decoding j packets needs at least j good slots.
//
// The Decoder is progressive: coded slots are fed in as they arrive and
// eliminated online, so the cost of a decoding window is one Gaussian
// elimination spread across its slots.
package rlnc

import (
	"errors"
	"fmt"

	"repro/internal/gf256"
	"repro/internal/rng"
)

// Symbol is one received coded slot: the coefficient of every source
// packet in the combination plus the combined payload.
type Symbol struct {
	// Coeffs[i] is the GF(2^8) coefficient of source packet i.  Packets
	// that did not transmit in the slot have coefficient 0.
	Coeffs []byte
	// Payload is the element-wise combination of the transmitting
	// packets' payloads under Coeffs.
	Payload []byte
}

// Clone returns a deep copy of the symbol.
func (s Symbol) Clone() Symbol {
	c := Symbol{Coeffs: make([]byte, len(s.Coeffs)), Payload: make([]byte, len(s.Payload))}
	copy(c.Coeffs, s.Coeffs)
	copy(c.Payload, s.Payload)
	return c
}

// Encoder combines source packets into coded slots.
type Encoder struct {
	payloads    [][]byte
	payloadSize int
}

// NewEncoder returns an encoder over the given source packets.  All
// payloads must be non-empty and the same length.
func NewEncoder(payloads [][]byte) (*Encoder, error) {
	if len(payloads) == 0 {
		return nil, errors.New("rlnc: no source packets")
	}
	size := len(payloads[0])
	if size == 0 {
		return nil, errors.New("rlnc: empty payload")
	}
	for i, p := range payloads {
		if len(p) != size {
			return nil, fmt.Errorf("rlnc: payload %d has length %d, want %d", i, len(p), size)
		}
	}
	return &Encoder{payloads: payloads, payloadSize: size}, nil
}

// NumPackets returns the number of source packets.
func (e *Encoder) NumPackets() int { return len(e.payloads) }

// PayloadSize returns the common payload length in bytes.
func (e *Encoder) PayloadSize() int { return e.payloadSize }

// Slot simulates one slot in which the packets with the listed indices
// broadcast.  Each transmitter's contribution is scaled by a fresh random
// nonzero coefficient (random linear coding), and the base station
// receives the sum.  The returned symbol has one coefficient per source
// packet (zero for silent packets).
func (e *Encoder) Slot(transmitters []int, r *rng.Rand) (Symbol, error) {
	s := Symbol{
		Coeffs:  make([]byte, len(e.payloads)),
		Payload: make([]byte, e.payloadSize),
	}
	for _, idx := range transmitters {
		if idx < 0 || idx >= len(e.payloads) {
			return Symbol{}, fmt.Errorf("rlnc: transmitter index %d out of range [0,%d)", idx, len(e.payloads))
		}
		if s.Coeffs[idx] != 0 {
			return Symbol{}, fmt.Errorf("rlnc: duplicate transmitter %d", idx)
		}
		c := byte(1 + r.Intn(255)) // nonzero random coefficient
		s.Coeffs[idx] = c
		gf256.MulSlice(s.Payload, e.payloads[idx], c)
	}
	return s, nil
}

// PlainSlot simulates a slot without random coefficients: every
// transmitter contributes with coefficient 1 (pure superposition, the
// "unique column vectors" variant discussed in the paper).
func (e *Encoder) PlainSlot(transmitters []int) (Symbol, error) {
	s := Symbol{
		Coeffs:  make([]byte, len(e.payloads)),
		Payload: make([]byte, e.payloadSize),
	}
	for _, idx := range transmitters {
		if idx < 0 || idx >= len(e.payloads) {
			return Symbol{}, fmt.Errorf("rlnc: transmitter index %d out of range [0,%d)", idx, len(e.payloads))
		}
		if s.Coeffs[idx] != 0 {
			return Symbol{}, fmt.Errorf("rlnc: duplicate transmitter %d", idx)
		}
		s.Coeffs[idx] = 1
		gf256.MulSlice(s.Payload, e.payloads[idx], 1)
	}
	return s, nil
}

// Decoder performs progressive Gaussian elimination over received
// symbols.  Feed symbols with Add; Decoded reports which source packets
// have been recovered so far.
type Decoder struct {
	n           int // number of source packets
	payloadSize int
	rows        []Symbol // reduced rows, rows[i] has pivot at column pivot[i]
	pivotOf     []int    // pivotOf[col] = row index with pivot at col, or -1
	rank        int
	recovered   [][]byte // recovered[i] non-nil once packet i is decoded
}

// NewDecoder returns a decoder for n source packets of the given payload
// size.
func NewDecoder(n, payloadSize int) *Decoder {
	if n <= 0 || payloadSize <= 0 {
		panic("rlnc: NewDecoder needs positive packet count and payload size")
	}
	p := make([]int, n)
	for i := range p {
		p[i] = -1
	}
	return &Decoder{n: n, payloadSize: payloadSize, pivotOf: p, recovered: make([][]byte, n)}
}

// Rank returns the current rank of the received system.
func (d *Decoder) Rank() int { return d.rank }

// Add feeds one received symbol into the decoder.  It returns true if the
// symbol was innovative (increased the rank).  Non-innovative symbols are
// discarded.  Add panics if the symbol's shape does not match the decoder.
//
// Invariant maintained across calls: every stored row is zero in every
// pivot column except its own, so once rank reaches n all rows are unit
// vectors and every packet is recovered.
func (d *Decoder) Add(s Symbol) bool {
	if len(s.Coeffs) != d.n || len(s.Payload) != d.payloadSize {
		panic("rlnc: symbol shape mismatch")
	}
	row := s.Clone()
	// Eliminate every existing pivot column from the incoming row.  One
	// ascending pass suffices: pivot rows are themselves zero in all other
	// pivot columns, so eliminating column c never reintroduces a pivot
	// column that was already cleared.
	pivotCol := -1
	for col := 0; col < d.n; col++ {
		c := row.Coeffs[col]
		if c == 0 {
			continue
		}
		if ri := d.pivotOf[col]; ri >= 0 {
			pr := d.rows[ri]
			gf256.MulSlice(row.Coeffs, pr.Coeffs, c)
			gf256.MulSlice(row.Payload, pr.Payload, c)
			continue
		}
		if pivotCol < 0 {
			pivotCol = col
		}
	}
	if pivotCol < 0 {
		return false // linearly dependent on what we already have
	}
	inv := gf256.Inv(row.Coeffs[pivotCol])
	gf256.ScaleSlice(row.Coeffs, inv)
	gf256.ScaleSlice(row.Payload, inv)
	d.pivotOf[pivotCol] = len(d.rows)
	d.rows = append(d.rows, row)
	d.rank++
	d.backSubstitute(pivotCol)
	d.extract()
	return true
}

// backSubstitute eliminates the new pivot column from all earlier rows.
func (d *Decoder) backSubstitute(col int) {
	newRow := d.rows[d.pivotOf[col]]
	for _, ri := range d.pivotOf {
		if ri < 0 {
			continue
		}
		r := d.rows[ri]
		if &r.Coeffs[0] == &newRow.Coeffs[0] {
			continue
		}
		if c := r.Coeffs[col]; c != 0 {
			gf256.MulSlice(r.Coeffs, newRow.Coeffs, c)
			gf256.MulSlice(r.Payload, newRow.Payload, c)
		}
	}
}

// extract records any rows that have been fully reduced to a unit vector.
func (d *Decoder) extract() {
	for col, ri := range d.pivotOf {
		if ri < 0 || d.recovered[col] != nil {
			continue
		}
		r := d.rows[ri]
		unit := true
		for j, c := range r.Coeffs {
			if (j == col && c != 1) || (j != col && c != 0) {
				unit = false
				break
			}
		}
		if unit {
			payload := make([]byte, d.payloadSize)
			copy(payload, r.Payload)
			d.recovered[col] = payload
		}
	}
}

// Complete reports whether all source packets have been recovered.
func (d *Decoder) Complete() bool { return d.rank == d.n }

// Decoded returns the recovered payload of packet i, or nil if it has not
// been decoded yet.
func (d *Decoder) Decoded(i int) []byte {
	if i < 0 || i >= d.n {
		panic("rlnc: Decoded index out of range")
	}
	return d.recovered[i]
}

// DecodedCount returns how many source packets have been recovered.
func (d *Decoder) DecodedCount() int {
	n := 0
	for _, p := range d.recovered {
		if p != nil {
			n++
		}
	}
	return n
}
