package channel

import (
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func ids(vs ...PacketID) []PacketID { return vs }

func TestSlotClassification(t *testing.T) {
	c := New(3, 0)
	if class, _ := c.Step(0, nil); class != Silent {
		t.Fatalf("empty slot class %v", class)
	}
	if class, _ := c.Step(1, ids(1)); class != Good {
		t.Fatalf("single tx class %v", class)
	}
	if class, _ := c.Step(2, ids(2, 3, 4)); class != Good {
		t.Fatalf("kappa txs class %v", class)
	}
	if class, _ := c.Step(3, ids(5, 6, 7, 8)); class != Bad {
		t.Fatalf("kappa+1 txs class %v", class)
	}
}

func TestSlotClassString(t *testing.T) {
	for class, want := range map[SlotClass]string{Silent: "silent", Good: "good", Bad: "bad"} {
		if class.String() != want {
			t.Fatalf("String() = %q, want %q", class.String(), want)
		}
	}
	if SlotClass(9).String() == "" {
		t.Fatal("unknown class String empty")
	}
}

func TestSingleTransmitterImmediateEvent(t *testing.T) {
	c := New(4, 0)
	_, ev := c.Step(0, ids(7))
	if ev == nil {
		t.Fatal("lone transmitter not decoded immediately")
	}
	if ev.Size() != 1 || ev.Packets[0] != 7 || ev.WindowStart != 0 || ev.Slot != 0 {
		t.Fatalf("unexpected event %+v", ev)
	}
}

// TestGroupRepeatDecodesAfterJSlots is the paper's headline example: the
// same group of j <= kappa packets broadcasting together decodes after
// exactly j slots.
func TestGroupRepeatDecodesAfterJSlots(t *testing.T) {
	for _, j := range []int{1, 2, 3, 5, 8} {
		c := New(8, 0)
		group := make([]PacketID, j)
		for i := range group {
			group[i] = PacketID(i + 1)
		}
		for slot := 0; slot < j-1; slot++ {
			if _, ev := c.Step(int64(slot), group); ev != nil {
				t.Fatalf("j=%d: premature event at slot %d", j, slot)
			}
		}
		_, ev := c.Step(int64(j-1), group)
		if ev == nil {
			t.Fatalf("j=%d: no event after j slots", j)
		}
		if ev.Size() != j || ev.WindowStart != 0 || ev.Slot != int64(j-1) {
			t.Fatalf("j=%d: unexpected event %+v", j, ev)
		}
	}
}

// TestStaircase is the paper's second example: (a,b,c) in slot 1, (b,c)
// in slot 2, (c) in slot 3 yields a single decoding event of size 3 at
// slot 3.
func TestStaircase(t *testing.T) {
	c := New(3, 0)
	if _, ev := c.Step(1, ids(1, 2, 3)); ev != nil {
		t.Fatalf("event too early: %+v", ev)
	}
	if _, ev := c.Step(2, ids(2, 3)); ev != nil {
		t.Fatalf("event too early: %+v", ev)
	}
	_, ev := c.Step(3, ids(3))
	if ev == nil {
		t.Fatal("staircase produced no event")
	}
	if ev.Size() != 3 || ev.WindowStart != 1 {
		t.Fatalf("unexpected event %+v", ev)
	}
}

// TestLostInformation is the paper's disjointness example: a,b broadcast
// in slots 1 and 3; c alone in slot 2.  The event at slot 2 delivers only
// c, and the slot-1 information is lost, so slot 3 does not decode a,b.
func TestLostInformation(t *testing.T) {
	c := New(3, 0)
	if _, ev := c.Step(1, ids(1, 2)); ev != nil {
		t.Fatalf("unexpected event at slot 1: %+v", ev)
	}
	_, ev := c.Step(2, ids(3))
	if ev == nil || ev.Size() != 1 || ev.Packets[0] != 3 {
		t.Fatalf("slot 2 should deliver only c: %+v", ev)
	}
	if _, ev := c.Step(3, ids(1, 2)); ev != nil {
		t.Fatalf("slot-1 info should be lost, got event %+v", ev)
	}
	// A second joint broadcast completes a fresh window of 2 good slots.
	_, ev = c.Step(4, ids(1, 2))
	if ev == nil || ev.Size() != 2 {
		t.Fatalf("fresh window should decode a,b: %+v", ev)
	}
	if ev.WindowStart != 3 {
		t.Fatalf("window should start at slot 3: %+v", ev)
	}
}

// TestBadSlotsIgnored: broadcasts during bad slots contribute nothing.
func TestBadSlotsIgnored(t *testing.T) {
	c := New(2, 0)
	// 3 transmitters > kappa=2: bad, ignored.
	if class, ev := c.Step(0, ids(1, 2, 3)); class != Bad || ev != nil {
		t.Fatalf("bad slot misclassified: %v %+v", class, ev)
	}
	if c.PendingGoodSlots() != 0 || c.PendingPackets() != 0 {
		t.Fatal("bad slot left tracked state")
	}
	// The pair decodes from two fresh good slots regardless.
	c.Step(1, ids(1, 2))
	_, ev := c.Step(2, ids(1, 2))
	if ev == nil || ev.Size() != 2 {
		t.Fatalf("pair not decoded after bad slot: %+v", ev)
	}
}

// TestBadSlotInsideWindow: a bad slot in the middle of a window does not
// break the window, it just contributes no good slot.
func TestBadSlotInsideWindow(t *testing.T) {
	c := New(2, 0)
	c.Step(0, ids(1, 2))          // good
	c.Step(1, ids(5, 6, 7))       // bad, ignored
	_, ev := c.Step(2, ids(1, 2)) // good: window [0,2] has 2 good slots, 2 packets
	if ev == nil || ev.Size() != 2 || ev.WindowStart != 0 {
		t.Fatalf("window across bad slot failed: %+v", ev)
	}
}

// TestSilentSlotInsideWindow: silence likewise leaves the window intact.
func TestSilentSlotInsideWindow(t *testing.T) {
	c := New(2, 0)
	c.Step(0, ids(1, 2))
	c.Step(1, nil)
	_, ev := c.Step(2, ids(1, 2))
	if ev == nil || ev.Size() != 2 || ev.WindowStart != 0 {
		t.Fatalf("window across silent slot failed: %+v", ev)
	}
}

// TestEarliestStartWins: when several windows are valid at the same slot,
// the earliest start delivers the superset.
func TestEarliestStartWins(t *testing.T) {
	c := New(4, 0)
	c.Step(0, ids(1, 2))       // 2 packets, 1 good slot: not yet
	_, ev := c.Step(1, ids(3)) // windows: [0,1] j=3 g=2 invalid; [1,1] j=1 g=1 valid
	if ev == nil || ev.Size() != 1 || ev.Packets[0] != 3 {
		t.Fatalf("expected lone c delivery: %+v", ev)
	}
	c2 := New(4, 0)
	c2.Step(0, ids(1, 2))
	c2.Step(1, ids(3))
	_ = c2 // same state as c after reset — now build a case with two valid windows:
	c3 := New(4, 0)
	c3.Step(0, ids(1))
	// [0,0] is valid immediately (j=1,g=1), so it fires; earliest-start
	// preference matters only at a single slot.  Construct: slot0 {1,2},
	// slot1 {1,2}: [0,1] j=2 g=2 valid, [1,1] j=2 g=1 invalid.
	c4 := New(4, 0)
	c4.Step(0, ids(1, 2))
	_, ev4 := c4.Step(1, ids(1, 2))
	if ev4 == nil || ev4.Size() != 2 || ev4.WindowStart != 0 {
		t.Fatalf("nested window choice wrong: %+v", ev4)
	}
}

// TestRebroadcastCountsOnce: a packet broadcasting in several good slots
// of a window counts once.
func TestRebroadcastCountsOnce(t *testing.T) {
	c := New(4, 0)
	c.Step(0, ids(1, 2))
	c.Step(1, ids(1, 3))
	// window [0,2]: packets {1,2,3}, good slots 3 -> fires
	_, ev := c.Step(2, ids(1))
	if ev == nil {
		t.Fatal("no event")
	}
	if ev.Size() != 3 || ev.WindowStart != 0 {
		t.Fatalf("unexpected event %+v", ev)
	}
}

func TestMaxWindowPruning(t *testing.T) {
	c := New(4, 2)       // windows of at most 2 slots
	c.Step(0, ids(1, 2)) // will be pruned before slot 2
	c.Step(1, ids(3, 4)) // 2 good slots now, 4 packets: no event
	// At slot 2, entry 0 is out of the cap: only slot-1 info remains.
	// Window [1,2]: packets {3,4,5,...}? slot 2 tx {3,4}: distinct {3,4}, g=2: valid.
	_, ev := c.Step(2, ids(3, 4))
	if ev == nil || ev.Size() != 2 || ev.WindowStart != 1 {
		t.Fatalf("pruned window decode wrong: %+v", ev)
	}
	st := c.Stats()
	if st.PrunedPackets != 2 {
		t.Fatalf("PrunedPackets = %d, want 2", st.PrunedPackets)
	}
}

func TestDuplicateTransmitterPanics(t *testing.T) {
	c := New(4, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate transmitter did not panic")
		}
	}()
	c.Step(0, ids(1, 1))
}

func TestDuplicateInBadSlotPanics(t *testing.T) {
	c := New(1, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate transmitter in bad slot did not panic")
		}
	}()
	c.Step(0, ids(1, 1, 2))
}

func TestNewValidation(t *testing.T) {
	for name, f := range map[string]func(){
		"kappa 0":    func() { New(0, 0) },
		"neg window": func() { New(2, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestStatsAccumulate(t *testing.T) {
	c := New(2, 0)
	c.Step(0, nil)
	c.Step(1, ids(1, 2, 3))
	c.Step(2, ids(9))
	st := c.Stats()
	if st.SilentSlots != 1 || st.BadSlots != 1 || st.GoodSlots != 1 {
		t.Fatalf("stats %+v", st)
	}
	if st.Events != 1 || st.Delivered != 1 {
		t.Fatalf("stats %+v", st)
	}
}

// TestEquivalenceWithReference drives the optimized detector and the
// brute-force Definition 1 reference with identical random schedules and
// requires bit-identical behaviour.
func TestEquivalenceWithReference(t *testing.T) {
	r := rng.New(2024)
	for trial := 0; trial < 200; trial++ {
		kappa := 1 + r.Intn(6)
		maxWindow := 0
		if r.Bernoulli(0.5) {
			maxWindow = 1 + r.Intn(8)
		}
		numPackets := 1 + r.Intn(10)
		fast := New(kappa, maxWindow)
		ref := NewReference(kappa, maxWindow)
		for slot := int64(0); slot < 60; slot++ {
			var txs []PacketID
			for p := 0; p < numPackets; p++ {
				if r.Bernoulli(0.35) {
					txs = append(txs, PacketID(p))
				}
			}
			fc, fe := fast.Step(slot, txs)
			rc, re := ref.Step(slot, txs)
			if fc != rc {
				t.Fatalf("trial %d slot %d: class %v vs ref %v", trial, slot, fc, rc)
			}
			if (fe == nil) != (re == nil) {
				t.Fatalf("trial %d slot %d (kappa=%d win=%d): event %+v vs ref %+v",
					trial, slot, kappa, maxWindow, fe, re)
			}
			if fe != nil {
				if fe.Slot != re.Slot || fe.WindowStart != re.WindowStart {
					t.Fatalf("trial %d slot %d: window (%d,%d) vs ref (%d,%d)",
						trial, slot, fe.WindowStart, fe.Slot, re.WindowStart, re.Slot)
				}
				if len(fe.Packets) != len(re.Packets) {
					t.Fatalf("trial %d slot %d: delivered %v vs ref %v", trial, slot, fe.Packets, re.Packets)
				}
				for i := range fe.Packets {
					if fe.Packets[i] != re.Packets[i] {
						t.Fatalf("trial %d slot %d: delivered %v vs ref %v", trial, slot, fe.Packets, re.Packets)
					}
				}
			}
		}
	}
}

// TestEventSizeNeverExceedsGoodSlots checks the information-theoretic
// constraint end to end on random schedules.
func TestEventSizeNeverExceedsGoodSlots(t *testing.T) {
	r := rng.New(77)
	c := New(4, 0)
	goodSinceEvent := 0
	for slot := int64(0); slot < 5000; slot++ {
		var txs []PacketID
		for p := 0; p < 8; p++ {
			if r.Bernoulli(0.3) {
				txs = append(txs, PacketID(p))
			}
		}
		class, ev := c.Step(slot, txs)
		if class == Good {
			goodSinceEvent++
		}
		if ev != nil {
			if ev.Size() > goodSinceEvent {
				t.Fatalf("slot %d: event size %d > %d good slots since last event",
					slot, ev.Size(), goodSinceEvent)
			}
			goodSinceEvent = 0
		}
	}
}

func BenchmarkStepGroupOf16(b *testing.B) {
	c := New(64, 256)
	group := make([]PacketID, 16)
	for i := range group {
		group[i] = PacketID(i)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, ev := c.Step(int64(i), group); ev != nil {
			for j := range group {
				group[j] += 16 // fresh packets after each delivery
			}
		}
	}
}

// TestQuickProperties uses testing/quick to fuzz schedules and assert
// model invariants that must hold for any transmission pattern:
// delivered packets must have transmitted in a good slot of the window,
// event sizes never exceed the good slots since the previous event, and
// windows never overlap.
func TestQuickProperties(t *testing.T) {
	f := func(seed uint64, kappaRaw, packetsRaw uint8) bool {
		r := rng.New(seed)
		kappa := 1 + int(kappaRaw%8)
		numPackets := 1 + int(packetsRaw%12)
		c := New(kappa, 0)
		goodSince := 0
		lastEventEnd := int64(-1)
		transmittedSince := make(map[PacketID]bool)
		for slot := int64(0); slot < 120; slot++ {
			var txs []PacketID
			for p := 0; p < numPackets; p++ {
				if r.Bernoulli(0.3) {
					txs = append(txs, PacketID(p))
				}
			}
			class, ev := c.Step(slot, txs)
			if class == Good {
				goodSince++
				for _, id := range txs {
					transmittedSince[id] = true
				}
			}
			if ev != nil {
				if ev.Size() == 0 || ev.Size() > goodSince {
					return false // capacity violated
				}
				if ev.WindowStart <= lastEventEnd {
					return false // overlapping windows
				}
				if ev.Slot != slot {
					return false
				}
				for _, id := range ev.Packets {
					if !transmittedSince[id] {
						return false // delivered a silent packet
					}
				}
				lastEventEnd = ev.Slot
				goodSince = 0
				transmittedSince = make(map[PacketID]bool)
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestSameIDs(t *testing.T) {
	cases := []struct {
		a, b []PacketID
		want bool
	}{
		{nil, nil, true},
		{ids(1), nil, false},
		{ids(1, 2), ids(1, 2), true},
		{ids(1, 2), ids(2, 1), false},
		{ids(1, 2, 3), ids(1, 2), false},
	}
	for _, c := range cases {
		if got := sameIDs(c.a, c.b); got != c.want {
			t.Errorf("sameIDs(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestPrevTxsCacheHitAndMiss(t *testing.T) {
	// Epoch-style traffic: the same valid set repeats (hit path), then a
	// different set arrives (miss path) and must be re-validated.
	c := New(2, 0)
	group := ids(1, 2, 3) // bad slot for kappa=2, but validated each step
	c.Step(0, group)
	if !sameIDs(c.prevTxs, group) {
		t.Fatalf("cache not primed: %v", c.prevTxs)
	}
	c.Step(1, group) // hit: identical consecutive list
	c.Step(2, group)
	st := c.Stats()
	if st.BadSlots != 3 {
		t.Fatalf("bad slots %d, want 3", st.BadSlots)
	}
	// Miss with a duplicate must still panic, even at the same length.
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("duplicate after cache hits did not panic")
			}
		}()
		c.Step(3, ids(4, 5, 4))
	}()
}

func TestPrevTxsCacheNotPoisonedByPanic(t *testing.T) {
	// A list that failed validation must not enter the cache: replaying
	// the identical invalid list after recovering has to panic again.
	c := New(2, 0)
	bad := ids(7, 8, 7)
	for round := 0; round < 2; round++ {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("round %d: duplicate did not panic", round)
				}
			}()
			c.Step(int64(round), bad)
		}()
	}
}

func TestPrevTxsCacheLargeSlot(t *testing.T) {
	// Slots above the quadratic-scan threshold use the generation-stamped
	// map; both the repeat (hit) and the duplicate (miss) paths must work.
	c := New(2, 0)
	large := make([]PacketID, 40)
	for i := range large {
		large[i] = PacketID(i)
	}
	c.Step(0, large)
	c.Step(1, large) // hit path at len > 32
	if st := c.Stats(); st.BadSlots != 2 {
		t.Fatalf("bad slots %d, want 2", st.BadSlots)
	}
	large[39] = large[0] // now a duplicate
	defer func() {
		if recover() == nil {
			t.Fatal("large duplicate did not panic")
		}
	}()
	c.Step(2, large)
}

func TestAddSilentAccounting(t *testing.T) {
	// AddSilent must bump only the silent counter and leave the detector
	// state untouched: a window in progress still decodes afterwards.
	c := New(4, 0)
	c.Step(0, ids(1, 2))
	before := c.PendingGoodSlots()
	c.AddSilent(1000)
	if c.PendingGoodSlots() != before {
		t.Fatal("AddSilent disturbed detector state")
	}
	st := c.Stats()
	if st.SilentSlots != 1000 || st.GoodSlots != 1 || st.BadSlots != 0 || st.Events != 0 {
		t.Fatalf("AddSilent accounting wrong: %+v", st)
	}
	_, ev := c.Step(1001, ids(1, 2))
	if ev == nil || ev.Size() != 2 {
		t.Fatalf("window did not survive AddSilent: %+v", ev)
	}
	c.AddSilent(0) // zero is a no-op, not an error
	if c.Stats().SilentSlots != 1000 {
		t.Fatalf("silent slots %d, want 1000", c.Stats().SilentSlots)
	}
}

func TestAddSilentNegativePanics(t *testing.T) {
	c := New(1, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("negative AddSilent did not panic")
		}
	}()
	c.AddSilent(-1)
}
