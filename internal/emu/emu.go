// Package emu is the slot-synchronized real-network emulation engine:
// it runs the same contention-resolution protocols the simulator runs,
// but with every station a separate goroutine (or OS process) speaking
// a small framed wire protocol to a coordinator over a pluggable
// Transport — in-proc pipes for swarm mode, reliable UDP with
// tru-style send/receive queues and retransmit-on-timeout for real
// networking.
//
// # Replica design
//
// Every station holds a full replica of the protocol, seeded
// identically, so all replicas march through the same state machine in
// lockstep.  Station i owns the packets whose ID satisfies
// id mod stations == i and reports only those transmitters; the
// coordinator concatenates the reports (channel media are
// transmitter-order-insensitive), adjudicates the slot on the very
// medium.Medium the simulator uses, and broadcasts the resulting
// feedback, which every replica observes identically.  Stations close
// each slot by reporting their replica's backlog (cross-checked for
// divergence) and next wake-up, which the coordinator feeds to the
// simulator's own fast-forward.
//
// Because the coordinator drives sim.Loop — the extracted per-slot
// adjudication core of sim.Run — a run over a lossless transport
// produces a byte-identical *sim.Result to the simulator on the same
// configuration.  That equivalence is the correctness gate (tested in
// this package and in CI); a lossy transport (Fault) is then a new
// robustness regime, not a new code path.
//
// # Slot barrier
//
// Each slot costs two round trips: Begin (slot number + injection
// batch) answered by Decide (owned transmitters), then Feedback
// (silence/collision/decoding event) answered by Report (backlog +
// next wake).  The coordinator never proceeds past the barrier until
// every station has answered or its timeout expires — a dead station
// fails the run loudly with a per-station error, never a hang.
package emu

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/adversary"
	"repro/internal/arrival"
	"repro/internal/channel"
	"repro/internal/medium"
	"repro/internal/protocol"
	"repro/internal/rng"
	"repro/internal/sim"

	// Link every protocol-implementing package so the registry is
	// complete for name validation and station replica construction.
	_ "repro/internal/baseline"
	_ "repro/internal/core"
	_ "repro/internal/nocd"
)

// protoSeedSalt decorrelates the protocol replicas' shared rng stream
// from the engine stream (arrivals, jamming, reservoir), mirroring the
// sweep harness's convention.
const protoSeedSalt = 0x70726f746f636f6c // "protocol"

const (
	defaultSlotTimeout    = 10 * time.Second
	defaultStationTimeout = 2 * time.Minute
	defaultAlohaP         = 0.001
	defaultBurstWindow    = 16384
	// doneDrainTimeout bounds how long Run waits for the final Done
	// frames to be acknowledged before tearing links down.
	doneDrainTimeout = 2 * time.Second
)

// Config parametrizes one emulation run.  The scenario fields mirror
// the simulator/sweep axes; the emulation-only fields select the
// station topology and transport.
type Config struct {
	// Protocol is the registry axis name ("dba", "beb", ...).
	Protocol string
	// Medium is a channel-model descriptor — coded[:K[/W]],
	// classical[:none|binary|ternary], or capture[:K] (see
	// medium.ParseSpec).  Empty selects coded.
	Medium string
	// Kappa is the decoding threshold when the descriptor does not embed
	// one.
	Kappa int
	// MaxWindow caps decoding-window length (0 = default 4κ).
	MaxWindow int

	// Arrival selects the arrival process: batch, bernoulli, poisson,
	// even, or burst.  Rate is its uniform intensity parameter; BatchN
	// overrides the batch size (0 = Rate×Horizon); BurstWindow sets the
	// burst window (0 = 16384).
	Arrival     string
	Rate        float64
	BatchN      int
	BurstWindow int
	// AlohaP is slotted ALOHA's transmission probability (0 = 0.001).
	AlohaP float64
	// Adversary optionally disrupts the run ("none", "random:RATE", ...;
	// see adversary.Parse).
	Adversary string

	// Horizon, Drain, DrainLimit, Seed, LatencySamples, and SeriesCap
	// have sim.Config semantics.
	Horizon        int64
	Drain          bool
	DrainLimit     int64
	Seed           uint64
	LatencySamples int
	SeriesCap      int

	// Stations is the number of stations packets are partitioned over
	// (≥ 1).
	Stations int
	// Transport selects swarm mode: "inproc" (default) or "udp"
	// (loopback).  Multi-process runs wire their own transports through
	// Coordinate and RunStation instead.
	Transport string
	// Fault injects datagram faults on UDP links (ignored by inproc).
	Fault Fault
	// SlotTimeout bounds how long the coordinator waits at each slot
	// barrier for one station's answer (0 = 10s).
	SlotTimeout time.Duration
}

// buildInfo is what build derives beyond the sim.Config: the station
// wire parameters.
type buildInfo struct {
	protoName string
	kappa     int
	alohaP    float64
	protoSeed uint64
}

// build validates the configuration and assembles the engine config
// plus station parameters.  Media and adversaries are stateful, so
// every call constructs fresh instances — call once per run.
func (c Config) build() (sim.Config, buildInfo, arrival.Process, error) {
	var zero sim.Config
	if c.Stations < 1 {
		return zero, buildInfo{}, nil, fmt.Errorf("emu: Stations must be at least 1 (got %d)", c.Stations)
	}
	ms, err := medium.ParseSpec(c.Medium)
	if err != nil {
		return zero, buildInfo{}, nil, err
	}
	info, ok := protocol.Lookup(c.Protocol)
	if !ok {
		return zero, buildInfo{}, nil, fmt.Errorf("emu: unknown protocol %q (want one of %s)",
			c.Protocol, strings.Join(protocol.Names(), ", "))
	}
	if info.CodedOnly && ms.Model != "coded" {
		return zero, buildInfo{}, nil, fmt.Errorf("emu: protocol %q needs the coded channel, not %q", c.Protocol, ms.String())
	}
	if info.NoCDOnly && !(ms.Model == "classical" && ms.CD == medium.CDNone) {
		return zero, buildInfo{}, nil, fmt.Errorf("emu: protocol %q is a no-collision-detection protocol; pair it with classical:none, not %q", c.Protocol, ms.String())
	}
	kappa := c.Kappa
	var med medium.Medium
	if ms != (medium.Spec{Model: "coded"}) {
		med, err = ms.Build(kappa, c.MaxWindow)
		if err != nil {
			return zero, buildInfo{}, nil, err
		}
		kappa = med.Kappa()
	} else if kappa < 1 {
		return zero, buildInfo{}, nil, fmt.Errorf("emu: Kappa must be at least 1 (got %d)", kappa)
	}
	if c.Horizon < 0 {
		return zero, buildInfo{}, nil, fmt.Errorf("emu: negative horizon %d", c.Horizon)
	}
	arr, err := c.buildArrival()
	if err != nil {
		return zero, buildInfo{}, nil, err
	}
	adv, err := adversary.Parse(c.Adversary)
	if err != nil {
		return zero, buildInfo{}, nil, err
	}
	alohaP := c.AlohaP
	if alohaP == 0 {
		alohaP = defaultAlohaP
	}
	cfg := sim.Config{
		Kappa:          kappa,
		MaxWindow:      c.MaxWindow,
		Horizon:        c.Horizon,
		Drain:          c.Drain,
		DrainLimit:     c.DrainLimit,
		Seed:           c.Seed,
		SeriesCap:      c.SeriesCap,
		LatencySamples: c.LatencySamples,
		Adversary:      adv,
		Medium:         med,
	}
	bi := buildInfo{
		protoName: c.Protocol,
		kappa:     kappa,
		alohaP:    alohaP,
		protoSeed: c.Seed ^ protoSeedSalt,
	}
	return cfg, bi, arr, nil
}

// buildArrival maps the uniform rate axis onto the arrival kinds,
// mirroring the sweep harness.
func (c Config) buildArrival() (arrival.Process, error) {
	switch c.Arrival {
	case "batch", "":
		n := c.BatchN
		if n == 0 {
			n = int(c.Rate * float64(c.Horizon))
			if n < 1 {
				n = 1
			}
		}
		return &arrival.Batch{At: 0, N: n}, nil
	case "bernoulli":
		return &arrival.Bernoulli{Rate: c.Rate}, nil
	case "poisson":
		return &arrival.Poisson{Lambda: c.Rate}, nil
	case "even":
		return arrival.NewEvenPaced(c.Rate), nil
	case "burst":
		w := c.BurstWindow
		if w == 0 {
			w = defaultBurstWindow
		}
		per := int(c.Rate * float64(w))
		if per < 1 {
			per = 1
		}
		return &arrival.WindowBurst{Window: int64(w), PerWindow: per}, nil
	}
	return nil, fmt.Errorf("emu: unknown arrival %q (want batch, bernoulli, poisson, even, or burst)", c.Arrival)
}

// wireConfig is the JSON blob the coordinator sends each station in
// answer to its Hello: everything a replica needs.  Arrivals, medium,
// and adversary stay coordinator-side — stations only ever see
// injection batches and feedback.
type wireConfig struct {
	Protocol  string  `json:"protocol"`
	Kappa     int     `json:"kappa"`
	AlohaP    float64 `json:"aloha_p"`
	ProtoSeed uint64  `json:"proto_seed"`
	Stations  int     `json:"stations"`
	Index     int     `json:"index"`
}

// StationStats is one station link's transport counters as seen from
// the coordinator.
type StationStats struct {
	Index int
	Conn  ConnStats
}

// Result is one emulation run's outcome: the engine Result — byte-
// identical to the simulator's over a lossless transport — plus the
// per-station transport statistics.
type Result struct {
	Sim      *sim.Result
	Stations []StationStats
}

// SimReference runs the plain simulator on the emulation configuration
// — the reference the lossless gate compares against.
func SimReference(cfg Config) (*sim.Result, error) {
	simCfg, bi, arr, err := cfg.build()
	if err != nil {
		return nil, err
	}
	proto := protocol.Build(bi.protoName, protocol.Params{
		Kappa:  bi.kappa,
		Rand:   rng.New(bi.protoSeed),
		AlohaP: bi.alohaP,
	})
	return sim.Run(simCfg, proto, arr), nil
}

// Run executes one swarm-mode emulation: cfg.Stations station
// goroutines over in-proc pipes (Transport "inproc", the default) or
// loopback UDP ("udp"), coordinated in this process.
func Run(ctx context.Context, cfg Config) (*Result, error) {
	if _, _, _, err := cfg.build(); err != nil {
		return nil, err
	}
	stationTimeout := cfg.SlotTimeout
	if stationTimeout <= 0 {
		stationTimeout = defaultStationTimeout
	} else if stationTimeout < defaultStationTimeout {
		// Stations must outwait the coordinator so barrier failures are
		// adjudicated (and reported) coordinator-side.
		stationTimeout = 2 * stationTimeout
	}

	links := make([]Transport, cfg.Stations)
	var wg sync.WaitGroup
	stationErrs := make([]error, cfg.Stations)
	runStation := func(i int, t Transport) {
		defer wg.Done()
		defer t.Close()
		stationErrs[i] = RunStation(t, stationTimeout)
	}

	switch cfg.Transport {
	case "", "inproc":
		for i := range links {
			a, b := NewPipe()
			links[i] = a
			wg.Add(1)
			go runStation(i, b)
		}
	case "udp":
		ln, err := ListenUDP("127.0.0.1:0", cfg.Fault)
		if err != nil {
			return nil, err
		}
		defer ln.Close()
		addr := ln.Addr()
		for i := range links {
			fault := cfg.Fault
			if fault.active() {
				// Decorrelate each station's outbound fault stream.
				fault.Seed = cfg.Fault.Seed ^ (0xbf58476d1ce4e5b9 * uint64(i+1))
			}
			t, err := DialUDP(addr, fault)
			if err != nil {
				return nil, err
			}
			wg.Add(1)
			go runStation(i, t)
		}
		for i := range links {
			t, err := ln.Accept(stationTimeout)
			if err != nil {
				return nil, fmt.Errorf("emu: accepting station %d/%d: %w", i+1, cfg.Stations, err)
			}
			links[i] = t
		}
	default:
		return nil, fmt.Errorf("emu: unknown transport %q (want inproc or udp)", cfg.Transport)
	}

	res, coordErr := Coordinate(ctx, cfg, links)
	stations := make([]StationStats, len(links))
	for i, t := range links {
		if coordErr == nil {
			drainAcks(t, doneDrainTimeout)
		}
		stations[i] = StationStats{Index: i, Conn: t.Stats()}
		t.Close()
	}
	wg.Wait()
	if coordErr != nil {
		return nil, coordErr
	}
	for i, err := range stationErrs {
		if err != nil && !errors.Is(err, ErrClosed) {
			return nil, fmt.Errorf("emu: station %d: %w", i, err)
		}
	}
	return &Result{Sim: res, Stations: stations}, nil
}

// drainAcks waits until the link's send queue empties (every frame
// acknowledged) or the timeout passes — so the final Done is not lost
// to an immediate Close on a lossy link.
func drainAcks(t Transport, timeout time.Duration) {
	deadline := time.Now().Add(timeout)
	for t.Stats().SendQueue > 0 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
}

// Coordinate drives one emulation run over already-established station
// links (links[i] becomes station i).  It owns the handshake, the
// per-slot barrier, adjudication via sim.Loop, and teardown frames; it
// does not close the links.
func Coordinate(ctx context.Context, cfg Config, links []Transport) (*sim.Result, error) {
	simCfg, bi, arr, err := cfg.build()
	if err != nil {
		return nil, err
	}
	if len(links) != cfg.Stations {
		return nil, fmt.Errorf("emu: %d links for %d stations", len(links), cfg.Stations)
	}
	timeout := cfg.SlotTimeout
	if timeout <= 0 {
		timeout = defaultSlotTimeout
	}

	// The Result labels the protocol by its Name(), which may embellish
	// the axis name; ask a scratch instance.
	scratch := protocol.Build(bi.protoName, protocol.Params{Kappa: bi.kappa, Rand: rng.New(0), AlohaP: bi.alohaP})
	_, isWaker := scratch.(protocol.Waker)

	abort := func(err error) error {
		msg := []byte(err.Error())
		for _, t := range links {
			_ = t.Send(&Frame{Type: FrameError, Blob: msg})
		}
		return err
	}

	// Handshake: every station says Hello, and is told who it is.
	for i, t := range links {
		f, err := t.Recv(timeout)
		if err != nil {
			return nil, abort(fmt.Errorf("emu: station %d: awaiting hello: %w", i, err))
		}
		if f.Type == FrameError {
			return nil, fmt.Errorf("emu: station %d: %s", i, f.Blob)
		}
		if f.Type != FrameHello {
			return nil, abort(fmt.Errorf("emu: station %d: expected hello, got %s", i, f.Type))
		}
		blob, err := json.Marshal(wireConfig{
			Protocol:  bi.protoName,
			Kappa:     bi.kappa,
			AlohaP:    bi.alohaP,
			ProtoSeed: bi.protoSeed,
			Stations:  cfg.Stations,
			Index:     i,
		})
		if err != nil {
			return nil, abort(err)
		}
		if err := t.Send(&Frame{Type: FrameConfig, Blob: blob}); err != nil {
			return nil, abort(fmt.Errorf("emu: station %d: sending config: %w", i, err))
		}
	}

	l := sim.NewLoop(simCfg, scratch.Name(), arr)
	m := l.Medium()
	pending := 0
	var txs []channel.PacketID

	// collect gathers one answer frame of the wanted type per station,
	// in station order, failing loudly (with the offending station) on
	// timeout, mismatch, or station-reported error.
	collect := func(slot int64, want FrameType, visit func(i int, f *Frame) error) error {
		for i, t := range links {
			f, err := t.Recv(timeout)
			if err != nil {
				return fmt.Errorf("emu: station %d: awaiting %s for slot %d: %w", i, want, slot, err)
			}
			if f.Type == FrameError {
				return fmt.Errorf("emu: station %d: %s", i, f.Blob)
			}
			if f.Type != want || f.Slot != slot {
				return fmt.Errorf("emu: station %d: expected %s for slot %d, got %s for slot %d",
					i, want, slot, f.Type, f.Slot)
			}
			if err := visit(i, f); err != nil {
				return err
			}
		}
		return nil
	}

	for l.Running(pending) {
		if err := ctx.Err(); err != nil {
			return nil, abort(err)
		}
		now := l.Now()

		// Slot barrier, first round trip: Begin → Decide.  Packet IDs are
		// issued sequentially, so (first, count) broadcasts the batch.
		begin := Frame{Type: FrameBegin, Slot: now}
		if ids := l.InjectNow(); len(ids) > 0 {
			begin.InjFirst = int64(ids[0])
			begin.InjN = int32(len(ids))
		}
		for i, t := range links {
			if err := t.Send(&begin); err != nil {
				return nil, abort(fmt.Errorf("emu: station %d: sending begin for slot %d: %w", i, now, err))
			}
		}
		txs = txs[:0]
		if err := collect(now, FrameDecide, func(i int, f *Frame) error {
			txs = append(txs, f.Txs...)
			return nil
		}); err != nil {
			return nil, abort(err)
		}

		// Adjudicate the slot on the medium.  Station order is irrelevant:
		// media are transmitter-order-insensitive by contract.
		_, ev := m.Step(now, txs)
		fb := l.Observe(ev)

		// Second round trip: Feedback → Report.
		fbFrame := Frame{Type: FrameFeedback, Slot: now, Silent: fb.Silent, Collision: fb.Collision}
		if fb.Event != nil {
			fbFrame.HasEvent = true
			fbFrame.EvSlot = fb.Event.Slot
			fbFrame.WindowStart = fb.Event.WindowStart
			fbFrame.Txs = fb.Event.Packets
		}
		for i, t := range links {
			if err := t.Send(&fbFrame); err != nil {
				return nil, abort(fmt.Errorf("emu: station %d: sending feedback for slot %d: %w", i, now, err))
			}
		}
		var rep Frame
		if err := collect(now, FrameReport, func(i int, f *Frame) error {
			if i == 0 {
				rep = *f
				return nil
			}
			// Replicas are deterministic; any disagreement means a replica
			// diverged (lost frame past the reliable layer, state bug) and
			// the run is invalid.
			if f.Pending != rep.Pending || f.HasWake != rep.HasWake || (f.HasWake && f.NextWake != rep.NextWake) {
				return fmt.Errorf("emu: replica divergence at slot %d: station %d reports pending=%d wake=%v/%d, station 0 reports pending=%d wake=%v/%d",
					now, i, f.Pending, f.HasWake, f.NextWake, rep.Pending, rep.HasWake, rep.NextWake)
			}
			return nil
		}); err != nil {
			return nil, abort(err)
		}
		pending = int(rep.Pending)
		l.Record(pending)

		// The coordinator never coasts (unlike sim.Run) — results are
		// bit-identical either way; coasting is purely a CPU optimization.
		// Wake fast-forward mirrors sim.Run: armed iff the protocol is a
		// Waker; Advance only consults it with a non-empty backlog, and
		// stations only compute it then, so the replicas' NextWake call
		// pattern matches the simulator's exactly.
		var wake func(int64) int64
		if isWaker && rep.HasWake {
			nw := rep.NextWake
			wake = func(int64) int64 { return nw }
		}
		if !l.Advance(pending, wake) {
			break
		}
	}

	for _, t := range links {
		_ = t.Send(&Frame{Type: FrameDone})
	}
	return l.Finish(pending), nil
}

// RunStation speaks the station side of the wire protocol over t: it
// sends Hello, builds its protocol replica from the returned Config,
// answers every slot barrier until Done or Error, and returns the
// run's outcome.  timeout bounds each Recv (0 = 2 minutes) so a dead
// coordinator fails the station loudly instead of hanging it.
func RunStation(t Transport, timeout time.Duration) error {
	if timeout <= 0 {
		timeout = defaultStationTimeout
	}
	fail := func(err error) error {
		_ = t.Send(&Frame{Type: FrameError, Blob: []byte(err.Error())})
		return err
	}
	if err := t.Send(&Frame{Type: FrameHello}); err != nil {
		return err
	}
	f, err := t.Recv(timeout)
	if err != nil {
		return fmt.Errorf("emu: awaiting config: %w", err)
	}
	if f.Type == FrameError {
		return fmt.Errorf("emu: coordinator: %s", f.Blob)
	}
	if f.Type != FrameConfig {
		return fail(fmt.Errorf("emu: expected config, got %s", f.Type))
	}
	var wc wireConfig
	if err := json.Unmarshal(f.Blob, &wc); err != nil {
		return fail(fmt.Errorf("emu: bad config: %w", err))
	}
	if wc.Stations < 1 || wc.Index < 0 || wc.Index >= wc.Stations {
		return fail(fmt.Errorf("emu: bad config: station %d of %d", wc.Index, wc.Stations))
	}
	if _, ok := protocol.Lookup(wc.Protocol); !ok {
		return fail(fmt.Errorf("emu: bad config: unknown protocol %q", wc.Protocol))
	}
	proto := protocol.Build(wc.Protocol, protocol.Params{
		Kappa:  wc.Kappa,
		Rand:   rng.New(wc.ProtoSeed),
		AlohaP: wc.AlohaP,
	})
	waker, _ := proto.(protocol.Waker)
	stations := int64(wc.Stations)
	index := int64(wc.Index)

	var buf []channel.PacketID
	var ids []channel.PacketID
	for {
		f, err := t.Recv(timeout)
		if err != nil {
			return fmt.Errorf("emu: awaiting slot frame: %w", err)
		}
		switch f.Type {
		case FrameBegin:
			if f.InjN > 0 {
				ids = ids[:0]
				for k := int32(0); k < f.InjN; k++ {
					ids = append(ids, channel.PacketID(f.InjFirst+int64(k)))
				}
				proto.Inject(f.Slot, ids)
			}
			buf = proto.Transmitters(f.Slot, buf[:0])
			// Report only the owned partition; the other replicas report
			// theirs, and the coordinator reassembles the full set.
			mine := buf[:0]
			for _, id := range buf {
				if int64(id)%stations == index {
					mine = append(mine, id)
				}
			}
			if err := t.Send(&Frame{Type: FrameDecide, Slot: f.Slot, Txs: mine}); err != nil {
				return err
			}
		case FrameFeedback:
			fb := channel.Feedback{Slot: f.Slot, Silent: f.Silent, Collision: f.Collision}
			if f.HasEvent {
				fb.Event = &channel.Event{Slot: f.EvSlot, WindowStart: f.WindowStart, Packets: f.Txs}
			}
			proto.Observe(fb)
			rep := Frame{Type: FrameReport, Slot: f.Slot, Pending: int64(proto.Pending())}
			// NextWake may lazily rewrite protocol state, so replicas call
			// it exactly when the simulator's advance would: non-empty
			// backlog on a Waker protocol.
			if rep.Pending > 0 && waker != nil {
				rep.HasWake = true
				rep.NextWake = waker.NextWake(f.Slot)
			}
			if err := t.Send(&rep); err != nil {
				return err
			}
		case FrameDone:
			return nil
		case FrameError:
			return fmt.Errorf("emu: coordinator: %s", f.Blob)
		default:
			return fail(fmt.Errorf("emu: unexpected %s frame", f.Type))
		}
	}
}
