// Adversarial: stress the Decodable Backoff Algorithm with the arrival
// patterns the paper's theorems allow — bursty, adaptive, rate-capped —
// and verify the Theorem 11 backlog bound and no-starvation in practice.
package main

import (
	"fmt"

	crn "repro"
)

func main() {
	const kappa = 64
	const w = 16384 // analysis window
	rate := 0.85    // arrivals per slot, window-averaged

	fmt.Printf("Decodable Backoff under adversarial arrivals (κ=%d, w=%d, rate=%.2f)\n\n", kappa, w, rate)
	fmt.Printf("%-28s %12s %12s %10s %12s\n", "adversary", "arrivals", "maxBacklog", "2w bound", "max latency")

	adversaries := []struct {
		name string
		mk   func() crn.Arrivals
	}{
		{"window burst (worst case)", func() crn.Arrivals {
			return crn.NewWindowBurst(w, int(rate*float64(w)))
		}},
		{"even paced (smoothest)", func() crn.Arrivals {
			return crn.NewEvenPaced(rate)
		}},
		{"poisson (stochastic)", func() crn.Arrivals {
			return crn.NewPoisson(rate)
		}},
		// An adaptive adversary that bursts right after every silent slot
		// (targeting the activation mechanism), clipped to the same
		// sliding-window budget the theorems require.
		{"adaptive disruptor (capped)", func() crn.Arrivals {
			return crn.NewCappedArrivals(disruptor(256), w, int(rate*float64(w)))
		}},
	}

	for _, adv := range adversaries {
		res := crn.Run(crn.Config{
			Kappa:   kappa,
			Horizon: 8 * w,
			Drain:   true,
			Seed:    7,
		}, crn.NewDecodableBackoff(kappa, 9), adv.mk())
		if res.Pending != 0 {
			fmt.Printf("%-28s STARVATION: %d packets undelivered\n", adv.name, res.Pending)
			continue
		}
		fmt.Printf("%-28s %12d %12d %10d %12.0f\n",
			adv.name, res.Arrivals, res.MaxBacklog, 2*w, res.Latency.Max())
	}

	fmt.Printf("\nTheorem 11: backlog ≤ 2w = %d for every adversary respecting the window rate.\n", 2*w)
	fmt.Println("Theorem 15: every packet delivered (no starvation), latency O(w·√κ·ln³w).")

	// Arrival adversaries attack the workload; channel adversaries
	// (crn.Config.Adversary) attack the medium itself.  The theorems make
	// no promise against jamming — the reactive jammer below listens for
	// near-decode feedback and vetoes the decode, stretching completion
	// far beyond what the same noise budget achieves obliviously.
	fmt.Println("\nChannel adversaries (beyond the paper's model):")
	fmt.Printf("%-16s %12s %12s %10s\n", "adversary", "delivered", "jammed", "elapsed")
	for _, desc := range []string{"none", "random:0.10", "reactive:3/64"} {
		adv, err := crn.ParseAdversary(desc)
		if err != nil {
			panic(err)
		}
		res := crn.Run(crn.Config{
			Kappa:     kappa,
			Horizon:   2 * w,
			Drain:     true,
			Seed:      13,
			Adversary: adv,
		}, crn.NewDecodableBackoff(kappa, 14), crn.NewEvenPaced(0.6))
		fmt.Printf("%-16s %12d %12d %10d\n",
			desc, res.Delivered, res.Channel.JammedSlots, res.Elapsed)
	}
}

// disruptor adapts the internal adaptive adversary through the public
// Arrivals interface: it injects a burst after every silent slot.
func disruptor(burst int) crn.Arrivals {
	return crn.NewDisruptor(burst)
}
