package rlnc

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func makePayloads(r *rng.Rand, n, size int) [][]byte {
	ps := make([][]byte, n)
	for i := range ps {
		p := make([]byte, size)
		for j := range p {
			p[j] = byte(r.Uint64())
		}
		ps[i] = p
	}
	return ps
}

func TestEncoderValidation(t *testing.T) {
	if _, err := NewEncoder(nil); err == nil {
		t.Fatal("NewEncoder(nil) did not error")
	}
	if _, err := NewEncoder([][]byte{{}}); err == nil {
		t.Fatal("empty payload did not error")
	}
	if _, err := NewEncoder([][]byte{{1, 2}, {3}}); err == nil {
		t.Fatal("mismatched payload lengths did not error")
	}
	e, err := NewEncoder([][]byte{{1, 2}, {3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if e.NumPackets() != 2 || e.PayloadSize() != 2 {
		t.Fatalf("encoder shape (%d,%d)", e.NumPackets(), e.PayloadSize())
	}
}

func TestSlotValidation(t *testing.T) {
	r := rng.New(1)
	e, _ := NewEncoder(makePayloads(r, 3, 4))
	if _, err := e.Slot([]int{5}, r); err == nil {
		t.Fatal("out-of-range transmitter did not error")
	}
	if _, err := e.Slot([]int{1, 1}, r); err == nil {
		t.Fatal("duplicate transmitter did not error")
	}
	if _, err := e.PlainSlot([]int{0, 0}); err == nil {
		t.Fatal("PlainSlot duplicate transmitter did not error")
	}
}

// TestFullGroupDecode mirrors the paper's core scenario: the same group of
// j <= kappa packets broadcasts together for j slots, and the base station
// decodes all of them (a decoding event of size j).
func TestFullGroupDecode(t *testing.T) {
	r := rng.New(42)
	for _, j := range []int{1, 2, 3, 8, 20} {
		payloads := makePayloads(r, j, 32)
		e, err := NewEncoder(payloads)
		if err != nil {
			t.Fatal(err)
		}
		d := NewDecoder(j, 32)
		group := make([]int, j)
		for i := range group {
			group[i] = i
		}
		slots := 0
		for !d.Complete() {
			s, err := e.Slot(group, r)
			if err != nil {
				t.Fatal(err)
			}
			d.Add(s)
			slots++
			if slots > j+10 {
				t.Fatalf("j=%d: not decoded after %d slots", j, slots)
			}
		}
		if slots < j {
			t.Fatalf("j=%d decoded in %d < j slots (violates capacity)", j, slots)
		}
		for i, want := range payloads {
			if got := d.Decoded(i); !bytes.Equal(got, want) {
				t.Fatalf("j=%d packet %d decoded wrong", j, i)
			}
		}
	}
}

// TestStaircaseDecode mirrors the paper's example: packets (a,b,c) all
// broadcast in slot 1, (b,c) in slot 2, and c alone in slot 3.
func TestStaircaseDecode(t *testing.T) {
	r := rng.New(7)
	payloads := makePayloads(r, 3, 16)
	e, _ := NewEncoder(payloads)
	d := NewDecoder(3, 16)
	for _, txs := range [][]int{{0, 1, 2}, {1, 2}, {2}} {
		s, err := e.Slot(txs, r)
		if err != nil {
			t.Fatal(err)
		}
		if !d.Add(s) {
			t.Fatalf("staircase slot %v was not innovative", txs)
		}
	}
	if !d.Complete() {
		t.Fatal("staircase not fully decoded after 3 slots")
	}
	for i, want := range payloads {
		if !bytes.Equal(d.Decoded(i), want) {
			t.Fatalf("packet %d decoded wrong", i)
		}
	}
}

// TestPlainSlotStaircase checks the coefficient-free variant: distinct
// column vectors are linearly independent over GF(2^8) when they form a
// staircase, so superposition alone suffices.
func TestPlainSlotStaircase(t *testing.T) {
	r := rng.New(9)
	payloads := makePayloads(r, 3, 8)
	e, _ := NewEncoder(payloads)
	d := NewDecoder(3, 8)
	for _, txs := range [][]int{{0, 1, 2}, {1, 2}, {2}} {
		s, err := e.PlainSlot(txs)
		if err != nil {
			t.Fatal(err)
		}
		d.Add(s)
	}
	if !d.Complete() {
		t.Fatal("plain staircase not decoded")
	}
	for i, want := range payloads {
		if !bytes.Equal(d.Decoded(i), want) {
			t.Fatalf("packet %d decoded wrong", i)
		}
	}
}

// TestPlainSlotRepeatNotInnovative: with coefficient 1 and the same group
// every slot, the second slot is a duplicate equation — showing why the
// random-coefficient variant is needed for repeated groups.
func TestPlainSlotRepeatNotInnovative(t *testing.T) {
	r := rng.New(11)
	e, _ := NewEncoder(makePayloads(r, 2, 8))
	d := NewDecoder(2, 8)
	s1, _ := e.PlainSlot([]int{0, 1})
	s2, _ := e.PlainSlot([]int{0, 1})
	if !d.Add(s1) {
		t.Fatal("first slot should be innovative")
	}
	if d.Add(s2) {
		t.Fatal("identical plain slot should not be innovative")
	}
}

func TestPartialRecovery(t *testing.T) {
	r := rng.New(13)
	payloads := makePayloads(r, 3, 8)
	e, _ := NewEncoder(payloads)
	d := NewDecoder(3, 8)
	// Only packet 2 broadcasts: it alone should be recovered.
	s, _ := e.Slot([]int{2}, r)
	d.Add(s)
	if d.Complete() {
		t.Fatal("decoder claims completeness with rank 1")
	}
	if d.DecodedCount() != 1 {
		t.Fatalf("DecodedCount = %d, want 1", d.DecodedCount())
	}
	if !bytes.Equal(d.Decoded(2), payloads[2]) {
		t.Fatal("lone transmitter not recovered")
	}
	if d.Decoded(0) != nil || d.Decoded(1) != nil {
		t.Fatal("silent packets spuriously recovered")
	}
}

// TestRandomScheduleDecode: property test — any schedule whose cumulative
// coefficient matrix reaches full rank decodes every payload correctly.
func TestRandomScheduleDecode(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 1 + r.Intn(10)
		payloads := makePayloads(r, n, 12)
		e, _ := NewEncoder(payloads)
		d := NewDecoder(n, 12)
		for slot := 0; slot < 6*n && !d.Complete(); slot++ {
			var txs []int
			for i := 0; i < n; i++ {
				if r.Bernoulli(0.4) {
					txs = append(txs, i)
				}
			}
			s, err := e.Slot(txs, r)
			if err != nil {
				return false
			}
			d.Add(s)
		}
		// The random schedule alone may not reach full rank (at n=1 the
		// lone packet sits out all 6 slots with probability 0.6^6 ≈ 5%,
		// which made this test flaky); the property under test is that a
		// *full-rank* schedule decodes, so top the matrix up with
		// everyone-transmits slots, each of which adds a fresh random
		// row and fails to raise the rank with probability ≤ 1/255.
		for slot := 0; slot < n+32 && !d.Complete(); slot++ {
			all := make([]int, n)
			for i := range all {
				all[i] = i
			}
			s, err := e.Slot(all, r)
			if err != nil {
				return false
			}
			d.Add(s)
		}
		if !d.Complete() {
			return false
		}
		for i, want := range payloads {
			if !bytes.Equal(d.Decoded(i), want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestRankNeverExceedsSlots asserts the information-theoretic constraint
// the model is built on: j packets need at least j slots.
func TestRankNeverExceedsSlots(t *testing.T) {
	r := rng.New(17)
	e, _ := NewEncoder(makePayloads(r, 8, 4))
	d := NewDecoder(8, 4)
	for slot := 1; slot <= 20; slot++ {
		txs := []int{0, 1, 2, 3, 4, 5, 6, 7}
		s, _ := e.Slot(txs, r)
		d.Add(s)
		if d.Rank() > slot {
			t.Fatalf("rank %d after %d slots", d.Rank(), slot)
		}
	}
}

func TestDecoderPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"zero packets":   func() { NewDecoder(0, 8) },
		"zero payload":   func() { NewDecoder(2, 0) },
		"shape mismatch": func() { NewDecoder(2, 8).Add(Symbol{Coeffs: []byte{1}, Payload: make([]byte, 8)}) },
		"decoded range":  func() { NewDecoder(2, 8).Decoded(5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func BenchmarkDecodeGroup16(b *testing.B) {
	r := rng.New(1)
	payloads := makePayloads(r, 16, 256)
	e, _ := NewEncoder(payloads)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d := NewDecoder(16, 256)
		group := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15}
		for !d.Complete() {
			s, err := e.Slot(group, r)
			if err != nil {
				b.Fatal(err)
			}
			d.Add(s)
		}
	}
}
