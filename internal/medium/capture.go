package medium

import (
	"slices"

	"repro/internal/channel"
)

// Capture is the high-SNR capture channel: a slot delivers every
// transmitted packet iff at most κ devices transmit, in the spirit of
// bounded-contention coding — the base station separates up to κ
// additively superposed codewords, but one transmission too many
// destroys the slot entirely.  It is the memoryless sibling of the
// coded channel: the same κ-ary decoding power, but no cross-slot
// decoding windows, so contention above the threshold is wasted rather
// than banked.  At κ = 1 it degenerates to the classical collision
// channel (the sweep layer skips those cells).
//
// Feedback is coded-style: devices hear truthful silence and decoding
// events, never a collision flag.  A successful slot fires one decoding
// event whose window is the slot itself and whose packets are sorted by
// ID (the Event contract); the event storage is reused across slots so
// the per-slot path stays allocation-free.
type Capture struct {
	kappa int
	stats channel.Stats
	last  channel.Feedback
	dup   dupCheck

	ev   channel.Event
	pkts []channel.PacketID // reused event storage, ≤ κ entries
	flat []channel.PacketID // sharded small-slot flatten scratch

	lastBad bool
	sdup    channel.ShardedDup
}

var (
	_ Medium   = (*Capture)(nil)
	_ Sharded  = (*Capture)(nil)
	_ Repeater = (*Capture)(nil)
)

// NewCapture returns a capture channel decoding up to kappa
// simultaneous transmissions per slot.
func NewCapture(kappa int) *Capture {
	if kappa < 1 {
		panic("medium: capture kappa must be at least 1")
	}
	return &Capture{kappa: kappa}
}

// Name implements Medium.
func (c *Capture) Name() string { return "capture" }

// Kappa implements Medium.
func (c *Capture) Kappa() int { return c.kappa }

// Step implements Medium.  Like the coded detector, it panics if txs
// contains a duplicate ID (one device cannot send two packets at once),
// on destroyed slots as much as decodable ones.
func (c *Capture) Step(now int64, txs []channel.PacketID) (channel.SlotClass, *channel.Event) {
	switch {
	case len(txs) == 0:
		c.lastBad = false
		c.stats.SilentSlots++
		c.setLast(now, channel.Silent, nil)
		return channel.Silent, nil
	case len(txs) <= c.kappa:
		c.dup.check(txs)
		return c.success(now, txs)
	default:
		c.dup.check(txs)
		return c.collide(now)
	}
}

// StepSharded implements Sharded.  Only slots above the threshold carry
// O(transmitters) work (the duplicate validation), and that runs as
// per-shard partials; decodable slots hold at most κ packets and take
// the serial path on their shard-order concatenation, so class, event,
// and any duplicate panic match Step exactly.
func (c *Capture) StepSharded(now int64, chunks [][]channel.PacketID, fan channel.FanOut) (channel.SlotClass, *channel.Event) {
	total := 0
	for _, ch := range chunks {
		total += len(ch)
	}
	if total > c.kappa {
		c.sdup.Check("medium", chunks, fan)
		return c.collide(now)
	}
	c.flat = c.flat[:0]
	for _, ch := range chunks {
		c.flat = append(c.flat, ch...)
	}
	return c.Step(now, c.flat)
}

// StepRepeat implements Repeater: a destroyed slot leaves no state
// behind, so replaying one moves a counter and the feedback.
func (c *Capture) StepRepeat(now int64) bool {
	if !c.lastBad {
		panic("medium: StepRepeat without a preceding bad slot")
	}
	c.stats.BadSlots++
	c.setLast(now, channel.Bad, nil)
	return true
}

func (c *Capture) success(now int64, txs []channel.PacketID) (channel.SlotClass, *channel.Event) {
	c.lastBad = false
	c.stats.GoodSlots++
	c.stats.Events++
	c.stats.Delivered += int64(len(txs))
	c.pkts = append(c.pkts[:0], txs...)
	slices.Sort(c.pkts)
	c.ev = channel.Event{Slot: now, WindowStart: now, Packets: c.pkts}
	c.setLast(now, channel.Good, &c.ev)
	return channel.Good, &c.ev
}

func (c *Capture) collide(now int64) (channel.SlotClass, *channel.Event) {
	c.lastBad = true
	c.stats.BadSlots++
	c.setLast(now, channel.Bad, nil)
	return channel.Bad, nil
}

// setLast records the feedback for the just-stepped slot.  Capture
// devices hear what coded devices hear: truthful silence and decoding
// events, never a collision flag.
func (c *Capture) setLast(now int64, class channel.SlotClass, ev *channel.Event) {
	c.last = channel.Feedback{
		Slot:   now,
		Silent: class == channel.Silent,
		Event:  ev,
	}
}

// Feedback implements Medium.
func (c *Capture) Feedback(fb *channel.Feedback) { *fb = c.last }

// AddSilent implements Medium.
func (c *Capture) AddSilent(n int64) {
	if n < 0 {
		panic("medium: negative silent-slot count")
	}
	c.stats.SilentSlots += n
}

// Stats implements Medium.
func (c *Capture) Stats() channel.Stats { return c.stats }

// Reset implements Medium.
func (c *Capture) Reset() {
	c.stats = channel.Stats{}
	c.last = channel.Feedback{}
	c.lastBad = false
	c.sdup.Reset()
}
