package medium

import (
	"fmt"

	"repro/internal/channel"
)

// CD selects the collision-detection feedback a classical medium gives
// its devices.  The classical contention-resolution literature treats
// these capabilities as distinct models with distinct throughput
// ceilings (Jiang–Zheng 2021; Chen–Jiang–Zheng 2021).
//
// One honest caveat about the ordering here: this harness acknowledges
// every success globally (the decoding event is how delivered packets
// leave the system), so on the κ=1 collision channel a device with
// binary carrier sensing can already determine collisions by
// elimination — busy plus no event implies collision.  CDTernary
// therefore adds no information over CDBinary for a protocol willing
// to do that inference; its Feedback.Collision flag states the
// conclusion explicitly instead of leaving it implicit.  The axis that
// changes protocol-visible information is CDNone (silence masked, so
// the elimination argument is unavailable) versus the other two.
type CD uint8

const (
	// CDNone gives devices no channel sensing at all: silence is
	// indistinguishable from collision (Feedback.Silent is always
	// false).  A transmitter still learns of its own success through the
	// decoding event, which models the acknowledgment every variant of
	// the classical model grants.
	CDNone CD = iota
	// CDBinary gives devices binary carrier sensing: they distinguish
	// idle slots from busy ones (Feedback.Silent is truthful) but cannot
	// tell a collision from a success by listening.
	CDBinary
	// CDTernary gives devices full collision detection: idle, success,
	// and collision are all distinguishable (Feedback.Collision is set
	// on collided slots).
	CDTernary
)

// String returns the mode name used in model descriptors.
func (cd CD) String() string {
	switch cd {
	case CDNone:
		return "none"
	case CDBinary:
		return "binary"
	case CDTernary:
		return "ternary"
	}
	return fmt.Sprintf("CD(%d)", uint8(cd))
}

// ParseCD decodes a collision-detection mode name.
func ParseCD(s string) (CD, error) {
	switch s {
	case "none":
		return CDNone, nil
	case "binary":
		return CDBinary, nil
	case "ternary":
		return CDTernary, nil
	}
	return 0, fmt.Errorf("medium: unknown collision-detection mode %q (want none, binary, or ternary)", s)
}

// Classical is the classical collision channel: a slot delivers its
// packet iff exactly one device transmits (κ = 1 semantics; no coding
// gain).  The collision-detection mode governs only what devices hear,
// never what is delivered.
//
// A successful slot fires a size-1 decoding event whose window is the
// slot itself, so protocols written against the coded model's feedback
// run unchanged.  The event storage is reused across slots — successes
// fire every few slots at high load, and the per-slot path must stay
// allocation-free.
type Classical struct {
	cd    CD
	stats channel.Stats
	last  channel.Feedback
	dup   dupCheck

	ev  channel.Event
	pkt [1]channel.PacketID

	lastBad bool
	sdup    channel.ShardedDup
}

var (
	_ Medium   = (*Classical)(nil)
	_ Sharded  = (*Classical)(nil)
	_ Repeater = (*Classical)(nil)
)

// NewClassical returns a classical collision channel with the given
// collision-detection feedback mode.
func NewClassical(cd CD) *Classical {
	if cd > CDTernary {
		panic("medium: invalid collision-detection mode")
	}
	return &Classical{cd: cd}
}

// Name implements Medium.
func (c *Classical) Name() string { return "classical:" + c.cd.String() }

// Kappa implements Medium: the collision channel decodes one
// transmission per slot.
func (c *Classical) Kappa() int { return 1 }

// Step implements Medium.  Like the coded detector, it panics if txs
// contains a duplicate ID (one device cannot send two packets at
// once), even though colliding identities are otherwise irrelevant.
func (c *Classical) Step(now int64, txs []channel.PacketID) (channel.SlotClass, *channel.Event) {
	switch len(txs) {
	case 0:
		c.lastBad = false
		c.stats.SilentSlots++
		c.setLast(now, channel.Silent, nil)
		return channel.Silent, nil
	case 1:
		c.lastBad = false
		return c.success(now, txs[0])
	default:
		c.dup.check(txs)
		return c.collide(now)
	}
}

// StepSharded implements Sharded: only the duplicate validation of
// collided slots is O(transmitters), and it runs as per-shard partials.
func (c *Classical) StepSharded(now int64, chunks [][]channel.PacketID, fan channel.FanOut) (channel.SlotClass, *channel.Event) {
	total := 0
	for _, ch := range chunks {
		total += len(ch)
	}
	switch total {
	case 0:
		c.lastBad = false
		c.stats.SilentSlots++
		c.setLast(now, channel.Silent, nil)
		return channel.Silent, nil
	case 1:
		c.lastBad = false
		for _, ch := range chunks {
			if len(ch) > 0 {
				return c.success(now, ch[0])
			}
		}
		panic("medium: unreachable")
	default:
		c.sdup.Check("medium", chunks, fan)
		return c.collide(now)
	}
}

// StepRepeat implements Repeater: a collided slot leaves no state
// behind, so replaying one moves a counter and the feedback.
func (c *Classical) StepRepeat(now int64) bool {
	if !c.lastBad {
		panic("medium: StepRepeat without a preceding bad slot")
	}
	c.stats.BadSlots++
	c.setLast(now, channel.Bad, nil)
	return true
}

func (c *Classical) success(now int64, id channel.PacketID) (channel.SlotClass, *channel.Event) {
	c.stats.GoodSlots++
	c.stats.Events++
	c.stats.Delivered++
	c.pkt[0] = id
	c.ev = channel.Event{Slot: now, WindowStart: now, Packets: c.pkt[:1]}
	c.setLast(now, channel.Good, &c.ev)
	return channel.Good, &c.ev
}

func (c *Classical) collide(now int64) (channel.SlotClass, *channel.Event) {
	c.lastBad = true
	c.stats.BadSlots++
	c.setLast(now, channel.Bad, nil)
	return channel.Bad, nil
}

// setLast records the feedback for the just-stepped slot, applying the
// collision-detection masking.
func (c *Classical) setLast(now int64, class channel.SlotClass, ev *channel.Event) {
	c.last = channel.Feedback{
		Slot:      now,
		Silent:    c.cd != CDNone && class == channel.Silent,
		Event:     ev,
		Collision: c.cd == CDTernary && class == channel.Bad,
	}
}

// Feedback implements Medium.
func (c *Classical) Feedback(fb *channel.Feedback) { *fb = c.last }

// MasksSilence reports whether the medium's feedback hides idle slots
// (CDNone: no channel sensing, so Silent is never set).  Adaptive
// adversaries rely on truthful silence for their gap-equals-silence
// determinism rule; sim.Run and the sweep layer reject or skip them on
// masking media.
func (c *Classical) MasksSilence() bool { return c.cd == CDNone }

// AddSilent implements Medium.
func (c *Classical) AddSilent(n int64) {
	if n < 0 {
		panic("medium: negative silent-slot count")
	}
	c.stats.SilentSlots += n
}

// Stats implements Medium.
func (c *Classical) Stats() channel.Stats { return c.stats }

// Reset implements Medium.
func (c *Classical) Reset() {
	c.stats = channel.Stats{}
	c.last = channel.Feedback{}
	c.lastBad = false
	c.sdup.Reset()
}
