// Package phy is a symbol-level model of the additive physical layer the
// paper's Section 2 describes: packets are modulated to complex symbols,
// simultaneous transmissions add, and the receiver sees the sum plus
// noise.  It implements successive interference cancellation and a
// simplified ZigZag decoder (Gollakota & Katabi, SIGCOMM 2008) — the
// systems the paper cites as evidence that modern radios can extract
// useful information from collisions.
//
// This package grounds the abstract Coded Radio Network Model: the
// decodability rule "j packets need j good slots" corresponds here to the
// fact that two collisions with different symbol offsets contain enough
// equations to recover both packets.
package phy

import (
	"errors"
	"fmt"
	"math/cmplx"

	"repro/internal/rng"
)

// Signal is a sequence of complex baseband symbols.
type Signal []complex128

// ModulateBPSK maps bits (0/1 bytes) to BPSK symbols: 1 → +1, 0 → −1.
func ModulateBPSK(bits []byte) Signal {
	s := make(Signal, len(bits))
	for i, b := range bits {
		if b != 0 {
			s[i] = 1
		} else {
			s[i] = -1
		}
	}
	return s
}

// DemodulateBPSK recovers bits from a signal transmitted with the given
// complex gain (attenuation and phase): it derotates by the gain and
// slices on the real axis.
func DemodulateBPSK(sig Signal, gain complex128) []byte {
	bits := make([]byte, len(sig))
	for i, v := range sig {
		if real(v*cmplx.Conj(gain)) >= 0 {
			bits[i] = 1
		}
	}
	return bits
}

// Tx describes one transmission: a bit string, the channel gain the
// receiver observes for this sender, and the symbol offset at which the
// transmission begins.
type Tx struct {
	Bits   []byte
	Gain   complex128
	Offset int
}

func (t Tx) end() int { return t.Offset + len(t.Bits) }

// Superpose returns the received signal when all transmissions are on the
// air simultaneously: the element-wise sum of the modulated, shifted,
// scaled signals.  The returned signal is long enough to contain every
// transmission.
func Superpose(txs []Tx) Signal {
	length := 0
	for _, tx := range txs {
		if tx.Offset < 0 {
			panic("phy: negative transmission offset")
		}
		if tx.end() > length {
			length = tx.end()
		}
	}
	y := make(Signal, length)
	for _, tx := range txs {
		mod := ModulateBPSK(tx.Bits)
		for i, sym := range mod {
			y[tx.Offset+i] += tx.Gain * sym
		}
	}
	return y
}

// AddNoise adds circularly symmetric complex Gaussian noise with standard
// deviation sigma per real dimension to the signal in place.
func AddNoise(sig Signal, sigma float64, r *rng.Rand) {
	if sigma <= 0 {
		return
	}
	for i := range sig {
		sig[i] += complex(sigma*r.NormFloat64(), sigma*r.NormFloat64())
	}
}

// cancel subtracts a known transmission (bits, gain, offset) from y.
func cancel(y Signal, bits []byte, gain complex128, offset int) {
	mod := ModulateBPSK(bits)
	for i, sym := range mod {
		if idx := offset + i; idx >= 0 && idx < len(y) {
			y[idx] -= gain * sym
		}
	}
}

// SuccessiveCancel decodes the transmissions in y one at a time in
// decreasing gain-magnitude order, subtracting each decoded signal before
// decoding the next (classic successive interference cancellation).  The
// lengths, gains, and offsets of the transmissions must be known; the
// bits are unknown and are returned in the order of the input slice.
//
// SIC only works when the gains are sufficiently separated; with equal
// gains the first decode sees interference as strong as the signal and
// bit errors cascade.  That failure mode is exactly why ZigZag-style
// decoding across two collisions is interesting; see ZigZagDecode.
func SuccessiveCancel(y Signal, txs []Tx) [][]byte {
	work := make(Signal, len(y))
	copy(work, y)
	order := make([]int, len(txs))
	for i := range order {
		order[i] = i
	}
	// Sort by descending |gain| (insertion sort; the slice is tiny).
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && cmplx.Abs(txs[order[j]].Gain) > cmplx.Abs(txs[order[j-1]].Gain); j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	decoded := make([][]byte, len(txs))
	for _, idx := range order {
		tx := txs[idx]
		segment := make(Signal, len(tx.Bits))
		copy(segment, work[tx.Offset:tx.end()])
		bits := DemodulateBPSK(segment, tx.Gain)
		decoded[idx] = bits
		cancel(work, bits, tx.Gain, tx.Offset)
	}
	return decoded
}

// Collision is one received collision of two packets (a and b) with known
// gains and a known offset of b relative to a (a starts at symbol 0).
type Collision struct {
	Y       Signal
	GainA   complex128
	GainB   complex128
	OffsetB int
}

// NewCollision synthesizes a collision of bitsA and bitsB where b starts
// offsetB symbols after a, with the given gains and noise level.
func NewCollision(bitsA, bitsB []byte, gainA, gainB complex128, offsetB int, sigma float64, r *rng.Rand) Collision {
	y := Superpose([]Tx{
		{Bits: bitsA, Gain: gainA, Offset: 0},
		{Bits: bitsB, Gain: gainB, Offset: offsetB},
	})
	AddNoise(y, sigma, r)
	return Collision{Y: y, GainA: gainA, GainB: gainB, OffsetB: offsetB}
}

// ZigZagDecode recovers both packets from two collisions of the same pair
// of packets with different offsets, using the ZigZag algorithm: the
// interference-free prefix of one collision bootstraps an alternating
// decode-and-subtract chain across the two collisions.
//
// lenA and lenB are the packet lengths in symbols.  The two collisions
// must have different offsets; otherwise the chain cannot start and an
// error is returned (this is why ZigZag retransmissions use random
// jitter).
func ZigZagDecode(c1, c2 Collision, lenA, lenB int) (bitsA, bitsB []byte, err error) {
	if c1.OffsetB == c2.OffsetB {
		return nil, nil, errors.New("phy: zigzag needs distinct collision offsets")
	}
	if c1.OffsetB < 0 || c2.OffsetB < 0 {
		return nil, nil, errors.New("phy: negative collision offset")
	}
	if len(c1.Y) < lenA || len(c2.Y) < lenA {
		return nil, nil, fmt.Errorf("phy: collision shorter than packet A")
	}
	bitsA = make([]byte, lenA)
	bitsB = make([]byte, lenB)
	knownA, knownB := 0, 0 // decoded prefix lengths

	// decodeA extends the known prefix of A using collision c: symbol t of
	// A is recoverable when B's overlapping symbol (t - offset) is either
	// absent (t < offset or beyond B) or already known.
	decodeA := func(c Collision) bool {
		progress := false
		for t := knownA; t < lenA; t++ {
			bIdx := t - c.OffsetB
			sample := c.Y[t]
			if bIdx >= 0 && bIdx < lenB {
				if bIdx >= knownB {
					break // interference not yet known
				}
				sample -= c.GainB * bpsk(bitsB[bIdx])
			}
			if real(sample*cmplx.Conj(c.GainA)) >= 0 {
				bitsA[t] = 1
			} else {
				bitsA[t] = 0
			}
			knownA = t + 1
			progress = true
		}
		return progress
	}
	decodeB := func(c Collision) bool {
		progress := false
		for t := knownB; t < lenB; t++ {
			aIdx := t + c.OffsetB
			if aIdx >= len(c.Y) {
				break
			}
			sample := c.Y[aIdx]
			if aIdx < lenA {
				if aIdx >= knownA {
					break
				}
				sample -= c.GainA * bpsk(bitsA[aIdx])
			}
			if real(sample*cmplx.Conj(c.GainB)) >= 0 {
				bitsB[t] = 1
			} else {
				bitsB[t] = 0
			}
			knownB = t + 1
			progress = true
		}
		return progress
	}

	for knownA < lenA || knownB < lenB {
		p := decodeA(c1)
		p = decodeA(c2) || p
		p = decodeB(c1) || p
		p = decodeB(c2) || p
		if !p {
			return nil, nil, errors.New("phy: zigzag chain stalled")
		}
	}
	return bitsA, bitsB, nil
}

func bpsk(bit byte) complex128 {
	if bit != 0 {
		return 1
	}
	return -1
}

// BitErrors counts positions where a and b differ.  The slices must have
// equal length.
func BitErrors(a, b []byte) int {
	if len(a) != len(b) {
		panic("phy: BitErrors length mismatch")
	}
	n := 0
	for i := range a {
		if (a[i] != 0) != (b[i] != 0) {
			n++
		}
	}
	return n
}

// BitErrorRate returns the fraction of differing positions.
func BitErrorRate(a, b []byte) float64 {
	if len(a) == 0 {
		return 0
	}
	return float64(BitErrors(a, b)) / float64(len(a))
}

// RandomBits returns n uniformly random bits as 0/1 bytes.
func RandomBits(n int, r *rng.Rand) []byte {
	bits := make([]byte, n)
	for i := range bits {
		bits[i] = byte(r.Uint64() & 1)
	}
	return bits
}
