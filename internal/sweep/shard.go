package sweep

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/sim"
)

// SchemaVersion names the engine semantics cell identities are minted
// under.  Bump it whenever a change moves simulation results for
// unchanged specs (engine semantics, seed derivation, CellSummary
// shape): every cached cell and shard artifact from the old version
// stops matching and is re-executed rather than silently merged.
const SchemaVersion = "crn-sweep/1"

// Shard selects a 1-based slice k/N of a grid's cells.  The zero value
// means "the whole grid".  Cells are dealt round-robin along the
// canonical expansion order — skip rules have already been applied by
// Expand, so the N shards are balanced to within one cell and their
// union is exactly the full grid.
type Shard struct {
	Index int `json:"index"` // 1-based shard number, 1 ≤ Index ≤ Count
	Count int `json:"count"` // total number of shards
}

// IsAll reports whether the shard selects the whole grid.
func (sh Shard) IsAll() bool { return sh == Shard{} }

// String renders the shard as the k/N form ParseShard accepts.
func (sh Shard) String() string {
	if sh.IsAll() {
		return "all"
	}
	return fmt.Sprintf("%d/%d", sh.Index, sh.Count)
}

// Validate rejects malformed shards (the zero value is valid: whole grid).
func (sh Shard) Validate() error {
	if sh.IsAll() {
		return nil
	}
	if sh.Count < 1 {
		return fmt.Errorf("sweep: shard count %d < 1", sh.Count)
	}
	if sh.Index < 1 || sh.Index > sh.Count {
		return fmt.Errorf("sweep: shard index %d outside 1..%d", sh.Index, sh.Count)
	}
	return nil
}

// ParseShard decodes a "k/N" shard descriptor with 1 ≤ k ≤ N.
func ParseShard(desc string) (Shard, error) {
	slash := strings.IndexByte(desc, '/')
	if slash < 0 {
		return Shard{}, fmt.Errorf("sweep: bad shard %q (want k/N, e.g. 2/4)", desc)
	}
	k, err1 := strconv.Atoi(desc[:slash])
	n, err2 := strconv.Atoi(desc[slash+1:])
	if err1 != nil || err2 != nil {
		return Shard{}, fmt.Errorf("sweep: bad shard %q (want k/N, e.g. 2/4)", desc)
	}
	sh := Shard{Index: k, Count: n}
	if sh.IsAll() || sh.Validate() != nil {
		return Shard{}, fmt.Errorf("sweep: bad shard %q (want k/N with 1 ≤ k ≤ N)", desc)
	}
	return sh, nil
}

// Indices returns the positions (into the canonical expansion of total
// cells) this shard owns, in ascending order.
func (sh Shard) Indices(total int) []int {
	if sh.IsAll() {
		idx := make([]int, total)
		for i := range idx {
			idx[i] = i
		}
		return idx
	}
	var idx []int
	for i := sh.Index - 1; i < total; i += sh.Count {
		idx = append(idx, i)
	}
	return idx
}

// Hash returns the spec's content identity: a hex SHA-256 of the
// schema version plus the normalized spec's JSON.  Two sweeps merge (or
// share cache records, or gate CI) only when their hashes agree.  The
// spec must already be validated (Validate normalizes the axis
// defaults); Hash validates a copy defensively.
func (s *Spec) Hash() (string, error) {
	norm := *s
	if err := norm.Validate(); err != nil {
		return "", err
	}
	data, err := json.Marshal(&norm)
	if err != nil {
		return "", fmt.Errorf("sweep: %w", err)
	}
	h := sha256.New()
	h.Write([]byte(SchemaVersion))
	h.Write([]byte{0})
	h.Write(data)
	return hex.EncodeToString(h.Sum(nil)), nil
}

// jobSeeds derives the full grid's flattened per-trial seed list —
// len(cells) × Trials seeds, assigned along canonical expansion order
// exactly as an unsharded run assigns them.  Shard and resume execution
// index into this list, which is why their artifacts are byte-identical
// to unsharded runs.
func (s *Spec) jobSeeds(cellCount int) []uint64 {
	return sim.TrialSeeds(cellCount*s.Trials, s.Seed)
}

// cellID mints the content identity of one cell: a hex SHA-256 over the
// engine schema version, the spec-normalized scenario key, every
// engine knob that shapes a cell's execution beyond its scenario
// coordinates, and the cell's derived trial seeds.  The seeds fold in
// the base seed, the trial count, and the cell's position in the grid —
// so reshaping the grid (which reseeds trials) invalidates exactly the
// cells whose seeds moved, and a schema bump invalidates everything.
//
// Spec.Workers is deliberately NOT part of the identity: the staged
// engine is bit-identical to the serial reference at every worker count
// (the Partitioned contract; regression-tested in sim and in
// TestWorkersCellIdentityNeutral), so a cached cell computed at one
// worker count is exactly the cell any other worker count would
// compute.  Folding it in would only force pointless re-execution when
// a sweep moves between machines of different widths.
func cellID(sc Scenario, spec *Spec, seeds []uint64) string {
	h := sha256.New()
	sep := []byte{0}
	h.Write([]byte(SchemaVersion))
	h.Write(sep)
	h.Write([]byte(sc.Key()))
	h.Write(sep)
	fmt.Fprintf(h, "horizon=%d drain=%t drainlimit=%d maxwindow=%d latencysamples=%d batchn=%d burstwindow=%d alohap=%g",
		spec.Horizon, !spec.NoDrain, spec.DrainLimit, spec.MaxWindow,
		spec.LatencySamples, spec.BatchN, spec.BurstWindow, spec.AlohaP)
	h.Write(sep)
	var buf [8]byte
	for _, seed := range seeds {
		binary.LittleEndian.PutUint64(buf[:], seed)
		h.Write(buf[:])
	}
	return hex.EncodeToString(h.Sum(nil))
}

// IndexedCell is one computed cell tagged with its position in the
// canonical expansion and its content identity — the unit shard
// artifacts and cache records are made of.
type IndexedCell struct {
	// Index is the cell's position in the spec's canonical expansion.
	Index int `json:"index"`
	// ID is the cell's content identity (see the cell-identity hash in
	// DESIGN.md §6.2).
	ID string `json:"id"`
	// Cell is the cell's aggregated summary.
	Cell CellSummary `json:"cell"`
}

// ShardResult is the artifact of one shard's execution: enough identity
// (schema version, spec hash, normalized spec, shard coordinates, total
// cell count) for Merge to verify that a set of shard files belongs to
// one grid and covers it exactly.
type ShardResult struct {
	SchemaVersion string        `json:"schema_version"`
	SpecHash      string        `json:"spec_hash"`
	Spec          Spec          `json:"spec"`
	Shard         Shard         `json:"shard"`
	TotalCells    int           `json:"total_cells"`
	Cells         []IndexedCell `json:"cells"`
}

// JSON renders the shard artifact as indented, deterministic JSON.
func (r *ShardResult) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// ParseShardResult decodes a shard artifact.
func ParseShardResult(data []byte) (*ShardResult, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var r ShardResult
	if err := dec.Decode(&r); err != nil {
		return nil, fmt.Errorf("sweep: bad shard artifact: %w", err)
	}
	return &r, nil
}

// Merge combines shard artifacts back into the full Grid, verifying the
// byte-equality contract's preconditions: every shard carries the
// current schema version and the same spec hash, the union of their
// cells is exactly the full expansion (no gaps, no duplicates), and
// every cell's content identity matches the one the spec derives for
// that position.  The returned Grid renders byte-identically to an
// unsharded run of the same spec.
func Merge(shards []*ShardResult) (*Grid, error) {
	if len(shards) == 0 {
		return nil, fmt.Errorf("sweep: merge of zero shards")
	}
	first := shards[0]
	if first.SchemaVersion != SchemaVersion {
		return nil, fmt.Errorf("sweep: shard %s has schema version %q, this build writes %q",
			first.Shard, first.SchemaVersion, SchemaVersion)
	}
	spec := first.Spec
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	wantHash, err := spec.Hash()
	if err != nil {
		return nil, err
	}
	if first.SpecHash != wantHash {
		return nil, fmt.Errorf("sweep: shard %s spec hash %.12s does not match its own spec (%.12s): artifact tampered or stale",
			first.Shard, first.SpecHash, wantHash)
	}
	cells := spec.Expand()
	seeds := spec.jobSeeds(len(cells))
	merged := make([]CellSummary, len(cells))
	seen := make([]bool, len(cells))
	for _, sh := range shards {
		if sh.SchemaVersion != SchemaVersion {
			return nil, fmt.Errorf("sweep: shard %s has schema version %q, this build writes %q",
				sh.Shard, sh.SchemaVersion, SchemaVersion)
		}
		if sh.SpecHash != wantHash {
			return nil, fmt.Errorf("sweep: spec hash mismatch: shard %s ran %.12s…, shard %s ran %.12s… (different specs cannot merge)",
				first.Shard, wantHash, sh.Shard, sh.SpecHash)
		}
		if sh.TotalCells != len(cells) {
			return nil, fmt.Errorf("sweep: shard %s reports %d total cells, spec expands to %d",
				sh.Shard, sh.TotalCells, len(cells))
		}
		for i := range sh.Cells {
			c := &sh.Cells[i]
			if c.Index < 0 || c.Index >= len(cells) {
				return nil, fmt.Errorf("sweep: shard %s cell index %d outside grid of %d", sh.Shard, c.Index, len(cells))
			}
			if seen[c.Index] {
				return nil, fmt.Errorf("sweep: cell %d appears in more than one shard (overlapping or duplicate shard files)", c.Index)
			}
			want := cellID(cells[c.Index], &spec, seeds[c.Index*spec.Trials:(c.Index+1)*spec.Trials])
			if c.ID != want {
				return nil, fmt.Errorf("sweep: shard %s cell %d (%s) identity %.12s… does not match the spec's %.12s…",
					sh.Shard, c.Index, cells[c.Index].Key(), c.ID, want)
			}
			seen[c.Index] = true
			merged[c.Index] = c.Cell
		}
	}
	firstMissing, missing := -1, 0
	for i, ok := range seen {
		if !ok {
			if firstMissing < 0 {
				firstMissing = i
			}
			missing++
		}
	}
	if missing > 0 {
		return nil, fmt.Errorf("sweep: merge covers %d of %d cells; first missing cell %d (%s) — a shard file is absent or incomplete",
			len(cells)-missing, len(cells), firstMissing, cells[firstMissing].Key())
	}
	return &Grid{Spec: spec, Cells: merged}, nil
}
