package sim

import (
	"encoding/json"
	"runtime"
	"testing"

	"repro/internal/adversary"
	"repro/internal/arrival"
	"repro/internal/baseline"
	"repro/internal/channel"
	"repro/internal/core"
	"repro/internal/jam"
	"repro/internal/medium"
	"repro/internal/nocd"
	"repro/internal/protocol"
	"repro/internal/rng"
)

// resultDump serializes every observable field of a Result — including
// the backlog series points and the raw latency-reservoir contents,
// whose element order is part of the determinism contract — so two runs
// are equal iff their dumps are byte-identical JSON.
func resultDump(t *testing.T, r *Result) string {
	t.Helper()
	var latVals []float64
	if r.LatencySample != nil {
		latVals = r.LatencySample.Values()
	}
	d := struct {
		Protocol, Arrival, Medium           string
		Kappa                               int
		Horizon, Arrivals, Delivered        int64
		Pending                             int
		FirstArrival, LastDelivery, Elapsed int64
		MaxBacklog, PeakInFlight            int
		Channel                             channel.Stats
		LatencyN                            int64
		LatencyMean, LatencyMin, LatencyMax float64
		LatencyStddev                       float64
		BacklogT                            []int64
		BacklogV                            []float64
		LatencyValues                       []float64
	}{
		Protocol: r.Protocol, Arrival: r.Arrival, Medium: r.Medium,
		Kappa:   r.Kappa,
		Horizon: r.Horizon, Arrivals: r.Arrivals, Delivered: r.Delivered,
		Pending:      r.Pending,
		FirstArrival: r.FirstArrival, LastDelivery: r.LastDelivery, Elapsed: r.Elapsed,
		MaxBacklog: r.MaxBacklog, PeakInFlight: r.PeakInFlight,
		Channel:     r.Channel,
		LatencyN:    r.Latency.N(),
		LatencyMean: r.Latency.Mean(), LatencyMin: r.Latency.Min(), LatencyMax: r.Latency.Max(),
		LatencyStddev: r.Latency.Stddev(),
		BacklogT:      r.BacklogSeries.T, BacklogV: r.BacklogSeries.V,
		LatencyValues: latVals,
	}
	b, err := json.Marshal(d)
	if err != nil {
		t.Fatalf("marshal result dump: %v", err)
	}
	return string(b)
}

// workerGrid is the protocol × medium × adversary regression grid for
// the staged engine: every scenario must produce byte-identical results
// at every worker count.  Scenarios cover the DBA core, both backoff
// shapes (Waker fast-forward paths), classical media, legacy jammers,
// adaptive jammers, arrival adversaries, a non-partitioned protocol
// (serial fallback), and one batch large enough to cross fanOutGrain so
// the parallel shard sweep really runs.
var workerGrid = []struct {
	name string
	run  func(workers int) *Result
}{
	{"dba/coded/batch", func(w int) *Result {
		return Run(Config{Kappa: 16, Horizon: 1, Drain: true, Seed: 11, Workers: w},
			core.New(16, rng.New(101)), &arrival.Batch{At: 0, N: 3000})
	}},
	{"dba/coded/bernoulli+random-jam", func(w int) *Result {
		return Run(Config{Kappa: 16, Horizon: 20000, Drain: true, Seed: 12, Workers: w,
			Jammer: &jam.Random{Rate: 0.2}},
			core.New(16, rng.New(102)), &arrival.Bernoulli{Rate: 0.3})
	}},
	{"dba/coded/reactive-adaptive", func(w int) *Result {
		return Run(Config{Kappa: 16, Horizon: 15000, Drain: true, Seed: 13, Workers: w,
			Adversary: adversary.NewReactive(1, 16)},
			core.New(16, rng.New(103)), &arrival.Bernoulli{Rate: 0.25})
	}},
	{"dba/coded/sigma-rho", func(w int) *Result {
		return Run(Config{Kappa: 16, Horizon: 15000, Drain: true, Seed: 14, Workers: w,
			Adversary: adversary.NewSigmaRho(64, 0.2)},
			core.New(16, rng.New(104)), &arrival.Bernoulli{Rate: 0.2})
	}},
	{"beb/coded/batch-waker", func(w int) *Result {
		return Run(Config{Kappa: 8, Horizon: 1, Drain: true, Seed: 15, Workers: w},
			baseline.NewExponentialBackoff(rng.New(105)), &arrival.Batch{At: 0, N: 64})
	}},
	{"beb/coded/periodic-jam-waker", func(w int) *Result {
		return Run(Config{Kappa: 8, Horizon: 4096, Drain: true, Seed: 16, Workers: w,
			Jammer: &jam.Periodic{Period: 64, Burst: 8}},
			baseline.NewExponentialBackoff(rng.New(106)), &arrival.Batch{At: 0, N: 48})
	}},
	{"poly/coded/batch-waker", func(w int) *Result {
		return Run(Config{Kappa: 8, Horizon: 1, Drain: true, Seed: 17, Workers: w},
			baseline.NewPolynomialBackoff(rng.New(107), 2), &arrival.Batch{At: 0, N: 64})
	}},
	{"beb/classical-ternary/even", func(w int) *Result {
		return Run(Config{Horizon: 8192, Drain: true, Seed: 18, Workers: w,
			Medium: medium.NewClassical(medium.CDTernary)},
			baseline.NewExponentialBackoff(rng.New(108)), arrival.NewEvenPaced(0.2))
	}},
	{"genie/coded/serial-fallback", func(w int) *Result {
		return Run(Config{Kappa: 4, Horizon: 4096, Drain: true, Seed: 19, Workers: w},
			baseline.NewGenieAloha(rng.New(109), 1), arrival.NewEvenPaced(0.25))
	}},
	{"robust/classical-none/batch", func(w int) *Result {
		return Run(Config{Horizon: 1, Drain: true, Seed: 20, Workers: w,
			Medium: medium.NewClassical(medium.CDNone)},
			nocd.NewRobust(rng.New(110)), &arrival.Batch{At: 0, N: 200})
	}},
	{"unbounded/classical-none/bernoulli", func(w int) *Result {
		return Run(Config{Horizon: 6000, Drain: true, Seed: 21, Workers: w,
			Medium: medium.NewClassical(medium.CDNone)},
			nocd.NewUnbounded(rng.New(111)), &arrival.Bernoulli{Rate: 0.02})
	}},
	{"unbounded/capture/batch", func(w int) *Result {
		return Run(Config{Kappa: 8, Horizon: 1, Drain: true, Seed: 22, Workers: w,
			Medium: medium.NewCapture(8)},
			nocd.NewUnbounded(rng.New(112)), &arrival.Batch{At: 0, N: 500})
	}},
	{"beb/capture/bernoulli+random-jam", func(w int) *Result {
		return Run(Config{Kappa: 4, Horizon: 8000, Drain: true, Seed: 23, Workers: w,
			Medium: medium.NewCapture(4), Jammer: &jam.Random{Rate: 0.1}},
			baseline.NewExponentialBackoff(rng.New(113)), &arrival.Bernoulli{Rate: 0.2})
	}},
	{"mw/capture/reactive-adaptive", func(w int) *Result {
		return Run(Config{Kappa: 4, Horizon: 8000, Drain: true, Seed: 24, Workers: w,
			Medium: medium.NewCapture(4), Adversary: adversary.NewReactive(4, 16)},
			baseline.NewMultiplicativeWeights(rng.New(114), baseline.DefaultMWConfig()),
			&arrival.Bernoulli{Rate: 0.15})
	}},
}

// TestWorkersResultEquality is the tentpole regression: for every grid
// scenario, Workers 1, 3, and GOMAXPROCS reproduce the Workers 0
// (serial legacy) run byte for byte.
func TestWorkersResultEquality(t *testing.T) {
	counts := []int{1, 3, runtime.GOMAXPROCS(0)}
	for _, sc := range workerGrid {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			t.Parallel()
			ref := resultDump(t, sc.run(0))
			for _, w := range counts {
				if got := resultDump(t, sc.run(w)); got != ref {
					t.Errorf("workers=%d diverged from serial reference\nserial: %s\nstaged: %s", w, ref, got)
				}
			}
		})
	}
}

// TestWorkersFanOutEquality crosses the fanOutGrain threshold (an
// overfull DBA phase with ~17k joiners per slot), so the parallel shard
// sweep — not just the inline staged path — is exercised against the
// serial reference.
func TestWorkersFanOutEquality(t *testing.T) {
	if testing.Short() {
		t.Skip("large batch")
	}
	run := func(w int) *Result {
		return Run(Config{Kappa: 8, Horizon: 1, Drain: true, Seed: 21, Workers: w,
			LatencySamples: 512},
			core.New(8, rng.New(201)), &arrival.Batch{At: 0, N: 50000})
	}
	ref := resultDump(t, run(0))
	for _, w := range []int{4, runtime.GOMAXPROCS(0)} {
		if got := resultDump(t, run(w)); got != ref {
			t.Errorf("workers=%d diverged from serial reference on fan-out batch", w)
		}
	}
}

// TestStepperSelection pins the dispatch rules: workers ≥ 1 with a
// Partitioned protocol runs staged; workers 0, or a non-partitioned
// protocol, runs the serial reference.
func TestStepperSelection(t *testing.T) {
	dba := core.New(16, rng.New(1))
	if _, ok := newStepper(1, dba).(*stagedStepper); !ok {
		t.Error("workers=1 with a Partitioned protocol should select the staged path")
	}
	if _, ok := newStepper(0, dba).(*serialStepper); !ok {
		t.Error("workers=0 should select the serial reference path")
	}
	aloha := baseline.NewGenieAloha(rng.New(2), 1)
	if _, ok := newStepper(4, aloha).(*serialStepper); !ok {
		t.Error("a non-partitioned protocol should fall back to the serial path")
	}
	beb := baseline.NewExponentialBackoff(rng.New(3))
	st := newStepper(2, beb)
	if !st.hasWaker() {
		t.Error("staged stepper should surface the PartitionedWaker")
	}
	var p protocol.Partitioned = dba
	if p.Shards() != protocol.NumShards {
		t.Errorf("Shards() = %d, want %d", p.Shards(), protocol.NumShards)
	}
}
