package sweep

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"
)

// TestWorkersCellIdentityNeutral pins the PR's identity contract: the
// Workers knob must not move cell identities (a cached cell computed at
// any worker count is valid at every other), and a spec that leaves
// Workers unset must hash exactly as it did before the knob existed
// (omitempty keeps it out of the normalized JSON).
func TestWorkersCellIdentityNeutral(t *testing.T) {
	serial, staged := smallSpec(), smallSpec()
	staged.Workers = 8
	if err := serial.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := staged.Validate(); err != nil {
		t.Fatal(err)
	}
	cells := serial.Expand()
	seeds := serial.jobSeeds(len(cells))
	for i, sc := range cells {
		s := seeds[i*serial.Trials : (i+1)*serial.Trials]
		if cellID(sc, &serial, s) != cellID(sc, &staged, s) {
			t.Fatalf("cell %d (%s): identity moved with Workers", i, sc.Key())
		}
	}

	data, err := json.Marshal(&serial)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(data, []byte("workers")) {
		t.Fatalf("unset Workers leaks into normalized spec JSON (hash would move): %s", data)
	}
}

// TestWorkersGridByteIdentical runs one grid three ways — serial,
// staged via Options.Workers (the per-machine flag), staged via
// Spec.Workers (a spec that pins it) — and requires byte-identical
// artifacts, the sweep-level face of the engine's equality contract.
func TestWorkersGridByteIdentical(t *testing.T) {
	ref, err := Run(context.Background(), smallSpec(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	refJSON, err := ref.JSON()
	if err != nil {
		t.Fatal(err)
	}

	viaOpts, err := Run(context.Background(), smallSpec(), Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	optsJSON, err := viaOpts.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(refJSON, optsJSON) {
		t.Error("Options.Workers changed the grid artifact")
	}

	pinned := smallSpec()
	pinned.Workers = 3
	viaSpec, err := Run(context.Background(), pinned, Options{})
	if err != nil {
		t.Fatal(err)
	}
	specJSON, err := viaSpec.JSON()
	if err != nil {
		t.Fatal(err)
	}
	// The spec block embedded in the artifact now carries workers: 3, so
	// compare the cells, not the raw bytes.
	var a, b struct {
		Cells json.RawMessage `json:"cells"`
	}
	if err := json.Unmarshal(refJSON, &a); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(specJSON, &b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Cells, b.Cells) {
		t.Error("Spec.Workers changed the grid's cells")
	}
}

func TestValidateRejectsNegativeWorkers(t *testing.T) {
	s := smallSpec()
	s.Workers = -1
	if err := s.Validate(); err == nil {
		t.Fatal("negative workers accepted")
	}
}
