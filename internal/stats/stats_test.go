package stats

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestSummaryBasics(t *testing.T) {
	var s Summary
	if s.N() != 0 || s.Mean() != 0 || s.Min() != 0 || s.Max() != 0 {
		t.Fatal("zero-value summary not empty")
	}
	for _, x := range []float64{1, 2, 3, 4, 5} {
		s.Add(x)
	}
	if s.N() != 5 {
		t.Fatalf("N = %d", s.N())
	}
	if math.Abs(s.Mean()-3) > 1e-12 {
		t.Fatalf("mean %v", s.Mean())
	}
	if math.Abs(s.Variance()-2.5) > 1e-12 {
		t.Fatalf("variance %v", s.Variance())
	}
	if s.Min() != 1 || s.Max() != 5 {
		t.Fatalf("extremes %v %v", s.Min(), s.Max())
	}
	if s.CI95() <= 0 {
		t.Fatal("CI95 not positive")
	}
	if s.String() == "" {
		t.Fatal("empty String")
	}
}

func TestSummaryMatchesNaive(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 2 + r.Intn(100)
		var s Summary
		var sum, sumsq float64
		for i := 0; i < n; i++ {
			x := r.NormFloat64() * 10
			s.Add(x)
			sum += x
			sumsq += x * x
		}
		mean := sum / float64(n)
		variance := (sumsq - float64(n)*mean*mean) / float64(n-1)
		return math.Abs(s.Mean()-mean) < 1e-9 &&
			math.Abs(s.Variance()-variance) < 1e-6*math.Max(1, variance)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSummaryNegativeValues(t *testing.T) {
	var s Summary
	s.Add(-5)
	s.Add(-1)
	if s.Min() != -5 || s.Max() != -1 {
		t.Fatalf("extremes %v %v", s.Min(), s.Max())
	}
}

func TestQuantile(t *testing.T) {
	data := []float64{5, 1, 3, 2, 4}
	if q := Quantile(data, 0); q != 1 {
		t.Fatalf("q0 = %v", q)
	}
	if q := Quantile(data, 1); q != 5 {
		t.Fatalf("q1 = %v", q)
	}
	if q := Quantile(data, 0.5); q != 3 {
		t.Fatalf("median = %v", q)
	}
	if q := Quantile(data, 0.25); q != 2 {
		t.Fatalf("q25 = %v", q)
	}
	// Input unchanged.
	if data[0] != 5 {
		t.Fatal("Quantile mutated input")
	}
}

func TestQuantileSingle(t *testing.T) {
	if q := Quantile([]float64{7}, 0.9); q != 7 {
		t.Fatalf("single-element quantile %v", q)
	}
}

func TestQuantileInterpolation(t *testing.T) {
	data := []float64{0, 10}
	if q := Quantile(data, 0.25); math.Abs(q-2.5) > 1e-12 {
		t.Fatalf("interpolated q25 = %v", q)
	}
}

func TestQuantilesConsistent(t *testing.T) {
	data := []float64{9, 2, 7, 4, 6, 1}
	qs := Quantiles(data, 0.1, 0.5, 0.9)
	for i, q := range []float64{0.1, 0.5, 0.9} {
		if qs[i] != Quantile(data, q) {
			t.Fatalf("Quantiles mismatch at %v", q)
		}
	}
}

func TestQuantilePanics(t *testing.T) {
	for name, f := range map[string]func(){
		"empty": func() { Quantile(nil, 0.5) },
		"low":   func() { Quantile([]float64{1}, -0.1) },
		"high":  func() { Quantile([]float64{1}, 1.1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{0, 1.9, 2, 5, 9.9, -3, 42} {
		h.Add(x)
	}
	if h.Total() != 7 {
		t.Fatalf("total %d", h.Total())
	}
	if h.Counts[0] != 3 { // 0, 1.9, -3 (clamped)
		t.Fatalf("bin0 = %d", h.Counts[0])
	}
	if h.Counts[4] != 2 { // 9.9, 42 (clamped)
		t.Fatalf("bin4 = %d", h.Counts[4])
	}
}

func TestHistogramValidation(t *testing.T) {
	for name, f := range map[string]func(){
		"bins":  func() { NewHistogram(0, 1, 0) },
		"range": func() { NewHistogram(1, 1, 3) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestSeriesDownsamples(t *testing.T) {
	s := NewSeries(16)
	for i := int64(0); i < 10000; i++ {
		s.Add(i, float64(i))
	}
	if s.Len() >= 16 {
		t.Fatalf("series exceeded cap: %d", s.Len())
	}
	if s.Len() < 4 {
		t.Fatalf("series too aggressive: %d points", s.Len())
	}
	// Times must be strictly increasing and values consistent.
	for i := 1; i < s.Len(); i++ {
		if s.T[i] <= s.T[i-1] {
			t.Fatalf("series times not increasing: %v", s.T)
		}
		if s.V[i] != float64(s.T[i]) {
			t.Fatalf("series value mismatch at %d", i)
		}
	}
	if s.Stride() < 2 {
		t.Fatalf("stride did not grow: %d", s.Stride())
	}
}

func TestSeriesSmallInput(t *testing.T) {
	s := NewSeries(100)
	s.Add(3, 1)
	s.Add(5, 2)
	if s.Len() != 2 || s.T[0] != 3 || s.T[1] != 5 {
		t.Fatalf("series %v %v", s.T, s.V)
	}
}

func TestSeriesCapPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("cap 1 did not panic")
		}
	}()
	NewSeries(1)
}

func TestSeriesUniformSpacingAcrossCompactions(t *testing.T) {
	// Regression: Add used to compute the next sample time from the
	// pre-compaction stride, so the first post-compaction sample landed
	// one old stride late and every later compaction compounded the
	// skew.  Under dense input the retained trace must keep uniform
	// spacing — the documented contract — across several compactions.
	// An odd cap retains the just-added point at compaction time, which
	// is the case the old code skewed.
	for _, capN := range []int{9, 16, 33} {
		s := NewSeries(capN)
		for i := int64(0); i < 5000; i++ {
			s.Add(i, float64(i))
		}
		if s.Stride() < 4 {
			t.Fatalf("cap %d: expected ≥2 compactions, stride %d", capN, s.Stride())
		}
		for i := 1; i < s.Len(); i++ {
			if d := s.T[i] - s.T[i-1]; d != s.Stride() {
				t.Fatalf("cap %d: spacing %d at index %d, want uniform %d (T=%v)",
					capN, d, i, s.Stride(), s.T)
			}
		}
	}
}

func TestQuantilesValidateUpFront(t *testing.T) {
	// A bad fraction anywhere in the list must panic (before the sort;
	// the output is never half-filled).
	for _, qs := range [][]float64{{0.5, -0.1}, {0.5, 1.5}, {2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Quantiles(%v) did not panic", qs)
				}
			}()
			Quantiles([]float64{3, 1, 2}, qs...)
		}()
	}
}

func TestReservoirExactBelowCapacity(t *testing.T) {
	r := NewReservoir(100, 7)
	data := []float64{9, 2, 7, 4, 6, 1}
	for _, x := range data {
		r.Add(x)
	}
	if r.N() != 6 || r.Len() != 6 || !r.Exact() {
		t.Fatalf("n=%d len=%d exact=%v", r.N(), r.Len(), r.Exact())
	}
	// Below capacity the sample is the whole stream: quantiles match the
	// exact ones.
	for _, q := range []float64{0, 0.25, 0.5, 0.9, 1} {
		if r.Quantile(q) != Quantile(data, q) {
			t.Fatalf("q=%v: reservoir %v, exact %v", q, r.Quantile(q), Quantile(data, q))
		}
	}
	qs := r.Quantiles(0.5, 0.99)
	if qs[0] != Quantile(data, 0.5) || qs[1] != Quantile(data, 0.99) {
		t.Fatalf("Quantiles mismatch: %v", qs)
	}
}

func TestReservoirBoundedAndUniform(t *testing.T) {
	const capN, n = 64, 100000
	r := NewReservoir(capN, 11)
	for i := 0; i < n; i++ {
		r.Add(float64(i))
	}
	if r.Len() != capN || r.N() != n || r.Exact() {
		t.Fatalf("len=%d n=%d exact=%v", r.Len(), r.N(), r.Exact())
	}
	// A uniform sample of 0..n-1 has median near n/2; a reservoir biased
	// toward either end of the stream would be far off.
	if med := r.Quantile(0.5); med < 0.25*n || med > 0.75*n {
		t.Fatalf("median %v of a uniform 0..%d sample", med, n)
	}
}

func TestReservoirDeterministic(t *testing.T) {
	sample := func(seed uint64) []float64 {
		r := NewReservoir(16, seed)
		for i := 0; i < 1000; i++ {
			r.Add(float64(i * 3))
		}
		out := make([]float64, r.Len())
		copy(out, r.Values())
		return out
	}
	a, b := sample(5), sample(5)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
	c := sample(6)
	same := true
	for i := range a {
		same = same && a[i] == c[i]
	}
	if same {
		t.Fatal("different seeds retained identical samples")
	}
}

func TestReservoirEmptyAndValidation(t *testing.T) {
	r := NewReservoir(4, 1)
	if !math.IsNaN(r.Quantile(0.5)) {
		t.Fatal("empty reservoir quantile not NaN")
	}
	if qs := r.Quantiles(0.5, 0.9); !math.IsNaN(qs[0]) || !math.IsNaN(qs[1]) {
		t.Fatalf("empty reservoir quantiles %v", qs)
	}
	for name, f := range map[string]func(){
		"cap":          func() { NewReservoir(0, 1) },
		"bad q":        func() { r.Quantile(-1) },
		"bad qs":       func() { r.Quantiles(0.5, 2) },
		"bad qs empty": func() { NewReservoir(4, 1).Quantiles(-0.5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}
