package baseline

import (
	"fmt"

	"repro/internal/channel"
	"repro/internal/protocol"
	"repro/internal/rng"
)

// SlottedAloha is slotted ALOHA: every pending packet transmits in every
// slot independently with probability p.  Two variants:
//
//   - static p (NewSlottedAloha): the textbook protocol, whose classical
//     throughput peaks at 1/e when p ≈ 1/n;
//   - genie-aided (NewGenieAloha): p = c/backlog each slot, an oracle that
//     knows the exact backlog — the strongest version of ALOHA, used as
//     the 1/e reference line.
//
// ALOHA ignores all feedback except its own delivery, so it needs no
// adaptation for the coded channel.
type SlottedAloha struct {
	rand    *rng.Rand
	p       float64 // static probability; 0 means genie mode
	c       float64 // genie numerator (target expected transmitters)
	ids     []channel.PacketID
	loc     map[channel.PacketID]int
	stats   AlohaStats
	scratch []int
}

// AlohaStats aggregates counters for an ALOHA execution.
type AlohaStats struct {
	Transmissions int64
	Delivered     int64
}

var _ protocol.Protocol = (*SlottedAloha)(nil)

// NewSlottedAloha returns slotted ALOHA with fixed transmission
// probability p in (0, 1].
func NewSlottedAloha(r *rng.Rand, p float64) *SlottedAloha {
	if r == nil {
		panic("baseline: nil rng")
	}
	if p <= 0 || p > 1 {
		panic("baseline: ALOHA probability must be in (0,1]")
	}
	return &SlottedAloha{rand: r, p: p, loc: make(map[channel.PacketID]int)}
}

// NewGenieAloha returns backlog-aware ALOHA transmitting with probability
// min(1, c/backlog) each slot.  c = 1 maximizes classical throughput at
// 1/e.
func NewGenieAloha(r *rng.Rand, c float64) *SlottedAloha {
	if r == nil {
		panic("baseline: nil rng")
	}
	if c <= 0 {
		panic("baseline: genie numerator must be positive")
	}
	return &SlottedAloha{rand: r, c: c, loc: make(map[channel.PacketID]int)}
}

// Name implements protocol.Protocol.
func (a *SlottedAloha) Name() string {
	if a.p > 0 {
		return "slotted-aloha"
	}
	return "genie-aloha"
}

// Stats returns a copy of the accumulated counters.
func (a *SlottedAloha) Stats() AlohaStats { return a.stats }

// Pending implements protocol.Protocol.
func (a *SlottedAloha) Pending() int { return len(a.ids) }

// Inject implements protocol.Protocol.
func (a *SlottedAloha) Inject(now int64, ids []channel.PacketID) {
	for _, id := range ids {
		if _, dup := a.loc[id]; dup {
			panic(fmt.Sprintf("baseline: duplicate injection of packet %d", id))
		}
		a.loc[id] = len(a.ids)
		a.ids = append(a.ids, id)
	}
}

// Transmitters implements protocol.Protocol: every pending packet
// transmits independently with the current probability.
func (a *SlottedAloha) Transmitters(now int64, buf []channel.PacketID) []channel.PacketID {
	n := len(a.ids)
	if n == 0 {
		return buf
	}
	p := a.p
	if p == 0 { // genie mode
		p = a.c / float64(n)
		if p > 1 {
			p = 1
		}
	}
	a.scratch = a.rand.SampleIndices(a.scratch[:0], n, p)
	for _, idx := range a.scratch {
		buf = append(buf, a.ids[idx])
	}
	a.stats.Transmissions += int64(len(a.scratch))
	return buf
}

// Observe implements protocol.Protocol: only deliveries matter.
func (a *SlottedAloha) Observe(fb channel.Feedback) {
	if fb.Event == nil {
		return
	}
	for _, id := range fb.Event.Packets {
		idx, ok := a.loc[id]
		if !ok {
			continue
		}
		last := len(a.ids) - 1
		moved := a.ids[last]
		a.ids[idx] = moved
		a.ids = a.ids[:last]
		if idx != last {
			a.loc[moved] = idx
		}
		delete(a.loc, id)
		a.stats.Delivered++
	}
}
