// Package sim is the discrete-round simulation engine: it wires an
// arrival process, a contention-resolution protocol, and a channel
// medium together, slot by slot, and collects the measurements the
// experiments report (backlog, latency, throughput, slot classes).  The
// medium defaults to the Coded Radio Network Model; Config.Medium swaps
// in any other channel model (see internal/medium).
//
// The engine fast-forwards through provably idle stretches (no pending
// packets and no arrivals, or — for protocols that declare their next
// wake-up — no transmissions), so batch-latency experiments over sparse
// horizons cost time proportional to activity, not wall-clock slots.
package sim

import (
	"fmt"
	"math"

	"repro/internal/adversary"
	"repro/internal/arena"
	"repro/internal/arrival"
	"repro/internal/channel"
	"repro/internal/jam"
	"repro/internal/medium"
	"repro/internal/protocol"
	"repro/internal/stats"
)

// Config parametrizes one simulation run.
type Config struct {
	// Kappa is the channel's decoding threshold (≥ 1).  Ignored when
	// Medium is set (the medium knows its own threshold).
	Kappa int
	// MaxWindow caps decoding-window length; 0 selects the default 4κ
	// (the paper shows O(κ) windows suffice).  Use NoWindowCap for an
	// unbounded window.
	MaxWindow int
	// Horizon is the number of slots during which arrivals occur.
	Horizon int64
	// Drain keeps simulating after Horizon until the system empties (or
	// DrainLimit extra slots pass), so completion metrics cover every
	// injected packet.
	Drain bool
	// DrainLimit bounds the drain phase; 0 means max(16×Horizon, 2^20)
	// extra slots — generous enough for batch experiments that use a
	// 1-slot horizon, while still guaranteeing termination when a
	// protocol is stuck.
	DrainLimit int64
	// Seed drives the arrival process randomness.  (Protocols hold their
	// own rng, so one protocol's consumption cannot perturb arrivals.)
	Seed uint64
	// SeriesCap bounds the retained backlog time series (0 = 2048).
	SeriesCap int
	// LatencySamples bounds the per-packet latencies retained for
	// Result.LatencyQuantile: 0 selects a DefaultLatencySamples-slot
	// seeded reservoir, a positive value a reservoir of that capacity,
	// and LatencySamplesOff (any negative value) disables retention
	// entirely (quantiles are NaN; the Latency summary still
	// accumulates).  Memory is O(LatencySamples) regardless of total
	// arrivals; runs that deliver no more packets than the capacity
	// retain every latency, so their quantiles are exact.
	LatencySamples int
	// Jammer optionally spoils slots with noise (failure injection; see
	// package jam).  The engine composes it over the medium via
	// medium.Jam: jammed slots are audibly busy and decode-useless, and
	// jam decisions are slot-keyed, so they are identical whether or not
	// idle stretches in between were fast-forwarded.  (Fast-forwarded
	// stretches themselves are not consulted for jamming: an empty
	// system ignores noise.)
	Jammer jam.Jammer
	// Medium selects the channel model the run uses; nil selects the
	// coded κ-threshold channel built from Kappa and MaxWindow.  Media
	// are stateful: construct one per run, never share across
	// concurrent runs.  See internal/medium for the implementations.
	Medium medium.Medium
	// Adversary optionally disrupts the run (see internal/adversary).  A
	// jamming adversary is composed over the medium exactly like Jammer
	// (slot-keyed randomness, adaptive state fed by per-slot feedback);
	// an arrival adversary's injections are merged with the configured
	// arrival process, subject to the same Horizon.  Adversaries are
	// stateful: construct one per run, never share across concurrent
	// runs.
	Adversary adversary.Adversary
	// Workers selects the execution path for the per-slot station work.
	// 0 runs the serial legacy slot loop, which stays the reference.
	// W ≥ 1 runs the staged shard/step/reduce engine, fanning the
	// per-shard transmit-collect and feedback stages out over up to W
	// goroutines when the protocol implements protocol.Partitioned (a
	// non-partitioned protocol falls back to the serial path regardless).
	// Results are bit-identical for every value — the Partitioned
	// contract pins the RNG stream and the transmitter order to the
	// serial cycle — so Workers is a pure wall-clock knob: it is
	// deliberately excluded from sweep cell identities.
	Workers int
}

// NoWindowCap disables the decoding-window length cap.
const NoWindowCap = -1

// DefaultLatencySamples is the latency-reservoir capacity selected by
// Config.LatencySamples = 0.  It is sized so quick-scale runs (and the
// committed benchmark grid) deliver fewer packets than the capacity and
// therefore keep exact quantiles, while bounding retention at any n.
const DefaultLatencySamples = 16384

// LatencySamplesOff disables per-run latency retention in
// Config.LatencySamples: Result.LatencySample stays nil and
// LatencyQuantile returns NaN.
const LatencySamplesOff = -1

func (c *Config) maxWindow() int {
	switch {
	case c.MaxWindow == NoWindowCap:
		return 0
	case c.MaxWindow == 0:
		return 4 * c.Kappa
	default:
		return c.MaxWindow
	}
}

// Result holds the measurements of one run.
type Result struct {
	Protocol string
	Arrival  string
	Medium   string // channel-model name, e.g. "coded" or "classical:ternary"
	Kappa    int
	Horizon  int64

	Arrivals  int64
	Delivered int64
	Pending   int // backlog when the run ended

	FirstArrival int64 // -1 if none
	LastDelivery int64 // -1 if none
	Elapsed      int64 // total slots simulated (including drain)

	MaxBacklog int
	// PeakInFlight is the high-water mark of the engine's per-packet
	// bookkeeping (packets injected but not yet delivered).  Entries
	// are freed on delivery, so engine memory is proportional to this —
	// which tracks MaxBacklog — never to total arrivals.
	PeakInFlight  int
	BacklogSeries *stats.Series

	Latency stats.Summary // per delivered packet, in slots
	// LatencySample is the bounded, seeded latency reservoir backing
	// LatencyQuantile (nil if Config.LatencySamples was negative).
	LatencySample *stats.Reservoir

	Channel channel.Stats
}

// CompletionThroughput is delivered packets per slot over the span from
// first arrival to last delivery — the batch throughput measure
// (Theorem 16 asks completion time n(1+10/κ)+O(κ), i.e. throughput → 1).
func (r *Result) CompletionThroughput() float64 {
	if r.Delivered == 0 || r.LastDelivery < r.FirstArrival {
		return 0
	}
	return float64(r.Delivered) / float64(r.LastDelivery-r.FirstArrival+1)
}

// LatencyQuantile returns the q-quantile of packet latency from the
// bounded latency reservoir (NaN with retention disabled or before the
// first delivery).  Quantiles are exact while deliveries fit the
// reservoir capacity, estimates from a uniform subsample beyond it.
func (r *Result) LatencyQuantile(q float64) float64 {
	if r.LatencySample == nil || r.LatencySample.Len() == 0 {
		return math.NaN()
	}
	return r.LatencySample.Quantile(q)
}

// SegmentMeanBacklog averages the backlog series over the fraction range
// [from, to) of the simulated span — used by stability detection (e.g.
// compare [0.4,0.5) against [0.9,1.0)).
func (r *Result) SegmentMeanBacklog(from, to float64) float64 {
	s := r.BacklogSeries
	if s == nil || s.Len() == 0 {
		return 0
	}
	loT := int64(from * float64(r.Elapsed))
	hiT := int64(to * float64(r.Elapsed))
	var sum float64
	var n int
	for i := 0; i < s.Len(); i++ {
		if s.T[i] >= loT && s.T[i] < hiT {
			sum += s.V[i]
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// jamSeedSalt decorrelates the jammer's slot-keyed randomness from the
// arrival stream, which uses Config.Seed directly.
const jamSeedSalt = 0x4a4d // "JM"

// advSeedSalt decorrelates an adversary's slot-keyed randomness from
// both the arrival stream and a legacy Config.Jammer composed in the
// same run.
const advSeedSalt = 0x414456 // "ADV"

// latSeedSalt decorrelates the latency reservoir's replacement stream
// from every other consumer of Config.Seed.
const latSeedSalt = 0x4c4154 // "LAT"

// inflight tracks the inject slot of every in-flight packet.  Entries
// are freed on delivery, so the retained bookkeeping is proportional to
// the instantaneous backlog (peak records the high-water mark) — never
// to total arrivals — which is what lets batch runs scale to millions
// of packets in bounded memory.  Packet IDs are issued sequentially, so
// the live IDs form a dense sliding band: the paged arena keeps lookups
// off the map runtime and recycles the pages of departed bands, which
// preserves the backlog-proportional memory bound.
type inflight struct {
	at   arena.Index[int64]
	peak int
}

func newInflight() *inflight { return &inflight{} }

// add records a packet injected at the given slot.
func (f *inflight) add(id channel.PacketID, slot int64) {
	f.at.Put(int64(id), slot)
	if n := f.at.Len(); n > f.peak {
		f.peak = n
	}
}

// take returns a packet's inject slot and frees its entry.
func (f *inflight) take(id channel.PacketID) int64 {
	slot, ok := f.at.Delete(int64(id))
	if !ok {
		panic(fmt.Sprintf("sim: delivery of unknown packet %d", id))
	}
	return slot
}

// Run simulates one execution: the Loop adjudicates each slot (medium
// composition, arrivals, feedback, accounting, fast-forward) while Run
// executes the protocol through the serial or staged stepper.
func Run(cfg Config, proto protocol.Protocol, arr arrival.Process) *Result {
	l := NewLoop(cfg, proto.Name(), arr)
	m := l.Medium()
	st := newStepper(cfg.Workers, proto)

	// Event-driven fast-forward through runs of identical bad slots:
	// when a slot classifies Bad and the protocol guarantees its
	// transmitter set frozen (protocol.Coaster), subsequent slots up to
	// coastEnd replay the bad slot in O(1) via medium.Repeater instead of
	// re-collecting and re-validating thousands of transmitters.  Every
	// coasted slot still runs arrivals, feedback, Observe, and per-slot
	// accounting, so results — including RNG streams — are unchanged.
	rep, _ := m.(medium.Repeater)
	coastEnd := int64(-1)

	for l.Running(st.pending()) {
		now := l.Now()
		// Arrivals (only before the horizon).
		if ids := l.InjectNow(); len(ids) > 0 {
			proto.Inject(now, ids)
		}
		// One channel slot: prepare + transmit-collect and the medium step
		// (or an O(1) replay while coasting through repeated bad slots),
		// then feedback fan-out + reduce.
		var class channel.SlotClass
		var ev *channel.Event
		if rep != nil && now <= coastEnd && rep.StepRepeat(now) {
			class, ev = channel.Bad, nil
		} else {
			class, ev = st.step(now, m)
		}
		st.observe(l.Observe(ev))
		backlog := st.pending()
		l.Record(backlog)

		// Arm (or re-arm) the coast.  Checked after the slot's observe so
		// the protocol's epoch state is current; any non-Bad slot kills the
		// coast, because only bad slots leave detector state untouched.
		if class == channel.Bad && rep != nil {
			coastEnd = st.coastUntil(now)
		} else {
			coastEnd = now
		}

		// Advance, fast-forwarding when provably nothing happens; the
		// protocol's wake declaration only counts while not coasting.
		var wake func(int64) int64
		if coastEnd <= now && st.hasWaker() {
			wake = st.nextWake
		}
		if !l.Advance(backlog, wake) {
			break
		}
	}
	return l.Finish(st.pending())
}

// String summarizes the result in one line.
func (r *Result) String() string {
	return fmt.Sprintf("%s/%s on %s κ=%d: arrivals=%d delivered=%d pending=%d maxBacklog=%d thpt=%.3f",
		r.Protocol, r.Arrival, r.Medium, r.Kappa, r.Arrivals, r.Delivered, r.Pending,
		r.MaxBacklog, r.CompletionThroughput())
}
