package linalg

import "math/bits"

// Bits is a little-endian uint64 bitset: bit i lives in word i/64 at
// position i%64.  It backs the channel detector's decode-window
// occupancy tracking, where the per-slot hot path needs word-parallel
// scans (find the next non-empty slot, count survivors) instead of
// per-entry scalar walks.
//
// Methods never bounds-check against a logical length; the caller
// grows the word slice with EnsureBits before setting and keeps bits
// beyond its logical length zero.
type Bits []uint64

// EnsureBits grows the word slice so bit n-1 is addressable, zeroing
// any newly exposed words.
func (b *Bits) EnsureBits(n int) {
	words := (n + 63) >> 6
	for len(*b) < words {
		*b = append(*b, 0)
	}
}

// Set sets bit i.
func (b Bits) Set(i int) { b[i>>6] |= 1 << uint(i&63) }

// Clear clears bit i.
func (b Bits) Clear(i int) { b[i>>6] &^= 1 << uint(i&63) }

// Test reports bit i.
func (b Bits) Test(i int) bool { return b[i>>6]>>(uint(i&63))&1 == 1 }

// NextSet returns the smallest set bit index ≥ from, or -1 if none.
// It skips zero words eight bytes at a time.
func (b Bits) NextSet(from int) int {
	if from < 0 {
		from = 0
	}
	w := from >> 6
	if w >= len(b) {
		return -1
	}
	if word := b[w] >> (uint(from & 63)); word != 0 {
		return from + bits.TrailingZeros64(word)
	}
	for w++; w < len(b); w++ {
		if b[w] != 0 {
			return w<<6 + bits.TrailingZeros64(b[w])
		}
	}
	return -1
}

// OnesCount returns the number of set bits.
func (b Bits) OnesCount() int {
	n := 0
	for _, w := range b {
		n += bits.OnesCount64(w)
	}
	return n
}

// ShiftDown discards the lowest k bits, moving every remaining bit k
// positions toward zero and filling the top with zeros.  It implements
// the detector's window prune: dropping the k oldest slots renumbers
// the survivors without touching them individually.
func (b Bits) ShiftDown(k int) {
	if k <= 0 {
		return
	}
	words, rem := k>>6, uint(k&63)
	n := len(b)
	if words >= n {
		for i := range b {
			b[i] = 0
		}
		return
	}
	if rem == 0 {
		copy(b, b[words:])
	} else {
		for i := 0; i < n-words-1; i++ {
			b[i] = b[i+words]>>rem | b[i+words+1]<<(64-rem)
		}
		b[n-words-1] = b[n-1] >> rem
	}
	for i := n - words; i < n; i++ {
		b[i] = 0
	}
}

// Zero clears every word, keeping the storage.
func (b Bits) Zero() {
	for i := range b {
		b[i] = 0
	}
}
