package protocol_test

import (
	"testing"

	"repro/internal/protocol"
	"repro/internal/rng"

	_ "repro/internal/baseline" // register beb, aloha, genie, mw
	_ "repro/internal/core"     // register dba
	_ "repro/internal/nocd"     // register robust, unbounded
)

// TestRegistryComplete pins the full canonical axis: with every
// implementing package linked, the registry holds all seven protocols
// in axis order — the order sweep expansion (and so cell seed
// assignment) depends on.
func TestRegistryComplete(t *testing.T) {
	want := []string{"dba", "beb", "aloha", "genie", "mw", "robust", "unbounded"}
	names := protocol.Names()
	if len(names) != len(want) {
		t.Fatalf("Names() = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("Names() = %v, want %v", names, want)
		}
	}
	infos := protocol.Registered()
	if len(infos) != len(want) {
		t.Fatalf("Registered() returned %d infos, want %d", len(infos), len(want))
	}
	for i, info := range infos {
		if info.Name != want[i] {
			t.Errorf("Registered()[%d].Name = %q, want %q", i, info.Name, want[i])
		}
		if info.Summary == "" {
			t.Errorf("%s: empty summary", info.Name)
		}
		if info.CodedOnly && info.NoCDOnly {
			t.Errorf("%s: both CodedOnly and NoCDOnly", info.Name)
		}
	}
}

// TestRegistryPairingFlags pins the media-pairing flags the sweep skip
// rules consume.
func TestRegistryPairingFlags(t *testing.T) {
	for name, want := range map[string]struct{ coded, nocd bool }{
		"dba":       {true, false},
		"beb":       {false, false},
		"aloha":     {false, false},
		"genie":     {false, false},
		"mw":        {false, false},
		"robust":    {false, true},
		"unbounded": {false, true},
	} {
		info, ok := protocol.Lookup(name)
		if !ok {
			t.Errorf("Lookup(%q) missed", name)
			continue
		}
		if info.CodedOnly != want.coded || info.NoCDOnly != want.nocd {
			t.Errorf("%s: CodedOnly=%v NoCDOnly=%v, want %v %v",
				name, info.CodedOnly, info.NoCDOnly, want.coded, want.nocd)
		}
	}
	if _, ok := protocol.Lookup("tdma"); ok {
		t.Error("Lookup accepted an unknown name")
	}
}

// TestRegistryBuild constructs one instance of every protocol through
// the registry and checks each self-identifies and starts empty.
func TestRegistryBuild(t *testing.T) {
	for _, info := range protocol.Registered() {
		p := protocol.Build(info.Name, protocol.Params{
			Kappa: 8, Rand: rng.New(1), AlohaP: 0.01,
		})
		if p == nil {
			t.Fatalf("Build(%q) returned nil", info.Name)
		}
		if p.Name() == "" {
			t.Errorf("%s: instance has no name", info.Name)
		}
		if p.Pending() != 0 {
			t.Errorf("%s: fresh instance has %d pending", info.Name, p.Pending())
		}
	}
}

// TestRegisterRejects covers the registration guards.  Accepted
// registrations cannot be undone, so only the panicking paths are
// exercised; "dba" doubles as the duplicate case.
func TestRegisterRejects(t *testing.T) {
	build := func(protocol.Params) protocol.Protocol { return nil }
	for name, info := range map[string]protocol.Info{
		"empty name":    {Build: build},
		"nil build":     {Name: "beb"},
		"non-canonical": {Name: "tdma", Build: build},
		"duplicate":     {Name: "dba", Build: build},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: Register did not panic", name)
				}
			}()
			protocol.Register(info)
		}()
	}
	defer func() {
		if recover() == nil {
			t.Error("Build of an unknown protocol did not panic")
		}
	}()
	protocol.Build("tdma", protocol.Params{})
}
