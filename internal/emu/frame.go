package emu

import (
	"encoding/binary"
	"fmt"

	"repro/internal/channel"
)

// FrameType discriminates the emulation wire protocol's frames.  Each
// slot costs two round trips per station: the coordinator opens the
// slot barrier with Begin (carrying the slot's injection broadcast),
// stations answer with their Decide (owned transmitters), the
// coordinator adjudicates the slot on the medium and broadcasts
// Feedback, and stations answer with Report (replica backlog + next
// wake) so the coordinator can fast-forward exactly as the simulator
// would.
type FrameType uint8

const (
	// FrameHello is the first frame on a connection: station → coordinator.
	FrameHello FrameType = 1 + iota
	// FrameConfig answers Hello with the station's wire configuration
	// (JSON blob: protocol, effective κ, seeds, station count and index).
	FrameConfig
	// FrameBegin opens slot Slot: stations must inject the broadcast
	// packet batch [InjFirst, InjFirst+InjN) and answer with Decide.
	FrameBegin
	// FrameDecide carries the transmitters a station owns for slot Slot.
	FrameDecide
	// FrameFeedback broadcasts what every device hears about slot Slot:
	// silence, collision, and any decoding event.
	FrameFeedback
	// FrameReport answers Feedback with the replica's post-slot backlog
	// and, when the protocol declares wake-ups, its next wake slot.
	FrameReport
	// FrameDone ends the run; stations exit cleanly.
	FrameDone
	// FrameError aborts the run, carrying a diagnostic in Blob.  Either
	// side may send it.
	FrameError
)

// String names the frame type for diagnostics.
func (t FrameType) String() string {
	switch t {
	case FrameHello:
		return "hello"
	case FrameConfig:
		return "config"
	case FrameBegin:
		return "begin"
	case FrameDecide:
		return "decide"
	case FrameFeedback:
		return "feedback"
	case FrameReport:
		return "report"
	case FrameDone:
		return "done"
	case FrameError:
		return "error"
	}
	return fmt.Sprintf("FrameType(%d)", uint8(t))
}

// Frame is one emulation protocol message — a tagged union whose
// populated fields depend on Type.  Txs doubles as the Decide
// transmitter list and the Feedback event's delivered packets.
type Frame struct {
	Type FrameType
	Slot int64

	// Begin
	InjFirst int64
	InjN     int32

	// Decide (transmitters) / Feedback (event packets)
	Txs []channel.PacketID

	// Feedback
	Silent      bool
	Collision   bool
	HasEvent    bool
	EvSlot      int64
	WindowStart int64

	// Report
	Pending  int64
	HasWake  bool
	NextWake int64

	// Config (JSON) / Error (message text)
	Blob []byte
}

// Frame flag bits (Feedback and Report).
const (
	flagSilent    = 1 << 0
	flagCollision = 1 << 1
	flagHasEvent  = 1 << 2
	flagHasWake   = 1 << 3
)

// maxFrameList bounds decoded list and blob lengths: a corrupt or
// hostile length prefix must not drive an allocation.  2^26 packets is
// far above any slot's transmitter count at feasible scales.
const maxFrameList = 1 << 26

func appendU32(dst []byte, v uint32) []byte {
	return binary.LittleEndian.AppendUint32(dst, v)
}

func appendI64(dst []byte, v int64) []byte {
	return binary.LittleEndian.AppendUint64(dst, uint64(v))
}

// Append encodes the frame, appending to dst (which may be nil).
func (f *Frame) Append(dst []byte) []byte {
	dst = append(dst, byte(f.Type))
	switch f.Type {
	case FrameHello, FrameDone:
		// type byte only
	case FrameConfig, FrameError:
		dst = appendU32(dst, uint32(len(f.Blob)))
		dst = append(dst, f.Blob...)
	case FrameBegin:
		dst = appendI64(dst, f.Slot)
		dst = appendI64(dst, f.InjFirst)
		dst = appendU32(dst, uint32(f.InjN))
	case FrameDecide:
		dst = appendI64(dst, f.Slot)
		dst = appendU32(dst, uint32(len(f.Txs)))
		for _, id := range f.Txs {
			dst = appendI64(dst, int64(id))
		}
	case FrameFeedback:
		dst = appendI64(dst, f.Slot)
		var flags byte
		if f.Silent {
			flags |= flagSilent
		}
		if f.Collision {
			flags |= flagCollision
		}
		if f.HasEvent {
			flags |= flagHasEvent
		}
		dst = append(dst, flags)
		if f.HasEvent {
			dst = appendI64(dst, f.EvSlot)
			dst = appendI64(dst, f.WindowStart)
			dst = appendU32(dst, uint32(len(f.Txs)))
			for _, id := range f.Txs {
				dst = appendI64(dst, int64(id))
			}
		}
	case FrameReport:
		dst = appendI64(dst, f.Slot)
		dst = appendI64(dst, f.Pending)
		var flags byte
		if f.HasWake {
			flags |= flagHasWake
		}
		dst = append(dst, flags)
		if f.HasWake {
			dst = appendI64(dst, f.NextWake)
		}
	default:
		panic(fmt.Sprintf("emu: encoding unknown frame type %d", f.Type))
	}
	return dst
}

// decoder walks an encoded frame with bounds checking.
type decoder struct {
	b   []byte
	err error
}

func (d *decoder) u8() byte {
	if d.err != nil || len(d.b) < 1 {
		d.fail()
		return 0
	}
	v := d.b[0]
	d.b = d.b[1:]
	return v
}

func (d *decoder) u32() uint32 {
	if d.err != nil || len(d.b) < 4 {
		d.fail()
		return 0
	}
	v := binary.LittleEndian.Uint32(d.b)
	d.b = d.b[4:]
	return v
}

func (d *decoder) i64() int64 {
	if d.err != nil || len(d.b) < 8 {
		d.fail()
		return 0
	}
	v := int64(binary.LittleEndian.Uint64(d.b))
	d.b = d.b[8:]
	return v
}

func (d *decoder) fail() {
	if d.err == nil {
		d.err = fmt.Errorf("emu: truncated frame")
	}
}

// Decode parses an encoded frame into f, overwriting every field.  The
// Txs and Blob fields are freshly allocated (frames may outlive the
// receive buffer).
func (f *Frame) Decode(b []byte) error {
	*f = Frame{}
	d := decoder{b: b}
	f.Type = FrameType(d.u8())
	switch f.Type {
	case FrameHello, FrameDone:
	case FrameConfig, FrameError:
		n := d.u32()
		if d.err == nil && (n > maxFrameList || int(n) > len(d.b)) {
			return fmt.Errorf("emu: frame blob length %d exceeds payload", n)
		}
		if d.err == nil {
			f.Blob = append([]byte(nil), d.b[:n]...)
			d.b = d.b[n:]
		}
	case FrameBegin:
		f.Slot = d.i64()
		f.InjFirst = d.i64()
		f.InjN = int32(d.u32())
	case FrameDecide:
		f.Slot = d.i64()
		f.Txs = d.packetList()
	case FrameFeedback:
		f.Slot = d.i64()
		flags := d.u8()
		f.Silent = flags&flagSilent != 0
		f.Collision = flags&flagCollision != 0
		f.HasEvent = flags&flagHasEvent != 0
		if f.HasEvent {
			f.EvSlot = d.i64()
			f.WindowStart = d.i64()
			f.Txs = d.packetList()
		}
	case FrameReport:
		f.Slot = d.i64()
		f.Pending = d.i64()
		f.HasWake = d.u8()&flagHasWake != 0
		if f.HasWake {
			f.NextWake = d.i64()
		}
	default:
		return fmt.Errorf("emu: unknown frame type %d", f.Type)
	}
	if d.err != nil {
		return d.err
	}
	if len(d.b) != 0 {
		return fmt.Errorf("emu: %d trailing bytes after %s frame", len(d.b), f.Type)
	}
	return nil
}

func (d *decoder) packetList() []channel.PacketID {
	n := d.u32()
	if d.err != nil {
		return nil
	}
	if n > maxFrameList || int(n)*8 > len(d.b) {
		d.err = fmt.Errorf("emu: frame list length %d exceeds payload", n)
		return nil
	}
	ids := make([]channel.PacketID, n)
	for i := range ids {
		ids[i] = channel.PacketID(d.i64())
	}
	return ids
}
