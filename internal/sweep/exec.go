package sweep

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/adversary"
	"repro/internal/arrival"
	"repro/internal/jam"
	"repro/internal/medium"
	"repro/internal/protocol"
	"repro/internal/rng"
	"repro/internal/sim"

	// Protocols are built through the registry; these imports link every
	// implementing package so the axis (and Protocols above) is complete.
	_ "repro/internal/baseline"
	_ "repro/internal/core"
	_ "repro/internal/nocd"
)

const (
	defaultBurstWindow = 16384
	defaultAlohaP      = 0.001
)

// buildProtocol constructs the scenario's protocol through the registry
// with its own rng stream.  For dba, errCount receives the number of
// error epochs (Definition 2) observed over the run.
func (s *Spec) buildProtocol(sc Scenario, seed uint64, errCount *int64) protocol.Protocol {
	alohaP := s.AlohaP
	if alohaP == 0 {
		alohaP = defaultAlohaP
	}
	if _, ok := protocol.Lookup(sc.Protocol); !ok {
		panic(fmt.Sprintf("sweep: unknown protocol %q", sc.Protocol)) // Validate rejects these
	}
	return protocol.Build(sc.Protocol, protocol.Params{
		Kappa:  sc.Kappa,
		Rand:   rng.New(seed),
		AlohaP: alohaP,
		EpochObserver: protocol.EpochObserverFunc(func(info protocol.EpochInfo) {
			if info.Error {
				*errCount++
			}
		}),
	})
}

// buildArrival constructs the scenario's arrival process, mapping the
// uniform rate axis onto each kind's own parameter.
func (s *Spec) buildArrival(sc Scenario) arrival.Process {
	switch sc.Arrival {
	case "batch":
		n := s.BatchN
		if n == 0 {
			n = int(sc.Rate * float64(s.Horizon))
			if n < 1 {
				n = 1
			}
		}
		return &arrival.Batch{At: 0, N: n}
	case "bernoulli":
		return &arrival.Bernoulli{Rate: sc.Rate}
	case "poisson":
		return &arrival.Poisson{Lambda: sc.Rate}
	case "even":
		return arrival.NewEvenPaced(sc.Rate)
	case "burst":
		w := s.BurstWindow
		if w == 0 {
			w = defaultBurstWindow
		}
		per := int(sc.Rate * float64(w))
		if per < 1 {
			per = 1
		}
		return &arrival.WindowBurst{Window: w, PerWindow: per}
	}
	panic(fmt.Sprintf("sweep: unknown arrival %q", sc.Arrival))
}

// parseJammer decodes a jammer descriptor: "none" (or ""),
// "random:RATE", or "periodic:PERIOD/BURST".
func parseJammer(desc string) (jam.Jammer, error) {
	switch {
	case desc == "" || desc == "none":
		return nil, nil
	case strings.HasPrefix(desc, "random:"):
		// adversary.Random embeds jam.Random, so the adversary parser is
		// the single source of the rate validation for both axes.
		adv, err := adversary.Parse(desc)
		if err != nil {
			return nil, fmt.Errorf("sweep: bad jammer %q (want random:RATE with RATE in [0,1])", desc)
		}
		return &adv.(*adversary.Random).Random, nil
	case strings.HasPrefix(desc, "periodic:"):
		spec := desc[len("periodic:"):]
		slash := strings.IndexByte(spec, '/')
		if slash < 0 {
			return nil, fmt.Errorf("sweep: bad jammer %q (want periodic:PERIOD/BURST)", desc)
		}
		period, err1 := strconv.ParseInt(spec[:slash], 10, 64)
		burst, err2 := strconv.ParseInt(spec[slash+1:], 10, 64)
		if err1 != nil || err2 != nil || period < 1 || burst < 0 || burst > period {
			return nil, fmt.Errorf("sweep: bad jammer %q (want periodic:PERIOD/BURST with 0 ≤ BURST ≤ PERIOD)", desc)
		}
		return &jam.Periodic{Period: period, Burst: burst}, nil
	}
	return nil, fmt.Errorf("sweep: unknown jammer %q (want none, random:RATE, or periodic:PERIOD/BURST)", desc)
}

// buildMedium constructs the scenario's channel medium.  The coded
// model returns nil, selecting the engine's default construction from
// Kappa/MaxWindow; classical and capture media are built fresh per
// trial (media are stateful).
func buildMedium(sc Scenario) medium.Medium {
	if sc.Model == "coded" {
		return nil
	}
	m, err := medium.New(sc.Model, sc.Kappa, 0)
	if err != nil {
		panic(err) // Validate rejects unknown models
	}
	return m
}

// config builds the engine configuration for one trial of a cell.
// Adversaries are stateful, so each trial parses its own fresh instance
// from the cell's descriptor.
func (s *Spec) config(sc Scenario, seed uint64) sim.Config {
	jammer, err := parseJammer(sc.Jammer)
	if err != nil {
		panic(err) // Validate rejects bad descriptors
	}
	adv, err := adversary.Parse(sc.Adversary)
	if err != nil {
		panic(err) // Validate rejects bad descriptors
	}
	return sim.Config{
		Kappa:      sc.Kappa,
		MaxWindow:  s.MaxWindow,
		Horizon:    s.Horizon,
		Drain:      !s.NoDrain,
		DrainLimit: s.DrainLimit,
		Seed:       seed,
		// Latency retention is bounded (a seeded reservoir), not the
		// former unconditional full-history tracking whose O(arrivals)
		// allocation dominated large-horizon sweeps.
		LatencySamples: s.LatencySamples,
		Jammer:         jammer,
		Adversary:      adv,
		Medium:         buildMedium(sc),
		// Workers is result-neutral (bit-identical at any value), so it
		// rides outside the cell identity; see cellID.
		Workers: s.Workers,
	}
}
