package sim

import (
	"fmt"
	"testing"

	"repro/internal/adversary"
	"repro/internal/arrival"
	"repro/internal/channel"
	"repro/internal/jam"
	"repro/internal/medium"
	"repro/internal/protocol"
	"repro/internal/rng"

	_ "repro/internal/baseline" // register beb, aloha, genie, mw
	_ "repro/internal/core"     // register dba
	_ "repro/internal/nocd"     // register robust, unbounded
)

// arrivalProbe wraps the run's arrival process and listens to the same
// per-slot feedback devices hear, shadowing the engine's bookkeeping
// from outside: it derives the packet IDs the engine will assign (they
// are sequential in injection order), records each packet's inject
// slot, and retires packets as decoding events name them.  It is only
// sound when it is the run's sole injector (no adversary arrivals), in
// which case its view must agree exactly with the Result.
type arrivalProbe struct {
	inner arrival.Process
	t     *testing.T

	nextID   channel.PacketID
	inject   map[channel.PacketID]int64
	peak     int
	injected int64

	silent    int64
	events    int64
	delivered int64
}

func newArrivalProbe(t *testing.T, inner arrival.Process) *arrivalProbe {
	return &arrivalProbe{inner: inner, t: t, inject: make(map[channel.PacketID]int64)}
}

func (p *arrivalProbe) Name() string { return p.inner.Name() }

func (p *arrivalProbe) Injections(now int64, r *rng.Rand) int {
	n := p.inner.Injections(now, r)
	for i := 0; i < n; i++ {
		p.inject[p.nextID] = now
		p.nextID++
	}
	p.injected += int64(n)
	if len(p.inject) > p.peak {
		p.peak = len(p.inject)
	}
	return n
}

func (p *arrivalProbe) NextAfter(now int64) int64 { return p.inner.NextAfter(now) }

// ObserveSlot implements arrival.Observer: the probe hears every
// stepped slot and checks each delivery against its own ledger — a
// packet may only be delivered after it arrived, and only once.
func (p *arrivalProbe) ObserveSlot(fb channel.Feedback) {
	if fb.Silent {
		p.silent++
	}
	if fb.Event == nil {
		return
	}
	p.events++
	p.delivered += int64(len(fb.Event.Packets))
	for _, id := range fb.Event.Packets {
		at, ok := p.inject[id]
		if !ok {
			p.t.Errorf("slot %d: delivery of packet %d, which is not in flight (never injected, or delivered twice)", fb.Slot, id)
			continue
		}
		if fb.Slot < at {
			p.t.Errorf("packet %d delivered at slot %d before its arrival at %d", id, fb.Slot, at)
		}
		delete(p.inject, id)
	}
}

// checkResultInvariants holds any Result to the cross-protocol
// contract: packet conservation, slot-class accounting, and bound
// ordering — properties no protocol/medium/adversary combination may
// violate.
func checkResultInvariants(t *testing.T, res *Result) {
	t.Helper()
	if res.Arrivals != res.Delivered+int64(res.Pending) {
		t.Errorf("conservation: arrivals %d != delivered %d + pending %d",
			res.Arrivals, res.Delivered, res.Pending)
	}
	st := res.Channel
	if st.SilentSlots+st.GoodSlots+st.BadSlots != res.Elapsed {
		t.Errorf("slot accounting: silent %d + good %d + bad %d != elapsed %d",
			st.SilentSlots, st.GoodSlots, st.BadSlots, res.Elapsed)
	}
	if st.JammedSlots > st.BadSlots {
		t.Errorf("jammed slots %d exceed bad slots %d", st.JammedSlots, st.BadSlots)
	}
	if res.Delivered != st.Delivered {
		t.Errorf("deliveries: result %d, channel stats %d", res.Delivered, st.Delivered)
	}
	if st.Events > st.GoodSlots {
		t.Errorf("events %d exceed good slots %d", st.Events, st.GoodSlots)
	}
	if res.MaxBacklog > res.PeakInFlight {
		t.Errorf("backlog peak %d exceeds in-flight peak %d", res.MaxBacklog, res.PeakInFlight)
	}
	if int64(res.PeakInFlight) > res.Arrivals {
		t.Errorf("in-flight peak %d exceeds arrivals %d", res.PeakInFlight, res.Arrivals)
	}
	if res.Delivered > 0 {
		if res.FirstArrival < 0 || res.LastDelivery < res.FirstArrival {
			t.Errorf("delivery at %d before first arrival at %d", res.LastDelivery, res.FirstArrival)
		}
		if res.Latency.Min() < 1 {
			t.Errorf("latency %g below the 1-slot floor", res.Latency.Min())
		}
	}
}

// TestConformanceGrid drives every registered protocol through every
// channel model, adversary, and arrival shape in a compact grid, at
// Workers 0 and 4, and holds each run to the shared invariants — via
// the Result alone, and (when the run has no adversary injector) via an
// independent arrival-side probe that re-derives the bookkeeping from
// the feedback stream and must agree with the Result exactly.
func TestConformanceGrid(t *testing.T) {
	type advCase struct {
		name     string
		adaptive bool // needs truthful silence feedback
		injects  bool // adds arrivals the probe cannot see
		config   func(cfg *Config)
	}
	advs := []advCase{
		{"none", false, false, func(cfg *Config) {}},
		{"random-jam", false, false, func(cfg *Config) { cfg.Jammer = &jam.Random{Rate: 0.1} }},
		{"reactive", true, false, func(cfg *Config) { cfg.Adversary = adversary.NewReactive(2, 16) }},
		{"sigmarho", false, true, func(cfg *Config) { cfg.Adversary = adversary.NewSigmaRho(40, 0.05) }},
	}
	models := []string{"coded", "classical:ternary", "classical:none", "capture"}
	arrivals := []struct {
		name  string
		build func() arrival.Process
	}{
		{"batch", func() arrival.Process { return &arrival.Batch{At: 0, N: 120} }},
		{"bernoulli", func() arrival.Process { return &arrival.Bernoulli{Rate: 0.15} }},
	}

	for _, info := range protocol.Registered() {
		for _, model := range models {
			if info.CodedOnly && model != "coded" {
				continue
			}
			kappa := 8
			if model == "capture" {
				kappa = 4
			}
			for _, adv := range advs {
				// The engine itself rejects adaptive adversaries on
				// silence-masking media; mirror the sweep skip rule.
				if adv.adaptive && model == "classical:none" {
					continue
				}
				for _, arr := range arrivals {
					for _, workers := range []int{0, 4} {
						name := fmt.Sprintf("%s/%s/%s/%s/w%d", info.Name, model, adv.name, arr.name, workers)
						t.Run(name, func(t *testing.T) {
							t.Parallel()
							med, err := medium.New(model, kappa, 0)
							if err != nil {
								t.Fatal(err)
							}
							cfg := Config{
								Kappa:   med.Kappa(),
								Horizon: 2000,
								Drain:   true,
								Seed:    31,
								Workers: workers,
								Medium:  med,
							}
							adv.config(&cfg)
							proto := protocol.Build(info.Name, protocol.Params{
								Kappa: med.Kappa(), Rand: rng.New(41), AlohaP: 0.05,
							})
							var probe *arrivalProbe
							var process arrival.Process = arr.build()
							if !adv.injects {
								probe = newArrivalProbe(t, process)
								process = probe
							}
							res := Run(cfg, proto, process)
							checkResultInvariants(t, res)
							if probe == nil {
								return
							}
							if probe.injected != res.Arrivals {
								t.Errorf("probe saw %d arrivals, result %d", probe.injected, res.Arrivals)
							}
							if len(probe.inject) != res.Pending {
								t.Errorf("probe holds %d undelivered, result pending %d", len(probe.inject), res.Pending)
							}
							if probe.delivered != res.Delivered {
								t.Errorf("probe saw %d deliveries, result %d", probe.delivered, res.Delivered)
							}
							if probe.events != res.Channel.Events {
								t.Errorf("probe saw %d events, channel stats %d", probe.events, res.Channel.Events)
							}
							if probe.peak != res.PeakInFlight {
								t.Errorf("probe in-flight peak %d, result %d", probe.peak, res.PeakInFlight)
							}
							if probe.silent > res.Channel.SilentSlots {
								t.Errorf("probe heard %d silent slots, channel stats only %d",
									probe.silent, res.Channel.SilentSlots)
							}
						})
					}
				}
			}
		}
	}
}
