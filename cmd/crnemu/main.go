// Command crnemu runs a slot-synchronized real-network emulation of a
// contention-resolution scenario: every station is its own goroutine
// (or OS process) holding a full protocol replica, and a coordinator
// adjudicates each slot on the chosen channel model over a framed wire
// protocol (see internal/emu).  Over a lossless transport the emulation
// reproduces the simulator's Result exactly; -transport sim runs the
// plain simulator on the identical configuration and emits the same
// artifact, so the equivalence is checkable with cmp(1).
//
// Usage:
//
//	crnemu [-stations N] [-transport inproc|udp|sim] [-model M] [-protocol P] ...
//	crnemu -listen :9753 -stations 2 ...      # multi-process coordinator
//	crnemu -join HOST:9753                    # multi-process station
//
// Examples:
//
//	crnemu -protocol dba -kappa 8 -stations 4 -arrival batch -n 500
//	crnemu -transport udp -protocol beb -model classical:ternary -arrival bernoulli -rate 0.02 -horizon 20000
//	crnemu -transport udp -drop 0.01 -dup 0.01 -stats-interval 1s -protocol dba -kappa 8 -n 2000
//	crnemu -transport sim -protocol dba -kappa 8 -n 500 -json
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"repro/internal/emu"
	"repro/internal/sim"
)

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "crnemu: %v\n", err)
	os.Exit(1)
}

// artifact is the deterministic JSON the -json flag emits.  It carries
// the engine Result plus explicit latency aggregates (the Result's
// Summary/Reservoir fields are opaque to encoding/json), and nothing
// transport-dependent — so emulation and -transport sim artifacts for
// the same scenario are byte-comparable.
type artifact struct {
	Result  *sim.Result      `json:"result"`
	Latency *latencyArtifact `json:"latency,omitempty"`
}

type latencyArtifact struct {
	N    int64   `json:"n"`
	Mean float64 `json:"mean"`
	Min  float64 `json:"min"`
	Max  float64 `json:"max"`
	P50  float64 `json:"p50"`
	P90  float64 `json:"p90"`
	P99  float64 `json:"p99"`
}

func makeArtifact(res *sim.Result) artifact {
	a := artifact{Result: res}
	if res.Delivered > 0 && res.LatencySample != nil && res.LatencySample.Len() > 0 {
		a.Latency = &latencyArtifact{
			N:    res.Latency.N(),
			Mean: res.Latency.Mean(),
			Min:  res.Latency.Min(),
			Max:  res.Latency.Max(),
			P50:  res.LatencyQuantile(0.50),
			P90:  res.LatencyQuantile(0.90),
			P99:  res.LatencyQuantile(0.99),
		}
	}
	return a
}

func emitResult(res *sim.Result, asJSON bool) {
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		if err := enc.Encode(makeArtifact(res)); err != nil {
			fatal(err)
		}
		return
	}
	fmt.Printf("protocol:   %s\n", res.Protocol)
	fmt.Printf("arrivals:   %s (%d packets)\n", res.Arrival, res.Arrivals)
	fmt.Printf("channel:    %s κ=%d  good=%d bad=%d silent=%d jammed=%d events=%d\n",
		res.Medium, res.Kappa, res.Channel.GoodSlots, res.Channel.BadSlots,
		res.Channel.SilentSlots, res.Channel.JammedSlots, res.Channel.Events)
	fmt.Printf("delivered:  %d (pending %d) in %d slots\n", res.Delivered, res.Pending, res.Elapsed)
	fmt.Printf("throughput: %.4f (first arrival to last delivery)\n", res.CompletionThroughput())
	fmt.Printf("backlog:    max %d\n", res.MaxBacklog)
	if res.Delivered > 0 && res.LatencySample != nil {
		fmt.Printf("latency:    p50=%.0f p99=%.0f max=%.0f mean=%.1f slots\n",
			res.LatencyQuantile(0.50), res.LatencyQuantile(0.99),
			res.Latency.Max(), res.Latency.Mean())
	}
}

// statsLine renders one transport's counters the way the ticker and the
// final summary both print them.
func statsLine(label string, s emu.ConnStats) string {
	return fmt.Sprintf("%s frames=%d/%d bytes=%d/%d segs=%d/%d retrans=%d dup=%d faultDrop=%d faultDup=%d q=%d/%d rtt=%.2fms",
		label, s.FramesSent, s.FramesRecv, s.BytesSent, s.BytesRecv,
		s.SegsSent, s.SegsRecv, s.Retransmits, s.DupSegs,
		s.FaultDrops, s.FaultDups, s.SendQueue, s.RecvQueue, s.RTTMillis)
}

// watchStats prints per-link stats to stderr every interval until stop
// is closed.  Rates are derivable from successive cumulative lines.
func watchStats(interval time.Duration, links []emu.Transport, stop <-chan struct{}) {
	if interval <= 0 {
		return
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			for i, l := range links {
				fmt.Fprintln(os.Stderr, "crnemu: "+statsLine(fmt.Sprintf("station %d:", i), l.Stats()))
			}
		}
	}
}

func main() {
	model := flag.String("model", "coded", "channel model descriptor: coded[:K[/W]], classical[:none|binary|ternary], capture[:K]")
	protoName := flag.String("protocol", "dba", "protocol: dba, beb, aloha, genie, mw, robust, unbounded")
	kappa := flag.Int("kappa", 64, "decoding threshold κ when the model descriptor embeds none")
	arrivalName := flag.String("arrival", "batch", "arrival process: batch, bernoulli, poisson, even, burst")
	n := flag.Int("n", 10000, "batch size (arrival=batch)")
	rate := flag.Float64("rate", 0.5, "arrival rate (bernoulli/poisson/even) or window fill fraction (burst)")
	window := flag.Int("window", 16384, "burst window length (arrival=burst)")
	horizon := flag.Int64("horizon", 100000, "slots during which arrivals occur")
	drain := flag.Bool("drain", true, "keep running after the horizon until the system empties")
	seed := flag.Uint64("seed", 1, "random seed")
	alohaP := flag.Float64("aloha-p", 0.001, "static ALOHA transmission probability (protocol=aloha)")
	adversaryDesc := flag.String("adversary", "none", "adversary: none, random:RATE, burst:B/GAP, reactive:TRIGGER/BURST, sigmarho:SIGMA/RHO")
	latencySamples := flag.Int("latency-samples", 0, "latency reservoir capacity for quantiles (0 = default, -1 = off)")

	stations := flag.Int("stations", 4, "number of stations packets are partitioned over")
	transport := flag.String("transport", "inproc", "swarm transport: inproc, udp (loopback), or sim (plain simulator, same artifact)")
	listenAddr := flag.String("listen", "", "coordinate a multi-process run on this UDP address (host:port) instead of swarm mode")
	joinAddr := flag.String("join", "", "run as one station joining the coordinator at this UDP address")
	dropRate := flag.Float64("drop", 0, "inject: drop each outgoing datagram with this probability (UDP)")
	dupRate := flag.Float64("dup", 0, "inject: duplicate each outgoing datagram with this probability (UDP)")
	faultSeed := flag.Uint64("fault-seed", 1, "seed of the fault-injection stream")
	slotTimeout := flag.Duration("slot-timeout", 10*time.Second, "coordinator patience per station per slot barrier")
	statsInterval := flag.Duration("stats-interval", 0, "print live per-connection transport stats to stderr at this period (0 = off)")
	asJSON := flag.Bool("json", false, "emit the run artifact as JSON on stdout")
	flag.Parse()

	fault := emu.Fault{DropRate: *dropRate, DupRate: *dupRate, Seed: *faultSeed}
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()

	// Station process: join the coordinator and obey its slot barrier.
	if *joinAddr != "" {
		t, err := emu.DialUDP(*joinAddr, fault)
		if err != nil {
			fatal(err)
		}
		defer t.Close()
		stop := make(chan struct{})
		go watchStats(*statsInterval, []emu.Transport{t}, stop)
		err = emu.RunStation(t, 2*(*slotTimeout))
		close(stop)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintln(os.Stderr, "crnemu: "+statsLine("station done:", t.Stats()))
		return
	}

	cfg := emu.Config{
		Protocol:       *protoName,
		Medium:         *model,
		Kappa:          *kappa,
		Arrival:        *arrivalName,
		Rate:           *rate,
		BatchN:         *n,
		BurstWindow:    *window,
		AlohaP:         *alohaP,
		Adversary:      *adversaryDesc,
		Horizon:        *horizon,
		Drain:          *drain,
		Seed:           *seed,
		LatencySamples: *latencySamples,
		Stations:       *stations,
		Transport:      *transport,
		Fault:          fault,
		SlotTimeout:    *slotTimeout,
	}
	// Reference mode: the simulator on the identical configuration,
	// emitting the identical artifact — the cmp target for the
	// lossless-equals-simulator gate.
	if *transport == "sim" {
		res, err := emu.SimReference(cfg)
		if err != nil {
			fatal(err)
		}
		emitResult(res, *asJSON)
		return
	}

	// Establish the station links, spawning local stations per mode.
	var links []emu.Transport
	var wg sync.WaitGroup
	stationErrs := make([]error, cfg.Stations)
	spawn := func(i int, t emu.Transport) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer t.Close()
			stationErrs[i] = emu.RunStation(t, 2*(*slotTimeout))
		}()
	}
	switch {
	case *listenAddr != "":
		ln, err := emu.ListenUDP(*listenAddr, fault)
		if err != nil {
			fatal(err)
		}
		defer ln.Close()
		fmt.Fprintf(os.Stderr, "crnemu: coordinating on %s, waiting for %d stations\n", ln.Addr(), cfg.Stations)
		for i := 0; i < cfg.Stations; i++ {
			t, err := ln.Accept(*slotTimeout * 6)
			if err != nil {
				fatal(fmt.Errorf("accepting station %d/%d: %w", i+1, cfg.Stations, err))
			}
			fmt.Fprintf(os.Stderr, "crnemu: station %d joined\n", i)
			links = append(links, t)
		}
	case *transport == "inproc":
		for i := 0; i < cfg.Stations; i++ {
			a, b := emu.NewPipe()
			links = append(links, a)
			spawn(i, b)
		}
	case *transport == "udp":
		ln, err := emu.ListenUDP("127.0.0.1:0", fault)
		if err != nil {
			fatal(err)
		}
		defer ln.Close()
		for i := 0; i < cfg.Stations; i++ {
			stFault := fault
			if fault.DropRate > 0 || fault.DupRate > 0 {
				stFault.Seed = fault.Seed ^ (0xbf58476d1ce4e5b9 * uint64(i+1))
			}
			t, err := emu.DialUDP(ln.Addr(), stFault)
			if err != nil {
				fatal(err)
			}
			spawn(i, t)
		}
		for i := 0; i < cfg.Stations; i++ {
			t, err := ln.Accept(*slotTimeout)
			if err != nil {
				fatal(fmt.Errorf("accepting station %d/%d: %w", i+1, cfg.Stations, err))
			}
			links = append(links, t)
		}
	default:
		fatal(fmt.Errorf("unknown transport %q (want inproc, udp, or sim)", *transport))
	}

	stop := make(chan struct{})
	go watchStats(*statsInterval, links, stop)
	res, err := emu.Coordinate(ctx, cfg, links)
	close(stop)
	for i, l := range links {
		if err == nil {
			// Let the final Done frames be acknowledged before teardown so
			// lossy links do not orphan their station.
			deadline := time.Now().Add(2 * time.Second)
			for l.Stats().SendQueue > 0 && time.Now().Before(deadline) {
				time.Sleep(2 * time.Millisecond)
			}
		}
		fmt.Fprintln(os.Stderr, "crnemu: "+statsLine(fmt.Sprintf("station %d:", i), l.Stats()))
		l.Close()
	}
	wg.Wait()
	if err != nil {
		fatal(err)
	}
	for i, serr := range stationErrs {
		if serr != nil {
			fmt.Fprintf(os.Stderr, "crnemu: station %d: %v\n", i, serr)
		}
	}
	emitResult(res, *asJSON)
}
