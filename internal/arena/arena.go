// Package arena provides a dense, page-recycling replacement for the
// map[int64]V bookkeeping on the engine's hot path.
//
// The engine assigns packet IDs sequentially, delivers them in bursts,
// and frees their state on delivery (PR 4's backlog-bounded memory
// contract).  That access pattern — dense monotone keys, a live span
// that slides forward — is pathological for Go's hash maps (every
// lookup re-hashes, every delete tombstones) but ideal for a paged
// array: a key indexes directly into a fixed-size page, occupancy is
// one bit, and pages whose entries have all been deleted return to a
// free list so memory tracks the live key span, never total arrivals.
//
// The direct-indexed page table covers a window of at most
// maxSpanPages pages around the live keys; keys landing outside a
// window that cannot be re-anchored (possible only for key sets
// spanning more than ~2²⁵ values — fuzzers and adversarial tests, not
// the engine's sequential IDs) fall back to a page-granular overflow
// map, keeping every operation correct at hash-lookup speed while the
// dense window keeps the hot path at array speed.
//
// Index is not safe for concurrent use, matching the structures it
// replaces.
package arena

import (
	"math/bits"
	"sort"
)

const (
	pageBits = 9
	// PageSize is the number of key slots per page.  512 entries keeps a
	// page of small values within a few KiB — large enough to amortize
	// the indirection, small enough that a sparse key set does not
	// strand much memory per touched page.
	PageSize = 1 << pageBits
	pageMask = PageSize - 1

	// maxSpanPages bounds the direct-indexed page table: 2¹⁶ pages is a
	// 512 KiB table covering a 2²⁵-key dense span — far beyond any
	// in-flight backlog the engine produces, small enough that the
	// table itself can never become the memory story.
	maxSpanPages = 1 << 16
)

// page holds one aligned block of PageSize key slots: an occupancy
// bitmap, the values, and a live count so a fully-vacated page can be
// recycled in O(1).
type page[V any] struct {
	occ  [PageSize / 64]uint64
	live int
	vals [PageSize]V
}

// Index maps int64 keys to values of type V.  The zero value is an
// empty index ready for use.  Lookups and updates are O(1); memory is
// proportional to the number of pages holding live keys.
//
// Values should be pointer-free (the structures this package replaces
// all are): a deleted slot's value is zeroed, but recycled pages keep
// their backing arrays alive, so pointer-bearing values would still
// pin one page's worth of garbage per free-list entry.
type Index[V any] struct {
	basePage int64 // page number (key >> pageBits) of pages[0]
	pages    []*page[V]
	over     map[int64]*page[V] // pages outside the dense window, by page number
	free     []*page[V]
	n        int
}

// Len returns the number of live entries.
func (x *Index[V]) Len() int { return x.n }

// locate returns the page and in-page slot for key, or a nil page when
// the key's page is not mapped.
func (x *Index[V]) locate(key int64) (*page[V], int64) {
	pi := (key >> pageBits) - x.basePage
	if pi >= 0 && pi < int64(len(x.pages)) {
		return x.pages[pi], key & pageMask
	}
	if x.over != nil {
		return x.over[key>>pageBits], key & pageMask
	}
	return nil, key & pageMask
}

// Get returns the value stored under key.
func (x *Index[V]) Get(key int64) (V, bool) {
	p, s := x.locate(key)
	if p == nil || p.occ[s>>6]&(1<<uint(s&63)) == 0 {
		var zero V
		return zero, false
	}
	return p.vals[s], true
}

// Has reports whether key is present.
func (x *Index[V]) Has(key int64) bool {
	p, s := x.locate(key)
	return p != nil && p.occ[s>>6]&(1<<uint(s&63)) != 0
}

// Put stores v under key, inserting or overwriting.
func (x *Index[V]) Put(key int64, v V) { x.Swap(key, v) }

// Swap stores v under key and returns the previous value, if any.
func (x *Index[V]) Swap(key int64, v V) (V, bool) {
	p, s := x.ensure(key)
	w, b := s>>6, uint64(1)<<uint(s&63)
	if p.occ[w]&b != 0 {
		old := p.vals[s]
		p.vals[s] = v
		return old, true
	}
	p.occ[w] |= b
	p.live++
	x.n++
	p.vals[s] = v
	var zero V
	return zero, false
}

// Delete removes key, returning the value it held.  A page whose last
// entry is deleted moves to the free list immediately.
func (x *Index[V]) Delete(key int64) (V, bool) {
	kp := key >> pageBits
	pi := kp - x.basePage
	inWindow := pi >= 0 && pi < int64(len(x.pages))
	var p *page[V]
	if inWindow {
		p = x.pages[pi]
	} else if x.over != nil {
		p = x.over[kp]
	}
	var zero V
	if p == nil {
		return zero, false
	}
	s := key & pageMask
	w, b := s>>6, uint64(1)<<uint(s&63)
	if p.occ[w]&b == 0 {
		return zero, false
	}
	v := p.vals[s]
	p.vals[s] = zero
	p.occ[w] &^= b
	p.live--
	x.n--
	if p.live == 0 {
		if inWindow {
			x.pages[pi] = nil
		} else {
			delete(x.over, kp)
		}
		x.free = append(x.free, p)
	}
	return v, true
}

// ensure returns the page for key, mapping it if necessary: from the
// dense window when the key fits (re-anchoring the window to the live
// span first), from the overflow map otherwise.
func (x *Index[V]) ensure(key int64) (*page[V], int64) {
	kp := key >> pageBits
	s := key & pageMask
	pi := kp - x.basePage
	if pi >= 0 && pi < int64(len(x.pages)) {
		if p := x.pages[pi]; p != nil {
			return p, s
		}
		p := x.newPage()
		x.pages[pi] = p
		return p, s
	}
	if p := x.over[kp]; p != nil {
		return p, s
	}
	if x.fitWindow(kp) {
		p := x.newPage()
		x.pages[kp-x.basePage] = p
		return p, s
	}
	if x.over == nil {
		x.over = make(map[int64]*page[V])
	}
	p := x.newPage()
	x.over[kp] = p
	return p, s
}

// fitWindow tries to re-anchor the dense window so page kp indexes into
// it, trimming vacated edge pages first so a sliding key window (the
// engine's sequential IDs) reuses a bounded page table.  It reports
// false when the live span plus kp would exceed maxSpanPages.
func (x *Index[V]) fitWindow(kp int64) bool {
	lo, hi := 0, len(x.pages)
	for lo < hi && x.pages[lo] == nil {
		lo++
	}
	for hi > lo && x.pages[hi-1] == nil {
		hi--
	}
	if lo == hi {
		// Window fully vacated: restart it at kp.
		x.pages = append(x.pages[:0], nil)
		x.basePage = kp
		return true
	}
	base := x.basePage + int64(lo)
	top := x.basePage + int64(hi) // exclusive
	newBase, newTop := base, top
	if kp < newBase {
		newBase = kp
	}
	if kp+1 > newTop {
		newTop = kp + 1
	}
	if newTop-newBase > maxSpanPages {
		return false
	}
	if newBase == x.basePage {
		// Pure top growth: extend in place (amortized append, bounded
		// by maxSpanPages).
		x.pages = x.pages[:hi]
		for int64(len(x.pages)) < newTop-x.basePage {
			x.pages = append(x.pages, nil)
		}
		return true
	}
	span := newTop - newBase
	dst := make([]*page[V], span)
	copy(dst[base-newBase:], x.pages[lo:hi])
	x.pages = dst
	x.basePage = newBase
	return true
}

// newPage takes a page from the free list or allocates one.
func (x *Index[V]) newPage() *page[V] {
	if n := len(x.free); n > 0 {
		p := x.free[n-1]
		x.free[n-1] = nil
		x.free = x.free[:n-1]
		return p
	}
	return new(page[V])
}

// Reset empties the index, recycling every mapped page.
func (x *Index[V]) Reset() {
	for i, p := range x.pages {
		if p == nil {
			continue
		}
		if p.live > 0 {
			*p = page[V]{}
		}
		x.free = append(x.free, p)
		x.pages[i] = nil
	}
	for kp, p := range x.over {
		if p.live > 0 {
			*p = page[V]{}
		}
		x.free = append(x.free, p)
		delete(x.over, kp)
	}
	x.pages = x.pages[:0]
	x.basePage = 0
	x.n = 0
}

// Pages returns the number of currently mapped pages (diagnostics and
// memory-bound tests).
func (x *Index[V]) Pages() int {
	n := len(x.over)
	for _, p := range x.pages {
		if p != nil {
			n++
		}
	}
	return n
}

// Range calls f for every live entry until f returns false.  Iteration
// order is ascending by key.
func (x *Index[V]) Range(f func(key int64, v V) bool) {
	if len(x.over) == 0 {
		for pi, p := range x.pages {
			if p != nil && !rangePage(x.basePage+int64(pi), p, f) {
				return
			}
		}
		return
	}
	// Overflow pages present: merge both sources in page-number order.
	kps := make([]int64, 0, len(x.over)+len(x.pages))
	for kp := range x.over {
		kps = append(kps, kp)
	}
	for pi, p := range x.pages {
		if p != nil {
			kps = append(kps, x.basePage+int64(pi))
		}
	}
	sort.Slice(kps, func(i, j int) bool { return kps[i] < kps[j] })
	for _, kp := range kps {
		p := x.over[kp]
		if p == nil {
			p = x.pages[kp-x.basePage]
		}
		if !rangePage(kp, p, f) {
			return
		}
	}
}

func rangePage[V any](kp int64, p *page[V], f func(key int64, v V) bool) bool {
	base := kp << pageBits
	for w, word := range p.occ {
		for word != 0 {
			s := int64(w<<6) + int64(bits.TrailingZeros64(word))
			if !f(base+s, p.vals[s]) {
				return false
			}
			word &= word - 1
		}
	}
	return true
}
