package emu

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/channel"
)

// frameCases is one frame of every type with representative field use.
func frameCases() []Frame {
	return []Frame{
		{Type: FrameHello},
		{Type: FrameConfig, Blob: []byte(`{"protocol":"dba","kappa":8}`)},
		{Type: FrameBegin, Slot: 7, InjFirst: 120, InjN: 3},
		{Type: FrameBegin, Slot: 0},
		{Type: FrameDecide, Slot: 7, Txs: []channel.PacketID{120, 121, 5}},
		{Type: FrameDecide, Slot: 9},
		{Type: FrameFeedback, Slot: 7, Silent: true},
		{Type: FrameFeedback, Slot: 8, Collision: true},
		{Type: FrameFeedback, Slot: 12, HasEvent: true, EvSlot: 12, WindowStart: 4,
			Txs: []channel.PacketID{1, 2, 3, 4}},
		{Type: FrameFeedback, Slot: 13, HasEvent: true, EvSlot: 13, WindowStart: 13},
		{Type: FrameReport, Slot: 12, Pending: 42},
		{Type: FrameReport, Slot: 12, Pending: 1, HasWake: true, NextWake: 99},
		{Type: FrameDone},
		{Type: FrameError, Blob: []byte("replica divergence at slot 3")},
	}
}

func TestFrameRoundTrip(t *testing.T) {
	for _, f := range frameCases() {
		buf := f.Append(nil)
		var got Frame
		if err := got.Decode(buf); err != nil {
			t.Fatalf("%s: decode: %v", f.Type, err)
		}
		// Empty lists may decode as nil or empty; compare them as equal.
		want := f
		if len(want.Txs) == 0 && len(got.Txs) == 0 {
			want.Txs, got.Txs = nil, nil
		}
		if len(want.Blob) == 0 && len(got.Blob) == 0 {
			want.Blob, got.Blob = nil, nil
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: round trip mismatch:\n got %+v\nwant %+v", f.Type, got, want)
		}
		// Appending to a non-empty prefix must not disturb the prefix.
		pre := append([]byte("prefix"), f.Append(nil)...)
		if !bytes.Equal(pre[6:], buf) {
			t.Errorf("%s: Append to prefix differs from fresh encode", f.Type)
		}
	}
}

func TestFrameDecodeRejectsCorruption(t *testing.T) {
	for _, f := range frameCases() {
		buf := f.Append(nil)
		// Every strict prefix is truncated and must fail.
		for cut := 0; cut < len(buf); cut++ {
			var got Frame
			if err := got.Decode(buf[:cut]); err == nil {
				t.Fatalf("%s: truncation to %d/%d bytes decoded", f.Type, cut, len(buf))
			}
		}
		// Trailing garbage must fail.
		var got Frame
		if err := got.Decode(append(append([]byte{}, buf...), 0xEE)); err == nil {
			t.Fatalf("%s: trailing byte accepted", f.Type)
		}
	}
	var got Frame
	if err := got.Decode([]byte{0xFF}); err == nil {
		t.Fatal("unknown frame type accepted")
	}
	if err := got.Decode(nil); err == nil {
		t.Fatal("empty buffer accepted")
	}
	// A hostile list length must be rejected before allocation.
	hostile := []byte{byte(FrameDecide)}
	hostile = appendI64(hostile, 1)
	hostile = appendU32(hostile, 1<<31)
	if err := got.Decode(hostile); err == nil {
		t.Fatal("hostile list length accepted")
	}
}

// FuzzFrameDecode asserts the decoder never panics and that every frame
// it accepts re-encodes to the same bytes (decode∘encode fixed point).
func FuzzFrameDecode(f *testing.F) {
	for _, c := range frameCases() {
		f.Add(c.Append(nil))
	}
	f.Add([]byte{})
	f.Add([]byte{0xFF, 1, 2, 3})
	f.Fuzz(func(t *testing.T, b []byte) {
		var fr Frame
		if err := fr.Decode(b); err != nil {
			return
		}
		if got := fr.Append(nil); !bytes.Equal(got, b) {
			t.Fatalf("accepted frame re-encodes differently:\n in  %x\n out %x", b, got)
		}
	})
}
