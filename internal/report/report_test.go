package report

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tb := NewTable("Results", "name", "value", "ratio")
	tb.AddRow("alpha", 42, 0.12345)
	tb.AddRow("beta-long-name", 7, 1234.5678)
	out := tb.String()
	if !strings.Contains(out, "Results") {
		t.Fatal("title missing")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Fatalf("unexpected line count %d:\n%s", len(lines), out)
	}
	// Columns aligned: 'value' column starts at the same offset in all rows.
	hIdx := strings.Index(lines[1], "value")
	r1Idx := strings.Index(lines[3], "42")
	if hIdx != r1Idx {
		t.Fatalf("columns misaligned:\n%s", out)
	}
}

func TestFloatFormatting(t *testing.T) {
	cases := map[float64]string{
		0:         "0",
		3:         "3",
		1234.5678: "1234.6",
		0.12345:   "0.1235",
		0.00012:   "0.00012",
	}
	for in, want := range cases {
		if got := formatCell(in); got != want {
			t.Fatalf("formatCell(%v) = %q, want %q", in, got, want)
		}
	}
	if got := formatCell(float32(2)); got != "2" {
		t.Fatalf("float32 cell %q", got)
	}
	if got := formatCell("s"); got != "s" {
		t.Fatalf("string cell %q", got)
	}
	if got := formatCell(int64(9)); got != "9" {
		t.Fatalf("int cell %q", got)
	}
}

func TestWriteTo(t *testing.T) {
	tb := NewTable("T", "a")
	tb.AddRow(1)
	var buf bytes.Buffer
	if _, err := tb.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(buf.String(), "\n\n") {
		t.Fatal("WriteTo should end with a blank line")
	}
}

func TestCSV(t *testing.T) {
	tb := NewTable("T", "a", "b")
	tb.AddRow("x,y", `quote"inside`)
	tb.AddRow(1, 2)
	csv := tb.CSV()
	want := "a,b\n\"x,y\",\"quote\"\"inside\"\n1,2\n"
	if csv != want {
		t.Fatalf("CSV = %q, want %q", csv, want)
	}
}

func TestSaveCSV(t *testing.T) {
	dir := t.TempDir()
	tb := NewTable("T", "a")
	tb.AddRow(5)
	if err := tb.SaveCSV(filepath.Join(dir, "sub"), "test"); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "sub", "test.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "a\n5\n" {
		t.Fatalf("file contents %q", data)
	}
}

func TestRowsLongerThanHeader(t *testing.T) {
	tb := NewTable("T", "a")
	tb.AddRow(1, 2, 3)
	out := tb.String()
	if !strings.Contains(out, "3") {
		t.Fatalf("extra cells dropped:\n%s", out)
	}
}

func TestSeriesCSV(t *testing.T) {
	got := SeriesCSV("slot", "backlog", []int64{0, 5}, []float64{1, 2.5})
	want := "slot,backlog\n0,1\n5,2.5\n"
	if got != want {
		t.Fatalf("SeriesCSV = %q, want %q", got, want)
	}
}

func TestSeriesCSVMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch did not panic")
		}
	}()
	SeriesCSV("a", "b", []int64{1}, nil)
}

func TestSaveSeriesCSV(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sub", "trace.csv")
	if err := SaveSeriesCSV(path, "t", "v", []int64{1}, []float64{9}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "t,v\n1,9\n" {
		t.Fatalf("contents %q", data)
	}
}

func TestSaveFileAtomicReplaceAndNoDebris(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "artifact.json")
	if err := SaveFile(path, []byte("first")); err != nil {
		t.Fatal(err)
	}
	// Overwriting must fully replace the old content...
	if err := SaveFile(path, []byte("second, longer content")); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil || string(data) != "second, longer content" {
		t.Fatalf("contents %q, %v", data, err)
	}
	// ...and leave no temporary files behind (the rename is the commit).
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "artifact.json" {
		names := make([]string, len(entries))
		for i, e := range entries {
			names[i] = e.Name()
		}
		t.Fatalf("directory contents %v, want just artifact.json", names)
	}
	// Artifacts must be world-readable like the old non-atomic writers'.
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if perm := info.Mode().Perm(); perm&0o044 != 0o044 {
		t.Fatalf("artifact permissions %v not world-readable", perm)
	}
}

func TestSaveJSONCreatesParentsAtomically(t *testing.T) {
	path := filepath.Join(t.TempDir(), "a", "b", "out.json")
	if err := SaveJSON(path, map[string]int{"x": 1}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "{\n  \"x\": 1\n}\n" {
		t.Fatalf("contents %q", data)
	}
}
