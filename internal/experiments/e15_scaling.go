package experiments

import (
	"math"
	"strconv"

	"repro/internal/arrival"
	"repro/internal/asciiplot"
	"repro/internal/core"
	"repro/internal/report"
	"repro/internal/rng"
	"repro/internal/sim"
)

// E15Scaling probes the large-batch asymptotics of Theorem 16: the
// bound n(1+10/κ)+O(κ) says completion-time/n settles at (or below)
// 1+10/κ as n grows, the additive O(κ) term vanishing — measured
// completion/n in fact falls toward 1, inside the paper's loose
// constants.  This is the regime
// the engine's bounded bookkeeping exists for — per-packet state is
// freed on delivery (memory ∝ MaxBacklog) and latency retention is a
// fixed-size reservoir, so the batch axis scales to 10^6 packets and
// beyond; the peakInFlight column documents that the engine never
// retains more per-packet entries than the backlog peak.
func E15Scaling(scale Scale, seed uint64) *Output {
	out := &Output{
		ID:    "E15",
		Title: "large-batch scaling: completion/n → 1+10/κ",
		Claim: "Theorem 16 asymptotics: batch of n done by n(1+10/κ)+O(κ) whp ⇒ completion/n → 1+10/κ as n grows",
	}
	kappas := []int{16, 64}
	ns := []int{10_000, 100_000}
	if scale == Full {
		kappas = append(kappas, 256)
		ns = append(ns, 1_000_000)
	}
	trials := scale.pick(2, 3)

	tbl := report.NewTable("Batch completion vs n (mean over trials)",
		"kappa", "n", "completion", "completion/n", "limit 1+10/κ", "(completion-n)/n", "peakInFlight", "within bound")
	series := make(map[int]*asciiplot.Series, len(kappas))
	for _, kappa := range kappas {
		series[kappa] = &asciiplot.Series{Name: "k=" + strconv.Itoa(kappa)}
	}
	for _, kappa := range kappas {
		limit := 1 + 10/float64(kappa)
		for _, n := range ns {
			results := sim.RunTrials(trials, seed+uint64(kappa)*31+uint64(n), 0,
				func(trial int, s uint64) *sim.Result {
					return sim.Run(sim.Config{Kappa: kappa, Horizon: 1, Drain: true,
						DrainLimit: int64(8*n) + 1<<20, Seed: s},
						core.New(kappa, rng.New(s^0xE15)),
						&arrival.Batch{At: 0, N: n})
				})
			completion := sim.Aggregate(results, func(r *sim.Result) float64 {
				return float64(r.LastDelivery + 1)
			})
			peak := sim.Aggregate(results, func(r *sim.Result) float64 {
				return float64(r.PeakInFlight)
			})
			bound := float64(n)*limit + 4*float64(kappa)
			norm := completion.Mean() / float64(n)
			tbl.AddRow(kappa, n, completion.Mean(), norm, limit, norm-1,
				int64(peak.Max()), boolMark(completion.Max() <= bound))
			s := series[kappa]
			s.X = append(s.X, math.Log10(float64(n)))
			s.Y = append(s.Y, norm)
		}
	}
	out.Tables = append(out.Tables, tbl)

	plot := asciiplot.Plot{
		Title:  "Normalized batch completion vs log10(n)  (limit: 1+10/κ)",
		XLabel: "log10(n)", YLabel: "completion/n",
		Width: 60, Height: 14,
	}
	for _, kappa := range kappas {
		plot.Add(*series[kappa])
	}
	out.Plots = append(out.Plots, plot.Render())
	out.Notes = append(out.Notes,
		"completion/n falls toward 1 as n grows — inside the paper's 1+10/κ limit (loose constants), with the additive O(κ) term vanishing in the large-batch limit",
		"peakInFlight == n: the engine's per-packet bookkeeping peaks at the batch backlog and is freed on delivery (memory ∝ MaxBacklog, not arrivals)",
		"run at -scale full for the n=10^6 × κ ∈ {16,64,256} grid")
	return out
}
