package experiments

import (
	"fmt"
	"math"

	"repro/internal/arrival"
	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/protocol"
	"repro/internal/report"
	"repro/internal/rng"
	"repro/internal/sim"
)

// E11StableRate maps the stable-rate frontier: the highest Poisson
// arrival rate each protocol sustains without the backlog diverging.
// Poisson arrivals (not single-arrival Bernoulli) are essential: with at
// most one arrival per slot a queue never forms for protocols that
// deliver a lone packet immediately, and every protocol looks stable.
// The paper's framing: DBA delivers throughput 1−o(1), so it should stay
// stable at rates close to 1, while the classical protocols collapse
// near 1/e (ALOHA, multiplicative weights) or far below (exponential
// backoff, Θ(1/log n)).
func E11StableRate(scale Scale, seed uint64) *Output {
	out := &Output{
		ID:    "E11",
		Title: "stable-rate frontier under Poisson(λ) arrivals",
		Claim: "DBA stable at λ close to 1 (coded channel); ALOHA/MW collapse near 1/e ≈ 0.368; BEB earlier",
	}
	horizon := int64(scale.pick(60_000, 250_000))
	rates := []float64{0.20, 0.30, 0.35, 0.40, 0.50, 0.60, 0.70, 0.80, 0.90, 0.95}

	type proto struct {
		name  string
		kappa int
		build func(s uint64) protocol.Protocol
	}
	protos := []proto{
		{"dba κ=64", 64, func(s uint64) protocol.Protocol { return core.New(64, rng.New(s)) }},
		{"dba κ=256", 256, func(s uint64) protocol.Protocol { return core.New(256, rng.New(s)) }},
		{"genie-aloha", 1, func(s uint64) protocol.Protocol { return baseline.NewGenieAloha(rng.New(s), 1) }},
		{"mult-weights", 1, func(s uint64) protocol.Protocol {
			return baseline.NewMultiplicativeWeights(rng.New(s), baseline.DefaultMWConfig())
		}},
		{"exp-backoff", 1, func(s uint64) protocol.Protocol { return baseline.NewExponentialBackoff(rng.New(s)) }},
		{"poly-backoff(2)", 1, func(s uint64) protocol.Protocol { return baseline.NewPolynomialBackoff(rng.New(s), 2) }},
	}

	// Flatten the (protocol, rate) grid and run every cell in parallel.
	type cell struct {
		p proto
		r float64
	}
	var cells []cell
	for _, p := range protos {
		for _, r := range rates {
			cells = append(cells, cell{p, r})
		}
	}
	results := sim.RunTrials(len(cells), seed^0xE11, 0, func(i int, s uint64) *sim.Result {
		c := cells[i]
		return sim.Run(sim.Config{Kappa: c.p.kappa, Horizon: horizon, Seed: s},
			c.p.build(s^0xAB), &arrival.Poisson{Lambda: c.r})
	})

	// Stability: the backlog in the last fifth must not be much larger
	// than in the middle fifth, and the final backlog must be a small
	// fraction of total arrivals.
	stable := func(r *sim.Result) bool {
		mid := r.SegmentMeanBacklog(0.4, 0.6)
		late := r.SegmentMeanBacklog(0.8, 1.0)
		if late > 3*math.Max(mid, 32) {
			return false
		}
		return float64(r.Pending) < 0.1*float64(r.Arrivals)
	}

	header := []string{"protocol"}
	for _, r := range rates {
		header = append(header, fmt.Sprintf("λ=%.2f", r))
	}
	header = append(header, "max stable λ")
	tbl := report.NewTable("Stability grid (S = stable, - = diverging)", header...)
	for pi, p := range protos {
		row := make([]interface{}, 0, len(rates)+2)
		row = append(row, p.name)
		maxStable := 0.0
		for ri := range rates {
			res := results[pi*len(rates)+ri]
			if stable(res) {
				row = append(row, "S")
				maxStable = rates[ri]
			} else {
				row = append(row, "-")
			}
		}
		row = append(row, fmt.Sprintf("%.2f", maxStable))
		tbl.AddRow(row...)
	}
	out.Tables = append(out.Tables, tbl)
	out.Notes = append(out.Notes,
		fmt.Sprintf("1/e ≈ %.3f is the classical genie-ALOHA ceiling; the classical hard bounds are 0.568 (full sensing) and 0.530 (ack-based)", 1/math.E),
		"stability = late-window backlog ≤ 3× mid-window backlog (with a 32-packet floor) and final backlog < 10% of arrivals",
		"the frontier is monotone per protocol up to simulation noise; DBA's gap over every classical line is the paper's separation")
	return out
}
