package experiments

import (
	"fmt"
	"math"

	"repro/internal/arrival"
	"repro/internal/core"
	"repro/internal/report"
	"repro/internal/rng"
	"repro/internal/sim"
)

// E2Latency reproduces Theorem 15: under the Theorem 11 arrival
// condition, every packet is delivered within O(w·√κ·ln³w) slots whp.
// The harness measures the latency distribution (p50/p99/max) under the
// window-burst adversary and compares the maximum against the theorem's
// envelope; Ω(w) is unavoidable (a w-burst takes w slots to drain), so
// the interesting output is max-latency as a multiple of w.
func E2Latency(scale Scale, seed uint64) *Output {
	out := &Output{
		ID:    "E2",
		Title: "packet latency under adversarial arrivals",
		Claim: "Theorem 15: every packet delivered within O(w·√κ·ln³w) slots whp (Ω(w) unavoidable)",
	}
	tbl := report.NewTable("Latency distribution (slots), window-burst adversary",
		"kappa", "w", "rate", "packets", "p50", "p99", "max", "max/w", "bound(w√κ·ln³w)", "within bound")
	type cfg struct {
		kappa int
		w     int64
		rate  float64
	}
	cfgs := []cfg{
		{16, int64(scale.pick(4096, 16384)), 0.85},
		{64, int64(scale.pick(4096, 16384)), 0.85},
	}
	if scale == Full {
		cfgs = append(cfgs, cfg{256, 16384, 0.85})
	}
	trials := scale.pick(3, 5)
	for _, c := range cfgs {
		windows := int64(scale.pick(4, 8))
		horizon := windows * c.w
		perWindow := int(c.rate * float64(c.w))
		var p50, p99, mx, count float64
		results := sim.RunTrials(trials, seed+uint64(c.kappa)*7, 0, func(trial int, s uint64) *sim.Result {
			// Full scale delivers ~111k packets per trial — past the
			// default reservoir cap — so pin an explicit capacity that
			// keeps the reported p50/p99 exact at both scales.
			return sim.Run(sim.Config{Kappa: c.kappa, Horizon: horizon, Drain: true,
				Seed: s, LatencySamples: 1 << 17},
				core.New(c.kappa, rng.New(s^0xE2)),
				&arrival.WindowBurst{Window: c.w, PerWindow: perWindow})
		})
		allDelivered := true
		for _, r := range results {
			if r.Pending != 0 {
				allDelivered = false
			}
			p50 = math.Max(p50, r.LatencyQuantile(0.5))
			p99 = math.Max(p99, r.LatencyQuantile(0.99))
			mx = math.Max(mx, r.Latency.Max())
			count += float64(r.Delivered)
		}
		w := float64(c.w)
		bound := w * math.Sqrt(float64(c.kappa)) * math.Pow(math.Log(w), 3)
		tbl.AddRow(c.kappa, c.w, c.rate, int64(count/float64(trials)),
			p50, p99, mx, mx/w, bound, boolMark(mx <= bound && allDelivered))
		if !allDelivered {
			out.Notes = append(out.Notes,
				fmt.Sprintf("κ=%d: some packets undelivered at drain limit (starvation suspect)", c.kappa))
		}
	}
	out.Tables = append(out.Tables, tbl)
	out.Notes = append(out.Notes,
		"measured max latency is a small multiple of w — far inside the theorem envelope, as expected from loose constants",
		"no-starvation check: every injected packet delivered before the drain limit")
	return out
}
