// Package crn is a Go implementation of "Contention Resolution for Coded
// Radio Networks" (Bender, Gilbert, Kuhn, Kuszmaul, Médard — SPAA 2022,
// arXiv:2207.11824).
//
// The package provides:
//
//   - the Coded Radio Network Model: a slotted channel whose base station
//     decodes up to κ simultaneous transmissions via linear coding, with
//     decoding events defined exactly as in the paper's Definition 1;
//   - a pluggable channel-medium layer (internal/medium): the coded
//     channel, the classical collision channel with selectable
//     collision-detection feedback (none / binary / ternary), and a
//     jam-composing wrapper, all behind one allocation-free interface so
//     every protocol runs on every channel model;
//   - the Decodable Backoff Algorithm, the paper's contention-resolution
//     protocol achieving throughput 1 − Θ(1/ln κ);
//   - the classical baselines the paper compares against (binary
//     exponential backoff, slotted ALOHA, Chang–Jin–Pettie multiplicative
//     weights) — runnable on the channel they were designed for;
//   - adversarial and stochastic arrival processes, including the
//     sliding-window rate cap from the paper's theorems;
//   - a first-class adversary layer (internal/adversary): oblivious,
//     duty-cycled, and adaptive feedback-reactive jammers plus a
//     (σ,ρ)-bounded front-loading arrival adversary, composable into any
//     run via Config.Adversary and swept as a grid axis;
//   - a deterministic discrete-round simulation engine with a parallel
//     multi-trial runner;
//   - a slot-synchronized real-network emulation engine (internal/emu,
//     cmd/crnemu): stations as goroutines or OS processes speaking a
//     framed wire protocol over in-proc or reliable-UDP transports,
//     byte-identical to the simulator over a lossless link;
//   - a declarative scenario-sweep subsystem (internal/sweep) that
//     expands model × protocol × arrival × κ × rate × jammer × adversary
//     grids and executes every cell's trials in parallel;
//   - physical-layer substrates (GF(2^8) random linear network coding and
//     a ZigZag-style additive-collision decoder) grounding the model.
//
// # Quick start
//
//	proto := crn.NewDecodableBackoff(64, 1)      // κ = 64, seed 1
//	res := crn.Run(crn.Config{Kappa: 64, Horizon: 1, Drain: true, Seed: 2},
//	    proto, crn.NewBatch(10000))
//	fmt.Printf("throughput: %.3f\n", res.CompletionThroughput())
//
// # Channel models
//
// Config.Medium selects the channel model a run uses; nil picks the
// paper's coded channel.  The classical collision channel runs the
// baselines on the model they were designed for, with the
// collision-detection feedback variants the classical literature
// distinguishes:
//
//	res := crn.Run(crn.Config{Horizon: 1, Drain: true, Seed: 2,
//	    Medium: crn.NewClassicalMedium(crn.CDTernary)},
//	    crn.NewExponentialBackoff(1), crn.NewBatch(1000))
//
// The canonical way to name a channel model is the medium-descriptor
// grammar shared by every command's -model/-models flag and by sweep
// specs:
//
//	coded[:K[/W]] | classical[:none|binary|ternary] | capture[:K]
//
// ParseMedium parses a descriptor into a MediumSpec; MediumSpec.String
// round-trips the canonical form and MediumSpec.Build constructs the
// medium. The positional constructors above (NewCodedMedium,
// NewClassicalMedium, NewCaptureMedium, NewJammedMedium) are
// deprecated wrappers over this path and are retained for
// compatibility only.
//
// # Real-network emulation
//
// RunEmulation runs a scenario with every station a separate goroutine
// (or, via cmd/crnemu's -listen/-join, a separate OS process),
// synchronized slot by slot over a framed wire protocol — in-proc
// pipes, or real UDP under a reliable retransmitting layer with
// optional fault injection (EmuFault). Over a lossless transport the
// emulation's Result is byte-identical to the simulator's; see
// DESIGN.md §11:
//
//	res, err := crn.RunEmulation(ctx, crn.EmuConfig{
//	    Protocol: "dba", Kappa: 8,
//	    Arrival: "batch", BatchN: 2000, Horizon: 1, Drain: true,
//	    Seed: 1, Stations: 4, Transport: "udp",
//	})
//
// The long-running entry points — RunSweep, RunSweepShard,
// RunSweepWorker, AssembleSweep, RunEmulation — take a
// context.Context; cancellation lands between trials, cells, or slots,
// and completed sweep cells stay cached.
//
// # Scenario sweeps
//
// cmd/crnsweep runs whole grids of scenarios in parallel and emits
// per-cell aggregates (throughput, max backlog, latency quantiles,
// slot-class mix, error epochs) as aligned tables, CSV, and JSON:
//
//	crnsweep -protocols dba,beb -kappas 8,64 -rates 0.3,0.6 -trials 4
//	crnsweep -models coded,classical -protocols dba,beb,mw
//	crnsweep -spec sweep.json -json - -quiet
//	crnsweep -spec bench_spec.json -bench BENCH_sweep.json
//
// The JSON artifact is {"spec": ..., "cells": [...]} with cells in
// canonical expansion order and per-metric {mean, stddev, min, max}
// aggregates.  Artifacts are deterministic: the same spec and seed
// reproduce byte-identical bytes at any parallelism, so sweep results
// (and the BENCH_sweep.json benchmark artifact) are diffable across
// commits.
//
// Sweep execution is also sharded, cacheable, and resumable (DESIGN.md
// §6.2): -shard k/N runs a balanced slice of the grid and -merge
// reassembles shard artifacts byte-identically to an unsharded run,
// while -cache-dir/-resume persist completed cells as content-addressed
// records so an interrupted sweep re-executes only what is missing.
// The same machinery is exported here as RunSweep, RunSweepShard,
// MergeSweepShards, and OpenSweepCache.
//
// Distributed execution generalizes the cache into a shared store
// (DESIGN.md §6.3): cmd/crnserve serves a cell directory over HTTP, any
// number of crnsweep -worker processes drain the grid by claiming cells
// under advisory TTL leases, and -assemble reads the byte-identical
// grid back.  cmd/crnquery lists, filters, and diffs the resulting
// cells across runs and commits.  Exported here as SweepBackend,
// RunSweepWorker, AssembleSweep, NewSweepHTTPBackend, and
// NewSweepHTTPServer.
//
// cmd/experiments accepts -parallel to run the E1–E15
// reproduction harness concurrently and -json for the same
// machine-readable treatment; cmd/crnbench times the engine itself
// across a deterministic perf grid into BENCH_engine.json.
//
// See the examples directory for runnable programs and DESIGN.md for the
// system inventory and the §5 experiment index.
package crn
