// Package cache is a content-addressed JSON record store: each record
// is one file named by the caller-supplied identity (a hex digest of
// whatever makes the record's content deterministic), written atomically
// so a killed process never leaves a truncated record behind.  The sweep
// layer uses it to persist completed grid cells — a resumed or re-run
// sweep executes only the cells whose identities are missing.
//
// The store is deliberately dumb: it neither computes identities nor
// interprets records.  Identity computation (what invalidates what)
// belongs to the caller; see internal/sweep's cell-identity hash.
package cache

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/report"
)

// Store is a directory of content-addressed JSON records.
type Store struct {
	dir string
}

// Open returns a store rooted at dir, creating the directory if needed.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("cache: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("cache: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// validID gates record identities to lowercase-hex digests: ids become
// file names, so anything else (path separators, "..", empty) is a bug
// in the caller, not a cache miss.
func validID(id string) bool {
	if len(id) < 16 || len(id) > 128 {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// Path returns the file a record with the given identity lives at.
func (s *Store) Path(id string) string { return filepath.Join(s.dir, id+".json") }

// Get loads the record with the given identity into v.  A missing or
// undecodable record is a miss (false, nil) — a corrupt file is
// indistinguishable from an absent one by design, so a damaged cache
// degrades to re-execution rather than a failed run.  Only a malformed
// id or a real I/O error (permissions, not-a-file) is an error.
func (s *Store) Get(id string, v interface{}) (bool, error) {
	if !validID(id) {
		return false, fmt.Errorf("cache: malformed record id %q", id)
	}
	data, err := os.ReadFile(s.Path(id))
	if os.IsNotExist(err) {
		return false, nil
	}
	if err != nil {
		return false, fmt.Errorf("cache: %w", err)
	}
	if err := json.Unmarshal(data, v); err != nil {
		return false, nil // corrupt record = miss; Put will overwrite it
	}
	return true, nil
}

// Put stores v as the record with the given identity, atomically
// replacing any previous record.
func (s *Store) Put(id string, v interface{}) error {
	if !validID(id) {
		return fmt.Errorf("cache: malformed record id %q", id)
	}
	if err := report.SaveJSON(s.Path(id), v); err != nil {
		return fmt.Errorf("cache: %w", err)
	}
	return nil
}

// Len counts the records currently in the store.
func (s *Store) Len() (int, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return 0, fmt.Errorf("cache: %w", err)
	}
	n := 0
	for _, e := range entries {
		if !e.IsDir() && filepath.Ext(e.Name()) == ".json" {
			n++
		}
	}
	return n, nil
}
