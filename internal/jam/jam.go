// Package jam provides the legacy oblivious jammers: processes that
// spoil slots with noise energy.  Jamming is not part of the paper's
// model — the paper cites a separate literature for jamming-robust
// backoff (Awerbuch–Richa–Scheideler and successors) — but it is the
// natural failure-injection probe for a protocol whose two feedback
// signals are silence and decoding events: a jammed slot is audibly
// busy and contributes nothing to decoding windows.
//
// New work should prefer package adversary, the first-class adversary
// layer: it subsumes these jammers (adversary.FromJam adapts them, and
// adversary.Random / adversary.BurstGap are their ports) and adds
// feedback-reactive jamming and bursty arrival adversaries.  This
// package remains the stable home of sim.Config.Jammer and the sweep
// "jammers" axis.
package jam

import (
	"fmt"

	"repro/internal/rng"
)

// Jammer decides, slot by slot, whether noise energy occupies the slot.
type Jammer interface {
	// Name identifies the jammer in reports.
	Name() string
	// Jammed reports whether slot now is jammed.  The engine calls it
	// once per simulated slot in increasing order.
	Jammed(now int64, r *rng.Rand) bool
}

// None never jams.
type None struct{}

// Name implements Jammer.
func (None) Name() string { return "none" }

// Jammed implements Jammer.
func (None) Jammed(int64, *rng.Rand) bool { return false }

// Random jams each slot independently with probability Rate.
type Random struct {
	Rate float64
}

// Name implements Jammer.
func (j *Random) Name() string { return fmt.Sprintf("random(%.3f)", j.Rate) }

// Jammed implements Jammer.
func (j *Random) Jammed(now int64, r *rng.Rand) bool {
	return r.Bernoulli(j.Rate)
}

// Periodic jams Burst consecutive slots at the start of every Period
// slots — a duty-cycled jammer.
type Periodic struct {
	Period int64
	Burst  int64
}

// Name implements Jammer.
func (j *Periodic) Name() string { return fmt.Sprintf("periodic(%d/%d)", j.Burst, j.Period) }

// Jammed implements Jammer.
func (j *Periodic) Jammed(now int64, _ *rng.Rand) bool {
	if j.Period <= 0 {
		return false
	}
	return now%j.Period < j.Burst
}
