package medium

import (
	"repro/internal/adversary"
	"repro/internal/channel"
	"repro/internal/jam"
	"repro/internal/rng"
)

// Jammed composes a jamming adversary over an inner medium: a jammed
// slot is spoiled before the inner medium ever sees it.  A jammed slot
// is audibly busy (never silent) and decode-useless (never good), so it
// classifies as Bad regardless of the real transmitters; like any bad
// slot it does not break the inner detector's decoding windows, because
// the inner medium is simply not stepped.
//
// Jam decisions are keyed to the slot number: the jammer's rng stream is
// reseeded from (seed, slot) for every slot, so a randomized decision
// depends only on the slot being asked about, never on how many slots
// were stepped before it.  Adaptive jammers additionally hear every
// stepped slot's feedback through Observe (the wrapper forwards it after
// filling the caller's struct) and must follow the package adversary
// determinism contract: treat a gap in observed slots as silence, and
// key armed windows to slot numbers.  Together these keep the jam
// pattern aligned when the engine fast-forwards through idle stretches —
// a run takes the same jam pattern whether or not slots in between were
// skipped.  (Fast-forwarded stretches themselves are never consulted: an
// empty system ignores noise, so they stay accounted as silent.)
//
// The alignment guarantee assumes fast-forwarded slots really would
// have been silent, so an adaptive jammer must not be composed over an
// inner medium that itself spoils idle slots (another jam wrapper):
// densely stepped, the inner noise occupies slots the fast path treats
// as silence, and the adaptive state diverges.  sim.Run rejects that
// stacking (adaptive Config.Adversary over Config.Jammer).
type Jammed struct {
	inner  Medium
	jammer adversary.Jammer
	seed   uint64
	r      rng.Rand
	dup    dupCheck

	jammed     int64
	lastJammed bool
	last       channel.Feedback

	// collisionOnJam: to a device with ternary collision detection,
	// jamming energy is indistinguishable from a collision.
	collisionOnJam bool
}

var _ Medium = (*Jammed)(nil)

// Jam wraps inner with the given package-jam jammer, seeding the
// jammer's slot-keyed randomness from seed.  A nil jammer returns inner
// unchanged.  It is the legacy entry point; first-class adversaries use
// JamAdversary.
func Jam(inner Medium, j jam.Jammer, seed uint64) Medium {
	return JamAdversary(inner, adversary.FromJam(j), seed)
}

// JamAdversary wraps inner with a jamming adversary, seeding its
// slot-keyed randomness from seed.  The adversary hears every stepped
// slot's feedback through Observe, so adaptive jammers (e.g.
// adversary.Reactive) work unmodified.  A nil jammer returns inner
// unchanged.
func JamAdversary(inner Medium, j adversary.Jammer, seed uint64) Medium {
	if j == nil {
		return inner
	}
	cl, ok := inner.(*Classical)
	return &Jammed{
		inner:          inner,
		jammer:         j,
		seed:           seed,
		collisionOnJam: ok && cl.cd == CDTernary,
	}
}

// Name implements Medium.
func (m *Jammed) Name() string { return m.inner.Name() + "+jam:" + m.jammer.Name() }

// Kappa implements Medium.
func (m *Jammed) Kappa() int { return m.inner.Kappa() }

// Step implements Medium.
func (m *Jammed) Step(now int64, txs []channel.PacketID) (channel.SlotClass, *channel.Event) {
	// Slot-keyed reseed: SplitMix64 expansion decorrelates consecutive
	// slots, and the golden-ratio stride keeps seed^f(now) injective per
	// seed.
	m.r.Seed(m.seed ^ uint64(now)*0x9e3779b97f4a7c15)
	if m.jammer.Jams(now, &m.r) {
		// The inner detector never sees this slot, so enforce its
		// duplicate-transmitter invariant here: a protocol bug must not
		// hide behind the noise.
		m.dup.check(txs)
		m.jammed++
		m.lastJammed = true
		m.last = channel.Feedback{Slot: now, Collision: m.collisionOnJam}
		return channel.Bad, nil
	}
	m.lastJammed = false
	return m.inner.Step(now, txs)
}

// Feedback implements Medium.  The adversary hears the slot too — it is
// on the channel like any device — so the wrapper forwards the filled
// feedback to its Observe before returning.
func (m *Jammed) Feedback(fb *channel.Feedback) {
	if m.lastJammed {
		*fb = m.last
	} else {
		m.inner.Feedback(fb)
	}
	m.jammer.Observe(*fb)
}

// AddSilent implements Medium.
func (m *Jammed) AddSilent(n int64) { m.inner.AddSilent(n) }

// MasksSilence reports true: jamming energy can land on otherwise idle
// slots, so the composed feedback no longer exposes idleness truthfully
// (regardless of the inner medium's answer).  See medium.MasksSilence.
func (m *Jammed) MasksSilence() bool { return true }

// Stats implements Medium: the inner medium's counters plus the spoiled
// slots, which count as bad (and jammed) exactly as the engine's old
// inline accounting did.
func (m *Jammed) Stats() channel.Stats {
	st := m.inner.Stats()
	st.BadSlots += m.jammed
	st.JammedSlots += m.jammed
	return st
}

// Reset implements Medium, clearing the adversary's adaptive state along
// with the slot accounting.
func (m *Jammed) Reset() {
	m.inner.Reset()
	m.jammer.Reset()
	m.jammed = 0
	m.lastJammed = false
	m.last = channel.Feedback{}
}
