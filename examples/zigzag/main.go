// Zigzag: a physical-layer walkthrough of why the Coded Radio Network
// Model is realistic.  Two packets collide twice with different symbol
// offsets; the ZigZag decoder recovers both from the two collisions, and
// the random-linear-coding view shows the same two-slots-for-two-packets
// arithmetic as a 2×2 matrix inversion over GF(2^8).
package main

import (
	"fmt"

	"repro/internal/phy"
	"repro/internal/rlnc"
	"repro/internal/rng"
)

func main() {
	r := rng.New(42)

	// --- Part 1: ZigZag decoding at the symbol level ------------------
	const bits = 1000
	alice := phy.RandomBits(bits, r)
	bob := phy.RandomBits(bits, r)

	// Two hidden terminals collide twice; retransmission jitter gives the
	// two collisions different symbol offsets (3 and 41).
	c1 := phy.NewCollision(alice, bob, 1, 1, 3, 0.1, r)
	c2 := phy.NewCollision(alice, bob, 1, 1, 41, 0.1, r)

	fmt.Println("Part 1 — ZigZag decoding (Gollakota & Katabi 2008)")
	fmt.Printf("two %d-bit packets collide twice (offsets 3 and 41, SNR 14 dB)\n", bits)

	// Naive receiver: try to decode Alice straight out of collision 1.
	naive := phy.DemodulateBPSK(c1.Y[:bits], 1)
	fmt.Printf("  naive decode of collision 1: %4d/%d bit errors — packet lost\n",
		phy.BitErrors(alice, naive), bits)

	gotA, gotB, err := phy.ZigZagDecode(c1, c2, bits, bits)
	if err != nil {
		fmt.Println("  zigzag failed:", err)
		return
	}
	fmt.Printf("  zigzag decode:  Alice %d errors, Bob %d errors — both recovered\n",
		phy.BitErrors(alice, gotA), phy.BitErrors(bob, gotB))
	fmt.Println("  cost: 2 packets from 2 collision slots — same throughput as scheduling them apart")

	// --- Part 2: the same arithmetic as linear network coding ---------
	fmt.Println("\nPart 2 — random linear network coding over GF(2^8)")
	payloadA := []byte("the quick brown fox jumps over the lazy dog.....")
	payloadB := []byte("pack my box with five dozen liquor jugs!!!......")
	enc, err := rlnc.NewEncoder([][]byte{payloadA, payloadB})
	if err != nil {
		panic(err)
	}
	dec := rlnc.NewDecoder(2, len(payloadA))

	// Both packets broadcast together in two consecutive slots; the base
	// station receives two random linear combinations.
	for slot := 0; !dec.Complete(); slot++ {
		s, err := enc.Slot([]int{0, 1}, r)
		if err != nil {
			panic(err)
		}
		innovative := dec.Add(s)
		fmt.Printf("  slot %d: coefficients [%3d %3d]  innovative=%v rank=%d/2\n",
			slot, s.Coeffs[0], s.Coeffs[1], innovative, dec.Rank())
	}
	fmt.Printf("  decoded A: %q\n", dec.Decoded(0))
	fmt.Printf("  decoded B: %q\n", dec.Decoded(1))
	fmt.Println("\nBoth mechanisms realize the model's rule: j overlapping packets need j good slots.")
}
