// Comparison: race the Decodable Backoff Algorithm against the classical
// protocols on batch workloads and sustained load, reproducing the
// paper's headline separation — coded-channel throughput near 1 versus
// the classical 1/e-type ceilings.
package main

import (
	"fmt"
	"math"

	crn "repro"
)

func main() {
	const n = 5000

	fmt.Printf("Batch of %d packets — completion throughput\n\n", n)
	fmt.Printf("%-24s %8s %12s\n", "protocol", "κ", "throughput")

	type entry struct {
		name  string
		kappa int
		mk    func(seed uint64) crn.Protocol
	}
	entries := []entry{
		{"decodable-backoff", 16, func(s uint64) crn.Protocol { return crn.NewDecodableBackoff(16, s) }},
		{"decodable-backoff", 64, func(s uint64) crn.Protocol { return crn.NewDecodableBackoff(64, s) }},
		{"decodable-backoff", 256, func(s uint64) crn.Protocol { return crn.NewDecodableBackoff(256, s) }},
		{"genie-aloha", 1, func(s uint64) crn.Protocol { return crn.NewGenieAloha(s, 1) }},
		{"mult-weights (CJP)", 1, func(s uint64) crn.Protocol { return crn.NewMultiplicativeWeights(s) }},
		{"exponential backoff", 1, func(s uint64) crn.Protocol { return crn.NewExponentialBackoff(s) }},
	}
	for _, e := range entries {
		// Average over a few trials in parallel, deterministically seeded.
		results := crn.RunTrials(4, uint64(e.kappa)*1000+uint64(len(e.name)), 0,
			func(trial int, seed uint64) *crn.Result {
				return crn.Run(crn.Config{Kappa: e.kappa, Horizon: 1, Drain: true,
					DrainLimit: int64(n) * 64, Seed: seed},
					e.mk(seed^0xC0), crn.NewBatch(n))
			})
		var sum float64
		for _, r := range results {
			sum += r.CompletionThroughput()
		}
		fmt.Printf("%-24s %8d %12.4f\n", e.name, e.kappa, sum/float64(len(results)))
	}

	fmt.Printf("\nreference lines: 1/e ≈ %.4f (ALOHA ceiling), 0.568 (full-sensing bound), 0.530 (ack-based bound)\n\n", 1/math.E)

	// Sustained load: who survives λ = 0.6?
	fmt.Println("Sustained Poisson(0.6) for 100k slots — final backlog")
	sustained := []entry{
		{"decodable-backoff", 64, func(s uint64) crn.Protocol { return crn.NewDecodableBackoff(64, s) }},
		{"genie-aloha", 1, func(s uint64) crn.Protocol { return crn.NewGenieAloha(s, 1) }},
		{"mult-weights (CJP)", 1, func(s uint64) crn.Protocol { return crn.NewMultiplicativeWeights(s) }},
	}
	for _, e := range sustained {
		res := crn.Run(crn.Config{Kappa: e.kappa, Horizon: 100_000, Seed: 11},
			e.mk(12), crn.NewPoisson(0.6))
		verdict := "stable"
		if res.Pending > 1000 {
			verdict = "DIVERGING"
		}
		fmt.Printf("%-24s κ=%-4d backlog=%-8d %s\n", e.name, e.kappa, res.Pending, verdict)
	}
}
