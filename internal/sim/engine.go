package sim

import (
	"repro/internal/channel"
	"repro/internal/medium"
	"repro/internal/protocol"
)

// fanOutGrain is the transmitter-count threshold below which the staged
// engine runs its shard stages inline instead of fanning them out over
// worker goroutines: with only a few transmitters the per-slot
// synchronization would dwarf the work.  The decision is made from the
// previous slot's transmitter count and affects scheduling only —
// results are bit-identical either way, so the threshold is a pure
// performance knob.
const fanOutGrain = 1 << 14

// stepper abstracts how the slot loop talks to the protocol, so the
// serial reference path and the staged shard/step/reduce path share one
// loop (arrivals, medium step, delivery accounting, fast-forward) and
// can only differ in how the per-slot station work is scheduled.  The
// Partitioned contract makes both paths bit-identical.
type stepper interface {
	// step runs the slot's station work and medium step: prepare +
	// transmit-collect, then the medium consuming the transmitters.
	step(now int64, m medium.Medium) (channel.SlotClass, *channel.Event)
	// observe delivers the slot's feedback (stage: feedback fan-out +
	// reduce).
	observe(fb channel.Feedback)
	// pending returns the current backlog (stage: reduce accounting).
	pending() int
	// hasWaker reports whether nextWake is meaningful.
	hasWaker() bool
	// nextWake returns the protocol's next wake-up at or after now, or a
	// negative value if it will never transmit again unprompted.
	nextWake(now int64) int64
	// coastUntil returns the protocol's transmitter-freeze guarantee
	// (protocol.Coaster), or now when the protocol offers none.
	coastUntil(now int64) int64
}

// newStepper selects the execution path: the staged engine when the
// caller asked for workers and the protocol is Partitioned, the serial
// reference loop otherwise.
func newStepper(workers int, proto protocol.Protocol) stepper {
	if workers >= 1 {
		if p, ok := proto.(protocol.Partitioned); ok {
			st := &stagedStepper{
				p:       p,
				shards:  p.Shards(),
				workers: workers,
				bufs:    make([][]channel.PacketID, p.Shards()),
			}
			st.pw, _ = proto.(protocol.PartitionedWaker)
			st.co, _ = proto.(protocol.Coaster)
			st.fanFn = st.fan
			return st
		}
	}
	st := &serialStepper{proto: proto}
	st.waker, _ = proto.(protocol.Waker)
	st.co, _ = proto.(protocol.Coaster)
	return st
}

// serialStepper is the legacy reference path: the monolithic
// Transmitters/Observe cycle, single-threaded, with the medium consuming
// one flat transmitter list.
type serialStepper struct {
	proto protocol.Protocol
	waker protocol.Waker   // nil when the protocol has none
	co    protocol.Coaster // nil when the protocol has none
	txBuf []channel.PacketID
}

func (s *serialStepper) step(now int64, m medium.Medium) (channel.SlotClass, *channel.Event) {
	s.txBuf = s.proto.Transmitters(now, s.txBuf[:0])
	return m.Step(now, s.txBuf)
}

func (s *serialStepper) observe(fb channel.Feedback) { s.proto.Observe(fb) }
func (s *serialStepper) pending() int                { return s.proto.Pending() }
func (s *serialStepper) hasWaker() bool              { return s.waker != nil }
func (s *serialStepper) nextWake(now int64) int64    { return s.waker.NextWake(now) }

func (s *serialStepper) coastUntil(now int64) int64 {
	if s.co == nil {
		return now
	}
	return s.co.CoastUntil(now)
}

// stagedStepper runs the explicit shard/step/reduce cycle:
//
//	PrepareSlot → ShardTransmitters fan-out → medium step (pre-reduced
//	over the shard chunks when the medium is Sharded) → ShardObserve
//	fan-out → ReduceSlot → per-shard pending reduce
//
// with up to `workers` goroutines sweeping the fixed shard set when the
// slot is busy enough to pay for the synchronization.  Because the
// shard structure never depends on workers, and the Partitioned and
// medium.Sharded contracts pin the RNG stream, transmitter order, and
// slot outcome to the serial cycle, results are bit-identical at any
// worker count.
type stagedStepper struct {
	p       protocol.Partitioned
	pw      protocol.PartitionedWaker // nil when the protocol has none
	co      protocol.Coaster          // nil when the protocol has none
	shards  int
	workers int
	bufs    [][]channel.PacketID // per-shard transmit buffers, reused across slots
	flat    []channel.PacketID   // flatten buffer for non-Sharded media
	lastTx  int                  // previous slot's transmitter count (fan-out grain)
	fanFn   channel.FanOut       // bound once; handed to Sharded media
}

func (s *stagedStepper) step(now int64, m medium.Medium) (channel.SlotClass, *channel.Event) {
	s.p.PrepareSlot(now)
	if s.bufs[0] == nil {
		// First stepped slot: right-size the shard buffers from the
		// backlog already injected, so batch workloads pay one allocation
		// per shard instead of a doubling ladder as slots fill up.
		hint := s.p.Pending()/s.shards + 4
		for sh := range s.bufs {
			s.bufs[sh] = make([]channel.PacketID, 0, hint)
		}
	}
	if s.workers > 1 && s.lastTx >= fanOutGrain {
		ForEach(s.shards, s.workers, func(sh int) {
			s.bufs[sh] = s.p.ShardTransmitters(now, sh, s.bufs[sh][:0])
		})
	} else {
		// Inline sweep, same shard order: identical concatenation.
		for sh := 0; sh < s.shards; sh++ {
			s.bufs[sh] = s.p.ShardTransmitters(now, sh, s.bufs[sh][:0])
		}
	}
	total := 0
	for sh := 0; sh < s.shards; sh++ {
		total += len(s.bufs[sh])
	}
	s.lastTx = total
	// A Sharded medium consumes the chunks directly, running its
	// O(transmitters) pre-reduce over them; others get the flat list.
	if sm, ok := m.(medium.Sharded); ok {
		return sm.StepSharded(now, s.bufs, s.fanFn)
	}
	s.flat = s.flat[:0]
	for sh := 0; sh < s.shards; sh++ {
		s.flat = append(s.flat, s.bufs[sh]...)
	}
	return m.Step(now, s.flat)
}

// fan is the channel.FanOut handed to Sharded media: it applies the
// same grain rule as the shard stages, so small slots run inline and
// large ones use the worker pool.  Results never depend on the choice.
func (s *stagedStepper) fan(n int, f func(int)) {
	if s.workers > 1 && s.lastTx >= fanOutGrain {
		ForEach(n, s.workers, f)
		return
	}
	for i := 0; i < n; i++ {
		f(i)
	}
}

func (s *stagedStepper) observe(fb channel.Feedback) {
	if s.workers > 1 && s.lastTx >= fanOutGrain {
		ForEach(s.shards, s.workers, func(sh int) { s.p.ShardObserve(sh, fb) })
	} else {
		for sh := 0; sh < s.shards; sh++ {
			s.p.ShardObserve(sh, fb)
		}
	}
	s.p.ReduceSlot(fb)
}

// pending reduces the per-shard backlog counts.  The Partitioned
// contract makes the sum equal Pending(); using the reduce here keeps
// the shard-ownership bookkeeping on the hot path where tests can catch
// a drifting implementation immediately.
func (s *stagedStepper) pending() int {
	n := 0
	for sh := 0; sh < s.shards; sh++ {
		n += s.p.ShardPending(sh)
	}
	return n
}

func (s *stagedStepper) hasWaker() bool { return s.pw != nil }

// nextWake reduces the per-shard wake times with min over the
// non-negative answers, which the PartitionedWaker contract requires to
// equal NextWake — so fast-forward skip targets match the serial path.
func (s *stagedStepper) nextWake(now int64) int64 {
	wake := int64(-1)
	for sh := 0; sh < s.shards; sh++ {
		if w := s.pw.ShardNextWake(now, sh); w >= 0 && (wake < 0 || w < wake) {
			wake = w
		}
	}
	return wake
}

func (s *stagedStepper) coastUntil(now int64) int64 {
	if s.co == nil {
		return now
	}
	return s.co.CoastUntil(now)
}
