// Command crnsim runs a single contention-resolution simulation on a
// chosen channel model — the Coded Radio Network Model or the classical
// collision channel — and reports throughput, backlog, latency, and
// slot statistics.
//
// Usage:
//
//	crnsim [-model coded|classical[:cd]|capture] [-protocol dba|beb|aloha|genie|mw|robust|unbounded] [-kappa K] [-arrival kind] ...
//
// Examples:
//
//	crnsim -protocol dba -kappa 64 -arrival batch -n 10000
//	crnsim -protocol genie -kappa 1 -arrival poisson -rate 0.35 -horizon 200000
//	crnsim -protocol dba -kappa 256 -arrival burst -window 16384 -rate 0.9
//	crnsim -model classical:none -protocol beb -arrival batch -n 2000
//	crnsim -model classical -protocol mw -arrival bernoulli -rate 0.2
//	crnsim -protocol dba -arrival bernoulli -rate 0.5 -adversary reactive:8/64
//	crnsim -model classical:none -protocol robust -arrival batch -n 2000
//	crnsim -model capture -kappa 8 -protocol unbounded -arrival batch -n 2000
package main

import (
	"flag"
	"fmt"
	"os"

	crn "repro"
	"repro/internal/asciiplot"
	"repro/internal/report"
)

func main() {
	model := flag.String("model", "coded", "channel model descriptor: coded[:K[/W]], classical[:none|binary|ternary], capture[:K]")
	protoName := flag.String("protocol", "dba", "protocol: dba, beb, aloha, genie, mw, robust, unbounded")
	kappa := flag.Int("kappa", 64, "decoding threshold κ (coded and capture models; dba needs ≥ 6)")
	arrivalName := flag.String("arrival", "batch", "arrival process: batch, bernoulli, poisson, even, burst")
	n := flag.Int("n", 10000, "batch size (arrival=batch)")
	rate := flag.Float64("rate", 0.5, "arrival rate (bernoulli/poisson/even) or window fill fraction (burst)")
	window := flag.Int64("window", 16384, "burst window length (arrival=burst)")
	horizon := flag.Int64("horizon", 100000, "slots during which arrivals occur")
	drain := flag.Bool("drain", true, "keep running after the horizon until the system empties")
	seed := flag.Uint64("seed", 1, "random seed")
	alohaP := flag.Float64("aloha-p", 0.001, "static ALOHA transmission probability (protocol=aloha)")
	adversaryDesc := flag.String("adversary", "none", "adversary: none, random:RATE, burst:B/GAP, reactive:TRIGGER/BURST, sigmarho:SIGMA/RHO")
	latencySamples := flag.Int("latency-samples", 0, "latency reservoir capacity for quantiles (0 = default, -1 = off)")
	workers := flag.Int("workers", 0, "staged-engine goroutines per run (0 = serial engine; results identical)")
	plot := flag.Bool("plot", true, "render the backlog time series")
	tracePath := flag.String("trace", "", "write the backlog time series to this CSV file")
	flag.Parse()

	mspec, err := crn.ParseMedium(*model)
	if err != nil {
		fmt.Fprintf(os.Stderr, "crnsim: %v\n", err)
		os.Exit(2)
	}
	if *protoName == "dba" && mspec.Model != "coded" {
		fmt.Fprintf(os.Stderr, "crnsim: dba is defined for the coded model (κ ≥ 6); pick -model coded or another protocol\n")
		os.Exit(2)
	}
	// A bare "coded" leaves Medium nil so the engine's defaults (window
	// cap 4κ) apply; anything else — another model, or a coded descriptor
	// with embedded parameters — builds the medium explicitly.
	var med crn.Medium
	if mspec != (crn.MediumSpec{Model: "coded"}) {
		med, err = mspec.Build(*kappa, 0)
		if err != nil {
			fmt.Fprintf(os.Stderr, "crnsim: %v\n", err)
			os.Exit(2)
		}
		*kappa = med.Kappa()
	}

	var proto crn.Protocol
	switch *protoName {
	case "dba":
		proto = crn.NewDecodableBackoff(*kappa, *seed)
	case "beb":
		proto = crn.NewExponentialBackoff(*seed)
	case "aloha":
		proto = crn.NewSlottedAloha(*seed, *alohaP)
	case "genie":
		proto = crn.NewGenieAloha(*seed, 1)
	case "mw":
		proto = crn.NewMultiplicativeWeights(*seed)
	case "robust":
		proto = crn.NewRobustNoCD(*seed)
	case "unbounded":
		proto = crn.NewUnboundedNoCD(*seed)
	default:
		fmt.Fprintf(os.Stderr, "crnsim: unknown protocol %q\n", *protoName)
		os.Exit(2)
	}

	var arr crn.Arrivals
	switch *arrivalName {
	case "batch":
		arr = crn.NewBatch(*n)
		if *horizon < 1 {
			*horizon = 1
		}
	case "bernoulli":
		arr = crn.NewBernoulli(*rate)
	case "poisson":
		arr = crn.NewPoisson(*rate)
	case "even":
		arr = crn.NewEvenPaced(*rate)
	case "burst":
		arr = crn.NewWindowBurst(*window, int(*rate*float64(*window)))
	default:
		fmt.Fprintf(os.Stderr, "crnsim: unknown arrival %q\n", *arrivalName)
		os.Exit(2)
	}

	adv, err := crn.ParseAdversary(*adversaryDesc)
	if err != nil {
		fmt.Fprintf(os.Stderr, "crnsim: %v\n", err)
		os.Exit(2)
	}
	if crn.IsAdaptiveAdversary(adv) && med != nil && crn.MediumMasksSilence(med) {
		fmt.Fprintf(os.Stderr, "crnsim: adversary %q reacts to channel feedback, but model %q masks silence; pick a model with channel sensing\n", *adversaryDesc, *model)
		os.Exit(2)
	}

	res := crn.Run(crn.Config{
		Kappa:          *kappa,
		Horizon:        *horizon,
		Drain:          *drain,
		Seed:           *seed + 1,
		LatencySamples: *latencySamples,
		Medium:         med,
		Adversary:      adv,
		Workers:        *workers,
	}, proto, arr)

	fmt.Printf("protocol:   %s\n", res.Protocol)
	fmt.Printf("arrivals:   %s (%d packets)\n", res.Arrival, res.Arrivals)
	fmt.Printf("channel:    %s κ=%d  good=%d bad=%d silent=%d jammed=%d events=%d\n",
		res.Medium, res.Kappa, res.Channel.GoodSlots, res.Channel.BadSlots,
		res.Channel.SilentSlots, res.Channel.JammedSlots, res.Channel.Events)
	fmt.Printf("delivered:  %d (pending %d) in %d slots\n", res.Delivered, res.Pending, res.Elapsed)
	fmt.Printf("throughput: %.4f (first arrival to last delivery)\n", res.CompletionThroughput())
	fmt.Printf("backlog:    max %d\n", res.MaxBacklog)
	if res.Delivered > 0 {
		if res.LatencySample != nil {
			fmt.Printf("latency:    p50=%.0f p99=%.0f max=%.0f mean=%.1f slots\n",
				res.LatencyQuantile(0.50), res.LatencyQuantile(0.99),
				res.Latency.Max(), res.Latency.Mean())
		} else {
			fmt.Printf("latency:    max=%.0f mean=%.1f slots (quantiles off)\n",
				res.Latency.Max(), res.Latency.Mean())
		}
	}
	if *tracePath != "" {
		err := report.SaveSeriesCSV(*tracePath, "slot", "backlog",
			res.BacklogSeries.T, res.BacklogSeries.V)
		if err != nil {
			fmt.Fprintf(os.Stderr, "crnsim: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("trace:      %s (%d points)\n", *tracePath, res.BacklogSeries.Len())
	}
	if *plot && res.BacklogSeries.Len() > 1 {
		p := asciiplot.Plot{
			Title: "backlog over time", XLabel: "slot", YLabel: "pending packets",
			Width: 64, Height: 12,
		}
		xs := make([]float64, res.BacklogSeries.Len())
		for i := range xs {
			xs[i] = float64(res.BacklogSeries.T[i])
		}
		p.Add(asciiplot.Series{Name: res.Protocol, X: xs, Y: res.BacklogSeries.V})
		fmt.Println()
		fmt.Print(p.Render())
	}
}
