// Package arrival provides the packet-injection processes the simulator
// feeds to protocols: batches, stochastic streams, and the adversarial
// patterns the paper's model allows (arbitrary injection subject to a
// sliding-window rate bound).
package arrival

import (
	"fmt"

	"repro/internal/channel"
	"repro/internal/rng"
)

// Process produces packet arrivals.  The engine calls Injections exactly
// once per simulated slot, in increasing slot order; skipped idle
// stretches are guaranteed arrival-free via NextAfter.
type Process interface {
	// Name identifies the process in reports.
	Name() string
	// Injections returns how many packets arrive at slot now.
	Injections(now int64, r *rng.Rand) int
	// NextAfter returns the smallest slot > now at which Injections may
	// be nonzero, or -1 if no arrivals will ever occur after now.
	NextAfter(now int64) int64
}

// Observer is an optional interface for adaptive adversaries that react
// to what they hear on the channel (the same feedback devices get).
type Observer interface {
	ObserveSlot(fb channel.Feedback)
}

// None is an empty arrival process.
type None struct{}

// Name implements Process.
func (None) Name() string { return "none" }

// Injections implements Process.
func (None) Injections(int64, *rng.Rand) int { return 0 }

// NextAfter implements Process.
func (None) NextAfter(int64) int64 { return -1 }

// Batch injects N packets at slot At and nothing else.
type Batch struct {
	At int64
	N  int
}

// Name implements Process.
func (b *Batch) Name() string { return fmt.Sprintf("batch(%d@%d)", b.N, b.At) }

// Injections implements Process.
func (b *Batch) Injections(now int64, _ *rng.Rand) int {
	if now == b.At {
		return b.N
	}
	return 0
}

// NextAfter implements Process.
func (b *Batch) NextAfter(now int64) int64 {
	if now < b.At {
		return b.At
	}
	return -1
}

// Bernoulli injects one packet per slot with probability Rate.
type Bernoulli struct {
	Rate float64
}

// Name implements Process.
func (b *Bernoulli) Name() string { return fmt.Sprintf("bernoulli(%.3f)", b.Rate) }

// Injections implements Process.
func (b *Bernoulli) Injections(now int64, r *rng.Rand) int {
	if r.Bernoulli(b.Rate) {
		return 1
	}
	return 0
}

// NextAfter implements Process.
func (b *Bernoulli) NextAfter(now int64) int64 {
	if b.Rate <= 0 {
		return -1
	}
	return now + 1
}

// Poisson injects a Poisson(Lambda) number of packets per slot.
type Poisson struct {
	Lambda float64
}

// Name implements Process.
func (p *Poisson) Name() string { return fmt.Sprintf("poisson(%.3f)", p.Lambda) }

// Injections implements Process.
func (p *Poisson) Injections(now int64, r *rng.Rand) int {
	return int(r.Poisson(p.Lambda))
}

// NextAfter implements Process.
func (p *Poisson) NextAfter(now int64) int64 {
	if p.Lambda <= 0 {
		return -1
	}
	return now + 1
}

// EvenPaced injects deterministically at the given rate, spreading
// arrivals as evenly as integer slots allow (an accumulator that releases
// a packet whenever it crosses 1).  The smoothest adversary at a given
// rate.
type EvenPaced struct {
	Rate float64
	acc  float64
	last int64
}

// NewEvenPaced returns an even-paced process with the given rate ≥ 0.
func NewEvenPaced(rate float64) *EvenPaced {
	if rate < 0 {
		panic("arrival: negative rate")
	}
	return &EvenPaced{Rate: rate, last: -1}
}

// Name implements Process.
func (e *EvenPaced) Name() string { return fmt.Sprintf("even(%.3f)", e.Rate) }

// Injections implements Process.
func (e *EvenPaced) Injections(now int64, _ *rng.Rand) int {
	if now <= e.last {
		panic("arrival: EvenPaced slots must be strictly increasing")
	}
	// Account for any skipped slots so the long-run rate is exact.
	gap := now - e.last
	e.last = now
	e.acc += e.Rate * float64(gap)
	n := int(e.acc)
	e.acc -= float64(n)
	return n
}

// NextAfter implements Process.
func (e *EvenPaced) NextAfter(now int64) int64 {
	if e.Rate <= 0 {
		return -1
	}
	return now + 1
}

// WindowBurst injects PerWindow packets in a single burst at the start of
// every window of Window slots — the classical worst case for backlog at
// a given window-constrained rate.
type WindowBurst struct {
	Window    int64
	PerWindow int
	// Limit stops injection at slot Limit (0 = no limit), so drain phases
	// can be simulated.
	Limit int64
}

// Name implements Process.
func (w *WindowBurst) Name() string {
	return fmt.Sprintf("burst(%d/%d)", w.PerWindow, w.Window)
}

// Injections implements Process.
func (w *WindowBurst) Injections(now int64, _ *rng.Rand) int {
	if w.Limit > 0 && now >= w.Limit {
		return 0
	}
	if now%w.Window == 0 {
		return w.PerWindow
	}
	return 0
}

// NextAfter implements Process.
func (w *WindowBurst) NextAfter(now int64) int64 {
	next := (now/w.Window + 1) * w.Window
	if w.Limit > 0 && next >= w.Limit {
		return -1
	}
	return next
}

// OnOff alternates between an on-phase of OnSlots slots with Bernoulli
// arrivals at OnRate and a silent off-phase of OffSlots slots.
type OnOff struct {
	OnSlots  int64
	OffSlots int64
	OnRate   float64
}

// Name implements Process.
func (o *OnOff) Name() string {
	return fmt.Sprintf("onoff(%d/%d@%.3f)", o.OnSlots, o.OffSlots, o.OnRate)
}

func (o *OnOff) period() int64 { return o.OnSlots + o.OffSlots }

// Injections implements Process.
func (o *OnOff) Injections(now int64, r *rng.Rand) int {
	if now%o.period() < o.OnSlots && r.Bernoulli(o.OnRate) {
		return 1
	}
	return 0
}

// NextAfter implements Process.
func (o *OnOff) NextAfter(now int64) int64 {
	if o.OnRate <= 0 {
		return -1
	}
	next := now + 1
	if next%o.period() < o.OnSlots {
		return next
	}
	return (next/o.period() + 1) * o.period()
}

// Trace replays an explicit schedule: Counts[i] packets arrive at slot i.
type Trace struct {
	Counts []int
}

// Name implements Process.
func (t *Trace) Name() string { return fmt.Sprintf("trace(%d slots)", len(t.Counts)) }

// Injections implements Process.
func (t *Trace) Injections(now int64, _ *rng.Rand) int {
	if now < 0 || now >= int64(len(t.Counts)) {
		return 0
	}
	return t.Counts[now]
}

// NextAfter implements Process.
func (t *Trace) NextAfter(now int64) int64 {
	for s := now + 1; s < int64(len(t.Counts)); s++ {
		if t.Counts[s] > 0 {
			return s
		}
	}
	return -1
}

// Disruptor is an adaptive adversary targeting the Decodable Backoff
// admission-control mechanism: it listens to the channel and injects a
// burst immediately after every silent slot — exactly when inactive
// packets activate at probability κ^(−1/2), maximizing the contention
// spike.  Wrap it in a Cap to respect a rate bound.
type Disruptor struct {
	BurstSize int
	armed     bool
}

// Name implements Process.
func (d *Disruptor) Name() string { return fmt.Sprintf("disruptor(%d)", d.BurstSize) }

// Injections implements Process.
func (d *Disruptor) Injections(now int64, _ *rng.Rand) int {
	if d.armed {
		d.armed = false
		return d.BurstSize
	}
	return 0
}

// NextAfter implements Process.  The disruptor cannot predict silence, so
// any slot may carry arrivals.
func (d *Disruptor) NextAfter(now int64) int64 { return now + 1 }

// ObserveSlot implements Observer.
func (d *Disruptor) ObserveSlot(fb channel.Feedback) {
	if fb.Silent {
		d.armed = true
	}
}

// Merge sums two arrival processes: packets from both arrive on the
// shared channel.  It is how an arrival adversary (e.g. the (σ,ρ)
// front-loader in package adversary) composes with a benign workload —
// the protocol serves the union.  Feedback reaches both sides, so
// adaptive processes stay adaptive under composition.
type Merge struct {
	A, B Process
}

// Name implements Process.
func (m *Merge) Name() string { return m.A.Name() + "+" + m.B.Name() }

// Injections implements Process.
func (m *Merge) Injections(now int64, r *rng.Rand) int {
	return m.A.Injections(now, r) + m.B.Injections(now, r)
}

// NextAfter implements Process: the earlier of the two sides' next
// arrivals.
func (m *Merge) NextAfter(now int64) int64 {
	a, b := m.A.NextAfter(now), m.B.NextAfter(now)
	switch {
	case a < 0:
		return b
	case b < 0 || a < b:
		return a
	}
	return b
}

// ObserveSlot implements Observer, forwarding to both sides.
func (m *Merge) ObserveSlot(fb channel.Feedback) {
	if o, ok := m.A.(Observer); ok {
		o.ObserveSlot(fb)
	}
	if o, ok := m.B.(Observer); ok {
		o.ObserveSlot(fb)
	}
}

// Cap enforces the paper's arrival constraint on an inner process: at
// most Max arrivals in every sliding window of Window slots.  Arrivals
// beyond the budget are discarded (the adversary wanted to inject more
// than the model allows).
type Cap struct {
	Inner  Process
	Window int64
	Max    int

	recent []capEntry // FIFO of (slot, count) within the current window
	inWin  int
}

type capEntry struct {
	slot  int64
	count int
}

// NewCap wraps inner with a sliding-window cap.
func NewCap(inner Process, window int64, max int) *Cap {
	if window < 1 {
		panic("arrival: cap window must be at least 1")
	}
	if max < 0 {
		panic("arrival: negative cap")
	}
	return &Cap{Inner: inner, Window: window, Max: max}
}

// Name implements Process.
func (c *Cap) Name() string {
	return fmt.Sprintf("%s|cap(%d/%d)", c.Inner.Name(), c.Max, c.Window)
}

// Injections implements Process.
func (c *Cap) Injections(now int64, r *rng.Rand) int {
	want := c.Inner.Injections(now, r)
	// Expire entries that left the window (slot <= now-Window).
	cutoff := now - c.Window
	for len(c.recent) > 0 && c.recent[0].slot <= cutoff {
		c.inWin -= c.recent[0].count
		c.recent = c.recent[1:]
	}
	budget := c.Max - c.inWin
	if budget < 0 {
		budget = 0
	}
	n := want
	if n > budget {
		n = budget
	}
	if n > 0 {
		c.recent = append(c.recent, capEntry{slot: now, count: n})
		c.inWin += n
	}
	return n
}

// NextAfter implements Process.
func (c *Cap) NextAfter(now int64) int64 { return c.Inner.NextAfter(now) }

// ObserveSlot implements Observer, forwarding to the inner process.
func (c *Cap) ObserveSlot(fb channel.Feedback) {
	if o, ok := c.Inner.(Observer); ok {
		o.ObserveSlot(fb)
	}
}
