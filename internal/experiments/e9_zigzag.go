package experiments

import (
	"fmt"

	"repro/internal/phy"
	"repro/internal/report"
	"repro/internal/rng"
)

// E9ZigZag reproduces the motivating systems result the paper cites
// (Section 1): ZigZag decoding turns hidden-terminal collisions from
// near-total loss into near-lossless delivery ("reduced packet loss from
// approximately 72% to less than 1%"), while respecting capacity — two
// packets still cost two slots ("the same throughput as if the colliding
// packets were a priori scheduled in separate time slots").
func E9ZigZag(scale Scale, seed uint64) *Output {
	out := &Output{
		ID:    "E9",
		Title: "collision recovery: naive decode vs ZigZag across two collisions",
		Claim: "ZigZag: hidden-terminal packet loss ~72% → <1%; throughput equals separate scheduling",
	}
	const bits = 400
	trials := scale.pick(300, 1500)
	r := rng.New(seed ^ 0xE9)

	tbl := report.NewTable("Two equal-power senders, random offsets, packet = lost if any bit errs",
		"noise σ", "naive loss", "zigzag loss", "zigzag BER", "slots/packet")
	for _, sigma := range []float64{0, 0.05, 0.1, 0.2} {
		naiveLost, zigzagLost := 0, 0
		var bitErrs, bitTotal int
		for t := 0; t < trials; t++ {
			a := phy.RandomBits(bits, r)
			b := phy.RandomBits(bits, r)
			off1 := 1 + int(r.Intn(bits/8))
			off2 := 1 + int(r.Intn(bits/8))
			for off2 == off1 {
				off2 = 1 + int(r.Intn(bits/8))
			}
			c1 := phy.NewCollision(a, b, 1, 1, off1, sigma, r)
			c2 := phy.NewCollision(a, b, 1, 1, off2, sigma, r)

			// Naive receiver: single collision, equal power — decode both
			// directly from c1, interference uncancelled.
			segA := c1.Y[:bits]
			decA := phy.DemodulateBPSK(segA, 1)
			segB := make(phy.Signal, bits)
			copy(segB, c1.Y[off1:off1+bits])
			decB := phy.DemodulateBPSK(segB, 1)
			if phy.BitErrors(a, decA) > 0 {
				naiveLost++
			}
			if phy.BitErrors(b, decB) > 0 {
				naiveLost++
			}

			// ZigZag across the two collisions.
			zA, zB, err := phy.ZigZagDecode(c1, c2, bits, bits)
			if err != nil {
				zigzagLost += 2
				continue
			}
			ea, eb := phy.BitErrors(a, zA), phy.BitErrors(b, zB)
			if ea > 0 {
				zigzagLost++
			}
			if eb > 0 {
				zigzagLost++
			}
			bitErrs += ea + eb
			bitTotal += 2 * bits
		}
		den := float64(2 * trials)
		tbl.AddRow(fmt.Sprintf("%.2f", sigma),
			fmt.Sprintf("%.1f%%", 100*float64(naiveLost)/den),
			fmt.Sprintf("%.2f%%", 100*float64(zigzagLost)/den),
			fmt.Sprintf("%.2e", float64(bitErrs)/float64(maxInt(bitTotal, 1))),
			"1.0 (2 pkts / 2 collisions)")
	}
	out.Tables = append(out.Tables, tbl)
	out.Notes = append(out.Notes,
		"equal-power overlap makes single-collision decoding hopeless (differing bits sum to 0: coin-flip decisions)",
		"ZigZag needs two collisions for two packets — exactly the capacity the coded-radio model charges (j packets ⇒ j slots)",
		"offsets are random per retransmission, as in the ZigZag paper; identical offsets (probability ~1/50 here, excluded) would fail")
	return out
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
