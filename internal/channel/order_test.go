package channel

import (
	"testing"

	"repro/internal/rng"
)

// permute returns txs reordered by a seeded Fisher–Yates shuffle.  The
// shuffle seed is independent of the channel under test, so the two
// lockstep channels in the order tests see the same multiset of
// transmitters in different sequences.
func permute(g *rng.Rand, txs []PacketID) []PacketID {
	out := append([]PacketID(nil), txs...)
	for i := len(out) - 1; i > 0; i-- {
		j := int(g.Uint64n(uint64(i + 1)))
		out[i], out[j] = out[j], out[i]
	}
	return out
}

// stepEqual drives one slot through both channels — canonical order
// into ref, permuted order into alt — and fails if the slot class, the
// decoding event, or the running stats diverge.  This is the invariant
// the staged engine's shard fan-out rests on: a slot's outcome depends
// on the set of transmitters, never on the order shard concatenation
// happens to produce.
func stepEqual(t *testing.T, now int64, ref, alt *Channel, canonical, permuted []PacketID) {
	t.Helper()
	rc, re := ref.Step(now, canonical)
	ac, ae := alt.Step(now, permuted)
	if rc != ac {
		t.Fatalf("slot %d: class %v (canonical) vs %v (permuted %v)", now, rc, ac, permuted)
	}
	if (re == nil) != (ae == nil) {
		t.Fatalf("slot %d: event %v (canonical) vs %v (permuted)", now, re, ae)
	}
	if re != nil {
		if re.Slot != ae.Slot || re.WindowStart != ae.WindowStart || len(re.Packets) != len(ae.Packets) {
			t.Fatalf("slot %d: event %+v (canonical) vs %+v (permuted)", now, re, ae)
		}
		for i := range re.Packets {
			if re.Packets[i] != ae.Packets[i] {
				t.Fatalf("slot %d: event delivers %v (canonical) vs %v (permuted)", now, re.Packets, ae.Packets)
			}
		}
	}
	if ref.Stats() != alt.Stats() {
		t.Fatalf("slot %d: stats %+v (canonical) vs %+v (permuted)", now, ref.Stats(), alt.Stats())
	}
}

// TestStepOrderInsensitive runs a deterministic schedule that spans
// every slot class — silence, singletons, staircases building decoding
// events, overfull bad slots, revisited IDs — through two lockstep
// channels, permuting the transmitter list handed to one of them each
// slot.
func TestStepOrderInsensitive(t *testing.T) {
	for _, kappa := range []int{1, 4, 8} {
		ref, alt := New(kappa, 0), New(kappa, 0)
		g := rng.New(uint64(0xa11ce + kappa))
		sched := rng.New(uint64(kappa) * 977)
		txs := make([]PacketID, 0, 32)
		for now := int64(0); now < 400; now++ {
			txs = txs[:0]
			// Mix empty slots, good-sized groups, and overfull bursts
			// from a small ID pool so windows and last occurrences
			// interact across slots.
			n := int(sched.Uint64n(uint64(2*kappa + 4)))
			if sched.Uint64n(4) == 0 {
				n = 0
			}
			off := int(sched.Uint64n(24))
			for i := 0; i < n; i++ {
				txs = append(txs, PacketID((off+i)%24))
			}
			stepEqual(t, now, ref, alt, txs, permute(g, txs))
		}
	}
}

// FuzzStepOrderInsensitive is the fuzzing face of the same invariant,
// reusing FuzzChannelAgainstReference's schedule encoding: byte 0 picks
// κ, byte 1 the window cap, byte 2 seeds the permutation, and each
// following byte is one slot (low nibble = transmitter count, high
// nibble = offset into a 24-ID pool).
func FuzzStepOrderInsensitive(f *testing.F) {
	f.Add([]byte{0x03, 0x08, 0x01, 0x02, 0x13, 0x00, 0x21, 0x01})
	f.Add([]byte{0x07, 0x00, 0xff, 0x0f, 0x12, 0x31, 0x02, 0x00, 0x42, 0x05})
	f.Add([]byte{0x01, 0x02, 0x9e, 0x22, 0x22, 0x22, 0x22})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 4 {
			t.Skip()
		}
		kappa := 1 + int(data[0]%8)
		maxWindow := int(data[1] % 16)
		ref, alt := New(kappa, maxWindow), New(kappa, maxWindow)
		g := rng.New(uint64(data[2]) + 1)
		txs := make([]PacketID, 0, 16)
		for now, b := range data[3:] {
			n := int(b & 0x0f)
			off := int(b >> 4)
			txs = txs[:0]
			for i := 0; i < n; i++ {
				txs = append(txs, PacketID((off+i)%24))
			}
			stepEqual(t, int64(now), ref, alt, txs, permute(g, txs))
		}
	})
}
