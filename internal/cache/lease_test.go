package cache

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

const (
	idA = "aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa"
	idB = "bbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbb"
)

func openTestStore(t *testing.T) *Store {
	t.Helper()
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestClaimGrantRenewConflict(t *testing.T) {
	s := openTestStore(t)
	if ok, err := s.Claim(idA, "w1", time.Minute); err != nil || !ok {
		t.Fatalf("first claim = (%v, %v), want granted", ok, err)
	}
	// The same owner renews; a different owner is refused.
	if ok, err := s.Claim(idA, "w1", time.Minute); err != nil || !ok {
		t.Fatalf("renewal = (%v, %v), want granted", ok, err)
	}
	if ok, err := s.Claim(idA, "w2", time.Minute); err != nil || ok {
		t.Fatalf("foreign claim = (%v, %v), want refused", ok, err)
	}
	// An unrelated identity is independent.
	if ok, err := s.Claim(idB, "w2", time.Minute); err != nil || !ok {
		t.Fatalf("claim of other id = (%v, %v), want granted", ok, err)
	}
}

func TestClaimExpiredLeaseIsReclaimable(t *testing.T) {
	s := openTestStore(t)
	if ok, _ := s.Claim(idA, "dead", time.Millisecond); !ok {
		t.Fatal("short claim refused")
	}
	time.Sleep(5 * time.Millisecond)
	if ok, err := s.Claim(idA, "w2", time.Minute); err != nil || !ok {
		t.Fatalf("claim after expiry = (%v, %v), want granted", ok, err)
	}
}

func TestClaimCorruptLeaseDegradesToMiss(t *testing.T) {
	s := openTestStore(t)
	if err := os.WriteFile(s.leasePath(idA), []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if ok, err := s.Claim(idA, "w1", time.Minute); err != nil || !ok {
		t.Fatalf("claim over corrupt lease = (%v, %v), want granted", ok, err)
	}
}

func TestClaimRefusedOnceRecordExists(t *testing.T) {
	s := openTestStore(t)
	if err := s.Put(idA, map[string]int{"x": 1}); err != nil {
		t.Fatal(err)
	}
	if ok, err := s.Claim(idA, "w1", time.Minute); err != nil || ok {
		t.Fatalf("claim of completed record = (%v, %v), want refused", ok, err)
	}
}

func TestPutReleasesLease(t *testing.T) {
	s := openTestStore(t)
	if ok, _ := s.Claim(idA, "w1", time.Hour); !ok {
		t.Fatal("claim refused")
	}
	if err := s.Put(idA, map[string]int{"x": 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(s.leasePath(idA)); !os.IsNotExist(err) {
		t.Fatalf("lease file survives Put: %v", err)
	}
}

func TestClaimRejectsMalformedInputs(t *testing.T) {
	s := openTestStore(t)
	cases := []struct {
		id, owner string
		ttl       time.Duration
	}{
		{"../escape", "w1", time.Minute},
		{idA, "", time.Minute},
		{idA, "has space", time.Minute},
		{idA, "w1", 0},
		{idA, "w1", -time.Second},
	}
	for _, c := range cases {
		if _, err := s.Claim(c.id, c.owner, c.ttl); err == nil {
			t.Errorf("Claim(%q, %q, %v) accepted", c.id, c.owner, c.ttl)
		}
	}
}

func TestListSortedAndSkipsLeasesAndForeignFiles(t *testing.T) {
	s := openTestStore(t)
	if err := s.Put(idB, 2); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(idA, 1); err != nil {
		t.Fatal(err)
	}
	if ok, _ := s.Claim("cccccccccccccccccccccccccccccccc", "w1", time.Minute); !ok {
		t.Fatal("claim refused")
	}
	if err := os.WriteFile(s.Dir()+"/README.json", []byte("{}"), 0o644); err != nil {
		t.Fatal(err) // non-hex name: not a record
	}
	ids, err := s.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 2 || ids[0] != idA || ids[1] != idB {
		t.Fatalf("List = %v, want [%s %s]", ids, idA, idB)
	}
}

// TestConcurrentPutsLastWriteWinsByteIdentical is the benign-duplicate
// contract: content-addressed records carry identical bytes for one
// identity, so N workers racing to complete the same cell must leave
// exactly the bytes any single writer would have left.
func TestConcurrentPutsLastWriteWinsByteIdentical(t *testing.T) {
	s := openTestStore(t)
	payload := map[string]interface{}{"id": idA, "value": 42.5, "tags": []string{"a", "b"}}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := s.Put(idA, payload); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	got, err := os.ReadFile(s.Path(idA))
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.MarshalIndent(payload, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	want = append(want, '\n')
	if !bytes.Equal(got, want) {
		t.Fatalf("record after concurrent Puts:\n%s\nwant:\n%s", got, want)
	}
}

// TestConcurrentClaimsLeaveValidLease: Claim serializes within one
// process, so of N goroutines racing on one identity exactly one is
// granted, the lease file is valid JSON naming one of the contenders,
// and a subsequent foreign claim is refused.
func TestConcurrentClaimsLeaveValidLease(t *testing.T) {
	s := openTestStore(t)
	owners := make(map[string]bool)
	var granted int32
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		owner := fmt.Sprintf("w%d", i)
		owners[owner] = true
		wg.Add(1)
		go func() {
			defer wg.Done()
			ok, err := s.Claim(idA, owner, time.Minute)
			if err != nil {
				t.Error(err)
			}
			if ok {
				atomic.AddInt32(&granted, 1)
			}
		}()
	}
	wg.Wait()
	if granted != 1 {
		t.Fatalf("%d of 8 racing in-process claims granted, want exactly 1", granted)
	}
	data, err := os.ReadFile(s.leasePath(idA))
	if err != nil {
		t.Fatal(err)
	}
	var l lease
	if err := json.Unmarshal(data, &l); err != nil {
		t.Fatalf("lease file corrupt after racing claims: %v", err)
	}
	if !owners[l.Owner] {
		t.Fatalf("lease owner %q is not one of the contenders", l.Owner)
	}
	if ok, err := s.Claim(idA, "latecomer", time.Minute); err != nil || ok {
		t.Fatalf("late foreign claim = (%v, %v), want refused", ok, err)
	}
}
