// Package report formats aligned text tables and CSV files for the
// experiment harness — the "rows the paper reports".
package report

import (
	"fmt"
	"io"
	"path/filepath"
	"strings"
)

// Table is a titled grid of string cells with a header row.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// NewTable returns a table with the given title and column headers.
func NewTable(title string, header ...string) *Table {
	return &Table{Title: title, Header: header}
}

// AddRow appends a row; values are formatted with %v, floats compactly.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		row[i] = formatCell(c)
	}
	t.Rows = append(t.Rows, row)
}

func formatCell(c interface{}) string {
	switch v := c.(type) {
	case float64:
		return formatFloat(v)
	case float32:
		return formatFloat(float64(v))
	case string:
		return v
	default:
		return fmt.Sprintf("%v", v)
	}
}

func formatFloat(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v == float64(int64(v)) && v < 1e15 && v > -1e15:
		return fmt.Sprintf("%d", int64(v))
	case v >= 1000 || v <= -1000:
		return fmt.Sprintf("%.1f", v)
	case v >= 0.01 || v <= -0.01:
		return fmt.Sprintf("%.4f", v)
	default:
		return fmt.Sprintf("%.3g", v)
	}
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	cols := len(t.Header)
	for _, r := range t.Rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	widths := make([]int, cols)
	measure := func(row []string) {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	measure(t.Header)
	for _, r := range t.Rows {
		measure(r)
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	writeRow := func(row []string) {
		for i := 0; i < cols; i++ {
			cell := ""
			if i < len(row) {
				cell = row[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	total := 0
	for i, w := range widths {
		if i > 0 {
			total += 2
		}
		total += w
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, r := range t.Rows {
		writeRow(r)
	}
	return b.String()
}

// WriteTo writes the rendered table followed by a blank line.
func (t *Table) WriteTo(w io.Writer) (int64, error) {
	n, err := io.WriteString(w, t.String()+"\n")
	return int64(n), err
}

// CSV renders the table as comma-separated values (header + rows).
// Cells containing commas or quotes are quoted.
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(row []string) {
		for i, c := range row {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				b.WriteByte('"')
				b.WriteString(strings.ReplaceAll(c, "\"", "\"\""))
				b.WriteByte('"')
			} else {
				b.WriteString(c)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for _, r := range t.Rows {
		writeRow(r)
	}
	return b.String()
}

// SaveCSV writes the table's CSV rendering to dir/name.csv atomically
// (see SaveFile), creating the directory if needed.
func (t *Table) SaveCSV(dir, name string) error {
	return SaveFile(filepath.Join(dir, name+".csv"), []byte(t.CSV()))
}
