package sweep

import (
	"bytes"
	"context"
	"net/http/httptest"
	"os"
	"sync"
	"testing"
	"time"

	"repro/internal/cache"
	"repro/internal/cache/httpstore"
)

// stealOptions are worker options tuned for tests: fast polling so a
// worker waiting on a neighbor's lease notices quickly.
func stealOptions(owner string, store cache.Backend) Options {
	return Options{Cache: store, Owner: owner, LeaseTTL: time.Minute, Poll: 2 * time.Millisecond}
}

// unshardedJSON is the reference artifact every scheduling policy must
// reproduce byte-for-byte.
func unshardedJSON(t *testing.T, spec Spec) []byte {
	t.Helper()
	grid, err := Run(context.Background(), spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	data, err := grid.JSON()
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func assembledJSON(t *testing.T, spec Spec, backend cache.Backend) []byte {
	t.Helper()
	grid, err := Assemble(context.Background(), spec, backend)
	if err != nil {
		t.Fatal(err)
	}
	data, err := grid.JSON()
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestWorkStealingDrainByteIdentical is the tentpole contract (and the
// race-detector test for N workers over one shared store): concurrent
// goroutine workers drain one grid through advisory claims, and the
// assembled Grid is byte-identical to the unsharded sweep.Run output.
func TestWorkStealingDrainByteIdentical(t *testing.T) {
	spec := smallSpec()
	want := unshardedJSON(t, spec)
	store, err := cache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	const workers = 4
	results := make([]*WorkerResult, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			opts := stealOptions([]string{"w1", "w2", "w3", "w4"}[w], store)
			results[w], errs[w] = RunWorker(context.Background(), spec, opts)
		}(w)
	}
	wg.Wait()
	executed, loaded := 0, 0
	for w := 0; w < workers; w++ {
		if errs[w] != nil {
			t.Fatalf("worker %d: %v", w, errs[w])
		}
		executed += results[w].Executed
		loaded += results[w].Loaded
	}
	total := spec.Cells()
	if executed != total {
		t.Fatalf("workers executed %d cells in total, want exactly %d (each cell computed once)", executed, total)
	}
	for w, r := range results {
		if r.Executed+r.Loaded != total {
			t.Fatalf("worker %d observed %d cells, want %d", w, r.Executed+r.Loaded, total)
		}
	}
	if got := assembledJSON(t, spec, store); !bytes.Equal(want, got) {
		t.Fatal("work-stealing grid differs from the unsharded run")
	}
}

// TestWorkerPreemption is the lease-expiry contract: cells claimed by a
// worker that died mid-lease become stealable once the lease expires,
// and the re-claimed cells produce the same bytes as everyone else's.
func TestWorkerPreemption(t *testing.T) {
	spec := smallSpec()
	want := unshardedJSON(t, spec)
	store, err := cache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	// A "worker" claims three cells and dies without completing them —
	// exactly the state RunWorker leaves if killed between Claim and Put.
	cells := spec.Expand()
	seeds := spec.jobSeeds(len(cells))
	for i := 0; i < 3; i++ {
		id := cellID(cells[i], &spec, seeds[i*spec.Trials:(i+1)*spec.Trials])
		if ok, err := store.Claim(id, "dead-worker", 30*time.Millisecond); err != nil || !ok {
			t.Fatalf("dead worker's claim %d = (%v, %v)", i, ok, err)
		}
	}
	// A surviving worker must stall on those cells until the leases
	// expire, then re-claim and finish the grid alone.
	res, err := RunWorker(context.Background(), spec, stealOptions("survivor", store))
	if err != nil {
		t.Fatal(err)
	}
	if res.Executed != spec.Cells() {
		t.Fatalf("survivor executed %d cells, want %d (including the 3 re-claimed)", res.Executed, spec.Cells())
	}
	if got := assembledJSON(t, spec, store); !bytes.Equal(want, got) {
		t.Fatal("grid after preemption differs from the unsharded run")
	}
}

// TestWorkerKilledAndRestarted kills a worker mid-run (context
// cancellation after its second cell) and restarts it: the restarted
// worker finds its predecessor's records, renews its own still-live
// leases, completes the rest, and the assembled grid is byte-identical.
func TestWorkerKilledAndRestarted(t *testing.T) {
	spec := smallSpec()
	want := unshardedJSON(t, spec)
	store, err := cache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	opts := stealOptions("w1", store)
	opts.OnCell = func(done, total int, cell *CellSummary, cached bool) {
		if done == 2 {
			cancel() // the "kill": the worker dies before its next claim
		}
	}
	res, err := RunWorker(ctx, spec, opts)
	if err == nil {
		t.Fatal("killed worker reported success")
	}
	if res.Executed < 2 || res.Executed >= spec.Cells() {
		t.Fatalf("killed worker executed %d cells, want a strict partial run", res.Executed)
	}
	// Restart under the same owner: earlier cells load from the store,
	// the remainder execute, nothing is recomputed.
	res2, err := RunWorker(context.Background(), spec, stealOptions("w1", store))
	if err != nil {
		t.Fatal(err)
	}
	if res2.Loaded != res.Executed || res2.Executed != spec.Cells()-res.Executed {
		t.Fatalf("restart loaded=%d executed=%d after a %d-cell first life",
			res2.Loaded, res2.Executed, res.Executed)
	}
	if got := assembledJSON(t, spec, store); !bytes.Equal(want, got) {
		t.Fatal("grid after kill+restart differs from the unsharded run")
	}
}

// TestDuplicateCompletionByteIdentical pins the property the whole
// advisory-lease design leans on: two workers completing the same cell
// write byte-identical records (same content identity ⇒ same bytes), so
// last-write-wins cannot corrupt a grid.
func TestDuplicateCompletionByteIdentical(t *testing.T) {
	spec := smallSpec()
	cells := spec.Expand()
	seeds := spec.jobSeeds(len(cells))
	sc := cells[0]
	id := cellID(sc, &spec, seeds[:spec.Trials])
	store, err := cache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var first []byte
	for attempt := 0; attempt < 2; attempt++ {
		summary := execCell(&spec, sc, seeds[:spec.Trials], 0, 0)
		if err := putCell(store, id, 0, sc.Key(), summary); err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(store.Path(id))
		if err != nil {
			t.Fatal(err)
		}
		if attempt == 0 {
			first = data
		} else if !bytes.Equal(first, data) {
			t.Fatal("two completions of one cell identity wrote different bytes")
		}
	}
}

// TestWorkStealingOverHTTPBackend drives two concurrent workers through
// the HTTP client+server pair — the multi-machine path — and assembles
// from the underlying filesystem store, proving the two views are one
// namespace.
func TestWorkStealingOverHTTPBackend(t *testing.T) {
	spec := smallSpec()
	spec.Kappas = []int{8} // halve the grid: HTTP round-trips per cell add up
	want := unshardedJSON(t, spec)
	store, err := cache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(httpstore.NewServer(store))
	defer srv.Close()
	var wg sync.WaitGroup
	errs := make([]error, 2)
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			client, err := httpstore.NewClient(srv.URL)
			if err != nil {
				errs[w] = err
				return
			}
			_, errs[w] = RunWorker(context.Background(), spec, stealOptions([]string{"m1", "m2"}[w], client))
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", w, err)
		}
	}
	if got := assembledJSON(t, spec, store); !bytes.Equal(want, got) {
		t.Fatal("HTTP-backed work-stealing grid differs from the unsharded run")
	}
}

// countingBackend wraps a Backend to observe the lease traffic a
// worker generates: successful claims per (owner, id) and record writes
// per id, plus a one-shot signal when a chosen owner first claims a
// chosen cell.
type countingBackend struct {
	cache.Backend
	mu       sync.Mutex
	claims   map[string]int // owner + "\x00" + id → successful claims
	puts     map[string]int // id → Put calls
	watchID  string
	watchOwn string
	claimed  chan struct{}
	once     sync.Once
}

func newCountingBackend(inner cache.Backend, watchOwner, watchID string) *countingBackend {
	return &countingBackend{
		Backend:  inner,
		claims:   make(map[string]int),
		puts:     make(map[string]int),
		watchID:  watchID,
		watchOwn: watchOwner,
		claimed:  make(chan struct{}),
	}
}

func (c *countingBackend) Claim(id, owner string, ttl time.Duration) (bool, error) {
	ok, err := c.Backend.Claim(id, owner, ttl)
	if ok {
		c.mu.Lock()
		c.claims[owner+"\x00"+id]++
		c.mu.Unlock()
		if owner == c.watchOwn && id == c.watchID {
			c.once.Do(func() { close(c.claimed) })
		}
	}
	return ok, err
}

func (c *countingBackend) Put(id string, v interface{}) error {
	c.mu.Lock()
	c.puts[id]++
	c.mu.Unlock()
	return c.Backend.Put(id, v)
}

func (c *countingBackend) claimCount(owner, id string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.claims[owner+"\x00"+id]
}

func (c *countingBackend) putCount(id string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.puts[id]
}

// TestLeaseRenewalKeepsSlowCellOwned is the renewal contract: a cell
// whose execution outlives the lease TTL must not look dead.  The slow
// worker's renewal goroutine re-claims at TTL/2 while an eager
// competitor races through the rest of the grid; the eager worker must
// never win the slow cell, and exactly one record lands for it.
func TestLeaseRenewalKeepsSlowCellOwned(t *testing.T) {
	spec := smallSpec()
	store, err := cache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cells := spec.Expand()
	seeds := spec.jobSeeds(len(cells))
	slowID := cellID(cells[0], &spec, seeds[:spec.Trials])
	backend := newCountingBackend(store, "slow", slowID)

	// Cell 0 takes ~3× the lease TTL under the slow owner; everything
	// else runs at full speed.
	const ttl = 250 * time.Millisecond
	execDelay = func(owner string, cell int) {
		if owner == "slow" && cell == 0 {
			time.Sleep(3 * ttl)
		}
	}
	defer func() { execDelay = nil }()

	slowDone := make(chan error, 1)
	go func() {
		opts := stealOptions("slow", backend)
		opts.LeaseTTL = ttl
		opts.Poll = 20 * time.Millisecond
		_, err := RunWorker(context.Background(), spec, opts)
		slowDone <- err
	}()

	// Only start the eager worker once the slow one holds cell 0, so the
	// race over that cell is guaranteed to happen.
	select {
	case <-backend.claimed:
	case <-time.After(10 * time.Second):
		t.Fatal("slow worker never claimed cell 0")
	}
	opts := stealOptions("eager", backend)
	opts.LeaseTTL = ttl
	opts.Poll = 20 * time.Millisecond
	eager, err := RunWorker(context.Background(), spec, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := <-slowDone; err != nil {
		t.Fatal(err)
	}

	if n := backend.claimCount("slow", slowID); n < 2 {
		t.Errorf("slow owner claimed its cell %d times, want ≥ 2 (initial + TTL/2 renewals)", n)
	}
	if n := backend.claimCount("eager", slowID); n != 0 {
		t.Errorf("eager worker stole the renewed lease %d times, want 0", n)
	}
	if n := backend.putCount(slowID); n != 1 {
		t.Errorf("slow cell was written %d times, want exactly 1", n)
	}
	if eager.Executed == 0 || eager.Executed >= spec.Cells() {
		t.Errorf("eager worker executed %d cells, want a strict nonzero share", eager.Executed)
	}
	want := unshardedJSON(t, spec)
	if got := assembledJSON(t, spec, store); !bytes.Equal(want, got) {
		t.Fatal("grid after a renewed slow cell differs from the unsharded run")
	}
}

func TestRunWorkerRequiresBackend(t *testing.T) {
	if _, err := RunWorker(context.Background(), smallSpec(), Options{}); err == nil {
		t.Fatal("RunWorker without a backend accepted")
	}
}

func TestAssembleReportsMissingCells(t *testing.T) {
	spec := smallSpec()
	store, err := cache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Assemble(context.Background(), spec, store); err == nil {
		t.Fatal("assemble of an empty backend succeeded")
	}
	// Half-fill via a static shard run into the same namespace, then
	// assemble: still incomplete, and the error says how incomplete.
	if _, err := RunShard(context.Background(), spec, Shard{Index: 1, Count: 2}, Options{Cache: store}); err != nil {
		t.Fatal(err)
	}
	if _, err := Assemble(context.Background(), spec, store); err == nil {
		t.Fatal("assemble of a half-drained backend succeeded")
	}
	// Completing the other half makes assembly whole — shard runs and
	// workers share one record namespace.
	if _, err := RunShard(context.Background(), spec, Shard{Index: 2, Count: 2}, Options{Cache: store}); err != nil {
		t.Fatal(err)
	}
	if got := assembledJSON(t, spec, store); !bytes.Equal(unshardedJSON(t, spec), got) {
		t.Fatal("shard-filled assemble differs from the unsharded run")
	}
}
