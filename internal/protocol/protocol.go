// Package protocol defines the agent-side interface of the Coded Radio
// Network Model: what a contention-resolution protocol may observe and
// do.  Per the model, devices hear exactly two signals — silent slots and
// decoding events — and decide each slot whether their packet broadcasts.
package protocol

import "repro/internal/channel"

// Protocol is a contention-resolution protocol driving the packets
// currently in the system.  The simulation engine calls, per slot:
//
//  1. Inject for any newly arrived packets,
//  2. Transmitters to collect this slot's broadcasts,
//  3. Observe with the slot's feedback (silence / decoding event).
//
// Implementations own all per-packet state.  Packets delivered by a
// decoding event must leave the system (stop transmitting, not be
// counted by Pending).
type Protocol interface {
	// Name identifies the protocol in reports.
	Name() string

	// Inject adds newly arrived packets.  Arrivals at slot `now` hear
	// slot now's feedback but must not transmit before slot now+1.
	Inject(now int64, ids []channel.PacketID)

	// Transmitters appends the IDs broadcasting in slot `now` to buf and
	// returns it.  The engine passes buf with length 0 and reuses it
	// across slots; implementations must not retain it.
	Transmitters(now int64, buf []channel.PacketID) []channel.PacketID

	// Observe delivers the end-of-slot feedback: whether the slot was
	// silent and any decoding event.  Delivered packets leave the system.
	Observe(fb channel.Feedback)

	// Pending returns the number of packets still in the system.
	Pending() int
}

// Waker is an optional interface a protocol can implement to let the
// engine skip slots: NextWake returns the next slot at or after `now` at
// which the protocol may transmit or its state may change.  The engine
// only skips slots when the channel is guaranteed silent in between
// (no packets pending), so most protocols need not implement it.
type Waker interface {
	NextWake(now int64) int64
}

// Coaster is an optional interface behind the engine's event-driven
// fast-forward through runs of identical bad slots (e.g. the tail of an
// overfull Decodable Backoff epoch, where the same joiners broadcast
// for up to κ slots straight).  CoastUntil returns the last slot
// (inclusive, ≥ now) through which the protocol guarantees its
// transmitter set is frozen: every slot in (now, CoastUntil(now)] would
// see Transmitters return exactly the list just collected, with no RNG
// consumption and no PrepareSlot work — and the guarantee must hold
// even across arrivals injected in that range (arrivals must not alter
// the current transmitter set, only future ones).
//
// The engine still runs every coasted slot's arrivals, feedback,
// Observe, and per-slot accounting; it only skips re-collecting and
// re-validating the unchanged transmitters, and only while those slots
// keep classifying Bad.  CoastUntil is called after the slot's Observe,
// so epoch state is current.  Returning now disables coasting for the
// slot.
type Coaster interface {
	CoastUntil(now int64) int64
}

// NumShards is the fixed shard count of every Partitioned protocol in
// this repository.  The count is deliberately a constant, independent of
// how many worker goroutines the engine runs: the shard structure (which
// packet belongs to which shard, how per-slot output chunks) is part of
// a protocol's deterministic execution, so it must not vary with the
// machine or the Config.Workers knob.  Workers only decides how many
// goroutines sweep the fixed shards; results are bit-identical at any
// worker count by construction.
const NumShards = 16

// Partitioned is an optional interface for protocols whose per-slot
// station work can fan out across NumShards shards, letting the staged
// engine (sim.Config.Workers ≥ 1) parallelize one huge trial.
//
// The staged per-slot cycle is
//
//	PrepareSlot(now)                     // centralized decisions, serial
//	ShardTransmitters(now, 0..S-1, ...)  // fan-out, any order/concurrency
//	          ... medium Step ...
//	ShardObserve(0..S-1, fb)             // fan-out, any order/concurrency
//	ReduceSlot(fb)                       // centralized reduce, serial
//
// and the contract is bit-exactness: with the engine concatenating the
// ShardTransmitters outputs in shard order, the cycle must leave the
// protocol in exactly the state (including its RNG stream position) the
// monolithic Transmitters/Observe cycle would, and emit exactly the same
// transmitter list in the same order.  The discipline that makes this
// achievable: every state update that consumes randomness or touches
// shared structures lives in PrepareSlot/ReduceSlot (serial stages);
// ShardTransmitters and ShardObserve only read shared state and write
// shard-local state.  Implementations must keep ShardTransmitters and
// ShardObserve free of data races when called concurrently for distinct
// shards.
type Partitioned interface {
	Protocol

	// Shards returns the shard count (NumShards for every in-repo
	// implementation).  It must be constant over the protocol's lifetime.
	Shards() int

	// PrepareSlot runs the slot's centralized decision step — epoch
	// start, joiner selection, schedule pops: everything that consumes
	// the protocol's RNG or rewrites shared state.  The engine calls it
	// exactly once per stepped slot, before any ShardTransmitters call.
	PrepareSlot(now int64)

	// ShardTransmitters appends shard `shard`'s transmitters for slot
	// `now` to buf and returns it.  Concatenated in increasing shard
	// order, the shard outputs must equal what Transmitters would have
	// returned after the same PrepareSlot.  Safe for concurrent calls
	// with distinct shards; must not mutate shared state.
	ShardTransmitters(now int64, shard int, buf []channel.PacketID) []channel.PacketID

	// ShardObserve delivers the slot's feedback to shard `shard`'s local
	// state.  Safe for concurrent calls with distinct shards; must not
	// mutate shared state.  Protocols whose feedback handling is
	// inherently centralized (all in-repo ones) implement it as a no-op
	// and do the work in ReduceSlot.
	ShardObserve(shard int, fb channel.Feedback)

	// ReduceSlot runs the slot's centralized feedback reduce after every
	// ShardObserve call returned.  After it, the protocol's state must be
	// bit-identical to what Observe(fb) would have produced on the serial
	// path.
	ReduceSlot(fb channel.Feedback)

	// ShardPending returns the number of pending packets owned by shard
	// `shard`; the sum over all shards must equal Pending().  Ownership
	// is by packet ID (id mod Shards()) for every in-repo implementation.
	ShardPending(shard int) int
}

// PartitionedWaker is the sharded counterpart of Waker: the staged
// engine computes a fast-forward target by reducing per-shard wake
// times with min (ignoring negative "no wake" answers), and that reduce
// must equal NextWake.  ShardNextWake is called from the serial advance
// stage, so — unlike ShardTransmitters/ShardObserve — it may touch
// shared state (e.g. lazily popping dead schedule entries).
type PartitionedWaker interface {
	Partitioned
	Waker

	// ShardNextWake returns the next slot at or after now at which shard
	// `shard` may transmit, or -1 if it never will.  min over the
	// non-negative answers must equal NextWake(now) (or every shard
	// answers -1 exactly when NextWake has no wake-up to report).
	ShardNextWake(now int64, shard int) int64
}

// ShardRange returns the half-open chunk [lo, hi) of an n-element,
// shard-order-preserving contiguous split: concatenating the chunks in
// increasing shard order reproduces the original slice.  Chunk sizes
// differ by at most one.
func ShardRange(n, shard, shards int) (lo, hi int) {
	return n * shard / shards, n * (shard + 1) / shards
}

// EpochKind classifies Decodable Backoff epochs; exported here so the
// measurement harness can consume epoch statistics without importing the
// core package's internals.
type EpochKind uint8

const (
	// EpochSilent ends after one silent slot: no packet joined.
	EpochSilent EpochKind = iota
	// EpochSuccessful ends with a decoding event delivering the joiners.
	EpochSuccessful
	// EpochOverfull ends after kappa slots without a decoding event.
	EpochOverfull
)

// String returns the kind name.
func (k EpochKind) String() string {
	switch k {
	case EpochSilent:
		return "silent"
	case EpochSuccessful:
		return "successful"
	case EpochOverfull:
		return "overfull"
	}
	return "unknown"
}

// EpochInfo describes one completed epoch of an epoch-structured
// protocol, as reported to probes.
type EpochInfo struct {
	Kind    EpochKind
	Start   int64 // first slot of the epoch
	Length  int64 // number of slots
	Joiners int   // packets that joined the epoch
	// Contention is the sum of joining probabilities over active packets
	// at the start of the epoch.
	Contention float64
	// PMin is the minimum joining probability among active packets at
	// the start of the epoch (1 if none).
	PMin float64
	// Active and Inactive are the population counts at the start of the
	// epoch.
	Active, Inactive int
	// Error reports whether this was an error epoch in the paper's sense
	// (Definition 2): silent with contention >= kappa^(1/4), or overfull
	// with contention <= kappa^(3/4).
	Error bool
}

// EpochObserver receives a callback after every completed epoch.
// The Decodable Backoff implementation accepts one for instrumentation.
type EpochObserver interface {
	ObserveEpoch(info EpochInfo)
}

// EpochObserverFunc adapts a function to the EpochObserver interface.
type EpochObserverFunc func(info EpochInfo)

// ObserveEpoch calls f(info).
func (f EpochObserverFunc) ObserveEpoch(info EpochInfo) { f(info) }
