package cache

import "time"

// Backend is the record-store contract the sweep executor runs against:
// a shared namespace of content-addressed JSON records plus an advisory
// lease table.  The filesystem Store implements it for single-machine
// (or shared-filesystem) use; httpstore.Client implements it over a
// crnserve instance so many machines share one namespace.
//
// Semantics every implementation must honor:
//
//   - Get is a miss (false, nil) for absent, corrupt, or undecodable
//     records — damage degrades to re-execution, never to a failed run.
//   - Put atomically replaces any previous record and supersedes any
//     lease on the same identity.  Records are content-addressed (the
//     identity is a digest of everything that determines the content),
//     so concurrent Puts of one identity write identical bytes and
//     last-write-wins is benign.
//   - List returns the identities of the records currently present, in
//     ascending order, so enumeration is deterministic.
//   - Claim grants an advisory lease: it returns true when the caller
//     now holds the identity (no completed record exists, and no other
//     owner holds an unexpired lease), renewing the caller's own lease
//     if it already holds one.  Expired or corrupt leases degrade to
//     misses and are re-claimable.  Leases are cooperative, not mutual
//     exclusion: two racing workers may both win, execute the cell
//     twice, and Put identical bytes — wasted work, never a wrong
//     record.
type Backend interface {
	Get(id string, v interface{}) (bool, error)
	Put(id string, v interface{}) error
	List() ([]string, error)
	Claim(id, owner string, ttl time.Duration) (bool, error)
}

// Store implements Backend.
var _ Backend = (*Store)(nil)
