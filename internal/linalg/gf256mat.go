package linalg

import (
	"fmt"

	"repro/internal/gf256"
)

// Matrix is a dense matrix over GF(2^8), stored row-major.
type Matrix struct {
	rows, cols int
	data       []byte
}

// NewMatrix returns a rows×cols zero matrix over GF(2^8).
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic("linalg: negative matrix dimension")
	}
	return &Matrix{rows: rows, cols: cols, data: make([]byte, rows*cols)}
}

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Matrix) Cols() int { return m.cols }

// Row returns row i as a mutable slice aliasing the matrix storage.
func (m *Matrix) Row(i int) []byte {
	return m.data[i*m.cols : (i+1)*m.cols]
}

// Get returns the element at (i, j).
func (m *Matrix) Get(i, j int) byte {
	m.check(i, j)
	return m.data[i*m.cols+j]
}

// Set assigns the element at (i, j).
func (m *Matrix) Set(i, j int, v byte) {
	m.check(i, j)
	m.data[i*m.cols+j] = v
}

func (m *Matrix) check(i, j int) {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("linalg: index (%d,%d) out of %dx%d matrix", i, j, m.rows, m.cols))
	}
}

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.rows, m.cols)
	copy(c.data, m.data)
	return c
}

// Identity returns the n×n identity matrix over GF(2^8).
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// Mul returns the matrix product a·b over GF(2^8).
func Mul(a, b *Matrix) *Matrix {
	if a.cols != b.rows {
		panic(fmt.Sprintf("linalg: Mul dimension mismatch %dx%d · %dx%d", a.rows, a.cols, b.rows, b.cols))
	}
	out := NewMatrix(a.rows, b.cols)
	for i := 0; i < a.rows; i++ {
		or := out.Row(i)
		ar := a.Row(i)
		for k, av := range ar {
			if av != 0 {
				gf256.MulSlice(or, b.Row(k), av)
			}
		}
	}
	return out
}

// MulVec returns the matrix–vector product m·x over GF(2^8).
func (m *Matrix) MulVec(x []byte) []byte {
	if len(x) != m.cols {
		panic("linalg: MulVec dimension mismatch")
	}
	out := make([]byte, m.rows)
	for i := 0; i < m.rows; i++ {
		var acc byte
		for j, v := range m.Row(i) {
			if v != 0 && x[j] != 0 {
				acc ^= gf256.Mul(v, x[j])
			}
		}
		out[i] = acc
	}
	return out
}

// Rank returns the rank of the matrix over GF(2^8).  The receiver is not
// modified.
func (m *Matrix) Rank() int {
	w := m.Clone()
	rank := 0
	for col := 0; col < w.cols && rank < w.rows; col++ {
		pivot := -1
		for i := rank; i < w.rows; i++ {
			if w.Get(i, col) != 0 {
				pivot = i
				break
			}
		}
		if pivot < 0 {
			continue
		}
		w.swapRows(rank, pivot)
		pr := w.Row(rank)
		gf256.ScaleSlice(pr, gf256.Inv(pr[col]))
		for i := 0; i < w.rows; i++ {
			if i != rank {
				if c := w.Get(i, col); c != 0 {
					gf256.MulSlice(w.Row(i), pr, c)
				}
			}
		}
		rank++
	}
	return rank
}

func (m *Matrix) swapRows(i, j int) {
	if i == j {
		return
	}
	a, b := m.Row(i), m.Row(j)
	for k := range a {
		a[k], b[k] = b[k], a[k]
	}
}

// Invertible reports whether the matrix is square and has full rank.
func (m *Matrix) Invertible() bool {
	return m.rows == m.cols && m.Rank() == m.rows
}

// Inverse returns the inverse matrix, or an error if the matrix is not
// square or is singular.
func (m *Matrix) Inverse() (*Matrix, error) {
	if m.rows != m.cols {
		return nil, fmt.Errorf("linalg: inverse of non-square %dx%d matrix", m.rows, m.cols)
	}
	n := m.rows
	w := m.Clone()
	inv := Identity(n)
	for col := 0; col < n; col++ {
		pivot := -1
		for i := col; i < n; i++ {
			if w.Get(i, col) != 0 {
				pivot = i
				break
			}
		}
		if pivot < 0 {
			return nil, fmt.Errorf("linalg: singular GF(2^8) matrix")
		}
		w.swapRows(col, pivot)
		inv.swapRows(col, pivot)
		c := gf256.Inv(w.Get(col, col))
		gf256.ScaleSlice(w.Row(col), c)
		gf256.ScaleSlice(inv.Row(col), c)
		for i := 0; i < n; i++ {
			if i != col {
				if c := w.Get(i, col); c != 0 {
					gf256.MulSlice(w.Row(i), w.Row(col), c)
					gf256.MulSlice(inv.Row(i), inv.Row(col), c)
				}
			}
		}
	}
	return inv, nil
}

// Equal reports whether two matrices have identical shape and contents.
func (m *Matrix) Equal(o *Matrix) bool {
	if m.rows != o.rows || m.cols != o.cols {
		return false
	}
	for i, v := range m.data {
		if v != o.data[i] {
			return false
		}
	}
	return true
}

// Solve solves m·x = b for x, where m must be square and invertible.
func (m *Matrix) Solve(b []byte) ([]byte, error) {
	if m.rows != m.cols {
		return nil, fmt.Errorf("linalg: Solve needs a square matrix, have %dx%d", m.rows, m.cols)
	}
	if len(b) != m.rows {
		return nil, fmt.Errorf("linalg: Solve dimension mismatch: %d rows vs %d rhs", m.rows, len(b))
	}
	inv, err := m.Inverse()
	if err != nil {
		return nil, err
	}
	return inv.MulVec(b), nil
}
