package gf256

import (
	"testing"
	"testing/quick"
)

func TestMulMatchesSlow(t *testing.T) {
	for a := 0; a < 256; a++ {
		for b := 0; b < 256; b++ {
			if got, want := Mul(byte(a), byte(b)), mulSlow(byte(a), byte(b)); got != want {
				t.Fatalf("Mul(%d,%d) = %d, want %d", a, b, got, want)
			}
		}
	}
}

func TestFieldAxioms(t *testing.T) {
	// Associativity and commutativity of * and +, distributivity.
	f := func(a, b, c byte) bool {
		if Add(a, b) != Add(b, a) || Mul(a, b) != Mul(b, a) {
			return false
		}
		if Add(Add(a, b), c) != Add(a, Add(b, c)) {
			return false
		}
		if Mul(Mul(a, b), c) != Mul(a, Mul(b, c)) {
			return false
		}
		return Mul(a, Add(b, c)) == Add(Mul(a, b), Mul(a, c))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestIdentities(t *testing.T) {
	for a := 0; a < 256; a++ {
		x := byte(a)
		if Add(x, 0) != x {
			t.Fatalf("additive identity fails for %d", a)
		}
		if Mul(x, 1) != x {
			t.Fatalf("multiplicative identity fails for %d", a)
		}
		if Add(x, x) != 0 {
			t.Fatalf("characteristic 2 fails for %d", a)
		}
	}
}

func TestInverses(t *testing.T) {
	for a := 1; a < 256; a++ {
		x := byte(a)
		if Mul(x, Inv(x)) != 1 {
			t.Fatalf("Inv(%d) wrong", a)
		}
		if Div(x, x) != 1 {
			t.Fatalf("Div(%d,%d) != 1", a, a)
		}
	}
}

func TestDivIsMulByInv(t *testing.T) {
	f := func(a, b byte) bool {
		if b == 0 {
			return true
		}
		return Div(a, b) == Mul(a, Inv(b))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestDivByZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Div by zero did not panic")
		}
	}()
	Div(5, 0)
}

func TestInvZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Inv(0) did not panic")
		}
	}()
	Inv(0)
}

func TestPow(t *testing.T) {
	for a := 0; a < 256; a++ {
		x := byte(a)
		want := byte(1)
		for n := 0; n < 10; n++ {
			if got := Pow(x, n); got != want {
				t.Fatalf("Pow(%d,%d) = %d, want %d", a, n, got, want)
			}
			want = Mul(want, x)
		}
	}
	// Fermat: a^255 = 1 for a != 0.
	for a := 1; a < 256; a++ {
		if Pow(byte(a), 255) != 1 {
			t.Fatalf("Pow(%d,255) != 1", a)
		}
	}
}

func TestGeneratorOrder(t *testing.T) {
	// The generator must have order 255 (i.e. hit every nonzero element).
	seen := make(map[byte]bool)
	x := byte(1)
	for i := 0; i < 255; i++ {
		if seen[x] {
			t.Fatalf("generator cycle shorter than 255 (repeat at %d)", i)
		}
		seen[x] = true
		x = mulSlow(x, generator)
	}
	if len(seen) != 255 {
		t.Fatalf("generator hit %d elements, want 255", len(seen))
	}
}

func TestMulSlice(t *testing.T) {
	src := []byte{1, 2, 3, 0, 255, 17}
	for _, c := range []byte{0, 1, 2, 93, 255} {
		dst := []byte{9, 8, 7, 6, 5, 4}
		want := make([]byte, len(dst))
		for i := range dst {
			want[i] = Add(dst[i], Mul(c, src[i]))
		}
		MulSlice(dst, src, c)
		for i := range dst {
			if dst[i] != want[i] {
				t.Fatalf("MulSlice c=%d index %d: got %d want %d", c, i, dst[i], want[i])
			}
		}
	}
}

func TestMulSliceLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MulSlice length mismatch did not panic")
		}
	}()
	MulSlice(make([]byte, 2), make([]byte, 3), 1)
}

func TestScaleSlice(t *testing.T) {
	for _, c := range []byte{0, 1, 7, 200} {
		s := []byte{0, 1, 2, 50, 255}
		want := make([]byte, len(s))
		for i := range s {
			want[i] = Mul(s[i], c)
		}
		ScaleSlice(s, c)
		for i := range s {
			if s[i] != want[i] {
				t.Fatalf("ScaleSlice c=%d index %d: got %d want %d", c, i, s[i], want[i])
			}
		}
	}
}

func BenchmarkMul(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = Mul(byte(i), byte(i>>8))
	}
}

func BenchmarkMulSlice1K(b *testing.B) {
	dst := make([]byte, 1024)
	src := make([]byte, 1024)
	for i := range src {
		src[i] = byte(i*7 + 1)
	}
	b.SetBytes(1024)
	for i := 0; i < b.N; i++ {
		MulSlice(dst, src, byte(i)|1)
	}
}
