// Package stats provides the summary statistics the measurement harness
// reports: running moments, quantiles, histograms, confidence intervals,
// and down-sampled time series.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary accumulates running moments and extremes of a stream of
// float64 observations.  The zero value is ready to use.
type Summary struct {
	n          int64
	mean, m2   float64
	min, max   float64
	hasExtreme bool
}

// Add records one observation.
func (s *Summary) Add(x float64) {
	s.n++
	delta := x - s.mean
	s.mean += delta / float64(s.n)
	s.m2 += delta * (x - s.mean)
	if !s.hasExtreme || x < s.min {
		s.min = x
	}
	if !s.hasExtreme || x > s.max {
		s.max = x
	}
	s.hasExtreme = true
}

// N returns the number of observations.
func (s *Summary) N() int64 { return s.n }

// Mean returns the sample mean (0 if empty).
func (s *Summary) Mean() float64 { return s.mean }

// Variance returns the unbiased sample variance (0 if fewer than two
// observations).
func (s *Summary) Variance() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// Stddev returns the sample standard deviation.
func (s *Summary) Stddev() float64 { return math.Sqrt(s.Variance()) }

// Min returns the smallest observation (0 if empty).
func (s *Summary) Min() float64 {
	if !s.hasExtreme {
		return 0
	}
	return s.min
}

// Max returns the largest observation (0 if empty).
func (s *Summary) Max() float64 {
	if !s.hasExtreme {
		return 0
	}
	return s.max
}

// CI95 returns the half-width of the normal-approximation 95% confidence
// interval of the mean (0 if fewer than two observations).
func (s *Summary) CI95() float64 {
	if s.n < 2 {
		return 0
	}
	return 1.96 * s.Stddev() / math.Sqrt(float64(s.n))
}

// String formats the summary compactly.
func (s *Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4g ±%.2g [%.4g, %.4g]",
		s.n, s.Mean(), s.CI95(), s.Min(), s.Max())
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of the data using linear
// interpolation between order statistics.  It sorts a copy; the input is
// not modified.  It panics on empty data or q outside [0, 1].
func Quantile(data []float64, q float64) float64 {
	if len(data) == 0 {
		panic("stats: quantile of empty data")
	}
	if q < 0 || q > 1 {
		panic("stats: quantile fraction out of [0,1]")
	}
	sorted := make([]float64, len(data))
	copy(sorted, data)
	sort.Float64s(sorted)
	return quantileSorted(sorted, q)
}

// Quantiles returns several quantiles with one sort.  Every fraction is
// validated before the data is sorted, so a bad fraction panics
// immediately instead of after an O(n log n) sort with the output
// half-filled.
func Quantiles(data []float64, qs ...float64) []float64 {
	if len(data) == 0 {
		panic("stats: quantile of empty data")
	}
	for _, q := range qs {
		if q < 0 || q > 1 {
			panic("stats: quantile fraction out of [0,1]")
		}
	}
	sorted := make([]float64, len(data))
	copy(sorted, data)
	sort.Float64s(sorted)
	out := make([]float64, len(qs))
	for i, q := range qs {
		out[i] = quantileSorted(sorted, q)
	}
	return out
}

func quantileSorted(sorted []float64, q float64) float64 {
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(pos)
	if lo == len(sorted)-1 {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// Histogram counts observations into equal-width bins over [lo, hi].
// Observations outside the range land in the first or last bin.
type Histogram struct {
	Lo, Hi float64
	Counts []int64
}

// NewHistogram returns a histogram with the given number of bins ≥ 1 over
// [lo, hi), hi > lo.
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if bins < 1 {
		panic("stats: histogram needs at least one bin")
	}
	if hi <= lo {
		panic("stats: histogram range empty")
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int64, bins)}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	bins := len(h.Counts)
	idx := int(float64(bins) * (x - h.Lo) / (h.Hi - h.Lo))
	if idx < 0 {
		idx = 0
	}
	if idx >= bins {
		idx = bins - 1
	}
	h.Counts[idx]++
}

// Total returns the number of observations recorded.
func (h *Histogram) Total() int64 {
	var t int64
	for _, c := range h.Counts {
		t += c
	}
	return t
}

// Series is a down-sampling time series recorder: it keeps at most Cap
// points by doubling its sampling stride when full, so arbitrarily long
// executions produce bounded-size traces with uniform spacing.
type Series struct {
	cap    int
	stride int64
	next   int64
	T      []int64
	V      []float64
}

// NewSeries returns a series that retains at most cap points (cap ≥ 2).
func NewSeries(cap int) *Series {
	if cap < 2 {
		panic("stats: series cap must be at least 2")
	}
	return &Series{cap: cap, stride: 1}
}

// Add offers the observation v at time t.  Points are recorded every
// stride steps; when the buffer fills, every other point is dropped and
// the stride doubles.  The declined-sample fast path is small enough to
// inline, so per-slot callers pay one compare per skipped observation.
func (s *Series) Add(t int64, v float64) {
	if t < s.next {
		return
	}
	s.record(t, v)
}

func (s *Series) record(t int64, v float64) {
	s.T = append(s.T, t)
	s.V = append(s.V, v)
	if len(s.T) >= s.cap {
		keepT, keepV := s.T[:0], s.V[:0]
		for i := 0; i < len(s.T); i += 2 {
			keepT = append(keepT, s.T[i])
			keepV = append(keepV, s.V[i])
		}
		s.T, s.V = keepT, keepV
		s.stride *= 2
	}
	// The next sample is one (possibly just-doubled) stride after the
	// last *retained* point; computing it from the pre-compaction stride
	// would land it an old stride late and skew every later sample off
	// the uniform grid.
	s.next = s.T[len(s.T)-1] + s.stride
}

// Len returns the number of retained points.
func (s *Series) Len() int { return len(s.T) }

// Stride returns the current sampling stride.
func (s *Series) Stride() int64 { return s.stride }
