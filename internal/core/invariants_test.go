package core

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/channel"
	"repro/internal/rng"
)

// checkInvariants verifies the structural invariants of the bucketed
// population after every step:
//
//   - location map is exactly the union of buckets, joiners, inactive;
//   - every location reference is accurate;
//   - buckets are sorted by base, non-empty between epochs, and no
//     effective exponent exceeds the cap;
//   - all probabilities are in (0, 1];
//   - Pending() equals the population size.
func checkInvariants(t *testing.T, d *DecodableBackoff) {
	t.Helper()
	total := 0
	prevBase := math.MinInt64
	for _, b := range d.buckets {
		if b.base <= prevBase {
			t.Fatalf("buckets out of order: %d after %d", b.base, prevBase)
		}
		prevBase = b.base
		if i, ok := d.bucketAt(b.base); !ok || d.buckets[i] != b {
			t.Fatalf("bucket index desynced at base %d", b.base)
		}
		if e := b.base + d.shift; e > d.eCap {
			t.Fatalf("bucket exceeds probability cap: effective exponent %d > %d", e, d.eCap)
		}
		p := d.prob(b.base + d.shift)
		if p <= 0 || p > 1 {
			t.Fatalf("bucket probability %v out of (0,1]", p)
		}
		for i, id := range b.ids {
			l, ok := d.loc.Get(int64(id))
			if !ok || l.where != inBucket || l.base != b.base || l.idx != i {
				t.Fatalf("packet %d bucket location desynced: %+v", id, l)
			}
			total++
		}
	}
	for i, j := range d.joiners {
		l, ok := d.loc.Get(int64(j.id))
		if !ok || l.where != inJoiners || l.idx != i {
			t.Fatalf("joiner %d location desynced: %+v", j.id, l)
		}
		total++
	}
	for i, id := range d.inactive {
		l, ok := d.loc.Get(int64(id))
		if !ok || l.where != inInactive || l.idx != i {
			t.Fatalf("inactive %d location desynced: %+v", id, l)
		}
		total++
	}
	if total != d.loc.Len() {
		t.Fatalf("location index has %d entries, population has %d", d.loc.Len(), total)
	}
	if d.Pending() != total {
		t.Fatalf("Pending() = %d, population = %d", d.Pending(), total)
	}
	if d.active != total-len(d.joiners)-len(d.inactive) {
		t.Fatalf("active counter desynced: %d", d.active)
	}
}

// TestInvariantsUnderRandomWorkload drives DBA through bursty arrivals,
// overfull cascades, deliveries, and cap merges, checking every
// structural invariant after every slot.
func TestInvariantsUnderRandomWorkload(t *testing.T) {
	for _, kappa := range []int{6, 16, 64} {
		t.Run(fmt.Sprintf("kappa=%d", kappa), func(t *testing.T) {
			r := rng.New(uint64(kappa) * 97)
			d := New(kappa, rng.New(uint64(kappa)))
			ch := channel.New(kappa, 4*kappa)
			var nextID channel.PacketID
			buf := make([]channel.PacketID, 0, 256)
			for now := int64(0); now < 4000; now++ {
				switch {
				case now == 0:
					ids := make([]channel.PacketID, 300) // force overfull cascades
					for i := range ids {
						ids[i] = nextID
						nextID++
					}
					d.Inject(now, ids)
				case r.Bernoulli(0.3):
					d.Inject(now, []channel.PacketID{nextID})
					nextID++
				}
				buf = d.Transmitters(now, buf[:0])
				class, ev := ch.Step(now, buf)
				d.Observe(channel.Feedback{Slot: now, Silent: class == channel.Silent, Event: ev})
				checkInvariants(t, d)
			}
		})
	}
}

// TestInvariantsWithAblations covers the variant code paths (cap merges
// with p0=1, floor-less timid starts, no admission control).
func TestInvariantsWithAblations(t *testing.T) {
	variants := map[string][]Option{
		"greedy":      {WithInitialProb(1)},
		"timid":       {WithInitialProb(1e-4)},
		"noadmission": {WithoutAdmissionControl()},
		"slow":        {WithUpdateFactor(1.5)},
	}
	for name, opts := range variants {
		t.Run(name, func(t *testing.T) {
			const kappa = 16
			r := rng.New(7)
			d := New(kappa, rng.New(8), opts...)
			ch := channel.New(kappa, 4*kappa)
			var nextID channel.PacketID
			buf := make([]channel.PacketID, 0, 64)
			for now := int64(0); now < 2000; now++ {
				if r.Bernoulli(0.5) {
					d.Inject(now, []channel.PacketID{nextID})
					nextID++
				}
				buf = d.Transmitters(now, buf[:0])
				class, ev := ch.Step(now, buf)
				d.Observe(channel.Feedback{Slot: now, Silent: class == channel.Silent, Event: ev})
				checkInvariants(t, d)
			}
		})
	}
}

// TestContentionMatchesBruteForce cross-checks the bucketed contention
// computation against a per-packet sum.
func TestContentionMatchesBruteForce(t *testing.T) {
	const kappa = 16
	r := rng.New(77)
	d := New(kappa, rng.New(78))
	ch := channel.New(kappa, 4*kappa)
	var nextID channel.PacketID
	buf := make([]channel.PacketID, 0, 64)
	for now := int64(0); now < 1500; now++ {
		if r.Bernoulli(0.4) {
			d.Inject(now, []channel.PacketID{nextID})
			nextID++
		}
		buf = d.Transmitters(now, buf[:0])
		class, ev := ch.Step(now, buf)
		d.Observe(channel.Feedback{Slot: now, Silent: class == channel.Silent, Event: ev})

		// Brute force: sum probabilities over buckets and joiners.
		var want float64
		wantMin := 1.0
		count := 0
		for _, b := range d.buckets {
			p := d.prob(b.base + d.shift)
			want += p * float64(len(b.ids))
			if len(b.ids) > 0 && p < wantMin {
				wantMin = p
			}
			count += len(b.ids)
		}
		for _, j := range d.joiners {
			p := d.prob(j.base + d.shift)
			want += p
			if p < wantMin {
				wantMin = p
			}
			count++
		}
		got, gotMin := d.contention()
		if math.Abs(got-want) > 1e-9*(1+want) {
			t.Fatalf("slot %d: contention %v != brute force %v", now, got, want)
		}
		if count > 0 && math.Abs(gotMin-wantMin) > 1e-12 {
			t.Fatalf("slot %d: pmin %v != brute force %v", now, gotMin, wantMin)
		}
	}
}

// TestCapMergeKeepsProbabilityAtOne: repeated silent feedback pushes all
// probabilities to the cap and merged buckets stay canonical.
func TestCapMergeKeepsProbabilityAtOne(t *testing.T) {
	const kappa = 16 // factor 2, p0 = 1/4, cap at e=2
	d := New(kappa, rng.New(5))
	d.Inject(0, []channel.PacketID{1, 2, 3})
	now := int64(0)
	// Feed silence whenever the protocol does not transmit; deliver
	// whenever it does.  Eventually probabilities cap at 1 or packets
	// leave; either way invariants must hold throughout.
	for i := 0; i < 50 && d.Pending() > 0; i++ {
		buf := d.Transmitters(now, nil)
		if len(buf) == 0 {
			d.Observe(channel.Feedback{Slot: now, Silent: true})
		} else {
			d.Observe(channel.Feedback{Slot: now,
				Event: &channel.Event{Slot: now, Packets: buf}})
		}
		checkInvariants(t, d)
		now++
	}
	if d.Pending() != 0 {
		t.Fatalf("packets stuck at %d pending", d.Pending())
	}
}

// TestEventDeliveringNonJoiners exercises the defensive delivery paths:
// an event naming packets that are in buckets or inactive (possible only
// with exotic channel configurations) must still remove them cleanly.
func TestEventDeliveringNonJoiners(t *testing.T) {
	const kappa = 16
	d := New(kappa, rng.New(3))
	d.Inject(0, []channel.PacketID{1, 2, 3})
	d.Transmitters(0, nil)
	d.Observe(channel.Feedback{Slot: 0, Silent: true}) // activate all
	// Start an epoch so some packets may be joiners, then deliver a mix.
	d.Transmitters(1, nil)
	d.Observe(channel.Feedback{Slot: 1,
		Event: &channel.Event{Slot: 1, Packets: []channel.PacketID{1, 2, 3}}})
	checkInvariants(t, d)
	if d.Pending() != 0 {
		t.Fatalf("pending %d after delivering all", d.Pending())
	}
	if d.Stats().Delivered != 3 {
		t.Fatalf("delivered %d", d.Stats().Delivered)
	}
}

// TestEventDeliveringInactive: a delivery naming an inactive packet (it
// never transmitted, so only a buggy or exotic channel would do this)
// must not corrupt state.
func TestEventDeliveringInactive(t *testing.T) {
	d := New(16, rng.New(4))
	d.Inject(0, []channel.PacketID{7, 8})
	d.Transmitters(0, nil)
	// Event delivered while 7, 8 still inactive.
	d.Observe(channel.Feedback{Slot: 0,
		Event: &channel.Event{Slot: 0, Packets: []channel.PacketID{7}}})
	checkInvariants(t, d)
	if d.Pending() != 1 {
		t.Fatalf("pending %d, want 1", d.Pending())
	}
}

// TestEventForUnknownPacket: deliveries for packets the protocol does
// not own are ignored (multi-protocol channel sharing).
func TestEventForUnknownPacket(t *testing.T) {
	d := New(16, rng.New(5))
	d.Inject(0, []channel.PacketID{1})
	d.Transmitters(0, nil)
	d.Observe(channel.Feedback{Slot: 0,
		Event: &channel.Event{Slot: 0, Packets: []channel.PacketID{99}}})
	checkInvariants(t, d)
	if d.Pending() != 1 {
		t.Fatalf("pending %d, want 1", d.Pending())
	}
}

// TestObserveWithoutEpoch: feedback outside any epoch (engine fast-
// forward) is absorbed without state corruption.
func TestObserveWithoutEpoch(t *testing.T) {
	d := New(16, rng.New(6))
	d.Observe(channel.Feedback{Slot: 0, Silent: true})
	if d.Stats().IdleSlots != 1 {
		t.Fatalf("idle slots %d", d.Stats().IdleSlots)
	}
	d.Inject(1, []channel.PacketID{1})
	d.Observe(channel.Feedback{Slot: 1, Silent: true}) // pending>0, no epoch
	checkInvariants(t, d)
}

// TestProbCapAndFloor covers the probability clamp arithmetic.
func TestProbCapAndFloor(t *testing.T) {
	d := New(16, rng.New(7)) // p0=1/4, factor=2, eCap=2
	if p := d.prob(2); p != 1 {
		t.Fatalf("prob at cap = %v", p)
	}
	if p := d.prob(5); p != 1 {
		t.Fatalf("prob beyond cap = %v", p)
	}
	if p := d.prob(0); math.Abs(p-0.25) > 1e-12 {
		t.Fatalf("prob at 0 = %v", p)
	}
	if p := d.prob(-2); math.Abs(p-0.0625) > 1e-12 {
		t.Fatalf("prob at -2 = %v", p)
	}
	// A variant whose p0·f^e crosses 1 between integer exponents:
	// eCap = ceil(-ln(0.3)/ln(3)) = 2, so prob(1) = 0.9 and prob(2) = 1.
	d2 := New(16, rng.New(8), WithInitialProb(0.3), WithUpdateFactor(3))
	if p := d2.prob(1); math.Abs(p-0.9) > 1e-12 {
		t.Fatalf("prob(1) = %v, want 0.9", p)
	}
	if p := d2.prob(2); p != 1 {
		t.Fatalf("prob(2) = %v, want 1 (capped)", p)
	}
}
