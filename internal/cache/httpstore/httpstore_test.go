package httpstore

import (
	"net/http/httptest"
	"os"
	"reflect"
	"testing"
	"time"

	"repro/internal/cache"
)

const (
	idA = "aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa"
	idB = "bbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbb"
)

type record struct {
	Key   string  `json:"key"`
	Value float64 `json:"value"`
}

// newPair serves a fresh filesystem store over httptest and returns
// both ends, so every test exercises the full client → HTTP → server →
// disk path.
func newPair(t *testing.T) (*cache.Store, *Client) {
	t.Helper()
	store, err := cache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewServer(store))
	t.Cleanup(srv.Close)
	client, err := NewClient(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	return store, client
}

func TestNewClientRejectsBadURLs(t *testing.T) {
	for _, bad := range []string{"", "not a url", "ftp://host", "http://", "/just/a/path", "host:8080"} {
		if _, err := NewClient(bad); err == nil {
			t.Errorf("NewClient(%q) accepted", bad)
		}
	}
	if _, err := NewClient("http://localhost:8771/"); err != nil {
		t.Fatalf("trailing slash rejected: %v", err)
	}
}

func TestGetPutListRoundTrip(t *testing.T) {
	store, client := newPair(t)
	var missing record
	if ok, err := client.Get(idA, &missing); err != nil || ok {
		t.Fatalf("get of absent record = (%v, %v), want miss", ok, err)
	}
	want := record{Key: "cell", Value: 0.75}
	if err := client.Put(idA, &want); err != nil {
		t.Fatal(err)
	}
	var got record
	if ok, err := client.Get(idA, &got); err != nil || !ok {
		t.Fatalf("get after put = (%v, %v), want hit", ok, err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip: got %+v, want %+v", got, want)
	}
	// The record landed in the same namespace the filesystem store reads.
	var direct record
	if ok, err := store.Get(idA, &direct); err != nil || !ok || !reflect.DeepEqual(direct, want) {
		t.Fatalf("fs read-through = (%+v, %v, %v), want the record", direct, ok, err)
	}
	if err := client.Put(idB, &record{Key: "other"}); err != nil {
		t.Fatal(err)
	}
	ids, err := client.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 2 || ids[0] != idA || ids[1] != idB {
		t.Fatalf("List = %v, want sorted [%s %s]", ids, idA, idB)
	}
}

func TestCorruptRecordDegradesToMissOverHTTP(t *testing.T) {
	store, client := newPair(t)
	if err := os.WriteFile(store.Path(idA), []byte("{truncated"), 0o644); err != nil {
		t.Fatal(err)
	}
	var v record
	if ok, err := client.Get(idA, &v); err != nil || ok {
		t.Fatalf("corrupt record over HTTP = (%v, %v), want miss", ok, err)
	}
}

func TestMalformedIDIsAnErrorNotAMiss(t *testing.T) {
	_, client := newPair(t)
	var v record
	if _, err := client.Get("..%2Fescape", &v); err == nil {
		t.Fatal("malformed id accepted by Get")
	}
	if err := client.Put("nothex", &v); err == nil {
		t.Fatal("malformed id accepted by Put")
	}
	if _, err := client.Claim("nothex", "w1", time.Minute); err == nil {
		t.Fatal("malformed id accepted by Claim")
	}
}

func TestClaimSemanticsOverHTTP(t *testing.T) {
	_, client := newPair(t)
	if ok, err := client.Claim(idA, "w1", time.Minute); err != nil || !ok {
		t.Fatalf("first claim = (%v, %v), want granted", ok, err)
	}
	if ok, err := client.Claim(idA, "w1", time.Minute); err != nil || !ok {
		t.Fatalf("renewal = (%v, %v), want granted", ok, err)
	}
	if ok, err := client.Claim(idA, "w2", time.Minute); err != nil || ok {
		t.Fatalf("foreign claim = (%v, %v), want refused", ok, err)
	}
	// Completion supersedes the lease; the cell is then un-claimable.
	if err := client.Put(idA, &record{Key: "done"}); err != nil {
		t.Fatal(err)
	}
	if ok, err := client.Claim(idA, "w2", time.Minute); err != nil || ok {
		t.Fatalf("claim of completed record = (%v, %v), want refused", ok, err)
	}
	// Expired leases are re-claimable through the wire too.
	if ok, _ := client.Claim(idB, "dead", 2*time.Millisecond); !ok {
		t.Fatal("short claim refused")
	}
	time.Sleep(10 * time.Millisecond)
	if ok, err := client.Claim(idB, "w3", time.Minute); err != nil || !ok {
		t.Fatalf("claim after expiry = (%v, %v), want granted", ok, err)
	}
}

func TestClientAgainstDeadServerErrors(t *testing.T) {
	store, err := cache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewServer(store))
	client, err := NewClient(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	srv.Close()
	var v record
	if _, err := client.Get(idA, &v); err == nil {
		t.Fatal("Get against a dead server returned no error")
	}
	if _, err := client.List(); err == nil {
		t.Fatal("List against a dead server returned no error")
	}
}
