package crn

import (
	"context"
	"math"
	"testing"

	"repro/internal/sweep"
)

func TestQuickstartFlow(t *testing.T) {
	const kappa, n = 64, 2000
	res := Run(Config{Kappa: kappa, Horizon: 1, Drain: true, Seed: 2},
		NewDecodableBackoff(kappa, 1), NewBatch(n))
	if res.Delivered != n || res.Pending != 0 {
		t.Fatalf("delivered %d pending %d", res.Delivered, res.Pending)
	}
	if thpt := res.CompletionThroughput(); thpt < 0.85 || thpt > 1 {
		t.Fatalf("throughput %v out of expected range", thpt)
	}
}

func TestFacadeProtocols(t *testing.T) {
	const n = 200
	protos := map[string]Protocol{
		"dba":   NewDecodableBackoff(16, 3),
		"beb":   NewExponentialBackoff(4),
		"aloha": NewSlottedAloha(5, 0.01),
		"genie": NewGenieAloha(6, 1),
		"mw":    NewMultiplicativeWeights(7),
	}
	for name, p := range protos {
		kappa := 16
		if name != "dba" {
			kappa = 1
		}
		res := Run(Config{Kappa: kappa, Horizon: 1, Drain: true, DrainLimit: 1 << 22, Seed: 8},
			p, NewBatch(n))
		if res.Delivered != n {
			t.Fatalf("%s delivered %d of %d", name, res.Delivered, n)
		}
	}
}

func TestFacadeArrivals(t *testing.T) {
	arrs := map[string]Arrivals{
		"batch":     NewBatch(10),
		"batchAt":   NewBatchAt(5, 10),
		"bernoulli": NewBernoulli(0.2),
		"poisson":   NewPoisson(0.2),
		"even":      NewEvenPaced(0.2),
		"burst":     NewWindowBurst(100, 20),
		"capped":    NewCappedArrivals(NewPoisson(0.5), 100, 20),
		"disruptor": NewCappedArrivals(NewDisruptor(5), 100, 10),
	}
	for name, a := range arrs {
		res := Run(Config{Kappa: 16, Horizon: 2000, Drain: true, Seed: 9},
			NewDecodableBackoff(16, 10), a)
		if res.Arrivals != res.Delivered+int64(res.Pending) {
			t.Fatalf("%s: conservation violated", name)
		}
	}
}

func TestFacadeOptions(t *testing.T) {
	p := NewDecodableBackoff(16, 1,
		WithUpdateFactor(2),
		WithInitialProb(0.5),
		WithoutAdmissionControl(),
		WithEpochObserver(func(EpochInfo) {}))
	res := Run(Config{Kappa: 16, Horizon: 1, Drain: true, Seed: 2}, p, NewBatch(50))
	if res.Delivered != 50 {
		t.Fatalf("optioned DBA delivered %d", res.Delivered)
	}
}

func TestTheoremHelpers(t *testing.T) {
	if TheoremRate(1024) <= 0 {
		t.Fatal("rate at 1024 should be positive")
	}
	if TheoremMinWindow(64) != 16*64*64 {
		t.Fatal("min window wrong")
	}
	if Potential(64, 0, 0, 0, 1) != 0 {
		t.Fatal("empty-system potential nonzero")
	}
	if Potential(64, 10, 0, 0, 1) != 10 {
		t.Fatal("potential should equal N for calm system")
	}
}

func TestRunTrialsFacade(t *testing.T) {
	results := RunTrials(4, 99, 2, func(trial int, seed uint64) *Result {
		return Run(Config{Kappa: 16, Horizon: 1, Drain: true, Seed: seed},
			NewDecodableBackoff(16, seed), NewBatch(100))
	})
	if len(results) != 4 {
		t.Fatalf("got %d results", len(results))
	}
	for i, r := range results {
		if r.Delivered != 100 {
			t.Fatalf("trial %d delivered %d", i, r.Delivered)
		}
	}
}

func TestChannelFacade(t *testing.T) {
	ch := NewChannel(4, 0)
	if _, ev := ch.Step(0, []PacketID{1}); ev == nil || ev.Size() != 1 {
		t.Fatal("lone transmitter not decoded")
	}
}

func TestMediumFacade(t *testing.T) {
	// Every baseline runs on the classical collision channel — the model
	// it was designed for.
	const n = 200
	protos := map[string]Protocol{
		"beb":   NewExponentialBackoff(4),
		"genie": NewGenieAloha(6, 1),
		"mw":    NewMultiplicativeWeights(7),
	}
	for name, p := range protos {
		res := Run(Config{Horizon: 1, Drain: true, DrainLimit: 1 << 22, Seed: 8,
			Medium: NewClassicalMedium(CDTernary)}, p, NewBatch(n))
		if res.Delivered != n {
			t.Fatalf("%s on classical delivered %d of %d", name, res.Delivered, n)
		}
		if res.Kappa != 1 || res.Medium != "classical:ternary" {
			t.Fatalf("%s: result identity %q κ=%d", name, res.Medium, res.Kappa)
		}
	}
	for _, model := range ModelNames {
		if _, err := NewMedium(model, 8, 32); err != nil {
			t.Fatalf("NewMedium(%q): %v", model, err)
		}
	}
	// The coded medium can be passed explicitly, and jammers compose.
	m := NewJammedMedium(NewCodedMedium(16, 64), NewPeriodicJammer(10, 2), 5)
	res := Run(Config{Horizon: 1, Drain: true, Seed: 9, Medium: m},
		NewDecodableBackoff(16, 10), NewBatch(n))
	if res.Delivered != n {
		t.Fatalf("jammed coded medium delivered %d of %d", res.Delivered, n)
	}
	if res.Channel.JammedSlots == 0 {
		t.Fatal("periodic jammer never fired")
	}
}

func TestThroughputApproachesOne(t *testing.T) {
	// The library's headline: throughput rises with kappa.
	var prev float64
	for _, kappa := range []int{8, 64, 512} {
		res := Run(Config{Kappa: kappa, Horizon: 1, Drain: true, Seed: 3},
			NewDecodableBackoff(kappa, 4), NewBatch(4000))
		thpt := res.CompletionThroughput()
		if thpt < prev-0.05 { // allow small noise
			t.Fatalf("throughput fell from %v to %v at kappa=%d", prev, thpt, kappa)
		}
		prev = thpt
	}
	if prev < 0.9 {
		t.Fatalf("throughput at kappa=512 only %v", prev)
	}
	if math.Abs(prev-1) > 0.12 {
		t.Fatalf("throughput at kappa=512 not near 1: %v", prev)
	}
}

func TestAdversaryFacade(t *testing.T) {
	// Every facade constructor must parse-roundtrip through
	// ParseAdversary and compose into a run via Config.Adversary.
	for desc, want := range map[string]string{
		"reactive:4/32":   "reactive(4/32)",
		"burst:50/450":    "burst(50/450)",
		"random:0.2":      "random(0.200)",
		"sigmarho:64/0.1": "sigmarho(64/0.100)",
	} {
		adv, err := ParseAdversary(desc)
		if err != nil {
			t.Fatalf("ParseAdversary(%q): %v", desc, err)
		}
		if adv.Name() != want {
			t.Fatalf("ParseAdversary(%q).Name() = %q, want %q", desc, adv.Name(), want)
		}
	}
	if adv, err := ParseAdversary("none"); err != nil || adv != nil {
		t.Fatal("none should parse to nil")
	}
	if _, err := ParseAdversary("emp"); err == nil {
		t.Fatal("bad descriptor accepted")
	}

	res := Run(Config{Kappa: 16, Horizon: 4000, Drain: true, Seed: 3,
		Adversary: NewReactiveJammer(3, 32)},
		NewDecodableBackoff(16, 4), NewBernoulli(0.5))
	if res.Channel.JammedSlots == 0 {
		t.Fatal("reactive jammer never fired under load")
	}
	if res.Arrivals != res.Delivered+int64(res.Pending) {
		t.Fatal("conservation violated under the reactive jammer")
	}

	res = Run(Config{Kappa: 16, Horizon: 2000, Drain: true, Seed: 5,
		Adversary: NewSigmaRhoArrivals(100, 0.1)},
		NewDecodableBackoff(16, 6), NewBernoulli(0.2))
	if res.MaxBacklog < 100 {
		t.Fatalf("σ=100 burst never landed (max backlog %d)", res.MaxBacklog)
	}

	res = Run(Config{Kappa: 16, Horizon: 2000, Drain: true, Seed: 7,
		Adversary: NewBurstJammer(100, 900)},
		NewDecodableBackoff(16, 8), NewBernoulli(0.2))
	if res.Channel.JammedSlots == 0 {
		t.Fatal("burst jammer never fired")
	}

	// Merged arrivals: the adversary pattern as a standalone process.
	merged := NewMergedArrivals(NewBatchAt(10, 5), NewEvenPaced(0.25))
	res = Run(Config{Kappa: 16, Horizon: 1000, Drain: true, Seed: 9},
		NewDecodableBackoff(16, 10), merged)
	if res.Arrivals != 5+250 {
		t.Fatalf("merged arrivals %d, want 255", res.Arrivals)
	}
}

func TestNewAdversaryArrivalsAdapter(t *testing.T) {
	arr, ok := NewAdversaryArrivals(NewSigmaRhoArrivals(3, 0))
	if !ok {
		t.Fatal("sigmarho should adapt to Arrivals")
	}
	res := Run(Config{Kappa: 16, Horizon: 100, Drain: true, Seed: 11},
		NewDecodableBackoff(16, 12), NewMergedArrivals(arr, NewBatchAt(5, 2)))
	if res.Arrivals != 5 {
		t.Fatalf("arrivals %d, want σ=3 + batch 2", res.Arrivals)
	}
	if _, ok := NewAdversaryArrivals(NewBurstJammer(10, 90)); ok {
		t.Fatal("a pure jammer should not adapt to Arrivals")
	}
}

func TestFacadeConstructorsValidate(t *testing.T) {
	// Facade constructors must reject what ParseAdversary rejects, so a
	// typo'd parameter cannot yield a silently inert adversary.
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: bad parameters accepted", name)
			}
		}()
		f()
	}
	mustPanic("burst 0", func() { NewBurstJammer(0, 500) })
	mustPanic("gap -1", func() { NewBurstJammer(10, -1) })
	mustPanic("sigmarho 0/0", func() { NewSigmaRhoArrivals(0, 0) })
	mustPanic("reactive 0", func() { NewReactiveJammer(0, 5) })
	if !IsAdaptiveAdversary(NewReactiveJammer(2, 8)) || IsAdaptiveAdversary(NewBurstJammer(1, 9)) {
		t.Fatal("IsAdaptiveAdversary misclassifies")
	}
}

func TestSweepFacadeShardResumeMerge(t *testing.T) {
	// The facade drives the sharded/cached sweep subsystem end to end:
	// two shards into a shared cache, merged byte-identical to an
	// unsharded run, then a fully-warm resume that executes nothing.
	spec := SweepSpec{
		Protocols: []string{"genie"}, Arrivals: []string{"batch"},
		Kappas: []int{4, 8}, Rates: []float64{0.5},
		Trials: 1, Horizon: 200, Seed: 5,
	}
	grid, err := RunSweep(context.Background(), spec, SweepOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := grid.JSON()
	if err != nil {
		t.Fatal(err)
	}

	store, err := OpenSweepCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	sh, err := ParseSweepShard("1/2")
	if err != nil {
		t.Fatal(err)
	}
	var shards []*SweepShardResult
	for _, sh := range []SweepShard{sh, {Index: 2, Count: 2}} {
		res, err := RunSweepShard(context.Background(), spec, sh, SweepOptions{Cache: store})
		if err != nil {
			t.Fatal(err)
		}
		shards = append(shards, res)
	}
	merged, err := MergeSweepShards(shards)
	if err != nil {
		t.Fatal(err)
	}
	got, err := merged.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(want) != string(got) {
		t.Fatal("merged facade sweep differs from unsharded run")
	}

	executed := 0
	resumed, err := RunSweep(context.Background(), spec, SweepOptions{Cache: store, Resume: true,
		OnCell: func(done, total int, cell *sweep.CellSummary, cached bool) {
			if !cached {
				executed++
			}
		}})
	if err != nil {
		t.Fatal(err)
	}
	if executed != 0 {
		t.Fatalf("warm resume executed %d cells, want 0", executed)
	}
	data, err := resumed.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(want) != string(data) {
		t.Fatal("resumed facade sweep differs from unsharded run")
	}
}
