// Package baseline implements the contention-resolution protocols the
// paper compares against analytically: binary exponential backoff
// (Metcalfe & Boggs), slotted ALOHA (Abramson/Roberts), and a
// Chang–Jin–Pettie-style multiplicative-weights protocol (SOSA 2019).
// All of them run on the same Coded Radio Network Model channel as the
// Decodable Backoff Algorithm; with κ = 1 the channel degenerates to the
// classical radio model these protocols were designed for.
package baseline

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/channel"
	"repro/internal/rng"
)

// population stores packets whose transmission probabilities share the
// form clamp(p0·f^e) for integer exponents e, bucketed by exponent with a
// global lazy shift.  A uniform multiplicative update is O(1) bucket
// bookkeeping instead of O(n), and per-slot transmitter sampling is
// O(expected transmitters + #buckets) via geometric skipping.
//
// Probabilities saturate at pMax above and pFloor below.  Saturated
// buckets are relabeled (an O(1) pointer operation), not rebuilt, when
// the shift moves — and when a relabel collides with an existing bucket
// the smaller side is folded into the larger (union by size), so a
// protocol that shifts every slot (multiplicative weights under
// overload) costs amortized O(log n) moves per packet instead of O(n)
// per slot.
type population struct {
	p0     float64
	factor float64
	eCap   int // exponent where the probability saturates at pMax
	eFloor int // exponent where the probability saturates at pFloor
	pMax   float64

	shift   int
	buckets []*popBucket // sorted by base
	byBase  map[int]*popBucket
	loc     map[channel.PacketID]popLoc
	size    int
	scratch []int
}

// pFloor bounds probabilities from below: values this small are
// behaviourally indistinguishable (a packet at 1e-9 transmits roughly
// never), and the floor keeps the bucket count bounded by the exponent
// range.
const pFloor = 1e-9

type popBucket struct {
	base int
	ids  []channel.PacketID
}

type popLoc struct {
	b   *popBucket
	idx int
}

// newPopulation returns an empty population with activation probability
// p0, update factor f > 1, and probability ceiling pMax.
func newPopulation(p0, factor, pMax float64) *population {
	if p0 <= 0 || p0 > 1 {
		panic("baseline: p0 must be in (0,1]")
	}
	if factor <= 1 {
		panic("baseline: factor must exceed 1")
	}
	if pMax <= 0 || pMax > 1 {
		panic("baseline: pMax must be in (0,1]")
	}
	p := &population{
		p0:     p0,
		factor: factor,
		pMax:   pMax,
		byBase: make(map[int]*popBucket),
		loc:    make(map[channel.PacketID]popLoc),
	}
	p.eCap = int(math.Ceil(math.Log(pMax/p0) / math.Log(factor)))
	if p.eCap < 0 {
		p.eCap = 0
	}
	p.eFloor = -int(math.Ceil(math.Log(p0/pFloor)/math.Log(factor))) - 1
	if p.eFloor > 0 {
		p.eFloor = 0
	}
	return p
}

// prob returns the probability at effective exponent e.
func (p *population) prob(e int) float64 {
	if e >= p.eCap {
		return p.pMax
	}
	if e <= p.eFloor {
		return pFloor
	}
	v := p.p0 * math.Pow(p.factor, float64(e))
	if v > p.pMax {
		return p.pMax
	}
	if v < pFloor {
		return pFloor
	}
	return v
}

// Len returns the number of packets in the population.
func (p *population) Len() int { return p.size }

// Add inserts a packet at exponent 0 (probability p0).  It panics on a
// duplicate ID.
func (p *population) Add(id channel.PacketID) {
	if _, dup := p.loc[id]; dup {
		panic(fmt.Sprintf("baseline: duplicate packet %d", id))
	}
	b := p.getBucket(0 - p.shift)
	p.loc[id] = popLoc{b: b, idx: len(b.ids)}
	b.ids = append(b.ids, id)
	p.size++
}

// Remove deletes a packet if present, reporting whether it was.
func (p *population) Remove(id channel.PacketID) bool {
	l, ok := p.loc[id]
	if !ok {
		return false
	}
	b := l.b
	last := len(b.ids) - 1
	moved := b.ids[last]
	b.ids[l.idx] = moved
	b.ids = b.ids[:last]
	if l.idx != last {
		p.loc[moved] = popLoc{b: b, idx: l.idx}
	}
	delete(p.loc, id)
	p.size--
	if len(b.ids) == 0 {
		p.dropBucket(b)
	}
	return true
}

// Shift applies one multiplicative update step to every packet:
// delta = +1 multiplies every probability by the factor (saturating at
// pMax), delta = -1 divides (saturating at pFloor).
func (p *population) Shift(delta int) {
	if delta != 1 && delta != -1 {
		panic("baseline: Shift delta must be ±1")
	}
	p.shift += delta
	if delta == 1 {
		p.saturate(p.eCap-p.shift, 1)
	} else {
		p.saturate(p.eFloor-p.shift, -1)
	}
}

// saturate folds buckets past the saturation boundary back onto it.
// dir = +1 handles the cap (bases above boundary), dir = -1 the floor
// (bases below).  After a single ±1 shift at most one bucket sits past
// the boundary (the previously saturated one, now one step beyond), so
// this relabels one bucket in O(1), or merges by size on collision.
func (p *population) saturate(boundary, dir int) {
	for {
		var past *popBucket
		for _, b := range p.buckets {
			if (dir > 0 && b.base > boundary) || (dir < 0 && b.base < boundary) {
				past = b
				break
			}
		}
		if past == nil {
			return
		}
		if at, exists := p.byBase[boundary]; exists {
			p.mergeInto(past, at)
		} else {
			p.relabel(past, boundary)
		}
	}
}

// relabel changes a bucket's base without touching its members.
func (p *population) relabel(b *popBucket, newBase int) {
	delete(p.byBase, b.base)
	b.base = newBase
	p.byBase[newBase] = b
	sort.Slice(p.buckets, func(i, j int) bool { return p.buckets[i].base < p.buckets[j].base })
}

// mergeInto merges the smaller of a, b into the larger and leaves the
// result at b's base (union by size keeps amortized move cost O(log n)
// per packet).
func (p *population) mergeInto(a, b *popBucket) {
	if len(a.ids) > len(b.ids) {
		// Move b's members into a, then relabel a to b's base.
		base := b.base
		p.moveAll(b, a)
		p.relabel(a, base)
		return
	}
	p.moveAll(a, b)
}

// moveAll empties src into dst and drops src.
func (p *population) moveAll(src, dst *popBucket) {
	for _, id := range src.ids {
		p.loc[id] = popLoc{b: dst, idx: len(dst.ids)}
		dst.ids = append(dst.ids, id)
	}
	src.ids = src.ids[:0]
	p.dropBucket(src)
}

// Sample appends, to dst, each packet independently with its current
// probability, and returns the extended slice.
func (p *population) Sample(r *rng.Rand, dst []channel.PacketID) []channel.PacketID {
	for _, b := range p.buckets {
		if len(b.ids) == 0 {
			continue
		}
		prob := p.prob(b.base + p.shift)
		p.scratch = r.SampleIndices(p.scratch[:0], len(b.ids), prob)
		for _, idx := range p.scratch {
			dst = append(dst, b.ids[idx])
		}
	}
	return dst
}

// Contention returns the sum of probabilities and the minimum probability
// (1 if empty).
func (p *population) Contention() (c, pMin float64) {
	pMin = 1
	for _, b := range p.buckets {
		if len(b.ids) == 0 {
			continue
		}
		prob := p.prob(b.base + p.shift)
		c += float64(len(b.ids)) * prob
		if prob < pMin {
			pMin = prob
		}
	}
	return c, pMin
}

func (p *population) getBucket(base int) *popBucket {
	if b, ok := p.byBase[base]; ok {
		return b
	}
	b := &popBucket{base: base}
	p.byBase[base] = b
	i := sort.Search(len(p.buckets), func(i int) bool { return p.buckets[i].base >= base })
	p.buckets = append(p.buckets, nil)
	copy(p.buckets[i+1:], p.buckets[i:])
	p.buckets[i] = b
	return b
}

func (p *population) dropBucket(b *popBucket) {
	delete(p.byBase, b.base)
	for i, bb := range p.buckets {
		if bb == b {
			p.buckets = append(p.buckets[:i], p.buckets[i+1:]...)
			return
		}
	}
}
