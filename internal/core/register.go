package core

import "repro/internal/protocol"

// Decodable Backoff's registry entry.  The builder honors
// Params.EpochObserver so the sweep executor's error-epoch counter
// (Definition 2) keeps working through the registry path.
func init() {
	protocol.Register(protocol.Info{
		Name:      "dba",
		Summary:   "Decodable Backoff, the paper's algorithm for the coded channel (κ ≥ 6)",
		CodedOnly: true,
		Build: func(p protocol.Params) protocol.Protocol {
			var opts []Option
			if p.EpochObserver != nil {
				opts = append(opts, WithEpochObserver(p.EpochObserver))
			}
			return New(p.Kappa, p.Rand, opts...)
		},
	})
}
