package cache

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

type rec struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

const id1 = "0123456789abcdef0123456789abcdef"

func TestPutGetRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	want := rec{Name: "cell", Value: 0.1 + 0.2}
	if err := s.Put(id1, &want); err != nil {
		t.Fatal(err)
	}
	var got rec
	ok, err := s.Get(id1, &got)
	if err != nil || !ok {
		t.Fatalf("Get: ok=%v err=%v", ok, err)
	}
	if got != want {
		t.Fatalf("round trip changed the record: %+v != %+v", got, want)
	}
	if n, err := s.Len(); err != nil || n != 1 {
		t.Fatalf("Len = %d, %v", n, err)
	}
}

func TestGetMissing(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var got rec
	ok, err := s.Get(id1, &got)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("missing record reported as a hit")
	}
}

func TestCorruptRecordIsAMiss(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	// A truncated/corrupt record must degrade to re-execution, not a
	// failed run.
	if err := os.WriteFile(s.Path(id1), []byte(`{"name": "cel`), 0o644); err != nil {
		t.Fatal(err)
	}
	var got rec
	ok, err := s.Get(id1, &got)
	if err != nil || ok {
		t.Fatalf("corrupt record: ok=%v err=%v, want miss", ok, err)
	}
	// And Put must atomically replace it.
	if err := s.Put(id1, &rec{Name: "fresh"}); err != nil {
		t.Fatal(err)
	}
	if ok, err := s.Get(id1, &got); err != nil || !ok || got.Name != "fresh" {
		t.Fatalf("overwrite failed: ok=%v err=%v got=%+v", ok, err, got)
	}
}

func TestMalformedIDsRejected(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range []string{
		"", "short", "../../../../etc/passwd", "0123456789ABCDEF0123456789ABCDEF",
		"0123456789abcdef/123456789abcdef", strings.Repeat("a", 200),
	} {
		if err := s.Put(bad, &rec{}); err == nil {
			t.Errorf("Put accepted id %q", bad)
		}
		var got rec
		if _, err := s.Get(bad, &got); err == nil {
			t.Errorf("Get accepted id %q", bad)
		}
	}
}

func TestNoTempDebrisAfterPut(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(id1, &rec{Name: "x"}); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != filepath.Base(s.Path(id1)) {
		names := make([]string, len(entries))
		for i, e := range entries {
			names[i] = e.Name()
		}
		t.Fatalf("unexpected directory contents: %v", names)
	}
}

func TestOpenRejectsEmptyDir(t *testing.T) {
	if _, err := Open(""); err == nil {
		t.Fatal("Open accepted an empty directory")
	}
}
