package medium

import (
	"testing"

	"repro/internal/adversary"
	"repro/internal/channel"
	"repro/internal/jam"
)

func TestNewDescriptors(t *testing.T) {
	for _, desc := range Models {
		m, err := New(desc, 8, 32)
		if err != nil {
			t.Fatalf("New(%q): %v", desc, err)
		}
		if m == nil {
			t.Fatalf("New(%q) returned nil medium", desc)
		}
	}
	if m, err := New("", 8, 32); err != nil || m.Name() != "coded" {
		t.Fatalf("empty descriptor: %v, %v", m, err)
	}
	if _, err := New("quantum", 8, 32); err == nil {
		t.Fatal("unknown descriptor accepted")
	}
}

func TestCodedMirrorsChannel(t *testing.T) {
	m := NewCoded(2, 8)
	ch := channel.New(2, 8)
	var fb channel.Feedback
	schedule := [][]channel.PacketID{
		nil, {1}, {1, 2}, {1, 2, 3}, {2}, nil, {3},
	}
	for now, txs := range schedule {
		wc, we := ch.Step(int64(now), txs)
		gc, ge := m.Step(int64(now), txs)
		if gc != wc || (ge == nil) != (we == nil) {
			t.Fatalf("slot %d: class %v/%v ev %v/%v", now, gc, wc, ge, we)
		}
		m.Feedback(&fb)
		if fb.Slot != int64(now) || fb.Silent != (wc == channel.Silent) ||
			(fb.Event == nil) != (we == nil) || fb.Collision {
			t.Fatalf("slot %d: feedback %+v vs class %v", now, fb, wc)
		}
	}
	if m.Stats() != ch.Stats() {
		t.Fatalf("stats diverged: %+v vs %+v", m.Stats(), ch.Stats())
	}
	if m.Kappa() != 2 || m.Name() != "coded" {
		t.Fatalf("identity wrong: κ=%d name=%q", m.Kappa(), m.Name())
	}
	m.AddSilent(5)
	if m.Stats().SilentSlots != ch.Stats().SilentSlots+5 {
		t.Fatal("AddSilent not accounted")
	}
	m.Reset()
	if m.Stats() != (channel.Stats{}) || m.Channel().PendingPackets() != 0 {
		t.Fatalf("Reset left state: %+v", m.Stats())
	}
}

func TestClassicalSemantics(t *testing.T) {
	m := NewClassical(CDTernary)
	if m.Kappa() != 1 || m.Name() != "classical:ternary" {
		t.Fatalf("identity wrong: κ=%d name=%q", m.Kappa(), m.Name())
	}
	// Silent slot.
	class, ev := m.Step(0, nil)
	if class != channel.Silent || ev != nil {
		t.Fatalf("empty slot: %v %v", class, ev)
	}
	// Success: exactly one transmitter delivers immediately.
	class, ev = m.Step(1, []channel.PacketID{7})
	if class != channel.Good || ev == nil || ev.Size() != 1 || ev.Packets[0] != 7 ||
		ev.Slot != 1 || ev.WindowStart != 1 {
		t.Fatalf("singleton slot: %v %+v", class, ev)
	}
	// Collision: nothing delivered, ever — no coding gain.
	class, ev = m.Step(2, []channel.PacketID{8, 9})
	if class != channel.Bad || ev != nil {
		t.Fatalf("collision slot: %v %v", class, ev)
	}
	// The colliders never decode later either (no window accumulation).
	class, ev = m.Step(3, []channel.PacketID{8})
	if class != channel.Good || ev == nil || ev.Packets[0] != 8 {
		t.Fatalf("retry slot: %v %v", class, ev)
	}
	st := m.Stats()
	if st.SilentSlots != 1 || st.GoodSlots != 2 || st.BadSlots != 1 ||
		st.Events != 2 || st.Delivered != 2 {
		t.Fatalf("stats: %+v", st)
	}
	m.Reset()
	if m.Stats() != (channel.Stats{}) {
		t.Fatal("Reset left counters")
	}
}

func TestClassicalEventReuseIsSafe(t *testing.T) {
	// The event storage is reused across slots: the previous event's
	// contents are overwritten by the next success, which consumers must
	// tolerate (they may not retain it past the slot).
	m := NewClassical(CDNone)
	_, ev1 := m.Step(0, []channel.PacketID{1})
	if ev1.Packets[0] != 1 {
		t.Fatal("first event wrong")
	}
	_, ev2 := m.Step(1, []channel.PacketID{2})
	if ev2.Packets[0] != 2 || ev1 != ev2 {
		t.Fatal("event storage not reused")
	}
}

func TestCollisionDetectionMasking(t *testing.T) {
	type slotWant struct {
		txs       []channel.PacketID
		silent    bool
		collision bool
		event     bool
	}
	cases := map[CD][]slotWant{
		// No sensing: silence masked, collisions inaudible.
		CDNone: {
			{nil, false, false, false},
			{[]channel.PacketID{1}, false, false, true},
			{[]channel.PacketID{1, 2}, false, false, false},
		},
		// Carrier sensing: idle audible, collision vs success not.
		CDBinary: {
			{nil, true, false, false},
			{[]channel.PacketID{1}, false, false, true},
			{[]channel.PacketID{1, 2}, false, false, false},
		},
		// Full collision detection.
		CDTernary: {
			{nil, true, false, false},
			{[]channel.PacketID{1}, false, false, true},
			{[]channel.PacketID{1, 2}, false, true, false},
		},
	}
	var fb channel.Feedback
	for cd, slots := range cases {
		m := NewClassical(cd)
		for i, want := range slots {
			m.Step(int64(i), want.txs)
			m.Feedback(&fb)
			if fb.Silent != want.silent || fb.Collision != want.collision ||
				(fb.Event != nil) != want.event {
				t.Errorf("%v slot %d: feedback %+v, want %+v", cd, i, fb, want)
			}
		}
	}
}

func TestDuplicateTransmittersPanic(t *testing.T) {
	// The coded detector's invariant — one device cannot send two
	// packets in one slot — must hold on slots it never sees: classical
	// collisions and jammed slots.
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: duplicate transmitters not rejected", name)
			}
		}()
		f()
	}
	mustPanic("classical collision", func() {
		NewClassical(CDTernary).Step(0, []channel.PacketID{5, 5})
	})
	mustPanic("jammed slot", func() {
		m := Jam(NewCoded(4, 0), &jam.Periodic{Period: 1, Burst: 1}, 1)
		m.Step(0, []channel.PacketID{5, 5})
	})
	big := make([]channel.PacketID, 40)
	for i := range big {
		big[i] = channel.PacketID(i % 39) // one duplicate, beyond the scan cutoff
	}
	mustPanic("large classical collision", func() {
		NewClassical(CDNone).Step(0, big)
	})
}

func TestParseCD(t *testing.T) {
	for _, name := range []string{"none", "binary", "ternary"} {
		cd, err := ParseCD(name)
		if err != nil || cd.String() != name {
			t.Fatalf("ParseCD(%q) = %v, %v", name, cd, err)
		}
	}
	if _, err := ParseCD("quaternary"); err == nil {
		t.Fatal("bad mode accepted")
	}
}

func TestJammedSlotsNeverGood(t *testing.T) {
	// always-on jammer via Periodic with burst == period
	m := Jam(NewCoded(4, 0), &jam.Periodic{Period: 1, Burst: 1}, 1)
	class, ev := m.Step(0, []channel.PacketID{1})
	if class != channel.Bad || ev != nil {
		t.Fatalf("jammed slot class %v ev %v", class, ev)
	}
	// An empty jammed slot is audibly busy, not silent.
	var fb channel.Feedback
	class, _ = m.Step(1, nil)
	m.Feedback(&fb)
	if class != channel.Bad || fb.Silent {
		t.Fatalf("empty jammed slot class %v fb %+v, want Bad and audible", class, fb)
	}
	st := m.Stats()
	if st.JammedSlots != 2 || st.BadSlots != 2 || st.SilentSlots != 0 {
		t.Fatalf("jam accounting wrong: %+v", st)
	}
}

func TestJamComposesOverCleanSlots(t *testing.T) {
	// Duty-cycled jammer: slots 0-1 of every 4 jammed.  Clean slots pass
	// through to the inner detector, which still decodes.
	m := Jam(NewCoded(4, 0), &jam.Periodic{Period: 4, Burst: 2}, 1)
	if m.Kappa() != 4 {
		t.Fatalf("kappa %d", m.Kappa())
	}
	var fb channel.Feedback
	m.Step(0, []channel.PacketID{1, 2}) // jammed
	m.Step(1, []channel.PacketID{1, 2}) // jammed
	m.Step(2, []channel.PacketID{1, 2}) // clean good
	m.Feedback(&fb)
	if fb.Silent || fb.Event != nil {
		t.Fatalf("clean good slot feedback %+v", fb)
	}
	_, ev := m.Step(3, []channel.PacketID{1, 2}) // clean good → event
	if ev == nil || ev.Size() != 2 {
		t.Fatalf("clean window after jamming failed: %+v", ev)
	}
	st := m.Stats()
	if st.JammedSlots != 2 || st.BadSlots != 2 || st.GoodSlots != 2 ||
		st.Events != 1 || st.Delivered != 2 {
		t.Fatalf("composed stats wrong: %+v", st)
	}
	m.Reset()
	if m.Stats() != (channel.Stats{}) {
		t.Fatal("Reset left counters")
	}
}

func TestJamDecisionsAreSlotKeyed(t *testing.T) {
	// The same (seed, slot) must yield the same decision regardless of
	// which slots were stepped before it — the property that keeps
	// jammer randomness aligned across engine fast-forwarding.
	decide := func(slots []int64) map[int64]bool {
		m := Jam(NewCoded(1, 0), &jam.Random{Rate: 0.5}, 7)
		out := make(map[int64]bool)
		for _, s := range slots {
			class, _ := m.Step(s, nil)
			out[s] = class == channel.Bad
		}
		return out
	}
	dense := decide([]int64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12})
	sparse := decide([]int64{3, 7, 12})
	for s, want := range sparse {
		if dense[s] != want {
			t.Fatalf("slot %d: dense=%v sparse=%v", s, dense[s], want)
		}
	}
	var any bool
	for _, v := range dense {
		any = any || v
	}
	if !any {
		t.Fatal("rate-0.5 jammer never fired in 13 slots")
	}
}

func TestJamNilJammerPassesThrough(t *testing.T) {
	inner := NewClassical(CDNone)
	if Jam(inner, nil, 1) != Medium(inner) {
		t.Fatal("nil jammer should return the inner medium unchanged")
	}
}

func TestJamTernaryClassicalReportsCollision(t *testing.T) {
	// To a ternary-CD device, jamming energy sounds like a collision.
	m := Jam(NewClassical(CDTernary), &jam.Periodic{Period: 1, Burst: 1}, 1)
	var fb channel.Feedback
	m.Step(0, nil)
	m.Feedback(&fb)
	if !fb.Collision || fb.Silent {
		t.Fatalf("jammed ternary slot feedback %+v, want collision", fb)
	}
	// A binary-CD device cannot tell: no collision flag.
	m = Jam(NewClassical(CDBinary), &jam.Periodic{Period: 1, Burst: 1}, 1)
	m.Step(0, nil)
	m.Feedback(&fb)
	if fb.Collision {
		t.Fatalf("jammed binary slot feedback %+v, want no collision flag", fb)
	}
}

func TestJamAdversaryForwardsFeedbackToObserve(t *testing.T) {
	// The wrapper is the adaptive jammer's ear: after three busy
	// event-free slots (κ=4 collisions pending a window), the reactive
	// adversary must arm and spoil the following slots.
	m := JamAdversary(NewCoded(4, 0), adversary.NewReactive(3, 2), 1)
	var fb channel.Feedback
	step := func(now int64, txs ...channel.PacketID) channel.SlotClass {
		class, _ := m.Step(now, txs)
		m.Feedback(&fb)
		return class
	}
	// Three good-but-undecoded slots: two fresh packets per slot keep the
	// window filling (more packets than good slots) — busy, no event.
	for now := int64(0); now < 3; now++ {
		if class := step(now, channel.PacketID(2*now+1), channel.PacketID(2*now+2)); class != channel.Good {
			t.Fatalf("slot %d class %v, want Good", now, class)
		}
	}
	// Armed: slots 3-4 jammed regardless of transmitters.
	if class := step(3, 1, 2); class != channel.Bad {
		t.Fatal("reactive adversary did not jam after its trigger")
	}
	if fb.Silent {
		t.Fatal("jammed slot audible as silence")
	}
	if class := step(4); class != channel.Bad {
		t.Fatal("burst second slot not jammed")
	}
	// Burst over: an empty slot is silent again.
	if class := step(5); class != channel.Silent {
		t.Fatal("jam outlived its burst")
	}
	st := m.Stats()
	if st.JammedSlots != 2 || st.BadSlots != 2 {
		t.Fatalf("jam accounting %+v", st)
	}
	// Reset must clear the adversary's adaptive state with the medium's.
	m.Reset()
	if m.Stats() != (channel.Stats{}) {
		t.Fatal("Reset left counters")
	}
	if class := step(0, 1, 2); class != channel.Good {
		t.Fatal("Reset left the adversary armed")
	}
}

func TestAdaptiveJamDecisionsGapInvariant(t *testing.T) {
	// The adaptive analogue of TestJamDecisionsAreSlotKeyed: stepping the
	// idle slots (observed as silence) and skipping them (a feedback gap)
	// must produce the same jam pattern — the property the engine's
	// fast-forwarding relies on.
	decide := func(slots []int64, txsAt map[int64][]channel.PacketID) map[int64]bool {
		m := JamAdversary(NewCoded(4, 0), adversary.NewReactive(2, 3), 9)
		var fb channel.Feedback
		out := make(map[int64]bool)
		for _, s := range slots {
			class, _ := m.Step(s, txsAt[s])
			m.Feedback(&fb)
			out[s] = class == channel.Bad
		}
		return out
	}
	// Fresh packet pairs keep the decoding window filling without an
	// event: slots 0, 1 arm slots 2-4; slots 5-9 idle; busy again at
	// 10, 11 re-arms 12-14.
	txsAt := map[int64][]channel.PacketID{
		0: {1, 2}, 1: {3, 4}, 10: {5, 6}, 11: {7, 8},
	}
	dense := decide([]int64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14}, txsAt)
	sparse := decide([]int64{0, 1, 2, 3, 4, 10, 11, 12, 13, 14}, txsAt)
	for s, want := range sparse {
		if dense[s] != want {
			t.Fatalf("slot %d: dense=%v sparse=%v", s, dense[s], want)
		}
	}
	for _, s := range []int64{2, 3, 4, 12, 13, 14} {
		if !dense[s] {
			t.Fatalf("slot %d expected jammed", s)
		}
	}
}
