// Package medium abstracts the channel a simulation runs on.  The paper
// studies the Coded Radio Network Model, where a base station decodes up
// to κ simultaneous transmissions; the classical contention-resolution
// literature (e.g. Jiang–Zheng 2021, Chen–Jiang–Zheng 2021) studies the
// collision channel, with or without collision detection.  A Medium is
// the base-station side of any such model: the engine drives it slot by
// slot and forwards its feedback to the protocol, so every protocol can
// be run on every channel model and compared in one artifact.
//
// Four implementations ship:
//
//   - Coded — the κ-threshold decoding channel of the paper
//     (internal/channel behind the interface);
//   - Classical — the collision channel (κ = 1 semantics) with
//     selectable collision-detection feedback: none, binary carrier
//     sensing, or ternary collision detection;
//   - Capture — the high-SNR capture channel: up to κ simultaneous
//     transmissions are additively decodable in the slot itself
//     (bounded-contention-coding spirit), one more destroys the slot;
//   - Jam / JamAdversary — a wrapper composing a jamming adversary over
//     any medium, spoiling slots before the inner medium sees them and
//     forwarding per-slot feedback to adaptive jammers.
//
// The per-slot contract is allocation-free: Step reuses its event
// storage and Feedback fills a caller-owned struct, so the engine's hot
// loop performs no interface-driven allocation.
package medium

import (
	"fmt"

	"repro/internal/channel"
)

// Feedback is what devices — and adversaries listening alongside them —
// hear about a slot.  It is channel.Feedback re-exported at the layer
// that defines what a channel model sounds like, so the medium's
// callers (the engine, tooling) can name it without importing the
// detector package.  (Package adversary itself names channel.Feedback
// directly: medium composes adversaries, so the dependency points the
// other way.)
type Feedback = channel.Feedback

// Medium is the base-station side of a channel model.  The engine
// calls, per simulated slot, Step with the transmitting packets and
// then Feedback to collect what devices hear; AddSilent accounts
// fast-forwarded provably idle stretches.
//
// Media are stateful and not safe for concurrent use; construct one per
// run (or Reset between runs).
type Medium interface {
	// Name identifies the channel model in reports and artifacts.
	Name() string

	// Kappa is the decoding threshold: the paper's κ for the coded
	// channel, 1 for the classical collision channel.
	Kappa() int

	// Step processes one slot in which the given packets broadcast,
	// returning the slot class and the decoding event, if one fired.
	// Slots must be fed in increasing time order.  The returned Event
	// (and its Packets slice) is only valid until the next Step call;
	// callers that need it longer must copy it.
	Step(now int64, txs []channel.PacketID) (channel.SlotClass, *channel.Event)

	// Feedback fills fb with what devices hear about the most recently
	// stepped slot.  The caller owns fb and reuses it across slots; the
	// medium must overwrite every field.  What devices hear is the
	// model's defining choice: coded devices hear silence and decoding
	// events only, classical devices hear whatever their
	// collision-detection capability exposes.
	Feedback(fb *channel.Feedback)

	// AddSilent accounts n slots that the engine fast-forwarded through
	// because they were provably silent.  Silent slots never change
	// detector state, so only counters move.
	AddSilent(n int64)

	// Stats returns a copy of the accumulated slot and event counters.
	Stats() channel.Stats

	// Reset returns the medium to its initial state (detector state and
	// counters), allowing reuse across runs without reallocation.
	Reset()
}

// Sharded is an optional Medium capability: a medium that consumes the
// staged engine's per-shard transmitter chunks directly, running its
// O(transmitters) pre-reduce — duplicate validation and transmitter
// counting — as data-parallel partials before the (tiny) serial event
// check.  StepSharded must be observably identical to
// Step(now, concatenation of chunks) at every FanOut, including which
// duplicate a protocol bug panics on: partials record findings and a
// serial merge visits shards in index order.
type Sharded interface {
	StepSharded(now int64, chunks [][]channel.PacketID, fan channel.FanOut) (channel.SlotClass, *channel.Event)
}

// Repeater is an optional Medium capability behind the engine's
// event-driven fast-forward: StepRepeat replays the most recently
// stepped slot's transmitter multiset at slot now in O(1).  The caller
// must have observed that slot classify Bad and must guarantee the
// transmitter multiset is unchanged — bad slots never change detector
// state, so the replay moves counters and feedback only.
//
// StepRepeat returns false, leaving the medium's state untouched, when
// the medium cannot guarantee an O(1) replay — e.g. a jam wrapper whose
// previous Bad verdict came from jamming energy, so the inner medium
// never classified these transmitters.  The caller then falls back to a
// full Step with the same transmitters.
type Repeater interface {
	StepRepeat(now int64) bool
}

// Models lists the known channel-model descriptors in canonical order.
// "classical" is shorthand for "classical:ternary", the strongest
// feedback variant.  Note the information ordering documented on CD:
// because successes are acknowledged, classical:binary and
// classical:ternary are information-equivalent (sweeping both is
// redundant); the axis that changes protocol-visible information is
// none vs the other two.
var Models = []string{"coded", "classical", "classical:none", "classical:binary", "classical:ternary", "capture"}

// dupCheck validates that a transmitter list names distinct packets
// (one device cannot send two packets at once), mirroring the coded
// detector's invariant on slots the inner detector never sees.  The
// quadratic scan covers common small slots; the generation-stamped map
// handles large ones without per-slot clearing.
type dupCheck struct {
	seen map[channel.PacketID]uint64
	gen  uint64
}

func (d *dupCheck) check(txs []channel.PacketID) {
	if len(txs) < 2 {
		return
	}
	if len(txs) <= 32 {
		for i := 1; i < len(txs); i++ {
			for j := 0; j < i; j++ {
				if txs[i] == txs[j] {
					panic(fmt.Sprintf("medium: packet %d transmitted twice in one slot", txs[i]))
				}
			}
		}
		return
	}
	if d.seen == nil {
		d.seen = make(map[channel.PacketID]uint64)
	}
	d.gen++
	for _, id := range txs {
		if d.seen[id] == d.gen {
			panic(fmt.Sprintf("medium: packet %d transmitted twice in one slot", id))
		}
		d.seen[id] = d.gen
	}
}

// MasksSilence reports whether the medium's feedback fails to expose
// provably idle slots as silent — either because the model has no
// channel sensing (classical:none) or because composed jamming energy
// can land on idle slots (any jam wrapper).  Adaptive adversaries rely
// on truthful silence for their gap-equals-silence determinism rule, so
// sim.Run rejects them on masking media and the sweep layer skips the
// cells.
func MasksSilence(m Medium) bool {
	msk, ok := m.(interface{ MasksSilence() bool })
	return ok && msk.MasksSilence()
}

// New constructs a medium from a model descriptor — ParseSpec followed
// by Build.  kappa and maxWindow supply context defaults for the coded
// and capture models when the descriptor embeds none; classical models
// ignore them.
func New(desc string, kappa, maxWindow int) (Medium, error) {
	s, err := ParseSpec(desc)
	if err != nil {
		return nil, err
	}
	return s.Build(kappa, maxWindow)
}
