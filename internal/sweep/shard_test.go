package sweep

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/cache"
)

func TestParseShard(t *testing.T) {
	sh, err := ParseShard("2/4")
	if err != nil || sh.Index != 2 || sh.Count != 4 {
		t.Fatalf("ParseShard(2/4) = %v, %v", sh, err)
	}
	if sh.String() != "2/4" {
		t.Fatalf("String() = %q", sh.String())
	}
	for _, bad := range []string{"", "garbage", "0/4", "5/4", "-1/4", "1/0", "1/-2", "1", "1/", "/4", "a/b", "1/4/2"} {
		if _, err := ParseShard(bad); err == nil {
			t.Errorf("ParseShard accepted %q", bad)
		}
	}
}

func TestShardIndicesPartition(t *testing.T) {
	// Shards 1..N partition the grid: disjoint, union exact, balanced to
	// within one cell.
	for _, total := range []int{0, 1, 3, 4, 7, 132} {
		for _, n := range []int{1, 2, 4, 5} {
			seen := make([]bool, total)
			min, max := total, 0
			for k := 1; k <= n; k++ {
				idx := Shard{Index: k, Count: n}.Indices(total)
				if len(idx) < min {
					min = len(idx)
				}
				if len(idx) > max {
					max = len(idx)
				}
				for _, i := range idx {
					if i < 0 || i >= total || seen[i] {
						t.Fatalf("total=%d n=%d: index %d out of range or duplicated", total, n, i)
					}
					seen[i] = true
				}
			}
			for i, ok := range seen {
				if !ok {
					t.Fatalf("total=%d n=%d: cell %d unassigned", total, n, i)
				}
			}
			if total >= n && max-min > 1 {
				t.Fatalf("total=%d n=%d: unbalanced shards (sizes %d..%d)", total, n, min, max)
			}
		}
	}
	all := Shard{}.Indices(5)
	if len(all) != 5 || all[0] != 0 || all[4] != 4 {
		t.Fatalf("zero shard indices = %v", all)
	}
}

func TestSpecHash(t *testing.T) {
	s := smallSpec()
	h1, err := s.Hash()
	if err != nil {
		t.Fatal(err)
	}
	// Hash is computed on the normalized spec, so pre- and
	// post-Validate specs agree.
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	h2, err := s.Hash()
	if err != nil || h1 != h2 {
		t.Fatalf("normalization changed the hash: %s vs %s (%v)", h1, h2, err)
	}
	s.Seed++
	h3, err := s.Hash()
	if err != nil || h3 == h1 {
		t.Fatalf("seed change did not change the hash (%v)", err)
	}
}

// mergedArtifacts runs the spec as n shards at the given parallelism and
// merges them (in reversed order, exercising order independence).
func mergedArtifacts(t *testing.T, spec Spec, n, parallelism int) (jsonOut, csvOut []byte) {
	t.Helper()
	var shards []*ShardResult
	for k := n; k >= 1; k-- {
		res, err := RunShard(context.Background(), spec, Shard{Index: k, Count: n}, Options{Parallelism: parallelism})
		if err != nil {
			t.Fatal(err)
		}
		// Round-trip each shard through its JSON artifact, as the CLI
		// merge path does.
		data, err := res.JSON()
		if err != nil {
			t.Fatal(err)
		}
		back, err := ParseShardResult(data)
		if err != nil {
			t.Fatal(err)
		}
		shards = append(shards, back)
	}
	grid, err := Merge(shards)
	if err != nil {
		t.Fatal(err)
	}
	data, err := grid.JSON()
	if err != nil {
		t.Fatal(err)
	}
	return data, []byte(grid.CSV())
}

func TestShardedMergeByteIdentical(t *testing.T) {
	// The tentpole contract: a 4-shard run merges to artifacts
	// byte-identical to an unsharded run of the same spec, at
	// parallelism 1 and N alike.  The spec mixes models and adversaries
	// so the skip rules are live during partitioning.
	spec := adversarialSpec()
	spec.Models = []string{"coded", "classical:ternary"}
	grid, err := Run(context.Background(), spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, err := grid.JSON()
	if err != nil {
		t.Fatal(err)
	}
	wantCSV := []byte(grid.CSV())
	for _, par := range []int{1, 8} {
		gotJSON, gotCSV := mergedArtifacts(t, spec, 4, par)
		if !bytes.Equal(wantJSON, gotJSON) {
			t.Fatalf("parallelism %d: merged JSON differs from unsharded run", par)
		}
		if !bytes.Equal(wantCSV, gotCSV) {
			t.Fatalf("parallelism %d: merged CSV differs from unsharded run", par)
		}
	}
}

func TestRunShardMatchesUnshardedCells(t *testing.T) {
	spec := smallSpec()
	grid, err := Run(context.Background(), spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunShard(context.Background(), spec, Shard{Index: 2, Count: 3}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.SchemaVersion != SchemaVersion || res.TotalCells != len(grid.Cells) {
		t.Fatalf("shard artifact header wrong: %+v", res)
	}
	if len(res.Cells) == 0 {
		t.Fatal("shard ran no cells")
	}
	for _, c := range res.Cells {
		if c.Index%3 != 1 {
			t.Fatalf("shard 2/3 owns cell %d", c.Index)
		}
		if want := grid.Cells[c.Index]; c.Cell != want {
			t.Fatalf("cell %d differs between sharded and unsharded run:\n%+v\n%+v", c.Index, c.Cell, want)
		}
	}
}

func TestMergeRejects(t *testing.T) {
	spec := smallSpec()
	shardOf := func(sp Spec, k, n int) *ShardResult {
		res, err := RunShard(context.Background(), sp, Shard{Index: k, Count: n}, Options{})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	s1, s2 := shardOf(spec, 1, 2), shardOf(spec, 2, 2)

	if _, err := Merge(nil); err == nil {
		t.Error("merge of zero shards accepted")
	}
	if _, err := Merge([]*ShardResult{s1}); err == nil {
		t.Error("merge with a missing shard accepted")
	}
	if _, err := Merge([]*ShardResult{s1, s2, s1}); err == nil {
		t.Error("merge with a duplicated shard accepted")
	}

	// Mismatched spec hashes: same shape, different seed.
	other := spec
	other.Seed = 99
	if _, err := Merge([]*ShardResult{s1, shardOf(other, 2, 2)}); err == nil {
		t.Error("merge across different specs accepted")
	}

	// A stale schema version must refuse to merge.
	stale := *s1
	stale.SchemaVersion = "crn-sweep/0"
	if _, err := Merge([]*ShardResult{&stale, s2}); err == nil {
		t.Error("merge with a stale schema version accepted")
	}

	// A tampered spec (hash no longer matches) must refuse to merge.
	tampered := *s1
	tampered.Spec.Horizon++
	if _, err := Merge([]*ShardResult{&tampered, s2}); err == nil {
		t.Error("merge with a tampered spec accepted")
	}

	// A tampered cell identity must refuse to merge.
	badCell := *s1
	badCell.Cells = append([]IndexedCell(nil), s1.Cells...)
	badCell.Cells[0].ID = badCell.Cells[1].ID
	if _, err := Merge([]*ShardResult{&badCell, s2}); err == nil {
		t.Error("merge with a tampered cell identity accepted")
	}

	// And the happy path still merges after all that.
	if _, err := Merge([]*ShardResult{s2, s1}); err != nil {
		t.Fatalf("valid merge failed: %v", err)
	}
}

// runCounting runs the spec with a cache, returning the grid's JSON and
// how many cells were executed vs loaded.
func runCounting(t *testing.T, spec Spec, store *cache.Store, resume bool) (data []byte, executed, cached int) {
	t.Helper()
	grid, err := Run(context.Background(), spec, Options{
		Cache:  store,
		Resume: resume,
		OnCell: func(done, total int, cell *CellSummary, fromCache bool) {
			if fromCache {
				cached++
			} else {
				executed++
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	data, err = grid.JSON()
	if err != nil {
		t.Fatal(err)
	}
	return data, executed, cached
}

func TestResumeExecutesOnlyMissingCells(t *testing.T) {
	// The resume contract: after an interrupted run, a -resume re-run
	// executes exactly the cells whose records are missing and its
	// artifact is byte-identical to an uninterrupted run.
	spec := smallSpec()
	store, err := cache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	want, executed, cached := runCounting(t, spec, store, false)
	if executed != 16 || cached != 0 {
		t.Fatalf("cold run: executed=%d cached=%d, want 16/0", executed, cached)
	}

	// Simulate a kill mid-sweep: drop 3 of the 16 completed-cell records.
	records, err := filepath.Glob(filepath.Join(store.Dir(), "*.json"))
	if err != nil || len(records) != 16 {
		t.Fatalf("cache holds %d records (%v), want 16", len(records), err)
	}
	for _, path := range records[:3] {
		if err := os.Remove(path); err != nil {
			t.Fatal(err)
		}
	}

	got, executed, cached := runCounting(t, spec, store, true)
	if executed != 3 || cached != 13 {
		t.Fatalf("resumed run: executed=%d cached=%d, want 3/13", executed, cached)
	}
	if !bytes.Equal(want, got) {
		t.Fatal("resumed artifact differs from the uninterrupted run")
	}

	// A fully-warm resume executes nothing and still reproduces the bytes.
	got, executed, cached = runCounting(t, spec, store, true)
	if executed != 0 || cached != 16 {
		t.Fatalf("warm run: executed=%d cached=%d, want 0/16", executed, cached)
	}
	if !bytes.Equal(want, got) {
		t.Fatal("fully-cached artifact differs from the uninterrupted run")
	}
}

func TestResumeIgnoresForeignAndCorruptRecords(t *testing.T) {
	spec := smallSpec()
	dir := t.TempDir()
	store, err := cache.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	want, _, _ := runCounting(t, spec, store, false)

	// Corrupt one record (truncate) and tamper another's key; both must
	// be treated as misses and re-executed, not merged.
	records, _ := filepath.Glob(filepath.Join(dir, "*.json"))
	if err := os.WriteFile(records[0], []byte(`{"schema_version":`), 0o644); err != nil {
		t.Fatal(err)
	}
	var rec CellRecord
	id := filepath.Base(records[1])
	id = id[:len(id)-len(".json")]
	if ok, err := store.Get(id, &rec); err != nil || !ok {
		t.Fatalf("reading record %s: ok=%v err=%v", id, ok, err)
	}
	rec.Key = "not/the/right/cell"
	if err := store.Put(id, &rec); err != nil {
		t.Fatal(err)
	}

	got, executed, cached := runCounting(t, spec, store, true)
	if executed != 2 || cached != 14 {
		t.Fatalf("executed=%d cached=%d, want 2/14", executed, cached)
	}
	if !bytes.Equal(want, got) {
		t.Fatal("artifact differs after invalid records were re-executed")
	}
}

func TestResumeRequiresCache(t *testing.T) {
	if _, err := Run(context.Background(), smallSpec(), Options{Resume: true}); err == nil {
		t.Fatal("Resume without a Cache accepted")
	}
}

func TestShardsShareOneCache(t *testing.T) {
	// Shards persist into the same store an unsharded resume can reuse:
	// run shard 1/2 with a cache, then resume the full grid — only
	// shard 2/2's cells execute.
	spec := smallSpec()
	store, err := cache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunShard(context.Background(), spec, Shard{Index: 1, Count: 2}, Options{Cache: store})
	if err != nil {
		t.Fatal(err)
	}
	_, executed, cached := runCounting(t, spec, store, true)
	if cached != len(res.Cells) || executed != 16-len(res.Cells) {
		t.Fatalf("executed=%d cached=%d after a %d-cell shard", executed, cached, len(res.Cells))
	}
}
