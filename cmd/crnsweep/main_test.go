package main

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/report"
	"repro/internal/sweep"
)

// tinyArgs is a grid small enough for in-process end-to-end runs.
func tinyArgs(extra ...string) []string {
	args := []string{
		"-protocols", "genie", "-arrivals", "batch", "-kappas", "4",
		"-rates", "0.5", "-trials", "1", "-horizon", "200", "-quiet",
	}
	return append(args, extra...)
}

func runCLI(t *testing.T, args ...string) (stdout, stderr string, err error) {
	t.Helper()
	var out, errBuf bytes.Buffer
	err = run(args, &out, &errBuf)
	return out.String(), errBuf.String(), err
}

func TestInvalidShardSpecsRejected(t *testing.T) {
	for _, bad := range []string{"0/4", "5/4", "garbage", "1/0", "-1/2", "1/"} {
		_, _, err := runCLI(t, tinyArgs("-shard", bad)...)
		if err == nil || !strings.Contains(err.Error(), "shard") {
			t.Errorf("-shard %q: err = %v, want a shard parse error", bad, err)
		}
	}
}

func TestResumeRequiresCacheDir(t *testing.T) {
	_, _, err := runCLI(t, tinyArgs("-resume")...)
	if err == nil || !strings.Contains(err.Error(), "-cache-dir") {
		t.Fatalf("err = %v, want the -resume/-cache-dir error", err)
	}
}

func TestShardRejectsFullGridArtifacts(t *testing.T) {
	for _, flag := range []string{"-csv", "-bench"} {
		_, _, err := runCLI(t, tinyArgs("-shard", "1/2", flag, filepath.Join(t.TempDir(), "x"))...)
		if err == nil || !strings.Contains(err.Error(), "-merge") {
			t.Errorf("%s under -shard: err = %v, want the merge-first error", flag, err)
		}
	}
}

func TestShardRequiresJSONOutput(t *testing.T) {
	_, _, err := runCLI(t, tinyArgs("-shard", "1/2")...)
	if err == nil || !strings.Contains(err.Error(), "-json") {
		t.Fatalf("err = %v, want the shard-needs-json error", err)
	}
}

func TestHelpIsNotAnError(t *testing.T) {
	_, stderr, err := runCLI(t, "-h")
	if err != nil {
		t.Fatalf("-h returned %v, want nil (exit 0)", err)
	}
	if !strings.Contains(stderr, "Usage") && !strings.Contains(stderr, "-shard") {
		t.Fatalf("usage not printed:\n%s", stderr)
	}
}

func TestBadFlagReportedOnce(t *testing.T) {
	_, stderr, err := runCLI(t, "-no-such-flag")
	if err == nil {
		t.Fatal("undefined flag accepted")
	}
	// The FlagSet already printed the problem; main suppresses the
	// sentinel, so the message appears exactly once.
	if n := strings.Count(stderr, "flag provided but not defined"); n != 1 {
		t.Fatalf("flag error printed %d times:\n%s", n, stderr)
	}
}

func TestMergeNeedsArguments(t *testing.T) {
	_, _, err := runCLI(t, "-merge", "-quiet")
	if err == nil || !strings.Contains(err.Error(), "shard artifact") {
		t.Fatalf("err = %v, want the missing-arguments error", err)
	}
}

func TestPositionalArgsOutsideMergeRejected(t *testing.T) {
	_, _, err := runCLI(t, tinyArgs("shard1.json")...)
	if err == nil || !strings.Contains(err.Error(), "-merge") {
		t.Fatalf("err = %v, want the unexpected-arguments error", err)
	}
}

// writeShard runs one shard in-process and saves its artifact.
func writeShard(t *testing.T, spec sweep.Spec, k, n int, path string) {
	t.Helper()
	res, err := sweep.RunShard(context.Background(), spec, sweep.Shard{Index: k, Count: n}, sweep.Options{})
	if err != nil {
		t.Fatal(err)
	}
	data, err := res.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if err := report.SaveFile(path, append(data, '\n')); err != nil {
		t.Fatal(err)
	}
}

func tinySpec(seed uint64) sweep.Spec {
	return sweep.Spec{
		Protocols: []string{"genie"}, Arrivals: []string{"batch"},
		Kappas: []int{4, 8}, Rates: []float64{0.5},
		Trials: 1, Horizon: 200, Seed: seed,
	}
}

func TestMergeRefusesMismatchedSpecHashes(t *testing.T) {
	dir := t.TempDir()
	a, b := filepath.Join(dir, "a.json"), filepath.Join(dir, "b.json")
	writeShard(t, tinySpec(1), 1, 2, a)
	writeShard(t, tinySpec(2), 2, 2, b) // same shape, different seed
	_, _, err := runCLI(t, "-merge", "-quiet", a, b)
	if err == nil || !strings.Contains(err.Error(), "spec hash mismatch") {
		t.Fatalf("err = %v, want the spec-hash mismatch error", err)
	}
}

func TestCLIShardMergeMatchesUnsharded(t *testing.T) {
	// End-to-end through the CLI glue: run 2 shards and an unsharded
	// grid via run(), merge the shard files, compare bytes.
	dir := t.TempDir()
	full := filepath.Join(dir, "full.json")
	if _, _, err := runCLI(t, tinyArgs("-kappas", "4,8", "-json", full)...); err != nil {
		t.Fatal(err)
	}
	for k := 1; k <= 2; k++ {
		args := tinyArgs("-kappas", "4,8",
			"-shard", fmt.Sprintf("%d/2", k),
			"-json", filepath.Join(dir, fmt.Sprintf("shard%d.json", k)))
		if _, _, err := runCLI(t, args...); err != nil {
			t.Fatal(err)
		}
	}
	merged := filepath.Join(dir, "merged.json")
	if _, _, err := runCLI(t, "-merge", "-quiet", "-json", merged,
		filepath.Join(dir, "shard2.json"), filepath.Join(dir, "shard1.json")); err != nil {
		t.Fatal(err)
	}
	want := mustRead(t, full)
	got := mustRead(t, merged)
	if !bytes.Equal(want, got) {
		t.Fatal("CLI merged JSON differs from unsharded run")
	}
}

func TestCLIResumeUsesCache(t *testing.T) {
	dir := t.TempDir()
	cacheDir := filepath.Join(dir, "cache")
	first := filepath.Join(dir, "first.json")
	if _, _, err := runCLI(t, tinyArgs("-cache-dir", cacheDir, "-json", first)...); err != nil {
		t.Fatal(err)
	}
	// Resumed, fully warm: no cell executes, artifact identical, and the
	// progress log marks cells as cached.
	second := filepath.Join(dir, "second.json")
	args := []string{
		"-protocols", "genie", "-arrivals", "batch", "-kappas", "4",
		"-rates", "0.5", "-trials", "1", "-horizon", "200",
		"-cache-dir", cacheDir, "-resume", "-json", second,
	}
	var out, errBuf bytes.Buffer
	if err := run(args, &out, &errBuf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(errBuf.String(), "(cached)") {
		t.Fatalf("progress log missing cache marks:\n%s", errBuf.String())
	}
	if !bytes.Equal(mustRead(t, first), mustRead(t, second)) {
		t.Fatal("resumed CLI artifact differs")
	}
}

func mustRead(t *testing.T, path string) []byte {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestDistributedFlagValidation covers the coordinator/worker/backend
// flag surface: every row is a misuse that must be refused with a
// message pointing at the right flag.
func TestDistributedFlagValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string // substring of the error
	}{
		{"worker and assemble", tinyArgs("-worker", "-assemble", "-cache-dir", "d"), "-worker and -assemble"},
		{"worker without store", tinyArgs("-worker"), "shared store"},
		{"assemble without store", tinyArgs("-assemble"), "shared store"},
		{"backend with cache-dir", tinyArgs("-worker", "-backend", "http://localhost:1", "-cache-dir", "d"), "pick one"},
		{"backend without role", tinyArgs("-backend", "http://localhost:1"), "-worker or -assemble"},
		{"bad backend url", tinyArgs("-worker", "-backend", "not a url"), "url"},
		{"relative backend url", tinyArgs("-worker", "-backend", "localhost:8771"), "url"},
		{"resume with backend", tinyArgs("-resume", "-worker", "-backend", "http://localhost:1"), "-worker"},
		{"resume with worker", tinyArgs("-resume", "-worker", "-cache-dir", "d"), "-worker"},
		{"shard with worker", tinyArgs("-worker", "-cache-dir", "d", "-shard", "1/2"), "scheduling policy"},
		{"shard with assemble", tinyArgs("-assemble", "-cache-dir", "d", "-shard", "1/2"), "-assemble"},
		{"worker with json", tinyArgs("-worker", "-cache-dir", "d", "-json", "x.json"), "-assemble"},
		{"worker with csv", tinyArgs("-worker", "-cache-dir", "d", "-csv", "x.csv"), "-assemble"},
		{"worker with bench", tinyArgs("-worker", "-cache-dir", "d", "-bench", "x.json"), "-assemble"},
		{"merge with worker", []string{"-merge", "-worker", "-cache-dir", "d", "x.json"}, "-assemble"},
		{"owner without worker", tinyArgs("-owner", "w1"), "-worker"},
		{"lease-ttl without worker", tinyArgs("-lease-ttl", "5m"), "-worker"},
		{"assemble positional", tinyArgs("-assemble", "-cache-dir", "d", "stray.json"), "unexpected arguments"},
	}
	for _, c := range cases {
		_, _, err := runCLI(t, c.args...)
		if err == nil {
			t.Errorf("%s: accepted", c.name)
			continue
		}
		if !strings.Contains(strings.ToLower(err.Error()), strings.ToLower(c.want)) {
			t.Errorf("%s: err = %v, want mention of %q", c.name, err, c.want)
		}
	}
}

// TestCLIWorkerAssembleMatchesUnsharded is the CLI-level end of the
// work-stealing contract: two -worker invocations drain a shared
// -cache-dir store, -assemble reads it back, and the artifact is
// byte-identical to a plain run's.
func TestCLIWorkerAssembleMatchesUnsharded(t *testing.T) {
	dir := t.TempDir()
	full := filepath.Join(dir, "full.json")
	if _, _, err := runCLI(t, tinyArgs("-kappas", "4,8", "-json", full)...); err != nil {
		t.Fatal(err)
	}
	cacheDir := filepath.Join(dir, "cells")
	var stderrs [2]string
	for w := 0; w < 2; w++ {
		args := tinyArgs("-kappas", "4,8", "-worker", "-cache-dir", cacheDir,
			"-owner", fmt.Sprintf("w%d", w), "-lease-ttl", "1m")
		// -quiet is in tinyArgs; drop it for the first worker to check the
		// progress line.
		if w == 0 {
			filtered := args[:0]
			for _, a := range args {
				if a != "-quiet" {
					filtered = append(filtered, a)
				}
			}
			args = filtered
		}
		var out, errBuf bytes.Buffer
		if err := run(args, &out, &errBuf); err != nil {
			t.Fatalf("worker %d: %v", w, err)
		}
		stderrs[w] = errBuf.String()
	}
	if !strings.Contains(stderrs[0], "worker") {
		t.Fatalf("worker progress line missing:\n%s", stderrs[0])
	}
	assembled := filepath.Join(dir, "assembled.json")
	if _, _, err := runCLI(t, tinyArgs("-kappas", "4,8", "-assemble", "-cache-dir", cacheDir, "-json", assembled)...); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(mustRead(t, full), mustRead(t, assembled)) {
		t.Fatal("assembled CLI artifact differs from the plain run")
	}
}

// TestCLIAssembleIncompleteStoreFails: assembling before the workers
// finish is an error that says the store is short, not a bad artifact.
func TestCLIAssembleIncompleteStoreFails(t *testing.T) {
	cacheDir := filepath.Join(t.TempDir(), "cells")
	if err := os.MkdirAll(cacheDir, 0o755); err != nil {
		t.Fatal(err)
	}
	_, _, err := runCLI(t, tinyArgs("-assemble", "-cache-dir", cacheDir, "-json", "-")...)
	if err == nil || !strings.Contains(err.Error(), "cells") {
		t.Fatalf("err = %v, want the missing-cells error", err)
	}
}
