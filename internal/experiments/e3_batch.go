package experiments

import (
	"math"

	"repro/internal/arrival"
	"repro/internal/asciiplot"
	"repro/internal/core"
	"repro/internal/report"
	"repro/internal/rng"
	"repro/internal/sim"
)

// E3Batch reproduces Theorem 16: a batch of n packets arriving at time 0
// is fully delivered by slot n(1 + 10/κ) + O(κ) whp — i.e. batch
// throughput approaches 1 as κ grows.  This is the headline "throughput
// 1 − o(1)" result in its cleanest form.
func E3Batch(scale Scale, seed uint64) *Output {
	out := &Output{
		ID:    "E3",
		Title: "batch completion time and throughput vs κ",
		Claim: "Theorem 16: batch of n done by n(1+10/κ)+O(κ) whp ⇒ throughput → 1 as κ grows",
	}
	kappas := []int{8, 16, 32, 64, 128, 256}
	if scale == Full {
		kappas = append(kappas, 512, 1024)
	}
	ns := []int{scale.pick(2000, 10000)}
	if scale == Full {
		ns = append(ns, 100000)
	}
	trials := scale.pick(3, 5)

	tbl := report.NewTable("Batch completion (mean over trials)",
		"n", "kappa", "completion", "bound n(1+10/κ)+4κ", "throughput", "1-thpt", "(1-thpt)·lnκ", "within bound")
	var plotX, plotY []float64
	for _, n := range ns {
		for _, kappa := range kappas {
			results := sim.RunTrials(trials, seed+uint64(kappa)*13+uint64(n), 0,
				func(trial int, s uint64) *sim.Result {
					return sim.Run(sim.Config{Kappa: kappa, Horizon: 1, Drain: true,
						DrainLimit: int64(8*n) + 1<<20, Seed: s},
						core.New(kappa, rng.New(s^0xE3)),
						&arrival.Batch{At: 0, N: n})
				})
			completion := sim.Aggregate(results, func(r *sim.Result) float64 {
				return float64(r.LastDelivery + 1)
			})
			bound := float64(n)*(1+10/float64(kappa)) + 4*float64(kappa)
			thpt := float64(n) / completion.Mean()
			tbl.AddRow(n, kappa, completion.Mean(), bound, thpt, 1-thpt,
				(1-thpt)*math.Log(float64(kappa)), boolMark(completion.Max() <= bound))
			if n == ns[0] {
				plotX = append(plotX, math.Log2(float64(kappa)))
				plotY = append(plotY, thpt)
			}
		}
	}
	out.Tables = append(out.Tables, tbl)

	plot := asciiplot.Plot{
		Title:  "Batch throughput vs log2(κ)  (paper: 1 − Θ(1/ln κ))",
		XLabel: "log2(kappa)", YLabel: "throughput n/T",
		Width: 60, Height: 14,
	}
	plot.Add(asciiplot.Series{Name: "DBA", X: plotX, Y: plotY})
	out.Plots = append(out.Plots, plot.Render())
	out.Notes = append(out.Notes,
		"(1-thpt)·lnκ approximately constant confirms the 1-Θ(1/ln κ) throughput shape",
		"completion can never be below n (channel capacity is 1 packet/slot)")
	return out
}
