package nocd

import (
	"math"
	"testing"

	"repro/internal/channel"
	"repro/internal/protocol"
	"repro/internal/rng"
)

// TestGeomSchedule pins the unbounded schedule's shape: round k lasts
// roundScale·2^k slots at probability 2^-k, rounds are monotone, and
// reset rewinds to the densest setting.
func TestGeomSchedule(t *testing.T) {
	var g geomSchedule
	g.reset()
	for k := 0; k < 5; k++ {
		want := math.Ldexp(1, -k)
		dwell := int64(roundScale) << k
		for i := int64(0); i < dwell; i++ {
			if p := g.advance(); p != want {
				t.Fatalf("round %d slot %d: p = %g, want %g", k, i, p, want)
			}
		}
	}
	g.reset()
	if p := g.advance(); p != 1 {
		t.Fatalf("after reset: p = %g, want 1", p)
	}
}

// TestSawSchedule pins the robust schedule's sawtooth: phase i sweeps
// scales 0…i, dwelling roundScale·2^j slots at probability 2^-j, so
// every density recurs in every phase.
func TestSawSchedule(t *testing.T) {
	var s sawSchedule
	s.reset()
	for phase := 0; phase < 4; phase++ {
		for scale := 0; scale <= phase; scale++ {
			want := math.Ldexp(1, -scale)
			dwell := int64(roundScale) << scale
			for i := int64(0); i < dwell; i++ {
				if p := s.advance(); p != want {
					t.Fatalf("phase %d scale %d slot %d: p = %g, want %g", phase, scale, i, p, want)
				}
			}
		}
	}
	s.reset()
	if p := s.advance(); p != 1 {
		t.Fatalf("after reset: p = %g, want 1", p)
	}
}

// TestScheduleOverflowCap drives the shift past maxShift and checks the
// dwell length stops growing instead of overflowing.
func TestScheduleOverflowCap(t *testing.T) {
	g := geomSchedule{round: maxShift, left: 0}
	if g.advance(); g.round != maxShift {
		t.Fatalf("round grew past maxShift: %d", g.round)
	}
	if g.left < 0 || g.left != (roundScale<<maxShift)-1 {
		t.Fatalf("dwell overflowed: left = %d", g.left)
	}
	s := sawSchedule{phase: maxShift + 3, scale: maxShift + 2, left: 0}
	s.advance()
	if s.left < 0 {
		t.Fatalf("saw dwell overflowed: left = %d", s.left)
	}
}

// TestSchemePartitionedContract checks the Partitioned invariants on
// both no-CD schemes: two same-seed instances — one driven through the
// monolithic cycle, one through the staged cycle — stay in lockstep
// (transmitter lists and pendings) through a full batch drain.
func TestSchemePartitionedContract(t *testing.T) {
	for _, tc := range []struct {
		name  string
		build func(r *rng.Rand) *Scheme
	}{
		{"unbounded", NewUnbounded},
		{"robust", NewRobust},
	} {
		t.Run(tc.name, func(t *testing.T) {
			const kappa = 8
			mono := tc.build(rng.New(9))
			staged := tc.build(rng.New(9))
			chM := channel.New(kappa, 4*kappa)
			chS := channel.New(kappa, 4*kappa)

			ids := make([]channel.PacketID, 60)
			for i := range ids {
				ids[i] = channel.PacketID(i)
			}
			mono.Inject(0, ids)
			staged.Inject(0, ids)

			for now := int64(1); now < 1<<20 && mono.Pending() > 0; now++ {
				txM := mono.Transmitters(now, nil)

				staged.PrepareSlot(now)
				var txS []channel.PacketID
				for sh := 0; sh < staged.Shards(); sh++ {
					txS = staged.ShardTransmitters(now, sh, txS)
				}
				if len(txM) != len(txS) {
					t.Fatalf("slot %d: staged %d transmitters, monolithic %d", now, len(txS), len(txM))
				}
				for i := range txM {
					if txM[i] != txS[i] {
						t.Fatalf("slot %d: transmitter order diverges at %d", now, i)
					}
				}

				classM, evM := chM.Step(now, txM)
				mono.Observe(channel.Feedback{Slot: now, Silent: classM == channel.Silent, Event: evM})

				classS, evS := chS.Step(now, txS)
				fbS := channel.Feedback{Slot: now, Silent: classS == channel.Silent, Event: evS}
				for sh := 0; sh < staged.Shards(); sh++ {
					staged.ShardObserve(sh, fbS)
				}
				staged.ReduceSlot(fbS)

				sum := 0
				for sh := 0; sh < staged.Shards(); sh++ {
					sum += staged.ShardPending(sh)
				}
				if sum != staged.Pending() || staged.Pending() != mono.Pending() {
					t.Fatalf("slot %d: shard sum %d, staged pending %d, monolithic pending %d",
						now, sum, staged.Pending(), mono.Pending())
				}
			}
			if mono.Pending() != 0 {
				t.Fatalf("batch not drained: %d pending", mono.Pending())
			}
			if staged.Shards() != protocol.NumShards {
				t.Fatalf("Shards() = %d, want %d", staged.Shards(), protocol.NumShards)
			}
			if st := mono.Stats(); st.Delivered != int64(len(ids)) {
				t.Fatalf("Stats().Delivered = %d, want %d", st.Delivered, len(ids))
			}
		})
	}
}

// TestSchemeResetOnEmpty checks the busy-period rewind: when the last
// pending packet leaves, the schedule returns to its densest setting,
// so the next busy period starts at probability 1.
func TestSchemeResetOnEmpty(t *testing.T) {
	s := NewUnbounded(rng.New(1))
	s.Inject(0, []channel.PacketID{7})
	// Burn schedule state past round 0.
	for now := int64(1); now <= 3*roundScale; now++ {
		s.Transmitters(now, nil)
		s.Observe(channel.Feedback{Slot: now, Silent: true})
	}
	if g := s.sched.(*geomSchedule); g.round == 0 {
		t.Fatalf("schedule never advanced past round 0")
	}
	// Deliver the lone packet; the schedule must rewind.
	s.Observe(channel.Feedback{Slot: 100, Event: &channel.Event{
		Slot: 100, WindowStart: 100, Packets: []channel.PacketID{7}}})
	if s.Pending() != 0 {
		t.Fatalf("pending = %d after delivery", s.Pending())
	}
	if g := s.sched.(*geomSchedule); g.round != 0 || g.left != roundScale {
		t.Fatalf("schedule not rewound: round=%d left=%d", g.round, g.left)
	}
}

// TestSchemeDuplicateInjectPanics checks the duplicate-injection guard.
func TestSchemeDuplicateInjectPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("duplicate injection did not panic")
		}
	}()
	s := NewRobust(rng.New(1))
	s.Inject(0, []channel.PacketID{3})
	s.Inject(1, []channel.PacketID{3})
}

// TestSchemeEmptySlotTouchesNothing checks that slots with nothing
// pending consume neither the schedule nor the RNG stream — the
// alignment the engine's empty-stretch fast-forwarding relies on.
func TestSchemeEmptySlotTouchesNothing(t *testing.T) {
	idle := NewUnbounded(rng.New(5))
	busy := NewUnbounded(rng.New(5))
	// idle burns 1000 empty slots before its first packet; busy gets the
	// packet immediately.  Their subsequent sampling must agree.
	for now := int64(1); now <= 1000; now++ {
		if tx := idle.Transmitters(now, nil); len(tx) != 0 {
			t.Fatalf("slot %d: empty scheme transmitted %v", now, tx)
		}
		idle.Observe(channel.Feedback{Slot: now, Silent: true})
	}
	ids := []channel.PacketID{1, 2, 3, 4, 5}
	idle.Inject(1000, ids)
	busy.Inject(1000, ids)
	for now := int64(1001); now < 1101; now++ {
		txI := idle.Transmitters(now, nil)
		txB := busy.Transmitters(now, nil)
		if len(txI) != len(txB) {
			t.Fatalf("slot %d: idle-prefixed scheme diverged: %v vs %v", now, txI, txB)
		}
		for i := range txI {
			if txI[i] != txB[i] {
				t.Fatalf("slot %d: idle-prefixed scheme diverged: %v vs %v", now, txI, txB)
			}
		}
		idle.Observe(channel.Feedback{Slot: now, Silent: len(txI) == 0})
		busy.Observe(channel.Feedback{Slot: now, Silent: len(txB) == 0})
	}
}
