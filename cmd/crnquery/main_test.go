package main

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/cache"
	"repro/internal/report"
	"repro/internal/sweep"
)

func runCLI(t *testing.T, argv ...string) (string, error) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	err := run(argv, &stdout, &stderr)
	return stdout.String(), err
}

// writeArtifacts executes a tiny sweep once and materializes it in the
// three file-backed source shapes a query can read.
func writeArtifacts(t *testing.T) (gridPath, benchPath, storeDir string) {
	t.Helper()
	dir := t.TempDir()
	storeDir = filepath.Join(dir, "cells")
	store, err := cache.Open(storeDir)
	if err != nil {
		t.Fatal(err)
	}
	spec := sweep.Spec{
		Protocols: []string{"dba"},
		Arrivals:  []string{"batch"},
		Kappas:    []int{8},
		Rates:     []float64{0.3, 0.6},
		Trials:    1,
		Horizon:   300,
		Seed:      7,
	}
	g, err := sweep.Run(context.Background(), spec, sweep.Options{Cache: store})
	if err != nil {
		t.Fatal(err)
	}
	gridPath = filepath.Join(dir, "grid.json")
	data, err := g.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(gridPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	benchPath = filepath.Join(dir, "bench.json")
	bench := g.Bench()
	if err := report.SaveJSON(benchPath, &bench); err != nil {
		t.Fatal(err)
	}
	return gridPath, benchPath, storeDir
}

func TestFlagValidation(t *testing.T) {
	cases := []struct {
		name string
		argv []string
	}{
		{"no subcommand", nil},
		{"unknown subcommand", []string{"frobnicate"}},
		{"list without src", []string{"list"}},
		{"list positional", []string{"list", "-src", "x.json", "stray"}},
		{"list bad selector", []string{"list", "-src", "x.json", "-where", "bogus=1"}},
		{"diff missing b", []string{"diff", "-a", "x.json"}},
		{"diff missing a", []string{"diff", "-b", "x.json"}},
		{"engine missing b", []string{"engine", "-a", "x.json"}},
		{"list missing source file", []string{"list", "-src", "/nonexistent/x.json"}},
		{"list bad url", []string{"list", "-src", "http://"}},
	}
	for _, c := range cases {
		if _, err := runCLI(t, c.argv...); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
	if _, err := runCLI(t, "help"); err != nil {
		t.Errorf("help: %v", err)
	}
	if _, err := runCLI(t, "list", "-h"); err != nil {
		t.Errorf("list -h: %v", err)
	}
}

func TestListAcrossSourceKinds(t *testing.T) {
	gridPath, benchPath, storeDir := writeArtifacts(t)
	for _, src := range []string{gridPath, benchPath, storeDir} {
		out, err := runCLI(t, "list", "-src", src)
		if err != nil {
			t.Fatalf("list %s: %v", src, err)
		}
		if strings.Count(out, "| coded/dba/") != 2 {
			t.Fatalf("list %s rows:\n%s", src, out)
		}
	}
	// -where filters; -csv switches format.
	out, err := runCLI(t, "list", "-src", gridPath, "-where", "rate=0.3", "-csv")
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 2 || !strings.HasPrefix(lines[0], "cell,") {
		t.Fatalf("filtered CSV:\n%s", out)
	}
}

func TestDiffSelfIsCleanAndGates(t *testing.T) {
	gridPath, benchPath, storeDir := writeArtifacts(t)
	// Every pair of views of the same run diffs clean, even across
	// source kinds (grid vs bench vs store).
	for _, pair := range [][2]string{{gridPath, benchPath}, {gridPath, storeDir}, {benchPath, storeDir}} {
		out, err := runCLI(t, "diff", "-a", pair[0], "-b", pair[1], "-gate")
		if err != nil {
			t.Fatalf("diff %v: %v", pair, err)
		}
		if !strings.Contains(out, "(0 changed)") {
			t.Fatalf("diff %v:\n%s", pair, out)
		}
	}
}

func TestDiffDetectsChangeAndIsByteStable(t *testing.T) {
	gridPath, _, _ := writeArtifacts(t)
	// Perturb one metric in a copy of the grid.
	data, err := os.ReadFile(gridPath)
	if err != nil {
		t.Fatal(err)
	}
	mutated := filepath.Join(t.TempDir(), "mutated.json")
	patched := strings.Replace(string(data), `"mean": `, `"mean": 9`, 1)
	if patched == string(data) {
		t.Fatal("no mean field to perturb")
	}
	if err := os.WriteFile(mutated, []byte(patched), 0o644); err != nil {
		t.Fatal(err)
	}
	out1, err := runCLI(t, "diff", "-a", gridPath, "-b", mutated, "-changed")
	if err != nil {
		t.Fatal(err)
	}
	out2, err := runCLI(t, "diff", "-a", gridPath, "-b", mutated, "-changed")
	if err != nil {
		t.Fatal(err)
	}
	if out1 != out2 {
		t.Fatal("diff output is not byte-stable")
	}
	if !strings.Contains(out1, "(1 changed)") {
		t.Fatalf("perturbed diff:\n%s", out1)
	}
	// And the gate refuses it.
	if _, err := runCLI(t, "diff", "-a", gridPath, "-b", mutated, "-gate"); err == nil {
		t.Fatal("gate passed a changed diff")
	}
}

func TestDiffOutWritesFile(t *testing.T) {
	gridPath, benchPath, _ := writeArtifacts(t)
	outPath := filepath.Join(t.TempDir(), "sub", "diff.md")
	if err := os.MkdirAll(filepath.Dir(outPath), 0o755); err != nil {
		t.Fatal(err)
	}
	stdout, err := runCLI(t, "diff", "-a", gridPath, "-b", benchPath, "-out", outPath)
	if err != nil {
		t.Fatal(err)
	}
	if stdout != "" {
		t.Fatalf("-out still wrote to stdout: %q", stdout)
	}
	data, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "# Cell diff") {
		t.Fatalf("report file:\n%s", data)
	}
}

func TestEngineCompare(t *testing.T) {
	out, err := runCLI(t, "engine", "-a", "../../BENCH_engine.json", "-b", "../../BENCH_engine.json")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "|") {
		t.Fatalf("engine compare emitted no table:\n%s", out)
	}
}
