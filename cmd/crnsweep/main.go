// Command crnsweep runs a declarative scenario grid — the cross-product
// of channel models × protocols × arrival processes × κ values × rates
// × jammers × adversaries, with several independent trials per cell —
// in parallel, and emits per-cell aggregates as an aligned table, JSON,
// and/or CSV.  Artifacts are deterministic: the same spec and seed
// reproduce byte-identical output at any parallelism — adaptive
// adversaries included — so sweep results are diffable across commits.
//
// Usage:
//
//	crnsweep [-spec file.json] [grid flags] [-json path] [-csv path] [-bench path]
//
// Examples:
//
//	crnsweep                                    # default demo grid
//	crnsweep -protocols dba,beb -kappas 8,64 -rates 0.3,0.6 -trials 4
//	crnsweep -models coded,classical -protocols dba,beb,mw  # cross-model comparison
//	crnsweep -spec sweep.json -json - -quiet    # spec file, JSON to stdout
//	crnsweep -jammers none,random:0.2 -csv out/sweep.csv
//	crnsweep -adversaries none,reactive:8/64,sigmarho:500/0.2  # adversary grid
//	crnsweep -bench BENCH_sweep.json            # diffable benchmark artifact
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/report"
	"repro/internal/sweep"
)

func main() {
	specPath := flag.String("spec", "", "JSON sweep spec file (grid flags are ignored if set)")
	name := flag.String("name", "", "sweep name recorded in artifacts")
	models := flag.String("models", "coded", "comma-separated channel models: coded, classical, classical:none, classical:binary, classical:ternary")
	protocols := flag.String("protocols", "dba,genie", "comma-separated protocols: dba, beb, aloha, genie, mw")
	arrivals := flag.String("arrivals", "bernoulli", "comma-separated arrivals: batch, bernoulli, poisson, even, burst")
	kappas := flag.String("kappas", "8,64", "comma-separated decoding thresholds")
	rates := flag.String("rates", "0.3,0.6", "comma-separated offered loads")
	jammers := flag.String("jammers", "none", "comma-separated jammers: none, random:RATE, periodic:PERIOD/BURST")
	adversaries := flag.String("adversaries", "none", "comma-separated adversaries: none, random:RATE, burst:B/GAP, reactive:TRIGGER/BURST, sigmarho:SIGMA/RHO")
	trials := flag.Int("trials", 2, "independent trials per cell")
	horizon := flag.Int64("horizon", 20000, "arrival horizon in slots")
	noDrain := flag.Bool("no-drain", false, "stop at the horizon instead of draining")
	maxWindow := flag.Int("max-window", 0, "decoding-window cap (0 = default 4κ)")
	latencySamples := flag.Int("latency-samples", 0, "per-trial latency reservoir capacity (0 = engine default, -1 = off)")
	seed := flag.Uint64("seed", 1, "base random seed")
	parallelism := flag.Int("parallelism", 0, "concurrent trials (0 = GOMAXPROCS)")
	jsonPath := flag.String("json", "", "write the grid as JSON to this path ('-' = stdout)")
	csvPath := flag.String("csv", "", "write the grid as CSV to this path ('-' = stdout)")
	benchPath := flag.String("bench", "", "write the compact benchmark artifact (per-cell headline means) to this path")
	quiet := flag.Bool("quiet", false, "suppress the table and progress output")
	flag.Parse()

	var spec sweep.Spec
	if *specPath != "" {
		data, err := os.ReadFile(*specPath)
		if err != nil {
			fatal(err)
		}
		parsed, err := sweep.ParseSpec(data)
		if err != nil {
			fatal(err)
		}
		spec = *parsed
	} else {
		spec = sweep.Spec{
			Name:           *name,
			Models:         splitList(*models),
			Protocols:      splitList(*protocols),
			Arrivals:       splitList(*arrivals),
			Kappas:         parseInts(*kappas),
			Rates:          parseFloats(*rates),
			Jammers:        splitList(*jammers),
			Adversaries:    splitList(*adversaries),
			Trials:         *trials,
			Horizon:        *horizon,
			NoDrain:        *noDrain,
			MaxWindow:      *maxWindow,
			LatencySamples: *latencySamples,
			Seed:           *seed,
		}
		if err := spec.Validate(); err != nil {
			fatal(err)
		}
	}

	opts := sweep.Options{Parallelism: *parallelism}
	if !*quiet {
		fmt.Fprintf(os.Stderr, "crnsweep: %d cells × %d trials\n", spec.Cells(), spec.Trials)
		opts.OnCell = func(done, total int, cell *sweep.CellSummary) {
			fmt.Fprintf(os.Stderr, "  [%d/%d] %s thpt=%.3f\n",
				done, total, cell.Key(), cell.Throughput.Mean)
		}
	}
	start := time.Now()
	grid, err := sweep.Run(spec, opts)
	if err != nil {
		fatal(err)
	}
	// When an artifact streams to stdout, keep stdout machine-clean: the
	// table would corrupt the JSON/CSV a pipe consumes.
	stdoutTaken := *jsonPath == "-" || *csvPath == "-"
	if !*quiet {
		fmt.Fprintf(os.Stderr, "crnsweep: completed in %v\n\n", time.Since(start).Round(time.Millisecond))
		if !stdoutTaken {
			fmt.Print(grid.Table().String())
		}
	}

	if *jsonPath != "" {
		if *jsonPath == "-" {
			if err := report.WriteJSON(os.Stdout, grid); err != nil {
				fatal(err)
			}
		} else if err := report.SaveJSON(*jsonPath, grid); err != nil {
			fatal(err)
		}
	}
	if *csvPath != "" {
		if *csvPath == "-" {
			fmt.Print(grid.CSV())
		} else if err := os.WriteFile(*csvPath, []byte(grid.CSV()), 0o644); err != nil {
			fatal(err)
		}
	}
	if *benchPath != "" {
		if err := report.SaveJSON(*benchPath, grid.Bench()); err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "crnsweep: %v\n", err)
	os.Exit(1)
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

func parseInts(s string) []int {
	var out []int
	for _, part := range splitList(s) {
		v, err := strconv.Atoi(part)
		if err != nil {
			fatal(fmt.Errorf("bad integer %q", part))
		}
		out = append(out, v)
	}
	return out
}

func parseFloats(s string) []float64 {
	var out []float64
	for _, part := range splitList(s) {
		v, err := strconv.ParseFloat(part, 64)
		if err != nil {
			fatal(fmt.Errorf("bad number %q", part))
		}
		out = append(out, v)
	}
	return out
}
