package medium

import (
	"repro/internal/channel"
	"repro/internal/jam"
	"repro/internal/rng"
)

// Jammed composes an adversarial jammer over an inner medium: a jammed
// slot is spoiled before the inner medium ever sees it.  A jammed slot
// is audibly busy (never silent) and decode-useless (never good), so it
// classifies as Bad regardless of the real transmitters; like any bad
// slot it does not break the inner detector's decoding windows, because
// the inner medium is simply not stepped.
//
// Jam decisions are keyed to the slot number: the jammer's rng stream is
// reseeded from (seed, slot) for every slot, so a decision depends only
// on the slot being asked about, never on how many slots were stepped
// before it.  That keeps jammer randomness aligned when the engine
// fast-forwards through idle stretches — a run takes the same jam
// pattern whether or not slots in between were skipped.  (Fast-forwarded
// stretches themselves are never consulted: an empty system ignores
// noise, so they stay accounted as silent.)
type Jammed struct {
	inner  Medium
	jammer jam.Jammer
	seed   uint64
	r      rng.Rand
	dup    dupCheck

	jammed     int64
	lastJammed bool
	last       channel.Feedback

	// collisionOnJam: to a device with ternary collision detection,
	// jamming energy is indistinguishable from a collision.
	collisionOnJam bool
}

var _ Medium = (*Jammed)(nil)

// Jam wraps inner with the given jammer, seeding the jammer's
// slot-keyed randomness from seed.  A nil jammer returns inner
// unchanged.
func Jam(inner Medium, j jam.Jammer, seed uint64) Medium {
	if j == nil {
		return inner
	}
	cl, ok := inner.(*Classical)
	return &Jammed{
		inner:          inner,
		jammer:         j,
		seed:           seed,
		collisionOnJam: ok && cl.cd == CDTernary,
	}
}

// Name implements Medium.
func (m *Jammed) Name() string { return m.inner.Name() + "+jam:" + m.jammer.Name() }

// Kappa implements Medium.
func (m *Jammed) Kappa() int { return m.inner.Kappa() }

// Step implements Medium.
func (m *Jammed) Step(now int64, txs []channel.PacketID) (channel.SlotClass, *channel.Event) {
	// Slot-keyed reseed: SplitMix64 expansion decorrelates consecutive
	// slots, and the golden-ratio stride keeps seed^f(now) injective per
	// seed.
	m.r.Seed(m.seed ^ uint64(now)*0x9e3779b97f4a7c15)
	if m.jammer.Jammed(now, &m.r) {
		// The inner detector never sees this slot, so enforce its
		// duplicate-transmitter invariant here: a protocol bug must not
		// hide behind the noise.
		m.dup.check(txs)
		m.jammed++
		m.lastJammed = true
		m.last = channel.Feedback{Slot: now, Collision: m.collisionOnJam}
		return channel.Bad, nil
	}
	m.lastJammed = false
	return m.inner.Step(now, txs)
}

// Feedback implements Medium.
func (m *Jammed) Feedback(fb *channel.Feedback) {
	if m.lastJammed {
		*fb = m.last
		return
	}
	m.inner.Feedback(fb)
}

// AddSilent implements Medium.
func (m *Jammed) AddSilent(n int64) { m.inner.AddSilent(n) }

// Stats implements Medium: the inner medium's counters plus the spoiled
// slots, which count as bad (and jammed) exactly as the engine's old
// inline accounting did.
func (m *Jammed) Stats() channel.Stats {
	st := m.inner.Stats()
	st.BadSlots += m.jammed
	st.JammedSlots += m.jammed
	return st
}

// Reset implements Medium.
func (m *Jammed) Reset() {
	m.inner.Reset()
	m.jammed = 0
	m.lastJammed = false
	m.last = channel.Feedback{}
}
