// Package crn is a Go implementation of "Contention Resolution for Coded
// Radio Networks" (Bender, Gilbert, Kuhn, Kuszmaul, Médard — SPAA 2022,
// arXiv:2207.11824).
//
// The package provides:
//
//   - the Coded Radio Network Model: a slotted channel whose base station
//     decodes up to κ simultaneous transmissions via linear coding, with
//     decoding events defined exactly as in the paper's Definition 1;
//   - the Decodable Backoff Algorithm, the paper's contention-resolution
//     protocol achieving throughput 1 − Θ(1/ln κ);
//   - the classical baselines the paper compares against (binary
//     exponential backoff, slotted ALOHA, Chang–Jin–Pettie multiplicative
//     weights);
//   - adversarial and stochastic arrival processes, including the
//     sliding-window rate cap from the paper's theorems;
//   - a deterministic discrete-round simulation engine with a parallel
//     multi-trial runner;
//   - physical-layer substrates (GF(2^8) random linear network coding and
//     a ZigZag-style additive-collision decoder) grounding the model.
//
// # Quick start
//
//	proto := crn.NewDecodableBackoff(64, 1)      // κ = 64, seed 1
//	res := crn.Run(crn.Config{Kappa: 64, Horizon: 1, Drain: true, Seed: 2},
//	    proto, crn.NewBatch(10000))
//	fmt.Printf("throughput: %.3f\n", res.CompletionThroughput())
//
// See the examples directory for runnable programs, DESIGN.md for the
// system inventory, and EXPERIMENTS.md for the paper-vs-measured record.
package crn
