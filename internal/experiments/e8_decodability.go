package experiments

import (
	"fmt"
	"math"

	"repro/internal/linalg"
	"repro/internal/report"
	"repro/internal/rlnc"
	"repro/internal/rng"
)

// E8Decodability validates the model's information-theoretic premise
// (Section 2, "Practicalities"): a decoding window with j good slots
// carries enough information to decode j packets.  With random linear
// coding over GF(2^8) the j×j coefficient matrix is invertible with
// probability Π(1−256^{-i}) ≈ 0.996 independent of j; over GF(2) the
// probability drops to ≈ 0.289 — quantifying why real systems code over
// larger fields.  An end-to-end RLNC run confirms groups decode in j
// slots plus a tiny retry tail.
func E8Decodability(scale Scale, seed uint64) *Output {
	out := &Output{
		ID:    "E8",
		Title: "decoding-window decodability under random linear coding",
		Claim: "j good slots suffice to decode j packets; random GF(2^8) matrices invertible w.p. ≈ 0.996",
	}
	sizes := []int{1, 2, 4, 8, 16, 32}
	trials := scale.pick(400, 2000)
	r := rng.New(seed ^ 0xE8)

	tbl := report.NewTable("Invertibility of random j×j transmission matrices",
		"j", "GF(256) measured", "GF(256) theory", "GF(2) measured", "GF(2) theory")
	for _, j := range sizes {
		inv256, inv2 := 0, 0
		for t := 0; t < trials; t++ {
			m := linalg.NewMatrix(j, j)
			for a := 0; a < j; a++ {
				row := m.Row(a)
				for b := range row {
					row[b] = byte(r.Uint64())
				}
			}
			if m.Invertible() {
				inv256++
			}
			// Fill whole words through the unchecked row accessor (one
			// RNG draw per 64 bits instead of per bit), masking the tail
			// so bits beyond column j stay zero as the kernels require.
			bm := linalg.NewBitMatrix(j, j)
			for a := 0; a < j; a++ {
				row := bm.RowWords(a)
				for w := range row {
					row[w] = r.Uint64()
				}
				if tail := uint(j % 64); tail != 0 {
					row[len(row)-1] &= 1<<tail - 1
				}
			}
			if bm.Invertible() {
				inv2++
			}
		}
		tbl.AddRow(j,
			float64(inv256)/float64(trials), invertibleTheory(256, j),
			float64(inv2)/float64(trials), invertibleTheory(2, j))
	}
	out.Tables = append(out.Tables, tbl)

	// End-to-end: a group of j packets broadcasting together decodes in
	// j slots except when the random matrix is singular, in which case a
	// slot or two of retries completes it.
	e2e := report.NewTable("End-to-end RLNC group decode (random nonzero coefficients)",
		"j", "trials", "mean slots", "exactly j", "j+1", "worst")
	for _, j := range []int{2, 4, 8, 16} {
		var totalSlots, exact, plusOne, worst int
		n := scale.pick(100, 400)
		for t := 0; t < n; t++ {
			payloads := make([][]byte, j)
			for i := range payloads {
				p := make([]byte, 16)
				for b := range p {
					p[b] = byte(r.Uint64())
				}
				payloads[i] = p
			}
			enc, err := rlnc.NewEncoder(payloads)
			if err != nil {
				panic(err)
			}
			dec := rlnc.NewDecoder(j, 16)
			group := make([]int, j)
			for i := range group {
				group[i] = i
			}
			slots := 0
			for !dec.Complete() {
				s, err := enc.Slot(group, r)
				if err != nil {
					panic(err)
				}
				dec.Add(s)
				slots++
			}
			totalSlots += slots
			switch {
			case slots == j:
				exact++
			case slots == j+1:
				plusOne++
			}
			if slots > worst {
				worst = slots
			}
		}
		e2e.AddRow(j, n, float64(totalSlots)/float64(n),
			fmt.Sprintf("%.1f%%", 100*float64(exact)/float64(n)),
			fmt.Sprintf("%.1f%%", 100*float64(plusOne)/float64(n)), worst)
	}
	out.Tables = append(out.Tables, e2e)
	out.Notes = append(out.Notes,
		"theory: Π_{i=1..j}(1−q^{-i}); limits ≈ 0.9961 (q=256) and ≈ 0.2888 (q=2)",
		"the abstract channel model charges exactly j slots; RLNC pays ≈ 0.4% extra slots over GF(2^8), confirming the abstraction is tight",
		"nonzero coefficients only (each transmitter scales by a random unit), hence mean slots slightly better than the all-random matrix theory")
	return out
}

// invertibleTheory returns Π_{i=1..j}(1 − q^{-i}), the probability a
// uniformly random j×j matrix over GF(q) is invertible.
func invertibleTheory(q float64, j int) float64 {
	p := 1.0
	for i := 1; i <= j; i++ {
		p *= 1 - math.Pow(q, -float64(i))
	}
	return p
}
