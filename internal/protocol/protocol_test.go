package protocol

import "testing"

func TestEpochKindString(t *testing.T) {
	cases := map[EpochKind]string{
		EpochSilent:     "silent",
		EpochSuccessful: "successful",
		EpochOverfull:   "overfull",
		EpochKind(99):   "unknown",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Fatalf("EpochKind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func TestEpochObserverFunc(t *testing.T) {
	var got EpochInfo
	f := EpochObserverFunc(func(info EpochInfo) { got = info })
	f.ObserveEpoch(EpochInfo{Kind: EpochOverfull, Joiners: 7})
	if got.Kind != EpochOverfull || got.Joiners != 7 {
		t.Fatalf("observer func did not forward: %+v", got)
	}
}
