// Package crn is a Go implementation of "Contention Resolution for Coded
// Radio Networks" (Bender, Gilbert, Kuhn, Kuszmaul, Médard — SPAA 2022,
// arXiv:2207.11824).
//
// The package provides:
//
//   - the Coded Radio Network Model: a slotted channel whose base station
//     decodes up to κ simultaneous transmissions via linear coding, with
//     decoding events defined exactly as in the paper's Definition 1;
//   - the Decodable Backoff Algorithm, the paper's contention-resolution
//     protocol achieving throughput 1 − Θ(1/ln κ);
//   - the classical baselines the paper compares against (binary
//     exponential backoff, slotted ALOHA, Chang–Jin–Pettie multiplicative
//     weights);
//   - adversarial and stochastic arrival processes, including the
//     sliding-window rate cap from the paper's theorems;
//   - a deterministic discrete-round simulation engine with a parallel
//     multi-trial runner;
//   - a declarative scenario-sweep subsystem (internal/sweep) that
//     expands protocol × arrival × κ × rate × jammer grids and executes
//     every cell's trials in parallel;
//   - physical-layer substrates (GF(2^8) random linear network coding and
//     a ZigZag-style additive-collision decoder) grounding the model.
//
// # Quick start
//
//	proto := crn.NewDecodableBackoff(64, 1)      // κ = 64, seed 1
//	res := crn.Run(crn.Config{Kappa: 64, Horizon: 1, Drain: true, Seed: 2},
//	    proto, crn.NewBatch(10000))
//	fmt.Printf("throughput: %.3f\n", res.CompletionThroughput())
//
// # Scenario sweeps
//
// cmd/crnsweep runs whole grids of scenarios in parallel and emits
// per-cell aggregates (throughput, max backlog, latency quantiles,
// slot-class mix, error epochs) as aligned tables, CSV, and JSON:
//
//	crnsweep -protocols dba,beb -kappas 8,64 -rates 0.3,0.6 -trials 4
//	crnsweep -spec sweep.json -json - -quiet
//	crnsweep -bench BENCH_sweep.json
//
// The JSON artifact is {"spec": ..., "cells": [...]} with cells in
// canonical expansion order and per-metric {mean, stddev, min, max}
// aggregates.  Artifacts are deterministic: the same spec and seed
// reproduce byte-identical bytes at any parallelism, so sweep results
// (and the BENCH_sweep.json benchmark artifact) are diffable across
// commits.  cmd/experiments accepts -parallel to run the E1–E14
// reproduction harness concurrently and -json for the same
// machine-readable treatment.
//
// See the examples directory for runnable programs and DESIGN.md for the
// system inventory and the §5 experiment index.
package crn
