// Package channel implements the Coded Radio Network Model of Bender,
// Gilbert, Kuhn, Kuszmaul, and Médard (SPAA 2022).
//
// Time is slotted.  In each slot some set of packets broadcasts.  A slot
// is silent (no transmitters), good (1..κ transmitters), or bad (more
// than κ, where κ is the hardware decoding threshold).  The base station
// accumulates information from good slots and a decoding event of size j
// fires at the first time t at which some window that begins with a good
// slot, contains no earlier decoding event, and has at least j good slots
// covers exactly j distinct broadcasting packets (Definition 1 of the
// paper).  Decoded packets leave the system, and everything broadcast
// before the event that was not part of its window is discarded —
// decoding windows are disjoint.
//
// Devices hear only two things: whether a slot was silent, and decoding
// events.  They cannot distinguish good slots from bad ones.  The
// Feedback type exposes exactly that interface; the SlotClass returned by
// Step is for the measurement harness only.
package channel

import (
	"fmt"
	"sort"
)

// PacketID identifies a packet in the system.  IDs are assigned by the
// simulation engine in arrival order.
type PacketID int64

// SlotClass classifies a slot by its number of transmitters.
type SlotClass uint8

const (
	// Silent means no packet broadcast in the slot.
	Silent SlotClass = iota
	// Good means between 1 and κ packets broadcast.
	Good
	// Bad means more than κ packets broadcast; the base station learns
	// nothing from the slot.
	Bad
)

// String returns the class name.
func (c SlotClass) String() string {
	switch c {
	case Silent:
		return "silent"
	case Good:
		return "good"
	case Bad:
		return "bad"
	}
	return fmt.Sprintf("SlotClass(%d)", uint8(c))
}

// Event is a decoding event: at slot Slot, the base station decodes
// every packet that broadcast in a good slot of the window
// [WindowStart, Slot].  Packets is sorted by ID.
type Event struct {
	Slot        int64
	WindowStart int64
	Packets     []PacketID
}

// Size returns the number of packets delivered by the event.
func (e *Event) Size() int { return len(e.Packets) }

// Feedback is everything a device can hear about a slot: silence, and
// any decoding event.  On the coded channel devices cannot tell good
// slots from bad ones, so Collision is never set there; a classical
// medium with ternary collision detection sets it when a busy slot
// carried no decodable transmission (see internal/medium).
type Feedback struct {
	Slot   int64
	Silent bool
	Event  *Event // nil if no decoding event occurred at this slot
	// Collision reports that the slot was audibly a collision.  Only
	// media whose feedback model can distinguish collisions from
	// successes (classical ternary CD) ever set it.
	Collision bool
}

// Stats aggregates channel-level counters over an execution.
type Stats struct {
	SilentSlots int64
	GoodSlots   int64
	BadSlots    int64
	Events      int64
	Delivered   int64
	// PrunedPackets counts packets whose pending broadcast information
	// was discarded because the decoding window length cap was exceeded.
	PrunedPackets int64
	// JammedSlots counts slots spoiled by jamming energy.
	JammedSlots int64
}

// goodEntry records one good slot awaiting a decoding event: the slot
// number and the packets whose most recent broadcast was in this slot.
type goodEntry struct {
	slot    int64
	members []PacketID
}

type occRef struct {
	abs int // absolute index of the goodEntry holding the packet
	pos int // position within that entry's members slice
}

// Channel is the base station side of the Coded Radio Network Model.
// It classifies slots and detects decoding events per Definition 1.
// The zero value is not usable; call New.
type Channel struct {
	kappa     int
	maxWindow int // 0 = unbounded

	entries  []goodEntry // good slots since the last decoding event
	firstAbs int         // absolute index of entries[0]
	lastOcc  map[PacketID]occRef

	stats Stats
	// Duplicate detection uses a generation-stamped map so that no
	// per-slot map clearing is needed: clear() on a Go map costs its
	// historical capacity, which is ruinous after one huge bad slot.
	seen    map[PacketID]uint64
	seenGen uint64
	// prevTxs caches the last validated transmitter list: epoch-based
	// protocols resend identical sets for many consecutive slots, and an
	// equality scan is far cheaper than re-hashing thousands of IDs.
	prevTxs []PacketID
	// freeMembers recycles goodEntry member storage: every good slot
	// needs a members slice, and without recycling the steady-state
	// per-slot path allocates one per good slot.  The pool is bounded by
	// the peak number of simultaneously tracked entries.
	freeMembers [][]PacketID
}

// New returns a channel with decoding threshold kappa.  maxWindow caps
// the length (in slots) of any decoding window; information older than
// the cap is discarded, mirroring a base station with bounded memory.
// maxWindow = 0 means unbounded.  The paper notes windows of length O(κ)
// suffice for the Decodable Backoff Algorithm; the harness default is 4κ.
func New(kappa, maxWindow int) *Channel {
	if kappa < 1 {
		panic("channel: kappa must be at least 1")
	}
	if maxWindow < 0 {
		panic("channel: negative maxWindow")
	}
	return &Channel{
		kappa:     kappa,
		maxWindow: maxWindow,
		lastOcc:   make(map[PacketID]occRef),
		seen:      make(map[PacketID]uint64),
	}
}

// Kappa returns the decoding threshold.
func (c *Channel) Kappa() int { return c.kappa }

// MaxWindow returns the decoding window cap (0 = unbounded).
func (c *Channel) MaxWindow() int { return c.maxWindow }

// Stats returns a copy of the accumulated counters.
func (c *Channel) Stats() Stats { return c.stats }

// AddSilent accounts n silent slots without stepping the channel.  The
// simulation engine uses it when it fast-forwards through provably idle
// stretches; silent slots never change detector state, so only the
// counter needs updating.
func (c *Channel) AddSilent(n int64) {
	if n < 0 {
		panic("channel: negative silent-slot count")
	}
	c.stats.SilentSlots += n
}

// Step processes one slot in which the given packets broadcast.  It
// returns the slot class and the decoding event, if one fired.  Slots
// must be fed in increasing time order.  Step panics if txs contains a
// duplicate ID (one device cannot send two packets at once).
//
// Jamming is not the channel's concern: adversarial slot-spoiling lives
// in the medium layer (internal/medium.Jam), which composes a jammer
// over any medium and never forwards spoiled slots here.
func (c *Channel) Step(now int64, txs []PacketID) (SlotClass, *Event) {
	switch {
	case len(txs) == 0:
		c.stats.SilentSlots++
		return Silent, nil
	case len(txs) > c.kappa:
		c.checkDuplicates(txs)
		c.stats.BadSlots++
		return Bad, nil
	}
	c.checkDuplicates(txs)
	c.stats.GoodSlots++
	c.prune(now)
	c.record(now, txs)
	ev := c.detect(now)
	if ev != nil {
		c.stats.Events++
		c.stats.Delivered += int64(len(ev.Packets))
		c.reset()
	}
	return Good, ev
}

func (c *Channel) checkDuplicates(txs []PacketID) {
	if len(txs) < 2 {
		return
	}
	if sameIDs(txs, c.prevTxs) {
		return // identical to the already-validated previous slot
	}
	if len(txs) <= 32 {
		// Quadratic scan beats map traffic for the common small slots.
		for i := 1; i < len(txs); i++ {
			for j := 0; j < i; j++ {
				if txs[i] == txs[j] {
					panic(fmt.Sprintf("channel: packet %d transmitted twice in one slot", txs[i]))
				}
			}
		}
	} else {
		c.seenGen++
		for _, id := range txs {
			if c.seen[id] == c.seenGen {
				panic(fmt.Sprintf("channel: packet %d transmitted twice in one slot", id))
			}
			c.seen[id] = c.seenGen
		}
	}
	// Cache only lists that passed validation, so a caller that recovers
	// from the panic cannot sneak the same invalid list past the cache.
	c.prevTxs = append(c.prevTxs[:0], txs...)
}

// sameIDs reports whether a and b are element-wise identical.
func sameIDs(a, b []PacketID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// newMembers returns an empty member slice, reusing recycled storage
// when available.
func (c *Channel) newMembers(capHint int) []PacketID {
	if n := len(c.freeMembers); n > 0 {
		s := c.freeMembers[n-1]
		c.freeMembers[n-1] = nil
		c.freeMembers = c.freeMembers[:n-1]
		return s[:0]
	}
	return make([]PacketID, 0, capHint)
}

// recycleMembers returns a member slice's storage to the pool.
func (c *Channel) recycleMembers(s []PacketID) {
	if cap(s) > 0 {
		c.freeMembers = append(c.freeMembers, s[:0])
	}
}

// prune drops good slots that can no longer start a window ending at or
// after now because of the window-length cap.
func (c *Channel) prune(now int64) {
	if c.maxWindow == 0 {
		return
	}
	minStart := now - int64(c.maxWindow) + 1
	drop := 0
	for drop < len(c.entries) && c.entries[drop].slot < minStart {
		for _, id := range c.entries[drop].members {
			delete(c.lastOcc, id)
			c.stats.PrunedPackets++
		}
		c.recycleMembers(c.entries[drop].members)
		c.entries[drop].members = nil
		drop++
	}
	if drop > 0 {
		c.entries = c.entries[drop:]
		c.firstAbs += drop
	}
}

// record appends the good slot and moves each transmitter's last
// occurrence to it.
func (c *Channel) record(now int64, txs []PacketID) {
	abs := c.firstAbs + len(c.entries)
	entry := goodEntry{slot: now, members: c.newMembers(len(txs))}
	c.entries = append(c.entries, entry)
	e := &c.entries[len(c.entries)-1]
	for _, id := range txs {
		if ref, ok := c.lastOcc[id]; ok {
			c.removeMember(ref)
		}
		e.members = append(e.members, id)
		c.lastOcc[id] = occRef{abs: abs, pos: len(e.members) - 1}
	}
}

// removeMember deletes the packet at ref from its entry's member list by
// swapping with the last member and fixing the moved packet's reference.
func (c *Channel) removeMember(ref occRef) {
	idx := ref.abs - c.firstAbs
	if idx < 0 || idx >= len(c.entries) {
		return // entry already pruned or delivered
	}
	m := c.entries[idx].members
	last := len(m) - 1
	moved := m[last]
	m[ref.pos] = moved
	c.entries[idx].members = m[:last]
	if ref.pos != last {
		c.lastOcc[moved] = occRef{abs: ref.abs, pos: ref.pos}
	}
}

// detect scans candidate window starts for a valid decoding window ending
// at the current slot.  A start at entry i is valid iff the number of
// distinct packets whose most recent broadcast is at entry >= i is at
// most the number of good slots from entry i onward.  Among valid starts
// it picks the earliest, which delivers a superset of any other choice
// (windows sharing an endpoint are nested).
func (c *Channel) detect(now int64) *Event {
	distinct := 0
	best := -1
	for i := len(c.entries) - 1; i >= 0; i-- {
		distinct += len(c.entries[i].members)
		goodSlots := len(c.entries) - i
		if distinct > 0 && distinct <= goodSlots {
			best = i
		}
	}
	if best < 0 {
		return nil
	}
	var packets []PacketID
	for i := best; i < len(c.entries); i++ {
		packets = append(packets, c.entries[i].members...)
	}
	sort.Slice(packets, func(a, b int) bool { return packets[a] < packets[b] })
	return &Event{
		Slot:        now,
		WindowStart: c.entries[best].slot,
		Packets:     packets,
	}
}

// reset discards all pending broadcast information: decoding windows must
// be disjoint, so nothing before an event can be reused.  Deletion is by
// key (size-proportional) rather than clear() (capacity-proportional).
func (c *Channel) reset() {
	for i := range c.entries {
		for _, id := range c.entries[i].members {
			delete(c.lastOcc, id)
		}
		c.recycleMembers(c.entries[i].members)
		c.entries[i].members = nil
	}
	c.entries = c.entries[:0]
	c.firstAbs = 0
}

// Reset returns the channel to its initial state: the detector forgets
// all pending broadcast information and every counter is zeroed, as if
// freshly constructed with the same kappa and maxWindow.  It lets one
// channel be reused across runs without reallocation.
func (c *Channel) Reset() {
	c.reset()
	c.stats = Stats{}
	c.prevTxs = c.prevTxs[:0]
	// seen entries are generation-stamped; bumping the generation
	// invalidates them all without touching the map.
	c.seenGen++
}

// PendingGoodSlots returns the number of good slots currently tracked
// (since the last decoding event, after pruning).  Exposed for tests and
// diagnostics.
func (c *Channel) PendingGoodSlots() int { return len(c.entries) }

// PendingPackets returns the number of distinct packets with tracked
// broadcasts.  Exposed for tests and diagnostics.
func (c *Channel) PendingPackets() int { return len(c.lastOcc) }
