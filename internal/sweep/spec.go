// Package sweep runs declarative scenario grids: a Spec names the
// cross-product of channel models × protocols × arrival processes ×
// decoding thresholds × rates × jammers × adversaries it wants explored,
// and Run executes every cell's trials in parallel, aggregating per-cell
// summaries into a Grid that serializes to deterministic JSON and CSV.
// Same spec + same seed ⇒ byte-identical artifacts, regardless of
// parallelism — sweep outputs are diffable across commits, including
// cells with adaptive (feedback-reacting) adversaries.
//
// The model axis makes cross-channel comparisons one artifact: the same
// grid can run Decodable Backoff on the coded channel next to
// BEB/ALOHA/MW on the classical collision channel (with selectable
// collision-detection feedback), which is exactly the comparison the
// paper's headline throughput claim is about.
package sweep

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"

	"repro/internal/adversary"
	"repro/internal/medium"
	"repro/internal/protocol"
)

// Model, protocol, and arrival kinds a Spec may name.
var (
	// Models lists the known channel-model descriptors in canonical
	// order (see internal/medium).
	Models = medium.Models
	// Protocols lists the known protocol kinds in canonical order,
	// straight from the protocol registry (exec.go links every
	// implementing package, so the axis is complete by the time this
	// package initializes).
	Protocols = protocol.Names()
	// Arrivals lists the known arrival kinds in canonical order.
	Arrivals = []string{"batch", "bernoulli", "poisson", "even", "burst"}
	// Adversaries lists the adversary descriptor forms a Spec may name
	// (see internal/adversary).
	Adversaries = adversary.Kinds
)

// Spec declares a scenario grid.  Every combination of one channel
// model, one protocol, one arrival kind, one κ, one rate, one jammer,
// and one adversary is a cell; each cell runs Trials independent
// trials.  The rate axis has a uniform "offered load" meaning across
// arrival kinds: it is the per-slot probability (bernoulli), intensity
// (poisson), pace (even), window-fill fraction (burst: rate×BurstWindow
// packets per window), or horizon-fill fraction (batch: rate×Horizon
// packets at slot 0, unless BatchN overrides).
//
// Six combinations are skipped during expansion rather than rejected,
// so one grid can mix channel models and adversaries freely: dba pairs
// only with the coded model (the algorithm is defined for κ ≥ 6); the
// no-CD protocols (robust, unbounded) pair only with classical:none
// (their schedules assume no channel sensing — pairing them with richer
// feedback would sweep cells whose extra information they ignore);
// classical models collapse the κ axis to the single value 1 (the
// collision channel has no threshold to sweep); the capture model skips
// κ = 1 (it collapses to the classical collision channel there, which
// the classical axis already covers); jamming and adaptive adversaries
// pair only with jammer "none" (double-jamming cells would only square
// the grid, and an adaptive adversary cannot sit over a jammed,
// silence-spoiling medium); and adaptive adversaries are skipped under
// silence-masking models (classical:none has no channel sensing, so the
// reactive trigger — and the determinism contract's gap-equals-silence
// rule — is undefined there).
type Spec struct {
	// Name labels the sweep in artifacts (optional).
	Name string `json:"name,omitempty"`

	// Models ⊆ {coded, classical, classical:none, classical:binary,
	// classical:ternary, capture}.  Empty means {"coded"}; "classical"
	// is shorthand for "classical:ternary".
	Models []string `json:"models,omitempty"`
	// Protocols ⊆ {dba, beb, aloha, genie, mw, robust, unbounded}.
	Protocols []string `json:"protocols"`
	// Arrivals ⊆ {batch, bernoulli, poisson, even, burst}.
	Arrivals []string `json:"arrivals"`
	// Kappas are the decoding thresholds (≥ 1; ≥ 6 if dba is swept).
	Kappas []int `json:"kappas"`
	// Rates are the offered loads, each in (0, ∞).
	Rates []float64 `json:"rates"`
	// Jammers are jammer descriptors: "none", "random:RATE", or
	// "periodic:PERIOD/BURST".  Empty means {"none"}.
	Jammers []string `json:"jammers,omitempty"`
	// Adversaries are adversary descriptors (internal/adversary):
	// "none", "random:RATE", "burst:B/GAP", "reactive:TRIGGER/BURST", or
	// "sigmarho:SIGMA/RHO".  Empty means {"none"}.
	Adversaries []string `json:"adversaries,omitempty"`

	// Trials is the number of independent trials per cell (≥ 1).
	Trials int `json:"trials"`
	// Horizon is the arrival horizon in slots (≥ 1).
	Horizon int64 `json:"horizon"`
	// NoDrain stops each run at the horizon instead of draining.
	NoDrain bool `json:"no_drain,omitempty"`
	// DrainLimit bounds the drain phase (0 = engine default).
	DrainLimit int64 `json:"drain_limit,omitempty"`
	// MaxWindow caps the decoding window (0 = engine default 4κ).
	MaxWindow int `json:"max_window,omitempty"`
	// LatencySamples bounds the per-trial latency sample backing the
	// quantile columns: 0 keeps the engine default (a
	// sim.DefaultLatencySamples-slot seeded reservoir), a positive value
	// sets that capacity, and -1 disables retention (quantile columns go
	// to zero).  Per-trial memory is O(LatencySamples) instead of the
	// former O(arrivals); at default quick scales the reservoir holds
	// every delivery, so quantiles stay exact.
	LatencySamples int `json:"latency_samples,omitempty"`
	// Seed drives all randomness; cell and trial seeds derive from it.
	Seed uint64 `json:"seed"`
	// Workers selects the engine's intra-trial execution path (see
	// sim.Config.Workers): 0 the serial reference loop, W ≥ 1 the staged
	// shard/step/reduce engine with up to W goroutines per trial.
	// Results are bit-identical for every value, so Workers is a pure
	// wall-clock knob: it is deliberately excluded from cell identities
	// (see cellID) and, via omitempty, from the hash of specs that leave
	// it unset.
	Workers int `json:"workers,omitempty"`

	// BatchN overrides the batch arrival size (0 = rate×Horizon).
	BatchN int `json:"batch_n,omitempty"`
	// BurstWindow is the burst arrival window length (0 = 16384).
	BurstWindow int64 `json:"burst_window,omitempty"`
	// AlohaP is the static ALOHA transmission probability (0 = 0.001).
	AlohaP float64 `json:"aloha_p,omitempty"`
}

// Scenario is one concrete cell of the expanded grid.
type Scenario struct {
	Model     string  `json:"model"`
	Protocol  string  `json:"protocol"`
	Arrival   string  `json:"arrival"`
	Kappa     int     `json:"kappa"`
	Rate      float64 `json:"rate"`
	Jammer    string  `json:"jammer"`
	Adversary string  `json:"adversary"`
}

// Key renders the cell coordinates compactly for tables and logs.
func (s Scenario) Key() string {
	return fmt.Sprintf("%s/%s/%s/k=%d/rate=%g/jam=%s/adv=%s",
		s.Model, s.Protocol, s.Arrival, s.Kappa, s.Rate, s.Jammer, s.Adversary)
}

func contains(set []string, s string) bool {
	for _, x := range set {
		if x == s {
			return true
		}
	}
	return false
}

// isClassical reports whether the model descriptor names a classical
// collision-channel variant.
func isClassical(model string) bool { return strings.HasPrefix(model, "classical") }

// Validate checks the spec and normalizes defaults (empty Models
// becomes {"coded"}, empty Jammers becomes {"none"}).  It returns the
// first problem found.
func (s *Spec) Validate() error {
	if len(s.Models) == 0 {
		s.Models = []string{"coded"}
	}
	hasCoded := false
	for _, m := range s.Models {
		ms, err := medium.ParseSpec(m)
		if err != nil {
			return fmt.Errorf("sweep: unknown model %q (want one of %s)",
				m, strings.Join(Models, ", "))
		}
		if ms.Kappa != 0 || ms.MaxWindow != 0 {
			// κ is a sweep axis and the window cap a spec field; a
			// parametrized descriptor would smuggle either into the model
			// coordinate and silently fork cell identities.
			return fmt.Errorf("sweep: model %q embeds parameters; use the kappas axis and max_window field instead", m)
		}
		// The capture model shares the coded channel's κ-ary decoding
		// power but not its cross-slot windows; dba's κ ≥ 6 requirement
		// (and the dba pairing rule below) is about coded specifically.
		hasCoded = hasCoded || m == "coded"
	}
	if len(s.Protocols) == 0 {
		return fmt.Errorf("sweep: no protocols")
	}
	for _, p := range s.Protocols {
		if !contains(Protocols, p) {
			return fmt.Errorf("sweep: unknown protocol %q (want one of %s)",
				p, strings.Join(Protocols, ", "))
		}
	}
	if len(s.Arrivals) == 0 {
		return fmt.Errorf("sweep: no arrivals")
	}
	for _, a := range s.Arrivals {
		if !contains(Arrivals, a) {
			return fmt.Errorf("sweep: unknown arrival %q (want one of %s)",
				a, strings.Join(Arrivals, ", "))
		}
	}
	if len(s.Kappas) == 0 {
		return fmt.Errorf("sweep: no kappas")
	}
	for _, k := range s.Kappas {
		if k < 1 {
			return fmt.Errorf("sweep: kappa %d < 1", k)
		}
		if k < 6 && contains(s.Protocols, "dba") && hasCoded {
			return fmt.Errorf("sweep: kappa %d < 6 but dba is swept (the analysis needs κ ≥ 6)", k)
		}
	}
	if !hasCoded && len(s.Protocols) == 1 && s.Protocols[0] == "dba" {
		return fmt.Errorf("sweep: dba pairs only with the coded model, but no coded model is swept")
	}
	allNoCD := true
	for _, p := range s.Protocols {
		info, _ := protocol.Lookup(p)
		allNoCD = allNoCD && info.NoCDOnly
	}
	if allNoCD && !contains(s.Models, "classical:none") {
		return fmt.Errorf("sweep: no-CD protocols (%s) pair only with the classical:none model, but it is not swept",
			strings.Join(s.Protocols, ", "))
	}
	if len(s.Rates) == 0 {
		return fmt.Errorf("sweep: no rates")
	}
	for _, r := range s.Rates {
		if r <= 0 {
			return fmt.Errorf("sweep: rate %g ≤ 0", r)
		}
	}
	if len(s.Jammers) == 0 {
		s.Jammers = []string{"none"}
	}
	for _, j := range s.Jammers {
		if _, err := parseJammer(j); err != nil {
			return err
		}
	}
	if len(s.Adversaries) == 0 {
		s.Adversaries = []string{"none"}
	}
	for _, a := range s.Adversaries {
		if _, err := adversary.Parse(a); err != nil {
			return err
		}
	}
	if s.Trials < 1 {
		return fmt.Errorf("sweep: trials %d < 1", s.Trials)
	}
	if s.Horizon < 1 {
		return fmt.Errorf("sweep: horizon %d < 1", s.Horizon)
	}
	if s.DrainLimit < 0 {
		return fmt.Errorf("sweep: drain limit %d < 0", s.DrainLimit)
	}
	if s.MaxWindow < 0 {
		return fmt.Errorf("sweep: max window %d < 0", s.MaxWindow)
	}
	if s.LatencySamples < -1 {
		return fmt.Errorf("sweep: latency samples %d < -1 (0 = engine default, -1 = off)", s.LatencySamples)
	}
	if s.Workers < 0 {
		return fmt.Errorf("sweep: workers %d < 0 (0 = serial engine)", s.Workers)
	}
	if s.BatchN < 0 {
		return fmt.Errorf("sweep: batch n %d < 0", s.BatchN)
	}
	if s.BurstWindow < 0 {
		return fmt.Errorf("sweep: burst window %d < 0", s.BurstWindow)
	}
	if s.AlohaP < 0 || s.AlohaP > 1 {
		return fmt.Errorf("sweep: aloha p %g outside [0,1]", s.AlohaP)
	}
	if len(s.Expand()) == 0 {
		return fmt.Errorf("sweep: the skip rules leave no cells (every protocol/model/κ combination named is skipped)")
	}
	return nil
}

// Cells returns the number of cells the spec expands to.
func (s *Spec) Cells() int { return len(s.Expand()) }

// classicalKappas is the collapsed κ axis for classical models: the
// collision channel decodes one transmission per slot, threshold 1.
var classicalKappas = []int{1}

// Expand enumerates the grid's cells in canonical nesting order (model,
// then protocol, then arrival, then κ, then rate, then jammer, then
// adversary).  The order is part of the artifact contract: cell seeds
// are assigned along it.  Six skip rules keep mixed grids runnable:
// dba cells exist only under the coded model; no-CD protocols exist
// only under classical:none; classical models collapse the κ axis to
// {1}; the capture model skips κ = 1 (where it collapses to classical);
// jamming and adaptive adversaries pair only with jammer "none"; and
// adaptive adversaries are skipped under silence-masking models (the
// feedback they react to does not exist there).
func (s *Spec) Expand() []Scenario {
	models := s.Models
	if len(models) == 0 {
		models = []string{"coded"}
	}
	jammers := s.Jammers
	if len(jammers) == 0 {
		jammers = []string{"none"}
	}
	advs := s.Adversaries
	if len(advs) == 0 {
		advs = []string{"none"}
	}
	// Classify each adversary descriptor once; the skip rules consult
	// the flags in the innermost loop.
	advJams := make([]bool, len(advs))
	advAdaptive := make([]bool, len(advs))
	for i, a := range advs {
		advJams[i] = adversary.IsJammer(a)
		advAdaptive[i] = adversary.IsAdaptive(a)
	}
	var cells []Scenario
	for _, m := range models {
		kappas := s.Kappas
		if isClassical(m) {
			kappas = classicalKappas
		} else if m == "capture" {
			// Capture at κ = 1 is the classical collision channel, which
			// the classical axis already covers; sweep only the κ where
			// capture is its own model.
			filtered := make([]int, 0, len(kappas))
			for _, k := range kappas {
				if k >= 2 {
					filtered = append(filtered, k)
				}
			}
			kappas = filtered
		}
		// Adaptive adversaries need truthful silence feedback; ask the
		// model itself rather than hard-coding descriptor names.
		masksSilence := false
		if built, err := medium.New(m, 1, 0); err == nil {
			masksSilence = medium.MasksSilence(built)
		}
		for _, p := range s.Protocols {
			info, _ := protocol.Lookup(p)
			if info.CodedOnly && m != "coded" {
				continue // dba is defined for the coded channel (κ ≥ 6)
			}
			if info.NoCDOnly && m != "classical:none" {
				continue // no-CD schedules assume no channel sensing
			}
			for _, a := range s.Arrivals {
				for _, k := range kappas {
					for _, r := range s.Rates {
						for _, j := range jammers {
							for ai, adv := range advs {
								if (advJams[ai] || advAdaptive[ai]) && j != "none" {
									// One noise source per cell; and an
									// adaptive adversary cannot sit over a
									// jammed (silence-spoiling) medium.
									continue
								}
								if advAdaptive[ai] && masksSilence {
									continue // no silence feedback to react to
								}
								cells = append(cells, Scenario{
									Model: m, Protocol: p, Arrival: a, Kappa: k, Rate: r,
									Jammer: j, Adversary: adv,
								})
							}
						}
					}
				}
			}
		}
	}
	return cells
}

// ParseSpec decodes a JSON spec, rejecting unknown fields so typos in
// hand-written spec files fail loudly.
func ParseSpec(data []byte) (*Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("sweep: bad spec: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}
