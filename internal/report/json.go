package report

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"syscall"
)

// WriteJSON writes v as indented JSON followed by a newline — the
// machine-readable artifact format shared by the sweep and experiment
// harnesses.  Serialization is deterministic for deterministic inputs
// (encoding/json sorts map keys and struct fields keep source order).
func WriteJSON(w io.Writer, v interface{}) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return fmt.Errorf("report: %w", err)
	}
	data = append(data, '\n')
	if _, err := w.Write(data); err != nil {
		return fmt.Errorf("report: %w", err)
	}
	return nil
}

// SaveJSON writes v's JSON rendering to path, creating parent
// directories as needed.  The write is atomic (SaveFile), so an
// interrupted run never leaves a truncated artifact behind.
func SaveJSON(path string, v interface{}) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return fmt.Errorf("report: %w", err)
	}
	return SaveFile(path, append(data, '\n'))
}

// SaveFile writes data to path atomically: the bytes land in a
// temporary file in the same directory, which is renamed over path only
// after a complete write.  A reader (or a resumed run) therefore sees
// either the previous artifact or the new one, never a truncated mix —
// the invariant the sweep cache and resume layers are built on.  Parent
// directories are created as needed.
//
// SaveFile is atomic against process death but not against power loss:
// the rename may be journaled before the data blocks reach the disk.
// Writers whose callers treat a completed write as an acknowledgement
// (the sweep cell cache, where a worker will never re-execute an acked
// cell) should use SaveFileDurable instead.
func SaveFile(path string, data []byte) error {
	return saveFile(path, data, false)
}

// SaveFileDurable is SaveFile plus crash consistency: the record file
// is fsynced before the rename (so the named file can never hold
// truncated or stale-block content after a power loss) and the parent
// directory is fsynced after it (so the rename itself — the
// acknowledgement — survives).  Use it when a completed write is a
// promise to another machine or a later process, not just an artifact.
func SaveFileDurable(path string, data []byte) error {
	return saveFile(path, data, true)
}

func saveFile(path string, data []byte, durable bool) error {
	dir := filepath.Dir(path)
	if dir != "." && dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return fmt.Errorf("report: %w", err)
		}
	}
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("report: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("report: %w", err)
	}
	// CreateTemp's 0600 would make artifacts unreadable to other users;
	// match the 0644 the non-atomic writers used (modulo umask).
	if err := tmp.Chmod(0o644); err != nil {
		tmp.Close()
		return fmt.Errorf("report: %w", err)
	}
	if durable {
		if err := tmp.Sync(); err != nil {
			tmp.Close()
			return fmt.Errorf("report: %w", err)
		}
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("report: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("report: %w", err)
	}
	if durable {
		if err := syncDir(dir); err != nil {
			return err
		}
	}
	return nil
}

// syncDir fsyncs a directory so a just-completed rename inside it is
// on disk.  Filesystems that reject directory fsync (some network and
// FUSE mounts) degrade to SaveFile's process-crash-only guarantee.
func syncDir(dir string) error {
	if dir == "" {
		dir = "."
	}
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("report: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil && !errors.Is(err, syscall.EINVAL) && !errors.Is(err, syscall.ENOTSUP) {
		return fmt.Errorf("report: %w", err)
	}
	return nil
}
