// Package gf256 implements arithmetic in the finite field GF(2^8) with
// the AES reduction polynomial x^8 + x^4 + x^3 + x + 1 (0x11b).
//
// The field is the coefficient domain for random linear network coding
// (package rlnc): each transmitted slot carries a random GF(2^8)
// combination of the packets broadcasting in it, and a decoding window is
// decodable exactly when the coefficient matrix is invertible.  Multiply
// and divide use log/exp tables built once at package initialization.
package gf256

// Poly is the irreducible reduction polynomial, x^8+x^4+x^3+x+1.
const Poly = 0x11b

// Generator of the multiplicative group used for the log/exp tables.
const generator = 0x03

var (
	expTable [512]byte // doubled so Mul can skip a modular reduction
	logTable [256]byte
)

func init() {
	x := byte(1)
	for i := 0; i < 255; i++ {
		expTable[i] = x
		logTable[x] = byte(i)
		x = mulSlow(x, generator)
	}
	for i := 255; i < 512; i++ {
		expTable[i] = expTable[i-255]
	}
}

// mulSlow multiplies two field elements by shift-and-reduce.  It is the
// reference implementation used to build the tables and in tests.
func mulSlow(a, b byte) byte {
	var p uint16
	aa, bb := uint16(a), uint16(b)
	for bb != 0 {
		if bb&1 != 0 {
			p ^= aa
		}
		aa <<= 1
		if aa&0x100 != 0 {
			aa ^= Poly
		}
		bb >>= 1
	}
	return byte(p)
}

// Add returns a+b in GF(2^8).  Addition is XOR; it is its own inverse.
func Add(a, b byte) byte { return a ^ b }

// Sub returns a-b in GF(2^8), identical to Add in characteristic 2.
func Sub(a, b byte) byte { return a ^ b }

// Mul returns a*b in GF(2^8).
func Mul(a, b byte) byte {
	if a == 0 || b == 0 {
		return 0
	}
	return expTable[int(logTable[a])+int(logTable[b])]
}

// Div returns a/b in GF(2^8).  It panics if b == 0.
func Div(a, b byte) byte {
	if b == 0 {
		panic("gf256: division by zero")
	}
	if a == 0 {
		return 0
	}
	return expTable[int(logTable[a])+255-int(logTable[b])]
}

// Inv returns the multiplicative inverse of a.  It panics if a == 0.
func Inv(a byte) byte {
	if a == 0 {
		panic("gf256: inverse of zero")
	}
	return expTable[255-int(logTable[a])]
}

// Pow returns a raised to the n-th power.  Pow(0, 0) is defined as 1.
func Pow(a byte, n int) byte {
	if n == 0 {
		return 1
	}
	if a == 0 {
		return 0
	}
	la := int(logTable[a])
	e := (la * (n % 255)) % 255
	if e < 0 {
		e += 255
	}
	return expTable[e]
}

// MulSlice sets dst[i] ^= c * src[i] for all i, the fused
// multiply-accumulate used by the network-coding encoder and the
// Gaussian-elimination inner loop.  dst and src must have equal length.
func MulSlice(dst, src []byte, c byte) {
	if len(dst) != len(src) {
		panic("gf256: MulSlice length mismatch")
	}
	switch c {
	case 0:
		return
	case 1:
		for i := range dst {
			dst[i] ^= src[i]
		}
	default:
		lc := int(logTable[c])
		for i, s := range src {
			if s != 0 {
				dst[i] ^= expTable[lc+int(logTable[s])]
			}
		}
	}
}

// ScaleSlice multiplies every element of s by c in place.
func ScaleSlice(s []byte, c byte) {
	switch c {
	case 0:
		for i := range s {
			s[i] = 0
		}
	case 1:
		return
	default:
		lc := int(logTable[c])
		for i, v := range s {
			if v != 0 {
				s[i] = expTable[lc+int(logTable[v])]
			}
		}
	}
}
