package arena

import (
	"testing"

	"repro/internal/rng"
)

func TestBasicOps(t *testing.T) {
	var x Index[int]
	if x.Len() != 0 {
		t.Fatalf("empty Len = %d", x.Len())
	}
	if _, ok := x.Get(0); ok {
		t.Fatal("Get on empty index succeeded")
	}
	x.Put(5, 50)
	x.Put(5, 51) // overwrite
	x.Put(-3, 30)
	x.Put(1<<40, 40)
	if x.Len() != 3 {
		t.Fatalf("Len = %d, want 3", x.Len())
	}
	for _, c := range []struct {
		k int64
		v int
	}{{5, 51}, {-3, 30}, {1 << 40, 40}} {
		if v, ok := x.Get(c.k); !ok || v != c.v {
			t.Fatalf("Get(%d) = %d,%v want %d,true", c.k, v, ok, c.v)
		}
	}
	if old, ok := x.Swap(5, 52); !ok || old != 51 {
		t.Fatalf("Swap(5) = %d,%v want 51,true", old, ok)
	}
	if v, ok := x.Delete(5); !ok || v != 52 {
		t.Fatalf("Delete(5) = %d,%v want 52,true", v, ok)
	}
	if _, ok := x.Delete(5); ok {
		t.Fatal("double Delete succeeded")
	}
	if x.Has(5) {
		t.Fatal("Has(5) after delete")
	}
	if x.Len() != 2 {
		t.Fatalf("Len = %d, want 2", x.Len())
	}
	x.Reset()
	if x.Len() != 0 || x.Pages() != 0 {
		t.Fatalf("after Reset: Len=%d Pages=%d", x.Len(), x.Pages())
	}
	if _, ok := x.Get(-3); ok {
		t.Fatal("Get after Reset succeeded")
	}
}

// TestAgainstMap drives the index and a plain map with the same random
// operation stream, including negative and widely-spaced keys, and
// requires identical contents throughout.
func TestAgainstMap(t *testing.T) {
	r := rng.New(7)
	var x Index[int64]
	ref := map[int64]int64{}
	keys := make([]int64, 0, 256)
	randKey := func() int64 {
		switch r.Intn(4) {
		case 0:
			return int64(r.Intn(40)) - 8 // dense, straddling zero
		case 1:
			return int64(r.Intn(4)) * 100_000 // page-sparse
		case 2:
			return int64(r.Intn(1 << 20))
		default:
			if len(keys) > 0 {
				return keys[r.Intn(len(keys))] // revisit an old key
			}
			return 0
		}
	}
	for i := 0; i < 200_000; i++ {
		k := randKey()
		switch r.Intn(3) {
		case 0:
			v := int64(i)
			x.Put(k, v)
			ref[k] = v
			keys = append(keys, k)
		case 1:
			got, gotOK := x.Delete(k)
			want, wantOK := ref[k]
			if gotOK != wantOK || got != want {
				t.Fatalf("op %d: Delete(%d) = %d,%v want %d,%v", i, k, got, gotOK, want, wantOK)
			}
			delete(ref, k)
		case 2:
			got, gotOK := x.Get(k)
			want, wantOK := ref[k]
			if gotOK != wantOK || got != want {
				t.Fatalf("op %d: Get(%d) = %d,%v want %d,%v", i, k, got, gotOK, want, wantOK)
			}
		}
		if x.Len() != len(ref) {
			t.Fatalf("op %d: Len = %d, map has %d", i, x.Len(), len(ref))
		}
	}
	// Full-content check via Range.
	seen := 0
	x.Range(func(k int64, v int64) bool {
		if want, ok := ref[k]; !ok || want != v {
			t.Fatalf("Range visited (%d,%d); map says %d,%v", k, v, want, ok)
		}
		seen++
		return true
	})
	if seen != len(ref) {
		t.Fatalf("Range visited %d entries, map has %d", seen, len(ref))
	}
}

// TestSlidingWindowMemory models the engine's packet lifecycle: IDs
// are assigned sequentially and freed shortly after.  The mapped page
// count must track the live span, not the total number of keys ever
// inserted — this is the backlog-bounded memory contract.
func TestSlidingWindowMemory(t *testing.T) {
	var x Index[int64]
	const window = 3 * PageSize
	for k := int64(0); k < 100*PageSize; k++ {
		x.Put(k, k)
		if k >= window {
			if _, ok := x.Delete(k - window); !ok {
				t.Fatalf("Delete(%d) missed", k-window)
			}
		}
		if p := x.Pages(); p > window/PageSize+2 {
			t.Fatalf("at key %d: %d pages mapped for a %d-entry window", k, p, window)
		}
	}
	if x.Len() != window {
		t.Fatalf("Len = %d, want %d", x.Len(), window)
	}
}

// TestOverflowFarKeys drives keys too far apart for any dense window —
// the overflow-directory path — interleaved with dense keys, checking
// contents, page accounting, deletion, ordered iteration, and Reset.
func TestOverflowFarKeys(t *testing.T) {
	var x Index[int64]
	keys := []int64{0, 1, PageSize, -PageSize,
		1 << 30, 1 << 40, 1<<62 - 1, -(1 << 40), -(1 << 30)}
	for i, k := range keys {
		x.Put(k, int64(i))
	}
	if x.Len() != len(keys) {
		t.Fatalf("Len = %d, want %d", x.Len(), len(keys))
	}
	for i, k := range keys {
		if v, ok := x.Get(k); !ok || v != int64(i) {
			t.Fatalf("Get(%d) = %d,%v want %d,true", k, v, ok, i)
		}
	}
	// Every key is on its own page except 0 and 1.
	if p := x.Pages(); p != len(keys)-1 {
		t.Fatalf("Pages = %d, want %d", p, len(keys)-1)
	}
	prev := int64(-1 << 62)
	seen := 0
	x.Range(func(k int64, _ int64) bool {
		if k <= prev {
			t.Fatalf("Range out of order: %d after %d", k, prev)
		}
		prev = k
		seen++
		return true
	})
	if seen != len(keys) {
		t.Fatalf("Range visited %d, want %d", seen, len(keys))
	}
	for i, k := range keys {
		if v, ok := x.Delete(k); !ok || v != int64(i) {
			t.Fatalf("Delete(%d) = %d,%v want %d,true", k, v, ok, i)
		}
	}
	if x.Len() != 0 || x.Pages() != 0 {
		t.Fatalf("after deletes: Len=%d Pages=%d", x.Len(), x.Pages())
	}
	// Re-anchor after full vacation: a far key restarts the window.
	x.Put(1<<50, 7)
	if v, ok := x.Get(1 << 50); !ok || v != 7 {
		t.Fatalf("Get after re-anchor = %d,%v", v, ok)
	}
	x.Reset()
	if x.Len() != 0 || x.Pages() != 0 {
		t.Fatalf("after Reset: Len=%d Pages=%d", x.Len(), x.Pages())
	}
}

// TestRangeOrder checks ascending-key iteration across pages.
func TestRangeOrder(t *testing.T) {
	var x Index[int]
	for _, k := range []int64{900, -5, 0, 511, 512, 513, 1 << 30} {
		x.Put(k, 1)
	}
	prev := int64(-1 << 62)
	x.Range(func(k int64, _ int) bool {
		if k <= prev {
			t.Fatalf("Range out of order: %d after %d", k, prev)
		}
		prev = k
		return true
	})
}
