package adversary

import (
	"repro/internal/arrival"
	"repro/internal/channel"
	"repro/internal/rng"
)

// arrivals adapts an Injector onto arrival.Process, without feedback
// forwarding.
type arrivals struct{ inj Injector }

// observingArrivals additionally implements arrival.Observer, so the
// engine's per-slot feedback reaches the adversary through the same
// path benign adaptive processes use.
type observingArrivals struct{ arrivals }

// Arrivals adapts an arrival adversary to the arrival.Process interface,
// so it can drive a run directly or compose with a benign process via
// arrival.Merge.  Feedback is forwarded to the injector's Observe; if
// the same adversary is also composed as a Jammer over the medium in
// the same run — where the jam wrapper already delivers each slot once
// — use MutedArrivals instead, or Observe would be called twice per
// slot.
func Arrivals(inj Injector) arrival.Process { return observingArrivals{arrivals{inj}} }

// MutedArrivals is Arrivals without the feedback forwarding: the
// adapter for an adversary whose Observe already receives each stepped
// slot through another composition path (the jam wrapper).
func MutedArrivals(inj Injector) arrival.Process { return arrivals{inj} }

// Name implements arrival.Process.
func (a arrivals) Name() string { return a.inj.Name() }

// Injections implements arrival.Process.
func (a arrivals) Injections(now int64, r *rng.Rand) int { return a.inj.Injects(now, r) }

// NextAfter implements arrival.Process.
func (a arrivals) NextAfter(now int64) int64 { return a.inj.NextAfter(now) }

// ObserveSlot implements arrival.Observer.
func (a observingArrivals) ObserveSlot(fb channel.Feedback) { a.inj.Observe(fb) }
